package erminer_test

import (
	"fmt"

	"erminer"
)

// Example demonstrates the core workflow: build a benchmark dataset,
// corrupt it, discover rules with the enumeration miner (deterministic,
// so the output is stable) and repair the dirty cells.
func Example() {
	ds, err := erminer.BuildDataset("covid", erminer.DatasetSpec{
		InputSize: 1000, MasterSize: 700, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	ds.InjectErrors(erminer.NoiseConfig{Rate: 0.05, Seed: 2})

	p := ds.Problem(0)
	p.TopK = 5
	res, err := erminer.NewEnuMiner(erminer.EnuMinerConfig{}).Mine(p)
	if err != nil {
		panic(err)
	}

	fixes := erminer.Repair(p, res.Rules)
	prf := erminer.Evaluate(fixes.Pred, ds.Truth())
	fmt.Printf("rules: %d\n", len(res.Rules))
	fmt.Printf("good repair: %v\n", prf.F1 > 0.5)
	// Output:
	// rules: 5
	// good repair: true
}

// ExampleNewRLMiner shows the reinforcement-learning miner with a custom
// training budget and fine-tuning from a previous model.
func ExampleNewRLMiner() {
	ds, err := erminer.BuildDataset("covid", erminer.DatasetSpec{
		InputSize: 800, MasterSize: 500, Seed: 3,
	})
	if err != nil {
		panic(err)
	}
	p := ds.Problem(0)
	p.TopK = 10

	m := erminer.NewRLMiner(erminer.RLMinerConfig{TrainSteps: 1000, Seed: 4})
	res, err := m.Mine(p)
	if err != nil {
		panic(err)
	}
	fmt.Printf("found rules: %v\n", len(res.Rules) > 0)
	fmt.Printf("trained steps: %d\n", m.Stats().TrainSteps)
	// Output:
	// found rules: true
	// trained steps: 1000
}

// ExampleChase repairs two attributes whose fixes cascade: the chase
// fixes M from K, then Y from the repaired M.
func ExampleChase() {
	ds, err := erminer.BuildDataset("covid", erminer.DatasetSpec{
		InputSize: 600, MasterSize: 400, Seed: 5,
	})
	if err != nil {
		panic(err)
	}
	ds.InjectErrors(erminer.NoiseConfig{Rate: 0.1, Seed: 6})
	p := ds.Problem(0)
	p.TopK = 5

	targets, err := erminer.MineAll(p, func(y int) erminer.Miner {
		return erminer.NewEnuMinerH3(erminer.EnuMinerConfig{MaxExplored: 20000})
	})
	if err != nil {
		panic(err)
	}
	res := erminer.Chase(p.Input, p.Master, targets, 0)
	fmt.Printf("chase fixed cells: %v\n", res.Total > 0)
	// Output:
	// chase fixed cells: true
}
