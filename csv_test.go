package erminer_test

import (
	"os"
	"path/filepath"
	"testing"

	"erminer"
)

// writeCSVFixture writes a shop/directory pair in the Location style:
// postcode determined by (district, area).
func writeCSVFixture(t *testing.T) (inputPath, masterPath string) {
	t.Helper()
	dir := t.TempDir()
	inputPath = filepath.Join(dir, "shops.csv")
	masterPath = filepath.Join(dir, "directory.csv")

	input := "shop,district,area,postcode\n"
	master := "region,district,area,postcode\n"
	districts := []string{"central", "north", "south", "east"}
	for i := 0; i < 200; i++ {
		d := districts[i%4]
		a := []string{"010", "020"}[(i/4)%2]
		pc := map[string]string{
			"central010": "100001", "central020": "200001",
			"north010": "100002", "north020": "200002",
			"south010": "100003", "south020": "200003",
			"east010": "100004", "east020": "200004",
		}[d+a]
		obsPC := pc
		if i%10 == 0 {
			obsPC = "" // missing postcode to repair
		}
		input += "shop-" + string(rune('a'+i%26)) + "," + d + "," + a + "," + obsPC + "\n"
		master += "r1," + d + "," + a + "," + pc + "\n"
	}
	if err := os.WriteFile(inputPath, []byte(input), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(masterPath, []byte(master), 0o644); err != nil {
		t.Fatal(err)
	}
	return inputPath, masterPath
}

func TestLoadCSVProblemExplicitMatch(t *testing.T) {
	in, ms := writeCSVFixture(t)
	p, err := erminer.LoadCSVProblem(erminer.CSVSpec{
		InputPath:  in,
		MasterPath: ms,
		Y:          "postcode",
		Ym:         "postcode",
		MatchPairs: map[string]string{"district": "district", "area": "area"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := erminer.Validate(p); err != nil {
		t.Fatal(err)
	}
	if p.Input.NumRows() != 200 || p.Master.NumRows() != 200 {
		t.Errorf("rows = %d/%d", p.Input.NumRows(), p.Master.NumRows())
	}
	// Matched columns share dictionaries: codes are comparable.
	d := p.Input.Schema().MustIndex("district")
	dm := p.Master.Schema().MustIndex("district")
	if p.Input.Dict(d) != p.Master.Dict(dm) {
		t.Fatal("matched columns do not share a dictionary")
	}

	// Mining over the loaded problem finds (district, area) → postcode.
	p.TopK = 5
	res, err := erminer.NewEnuMiner(erminer.EnuMinerConfig{}).Mine(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) == 0 {
		t.Fatal("no rules on CSV data")
	}
	top := res.Rules[0]
	if top.Measures.Certainty != 1 {
		t.Errorf("top CSV rule certainty = %g", top.Measures.Certainty)
	}

	// And the repair fills the missing postcodes.
	fixes := erminer.Repair(p, res.Rules)
	y := p.Y
	filled := erminer.WriteFixes(p.Input, y, fixes, true)
	if filled != 20 {
		t.Errorf("filled %d missing postcodes, want 20", filled)
	}
}

func TestLoadCSVProblemInferredMatch(t *testing.T) {
	in, ms := writeCSVFixture(t)
	p, err := erminer.LoadCSVProblem(erminer.CSVSpec{
		InputPath:  in,
		MasterPath: ms,
		Y:          "postcode",
		Ym:         "postcode",
		// MatchPairs nil: inferred from value overlap + names.
	})
	if err != nil {
		t.Fatal(err)
	}
	// district and area overlap heavily and share names: both matched.
	d := p.Input.Schema().MustIndex("district")
	a := p.Input.Schema().MustIndex("area")
	if !p.Match.Matched(d) || !p.Match.Matched(a) {
		t.Error("value-overlap inference missed district/area")
	}
	// shop (input-only) must stay unmatched.
	s := p.Input.Schema().MustIndex("shop")
	if p.Match.Matched(s) {
		t.Error("input-only column matched")
	}
}

func TestLoadCSVProblemErrors(t *testing.T) {
	in, ms := writeCSVFixture(t)
	if _, err := erminer.LoadCSVProblem(erminer.CSVSpec{
		InputPath: in, MasterPath: ms, Y: "", Ym: "",
	}); err == nil {
		t.Error("missing Y accepted")
	}
	if _, err := erminer.LoadCSVProblem(erminer.CSVSpec{
		InputPath: in, MasterPath: ms, Y: "nope", Ym: "postcode",
	}); err == nil {
		t.Error("unknown Y accepted")
	}
	if _, err := erminer.LoadCSVProblem(erminer.CSVSpec{
		InputPath: "/nonexistent.csv", MasterPath: ms, Y: "postcode", Ym: "postcode",
	}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestExportImportRules(t *testing.T) {
	in, ms := writeCSVFixture(t)
	p, err := erminer.LoadCSVProblem(erminer.CSVSpec{
		InputPath: in, MasterPath: ms, Y: "postcode", Ym: "postcode",
		MatchPairs: map[string]string{"district": "district", "area": "area"},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.TopK = 5
	res, err := erminer.NewEnuMiner(erminer.EnuMinerConfig{}).Mine(p)
	if err != nil {
		t.Fatal(err)
	}
	data, err := erminer.ExportRules(p, res.Rules)
	if err != nil {
		t.Fatal(err)
	}

	// Re-import against a freshly loaded problem (different codes!).
	p2, err := erminer.LoadCSVProblem(erminer.CSVSpec{
		InputPath: in, MasterPath: ms, Y: "postcode", Ym: "postcode",
		MatchPairs: map[string]string{"district": "district", "area": "area"},
	})
	if err != nil {
		t.Fatal(err)
	}
	imported, err := erminer.ImportRules(p2, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(imported) != len(res.Rules) {
		t.Fatalf("imported %d rules, want %d", len(imported), len(res.Rules))
	}
	// The imported rules repair exactly like the originals.
	f1 := erminer.Repair(p, res.Rules)
	f2 := erminer.Repair(p2, imported)
	if f1.Covered != f2.Covered {
		t.Errorf("coverage differs after round-trip: %d vs %d", f1.Covered, f2.Covered)
	}
	for row := range f1.Pred {
		v1 := p.Input.Dict(p.Y).Value(f1.Pred[row])
		v2 := p2.Input.Dict(p2.Y).Value(f2.Pred[row])
		if v1 != v2 {
			t.Fatalf("row %d: fixes differ after round-trip: %q vs %q", row, v1, v2)
		}
	}
}

func TestImportRulesBadData(t *testing.T) {
	in, ms := writeCSVFixture(t)
	p, err := erminer.LoadCSVProblem(erminer.CSVSpec{
		InputPath: in, MasterPath: ms, Y: "postcode", Ym: "postcode",
		MatchPairs: map[string]string{"district": "district"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := erminer.ImportRules(p, []byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := erminer.ImportRules(p, []byte(`[{"y":"bogus","ym":"postcode"}]`)); err == nil {
		t.Error("unknown attribute accepted")
	}
}
