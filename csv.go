package erminer

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"erminer/internal/relation"
	"erminer/internal/schema"
)

// CSVSpec describes how to build a discovery problem from two CSV files
// (with header rows). This is the path for running the miners on your
// own data rather than the built-in benchmarks.
type CSVSpec struct {
	// InputPath and MasterPath are the CSV files for D and D_m.
	InputPath, MasterPath string
	// Y and Ym name the dependent attribute in each file.
	Y, Ym string
	// MatchPairs maps input column names to master column names. Nil
	// means the match is inferred from value overlap (schema matching).
	MatchPairs map[string]string
	// ContinuousCols names input columns to treat as continuous
	// (encoded as N_split ranges instead of one dimension per value).
	// Columns whose non-empty values all parse as numbers with more
	// than 20 distinct values are detected automatically.
	ContinuousCols []string
	// SupportThreshold is η_s; zero derives 2.5% of the input size
	// (min 5), matching the paper's Adult/Nursery ratio.
	SupportThreshold int
	// TopK is the rule budget; zero means the paper default 50.
	TopK int
}

// LoadCSVProblem reads the two CSV files, establishes the schema match
// (given or inferred), and builds a Problem whose matched columns share
// value dictionaries — the invariant the rule evaluator relies on.
func LoadCSVProblem(spec CSVSpec) (*Problem, error) {
	inHeader, inRows, err := readCSVRaw(spec.InputPath)
	if err != nil {
		return nil, fmt.Errorf("erminer: input CSV: %w", err)
	}
	msHeader, msRows, err := readCSVRaw(spec.MasterPath)
	if err != nil {
		return nil, fmt.Errorf("erminer: master CSV: %w", err)
	}

	pairs := spec.MatchPairs
	if pairs == nil {
		pairs = inferPairsByValues(inHeader, inRows, msHeader, msRows)
	}
	// The dependent pair is part of the match.
	if spec.Y == "" || spec.Ym == "" {
		return nil, fmt.Errorf("erminer: CSVSpec.Y and Ym are required")
	}
	pairs[spec.Y] = spec.Ym

	// Build schemas with shared Domain names for matched columns.
	continuous := make(map[string]bool, len(spec.ContinuousCols))
	for _, c := range spec.ContinuousCols {
		continuous[c] = true
	}
	for i, name := range inHeader {
		if looksContinuous(column(inRows, i)) {
			continuous[name] = true
		}
	}

	inAttrs := make([]relation.Attribute, len(inHeader))
	for i, name := range inHeader {
		a := relation.Attribute{Name: name, Domain: "in:" + name}
		if m, ok := pairs[name]; ok {
			a.Domain = "match:" + name + "=" + m
		}
		if continuous[name] {
			a.Type = relation.Continuous
		}
		inAttrs[i] = a
	}
	domainOfMaster := make(map[string]string)
	for in, m := range pairs {
		domainOfMaster[m] = "match:" + in + "=" + m
	}
	msAttrs := make([]relation.Attribute, len(msHeader))
	for i, name := range msHeader {
		a := relation.Attribute{Name: name, Domain: "ms:" + name}
		if d, ok := domainOfMaster[name]; ok {
			a.Domain = d
		}
		msAttrs[i] = a
	}

	inSchema := relation.NewSchema(inAttrs...)
	msSchema := relation.NewSchema(msAttrs...)
	pool := relation.NewPool()
	input := relation.New(inSchema, pool)
	for _, row := range inRows {
		input.AppendRow(row)
	}
	master := relation.New(msSchema, pool)
	for _, row := range msRows {
		master.AppendRow(row)
	}

	m, err := schema.FromNames(inSchema, msSchema, pairs)
	if err != nil {
		return nil, err
	}
	y := inSchema.Index(spec.Y)
	if y < 0 {
		return nil, fmt.Errorf("erminer: input CSV has no column %q", spec.Y)
	}
	ym := msSchema.Index(spec.Ym)
	if ym < 0 {
		return nil, fmt.Errorf("erminer: master CSV has no column %q", spec.Ym)
	}

	eta := spec.SupportThreshold
	if eta == 0 {
		eta = len(inRows) / 40
		if eta < 5 {
			eta = 5
		}
	}
	return &Problem{
		Input:            input,
		Master:           master,
		Match:            m,
		Y:                y,
		Ym:               ym,
		SupportThreshold: eta,
		TopK:             spec.TopK,
	}, nil
}

func readCSVRaw(path string) (header []string, rows [][]string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	//ermvet:ignore errdrop read-only descriptor; closing cannot lose data
	defer f.Close()
	return readCSV(f)
}

// readCSV parses a header row plus data rows from r. Splitting this off
// from the file handling gives the fuzz target a pure []byte entry point.
func readCSV(r io.Reader) (header []string, rows [][]string, err error) {
	cr := csv.NewReader(r)
	header, err = cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("reading header: %w", err)
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, rec)
	}
	return header, rows, nil
}

func column(rows [][]string, i int) []string {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, r[i])
	}
	return out
}

// looksContinuous reports whether every non-empty value parses as a
// number and more than 20 distinct values occur.
func looksContinuous(vals []string) bool {
	distinct := make(map[string]struct{})
	for _, v := range vals {
		if v == "" {
			continue
		}
		if _, err := strconv.ParseFloat(v, 64); err != nil {
			return false
		}
		distinct[v] = struct{}{}
	}
	return len(distinct) > 20
}

// inferPairsByValues matches columns by Jaccard overlap of their value
// sets plus a same-name bonus, mirroring schema.InferMatch over raw
// records (the relations are not built yet at this point).
func inferPairsByValues(inHeader []string, inRows [][]string, msHeader []string, msRows [][]string) map[string]string {
	set := func(vals []string) map[string]struct{} {
		out := make(map[string]struct{})
		for _, v := range vals {
			if v != "" {
				out[v] = struct{}{}
			}
		}
		return out
	}
	inSets := make([]map[string]struct{}, len(inHeader))
	for i := range inHeader {
		inSets[i] = set(column(inRows, i))
	}
	msSets := make([]map[string]struct{}, len(msHeader))
	for i := range msHeader {
		msSets[i] = set(column(msRows, i))
	}

	pairs := make(map[string]string)
	usedMaster := make(map[int]bool)
	for i, inName := range inHeader {
		best, bestScore := -1, 0.3
		for j, msName := range msHeader {
			if usedMaster[j] {
				continue
			}
			score := jaccardSets(inSets[i], msSets[j])
			if inName == msName {
				score += 0.25
			}
			if score > bestScore {
				best, bestScore = j, score
			}
		}
		if best >= 0 {
			pairs[inName] = msHeader[best]
			usedMaster[best] = true
		}
	}
	return pairs
}

func jaccardSets(a, b map[string]struct{}) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, big := a, b
	if len(small) > len(big) {
		small, big = big, small
	}
	inter := 0
	for v := range small {
		if _, ok := big[v]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}
