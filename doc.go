// Package erminer is a from-scratch Go implementation of editing-rule
// discovery, reproducing "Discovering Editing Rules by Deep Reinforcement
// Learning" (ICDE 2023).
//
// Editing rules (eRs) apply high-quality master data to repair
// low-quality input data: a rule φ = ((X, X_m) → (Y, Y_m), t_p) says
// that when an input tuple t matches the pattern t_p and agrees with a
// master tuple t_m on the attribute lists (X, X_m), then t[Y] can be
// fixed to t_m[Y_m]. This package discovers such rules automatically
// with three algorithms:
//
//   - RLMiner — the paper's contribution: a deep-Q-network agent grows a
//     rule tree, learning which refinements (LHS attribute pairs or
//     pattern conditions) are worth exploring, guided by a utility-based
//     reward. It avoids enumerating the exponential condition space.
//   - EnuMiner — the exhaustive enumeration baseline with support,
//     certainty and redundancy pruning (and the H3 length-bounded
//     heuristic variant).
//   - CTANE — the CFD-discovery baseline: conditional functional
//     dependencies mined on master data, converted to editing rules.
//
// The typical workflow is:
//
//	ds, _ := erminer.BuildDataset("covid", erminer.DatasetSpec{InputSize: 2500, MasterSize: 1824, Seed: 1})
//	problem := ds.Problem(0) // support threshold from dataset default
//	miner := erminer.NewRLMiner(erminer.RLMinerConfig{Seed: 1})
//	result, _ := miner.Mine(problem)
//	fixes := erminer.Repair(problem, result.Rules)
//
// See the examples/ directory for complete programs, DESIGN.md for the
// architecture, and EXPERIMENTS.md for the reproduction of the paper's
// evaluation.
package erminer
