package erminer

import "math/rand"

// newRand returns a seeded PRNG. All randomness in the library flows
// through explicit seeds so experiments are reproducible.
func newRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
