// This example runs the miners on user-supplied CSV data instead of the
// built-in benchmarks: it writes a small shops/postcode-directory pair
// to a temp directory, loads it with an *inferred* schema match, mines
// editing rules, exports them to JSON, and chase-repairs the input.
//
// Replace the generated files with your own CSVs to use this as a
// template.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"erminer"
)

func main() {
	inputPath, masterPath := writeSampleCSVs()
	fmt.Printf("input:  %s\nmaster: %s\n\n", inputPath, masterPath)

	// Load the two CSVs. MatchPairs is nil, so the schema match is
	// inferred from value overlap between columns.
	p, err := erminer.LoadCSVProblem(erminer.CSVSpec{
		InputPath:  inputPath,
		MasterPath: masterPath,
		Y:          "postcode",
		Ym:         "postcode",
	})
	if err != nil {
		log.Fatal(err)
	}
	p.TopK = 10
	fmt.Printf("loaded: input %d×%d, master %d×%d, inferred match |M| = %d, η_s = %d\n",
		p.Input.NumRows(), p.Input.Schema().Len(),
		p.Master.NumRows(), p.Master.Schema().Len(),
		p.Match.Size(), p.SupportThreshold)

	res, err := erminer.NewEnuMiner(erminer.EnuMinerConfig{}).Mine(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndiscovered %d rules:\n", len(res.Rules))
	for _, r := range res.Rules {
		fmt.Printf("  U=%-7.2f S=%-4d C=%.2f  %s\n",
			r.Measures.Utility, r.Measures.Support, r.Measures.Certainty,
			erminer.FormatRule(p, r.Rule))
	}

	// Export the rules as JSON — a portable artifact you can apply to a
	// future snapshot of the same data.
	data, err := erminer.ExportRules(p, res.Rules)
	if err != nil {
		log.Fatal(err)
	}
	rulesPath := filepath.Join(filepath.Dir(inputPath), "rules.json")
	if err := os.WriteFile(rulesPath, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexported rules to %s (%d bytes)\n", rulesPath, len(data))

	// Chase-repair: here a single target; with rules mined for several
	// attributes (erminer.MineAll) the chase cascades fixes.
	missing := countMissing(p)
	chase := erminer.Chase(p.Input, p.Master, []erminer.ChaseTarget{
		{Y: p.Y, Rules: res.RuleList()},
	}, 0)
	fmt.Printf("chase: %d missing postcodes before, fixed %d cells in %d rounds, %d remain\n",
		missing, chase.Total, chase.Rounds, countMissing(p))
}

func countMissing(p *erminer.Problem) int {
	n := 0
	for row := 0; row < p.Input.NumRows(); row++ {
		if p.Input.Code(row, p.Y) == erminer.Null {
			n++
		}
	}
	return n
}

// writeSampleCSVs fabricates a shops table with missing postcodes and
// the postcode directory that determines them by (district, area_code).
func writeSampleCSVs() (inputPath, masterPath string) {
	dir, err := os.MkdirTemp("", "erminer-example")
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	districts := []string{"Central", "Harbour", "Hillside", "Old Town", "Riverside"}
	areas := []string{"010", "020", "030"}
	postcode := func(d, a string) string {
		h := 0
		for _, c := range d + a {
			h = h*31 + int(c)
		}
		if h < 0 {
			h = -h
		}
		return fmt.Sprintf("%06d", 100000+h%900000)
	}

	input := "shop,district,area_code,phone,postcode\n"
	for i := 0; i < 300; i++ {
		d := districts[rng.Intn(len(districts))]
		a := areas[rng.Intn(len(areas))]
		pc := postcode(d, a)
		if rng.Intn(6) == 0 {
			pc = "" // missing
		}
		input += fmt.Sprintf("Shop %03d,%s,%s,%s-%06d,%s\n", i, d, a, a, rng.Intn(1000000), pc)
	}
	master := "province,district,area_code,postcode\n"
	for _, d := range districts {
		for _, a := range areas {
			master += fmt.Sprintf("P1,%s,%s,%s\n", d, a, postcode(d, a))
		}
	}

	inputPath = filepath.Join(dir, "shops.csv")
	masterPath = filepath.Join(dir, "directory.csv")
	if err := os.WriteFile(inputPath, []byte(input), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(masterPath, []byte(master), 0o644); err != nil {
		log.Fatal(err)
	}
	return inputPath, masterPath
}
