// Quickstart: generate a benchmark dataset, dirty it, discover editing
// rules with RLMiner, and repair the dirty cells with the master data.
package main

import (
	"fmt"
	"log"

	"erminer"
)

func main() {
	// 1. Build the Covid benchmark: self-reported registration data
	//    (input) plus the curated national records (master data).
	ds, err := erminer.BuildDataset("covid", erminer.DatasetSpec{
		InputSize:  2500,
		MasterSize: 1824,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Corrupt 10% of the input cells with typos, substitutions and
	//    missing values (the clean copy is kept for scoring).
	n := ds.InjectErrors(erminer.NoiseConfig{Rate: 0.10, Seed: 2})
	fmt.Printf("injected %d cell errors\n", n)

	// 3. Discover editing rules with the reinforcement-learning miner.
	p := ds.Problem(0) // 0 = dataset-default support threshold
	p.TopK = 20
	miner := erminer.NewRLMiner(erminer.RLMinerConfig{TrainSteps: 5000, Seed: 3})
	res, err := miner.Mine(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered %d rules; top rules:\n", len(res.Rules))
	for i, r := range res.Rules {
		if i == 5 {
			break
		}
		fmt.Printf("  U=%-7.2f S=%-5d C=%.2f Q=%+.2f  %s\n",
			r.Measures.Utility, r.Measures.Support, r.Measures.Certainty,
			r.Measures.Quality, erminer.FormatRule(p, r.Rule))
	}

	// 4. Repair: aggregate candidate fixes across rules by certainty
	//    score and score the result against the known truth.
	fixes := erminer.Repair(p, res.Rules)
	prf := erminer.Evaluate(fixes.Pred, ds.Truth())
	fmt.Printf("repair covered %d/%d tuples: P=%.3f R=%.3f F1=%.3f\n",
		fixes.Covered, p.Input.NumRows(), prf.Precision, prf.Recall, prf.F1)

	// 5. Write the fixes back into the input relation.
	changed := erminer.WriteFixes(p.Input, ds.Y(), fixes, false)
	fmt.Printf("wrote %d fixed cells into the input relation\n", changed)
}
