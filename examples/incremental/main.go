// This example demonstrates incremental discovery with RLMiner-ft
// (paper §V-D3, Figures 10-11): as the input data is enriched over time,
// the previously trained value network is fine-tuned with a fifth of the
// original step budget instead of retraining from scratch, at nearly the
// same repair quality.
package main

import (
	"fmt"
	"log"
	"time"

	"erminer"
)

func main() {
	sizes := []int{5000, 7500, 10000}

	var prev *erminer.RLMiner
	for stage, size := range sizes {
		ds, err := erminer.BuildDataset("adult", erminer.DatasetSpec{
			InputSize:  size,
			MasterSize: 1250,
			Seed:       int64(31 + stage),
		})
		if err != nil {
			log.Fatal(err)
		}
		ds.InjectErrors(erminer.NoiseConfig{Rate: 0.10, Seed: int64(41 + stage)})
		p := ds.Problem(0)
		p.TopK = 50

		miner := erminer.NewRLMiner(erminer.RLMinerConfig{
			TrainSteps:    5000,
			FineTuneSteps: 1000,
			Seed:          int64(51 + stage),
		})
		start := time.Now()
		var res *erminer.ResultSet
		if prev == nil {
			res, err = miner.Mine(p) // first stage: from scratch
		} else {
			res, err = miner.MineFineTuned(p, prev) // later: fine-tune
		}
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)

		fixes := erminer.Repair(p, res.Rules)
		prf := erminer.Evaluate(fixes.Pred, ds.Truth())
		fmt.Printf("stage %d (%5d tuples, %s): %2d rules in %-8v F1=%.3f\n",
			stage+1, size, miner.Name(), len(res.Rules),
			elapsed.Round(time.Millisecond), prf.F1)
		prev = miner
	}
}
