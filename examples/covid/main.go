// This example reproduces the paper's motivating scenario (Example 1 and
// Figure 1): self-reported COVID-19 registration data is repaired from
// the national records, and the discovered rules carry the input-side
// condition t_p[overseas] = "No" — the paper's φ₀ — which prevents the
// national records (that only track domestic cases) from incorrectly
// overwriting the infection case of travellers infected overseas.
package main

import (
	"fmt"
	"log"
	"strings"

	"erminer"
)

func main() {
	ds, err := erminer.BuildDataset("covid", erminer.DatasetSpec{
		InputSize:  2500,
		MasterSize: 1824,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Blank out 15% of the infection_case column: the passengers forgot
	// to fill it in.
	y := ds.Y()
	missing := ds.InjectErrors(erminer.NoiseConfig{Rate: 0.15, Cols: []int{y}, Seed: 8})
	fmt.Printf("registration data: %d tuples, %d corrupted infection_case cells\n",
		ds.Input().NumRows(), missing)

	p := ds.Problem(0)
	p.TopK = 20

	// Compare EnuMiner (exhaustive) with RLMiner on the same problem.
	for _, miner := range []erminer.Miner{
		erminer.NewEnuMiner(erminer.EnuMinerConfig{}),
		erminer.NewRLMiner(erminer.RLMinerConfig{TrainSteps: 5000, Seed: 9}),
	} {
		res, err := miner.Mine(p)
		if err != nil {
			log.Fatal(err)
		}
		guarded := 0
		for _, r := range res.Rules {
			if strings.Contains(erminer.FormatRule(p, r.Rule), "overseas=No") {
				guarded++
			}
		}
		fixes := erminer.Repair(p, res.Rules)
		prf := erminer.Evaluate(fixes.Pred, ds.Truth())
		fmt.Printf("\n%s: %d rules (%d carry the overseas=No guard), F1=%.3f\n",
			miner.Name(), len(res.Rules), guarded, prf.F1)
		for i, r := range res.Rules {
			if i == 3 {
				break
			}
			fmt.Printf("  %s\n", erminer.FormatRule(p, r.Rule))
		}
	}

	// Show why the guard matters: repair with only the guarded rules and
	// check that overseas travellers keep their own infection cases.
	res, err := erminer.NewEnuMiner(erminer.EnuMinerConfig{}).Mine(p)
	if err != nil {
		log.Fatal(err)
	}
	var guarded []erminer.MinedRule
	for _, r := range res.Rules {
		if strings.Contains(erminer.FormatRule(p, r.Rule), "overseas=No") {
			guarded = append(guarded, r)
		}
	}
	fixes := erminer.Repair(p, guarded)
	overseasCol := p.Input.Schema().MustIndex("overseas")
	wrongOverseas := 0
	for row := 0; row < p.Input.NumRows(); row++ {
		if fixes.Pred[row] != erminer.Null && p.Input.Value(row, overseasCol) == "Yes" {
			wrongOverseas++
		}
	}
	fmt.Printf("\nguarded rules propose fixes for %d tuples; %d of them are overseas travellers\n",
		fixes.Covered, wrongOverseas)
}
