// This example mirrors the paper's Location dataset (§V-A1): coffee-shop
// records with 14.7% missing postcodes are completed from a government
// postcode directory used as master data. The discovered rules include
// the paper's φ₂ = ((area_code, County) → Postcode): because district
// names repeat across cities, the postcode is determined only by county
// and area code jointly.
package main

import (
	"fmt"
	"log"

	"erminer"
)

func main() {
	ds, err := erminer.BuildDataset("location", erminer.DatasetSpec{
		InputSize:  2559,
		MasterSize: 3430,
		Seed:       21,
	})
	if err != nil {
		log.Fatal(err)
	}
	y := ds.Y()

	// 14.7% of postcodes are missing (imputation targets), plus a few
	// real errors scattered across the other attributes.
	missing := ds.InjectErrors(erminer.NoiseConfig{Rate: 0.147, Cols: []int{y}, Seed: 22})
	other := ds.InjectErrors(erminer.NoiseConfig{Rate: 0.02, Seed: 23})
	fmt.Printf("shops: %d tuples, %d corrupted postcodes, %d other errors\n",
		ds.Input().NumRows(), missing, other)
	fmt.Printf("postcode directory: %d counties\n", ds.Master().NumRows())

	p := ds.Problem(0)
	p.TopK = 10
	res, err := erminer.NewRLMiner(erminer.RLMinerConfig{TrainSteps: 5000, Seed: 24}).Mine(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndiscovered %d rules:\n", len(res.Rules))
	for _, r := range res.Rules {
		fmt.Printf("  U=%-7.2f S=%-5d C=%.2f  %s\n",
			r.Measures.Utility, r.Measures.Support, r.Measures.Certainty,
			erminer.FormatRule(p, r.Rule))
	}

	// Imputation mode: only fill the missing postcodes, leave present
	// (possibly wrong) values untouched.
	fixes := erminer.Repair(p, res.Rules)
	before := countMissing(p, y)
	filled := erminer.WriteFixes(p.Input, y, fixes, true)
	after := countMissing(p, y)
	fmt.Printf("\nimputation: %d missing before, filled %d, %d remain\n", before, filled, after)

	// Score only the imputed cells against the ground truth.
	truth := ds.Truth()
	correct := 0
	for row := 0; row < p.Input.NumRows(); row++ {
		if fixes.Pred[row] != erminer.Null && p.Input.Code(row, y) == truth[row] {
			correct++
		}
	}
	prf := erminer.Evaluate(fixes.Pred, truth)
	fmt.Printf("repair quality: weighted P=%.3f R=%.3f F1=%.3f\n",
		prf.Precision, prf.Recall, prf.F1)
}

func countMissing(p *erminer.Problem, y int) int {
	n := 0
	for row := 0; row < p.Input.NumRows(); row++ {
		if p.Input.Code(row, y) == erminer.Null {
			n++
		}
	}
	return n
}
