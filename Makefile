# Developer entry points. `make check` is the gate every change must
# pass: gofmt + vet + ermvet (the repo's own static-analysis pass, see
# README "Static analysis") + build (all packages, including cmd/erminer
# and cmd/erminerd) + race-enabled tests (see scripts/check.sh).

.PHONY: check lint fuzz test bench bench-baseline build serve

check:
	./scripts/check.sh

# The ermvet pass alone: every repo-specific determinism, concurrency
# and wire-format check over every non-test package, as newline-
# delimited JSON (suppressed findings included, for the CI annotator).
lint:
	go run ./cmd/ermvet -checks all -json ./...

# Short fuzz smoke over the two byte-parsing surfaces: the CSV ingestion
# path and the rules JSON import. CI-friendly 5s per target; raise
# -fuzztime locally for a real hunt.
fuzz:
	go test -run '^$$' -fuzz FuzzReadCSV -fuzztime 5s .
	go test -run '^$$' -fuzz FuzzImportRules -fuzztime 5s ./internal/rulesio

build:
	go build ./...

# Build and run the rule-serving daemon on the covid benchmark, mining
# an initial rule set at startup. See README "Serving" for the curl
# walkthrough against it.
serve:
	go build -o bin/erminerd ./cmd/erminerd
	./bin/erminerd -dataset covid -noise 0.1 -mine enuminerh3

test:
	go test ./...

# The paper-artifact benchmarks plus the parallel-engine benchmarks
# (BenchmarkEvaluateParallel / BenchmarkEnuMinerParallel report their
# speedup over the serial path; baseline in BENCH_parallel.json, marked
# stale since the columnar engine landed — see BENCH_hotpath.json).
bench:
	go test -run XXX -bench . -benchmem .

# Re-record the columnar hot-path baseline (BENCH_hotpath.json):
# BenchmarkEvaluate/{columnar,scalar} and the serve-layer
# BenchmarkRepairThroughput. See README "Performance".
bench-baseline:
	./scripts/bench.sh
