# Developer entry points. `make check` is the gate every change must
# pass: gofmt + vet + build (all packages, including cmd/erminer and
# cmd/erminerd) + race-enabled tests (see scripts/check.sh).

.PHONY: check test bench build serve

check:
	./scripts/check.sh

build:
	go build ./...

# Build and run the rule-serving daemon on the covid benchmark, mining
# an initial rule set at startup. See README "Serving" for the curl
# walkthrough against it.
serve:
	go build -o bin/erminerd ./cmd/erminerd
	./bin/erminerd -dataset covid -noise 0.1 -mine enuminerh3

test:
	go test ./...

# The paper-artifact benchmarks plus the parallel-engine benchmarks
# (BenchmarkEvaluateParallel / BenchmarkEnuMinerParallel report their
# speedup over the serial path; baseline in BENCH_parallel.json).
bench:
	go test -run XXX -bench . -benchmem .
