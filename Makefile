# Developer entry points. `make check` is the gate every change must
# pass: vet + build + race-enabled tests (see scripts/check.sh).

.PHONY: check test bench build

check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

# The paper-artifact benchmarks plus the parallel-engine benchmarks
# (BenchmarkEvaluateParallel / BenchmarkEnuMinerParallel report their
# speedup over the serial path; baseline in BENCH_parallel.json).
bench:
	go test -run XXX -bench . -benchmem .
