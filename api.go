package erminer

import (
	"fmt"

	"erminer/internal/cfd"
	"erminer/internal/cluster"
	"erminer/internal/core"
	"erminer/internal/datagen"
	"erminer/internal/enuminer"
	"erminer/internal/errgen"
	"erminer/internal/measure"
	"erminer/internal/metrics"
	"erminer/internal/relation"
	"erminer/internal/repair"
	"erminer/internal/rlminer"
	"erminer/internal/rule"
	"erminer/internal/schema"
	"erminer/internal/serve"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// Problem is one editing-rule discovery instance (paper Problem 1).
	// Its Parallelism field sets the worker budget of the parallel
	// evaluation engine (0 = all CPUs, 1 = serial; results are
	// bit-identical either way), and Problem.ShareIndexes equips it
	// with a shared master-index cache reused across mining, reward
	// queries and repair.
	Problem = core.Problem
	// IndexCache is the thread-safe, build-once master-index cache
	// shared by parallel evaluator shards. Attach one to a Problem with
	// Problem.ShareIndexes, or set the IndexCache field directly with
	// NewIndexCache to share indexes across problems over the same
	// master data.
	IndexCache = measure.IndexCache
	// Miner is a rule-discovery algorithm.
	Miner = core.Miner
	// MinedRule pairs a discovered rule with its measures.
	MinedRule = core.MinedRule
	// ResultSet is the output of one mining run.
	ResultSet = core.ResultSet
	// Rule is one editing rule φ = ((X, X_m) → (Y, Y_m), t_p).
	Rule = rule.Rule
	// Relation is a dictionary-encoded, column-oriented table.
	Relation = relation.Relation
	// Schema is an ordered attribute list.
	Schema = relation.Schema
	// Attribute describes one column.
	Attribute = relation.Attribute
	// Pool owns the shared value dictionaries of a dataset.
	Pool = relation.Pool
	// Delta is a batch of relation mutations (row appends + cell
	// updates) applied atomically by Relation.ApplyDelta. Codes must be
	// pre-interned with Dict.Code; Null is allowed.
	Delta = relation.Delta
	// CellUpdate overwrites one cell of an existing row with a
	// pre-interned code.
	CellUpdate = relation.CellUpdate
	// ChangeSet summarizes what a delta changed — appended row span and
	// updated columns — and drives incremental maintenance of derived
	// structures (IndexCache.ApplyDelta, ColumnIndex patching).
	ChangeSet = relation.ChangeSet
	// Match is the schema match M between input and master schemas.
	Match = schema.Match
	// Measures aggregates Support, Certainty, Quality and Utility.
	Measures = measure.Measures
	// PRF is a precision/recall/F-measure triple.
	PRF = metrics.PRF
	// RepairResult holds per-tuple predicted fixes.
	RepairResult = repair.Result
)

// Null is the dictionary code of a missing value.
const Null = relation.Null

// NewIndexCache returns an empty shared master-index cache (see the
// IndexCache alias).
func NewIndexCache() *IndexCache { return measure.NewIndexCache() }

// EnuMinerConfig configures the enumeration miner.
type EnuMinerConfig = enuminer.Config

// NewEnuMiner returns the exhaustive enumeration miner (paper §II-D).
func NewEnuMiner(cfg EnuMinerConfig) Miner { return enuminer.New(cfg) }

// NewEnuMinerH3 returns EnuMinerH3, the length-3-bounded heuristic
// variant (paper §V-D2).
func NewEnuMinerH3(cfg EnuMinerConfig) Miner { return enuminer.NewH3(cfg) }

// RLMinerConfig configures the reinforcement-learning miner.
type RLMinerConfig = rlminer.Config

// RLMiner is the reinforcement-learning miner (paper Alg. 3). Beyond the
// Miner interface it supports fine-tuning via MineFineTuned and exposes
// training statistics via Stats.
type RLMiner = rlminer.Miner

// NewRLMiner returns the RL-based miner, the paper's main contribution.
func NewRLMiner(cfg RLMinerConfig) *RLMiner { return rlminer.New(cfg) }

// CTANEConfig configures the CFD-discovery baseline.
type CTANEConfig = cfd.Config

// NewCTANE returns the CFD-discovery baseline miner (constant CFDs mined
// on master data and converted to editing rules).
func NewCTANE(cfg CTANEConfig) Miner { return cfd.New(cfg) }

// Dataset bundles a generated benchmark dataset: clean input, master
// data, schema match and dependent attribute pair.
type Dataset struct {
	inner *datagen.Dataset
	// Clean is the input relation before any error injection.
	Clean *Relation
}

// DatasetSpec selects dataset sizes and sampling.
type DatasetSpec struct {
	// InputSize and MasterSize are tuple counts; zero means the paper's
	// Table I sizes.
	InputSize, MasterSize int
	// DuplicateRate, when >= 0, fixes the fraction of input tuples that
	// correspond to master entities; negative means independent samples.
	DuplicateRate float64
	// Seed drives generation and sampling.
	Seed int64
}

// DatasetNames lists the built-in benchmark datasets: adult, covid,
// nursery, location.
func DatasetNames() []string { return datagen.AllNames() }

// BuildDataset materialises one of the built-in benchmark datasets.
func BuildDataset(name string, spec DatasetSpec) (*Dataset, error) {
	w, err := datagen.ByName(name)
	if err != nil {
		return nil, err
	}
	dr := spec.DuplicateRate
	if dr == 0 {
		dr = -1
	}
	ds, err := w.Build(datagen.Spec{
		InputSize:     spec.InputSize,
		MasterSize:    spec.MasterSize,
		DuplicateRate: dr,
		Seed:          spec.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Dataset{inner: ds, Clean: ds.Input.Clone()}, nil
}

// Input returns the (mutable) input relation D.
func (d *Dataset) Input() *Relation { return d.inner.Input }

// Master returns the master relation D_m.
func (d *Dataset) Master() *Relation { return d.inner.Master }

// Match returns the schema match M.
func (d *Dataset) Match() *Match { return d.inner.Match }

// Y returns the dependent attribute index in the input schema.
func (d *Dataset) Y() int { return d.inner.Y }

// Ym returns the dependent attribute index in the master schema.
func (d *Dataset) Ym() int { return d.inner.Ym }

// Name returns the dataset name.
func (d *Dataset) Name() string { return d.inner.Name }

// Problem builds the discovery problem for this dataset. A zero support
// threshold selects the dataset's size-scaled default η_s.
func (d *Dataset) Problem(supportThreshold int) *Problem {
	if supportThreshold == 0 {
		supportThreshold = d.inner.SupportThreshold
	}
	return &Problem{
		Input:            d.inner.Input,
		Master:           d.inner.Master,
		Match:            d.inner.Match,
		Y:                d.inner.Y,
		Ym:               d.inner.Ym,
		SupportThreshold: supportThreshold,
	}
}

// Truth returns the ground-truth codes of the dependent column (from the
// clean copy taken before error injection).
func (d *Dataset) Truth() []int32 {
	return errgen.TruthColumn(d.Clean, d.inner.Y)
}

// NoiseConfig controls error injection.
type NoiseConfig struct {
	// Rate is the per-cell corruption probability.
	Rate float64
	// Cols restricts injection to these columns; nil means all.
	Cols []int
	// Seed drives the randomness.
	Seed int64
}

// InjectErrors corrupts the dataset's input relation in place (BART-style
// typos, substitutions and missing values) and returns the number of
// corrupted cells. The clean copy in d.Clean is unaffected.
func (d *Dataset) InjectErrors(cfg NoiseConfig) int {
	errs := errgen.Inject(d.inner.Input, errgen.Config{
		Rate: cfg.Rate,
		Cols: cfg.Cols,
		Rng:  newRand(cfg.Seed),
	})
	return len(errs)
}

// Repair applies a mined rule set to the problem's input relation,
// returning per-tuple candidate fixes aggregated across rules by summed
// certainty score (paper §V-B2).
func Repair(p *Problem, rules []MinedRule) RepairResult {
	rs := &ResultSet{Rules: rules}
	return repair.Apply(p.NewEvaluator(), rs.RuleList())
}

// WriteFixes writes predicted fixes into the relation's dependent column;
// onlyMissing restricts to Null cells (imputation). Returns cells changed.
func WriteFixes(rel *Relation, y int, res RepairResult, onlyMissing bool) int {
	return repair.WriteFixes(rel, y, res, onlyMissing)
}

// Evaluate scores predictions against truths with the paper's weighted
// precision / recall / F-measure (§V-A2).
func Evaluate(pred, truth []int32) PRF {
	return metrics.Weighted(pred, truth)
}

// FormatRule renders a rule with attribute names and values.
func FormatRule(p *Problem, r *Rule) string {
	return r.String(p.Input, p.Master.Schema())
}

// Serving handles. The online rule-serving and repair daemon
// (cmd/erminerd) is built from these: a Server holds one problem's
// master data, answers POST /v1/repair and /v1/validate over arriving
// dirty tuples, mines new rule sets on an asynchronous worker pool
// (POST /v1/jobs) and hot-swaps the active set with zero downtime
// (PUT /v1/rules). See internal/serve for the endpoint contract.
type (
	// ServeConfig tunes the daemon (worker pool, bounded queue,
	// per-request timeout, job pool, batch and body limits). The zero
	// value is fully usable.
	ServeConfig = serve.Config
	// Server is the rule-serving daemon, an http.Handler.
	Server = serve.Server
	// JobSpec describes one asynchronous mining job.
	JobSpec = serve.JobSpec
	// JobStatus is the externally visible snapshot of one mining job.
	JobStatus = serve.JobStatus
	// DataPatchRequest is the PATCH /v1/data wire format: a delta of
	// row appends and cell updates against the input or master
	// relation, optionally triggering an RLMiner-ft re-mining job.
	DataPatchRequest = serve.DataPatchRequest
	// DataPatchResponse reports what a data patch changed and the rule
	// generation left serving after incremental re-validation.
	DataPatchResponse = serve.DataPatchResponse
	// DataCell addresses one cell in a data patch ("" means Null).
	DataCell = serve.DataCellJSON
)

// NewServer builds the rule-serving daemon over a problem. rules may be
// nil to start without an active rule set; activate one later through a
// mining job or PUT /v1/rules. Mount the server on any net/http mux and
// stop it with Server.Shutdown.
func NewServer(p *Problem, rules []MinedRule, cfg ServeConfig) (*Server, error) {
	return serve.New(p, rules, cfg)
}

// Cluster handles. The sharded serving cluster (ermcluster) fronts N
// erminerd workers with a stateless coordinator that speaks the same
// /v1/repair and /v1/validate API, hash-partitions each batch across
// the fleet, and merges the sub-responses byte-identically to a single
// node; PUT /v1/rules replicates rule-set generations to every worker
// with a two-phase stage/activate push. See internal/cluster for the
// topology and failure semantics.
type (
	// ClusterConfig tunes the coordinator (worker URLs, per-worker
	// timeout, retry budget, health-check period). Workers is required;
	// everything else has usable defaults.
	ClusterConfig = cluster.Config
	// Coordinator is the cluster front door, an http.Handler.
	Coordinator = cluster.Coordinator
	// WorkerStatus is one worker's liveness and rule generation as seen
	// by the coordinator's health checker.
	WorkerStatus = cluster.WorkerStatus
)

// NewCoordinator builds the ermcluster coordinator over a worker fleet
// and starts its background health checker. Mount it on any net/http
// mux and stop it with Coordinator.Shutdown.
func NewCoordinator(cfg ClusterConfig) (*Coordinator, error) {
	return cluster.New(cfg)
}

// Validate sanity-checks a problem, returning a descriptive error for
// malformed inputs.
func Validate(p *Problem) error {
	if p == nil {
		return fmt.Errorf("erminer: nil problem")
	}
	return p.Validate()
}
