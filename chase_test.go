package erminer_test

import (
	"bytes"
	"testing"

	"erminer"
)

// TestMineAllAndChase repairs several attributes of the covid input at
// once: rules are mined per matched attribute and chased to a fixpoint.
func TestMineAllAndChase(t *testing.T) {
	ds, err := erminer.BuildDataset("covid", erminer.DatasetSpec{
		InputSize: 1200, MasterSize: 800, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds.InjectErrors(erminer.NoiseConfig{Rate: 0.08, Seed: 42})
	p := ds.Problem(0)
	p.TopK = 10

	targets, err := erminer.MineAll(p, func(y int) erminer.Miner {
		return erminer.NewEnuMiner(erminer.EnuMinerConfig{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) < 2 {
		t.Fatalf("mined targets for %d attributes, want several", len(targets))
	}
	for _, tgt := range targets {
		if len(tgt.Rules) == 0 {
			t.Errorf("target %d has no rules", tgt.Y)
		}
		for _, r := range tgt.Rules {
			if r.Y != tgt.Y {
				t.Errorf("rule for attribute %d filed under %d", r.Y, tgt.Y)
			}
		}
	}

	res := erminer.Chase(p.Input, p.Master, targets, 0)
	if res.Total == 0 {
		t.Error("chase fixed nothing")
	}
	if res.Rounds < 1 {
		t.Errorf("rounds = %d", res.Rounds)
	}

	// Post-chase, the Y column must agree with the truth on a clear
	// majority of tuples.
	truth := ds.Truth()
	agree := 0
	for row := 0; row < p.Input.NumRows(); row++ {
		if p.Input.Code(row, p.Y) == truth[row] {
			agree++
		}
	}
	if float64(agree)/float64(p.Input.NumRows()) < 0.7 {
		t.Errorf("post-chase agreement = %d/%d", agree, p.Input.NumRows())
	}
}

func TestPublicModelPersistence(t *testing.T) {
	ds, err := erminer.BuildDataset("covid", erminer.DatasetSpec{
		InputSize: 600, MasterSize: 400, Seed: 43,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := ds.Problem(0)
	p.TopK = 10
	m := erminer.NewRLMiner(erminer.RLMinerConfig{TrainSteps: 600, Seed: 44})
	if _, err := m.Mine(p); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := erminer.SaveModel(m, &buf); err != nil {
		t.Fatal(err)
	}
	saved, err := erminer.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if saved.DimCount() == 0 {
		t.Error("empty saved model")
	}
}

func TestPublicInferMatch(t *testing.T) {
	ds, err := erminer.BuildDataset("covid", erminer.DatasetSpec{
		InputSize: 500, MasterSize: 400, Seed: 45,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := erminer.InferMatch(ds.Input(), ds.Master(), erminer.InferMatchConfig{})
	// The inferred match must at least find the dependent pair (shared
	// values, shared name).
	found := false
	for _, ym := range m.Of(ds.Y()) {
		if ym == ds.Ym() {
			found = true
		}
	}
	if !found {
		t.Error("inferred match missed the dependent pair")
	}
}
