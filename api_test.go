package erminer_test

import (
	"reflect"
	"strings"
	"testing"

	"erminer"
)

func TestDatasetNames(t *testing.T) {
	names := erminer.DatasetNames()
	if len(names) != 4 {
		t.Fatalf("names = %v", names)
	}
}

func TestBuildDatasetAndProblem(t *testing.T) {
	ds, err := erminer.BuildDataset("covid", erminer.DatasetSpec{
		InputSize: 400, MasterSize: 300, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name() != "covid" {
		t.Errorf("Name = %q", ds.Name())
	}
	if ds.Input().NumRows() != 400 {
		t.Errorf("input rows = %d", ds.Input().NumRows())
	}
	if ds.Master().NumRows() == 0 || ds.Match() == nil {
		t.Error("master/match missing")
	}
	p := ds.Problem(0)
	if err := erminer.Validate(p); err != nil {
		t.Fatalf("problem invalid: %v", err)
	}
	if p.SupportThreshold <= 0 {
		t.Error("default threshold not applied")
	}
	p2 := ds.Problem(33)
	if p2.SupportThreshold != 33 {
		t.Error("explicit threshold ignored")
	}
}

func TestBuildDatasetUnknown(t *testing.T) {
	if _, err := erminer.BuildDataset("bogus", erminer.DatasetSpec{}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestValidateNil(t *testing.T) {
	if erminer.Validate(nil) == nil {
		t.Fatal("nil problem accepted")
	}
}

func TestInjectErrorsAndTruth(t *testing.T) {
	ds, err := erminer.BuildDataset("nursery", erminer.DatasetSpec{
		InputSize: 500, MasterSize: 200, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := ds.InjectErrors(erminer.NoiseConfig{Rate: 0.2, Seed: 3})
	if n == 0 {
		t.Fatal("no errors injected")
	}
	// The clean copy and truth are unaffected.
	truth := ds.Truth()
	dirtyY := 0
	for row := 0; row < ds.Input().NumRows(); row++ {
		if ds.Input().Code(row, ds.Y()) != truth[row] {
			dirtyY++
		}
	}
	if dirtyY == 0 {
		t.Error("Y column untouched at 20% noise")
	}
}

// TestEndToEndWorkflow exercises the full public path: build → corrupt →
// mine (all three algorithms) → repair → evaluate → write fixes.
func TestEndToEndWorkflow(t *testing.T) {
	ds, err := erminer.BuildDataset("covid", erminer.DatasetSpec{
		InputSize: 1000, MasterSize: 700, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds.InjectErrors(erminer.NoiseConfig{Rate: 0.08, Seed: 5})
	p := ds.Problem(0)
	p.TopK = 15

	miners := []erminer.Miner{
		erminer.NewEnuMiner(erminer.EnuMinerConfig{}),
		erminer.NewEnuMinerH3(erminer.EnuMinerConfig{}),
		erminer.NewCTANE(erminer.CTANEConfig{}),
		erminer.NewRLMiner(erminer.RLMinerConfig{TrainSteps: 2500, Seed: 6}),
	}
	truth := ds.Truth()
	for _, m := range miners {
		res, err := m.Mine(p)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if len(res.Rules) == 0 {
			t.Fatalf("%s found no rules", m.Name())
		}
		for _, r := range res.Rules {
			if s := erminer.FormatRule(p, r.Rule); !strings.Contains(s, "infection_case") {
				t.Errorf("%s: rule misses target attribute: %s", m.Name(), s)
			}
		}
		fixes := erminer.Repair(p, res.Rules)
		if fixes.Covered == 0 {
			t.Errorf("%s covered nothing", m.Name())
		}
		prf := erminer.Evaluate(fixes.Pred, truth)
		if prf.F1 <= 0 {
			t.Errorf("%s F1 = %g", m.Name(), prf.F1)
		}
		t.Logf("%-11s rules=%2d covered=%4d F1=%.3f",
			m.Name(), len(res.Rules), fixes.Covered, prf.F1)
	}
}

func TestWriteFixesPublic(t *testing.T) {
	ds, err := erminer.BuildDataset("location", erminer.DatasetSpec{
		InputSize: 600, MasterSize: 800, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	y := ds.Y()
	ds.InjectErrors(erminer.NoiseConfig{Rate: 0.15, Cols: []int{y}, Seed: 8})
	p := ds.Problem(0)
	p.TopK = 5
	res, err := erminer.NewEnuMiner(erminer.EnuMinerConfig{}).Mine(p)
	if err != nil {
		t.Fatal(err)
	}
	fixes := erminer.Repair(p, res.Rules)
	changed := erminer.WriteFixes(p.Input, y, fixes, false)
	if changed == 0 {
		t.Error("no fixes written")
	}
	// After writing, re-running the repair proposes no further changes.
	fixes2 := erminer.Repair(p, res.Rules)
	if again := erminer.WriteFixes(p.Input, y, fixes2, false); again != 0 {
		t.Errorf("repair not idempotent: %d more changes", again)
	}
}

func TestDuplicateRateSpec(t *testing.T) {
	ds, err := erminer.BuildDataset("nursery", erminer.DatasetSpec{
		InputSize: 300, MasterSize: 200, DuplicateRate: 1.0, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Input().NumRows() != 300 {
		t.Errorf("rows = %d", ds.Input().NumRows())
	}
}

// TestParallelismPublicSurface drives the parallel-engine knobs through
// the public façade: Problem.Parallelism, Problem.ShareIndexes and
// NewIndexCache. Parallel mining must match the serial path exactly.
func TestParallelismPublicSurface(t *testing.T) {
	ds, err := erminer.BuildDataset("covid", erminer.DatasetSpec{
		InputSize: 300, MasterSize: 300, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds.InjectErrors(erminer.NoiseConfig{Rate: 0.1, Seed: 2})

	mine := func(workers int) *erminer.ResultSet {
		p := ds.Problem(0)
		p.TopK = 10
		p.Parallelism = workers
		p.ShareIndexes()
		if p.IndexCache == nil {
			t.Fatal("ShareIndexes left IndexCache nil")
		}
		res, err := erminer.NewEnuMinerH3(erminer.EnuMinerConfig{}).Mine(p)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := mine(1)
	parallel := mine(4)
	if serial.Explored != parallel.Explored || len(serial.Rules) != len(parallel.Rules) {
		t.Fatalf("parallel mine diverged: explored %d/%d, rules %d/%d",
			parallel.Explored, serial.Explored, len(parallel.Rules), len(serial.Rules))
	}
	for i := range serial.Rules {
		if serial.Rules[i].Rule.Key() != parallel.Rules[i].Rule.Key() ||
			!reflect.DeepEqual(serial.Rules[i].Measures, parallel.Rules[i].Measures) {
			t.Fatalf("rule %d diverged between serial and parallel mine", i)
		}
	}

	// An explicitly shared cache can span problems over the same data.
	cache := erminer.NewIndexCache()
	p := ds.Problem(0)
	p.IndexCache = cache
	if _, err := erminer.NewEnuMinerH3(erminer.EnuMinerConfig{}).Mine(p); err != nil {
		t.Fatal(err)
	}
	if cache.Len() == 0 {
		t.Fatal("shared cache not populated by mining")
	}
	if p.Workers() < 1 {
		t.Fatalf("Workers() = %d", p.Workers())
	}
}
