package erminer

import "erminer/internal/rulesio"

// ExportRules serialises mined rules to portable JSON: attribute names
// and string values rather than schema indices and dictionary codes, so
// a rule file survives re-encoding of the data. The same wire format is
// served by erminerd's GET /v1/rules and accepted by PUT /v1/rules.
func ExportRules(p *Problem, rules []MinedRule) ([]byte, error) {
	return rulesio.Export(p, rules)
}

// ImportRules parses rules exported by ExportRules against a problem's
// schemas, interning pattern values into the input dictionaries. The
// measures recorded in the file are carried through verbatim — they
// describe the data the rules were mined on; re-evaluate to score the
// rules against this problem's data.
func ImportRules(p *Problem, data []byte) ([]MinedRule, error) {
	return rulesio.Import(p, data)
}
