package erminer

import (
	"encoding/json"
	"fmt"

	"erminer/internal/rule"
)

// ruleJSON is the portable wire format of one editing rule: attribute
// names and string values rather than schema indices and dictionary
// codes, so a rule file survives re-encoding of the data.
type ruleJSON struct {
	LHS     [][2]string `json:"lhs"` // [input attr, master attr] pairs
	Y       string      `json:"y"`
	Ym      string      `json:"ym"`
	Pattern []condJSON  `json:"pattern,omitempty"`
	// Measures travel along for documentation; they are recomputed on
	// import if needed.
	Support   int     `json:"support,omitempty"`
	Certainty float64 `json:"certainty,omitempty"`
	Quality   float64 `json:"quality,omitempty"`
	Utility   float64 `json:"utility,omitempty"`
}

type condJSON struct {
	Attr   string   `json:"attr"`
	Values []string `json:"values"`
	Negate bool     `json:"negate,omitempty"`
	Label  string   `json:"label,omitempty"`
}

// ExportRules serialises mined rules to JSON, resolving indices and
// codes through the problem's schemas and dictionaries.
func ExportRules(p *Problem, rules []MinedRule) ([]byte, error) {
	rs := p.Input.Schema()
	ms := p.Master.Schema()
	out := make([]ruleJSON, 0, len(rules))
	for _, mr := range rules {
		r := mr.Rule
		rj := ruleJSON{
			Y:         rs.Attr(r.Y).Name,
			Ym:        ms.Attr(r.Ym).Name,
			Support:   mr.Measures.Support,
			Certainty: mr.Measures.Certainty,
			Quality:   mr.Measures.Quality,
			Utility:   mr.Measures.Utility,
		}
		for _, pr := range r.LHS {
			rj.LHS = append(rj.LHS, [2]string{
				rs.Attr(pr.Input).Name, ms.Attr(pr.Master).Name,
			})
		}
		for _, c := range r.Pattern {
			cj := condJSON{
				Attr:   rs.Attr(c.Attr).Name,
				Negate: c.Negate,
				Label:  c.Label,
			}
			for _, code := range c.Codes {
				cj.Values = append(cj.Values, p.Input.Dict(c.Attr).Value(code))
			}
			rj.Pattern = append(rj.Pattern, cj)
		}
		out = append(out, rj)
	}
	return json.MarshalIndent(out, "", "  ")
}

// ImportRules parses rules exported by ExportRules against a problem's
// schemas, interning pattern values into the input dictionaries. The
// returned rules carry no measures; evaluate or Repair with them as
// usual.
func ImportRules(p *Problem, data []byte) ([]MinedRule, error) {
	var raw []ruleJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("erminer: parsing rules JSON: %w", err)
	}
	rs := p.Input.Schema()
	ms := p.Master.Schema()
	out := make([]MinedRule, 0, len(raw))
	for i, rj := range raw {
		y := rs.Index(rj.Y)
		ym := ms.Index(rj.Ym)
		if y < 0 || ym < 0 {
			return nil, fmt.Errorf("erminer: rule %d: unknown dependent attributes %q/%q", i, rj.Y, rj.Ym)
		}
		var lhs []rule.AttrPair
		for _, pr := range rj.LHS {
			a := rs.Index(pr[0])
			am := ms.Index(pr[1])
			if a < 0 || am < 0 {
				return nil, fmt.Errorf("erminer: rule %d: unknown LHS pair %v", i, pr)
			}
			lhs = append(lhs, rule.AttrPair{Input: a, Master: am})
		}
		var pattern []rule.Condition
		for _, cj := range rj.Pattern {
			attr := rs.Index(cj.Attr)
			if attr < 0 {
				return nil, fmt.Errorf("erminer: rule %d: unknown pattern attribute %q", i, cj.Attr)
			}
			codes := make([]int32, 0, len(cj.Values))
			for _, v := range cj.Values {
				if v == "" {
					continue
				}
				codes = append(codes, p.Input.Dict(attr).Code(v))
			}
			c := rule.NewCondition(attr, codes, cj.Label)
			c.Negate = cj.Negate
			pattern = append(pattern, c)
		}
		out = append(out, MinedRule{Rule: rule.New(lhs, y, ym, pattern)})
	}
	return out, nil
}
