module erminer

go 1.22
