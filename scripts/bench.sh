#!/bin/sh
# bench.sh — record the benchmark baselines into BENCH_hotpath.json,
# BENCH_parallel.json and BENCH_delta.json.
#
# Runs the evaluation hot-path benchmarks — BenchmarkEvaluate/{columnar,
# scalar} in bench_test.go and BenchmarkRepairThroughput in
# internal/serve — and rewrites BENCH_hotpath.json from their output
# (ns/op, allocs/op, req/s, p99_ms, plus the columnar-over-scalar
# speedup). It then runs the parallel-engine benchmarks
# (BenchmarkEvaluateParallel/{columnar,scalar} and
# BenchmarkEnuMinerParallel) and rewrites BENCH_parallel.json. Run it on
# a quiet machine after touching internal/measure or the parallel
# frontier and commit the results. CI does not run this script; it runs
# the hot-path benchmarks at -benchtime=1x as a smoke and gates on
# TestEvaluateZeroAlloc instead (see .github/workflows/ci.yml).
#
# BENCHTIME=5s ./scripts/bench.sh  to trade time for tighter numbers.
# BENCH_ONLY=delta ./scripts/bench.sh  re-records only BENCH_delta.json
# (after touching the delta-maintenance layer without moving the hot
# path).
set -eu

cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-2s}"
out=BENCH_hotpath.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

# metric <benchmark name> <unit> — pull one value out of the raw
# `go test -bench` output. Benchmark lines interleave values with their
# units (`5043 ns/op  0 B/op  0 allocs/op  2604 req/s`), so scan
# pairwise rather than assuming column positions.
metric() {
    awk -v name="$1" -v unit="$2" '
        $1 ~ "^"name"(-[0-9]+)?$" {
            for (i = 2; i < NF; i++) if ($(i+1) == unit) { print $i; exit }
        }' "$raw"
}

# record_delta runs BenchmarkApplyDelta/{patched,rebuild} — absorbing a
# cell update by patching the caches through the relation change log
# versus rebuilding them from scratch — and rewrites BENCH_delta.json.
record_delta() {
    echo "== go test -bench BenchmarkApplyDelta ./internal/measure (-benchtime $benchtime)" >&2
    go test -run '^$' -bench 'BenchmarkApplyDelta$' -benchmem -benchtime "$benchtime" ./internal/measure | tee -a "$raw" >&2

    ad_p_ns=$(metric 'BenchmarkApplyDelta/patched' 'ns/op')
    ad_p_allocs=$(metric 'BenchmarkApplyDelta/patched' 'allocs/op')
    ad_p_iters=$(awk '$1 ~ "^BenchmarkApplyDelta/patched(-[0-9]+)?$" { print $2; exit }' "$raw")
    ad_r_ns=$(metric 'BenchmarkApplyDelta/rebuild' 'ns/op')
    ad_r_allocs=$(metric 'BenchmarkApplyDelta/rebuild' 'allocs/op')
    ad_r_iters=$(awk '$1 ~ "^BenchmarkApplyDelta/rebuild(-[0-9]+)?$" { print $2; exit }' "$raw")
    for v in "$ad_p_ns" "$ad_p_allocs" "$ad_r_ns" "$ad_r_allocs"; do
        if [ -z "$v" ]; then
            echo "bench.sh: failed to parse a delta-benchmark metric" >&2
            exit 1
        fi
    done
    ad_speedup=$(awk -v r="$ad_r_ns" -v p="$ad_p_ns" 'BEGIN { printf "%.1f", r / p }')
    dcpu=$(awk -F': ' '/^cpu:/ { print $2; exit }' "$raw")

    cat > BENCH_delta.json <<EOF
{
  "description": "Baseline for delta maintenance (DESIGN.md decision 19). Each iteration applies a one-cell update delta to the guard column of a 4000-row synthetic input and re-evaluates the full synthRules set. The patched subbench absorbs the delta through Relation.ApplyDelta plus change-log patching in ColumnIndex/IndexCache, keeping untouched posting lists, group projections and master indexes; the rebuild subbench discards every cache after the delta, which is what a version bump cost before the patch-don't-drop layer. patched_speedup_over_rebuild must stay > 1 — if it regresses, incremental maintenance has stopped paying for itself.",
  "recorded": "$(date +%Y-%m-%d)",
  "recorded_with": "scripts/bench.sh (benchtime $benchtime)",
  "host": {
    "go": "$(go version | awk '{print $3}')",
    "goos": "$(go env GOOS)",
    "goarch": "$(go env GOARCH)",
    "cpu": "${dcpu:-unknown}",
    "cores": $(nproc)
  },
  "benchmarks": {
    "BenchmarkApplyDelta/patched": {
      "dataset": "synth 4000x4000, one-cell guard update per op, 12 rules re-evaluated",
      "iterations": ${ad_p_iters:-0},
      "ns_per_op": $ad_p_ns,
      "allocs_per_op": $ad_p_allocs
    },
    "BenchmarkApplyDelta/rebuild": {
      "dataset": "synth 4000x4000, one-cell guard update per op, 12 rules re-evaluated",
      "iterations": ${ad_r_iters:-0},
      "ns_per_op": $ad_r_ns,
      "allocs_per_op": $ad_r_allocs
    }
  },
  "patched_speedup_over_rebuild": $ad_speedup
}
EOF

    echo "wrote BENCH_delta.json (patched ${ad_p_ns} ns/op vs rebuild ${ad_r_ns} ns/op; ${ad_speedup}x)" >&2
}

if [ "${BENCH_ONLY:-all}" = "delta" ]; then
    record_delta
    exit 0
fi

echo "== go test -bench BenchmarkEvaluate (-benchtime $benchtime)" >&2
go test -run '^$' -bench 'BenchmarkEvaluate$' -benchmem -benchtime "$benchtime" . | tee -a "$raw" >&2

echo "== go test -bench BenchmarkRepairThroughput ./internal/serve" >&2
go test -run '^$' -bench 'BenchmarkRepairThroughput$' -benchmem -benchtime "$benchtime" ./internal/serve | tee -a "$raw" >&2

col_ns=$(metric 'BenchmarkEvaluate/columnar' 'ns/op')
col_allocs=$(metric 'BenchmarkEvaluate/columnar' 'allocs/op')
col_iters=$(awk '$1 ~ "^BenchmarkEvaluate/columnar(-[0-9]+)?$" { print $2; exit }' "$raw")
sc_ns=$(metric 'BenchmarkEvaluate/scalar' 'ns/op')
sc_allocs=$(metric 'BenchmarkEvaluate/scalar' 'allocs/op')
rt_ns=$(metric 'BenchmarkRepairThroughput' 'ns/op')
rt_allocs=$(metric 'BenchmarkRepairThroughput' 'allocs/op')
rt_rps=$(metric 'BenchmarkRepairThroughput' 'req/s')
rt_p99=$(metric 'BenchmarkRepairThroughput' 'p99_ms')

for v in "$col_ns" "$col_allocs" "$sc_ns" "$rt_ns" "$rt_rps" "$rt_p99"; do
    if [ -z "$v" ]; then
        echo "bench.sh: failed to parse a metric out of the benchmark output" >&2
        exit 1
    fi
done
speedup=$(awk -v s="$sc_ns" -v c="$col_ns" 'BEGIN { printf "%.1f", s / c }')
cpu=$(awk -F': ' '/^cpu:/ { print $2; exit }' "$raw")

cat > "$out" <<EOF
{
  "description": "Baseline for the columnar posting-list evaluation engine (DESIGN.md decision 16). BenchmarkEvaluate/columnar is the steady-state rule-evaluation hot path shared by both miners and the serving layer: warm posting lists, dense group-id projection, recycled cover buffer; its allocs_per_op must be 0 (CI gates on TestEvaluateZeroAlloc). BenchmarkEvaluate/scalar is the retained row-at-a-time reference path (-scalar-eval), verified bit-identical by the differential and fuzz tests. BenchmarkRepairThroughput drives the erminerd POST /v1/repair handler end to end; its allocations are request-path JSON and relation building, not evaluation.",
  "recorded": "$(date +%Y-%m-%d)",
  "recorded_with": "scripts/bench.sh (benchtime $benchtime)",
  "host": {
    "go": "$(go version | awk '{print $3}')",
    "goos": "$(go env GOOS)",
    "goarch": "$(go env GOARCH)",
    "cpu": "${cpu:-unknown}",
    "cores": $(nproc)
  },
  "benchmarks": {
    "BenchmarkEvaluate/columnar": {
      "dataset": "covid 2500x1824, city+confirmed_date -> infection_case, full scan",
      "iterations": ${col_iters:-0},
      "ns_per_op": $col_ns,
      "allocs_per_op": $col_allocs
    },
    "BenchmarkEvaluate/scalar": {
      "dataset": "covid 2500x1824, city+confirmed_date -> infection_case, full scan",
      "ns_per_op": $sc_ns,
      "allocs_per_op": $sc_allocs
    },
    "BenchmarkRepairThroughput": {
      "dataset": "district/area -> postcode 1200x1200, 64-tuple batches, 2 rules",
      "ns_per_op": $rt_ns,
      "allocs_per_op": $rt_allocs,
      "req_per_s": $rt_rps,
      "p99_ms": $rt_p99
    }
  },
  "columnar_speedup_over_scalar": $speedup
}
EOF

echo "wrote $out (columnar ${col_ns} ns/op, ${col_allocs} allocs/op; ${speedup}x over scalar; serve ${rt_rps} req/s, p99 ${rt_p99} ms)" >&2

echo "== go test -bench 'EvaluateParallel|EnuMinerParallel' (-benchtime $benchtime)" >&2
go test -run '^$' -bench 'BenchmarkEvaluateParallel$|BenchmarkEnuMinerParallel$' -benchtime "$benchtime" . | tee -a "$raw" >&2

ep_col_ns=$(metric 'BenchmarkEvaluateParallel/columnar' 'ns/op')
ep_col_speedup=$(metric 'BenchmarkEvaluateParallel/columnar' 'speedup')
ep_col_iters=$(awk '$1 ~ "^BenchmarkEvaluateParallel/columnar(-[0-9]+)?$" { print $2; exit }' "$raw")
ep_sc_ns=$(metric 'BenchmarkEvaluateParallel/scalar' 'ns/op')
ep_sc_speedup=$(metric 'BenchmarkEvaluateParallel/scalar' 'speedup')
ep_sc_iters=$(awk '$1 ~ "^BenchmarkEvaluateParallel/scalar(-[0-9]+)?$" { print $2; exit }' "$raw")
em_ns=$(metric 'BenchmarkEnuMinerParallel' 'ns/op')
em_speedup=$(metric 'BenchmarkEnuMinerParallel' 'speedup')
em_iters=$(awk '$1 ~ "^BenchmarkEnuMinerParallel(-[0-9]+)?$" { print $2; exit }' "$raw")

for v in "$ep_col_ns" "$ep_col_speedup" "$ep_sc_ns" "$ep_sc_speedup" "$em_ns" "$em_speedup"; do
    if [ -z "$v" ]; then
        echo "bench.sh: failed to parse a parallel-benchmark metric" >&2
        exit 1
    fi
done

pout=BENCH_parallel.json
cat > "$pout" <<EOF
{
  "description": "Baseline for the parallel rule-evaluation engine benchmarks (BenchmarkEvaluateParallel/{columnar,scalar}, BenchmarkEnuMinerParallel in bench_test.go). The speedup metric is serial-path (Parallelism 1) wall clock divided by all-CPU wall clock on the same problem; serial and parallel results are verified bit-identical (TestParallelMineDeterminism, TestParallelScanDeterminism). The columnar subbench records the posting-list default engine (DESIGN.md decision 16); the scalar subbench records the retained chunked row-at-a-time scan (-scalar-eval).",
  "recorded": "$(date +%Y-%m-%d)",
  "recorded_with": "scripts/bench.sh (benchtime $benchtime)",
  "host": {
    "go": "$(go version | awk '{print $3}')",
    "goos": "$(go env GOOS)",
    "goarch": "$(go env GOARCH)",
    "cpu": "${cpu:-unknown}",
    "cores": $(nproc)
  },
  "note": "On a 1-core host Problem.Workers() resolves to 1 and the engine deliberately takes the exact serial path, so true speedup is 1.0 by construction; the reported number is measurement noise around that. The bias is largest for very short ops (the columnar scan, tens of microseconds): the serial baseline is the fastest of 5 runs while the parallel figure is the mean over all iterations, so a noisy host drags the ratio well below 1. Re-record on a quiet 4+ core runner to observe the >= 2x scalar-scan speedup the chunked engine targets; the parallel code paths themselves are exercised on any machine by the determinism and race tests, which force worker counts of 2-8 explicitly.",
  "benchmarks": {
    "BenchmarkEvaluateParallel/columnar": {
      "dataset": "covid 40000x1824, full pattern scan",
      "iterations": ${ep_col_iters:-0},
      "ns_per_op": $ep_col_ns,
      "speedup": $ep_col_speedup,
      "cpus": $(nproc)
    },
    "BenchmarkEvaluateParallel/scalar": {
      "dataset": "covid 40000x1824, full pattern scan",
      "iterations": ${ep_sc_iters:-0},
      "ns_per_op": $ep_sc_ns,
      "speedup": $ep_sc_speedup,
      "cpus": $(nproc)
    },
    "BenchmarkEnuMinerParallel": {
      "dataset": "covid 2500x1824, EnuMinerH3, ~7242 candidates",
      "iterations": ${em_iters:-0},
      "ns_per_op": $em_ns,
      "speedup": $em_speedup,
      "cpus": $(nproc)
    }
  }
}
EOF

echo "wrote $pout (columnar scan ${ep_col_ns} ns/op speedup ${ep_col_speedup}; scalar scan ${ep_sc_ns} ns/op speedup ${ep_sc_speedup}; enuminer ${em_ns} ns/op speedup ${em_speedup})" >&2

record_delta
