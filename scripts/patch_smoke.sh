#!/bin/sh
# patch_smoke.sh — end-to-end PATCH /v1/data smoke.
#
# The delta-maintenance contract, checked through real processes: a
# daemon whose master data was grown through PATCH /v1/data must answer
# repairs identically to a fresh daemon started from CSVs that already
# contain the appended rows. Both daemons serve the same imported rule
# file, so the only allowed divergence is the rules generation counter
# — the patched daemon re-validated its rules and installed generation
# 2, the fresh one still serves generation 1 — which is normalized out
# before the byte comparison.
set -eu

cd "$(dirname "$0")/.."

dir=$(mktemp -d)
cleanup() {
    for pidfile in "$dir"/*.pid; do
        [ -f "$pidfile" ] && kill -9 "$(cat "$pidfile")" 2>/dev/null || true
    done
    rm -rf "$dir"
}
trap cleanup EXIT

echo "== building erminer + erminerd"
go build -o "$dir/erminer" ./cmd/erminer
go build -o "$dir/erminerd" ./cmd/erminerd

cat > "$dir/master.csv" <<'EOF'
district,area,postcode
hz,010,31200
hz,020,31200
hz,030,31200
bd,010,45000
bd,020,45000
bd,030,45000
cz,010,52000
cz,020,52000
cz,030,52000
EOF
cat > "$dir/input.csv" <<'EOF'
district,area,postcode
hz,010,31200
hz,020,31200
hz,030,31200
bd,010,45000
bd,020,45000
bd,030,45000
cz,010,52000
cz,020,52000
cz,030,52000
hz,020,
EOF
# The same master with the delta's rows already present: what the
# patched daemon's relation must be equivalent to.
cat "$dir/master.csv" > "$dir/master_patched.csv"
cat >> "$dir/master_patched.csv" <<'EOF'
xy,010,77777
xy,020,77777
xy,030,77777
EOF

cat > "$dir/delta.json" <<'EOF'
{"target": "master", "appends": [
  {"district": "xy", "area": "010", "postcode": "77777"},
  {"district": "xy", "area": "020", "postcode": "77777"},
  {"district": "xy", "area": "030", "postcode": "77777"}
]}
EOF

# Repairs drawing on both the original rows and the appended district.
cat > "$dir/batch.json" <<'EOF'
{"tuples": [
  {"district": "xy", "area": "010"},
  {"district": "hz", "area": "020", "postcode": "99999"},
  {"district": "xy", "area": "030", "postcode": "11111"},
  {"district": "bd", "area": "010"},
  {"district": "xy", "area": "020", "postcode": ""},
  {"district": "cz", "area": "030", "postcode": "52000"}
]}
EOF

csv_flags="-input-csv $dir/input.csv -y postcode -ym postcode -eta 2"

echo "== mining one shared rule file"
"$dir/erminer" $csv_flags -master-csv "$dir/master.csv" -method enuminerh3 \
    -repair=false -export-rules "$dir/rules.json" > /dev/null

start_daemon() { # start_daemon <name> [flags...] — leaves the port in $port
    name=$1; shift
    "$dir/erminerd" "$@" > /dev/null 2> "$dir/$name.log" &
    echo $! > "$dir/$name.pid"
    port=""
    for _ in $(seq 1 100); do
        port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$dir/$name.log" | head -n 1)
        [ -n "$port" ] && break
        sleep 0.1
    done
    if [ -z "$port" ]; then
        echo "smoke: $name never logged its port; log:" >&2
        cat "$dir/$name.log" >&2
        exit 1
    fi
}

echo "== starting patched + reference daemons"
start_daemon patched $csv_flags -master-csv "$dir/master.csv" \
    -rules "$dir/rules.json" -addr 127.0.0.1:0
patched=$port
start_daemon fresh $csv_flags -master-csv "$dir/master_patched.csv" \
    -rules "$dir/rules.json" -addr 127.0.0.1:0
fresh=$port

echo "== PATCH /v1/data on the live daemon"
curl -sS -X PATCH -H 'Content-Type: application/json' \
    --data-binary "@$dir/delta.json" "http://127.0.0.1:$patched/v1/data" \
    -o "$dir/patch_resp.json"
grep -q '"appended_rows":3' "$dir/patch_resp.json" || {
    echo "smoke: unexpected patch response:" >&2
    cat "$dir/patch_resp.json" >&2
    exit 1
}
grep -q '"dropped":0' "$dir/patch_resp.json"

echo "== repair equivalence: patched daemon vs fresh daemon on patched CSVs"
for d in patched fresh; do
    eval "p=\$$d"
    curl -sS -X POST -H 'Content-Type: application/json' \
        --data-binary "@$dir/batch.json" "http://127.0.0.1:$p/v1/repair" \
        -o "$dir/$d.repair.json"
    sed 's/"rules_version":[0-9]*/"rules_version":0/g' \
        "$dir/$d.repair.json" > "$dir/$d.repair.norm.json"
done
cmp "$dir/patched.repair.norm.json" "$dir/fresh.repair.norm.json" || {
    echo "smoke: patched daemon diverged from fresh daemon on the same data" >&2
    exit 1
}
# The appended district actually repairs — the delta reached the index.
grep -q '77777' "$dir/patched.repair.json" || {
    echo "smoke: no fix drew on the appended master rows" >&2
    exit 1
}

echo "patch smoke: OK"
