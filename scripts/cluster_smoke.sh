#!/bin/sh
# cluster_smoke.sh — end-to-end ermcluster chaos smoke.
#
# Boots a single-node reference daemon plus a coordinator fronting two
# real worker processes on loopback, all serving the same CSV problem
# with the same deterministically mined rule set, and requires:
#
#   1. the coordinator's merged /v1/repair and /v1/validate responses
#      are byte-identical to the single node's (cmp, not jq);
#   2. after SIGKILLing one worker mid-batch-loop, every subsequent
#      merged response is STILL byte-identical (the dead worker's
#      sub-batches retry, then hedge to the survivor);
#   3. the coordinator's metrics and health report the casualty
#      (redispatches > 0, workers_healthy drops to 1).
#
# This is the process-level twin of internal/cluster's in-process chaos
# test: same contract, real sockets, real SIGKILL.
set -eu

cd "$(dirname "$0")/.."

dir=$(mktemp -d)
cleanup() {
    for pidfile in "$dir"/*.pid; do
        [ -f "$pidfile" ] && kill -9 "$(cat "$pidfile")" 2>/dev/null || true
    done
    rm -rf "$dir"
}
trap cleanup EXIT

echo "== building erminerd"
go build -o "$dir/erminerd" ./cmd/erminerd

# A district/area → postcode fixture small enough that enuminerh3 mines
# its (deterministic) rule set in milliseconds on every daemon.
cat > "$dir/master.csv" <<'EOF'
district,area,postcode
hz,010,31200
hz,020,31200
hz,030,31200
bd,010,45000
bd,020,45000
bd,030,45000
cz,010,52000
cz,020,52000
cz,030,52000
EOF
cat > "$dir/input.csv" <<'EOF'
district,area,postcode
hz,010,31200
hz,020,31200
hz,030,31200
bd,010,45000
bd,020,45000
bd,030,45000
cz,010,52000
cz,020,52000
cz,030,52000
hz,020,
EOF

cat > "$dir/batch.json" <<'EOF'
{"tuples": [
  {"district": "hz", "area": "010", "postcode": "99999"},
  {"district": "bd", "area": "020"},
  {"district": "zz", "area": "010", "postcode": "1"},
  {"district": "cz", "area": "030", "postcode": "52000"},
  {"district": "hz", "area": "020", "postcode": ""},
  {"district": "bd", "area": "010", "postcode": "45000"},
  {},
  {"district": "cz", "area": "010", "postcode": "11111"},
  {"district": "hz", "area": "030"},
  {"district": "bd", "area": "030", "postcode": "22222"},
  {"district": "cz", "area": "020"},
  {"district": "hz", "area": "010", "postcode": "99999"}
]}
EOF

daemon_flags="-input-csv $dir/input.csv -master-csv $dir/master.csv -y postcode -ym postcode -eta 2 -mine enuminerh3 -addr 127.0.0.1:0"

# start_daemon <name> [flags...] — boots one process in the current
# shell (no command substitution: the pid and port must survive), drops
# $dir/<name>.pid, and leaves the bound port in $port.
start_daemon() {
    name=$1; shift
    "$dir/erminerd" "$@" > /dev/null 2> "$dir/$name.log" &
    echo $! > "$dir/$name.pid"
    port=""
    for _ in $(seq 1 100); do
        port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$dir/$name.log" | head -n 1)
        [ -n "$port" ] && break
        sleep 0.1
    done
    if [ -z "$port" ]; then
        echo "smoke: $name never logged its port; log:" >&2
        cat "$dir/$name.log" >&2
        exit 1
    fi
}

wait_healthy() {
    for _ in $(seq 1 100); do
        if curl -sf "http://127.0.0.1:$1/healthz" > /dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "smoke: 127.0.0.1:$1 never became healthy" >&2
    exit 1
}

echo "== starting single-node reference + 2 workers + coordinator"
start_daemon single $daemon_flags; single=$port
start_daemon w1 -worker $daemon_flags; w1=$port
start_daemon w2 -worker $daemon_flags; w2=$port
w2_pid=$(cat "$dir/w2.pid")
wait_healthy "$single"; wait_healthy "$w1"; wait_healthy "$w2"
start_daemon coord -cluster-coordinator \
    -workers "http://127.0.0.1:$w1,http://127.0.0.1:$w2" -retries 1 -addr 127.0.0.1:0
coord=$port
wait_healthy "$coord"

post() { # post <port> <path> <outfile>
    curl -sS -X POST -H 'Content-Type: application/json' \
        --data-binary "@$dir/batch.json" "http://127.0.0.1:$1$2" -o "$3"
}

echo "== byte-identity: coordinator vs single node"
for path in /v1/repair /v1/validate; do
    post "$single" "$path" "$dir/ref$(basename $path).json"
    post "$coord" "$path" "$dir/merged$(basename $path).json"
    cmp "$dir/ref$(basename $path).json" "$dir/merged$(basename $path).json"
done

echo "== chaos: SIGKILL worker 2 mid-batch-loop"
for i in $(seq 1 20); do
    post "$coord" /v1/repair "$dir/chaos$i.json"
    if [ "$i" = 3 ]; then
        kill -9 "$w2_pid"
    fi
done
for i in $(seq 1 20); do
    cmp "$dir/refrepair.json" "$dir/chaos$i.json" || {
        echo "smoke: response $i diverged from single-node after the worker kill" >&2
        exit 1
    }
done

echo "== casualty visible in coordinator metrics + health"
curl -sf "http://127.0.0.1:$coord/metrics" > "$dir/metrics.txt"
redis=$(sed -n 's/^ermcluster_redispatches_total \([0-9]*\)$/\1/p' "$dir/metrics.txt")
if [ -z "$redis" ] || [ "$redis" -lt 1 ]; then
    echo "smoke: expected ermcluster_redispatches_total >= 1, got '$redis'" >&2
    exit 1
fi
# healthz answers 200 (degraded) with one worker down; -f must not trip.
curl -s "http://127.0.0.1:$coord/healthz" > "$dir/health.json"
grep -q '"workers_healthy":1' "$dir/health.json"
grep -q '"status":"degraded"' "$dir/health.json"

echo "cluster smoke: OK"
