#!/bin/sh
# check.sh — the repository's correctness gate.
#
# The race detector run is the gate for the parallel evaluation engine
# (shared index cache, evaluator shards, level-synchronized frontier):
# the parallel-path tests force worker counts > 1 even on small
# machines, so data races surface regardless of the host's CPU count.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l"
# internal/analysis/testdata holds the ermvet fixtures — intentionally
# hazardous code exempt from every sweep (the go tool skips testdata on
# its own; gofmt needs the explicit prune).
unformatted=$(find . -path ./internal/analysis/testdata -prune -o -name '*.go' -print | xargs gofmt -l)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files are not formatted:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== ermvet ./..."
go run ./cmd/ermvet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "check: OK"
