#!/bin/sh
# check.sh — the repository's correctness gate.
#
# The race detector run is the gate for the parallel evaluation engine
# (shared index cache, evaluator shards, level-synchronized frontier):
# the parallel-path tests force worker counts > 1 even on small
# machines, so data races surface regardless of the host's CPU count.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l"
# internal/analysis/testdata holds the ermvet fixtures — intentionally
# hazardous code exempt from every sweep (the go tool skips testdata on
# its own; gofmt needs the explicit prune).
unformatted=$(find . -path ./internal/analysis/testdata -prune -o -name '*.go' -print | xargs gofmt -l)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files are not formatted:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== ermvet -checks all ./..."
go run ./cmd/ermvet -checks all ./...

echo "== allocbudget / benchmark cross-check"
# The static and dynamic halves of the allocation gate must agree:
# ermvet's allocbudget check just declared every //ermvet:hotpath
# function free of allocating constructs, so the real columnar
# benchmark loop must measure 0 allocs/op. A disagreement means either
# a suppression is hiding a steady-state allocation or the check has a
# false-negative hole — a bug in the gate itself, so fail loudly.
bench_out=$(go test -run '^$' -bench 'BenchmarkEvaluate$' -benchmem -benchtime 1x .)
if ! echo "$bench_out" | grep -q 'BenchmarkEvaluate/columnar'; then
    echo "cross-check: BenchmarkEvaluate/columnar did not run" >&2
    exit 1
fi
echo "$bench_out" | awk '$1 ~ /^BenchmarkEvaluate\/columnar/ {
  for (i = 2; i < NF; i++)
    if ($(i+1) == "allocs/op" && $i + 0 != 0) {
      print "cross-check: ermvet allocbudget passed but columnar Evaluate measures " $i " allocs/op, want 0" > "/dev/stderr"
      exit 1
    }
}'

echo "== go build ./..."
go build ./...

echo "== go test -race -shuffle=on ./..."
# -shuffle=on randomizes test and subtest order: an inter-test ordering
# dependency (state leaking through a package-level variable, a test
# relying on an earlier test's side effect) fails here instead of
# surfacing as CI flakiness later. The seed is logged on failure for
# reproduction.
go test -race -shuffle=on ./...

echo "== checkpoint kill-resume smoke"
# Kill an RLMiner run mid-training (injected exit 3), resume it from its
# checkpoint, and require the exported rules to be byte-identical to an
# uninterrupted run: the crash-safety contract, end to end through the
# CLI.
ckdir=$(mktemp -d)
trap 'rm -rf "$ckdir"' EXIT
go build -o "$ckdir/erminer-bin" ./cmd/erminer
miner_flags="-dataset covid -method rlminer -input 400 -steps 200 -seed 3 -k 10 -repair=false"
set +e
"$ckdir/erminer-bin" $miner_flags \
    -checkpoint-dir "$ckdir" -checkpoint-every-steps 50 -crash-at-step 120 \
    -export-rules "$ckdir/ignored.json" >/dev/null
status=$?
set -e
if [ "$status" -ne 3 ]; then
    echo "smoke: injected crash expected exit 3, got $status" >&2
    exit 1
fi
if [ ! -f "$ckdir/erminer.ckpt" ]; then
    echo "smoke: killed run left no checkpoint behind" >&2
    exit 1
fi
# Logged to a file, not piped: grep -q would close the pipe on first
# match and SIGPIPE the miner mid-run.
"$ckdir/erminer-bin" $miner_flags \
    -checkpoint-dir "$ckdir" -export-rules "$ckdir/resumed.json" > "$ckdir/resume.log"
grep -q "resuming from checkpoint" "$ckdir/resume.log"
"$ckdir/erminer-bin" $miner_flags -export-rules "$ckdir/fresh.json" >/dev/null
cmp "$ckdir/resumed.json" "$ckdir/fresh.json"
if [ -f "$ckdir/erminer.ckpt" ]; then
    echo "smoke: completed run did not remove its checkpoint" >&2
    exit 1
fi

echo "== cluster chaos smoke"
# Coordinator + 2 worker processes on loopback: merged responses must be
# byte-identical to a single node, before and after one worker is
# SIGKILLed mid-batch-loop (see scripts/cluster_smoke.sh).
sh scripts/cluster_smoke.sh

echo "== data patch smoke"
# PATCH /v1/data on a live daemon, then require its repairs to match a
# fresh daemon started from CSVs already containing the delta (see
# scripts/patch_smoke.sh).
sh scripts/patch_smoke.sh

echo "check: OK"
