package erminer_test

import (
	"encoding/json"
	"testing"

	"erminer"
)

// loadFixtureProblem builds the CSV fixture problem used by the
// wire-format round-trip tests.
func loadFixtureProblem(t *testing.T) *erminer.Problem {
	t.Helper()
	in, ms := writeCSVFixture(t)
	p, err := erminer.LoadCSVProblem(erminer.CSVSpec{
		InputPath: in, MasterPath: ms, Y: "postcode", Ym: "postcode",
		MatchPairs: map[string]string{"district": "district", "area": "area"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestImportRulesNegatedAndLabeled round-trips a rule file whose pattern
// carries a negated, multi-value, labelled condition — the condJSON
// fields beyond the plain attr/values pair.
func TestImportRulesNegatedAndLabeled(t *testing.T) {
	p := loadFixtureProblem(t)
	src := []byte(`[
	  {
	    "lhs": [["district", "district"], ["area", "area"]],
	    "y": "postcode",
	    "ym": "postcode",
	    "pattern": [
	      {"attr": "district", "values": ["central", "east"], "negate": true, "label": "district∉{central,east}"},
	      {"attr": "area", "values": ["010"]}
	    ],
	    "support": 7,
	    "certainty": 0.875,
	    "quality": 0.5,
	    "utility": 3.25
	  }
	]`)
	rules, err := erminer.ImportRules(p, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 {
		t.Fatalf("imported %d rules, want 1", len(rules))
	}
	r := rules[0].Rule
	if len(r.Pattern) != 2 {
		t.Fatalf("pattern has %d conditions, want 2", len(r.Pattern))
	}
	neg, plain := r.Pattern[0], r.Pattern[1]
	if !neg.Negate {
		t.Error("negate flag lost on import")
	}
	if neg.Label != "district∉{central,east}" {
		t.Errorf("label lost on import: %q", neg.Label)
	}
	if len(neg.Codes) != 2 {
		t.Errorf("negated condition has %d codes, want 2", len(neg.Codes))
	}
	if plain.Negate || plain.Label != "" {
		t.Errorf("plain condition gained negate/label: %+v", plain)
	}
	// Measures are carried through verbatim.
	m := rules[0].Measures
	if m.Support != 7 || m.Certainty != 0.875 || m.Quality != 0.5 || m.Utility != 3.25 {
		t.Errorf("measures not carried through: %+v", m)
	}

	// The negated condition behaves: it must reject central/east rows
	// and accept the others.
	rel := p.Input
	seen := map[bool]bool{}
	for row := 0; row < rel.NumRows(); row++ {
		d := rel.Value(row, rel.Schema().Index("district"))
		matchesDistrict := neg.Matches(rel.Code(row, neg.Attr))
		if d == "central" || d == "east" {
			if matchesDistrict {
				t.Fatalf("row %d: negated condition matched excluded district %q", row, d)
			}
		} else if !matchesDistrict {
			t.Fatalf("row %d: negated condition rejected district %q", row, d)
		}
		seen[matchesDistrict] = true
	}
	if !seen[true] || !seen[false] {
		t.Fatal("fixture did not exercise both branches of the negated condition")
	}
}

// TestExportImportNegatedRoundTrip re-exports an imported negated+labelled
// rule and checks the wire image and rule identity survive unchanged.
func TestExportImportNegatedRoundTrip(t *testing.T) {
	p := loadFixtureProblem(t)
	src := []byte(`[
	  {
	    "lhs": [["district", "district"]],
	    "y": "postcode",
	    "ym": "postcode",
	    "pattern": [
	      {"attr": "area", "values": ["010", "020"], "negate": true, "label": "area∉{010,020}"}
	    ],
	    "support": 3,
	    "certainty": 1,
	    "utility": 2.4
	  }
	]`)
	first, err := erminer.ImportRules(p, src)
	if err != nil {
		t.Fatal(err)
	}
	data, err := erminer.ExportRules(p, first)
	if err != nil {
		t.Fatal(err)
	}

	// The exported wire image preserves negate, label, values and measures.
	var wire []map[string]any
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err)
	}
	if len(wire) != 1 {
		t.Fatalf("wire image has %d rules", len(wire))
	}
	pattern, ok := wire[0]["pattern"].([]any)
	if !ok || len(pattern) != 1 {
		t.Fatalf("wire pattern missing: %v", wire[0])
	}
	cond := pattern[0].(map[string]any)
	if cond["negate"] != true {
		t.Errorf("wire image lost negate: %v", cond)
	}
	if cond["label"] != "area∉{010,020}" {
		t.Errorf("wire image lost label: %v", cond)
	}
	if got := len(cond["values"].([]any)); got != 2 {
		t.Errorf("wire image has %d values, want 2", got)
	}
	if wire[0]["support"] != float64(3) {
		t.Errorf("wire image lost measures: %v", wire[0])
	}

	// A second import against the same problem yields the identical rule.
	second, err := erminer.ImportRules(p, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != 1 {
		t.Fatalf("re-imported %d rules", len(second))
	}
	if first[0].Rule.Key() != second[0].Rule.Key() {
		t.Errorf("rule identity changed across round-trip:\n  %s\n  %s",
			first[0].Rule.Key(), second[0].Rule.Key())
	}
	fm, sm := first[0].Measures, second[0].Measures
	if sm.Support != fm.Support || sm.Certainty != fm.Certainty ||
		sm.Quality != fm.Quality || sm.Utility != fm.Utility {
		t.Errorf("measures changed across round-trip: %+v vs %+v", sm, fm)
	}
}
