// Package clock injects wall-clock readings into determinism-critical
// packages. The ermvet detrand check forbids direct time.Now/time.Since
// calls in those packages (ROADMAP reproducibility: a mining run must be
// a pure function of its inputs and seed), so timing stats flow through
// a Clock value instead — production wires the system clock in, tests
// and replay harnesses substitute a fixed one.
package clock

import "time"

// Clock returns the current wall-clock time.
type Clock func() time.Time

// System reads the real wall clock.
func System() Clock { return time.Now }

// Fixed is pinned to t: durations measured through it are always zero,
// which is exactly what reproducible-output tests want.
func Fixed(t time.Time) Clock { return func() time.Time { return t } }
