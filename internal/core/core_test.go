package core

import (
	"fmt"
	"testing"

	"erminer/internal/measure"
	"erminer/internal/relation"
	"erminer/internal/rule"
	"erminer/internal/schema"
)

// tinyProblem builds a minimal problem:
//
//	input:  A (matched), B (continuous, matched), C (input-only), Y
//	master: A, B, Y
func tinyProblem(t testing.TB) *Problem {
	t.Helper()
	pool := relation.NewPool()
	in := relation.NewSchema(
		relation.Attribute{Name: "A", Domain: "a"},
		relation.Attribute{Name: "B", Domain: "b", Type: relation.Continuous},
		relation.Attribute{Name: "C"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	ms := relation.NewSchema(
		relation.Attribute{Name: "A", Domain: "a"},
		relation.Attribute{Name: "B", Domain: "b", Type: relation.Continuous},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	input := relation.New(in, pool)
	master := relation.New(ms, pool)
	for i := 0; i < 32; i++ {
		a := fmt.Sprintf("a%d", i%4)
		b := fmt.Sprintf("%d", i%8)
		c := fmt.Sprintf("c%d", i%2)
		y := fmt.Sprintf("y%d", i%4)
		input.AppendRow([]string{a, b, c, y})
		master.AppendRow([]string{a, b, y})
	}
	return &Problem{
		Input:            input,
		Master:           master,
		Match:            schema.AutoMatch(in, ms),
		Y:                3,
		Ym:               2,
		SupportThreshold: 2,
	}
}

func TestProblemValidate(t *testing.T) {
	p := tinyProblem(t)
	if err := p.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	bad := *p
	bad.Input = nil
	if bad.Validate() == nil {
		t.Error("nil input accepted")
	}
	bad = *p
	bad.Y = 99
	if bad.Validate() == nil {
		t.Error("out-of-range Y accepted")
	}
	bad = *p
	bad.Truth = []int32{1}
	if bad.Validate() == nil {
		t.Error("short truth accepted")
	}
	bad = *p
	bad.SupportThreshold = -1
	if bad.Validate() == nil {
		t.Error("negative threshold accepted")
	}
}

func TestProblemK(t *testing.T) {
	p := tinyProblem(t)
	if p.K() != DefaultTopK {
		t.Errorf("default K = %d, want %d", p.K(), DefaultTopK)
	}
	p.TopK = 7
	if p.K() != 7 {
		t.Errorf("K = %d, want 7", p.K())
	}
}

func TestBuildSpaceLayout(t *testing.T) {
	p := tinyProblem(t)
	s := BuildSpace(p, SpaceConfig{NSplit: 2, MaxValueFrac: -1})

	// LHS pairs: A and B are matched (Y excluded).
	if s.NumLHS() != 2 {
		t.Fatalf("NumLHS = %d, want 2", s.NumLHS())
	}
	for _, pr := range s.LHSPairs {
		if pr.Input == p.Y || pr.Master == p.Ym {
			t.Errorf("LHS pair %v touches the dependent attributes", pr)
		}
	}

	// Pattern units: A has 4 values, B (continuous) has 2 ranges, C has
	// 2 values. Y contributes nothing.
	if got, want := len(s.Units), 4+2+2; got != want {
		t.Fatalf("units = %d, want %d", got, want)
	}
	if s.Dim() != s.NumLHS()+len(s.Units) {
		t.Error("Dim mismatch")
	}

	// Index lookups are consistent.
	for a := 0; a < 3; a++ {
		for _, d := range s.UnitDims(a) {
			if s.Unit(d).Cond.Attr != a {
				t.Errorf("UnitDims(%d) points at attr %d", a, s.Unit(d).Cond.Attr)
			}
		}
		for _, d := range s.PairDims(a) {
			if s.LHSPairs[d].Input != a {
				t.Errorf("PairDims(%d) points at attr %d", a, s.LHSPairs[d].Input)
			}
		}
	}
}

func TestContinuousRangesPartitionDomain(t *testing.T) {
	p := tinyProblem(t)
	s := BuildSpace(p, SpaceConfig{NSplit: 2, MaxValueFrac: -1})
	var ranges []rule.Condition
	for _, d := range s.UnitDims(1) {
		ranges = append(ranges, s.Unit(d).Cond)
	}
	if len(ranges) != 2 {
		t.Fatalf("B has %d ranges, want 2", len(ranges))
	}
	// Every domain code appears in exactly one range.
	seen := make(map[int32]int)
	for _, r := range ranges {
		for _, c := range r.Codes {
			seen[c]++
		}
	}
	for _, c := range p.Input.DomainCodes(1) {
		if seen[c] != 1 {
			t.Errorf("code %d appears in %d ranges", c, seen[c])
		}
	}
	// Labels describe numeric intervals.
	for _, r := range ranges {
		if r.Label == "" {
			t.Error("continuous range without a label")
		}
	}
}

func TestPrefixBuckets(t *testing.T) {
	pool := relation.NewPool()
	in := relation.NewSchema(
		relation.Attribute{Name: "big", Domain: "big"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	ms := relation.NewSchema(
		relation.Attribute{Name: "big", Domain: "big"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	input := relation.New(in, pool)
	master := relation.New(ms, pool)
	// 100 distinct values sharing 10 one-letter prefixes.
	for i := 0; i < 100; i++ {
		v := fmt.Sprintf("%c%02d", 'a'+i%10, i)
		input.AppendRow([]string{v, "y0"})
		master.AppendRow([]string{v, "y0"})
	}
	p := &Problem{
		Input: input, Master: master,
		Match: schema.AutoMatch(in, ms),
		Y:     1, Ym: 1, SupportThreshold: 1,
	}
	s := BuildSpace(p, SpaceConfig{MaxDomain: 16, MaxValueFrac: -1})
	var units []rule.Condition
	for _, d := range s.UnitDims(0) {
		units = append(units, s.Unit(d).Cond)
	}
	if len(units) != 10 {
		t.Fatalf("bucket count = %d, want 10 one-letter prefixes", len(units))
	}
	total := 0
	for _, u := range units {
		total += len(u.Codes)
		if u.Label == "" {
			t.Error("bucket without a label")
		}
	}
	if total != 100 {
		t.Errorf("buckets cover %d codes, want 100", total)
	}
}

func TestMinValueCountPrunes(t *testing.T) {
	p := tinyProblem(t)
	// Every A value occurs 8 times, C values 16 times, B values 4 times.
	s := BuildSpace(p, SpaceConfig{NSplit: 2, MinValueCount: 10, MaxValueFrac: -1})
	for _, u := range s.Units {
		n := 0
		col := p.Input.Column(u.Cond.Attr)
		for _, c := range col {
			if u.Cond.Matches(c) {
				n++
			}
		}
		if n < 10 {
			t.Errorf("unit on attr %d kept with count %d", u.Cond.Attr, n)
		}
	}
}

func TestMaxValueFracPrunes(t *testing.T) {
	pool := relation.NewPool()
	in := relation.NewSchema(
		relation.Attribute{Name: "A", Domain: "a"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	ms := relation.NewSchema(
		relation.Attribute{Name: "A", Domain: "a"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	input := relation.New(in, pool)
	master := relation.New(ms, pool)
	// 99 of 100 rows share one A value: that condition is vacuous.
	for i := 0; i < 100; i++ {
		v := "common"
		if i == 0 {
			v = "rare"
		}
		input.AppendRow([]string{v, "y"})
		master.AppendRow([]string{v, "y"})
	}
	p := &Problem{
		Input: input, Master: master,
		Match: schema.AutoMatch(in, ms),
		Y:     1, Ym: 1, SupportThreshold: 1,
	}
	s := BuildSpace(p, SpaceConfig{})
	for _, u := range s.Units {
		if len(u.Cond.Codes) == 1 && p.Input.Dict(0).Value(u.Cond.Codes[0]) == "common" {
			t.Error("near-universal condition survived the default MaxValueFrac")
		}
	}
}

func TestDimIDsUniqueAndStable(t *testing.T) {
	p := tinyProblem(t)
	s1 := BuildSpace(p, SpaceConfig{NSplit: 2, MaxValueFrac: -1})
	s2 := BuildSpace(p, SpaceConfig{NSplit: 2, MaxValueFrac: -1})
	seen := make(map[string]bool)
	for d := 0; d < s1.Dim(); d++ {
		id := s1.DimID(d)
		if seen[id] {
			t.Errorf("duplicate DimID %q", id)
		}
		seen[id] = true
		if id != s2.DimID(d) {
			t.Errorf("DimID %d unstable: %q vs %q", d, id, s2.DimID(d))
		}
	}
}

func TestSelectTopKDropsNonPositive(t *testing.T) {
	mk := func(a int, u float64) MinedRule {
		return MinedRule{
			Rule:     rule.New([]rule.AttrPair{{Input: a, Master: a}}, 9, 9, nil),
			Measures: measure.Measures{Utility: u},
		}
	}
	got := SelectTopK([]MinedRule{mk(0, 5), mk(1, 0), mk(2, -3)}, 10)
	if len(got) != 1 {
		t.Fatalf("selected %d rules, want 1", len(got))
	}
	if got[0].Measures.Utility != 5 {
		t.Errorf("selected utility %g", got[0].Measures.Utility)
	}
}

func TestResultSetRuleList(t *testing.T) {
	r := rule.New([]rule.AttrPair{{Input: 0, Master: 0}}, 1, 1, nil)
	rs := &ResultSet{Rules: []MinedRule{{Rule: r}}}
	list := rs.RuleList()
	if len(list) != 1 || list[0] != r {
		t.Errorf("RuleList = %v", list)
	}
}
