package core

import "testing"

// TestNSplitSweep: more ranges on a continuous attribute widen the
// pattern encoding monotonically (DESIGN.md decision 6), and every range
// stays a valid partition piece.
func TestNSplitSweep(t *testing.T) {
	p := tinyProblem(t)
	prev := 0
	for _, nsplit := range []int{1, 2, 4, 8} {
		s := BuildSpace(p, SpaceConfig{NSplit: nsplit, MaxValueFrac: -1})
		units := s.UnitDims(1) // B is the continuous attribute
		if len(units) < prev {
			t.Errorf("NSplit %d produced fewer units (%d) than a smaller split (%d)",
				nsplit, len(units), prev)
		}
		prev = len(units)
		// The ranges partition the active domain.
		seen := make(map[int32]int)
		for _, d := range units {
			for _, c := range s.Unit(d).Cond.Codes {
				seen[c]++
			}
		}
		for _, c := range p.Input.DomainCodes(1) {
			if seen[c] != 1 {
				t.Errorf("NSplit %d: code %d in %d ranges", nsplit, c, seen[c])
			}
		}
	}
	// NSplit beyond the domain size clamps to one range per value.
	s := BuildSpace(p, SpaceConfig{NSplit: 1000, MaxValueFrac: -1})
	if got := len(s.UnitDims(1)); got != p.Input.DomainSize(1) {
		t.Errorf("oversized NSplit produced %d ranges for %d values",
			got, p.Input.DomainSize(1))
	}
}

// TestNegatedUnits: the ā extension doubles the discrete pattern units.
func TestNegatedUnits(t *testing.T) {
	p := tinyProblem(t)
	plain := BuildSpace(p, SpaceConfig{NSplit: 2, MaxValueFrac: -1})
	neg := BuildSpace(p, SpaceConfig{NSplit: 2, MaxValueFrac: -1, NegatedUnits: true})
	if len(neg.Units) <= len(plain.Units) {
		t.Fatalf("negated units did not expand the space: %d vs %d",
			len(neg.Units), len(plain.Units))
	}
	// Negated units exist for discrete attributes only and have
	// distinct DimIDs from their positive twins.
	ids := make(map[string]bool)
	negCount := 0
	for d := 0; d < neg.Dim(); d++ {
		id := neg.DimID(d)
		if ids[id] {
			t.Fatalf("duplicate DimID %q", id)
		}
		ids[id] = true
		if d >= neg.NumLHS() && neg.Unit(d).Cond.Negate {
			negCount++
			if p.Input.Schema().Attr(neg.Unit(d).Cond.Attr).Name == "B" {
				t.Error("continuous attribute got a negated unit")
			}
		}
	}
	if negCount == 0 {
		t.Error("no negated units emitted")
	}
}
