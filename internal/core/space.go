package core

import (
	"fmt"
	"sort"
	"strconv"

	"erminer/internal/relation"
	"erminer/internal/rule"
)

// SpaceConfig controls how the candidate refinement space is built.
type SpaceConfig struct {
	// NSplit is the number of ranges a continuous attribute's domain is
	// split into (§IV-A). Zero means the default of 4.
	NSplit int
	// MaxDomain is the K above which a discrete attribute's domain is
	// compressed into common-prefix buckets. Zero means the default
	// of 32.
	MaxDomain int
	// MinValueCount prunes pattern units whose value (or bucket) occurs
	// fewer than this many times in the input: such a condition can
	// never reach that support. Typically set to η_s. Zero disables.
	MinValueCount int
	// MaxValueFrac prunes pattern units matching more than this fraction
	// of input tuples: a near-universal condition (e.g. a prefix bucket
	// that swallowed the whole domain) filters nothing. Zero means the
	// default 0.95; negative disables.
	MaxValueFrac float64
	// NegatedUnits additionally emits negated conditions t_p[A] ≠ a for
	// small-domain discrete attributes — the ā pattern form of [18] that
	// the paper omits (§II-A) and this implementation supports as an
	// extension. Negated units obey the same count pruning.
	NegatedUnits bool
}

// DefaultNSplit and DefaultMaxDomain are the encoder defaults.
const (
	DefaultNSplit    = 4
	DefaultMaxDomain = 32
)

func (c SpaceConfig) nsplit() int {
	if c.NSplit > 0 {
		return c.NSplit
	}
	return DefaultNSplit
}

func (c SpaceConfig) maxDomain() int {
	if c.MaxDomain > 0 {
		return c.MaxDomain
	}
	return DefaultMaxDomain
}

// PatternUnit is one candidate pattern condition: one dimension of the
// state/action encoding.
type PatternUnit struct {
	Cond rule.Condition
}

// Space is the candidate refinement space of a problem: the enumeration
// universe of EnuMiner and the action space of RLMiner. Dimensions are
// laid out as [LHS pairs; pattern units], matching the state encoding
// s = [s_l; s_p] of §IV-A.
type Space struct {
	// LHSPairs lists every (A, A_m) with A ∈ R \ {Y}, A_m ∈ M(A).
	LHSPairs []rule.AttrPair
	// Units lists every candidate pattern condition over R \ {Y}.
	Units []PatternUnit
	// unitsByAttr indexes Units by input attribute.
	unitsByAttr map[int][]int
	// pairsByAttr indexes LHSPairs by input attribute.
	pairsByAttr map[int][]int
}

// Dim returns the total number of refinement dimensions |s_l| + |s_p|.
func (s *Space) Dim() int { return len(s.LHSPairs) + len(s.Units) }

// NumLHS returns |s_l|, the number of LHS attribute-pair dimensions.
func (s *Space) NumLHS() int { return len(s.LHSPairs) }

// Unit returns the pattern unit of dimension i (i ≥ NumLHS()).
func (s *Space) Unit(i int) PatternUnit { return s.Units[i-len(s.LHSPairs)] }

// UnitDims returns the dimensions of the pattern units on attribute a.
func (s *Space) UnitDims(a int) []int { return s.unitsByAttr[a] }

// PairDims returns the dimensions of the LHS pairs on input attribute a.
func (s *Space) PairDims(a int) []int { return s.pairsByAttr[a] }

// DimID returns a stable semantic identity for dimension d, used to map
// dimensions between the spaces of an original and an enriched problem
// when RLMiner-ft transfers a trained value network (§V-D3). LHS pairs
// are identified by their attribute indices; equality units by attribute
// and code (codes are stable because dictionaries only grow); range and
// bucket units by their label.
func (s *Space) DimID(d int) string {
	if d < len(s.LHSPairs) {
		p := s.LHSPairs[d]
		return fmt.Sprintf("L:%d:%d", p.Input, p.Master)
	}
	u := s.Unit(d)
	neg := ""
	if u.Cond.Negate {
		neg = "!"
	}
	if u.Cond.Label != "" {
		return fmt.Sprintf("P:%s%d:%s", neg, u.Cond.Attr, u.Cond.Label)
	}
	if len(u.Cond.Codes) == 1 {
		return fmt.Sprintf("P:%s%d:=%d", neg, u.Cond.Attr, u.Cond.Codes[0])
	}
	return fmt.Sprintf("P:%s%d:set%v", neg, u.Cond.Attr, u.Cond.Codes)
}

// BuildSpace constructs the refinement space of a problem.
func BuildSpace(p *Problem, cfg SpaceConfig) *Space {
	s := &Space{
		unitsByAttr: make(map[int][]int),
		pairsByAttr: make(map[int][]int),
	}
	in := p.Input
	rs := in.Schema()

	// s_l: one dimension per matched attribute pair, excluding Y.
	for _, a := range p.Match.InputAttrs() {
		if a == p.Y {
			continue
		}
		for _, am := range p.Match.Of(a) {
			if am == p.Ym {
				// The dependent master attribute never joins the LHS.
				continue
			}
			s.pairsByAttr[a] = append(s.pairsByAttr[a], len(s.LHSPairs))
			s.LHSPairs = append(s.LHSPairs, rule.AttrPair{Input: a, Master: am})
		}
	}

	// s_p: pattern units per attribute A ∈ R \ {Y}.
	for a := 0; a < rs.Len(); a++ {
		if a == p.Y {
			continue
		}
		var units []rule.Condition
		if rs.Attr(a).Type == relation.Continuous {
			units = continuousUnits(in, a, cfg.nsplit())
		} else {
			units = discreteUnits(in, a, cfg.maxDomain())
			if cfg.NegatedUnits && len(in.DomainCodes(a)) <= cfg.maxDomain() {
				for _, code := range in.DomainCodes(a) {
					units = append(units, rule.NotEq(a, code))
				}
			}
		}
		maxFrac := cfg.MaxValueFrac
		if maxFrac == 0 {
			maxFrac = 0.95
		}
		for _, u := range units {
			n := countMatching(in, u)
			if cfg.MinValueCount > 0 && n < cfg.MinValueCount {
				continue
			}
			if maxFrac > 0 && float64(n) > maxFrac*float64(in.NumRows()) {
				continue
			}
			s.unitsByAttr[a] = append(s.unitsByAttr[a], len(s.LHSPairs)+len(s.Units))
			s.Units = append(s.Units, PatternUnit{Cond: u})
		}
	}
	return s
}

// countMatching counts input tuples satisfying the condition.
func countMatching(in *relation.Relation, c rule.Condition) int {
	n := 0
	col := in.Column(c.Attr)
	for _, code := range col {
		if c.Matches(code) {
			n++
		}
	}
	return n
}

// continuousUnits splits a continuous attribute's active domain into
// nsplit equal-frequency ranges and returns one code-set condition per
// range.
func continuousUnits(in *relation.Relation, attr, nsplit int) []rule.Condition {
	codes := in.DomainCodes(attr)
	if len(codes) == 0 {
		return nil
	}
	type cv struct {
		code int32
		val  float64
	}
	cvs := make([]cv, 0, len(codes))
	for _, c := range codes {
		f, err := parseFloat(in.Dict(attr).Value(c))
		if err != nil {
			continue
		}
		cvs = append(cvs, cv{code: c, val: f})
	}
	sort.Slice(cvs, func(i, j int) bool { return cvs[i].val < cvs[j].val })
	if len(cvs) == 0 {
		return nil
	}
	if nsplit > len(cvs) {
		nsplit = len(cvs)
	}
	out := make([]rule.Condition, 0, nsplit)
	for i := 0; i < nsplit; i++ {
		lo := i * len(cvs) / nsplit
		hi := (i + 1) * len(cvs) / nsplit
		if lo >= hi {
			continue
		}
		codes := make([]int32, 0, hi-lo)
		for _, x := range cvs[lo:hi] {
			codes = append(codes, x.code)
		}
		label := fmt.Sprintf("%s∈[%g,%g]",
			in.Schema().Attr(attr).Name, cvs[lo].val, cvs[hi-1].val)
		out = append(out, rule.NewCondition(attr, codes, label))
	}
	return out
}

// discreteUnits returns one condition per active-domain value, or — when
// the domain exceeds maxDomain — one condition per common-prefix bucket
// (the "reduce the encoding dimension from dom(x_i) to K" device of
// §IV-A).
func discreteUnits(in *relation.Relation, attr, maxDomain int) []rule.Condition {
	codes := in.DomainCodes(attr)
	if len(codes) <= maxDomain {
		out := make([]rule.Condition, 0, len(codes))
		for _, c := range codes {
			out = append(out, rule.Eq(attr, c))
		}
		return out
	}

	dict := in.Dict(attr)
	// Choose the longest prefix length whose bucket count fits maxDomain.
	maxLen := 0
	for _, c := range codes {
		if l := len(dict.Value(c)); l > maxLen {
			maxLen = l
		}
	}
	bestLen := 1
	for l := 1; l <= maxLen; l++ {
		if countPrefixes(dict, codes, l) <= maxDomain {
			bestLen = l
		} else {
			break
		}
	}

	buckets := make(map[string][]int32)
	for _, c := range codes {
		buckets[prefixOf(dict.Value(c), bestLen)] = append(buckets[prefixOf(dict.Value(c), bestLen)], c)
	}
	prefixes := make([]string, 0, len(buckets))
	for p := range buckets {
		prefixes = append(prefixes, p)
	}
	sort.Strings(prefixes)
	out := make([]rule.Condition, 0, len(prefixes))
	name := in.Schema().Attr(attr).Name
	for _, p := range prefixes {
		out = append(out, rule.NewCondition(attr, buckets[p],
			fmt.Sprintf("%s=%s*", name, p)))
	}
	return out
}

func countPrefixes(dict *relation.Dict, codes []int32, l int) int {
	seen := make(map[string]struct{})
	for _, c := range codes {
		seen[prefixOf(dict.Value(c), l)] = struct{}{}
	}
	return len(seen)
}

func prefixOf(s string, l int) string {
	if len(s) <= l {
		return s
	}
	return s[:l]
}

func parseFloat(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}
