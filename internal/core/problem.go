// Package core defines the editing-rule discovery problem (paper
// Problem 1) and the candidate refinement space shared by every miner in
// this repository: EnuMiner walks the space exhaustively, while RLMiner's
// MDP uses it as its action space.
//
// A refinement unit is either an LHS attribute pair (A, A_m) with
// A_m ∈ M(A), or a pattern condition on an attribute A ∈ R \ {Y}. Pattern
// conditions implement the domain-compression encoding of §IV-A:
// continuous attributes are split into N_split ranges, and discrete
// attributes whose active domain exceeds a threshold are grouped into
// common-prefix buckets, reducing the encoding dimension from |dom(A)| to
// K ≪ |dom(A)|.
package core

import (
	"fmt"
	"runtime"

	"erminer/internal/measure"
	"erminer/internal/relation"
	"erminer/internal/rule"
	"erminer/internal/schema"
)

// Problem is one editing-rule discovery instance (Problem 1): input data
// D, master data D_m, the schema match M, the dependent attribute pair
// (Y, Y_m), the support threshold η_s and the rule budget K.
type Problem struct {
	Input  *relation.Relation
	Master *relation.Relation
	Match  *schema.Match
	Y, Ym  int
	// Truth optionally holds the ground-truth Y codes of the input
	// tuples (the labelled data D_l). Nil means the observed input
	// stands in for D_l, giving the approximate Quality of §II-B3.
	Truth []int32
	// SupportThreshold is η_s.
	SupportThreshold int
	// TopK is the rule budget K (Problem 1); 0 means the paper default.
	TopK int
	// Parallelism is the worker budget of the parallel evaluation
	// engine: the miners' frontier fan-out and the evaluator's chunked
	// full-relation scans. Zero selects runtime.NumCPU(); 1 forces the
	// exact serial path. Every setting produces a bit-identical result
	// (DESIGN.md decision 11).
	Parallelism int
	// IndexCache, when non-nil, is borrowed by every evaluator built
	// for this problem, so mining, MDP reward queries and repair reuse
	// the same built master indexes. See ShareIndexes.
	IndexCache *measure.IndexCache
	// Columns, when non-nil, is the shared columnar store (posting
	// lists, group projections) over Input, borrowed by every evaluator
	// built for this problem. See ShareIndexes. It must index the same
	// relation as Input.
	Columns *measure.ColumnIndex
	// ScalarEval forces the retained row-at-a-time reference evaluation
	// path on every evaluator built for this problem. The columnar
	// default is bit-identical; the flag exists for the equivalence
	// suites and as an operational escape hatch.
	ScalarEval bool
}

// DefaultTopK is the paper's K = 50 (§V-A2).
const DefaultTopK = 50

// K returns the effective rule budget.
func (p *Problem) K() int {
	if p.TopK > 0 {
		return p.TopK
	}
	return DefaultTopK
}

// Validate checks the problem for structural errors.
func (p *Problem) Validate() error {
	switch {
	case p.Input == nil:
		return fmt.Errorf("core: Problem.Input is nil")
	case p.Master == nil:
		return fmt.Errorf("core: Problem.Master is nil")
	case p.Match == nil:
		return fmt.Errorf("core: Problem.Match is nil")
	case p.Y < 0 || p.Y >= p.Input.Schema().Len():
		return fmt.Errorf("core: Y index %d out of range", p.Y)
	case p.Ym < 0 || p.Ym >= p.Master.Schema().Len():
		return fmt.Errorf("core: Ym index %d out of range", p.Ym)
	case p.SupportThreshold < 0:
		return fmt.Errorf("core: negative support threshold")
	case p.Parallelism < 0:
		return fmt.Errorf("core: negative parallelism")
	case p.Truth != nil && len(p.Truth) != p.Input.NumRows():
		return fmt.Errorf("core: Truth has %d entries for %d input tuples",
			len(p.Truth), p.Input.NumRows())
	}
	return nil
}

// Workers returns the effective parallelism: Parallelism when set,
// otherwise the machine's CPU count.
func (p *Problem) Workers() int {
	if p.Parallelism > 0 {
		return p.Parallelism
	}
	return runtime.NumCPU()
}

// ShareIndexes equips the problem with a shared master-index cache and
// a shared columnar store, so every evaluator subsequently built from
// it — by the miners, the MDP reward path and the repair engine —
// reuses the same built indexes, posting lists and group projections
// instead of rebuilding them per component. Idempotent; returns p for
// chaining.
func (p *Problem) ShareIndexes() *Problem {
	if p.IndexCache == nil {
		p.IndexCache = measure.NewIndexCache()
	}
	if p.Columns == nil && p.Input != nil {
		p.Columns = measure.NewColumnIndex(p.Input)
	}
	return p
}

// NewEvaluator builds the measure evaluator for the problem, borrowing
// the shared index cache and columnar store when set and inheriting the
// problem's worker budget for full-relation scans.
func (p *Problem) NewEvaluator() *measure.Evaluator {
	var ev *measure.Evaluator
	if p.IndexCache != nil {
		ev = measure.NewSharedEvaluator(p.Input, p.Master, p.Truth, p.IndexCache)
	} else {
		ev = measure.NewEvaluator(p.Input, p.Master, p.Truth)
	}
	if p.Columns != nil && p.Columns.Relation() == p.Input {
		ev.ShareColumns(p.Columns)
	}
	ev.Parallelism = p.Workers()
	ev.Scalar = p.ScalarEval
	return ev
}

// MinedRule pairs a discovered rule with its measures.
type MinedRule struct {
	Rule     *rule.Rule
	Measures measure.Measures
}

// ResultSet is the output of one mining run.
type ResultSet struct {
	// Rules is the non-redundant top-K set, in descending utility.
	Rules []MinedRule
	// Explored counts candidate rules whose measures were computed.
	Explored int
}

// RuleList extracts the bare rules for the repair engine.
func (rs *ResultSet) RuleList() []*rule.Rule {
	out := make([]*rule.Rule, len(rs.Rules))
	for i, r := range rs.Rules {
		out[i] = r.Rule
	}
	return out
}

// Miner is a rule-discovery algorithm.
type Miner interface {
	// Name identifies the algorithm ("EnuMiner", "RLMiner", "CTANE", ...).
	Name() string
	// Mine solves the problem.
	Mine(p *Problem) (*ResultSet, error)
}

// SelectTopK turns scored candidates into the non-redundant top-K result.
// Candidates with non-positive utility are discarded: a rule whose
// certainty and quality sum to zero or less proposes fixes that are
// wrong at least as often as right.
func SelectTopK(cands []MinedRule, k int) []MinedRule {
	scored := make([]rule.Scored, 0, len(cands))
	byKey := make(map[string]MinedRule, len(cands))
	for _, c := range cands {
		if c.Measures.Utility <= 0 {
			continue
		}
		scored = append(scored, rule.Scored{Rule: c.Rule, Utility: c.Measures.Utility})
		byKey[c.Rule.Key()] = c
	}
	top := rule.TopKNonRedundant(scored, k)
	out := make([]MinedRule, len(top))
	for i, s := range top {
		out[i] = byKey[s.Rule.Key()]
	}
	return out
}
