// Package core defines the editing-rule discovery problem (paper
// Problem 1) and the candidate refinement space shared by every miner in
// this repository: EnuMiner walks the space exhaustively, while RLMiner's
// MDP uses it as its action space.
//
// A refinement unit is either an LHS attribute pair (A, A_m) with
// A_m ∈ M(A), or a pattern condition on an attribute A ∈ R \ {Y}. Pattern
// conditions implement the domain-compression encoding of §IV-A:
// continuous attributes are split into N_split ranges, and discrete
// attributes whose active domain exceeds a threshold are grouped into
// common-prefix buckets, reducing the encoding dimension from |dom(A)| to
// K ≪ |dom(A)|.
package core

import (
	"fmt"

	"erminer/internal/measure"
	"erminer/internal/relation"
	"erminer/internal/rule"
	"erminer/internal/schema"
)

// Problem is one editing-rule discovery instance (Problem 1): input data
// D, master data D_m, the schema match M, the dependent attribute pair
// (Y, Y_m), the support threshold η_s and the rule budget K.
type Problem struct {
	Input  *relation.Relation
	Master *relation.Relation
	Match  *schema.Match
	Y, Ym  int
	// Truth optionally holds the ground-truth Y codes of the input
	// tuples (the labelled data D_l). Nil means the observed input
	// stands in for D_l, giving the approximate Quality of §II-B3.
	Truth []int32
	// SupportThreshold is η_s.
	SupportThreshold int
	// TopK is the rule budget K (Problem 1); 0 means the paper default.
	TopK int
}

// DefaultTopK is the paper's K = 50 (§V-A2).
const DefaultTopK = 50

// K returns the effective rule budget.
func (p *Problem) K() int {
	if p.TopK > 0 {
		return p.TopK
	}
	return DefaultTopK
}

// Validate checks the problem for structural errors.
func (p *Problem) Validate() error {
	switch {
	case p.Input == nil:
		return fmt.Errorf("core: Problem.Input is nil")
	case p.Master == nil:
		return fmt.Errorf("core: Problem.Master is nil")
	case p.Match == nil:
		return fmt.Errorf("core: Problem.Match is nil")
	case p.Y < 0 || p.Y >= p.Input.Schema().Len():
		return fmt.Errorf("core: Y index %d out of range", p.Y)
	case p.Ym < 0 || p.Ym >= p.Master.Schema().Len():
		return fmt.Errorf("core: Ym index %d out of range", p.Ym)
	case p.SupportThreshold < 0:
		return fmt.Errorf("core: negative support threshold")
	case p.Truth != nil && len(p.Truth) != p.Input.NumRows():
		return fmt.Errorf("core: Truth has %d entries for %d input tuples",
			len(p.Truth), p.Input.NumRows())
	}
	return nil
}

// NewEvaluator builds the measure evaluator for the problem.
func (p *Problem) NewEvaluator() *measure.Evaluator {
	return measure.NewEvaluator(p.Input, p.Master, p.Truth)
}

// MinedRule pairs a discovered rule with its measures.
type MinedRule struct {
	Rule     *rule.Rule
	Measures measure.Measures
}

// ResultSet is the output of one mining run.
type ResultSet struct {
	// Rules is the non-redundant top-K set, in descending utility.
	Rules []MinedRule
	// Explored counts candidate rules whose measures were computed.
	Explored int
}

// RuleList extracts the bare rules for the repair engine.
func (rs *ResultSet) RuleList() []*rule.Rule {
	out := make([]*rule.Rule, len(rs.Rules))
	for i, r := range rs.Rules {
		out[i] = r.Rule
	}
	return out
}

// Miner is a rule-discovery algorithm.
type Miner interface {
	// Name identifies the algorithm ("EnuMiner", "RLMiner", "CTANE", ...).
	Name() string
	// Mine solves the problem.
	Mine(p *Problem) (*ResultSet, error)
}

// SelectTopK turns scored candidates into the non-redundant top-K result.
// Candidates with non-positive utility are discarded: a rule whose
// certainty and quality sum to zero or less proposes fixes that are
// wrong at least as often as right.
func SelectTopK(cands []MinedRule, k int) []MinedRule {
	scored := make([]rule.Scored, 0, len(cands))
	byKey := make(map[string]MinedRule, len(cands))
	for _, c := range cands {
		if c.Measures.Utility <= 0 {
			continue
		}
		scored = append(scored, rule.Scored{Rule: c.Rule, Utility: c.Measures.Utility})
		byKey[c.Rule.Key()] = c
	}
	top := rule.TopKNonRedundant(scored, k)
	out := make([]MinedRule, len(top))
	for i, s := range top {
		out[i] = byKey[s.Rule.Key()]
	}
	return out
}
