package rulesio

import (
	"crypto/sha256"
	"encoding/hex"
)

// Generation identity. A rule-set generation is content-addressed: its
// id is the hash of the canonical wire bytes Export produces. Because
// Export is deterministic (attribute names and values in rule order,
// no maps) and Import carries measures through verbatim, re-importing
// an exported file on another node and re-exporting it yields the same
// bytes — so coordinator and workers agree on a generation's identity
// without any out-of-band version registry. The ermcluster replication
// path and erminerd's ETag headers are built on this equality; the
// round-trip is pinned by TestGenerationHashRoundTrip.

// Hash returns the generation id of a wire-format rule file: the
// lowercase-hex SHA-256 of its exact bytes, prefixed "sha256:". Two
// files name the same generation iff their bytes match; pass Export
// output (the canonical form) when comparing across nodes.
func Hash(data []byte) string {
	sum := sha256.Sum256(data)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// ETag renders Hash as a strong HTTP entity tag (the hash in quotes),
// the form erminerd's GET /v1/rules responses carry.
func ETag(data []byte) string {
	return `"` + Hash(data) + `"`
}
