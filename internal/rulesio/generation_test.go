package rulesio

import (
	"strings"
	"testing"

	"erminer/internal/core"
	"erminer/internal/measure"
	"erminer/internal/rule"
)

// testRules mines nothing: a handwritten pair of rules with a pattern
// condition and full measures, enough to exercise every wire field.
func testRules(p *core.Problem) []core.MinedRule {
	return []core.MinedRule{
		{
			Rule: rule.New(
				[]rule.AttrPair{{Input: 0, Master: 0}},
				2, 1,
				[]rule.Condition{rule.NewCondition(0, []int32{p.Input.Dict(0).Code("a1")}, "A=a1")},
			),
			Measures: measure.Measures{Support: 3, Certainty: 0.75, Quality: 0.5, Utility: 1.5},
		},
		{
			Rule:     rule.New([]rule.AttrPair{{Input: 0, Master: 0}, {Input: 1, Master: 0}}, 2, 1, nil),
			Measures: measure.Measures{Support: 7, Certainty: 1, Quality: 1, Utility: 9.25},
		},
	}
}

// TestGenerationHashRoundTrip pins the property the cluster replication
// unit rests on: exporting a rule set, importing it on a fresh "worker"
// problem (private pool, nothing pre-interned beyond the data), and
// re-exporting yields byte-identical wire bytes — so coordinator and
// worker compute the same generation hash with no coordination beyond
// the file itself.
func TestGenerationHashRoundTrip(t *testing.T) {
	coord := fuzzProblem()
	data, err := Export(coord, testRules(coord))
	if err != nil {
		t.Fatal(err)
	}
	gen := Hash(data)

	worker := fuzzProblem()
	imported, err := Import(worker, data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Export(worker, imported)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatalf("re-export on the worker is not canonical:\ncoordinator: %s\nworker:      %s", data, again)
	}
	if got := Hash(again); got != gen {
		t.Errorf("worker generation hash = %s, want %s", got, gen)
	}
}

// TestGenerationHashFormat pins the id and ETag shapes (ermcluster
// parses them back out of healthz payloads and HTTP headers).
func TestGenerationHashFormat(t *testing.T) {
	h := Hash([]byte("[]"))
	if !strings.HasPrefix(h, "sha256:") || len(h) != len("sha256:")+64 {
		t.Errorf("Hash = %q, want sha256: + 64 hex chars", h)
	}
	if h != Hash([]byte("[]")) {
		t.Error("Hash is not deterministic")
	}
	if h == Hash([]byte("[ ]")) {
		t.Error("Hash ignores byte differences")
	}
	if got, want := ETag([]byte("[]")), `"`+h+`"`; got != want {
		t.Errorf("ETag = %q, want %q", got, want)
	}
}

// TestGenerationHashChangesWithRules: distinct rule sets must name
// distinct generations.
func TestGenerationHashChangesWithRules(t *testing.T) {
	p := fuzzProblem()
	all, err := Export(p, testRules(p))
	if err != nil {
		t.Fatal(err)
	}
	one, err := Export(p, testRules(p)[:1])
	if err != nil {
		t.Fatal(err)
	}
	if Hash(all) == Hash(one) {
		t.Error("different rule sets share a generation hash")
	}
}
