// Package rulesio defines the portable JSON wire format of editing
// rules: attribute names and string values rather than schema indices
// and dictionary codes, so a rule file survives re-encoding of the data
// and can travel between processes — the CLI's -export-rules /
// -import-rules artifacts and erminerd's GET/PUT /v1/rules endpoints
// all speak this format.
package rulesio

import (
	"encoding/json"
	"fmt"

	"erminer/internal/core"
	"erminer/internal/measure"
	"erminer/internal/rule"
)

// RuleJSONVersion numbers the portable rules JSON format (including the
// nested CondJSON); bump on any shape change (wiredrift gates it).
const RuleJSONVersion = 1

// RuleJSON is the wire format of one editing rule.
//
//ermvet:wire
type RuleJSON struct {
	LHS     [][2]string `json:"lhs"` // [input attr, master attr] pairs
	Y       string      `json:"y"`
	Ym      string      `json:"ym"`
	Pattern []CondJSON  `json:"pattern,omitempty"`
	// Measures travel along for documentation and monitoring; Import
	// carries them through verbatim, and they can be recomputed against
	// the importing problem's data if needed.
	Support   int     `json:"support,omitempty"`
	Certainty float64 `json:"certainty,omitempty"`
	Quality   float64 `json:"quality,omitempty"`
	Utility   float64 `json:"utility,omitempty"`
}

// CondJSON is the wire format of one pattern condition.
type CondJSON struct {
	Attr   string   `json:"attr"`
	Values []string `json:"values"`
	Negate bool     `json:"negate,omitempty"`
	Label  string   `json:"label,omitempty"`
}

// Export serialises mined rules to JSON, resolving indices and codes
// through the problem's schemas and dictionaries.
func Export(p *core.Problem, rules []core.MinedRule) ([]byte, error) {
	rs := p.Input.Schema()
	ms := p.Master.Schema()
	out := make([]RuleJSON, 0, len(rules))
	for _, mr := range rules {
		r := mr.Rule
		rj := RuleJSON{
			Y:         rs.Attr(r.Y).Name,
			Ym:        ms.Attr(r.Ym).Name,
			Support:   mr.Measures.Support,
			Certainty: mr.Measures.Certainty,
			Quality:   mr.Measures.Quality,
			Utility:   mr.Measures.Utility,
		}
		for _, pr := range r.LHS {
			rj.LHS = append(rj.LHS, [2]string{
				rs.Attr(pr.Input).Name, ms.Attr(pr.Master).Name,
			})
		}
		for _, c := range r.Pattern {
			cj := CondJSON{
				Attr:   rs.Attr(c.Attr).Name,
				Negate: c.Negate,
				Label:  c.Label,
			}
			for _, code := range c.Codes {
				cj.Values = append(cj.Values, p.Input.Dict(c.Attr).Value(code))
			}
			rj.Pattern = append(rj.Pattern, cj)
		}
		out = append(out, rj)
	}
	return json.MarshalIndent(out, "", "  ")
}

// Import parses rules exported by Export against a problem's schemas,
// interning pattern values into the input dictionaries. The measures
// recorded in the file are carried through verbatim (they describe the
// exporting problem's data; re-evaluate to score against the importing
// problem's data).
func Import(p *core.Problem, data []byte) ([]core.MinedRule, error) {
	var raw []RuleJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("erminer: parsing rules JSON: %w", err)
	}
	rs := p.Input.Schema()
	ms := p.Master.Schema()
	out := make([]core.MinedRule, 0, len(raw))
	for i, rj := range raw {
		y := rs.Index(rj.Y)
		ym := ms.Index(rj.Ym)
		if y < 0 || ym < 0 {
			return nil, fmt.Errorf("erminer: rule %d: unknown dependent attributes %q/%q", i, rj.Y, rj.Ym)
		}
		var lhs []rule.AttrPair
		for _, pr := range rj.LHS {
			a := rs.Index(pr[0])
			am := ms.Index(pr[1])
			if a < 0 || am < 0 {
				return nil, fmt.Errorf("erminer: rule %d: unknown LHS pair %v", i, pr)
			}
			lhs = append(lhs, rule.AttrPair{Input: a, Master: am})
		}
		var pattern []rule.Condition
		for _, cj := range rj.Pattern {
			attr := rs.Index(cj.Attr)
			if attr < 0 {
				return nil, fmt.Errorf("erminer: rule %d: unknown pattern attribute %q", i, cj.Attr)
			}
			codes := make([]int32, 0, len(cj.Values))
			for _, v := range cj.Values {
				if v == "" {
					continue
				}
				codes = append(codes, p.Input.Dict(attr).Code(v))
			}
			c := rule.NewCondition(attr, codes, cj.Label)
			c.Negate = cj.Negate
			pattern = append(pattern, c)
		}
		out = append(out, core.MinedRule{
			Rule: rule.New(lhs, y, ym, pattern),
			Measures: measure.Measures{
				Support:   rj.Support,
				Certainty: rj.Certainty,
				Quality:   rj.Quality,
				Utility:   rj.Utility,
			},
		})
	}
	return out, nil
}
