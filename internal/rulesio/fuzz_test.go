package rulesio

import (
	"fmt"
	"testing"

	"erminer/internal/core"
	"erminer/internal/measure"
	"erminer/internal/relation"
	"erminer/internal/rule"
	"erminer/internal/schema"
)

// fuzzProblem builds a small fresh problem per iteration: Import interns
// pattern values into the input dictionaries, so sharing one problem
// across iterations would let corpus entries see each other's state.
func fuzzProblem() *core.Problem {
	pool := relation.NewPool()
	in := relation.NewSchema(
		relation.Attribute{Name: "A", Domain: "a"},
		relation.Attribute{Name: "C"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	ms := relation.NewSchema(
		relation.Attribute{Name: "A", Domain: "a"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	input := relation.New(in, pool)
	master := relation.New(ms, pool)
	for i := 0; i < 8; i++ {
		a := fmt.Sprintf("a%d", i%3)
		c := fmt.Sprintf("c%d", i%2)
		y := fmt.Sprintf("y%d", i%2)
		input.AppendRow([]string{a, c, y})
		master.AppendRow([]string{a, y})
	}
	return &core.Problem{
		Input:            input,
		Master:           master,
		Match:            schema.AutoMatch(in, ms),
		Y:                2,
		Ym:               1,
		SupportThreshold: 2,
	}
}

// FuzzImportRules feeds Import arbitrary bytes. A parse that succeeds
// must yield rules Export can serialise again — Import validated every
// index, so a panic on either side is a bug, not bad input.
func FuzzImportRules(f *testing.F) {
	p := fuzzProblem()
	seed, err := Export(p, []core.MinedRule{
		{
			Rule: rule.New(
				[]rule.AttrPair{{Input: 0, Master: 0}},
				2, 1,
				[]rule.Condition{rule.NewCondition(0, []int32{p.Input.Dict(0).Code("a1")}, "A=a1")},
			),
			Measures: measure.Measures{Support: 3, Certainty: 0.75, Quality: 0.5, Utility: 1.5},
		},
	})
	if err != nil {
		f.Fatalf("seeding corpus from Export: %v", err)
	}
	f.Add(seed)
	f.Add([]byte("[]"))
	f.Add([]byte(`[{"lhs":[["A","A"]],"y":"Y","ym":"Y"}]`))
	f.Add([]byte(`[{"lhs":[["nope","A"]],"y":"Y","ym":"Y"}]`))
	f.Add([]byte(`[{"y":"Y","ym":"Y","pattern":[{"attr":"C","values":["new","","c0"],"negate":true,"label":"l"}]}]`))
	f.Add([]byte(`{"not":"a list"}`))
	f.Add([]byte(`[{"y":1}]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p := fuzzProblem()
		rules, err := Import(p, data)
		if err != nil {
			return
		}
		if _, err := Export(p, rules); err != nil {
			t.Fatalf("Export after successful Import failed: %v", err)
		}
	})
}
