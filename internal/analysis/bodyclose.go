package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// bodyclosePkgs are the packages that talk HTTP: the cluster
// coordinator's fan-out client and the serving daemon. An unclosed
// *http.Response body leaks the underlying connection, and under the
// hedged re-dispatch loop a leak per retry exhausts the transport's
// pool exactly when the cluster is already degraded.
var bodyclosePkgs = map[string]bool{
	"cluster": true,
	"serve":   true,
}

// BodyClose requires every *http.Response obtained from a call in the
// HTTP-speaking packages to reach a Body.Close() on all CFG paths on
// which the response is used. The dataflow is per-variable over the
// basic-block CFG: a response is "open" once assigned from a call,
// "open and used" once a field or Body is touched, and "closed" by
// v.Body.Close(). A used-open response reaching function exit — or
// being overwritten by a re-dispatch — is a finding. Responses handed
// to another function (bare v as argument or return value) transfer
// the obligation and are not tracked further; a response whose Body is
// closed by a defer is exempt. A response that is never used after the
// error check is not flagged: on the err != nil path the pointer is
// nil, and the analysis cannot separate those paths — a deliberate
// false negative in the usual conservative direction.
var BodyClose = &Check{
	Name: "bodyclose",
	Doc:  "*http.Response obtained in cluster/serve must reach Body.Close() on every path that uses it",
	Run:  runBodyClose,
}

func runBodyClose(pass *Pass) {
	if !bodyclosePkgs[pass.Types.Name()] {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			analyzeBodyClose(pass, fd.Name.Name, fd.Body)
			forEachFuncLit(fd.Body, func(lit *ast.FuncLit) {
				analyzeBodyClose(pass, fd.Name.Name+" (func literal)", lit.Body)
			})
		}
	}
}

// inspectSkipLits walks body like ast.Inspect but does not descend
// into nested function literals: a literal body is analysed as its own
// unit.
func inspectSkipLits(body *ast.BlockStmt, visit func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return visit(n)
	})
}

// Response-lifetime lattice: closed/unopened < open < open-and-used.
// Merge takes the max, so any path that leaves a used response open
// dominates.
const (
	respClosed = iota
	respOpen
	respUsed
)

func analyzeBodyClose(pass *Pass, fnName string, body *ast.BlockStmt) {
	cfg := BuildCFG(body)

	// Tracked variables: assigned from a call returning *http.Response
	// in this body, outside nested literals (a literal is its own unit).
	type tracked struct {
		obj *types.Var
		def token.Pos
	}
	var vars []tracked
	seen := make(map[*types.Var]bool)
	inspectSkipLits(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, obj := range responseDefs(pass, as) {
			if !seen[obj] {
				seen[obj] = true
				vars = append(vars, tracked{obj, as.Pos()})
			}
		}
		return true
	})
	if len(vars) == 0 {
		return
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].def < vars[j].def })

	exempt := deferExempt(pass, cfg)
	for _, v := range vars {
		if exempt[v.obj] {
			continue
		}
		leaked, reassigned := closeDataflow(pass, cfg, v.obj)
		if !leaked && !reassigned {
			continue
		}
		var what string
		switch {
		case leaked && reassigned:
			what = "may be reassigned and may reach the end of " + fnName + " while its Body is unclosed"
		case reassigned:
			what = "may be reassigned while its Body is still unclosed"
		default:
			what = "may reach the end of " + fnName + " with its Body unclosed"
		}
		pass.Reportf(v.def, "*http.Response %s %s: close the body on every path that used the response, including error and retry paths", v.obj.Name(), what)
	}
}

// responseDefs returns the variables as assigns from a call returning
// *http.Response.
func responseDefs(pass *Pass, as *ast.AssignStmt) []*types.Var {
	fromCall := func(i int) bool {
		rhs := as.Rhs[0]
		if len(as.Rhs) == len(as.Lhs) && len(as.Rhs) > 1 {
			rhs = as.Rhs[i]
		}
		_, ok := ast.Unparen(rhs).(*ast.CallExpr)
		return ok
	}
	var objs []*types.Var
	for i, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" || !fromCall(i) {
			continue
		}
		var obj types.Object
		if as.Tok == token.DEFINE {
			obj = pass.Info.Defs[id]
		}
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok && isResponsePtr(v.Type()) {
			objs = append(objs, v)
		}
	}
	return objs
}

// isResponsePtr recognizes *http.Response structurally: a pointer to a
// named type Response whose struct has a Body field with a Close
// method. The structural form lets fixtures declare a local Response
// instead of importing net/http (which would drag the whole package
// through the source importer in tests).
func isResponsePtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok || named.Obj().Name() != "Response" {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != "Body" {
			continue
		}
		ms := types.NewMethodSet(f.Type())
		for j := 0; j < ms.Len(); j++ {
			if ms.At(j).Obj().Name() == "Close" {
				return true
			}
		}
	}
	return false
}

// deferExempt discharges variables whose Body a defer closes — directly
// (defer v.Body.Close()), inside a deferred literal, or by handing the
// bare variable to a deferred call (defer drain(v)).
func deferExempt(pass *Pass, cfg *CFG) map[*types.Var]bool {
	exempt := make(map[*types.Var]bool)
	note := func(obj types.Object) {
		if v, ok := obj.(*types.Var); ok && isResponsePtr(v.Type()) {
			exempt[v] = true
		}
	}
	for _, call := range cfg.Defers {
		if id := closedVar(call); id != nil {
			note(objectOf(pass, id))
			continue
		}
		if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					if id := closedVar(c); id != nil {
						note(objectOf(pass, id))
					}
				}
				return true
			})
			continue
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				note(objectOf(pass, id))
			}
		}
	}
	return exempt
}

// closedVar matches the v.Body.Close() pattern, returning v's ident.
func closedVar(call *ast.CallExpr) *ast.Ident {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return nil
	}
	body, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || body.Sel.Name != "Body" {
		return nil
	}
	id, ok := ast.Unparen(body.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return id
}

func objectOf(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return pass.Info.Defs[id]
}

// closeDataflow runs the per-variable lifetime dataflow to fixpoint.
// It returns whether an open-and-used response can reach the exit
// block, and whether it can be overwritten while open-and-used.
func closeDataflow(pass *Pass, cfg *CFG, obj *types.Var) (leaked, reassigned bool) {
	in := make([]int, len(cfg.Blocks)) // Exit is Blocks' last entry
	unvisited := make([]bool, len(cfg.Blocks))
	for i := range unvisited {
		unvisited[i] = true
	}
	unvisited[cfg.Entry.Index] = false

	for changed := true; changed; {
		changed = false
		for _, blk := range cfg.Blocks {
			if unvisited[blk.Index] {
				continue
			}
			out := in[blk.Index]
			for _, n := range blk.Nodes {
				out = transferClose(pass, obj, n, out, &reassigned)
			}
			for _, succ := range blk.Succs {
				idx := succ.Index
				if unvisited[idx] || out > in[idx] {
					unvisited[idx] = false
					if out > in[idx] {
						in[idx] = out
					}
					changed = true
				}
			}
		}
	}
	leaked = !unvisited[cfg.Exit.Index] && in[cfg.Exit.Index] == respUsed
	return leaked, reassigned
}

// transferClose applies one CFG node's effect on obj's state. Within a
// node, sub-expressions are visited in pre-order, which matches
// evaluation order for the patterns the check recognizes.
func transferClose(pass *Pass, obj *types.Var, node ast.Node, s int, reassigned *bool) int {
	isObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && objectOf(pass, id) == obj
	}
	var visitExpr func(n ast.Node)
	visitExpr = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				// The closure may run later (or never): if it touches
				// the variable, ownership escapes to it.
				used := false
				ast.Inspect(n.Body, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && objectOf(pass, id) == obj {
						used = true
					}
					return !used
				})
				if used {
					s = respClosed
				}
				return false
			case *ast.CallExpr:
				if id := closedVar(n); id != nil && objectOf(pass, id) == obj {
					s = respClosed
					for _, arg := range n.Args {
						visitExpr(arg)
					}
					return false
				}
				return true
			case *ast.SelectorExpr:
				if isObj(n.X) {
					if s >= respOpen {
						s = respUsed
					}
					return false
				}
				return true
			case *ast.BinaryExpr:
				// A nil comparison observes the pointer, not the body.
				if n.Op == token.EQL || n.Op == token.NEQ {
					xNil := pass.Info.Types[n.X].IsNil()
					yNil := pass.Info.Types[n.Y].IsNil()
					if (isObj(n.X) && yNil) || (isObj(n.Y) && xNil) {
						return false
					}
				}
				return true
			case *ast.Ident:
				if objectOf(pass, n) == obj {
					// Bare use: passed, returned or stored somewhere —
					// the close obligation transfers with the value.
					s = respClosed
				}
				return true
			}
			return true
		})
	}

	if as, ok := node.(*ast.AssignStmt); ok {
		defs := responseDefs(pass, as)
		isDef := false
		for _, d := range defs {
			if d == obj {
				isDef = true
			}
		}
		if isDef {
			for _, rhs := range as.Rhs {
				visitExpr(rhs)
			}
			for _, lhs := range as.Lhs {
				if !isObj(lhs) {
					visitExpr(lhs)
				}
			}
			if s == respUsed {
				*reassigned = true
			}
			return respOpen
		}
	}
	visitExpr(node)
	return s
}
