package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// LockOrder is the interprocedural, whole-module extension of lockflow:
// it propagates the lockset dataflow through the call graph and checks
// what happens *between* functions, which a per-function pass cannot
// see.
//
//   - A lock-acquisition-order graph: an edge A → B whenever some path
//     acquires B (directly or via a static call) while A is held. Any
//     cycle in the graph is a potential ABBA deadlock and is reported
//     once with every witness acquisition path.
//   - Blocking operations under a mutex: channel sends and receives
//     (including semaphore/pool claims and selects without a default),
//     ranging over a channel, sync.WaitGroup/Cond Wait, and net/http
//     client round-trips, performed — or reachable through a static
//     call — while a lock is held. Holding a mutex across an unbounded
//     wait starves every other user of that lock.
//   - Interprocedural self-deadlock: calling a function that reacquires
//     a lock the caller already holds.
//
// Lock identity is the mutex's declared field/variable object
// (*types.Var), shared across packages by the module loader's single
// FileSet — all instances of Server.dictMu are conflated, which is the
// useful granularity for ordering. Calls through closures, function
// values and interfaces contribute no edges (the same closure-opaque
// under-approximation the call graph makes everywhere else), and
// time.Sleep is deliberately not a blocking op: it is bounded by
// construction. Paths the analysis cannot see can only make the check
// quieter, never invent a finding.
var LockOrder = &Check{
	Name: "lockorder",
	Doc:  "interprocedural lock-acquisition-order graph: no cycles (ABBA), no blocking ops or reacquisition while holding a mutex",
	Run:  runLockOrder,
}

// LockOrderInfo carries the module-wide lock-order analysis, computed
// once by BuildLockOrder and shared by every per-package pass through
// Options.Locks.
type LockOrderInfo struct {
	findings []lockOrderFinding
}

type lockOrderFinding struct {
	pos token.Position
	msg string
}

const (
	loAcquire = iota
	loRelease
	loBlock
	loCall
)

// loEvent is one lock-order-relevant operation inside a CFG node.
type loEvent struct {
	kind   int
	v      *types.Var // loAcquire/loRelease: the mutex object
	name   string     // display name ("Server.dictMu")
	mode   lockMode
	desc   string      // loBlock: what blocks
	callee *types.Func // loCall
	pos    token.Pos
}

// acqWitness is where a lock is (transitively) acquired.
type acqWitness struct {
	mode lockMode
	fn   *types.Func // function whose body contains the acquire
	pos  token.Pos
}

// blockWitness is the first (transitively) reachable blocking op.
type blockWitness struct {
	desc string
	fn   *types.Func // function whose body blocks (nil pos for stdlib)
	pos  token.Pos
}

// reachInfo is one function's transitive summary over direct call
// edges.
type reachInfo struct {
	acquires map[*types.Var]*acqWitness
	block    *blockWitness
}

// lockEdge is one acquisition-order edge with its witness.
type lockEdge struct {
	from, to         *types.Var
	fromName, toName string
	witness          string         // rendered witness acquisition path
	pos              token.Position // where the finding anchors (the to-acquire or call site)
}

type lockOrderBuilder struct {
	pkgs  []*Package
	graph *CallGraph
	// declPkg maps each declared function to its package (the Info the
	// CFG walk needs).
	declPkg map[*types.Func]*Package
	// direct holds per-function direct summaries: acquires and the
	// first blocking op in the body, outside function literals.
	directAcq   map[*types.Func]map[*types.Var]*acqWitness
	directBlock map[*types.Func]*blockWitness
	names       map[*types.Var]string

	memo    map[*types.Func]*reachInfo
	onStack map[*types.Func]bool

	edges    map[[2]*types.Var]*lockEdge
	findings []lockOrderFinding
	seen     map[string]bool
}

// BuildLockOrder runs the whole-module analysis over the given
// packages. graph may be nil (built on demand).
func BuildLockOrder(pkgs []*Package, graph *CallGraph) *LockOrderInfo {
	if graph == nil {
		graph = BuildCallGraph(pkgs)
	}
	b := &lockOrderBuilder{
		pkgs:        pkgs,
		graph:       graph,
		declPkg:     make(map[*types.Func]*Package),
		directAcq:   make(map[*types.Func]map[*types.Var]*acqWitness),
		directBlock: make(map[*types.Func]*blockWitness),
		names:       make(map[*types.Var]string),
		memo:        make(map[*types.Func]*reachInfo),
		onStack:     make(map[*types.Func]bool),
		edges:       make(map[[2]*types.Var]*lockEdge),
		seen:        make(map[string]bool),
	}
	b.collectSummaries()
	b.analyzeAll()
	b.reportCycles()
	info := &LockOrderInfo{findings: b.findings}
	sort.Slice(info.findings, func(i, j int) bool {
		a, c := info.findings[i], info.findings[j]
		if a.pos.Filename != c.pos.Filename {
			return a.pos.Filename < c.pos.Filename
		}
		if a.pos.Line != c.pos.Line {
			return a.pos.Line < c.pos.Line
		}
		return a.msg < c.msg
	})
	return info
}

func runLockOrder(pass *Pass) {
	info := pass.Opts.Locks
	if info == nil {
		info = BuildLockOrder([]*Package{pass.Package}, pass.Opts.Graph)
	}
	mine := make(map[string]bool, len(pass.Files))
	for _, f := range pass.Files {
		mine[pass.Fset.Position(f.Pos()).Filename] = true
	}
	for _, fd := range info.findings {
		if mine[fd.pos.Filename] {
			pass.ReportAt(fd.pos, "%s", fd.msg)
		}
	}
}

// lockVar resolves the mutex object behind a Lock/Unlock receiver chain
// ("s.dictMu" → the dictMu field var) plus a display name. Chains the
// type info cannot resolve return nil — the analysis under-reports
// rather than conflating unrelated locks.
func lockVar(pkg *Package, expr ast.Expr) (*types.Var, string) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		sel := pkg.Info.Selections[e]
		if sel == nil || sel.Kind() != types.FieldVal {
			return nil, ""
		}
		v, ok := sel.Obj().(*types.Var)
		if !ok {
			return nil, ""
		}
		return v, ownerTypeName(pkg, e.X) + "." + v.Name()
	case *ast.Ident:
		obj := pkg.Info.Uses[e]
		if obj == nil {
			obj = pkg.Info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok {
			return v, v.Name()
		}
	}
	return nil, ""
}

// ownerTypeName names the struct a mutex field belongs to, for display.
func ownerTypeName(pkg *Package, base ast.Expr) string {
	tv, ok := pkg.Info.Types[base]
	if !ok || tv.Type == nil {
		return types.ExprString(base)
	}
	t := tv.Type
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return types.ExprString(base)
}

// funcDisplay renders a function compactly: "(*Server).handleRepair".
func funcDisplay(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		star := ""
		if p, isPtr := t.(*types.Pointer); isPtr {
			t, star = p.Elem(), "*"
		}
		if named, isNamed := t.(*types.Named); isNamed {
			return "(" + star + named.Obj().Name() + ")." + fn.Name()
		}
	}
	return fn.Name()
}

// receiverTypeName returns the bare receiver type name, or "".
func receiverTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	if named, isNamed := t.(*types.Named); isNamed {
		return named.Obj().Name()
	}
	return ""
}

// stdlibBlocking classifies standard-library calls that block
// unboundedly.
func stdlibBlocking(fn *types.Func) (string, bool) {
	if fn.Pkg() == nil {
		return "", false
	}
	recv := receiverTypeName(fn)
	switch fn.Pkg().Path() {
	case "sync":
		if fn.Name() == "Wait" && (recv == "WaitGroup" || recv == "Cond") {
			return "sync." + recv + ".Wait", true
		}
	case "net/http":
		switch fn.Name() {
		case "Do", "Get", "Post", "PostForm", "Head":
			if recv == "Client" || recv == "" {
				return "net/http round-trip", true
			}
		}
	}
	return "", false
}

// shortPos renders a position as "file.go:line" for witness strings.
func shortPos(p token.Position) string {
	return filepath.Base(p.Filename) + ":" + fmt.Sprint(p.Line)
}

// bodyScan precomputes per-body node sets the event extractor needs:
// the comm statements of selects that have a default case (those never
// block), and the range expressions that iterate channels (those do).
func bodyScan(pkg *Package, body *ast.BlockStmt) (nonBlockingComm map[ast.Node]bool, chanRange map[ast.Node]bool) {
	nonBlockingComm = make(map[ast.Node]bool)
	chanRange = make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			hasDefault := false
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if hasDefault {
				for _, clause := range n.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
						nonBlockingComm[cc.Comm] = true
					}
				}
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					chanRange[n.X] = true
				}
			}
		}
		return true
	})
	return nonBlockingComm, chanRange
}

// nodeLockOrderEvents extracts one CFG node's events in source order,
// without descending into function literals (separate flow units) or
// go/defer statements (a spawned call does not block the holder; a
// deferred release runs at exit, which for ordering purposes means the
// lock is held to the end — exactly what ignoring it models).
func (b *lockOrderBuilder) nodeEvents(pkg *Package, node ast.Node, nonBlockingComm, chanRange map[ast.Node]bool) []loEvent {
	switch node.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		return nil
	}
	var evs []loEvent
	ast.Inspect(node, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if nonBlockingComm[n] {
			return false // a comm op raced against a default case
		}
		if chanRange[n] {
			evs = append(evs, loEvent{kind: loBlock, desc: "range over a channel", pos: n.Pos()})
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			evs = append(evs, loEvent{kind: loBlock, desc: "channel send", pos: n.Arrow})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				evs = append(evs, loEvent{kind: loBlock, desc: "channel receive", pos: n.OpPos})
			}
		case *ast.CallExpr:
			if _, kind, ok := lockCall(pkg, n); ok {
				sel := n.Fun.(*ast.SelectorExpr)
				v, name := lockVar(pkg, sel.X)
				if v == nil {
					return false
				}
				mode := lockWrite
				if sel.Sel.Name == "RLock" {
					mode = lockRead
				}
				loKind := loAcquire
				if kind == evRelease {
					loKind = loRelease
				}
				evs = append(evs, loEvent{kind: loKind, v: v, name: name, mode: mode, pos: n.Pos()})
				return false
			}
			if callee := StaticCallee(pkg.Info, n); callee != nil {
				if desc, ok := stdlibBlocking(callee); ok {
					evs = append(evs, loEvent{kind: loBlock, desc: desc, pos: n.Pos()})
				} else if b.graph.DeclOf(callee) != nil {
					evs = append(evs, loEvent{kind: loCall, callee: callee, pos: n.Pos()})
				}
			}
		}
		return true
	})
	return evs
}

// collectSummaries builds the per-function direct summaries phase one
// of the analysis memoizes over.
func (b *lockOrderBuilder) collectSummaries() {
	for _, pkg := range b.pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				b.declPkg[fn] = pkg
				nonBlockingComm, chanRange := bodyScan(pkg, fd.Body)
				acq := make(map[*types.Var]*acqWitness)
				var blk *blockWitness
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if n == nil {
						return false
					}
					if _, isLit := n.(*ast.FuncLit); isLit {
						return false
					}
					switch n.(type) {
					case *ast.DeferStmt, *ast.GoStmt:
						return false
					}
					if nonBlockingComm[n] {
						return false
					}
					if chanRange[n] && blk == nil {
						blk = &blockWitness{desc: "range over a channel", fn: fn, pos: n.Pos()}
					}
					switch n := n.(type) {
					case *ast.SendStmt:
						if blk == nil {
							blk = &blockWitness{desc: "channel send", fn: fn, pos: n.Arrow}
						}
					case *ast.UnaryExpr:
						if n.Op == token.ARROW && blk == nil {
							blk = &blockWitness{desc: "channel receive", fn: fn, pos: n.OpPos}
						}
					case *ast.CallExpr:
						if _, kind, ok := lockCall(pkg, n); ok {
							if kind == evAcquire {
								sel := n.Fun.(*ast.SelectorExpr)
								if v, name := lockVar(pkg, sel.X); v != nil {
									b.names[v] = name
									mode := lockWrite
									if sel.Sel.Name == "RLock" {
										mode = lockRead
									}
									if _, have := acq[v]; !have {
										acq[v] = &acqWitness{mode: mode, fn: fn, pos: n.Pos()}
									}
								}
							}
							return false
						}
						if callee := StaticCallee(pkg.Info, n); callee != nil && blk == nil {
							if desc, ok := stdlibBlocking(callee); ok {
								blk = &blockWitness{desc: desc, fn: fn, pos: n.Pos()}
							}
						}
					}
					return true
				})
				b.directAcq[fn] = acq
				b.directBlock[fn] = blk
			}
		}
	}
}

// reach memoizes the transitive summary over direct (closure-opaque)
// call edges, with an on-stack guard for recursion.
func (b *lockOrderBuilder) reach(fn *types.Func) *reachInfo {
	if r, ok := b.memo[fn]; ok {
		return r
	}
	if b.onStack[fn] {
		return &reachInfo{acquires: map[*types.Var]*acqWitness{}}
	}
	b.onStack[fn] = true
	defer delete(b.onStack, fn)
	r := &reachInfo{acquires: make(map[*types.Var]*acqWitness)}
	for v, w := range b.directAcq[fn] {
		r.acquires[v] = w
	}
	r.block = b.directBlock[fn]
	for _, callee := range b.graph.DirectCallees(fn) {
		if _, declared := b.directAcq[callee]; !declared {
			continue // stdlib callees contribute through stdlibBlocking at the call site
		}
		cr := b.reach(callee)
		for v, w := range cr.acquires {
			if _, have := r.acquires[v]; !have {
				r.acquires[v] = w
			}
		}
		if r.block == nil {
			r.block = cr.block
		}
	}
	b.memo[fn] = r
	return r
}

func (b *lockOrderBuilder) reportOnce(pos token.Position, msg string) {
	k := pos.Filename + ":" + fmt.Sprint(pos.Line) + ":" + msg
	if b.seen[k] {
		return
	}
	b.seen[k] = true
	b.findings = append(b.findings, lockOrderFinding{pos: pos, msg: msg})
}

// heldNames renders a held lockset deterministically.
func (b *lockOrderBuilder) heldNames(held map[*types.Var]lockMode) string {
	names := make([]string, 0, len(held))
	for v := range held {
		names = append(names, b.names[v])
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func (b *lockOrderBuilder) addEdge(pkg *Package, from, to *types.Var, witness string, pos token.Pos) {
	key := [2]*types.Var{from, to}
	if _, have := b.edges[key]; have {
		return
	}
	b.edges[key] = &lockEdge{
		from: from, to: to,
		fromName: b.names[from], toName: b.names[to],
		witness: witness,
		pos:     pkg.Fset.Position(pos),
	}
}

// analyzeAll runs the per-function CFG lockset dataflow, emitting
// blocking/self-deadlock findings and acquisition-order edges.
func (b *lockOrderBuilder) analyzeAll() {
	for _, pkg := range b.pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				b.analyzeFunc(pkg, fn, fd.Body)
				// Function literals are separate flow units, as in
				// lockflow: locks acquired inside a literal are the
				// spawned/deferred frame's business, not the creator's.
				forEachFuncLit(fd.Body, func(lit *ast.FuncLit) {
					b.analyzeFunc(pkg, fn, lit.Body)
				})
			}
		}
	}
}

type loHeld map[*types.Var]lockMode

func (h loHeld) clone() loHeld {
	c := make(loHeld, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func (h loHeld) key() string {
	ks := make([]string, 0, len(h))
	for v, m := range h {
		k := fmt.Sprint(int(v.Pos()))
		if m == lockRead {
			k += ":R"
		}
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return strings.Join(ks, "|")
}

// orderedHeld iterates a held set deterministically by display name.
func (b *lockOrderBuilder) orderedHeld(h loHeld) []*types.Var {
	vs := make([]*types.Var, 0, len(h))
	for v := range h {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool {
		if b.names[vs[i]] != b.names[vs[j]] {
			return b.names[vs[i]] < b.names[vs[j]]
		}
		return vs[i].Pos() < vs[j].Pos()
	})
	return vs
}

func (b *lockOrderBuilder) analyzeFunc(pkg *Package, fn *types.Func, body *ast.BlockStmt) {
	cfg := BuildCFG(body)
	nonBlockingComm, chanRange := bodyScan(pkg, body)
	events := make([][]loEvent, len(cfg.Blocks))
	any := false
	for i, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			evs := b.nodeEvents(pkg, n, nonBlockingComm, chanRange)
			events[i] = append(events[i], evs...)
		}
		if len(events[i]) > 0 {
			any = true
		}
	}
	if !any {
		return
	}
	fnName := funcDisplay(fn)

	apply := func(blkIdx int, in loHeld) loHeld {
		held := in.clone()
		for _, ev := range events[blkIdx] {
			switch ev.kind {
			case loAcquire:
				for _, a := range b.orderedHeld(held) {
					if a == ev.v {
						continue // lockflow reports intra-procedural double-locks
					}
					b.addEdge(pkg, a, ev.v,
						fmt.Sprintf("%s acquired in %s at %s while %s is held",
							ev.name, fnName, shortPos(pkg.Fset.Position(ev.pos)), b.names[a]),
						ev.pos)
				}
				if _, have := held[ev.v]; !have {
					held[ev.v] = ev.mode
				}
			case loRelease:
				delete(held, ev.v)
			case loBlock:
				if len(held) > 0 {
					b.reportOnce(pkg.Fset.Position(ev.pos),
						fmt.Sprintf("blocking %s in %s while holding %s; an unbounded wait under a mutex starves every other user of the lock",
							ev.desc, fnName, b.heldNames(held)))
				}
			case loCall:
				r := b.reach(ev.callee)
				if len(held) > 0 && r.block != nil {
					desc := r.block.desc
					if r.block.fn != nil && r.block.fn != ev.callee {
						desc += " in " + funcDisplay(r.block.fn)
					}
					b.reportOnce(pkg.Fset.Position(ev.pos),
						fmt.Sprintf("call to %s in %s may block (%s) while holding %s",
							funcDisplay(ev.callee), fnName, desc, b.heldNames(held)))
				}
				for _, a := range b.orderedHeld(held) {
					for _, v := range b.reachOrdered(r) {
						w := r.acquires[v]
						if v == a {
							if held[a] == lockRead && w.mode == lockRead {
								continue
							}
							b.reportOnce(pkg.Fset.Position(ev.pos),
								fmt.Sprintf("call to %s in %s reacquires %s, already held on this path (self-deadlock; acquire in %s at %s)",
									funcDisplay(ev.callee), fnName, b.names[a], funcDisplay(w.fn), shortPos(pkg.Fset.Position(w.pos))))
							continue
						}
						b.addEdge(pkg, a, v,
							fmt.Sprintf("%s acquired via call to %s in %s at %s (acquire in %s at %s) while %s is held",
								b.names[v], funcDisplay(ev.callee), fnName, shortPos(pkg.Fset.Position(ev.pos)),
								funcDisplay(w.fn), shortPos(pkg.Fset.Position(w.pos)), b.names[a]),
							ev.pos)
					}
				}
			}
		}
		return held
	}

	heldStates := make([]map[string]loHeld, len(cfg.Blocks))
	for i := range heldStates {
		heldStates[i] = make(map[string]loHeld)
	}
	add := func(idx int, h loHeld) bool {
		k := h.key()
		if _, ok := heldStates[idx][k]; ok {
			return false
		}
		heldStates[idx][k] = h
		return true
	}
	add(cfg.Entry.Index, loHeld{})
	work := []int{cfg.Entry.Index}
	processed := make(map[string]bool)
	for len(work) > 0 {
		idx := work[0]
		work = work[1:]
		blk := cfg.Blocks[idx]
		keys := make([]string, 0, len(heldStates[idx]))
		for k := range heldStates[idx] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			pk := fmt.Sprintf("%d:%s", idx, k)
			if processed[pk] {
				continue
			}
			processed[pk] = true
			out := apply(idx, heldStates[idx][k])
			for _, succ := range blk.Succs {
				if len(heldStates[succ.Index]) >= maxLocksets {
					return // bail: pathological state growth
				}
				if add(succ.Index, out) {
					work = append(work, succ.Index)
				}
			}
		}
	}
}

// reachOrdered iterates a reach summary's acquires deterministically.
func (b *lockOrderBuilder) reachOrdered(r *reachInfo) []*types.Var {
	vs := make([]*types.Var, 0, len(r.acquires))
	for v := range r.acquires {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool {
		if b.names[vs[i]] != b.names[vs[j]] {
			return b.names[vs[i]] < b.names[vs[j]]
		}
		return vs[i].Pos() < vs[j].Pos()
	})
	return vs
}

// reportCycles finds strongly connected components of the acquisition
// graph and reports each once, listing every witness edge — both (or
// all) acquisition paths of the potential ABBA deadlock.
func (b *lockOrderBuilder) reportCycles() {
	// Deterministic node order.
	nodeSet := make(map[*types.Var]bool)
	for key := range b.edges {
		nodeSet[key[0]] = true
		nodeSet[key[1]] = true
	}
	nodes := make([]*types.Var, 0, len(nodeSet))
	for v := range nodeSet {
		nodes = append(nodes, v)
	}
	sort.Slice(nodes, func(i, j int) bool {
		if b.names[nodes[i]] != b.names[nodes[j]] {
			return b.names[nodes[i]] < b.names[nodes[j]]
		}
		return nodes[i].Pos() < nodes[j].Pos()
	})
	keys := make([][2]*types.Var, 0, len(b.edges))
	for key := range b.edges {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, c := keys[i], keys[j]
		if b.names[a[0]] != b.names[c[0]] {
			return b.names[a[0]] < b.names[c[0]]
		}
		return b.names[a[1]] < b.names[c[1]]
	})
	succs := make(map[*types.Var][]*types.Var)
	for _, key := range keys {
		succs[key[0]] = append(succs[key[0]], key[1])
	}

	// Tarjan's SCC, iterative enough for our graph sizes via recursion
	// (lock graphs are tiny).
	index := make(map[*types.Var]int)
	low := make(map[*types.Var]int)
	onStk := make(map[*types.Var]bool)
	var stack []*types.Var
	var counter int
	var sccs [][]*types.Var
	var strong func(v *types.Var)
	strong = func(v *types.Var) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStk[v] = true
		for _, w := range succs[v] {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStk[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*types.Var
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStk[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sccs = append(sccs, scc)
			}
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strong(v)
		}
	}

	for _, scc := range sccs {
		in := make(map[*types.Var]bool, len(scc))
		for _, v := range scc {
			in[v] = true
		}
		var cycleEdges []*lockEdge
		for key, e := range b.edges {
			if in[key[0]] && in[key[1]] {
				cycleEdges = append(cycleEdges, e)
			}
		}
		sort.Slice(cycleEdges, func(i, j int) bool {
			a, c := cycleEdges[i], cycleEdges[j]
			if a.fromName != c.fromName {
				return a.fromName < c.fromName
			}
			return a.toName < c.toName
		})
		names := make([]string, 0, len(scc))
		for _, v := range scc {
			names = append(names, b.names[v])
		}
		sort.Strings(names)
		parts := make([]string, 0, len(cycleEdges))
		for _, e := range cycleEdges {
			parts = append(parts, fmt.Sprintf("%s → %s (%s)", e.fromName, e.toName, e.witness))
		}
		b.reportOnce(cycleEdges[0].pos,
			fmt.Sprintf("lock-order cycle between %s: %s — potential ABBA deadlock; acquire these locks in one fixed order everywhere",
				strings.Join(names, " and "), strings.Join(parts, "; ")))
	}
}
