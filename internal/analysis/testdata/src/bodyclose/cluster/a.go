// Package cluster is a bodyclose fixture: its name places it among the
// HTTP-speaking packages, so every response obtained from a call must
// reach Body.Close() on all paths that use it. Response mirrors
// net/http.Response's shape (a Body field with a Close method) so the
// fixture does not drag net/http through the source importer.
package cluster

import "errors"

type body struct{}

func (body) Close() error { return nil }

type Response struct {
	StatusCode int
	Body       body
}

type client struct{}

func (client) do() (*Response, error) { return &Response{}, nil }

// okDefer closes via defer after the error check; passes.
func okDefer(c client) (int, error) {
	resp, err := c.do()
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return resp.StatusCode, nil
}

// okAllPaths closes before every return that follows a use; passes.
func okAllPaths(c client) (int, error) {
	resp, err := c.do()
	if err != nil {
		return 0, err
	}
	code := resp.StatusCode
	resp.Body.Close()
	return code, nil
}

// leakOnStatus uses the response, then returns early without closing.
func leakOnStatus(c client) error {
	resp, err := c.do() // want `\*http\.Response resp may reach the end of leakOnStatus with its Body unclosed`
	if err != nil {
		return err
	}
	if resp.StatusCode != 200 {
		return errors.New("bad status")
	}
	resp.Body.Close()
	return nil
}

// leakOnRedispatch overwrites an open, used response inside the retry
// loop, and the post-loop error return can also leave it unclosed.
func leakOnRedispatch(c client) error {
	resp, err := c.do() // want `resp may be reassigned and may reach the end of leakOnRedispatch while its Body is unclosed`
	for i := 0; i < 2; i++ {
		if err == nil && resp.StatusCode == 200 {
			break
		}
		resp, err = c.do()
	}
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// reassignOnly closes on every exit path but still overwrites an open
// response.
func reassignOnly(c client) int {
	resp, _ := c.do() // want `resp may be reassigned while its Body is still unclosed`
	if resp.StatusCode >= 500 {
		resp, _ = c.do()
	}
	resp.Body.Close()
	return resp.StatusCode
}

// passOn hands the bare response to its caller: the close obligation
// transfers with the value; passes.
func passOn(c client) (*Response, error) {
	resp, err := c.do()
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// closeAsync hands the response to a goroutine that closes it; passes
// (ownership escapes into the literal).
func closeAsync(c client, done chan struct{}) error {
	resp, err := c.do()
	if err != nil {
		return err
	}
	go func() {
		resp.Body.Close()
		close(done)
	}()
	return nil
}

func checkStatus(code int) error {
	if code != 200 {
		return errors.New("bad status")
	}
	return nil
}

// leakSuppressed documents why the leak is intended.
func leakSuppressed(c client) error {
	//ermvet:ignore bodyclose fixture exercising the suppression path
	resp, err := c.do()
	if err != nil {
		return err
	}
	return checkStatus(resp.StatusCode)
}
