// Package other is out of bodyclose's scope: the check fires only in
// the HTTP-speaking packages (cluster, serve), so the same leak shapes
// pass here.
package other

import "errors"

type body struct{}

func (body) Close() error { return nil }

type Response struct {
	StatusCode int
	Body       body
}

type client struct{}

func (client) do() (*Response, error) { return &Response{}, nil }

// leakOnStatus would fire in cluster; here it passes.
func leakOnStatus(c client) error {
	resp, err := c.do()
	if err != nil {
		return err
	}
	if resp.StatusCode != 200 {
		return errors.New("bad status")
	}
	resp.Body.Close()
	return nil
}
