// Package measure is a detrand fixture: its name places it in the
// determinism-critical set, so global draws and wall-clock reads fire.
package measure

import (
	"math/rand"
	"time"
)

func globalDraw() int {
	return rand.Intn(10) // want `call to global math/rand.Intn in determinism-critical package measure`
}

func wallClock() time.Time {
	return time.Now() // want `wall-clock read time.Now in determinism-critical package measure`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock read time.Since`
}

// seeded is the approved path: constructors build an explicit generator.
func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

func suppressed() time.Time {
	//ermvet:ignore detrand fixture exercising the suppression path
	return time.Now()
}
