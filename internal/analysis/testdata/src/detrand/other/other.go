// Package other is a detrand fixture: not determinism-critical, so the
// same calls that fire in package measure pass here.
package other

import (
	"math/rand"
	"time"
)

func anything() (int, time.Time) {
	return rand.Intn(10), time.Now()
}
