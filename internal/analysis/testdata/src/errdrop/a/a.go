// Package a is an errdrop fixture.
package a

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func value() int { return 1 }

func two() (int, error) { return 0, nil }

// dropped discards the error as a bare statement.
func dropped() {
	mayFail() // want `call to mayFail drops its error result`
}

// deferredDrop is the classic lost Close on a write path.
func deferredDrop(f *os.File) {
	defer f.Close() // want `deferred call to f.Close drops its error result`
}

// blanked discards the error explicitly but without a reason.
func blanked() {
	_ = mayFail() // want `blank-assigned call to mayFail drops its error result`
}

// handled checks the error and passes.
func handled() error {
	if err := mayFail(); err != nil {
		return err
	}
	return nil
}

// exemptions: fmt's print family, the never-failing in-memory writers,
// and calls with no error result are all admitted.
func exemptions(buf *bytes.Buffer, sb *strings.Builder) {
	fmt.Println("hi")
	fmt.Fprintf(os.Stderr, "x")
	buf.WriteString("x")
	sb.WriteString("x")
	value()
}

// partial blanks only one result: the author visibly chose, so errdrop
// stays quiet.
func partial() int {
	n, _ := two()
	return n
}

// suppressed documents the drop.
func suppressed() {
	//ermvet:ignore errdrop fixture exercising the suppression path
	mayFail()
}
