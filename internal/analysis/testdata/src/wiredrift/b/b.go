// Package b is the wiredrift fixture for the shape-comparison rules;
// wiredrift_test.go runs it against constructed manifests.
package b

// payload is the wire root; inner is module-local, so its shape is
// expanded transitively into payload's hash.
//
//ermvet:wire
type payload struct {
	A int
	B string
	C inner
}

const payloadVersion = 2

type inner struct {
	X float64 `json:"x"`
}
