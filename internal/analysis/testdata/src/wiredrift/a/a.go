// Package a is a wiredrift fixture for the structural rules (the ones
// that need no manifest).
package a

// notAStruct carries the wire marker but is not a struct.
//
//ermvet:wire
type notAStruct int // want `//ermvet:wire marker on notAStruct, which is not a struct type`

// missingVer is a wire struct with no version constant.
//
//ermvet:wire
type missingVer struct { // want `wire struct missingVer has no missingVerVersion integer constant`
	A int
}

// good is a well-formed wire struct.
//
//ermvet:wire
type good struct {
	A int
	B string
}

const goodVersion = 1

// unversioned documents why it stays unversioned.
//
//ermvet:wire
//ermvet:ignore wiredrift fixture exercising the suppression path
type unversioned struct {
	A int
}
