// Package serve is a metricdrift fixture. The test supplies a golden
// manifest pinning erminerd_known_total and erminerd_dropped_total for
// this package; the latter is deliberately no longer emitted here.
package serve // want `manifest metric erminerd_dropped_total is no longer emitted by package serve`

import "fmt"

func emit() {
	fmt.Println("erminerd_known_total 1")
	fmt.Println("erminerd_new_total 2") // want `metric erminerd_new_total is not in the golden manifest`
	//ermvet:ignore metricdrift fixture: deliberately unrecorded name to exercise suppression
	fmt.Println("erminerd_suppressed_total 3")
}
