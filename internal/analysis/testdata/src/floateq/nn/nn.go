// Package nn is a floateq fixture: its name places it in the numeric
// set, so exact float comparisons fire.
package nn

func approxBroken(a, b float64) bool {
	return a == b // want `float equality a == b`
}

func notEqual(a float64, b float32) bool {
	return float64(b) != a // want `float equality float64\(b\) != a`
}

// sentinel passes: comparison against the exact-zero constant is the
// repo's "unset / skip zero entry" idiom and float zero is exact.
func sentinel(x float64) bool {
	return x == 0
}

func sentinelFlipped(x float64) bool {
	return 0.0 != x
}

// ints passes: integer equality is exact.
func ints(a, b int) bool {
	return a == b
}

func suppressed(a, b float64) bool {
	//ermvet:ignore floateq fixture exercising the suppression path
	return a != b
}
