// Package other is a floateq fixture: not a numeric package, so exact
// float comparisons pass here.
package other

func equal(a, b float64) bool {
	return a == b
}
