// Package a is an allocbudget fixture: functions annotated
// //ermvet:hotpath — and everything they reach through direct static
// calls — must be free of allocating constructs.
package a

import (
	"fmt"
	"sync"
)

type enc struct {
	buf   []byte
	idx   []int32
	cache map[string]int
	once  sync.Once
}

// hot is an annotated root with a violation in its own body and more in
// its callees.
//
//ermvet:hotpath
func (e *enc) hot(rows []int32, k []byte) int {
	e.buf = append(e.buf[:0], k...) // ok: reused backing
	s := make([]int32, len(rows))   // want `make allocates in //ermvet:hotpath function \(\*enc\)\.hot`
	_ = s
	e.coldBuild()
	return e.lookup(k)
}

// lookup is unannotated but reachable from hot, so it is in the budget.
func (e *enc) lookup(k []byte) int {
	if n, ok := e.cache[string(k)]; ok { // ok: map-read key conversion is elided
		return n
	}
	n := e.slowKey(k)
	e.cache[string(k)] = n // want `map store may grow the map in \(\*enc\)\.lookup, reachable from //ermvet:hotpath root \(\*enc\)\.hot`
	return n
}

// slowKey is two calls deep from the root.
func (e *enc) slowKey(k []byte) int {
	s := string(k) // want `string↔\[\]byte conversion copies its operand in \(\*enc\)\.slowKey, reachable from //ermvet:hotpath root \(\*enc\)\.hot`
	return len(s)
}

// coldBuild rebuilds the index on a cache miss only, so it is pruned
// from the budget.
//
//ermvet:coldpath cache-miss rebuild, amortized across requests
func (e *enc) coldBuild() {
	e.idx = make([]int32, 0, 64) // ok: coldpath
}

// hotClean appends onto its own backing and mutates in place; passes.
//
//ermvet:hotpath
func (e *enc) hotClean(rows []int32) {
	e.idx = e.idx[:0]
	e.idx = append(e.idx, rows...)
	for i := range e.idx {
		e.idx[i]++
	}
}

// hotOnce exercises the sync.Once carve-out: a Do literal runs at most
// once, so its body's one-time cost is outside the steady state.
//
//ermvet:hotpath
func (e *enc) hotOnce() {
	e.once.Do(func() { e.idx = make([]int32, 4) }) // ok: runs at most once
	go e.coldBuild()                               // want `go statement allocates a goroutine in //ermvet:hotpath function \(\*enc\)\.hotOnce`
}

// hotClosure creates a closure per call.
//
//ermvet:hotpath
func (e *enc) hotClosure() int {
	f := func() int { return len(e.buf) } // want `function literal allocates its closure; hoist it out of the hot path in //ermvet:hotpath function \(\*enc\)\.hotClosure`
	return f()
}

func sink(v any) { _ = v }

// hotReport boxes and formats.
//
//ermvet:hotpath
func hotReport(n int) {
	fmt.Println(n) // want `fmt call allocates in //ermvet:hotpath function hotReport`
	sink(n)        // want `argument boxed into interface parameter allocates in //ermvet:hotpath function hotReport`
	sink(nil)      // ok: nil stores into an interface without allocating
}

// hotLit builds composite literals.
//
//ermvet:hotpath
func hotLit() *enc {
	e := &enc{}                // want `composite literal allocates in //ermvet:hotpath function hotLit`
	e.cache = map[string]int{} // want `composite literal allocates in //ermvet:hotpath function hotLit`
	return e
}

// hotAppend appends onto a fresh backing.
//
//ermvet:hotpath
func hotAppend(rows []int32) []int32 {
	return append([]int32{}, rows...) // want `append onto a non-reused backing allocates in //ermvet:hotpath function hotAppend`
}

// hotConcat concatenates non-constant strings.
//
//ermvet:hotpath
func hotConcat(a, b string) string {
	return a + b // want `string concatenation allocates in //ermvet:hotpath function hotConcat`
}

// hotSuppressed documents its one allocation in place.
//
//ermvet:hotpath
func hotSuppressed() []int32 {
	//ermvet:ignore allocbudget fixture exercising the suppression path
	return make([]int32, 8)
}

// badCold forgets the mandatory reason.
//
//ermvet:coldpath
func (e *enc) badCold() {} // want `//ermvet:coldpath is missing its reason`

// badHot carries an argument the directive does not take.
//
//ermvet:hotpath why not
func (e *enc) badHot() {} // want `//ermvet:hotpath takes no argument`

// bothWays cannot be hot and cold at once.
//
//ermvet:hotpath
//ermvet:coldpath it is cold actually
func (e *enc) bothWays() {} // want `\(\*enc\)\.bothWays cannot carry both //ermvet:hotpath and //ermvet:coldpath`

var _ = sink

//ermvet:hotpath // want `hotpath/coldpath directive must be in the doc comment of a function declaration`

var misplacedAnchor = 0
