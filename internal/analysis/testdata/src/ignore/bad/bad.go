// Package bad holds malformed //ermvet:ignore directives; the exact
// diagnostics for this package are pinned by TestMalformedIgnores.
package bad

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		//ermvet:ignore maporder
		out = append(out, k)
	}
	return out
}

//ermvet:ignore nosuchcheck because reasons
func unused() []string {
	return nil
}
