// Package a is a callgraph fixture: top calls mid directly, mid calls
// leaf through a method value on a concrete receiver, and iface calls
// through an interface, which the conservative graph must NOT resolve.
package a

type doer struct{}

func (doer) leaf() {}

type doerIface interface{ leaf() }

func top() {
	mid()
}

func mid() {
	var d doer
	d.leaf()
}

func iface(d doerIface) {
	d.leaf()
}

func island() {}
