// Package a is a guardedby fixture.
package a

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// inc locks and passes.
func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// readLocked locks an RWMutex-free Mutex via plain Lock and passes.
func (c *counter) readLocked() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) racyRead() int {
	return c.n // want `c.n accessed without locking c.mu in racyRead`
}

// wrongInstance locks one counter but reads another.
func wrongInstance(a, b *counter) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return b.n // want `b.n accessed without locking b.mu in wrongInstance`
}

func (c *counter) suppressedRead() int {
	//ermvet:ignore guardedby fixture exercising the suppression path
	return c.n
}

type rwState struct {
	mu sync.RWMutex
	v  string // guarded by mu
}

// render read-locks and passes.
func (s *rwState) render() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.v
}

type badGuard struct {
	lock int
	v    int // guarded by lock // want `field badGuard.v is annotated "guarded by lock", but badGuard.lock is int, not a sync.Mutex or sync.RWMutex`
}

type noSuchMutex struct {
	v int // guarded by missing // want `field noSuchMutex.v is annotated "guarded by missing", but noSuchMutex has no field missing`
}

func use(b *badGuard, n *noSuchMutex) int { return b.v + b.lock + n.v }
