// Package cluster is a ctxcancel fixture shaped like the coordinator
// constructor: New defaults its HTTP client without blocking (no hook
// needed), while the exported fan-out entry points must take and use a
// cancellation hook.
package cluster

import (
	"context"
	"time"
)

type client struct {
	Timeout time.Duration
}

type Config struct {
	Client  *client
	Workers []string
}

type Coordinator struct {
	client  *client
	workers []string
	done    chan struct{}
}

// New passes: constructing the coordinator — including defaulting the
// client with an explicit timeout — performs no blocking operation.
func New(cfg Config) *Coordinator {
	c := cfg.Client
	if c == nil {
		c = &client{Timeout: 2 * time.Second}
	}
	return &Coordinator{client: c, workers: cfg.Workers, done: make(chan struct{})}
}

// Push passes: it blocks on the fan-out replies but honors ctx.
func (c *Coordinator) Push(ctx context.Context, replies chan int) int {
	select {
	case v := <-replies:
		return v
	case <-ctx.Done():
		return 0
	}
}

// Drain blocks on the done channel with no hook.
func (c *Coordinator) Drain() {
	<-c.done // want `exported Drain blocks \(channel receive\) but takes no context.Context or done channel`
}

// Close passes with a suppression: it blocks to hand off shutdown, and
// shutdown is not cancellable by design.
func (c *Coordinator) Close() {
	//ermvet:ignore ctxcancel fixture exercising the suppression path
	c.done <- struct{}{}
}
