// Package serve is a ctxcancel fixture: its name places it on the
// request path, so exported blocking entry points need a cancellation
// hook they actually use.
package serve

import "context"

func Blocked(c chan int) int {
	return <-c // want `exported Blocked blocks \(channel receive\) but takes no context.Context or done channel`
}

func Unused(ctx context.Context, c chan int) int { // want `exported Unused blocks \(select\) but never uses its cancellation parameter ctx`
	select {
	case v := <-c:
		return v
	}
}

// WithCtx passes: it blocks but honors ctx.
func WithCtx(ctx context.Context, c chan int) int {
	select {
	case v := <-c:
		return v
	case <-ctx.Done():
		return 0
	}
}

// Drain passes: a receive-only done channel is an accepted hook.
func Drain(done <-chan struct{}, c chan int) {
	for {
		select {
		case <-c:
		case <-done:
			return
		}
	}
}

// NonBlocking passes: no syntactic blocking operation, no hook needed.
func NonBlocking(x int) int {
	return x + 1
}

// helper passes: unexported functions are not entry points.
func helper(c chan int) int {
	return <-c
}

func Suppressed(c chan int) int {
	//ermvet:ignore ctxcancel fixture exercising the suppression path
	return <-c
}
