// Package a is a lockorder fixture.
package a

import "sync"

// pair's two mutexes are acquired in opposite orders by ab and ba: the
// classic ABBA deadlock, visible only in the acquisition-order graph.
type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pair) ab() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock() // want `lock-order cycle between pair.a and pair.b`
	defer p.b.Unlock()
}

func (p *pair) ba() {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock()
	defer p.a.Unlock()
}

type q struct {
	mu sync.Mutex
	ch chan int
}

// badSend blocks on an unbuffered-channel send while holding mu.
func (s *q) badSend() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1 // want `blocking channel send in \(\*q\).badSend while holding q.mu`
}

// okTrySend races the send against a default case: never blocks.
func (s *q) okTrySend() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default:
	}
}

// badWait parks on a WaitGroup while holding mu.
func (s *q) badWait(wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want `blocking sync.WaitGroup.Wait in \(\*q\).badWait while holding q.mu`
	s.mu.Unlock()
}

// badRange drains a channel while holding mu.
func (s *q) badRange() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for range s.ch { // want `blocking range over a channel in \(\*q\).badRange while holding q.mu`
	}
}

// okSpawn hands the channel op to a new goroutine: the holder never
// blocks.
func (s *q) okSpawn() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go s.worker()
}

func (s *q) worker() {
	s.ch <- 3
}

// suppressed documents a deliberate send under the lock.
func (s *q) suppressed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//ermvet:ignore lockorder fixture: deliberate send under lock to exercise suppression
	s.ch <- 2
}

type tree struct {
	mu  sync.Mutex
	aux sync.Mutex
}

func (t *tree) lockAux() {
	t.aux.Lock()
	defer t.aux.Unlock()
}

// nested acquires aux through a call while holding mu: a legitimate
// ordering edge mu → aux, no cycle, no finding.
func (t *tree) nested() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lockAux()
}

func (t *tree) lockSelf() {
	t.mu.Lock()
	defer t.mu.Unlock()
}

// recurse calls a function that reacquires the mutex it already holds.
func (t *tree) recurse() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lockSelf() // want `call to \(\*tree\).lockSelf in \(\*tree\).recurse reacquires tree.mu`
}

func (t *tree) waits(wg *sync.WaitGroup) {
	wg.Wait()
}

// badCall reaches a blocking op through a call while holding mu.
func (t *tree) badCall(wg *sync.WaitGroup) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.waits(wg) // want `call to \(\*tree\).waits in \(\*tree\).badCall may block \(sync.WaitGroup.Wait\) while holding tree.mu`
}

type rw struct {
	mu sync.RWMutex
}

func (r *rw) rhelp() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return 0
}

// rok reacquires only in read mode under a read lock: RWMutex read
// locks are shared, so this is not a self-deadlock.
func (r *rw) rok() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.rhelp()
}
