// Package other is a goroleak fixture outside the check's package
// scope: even a detached goroutine is not flagged here.
package other

func fireAndForget() {
	go func() {
		for i := 0; ; i++ {
			_ = i
		}
	}()
}
