// Package serve is a goroleak fixture; its name puts it in the check's
// scope.
package serve

import (
	"context"
	"sync"
)

// leak spawns a goroutine nothing can wait for or stop.
func leak() {
	go func() { // want `goroutine started here has no join or cancellation signal`
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

// joined is observable through the WaitGroup.
func joined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

type pool struct{ jobs chan int }

// start spawns a named method; the worker body ranges over a channel,
// so closing jobs stops it.
func (p *pool) start() {
	go p.worker()
}

func (p *pool) worker() {
	for range p.jobs {
	}
}

// watch is cancellable through the context.
func watch(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// spawnHelper's literal has no signal of its own, but the helper it
// statically calls closes the done channel — reachable through the
// call graph.
func spawnHelper() {
	done := make(chan struct{})
	go func() {
		run(done)
	}()
	<-done
}

func run(done chan struct{}) {
	close(done)
}

// suppressed documents a deliberately detached goroutine.
func suppressed() {
	//ermvet:ignore goroleak fixture exercising the suppression path
	go func() {
		for i := 0; ; i++ {
			_ = i
		}
	}()
}
