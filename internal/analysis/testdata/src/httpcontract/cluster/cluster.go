// Package cluster is an httpcontract fixture: it registers routes and
// calls them back like the real serving roles.
package cluster

import (
	"context"
	"encoding/json"
	"net/http"
)

const (
	pathRepair = "/v1/repair"
	pathJobs   = "/v1/jobs/{id}"
)

//ermvet:wire
type batch struct {
	Rows int `json:"rows"`
}

const batchVersion = 1

var _ = batchVersion

type plain struct {
	N int `json:"n"`
}

func pattern() string { return "GET /v1/dynamic" }

func routes(mux *http.ServeMux) {
	mux.HandleFunc("POST "+pathRepair, nil)
	mux.HandleFunc("GET "+pathJobs, nil)
	mux.HandleFunc(pathRepair, nil)  // want `route /v1/repair is registered without a method`
	mux.HandleFunc(pattern(), nil)   // want `HandleFunc pattern is not a constant expression`
	mux.HandleFunc("/metrics", nil)  // want `route /metrics is registered without a method`
}

func good(ctx context.Context, base string) {
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, base+pathRepair, nil)
	_ = req
	_, _ = http.NewRequest("GET", base+"/v1/jobs/7", nil)
}

func wrongMethod(ctx context.Context, base string) {
	_, _ = http.NewRequestWithContext(ctx, http.MethodGet, base+pathRepair, nil) // want `client calls GET /v1/repair, but the route is registered as POST /v1/repair`
}

func missing(base string) {
	_, _ = http.NewRequest("POST", base+"/v1/absent", nil) // want `client calls POST /v1/absent, but no handler registers that path`
}

func varMethod(m, base string) {
	_, _ = http.NewRequest(m, base+pathRepair, nil) // want `request for /v1/repair is built with a non-constant method`
}

func helper(ctx context.Context, method, path string, b batch) {}

func helperNoMethod(ctx context.Context, path string) {}

func fanout(ctx context.Context) {
	helper(ctx, http.MethodPost, pathRepair, batch{})
	helper(ctx, http.MethodDelete, pathRepair, batch{}) // want `client calls DELETE /v1/repair, but the route is registered as POST /v1/repair`
	helperNoMethod(ctx, pathRepair)                     // want `route /v1/repair is passed with no constant HTTP method in the same call`
}

func send(b batch, p plain) {
	_, _ = json.Marshal(b)
	_, _ = json.Marshal(p) // want `fixture/httpcontract/cluster.plain crosses the HTTP boundary via encoding/json but is not an //ermvet:wire-versioned shape`
}

func suppressedSend(p plain) {
	//ermvet:ignore httpcontract fixture: deliberately unversioned struct to exercise suppression
	_, _ = json.Marshal(p)
}
