// Package other is outside httpcontract's scope: only the serving
// roles (serve, cluster) take part in the HTTP protocol, so the same
// call sites that fire there are silent here.
package other

import "net/http"

func x(base string) {
	_, _ = http.NewRequest("POST", base+"/v1/absent", nil)
}
