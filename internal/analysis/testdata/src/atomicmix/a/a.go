// Package a is an atomicmix fixture: a field accessed via sync/atomic
// must not also be accessed plainly — unless the plain access holds the
// field's declared "guarded by" mutex (atomic readers, locked writers).
package a

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	hits  atomic.Int64
	mu    sync.Mutex
	soft  int64 // guarded by mu
	raw   int64
	plain int64
}

// okMethods drives the typed atomic through its API; passes.
func (c *counter) okMethods() int64 {
	c.hits.Add(1)
	return c.hits.Load()
}

// okAddr passes the typed atomic by address; passes.
func okAddr(c *counter) *atomic.Int64 {
	return &c.hits
}

// copyValue copies the typed atomic as a plain value.
func (c *counter) copyValue() int64 {
	h := c.hits // want `atomic field hits is used as a plain value here`
	return h.Load()
}

// bump makes raw an atomically-accessed field for the whole package.
func (c *counter) bump() {
	atomic.AddInt64(&c.raw, 1)
}

// mixedRead reads raw plainly with no guard at all.
func (c *counter) mixedRead() int64 {
	return c.raw // want `field raw is accessed with sync/atomic elsewhere in this package; this plain access races with it`
}

// softLoad reads soft atomically on the fast path.
func (c *counter) softLoad() int64 {
	return atomic.LoadInt64(&c.soft)
}

// okGuarded writes soft under its declared guard; passes (the one
// sound mixed regime).
func (c *counter) okGuarded(v int64) {
	c.mu.Lock()
	c.soft = v
	c.mu.Unlock()
}

// unguardedWrite writes soft with neither atomics nor mu.
func (c *counter) unguardedWrite(v int64) {
	c.soft = v // want `field soft is accessed with sync/atomic elsewhere in this package; this plain access is outside its declared guard mu`
}

// okPlain is never touched atomically; plain access passes.
func (c *counter) okPlain() int64 {
	c.plain++
	return c.plain
}

// seed resets raw before any reader starts; the race is documented.
func (c *counter) seed() {
	//ermvet:ignore atomicmix fixture exercising the suppression path
	c.raw = 0
}
