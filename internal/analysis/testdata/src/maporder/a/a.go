// Package a is a maporder fixture.
package a

import (
	"fmt"
	"io"
	"sort"
)

func unsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `map iteration appends to keys, which is never sorted afterwards`
	}
	return keys
}

// sorted is the canonical sort-after-range idiom and passes.
func sorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedWrapped passes too: one constructor layer around the slice.
func sortedWrapped(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Sort(sort.StringSlice(keys))
	return keys
}

func prints(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `emits output in random map order`
	}
}

// perIteration passes: the slice is loop-local, so no cross-iteration
// order escapes.
func perIteration(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// overSlice passes: ranging a slice is deterministic.
func overSlice(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

func suppressed(m map[string]int) []string {
	var keys []string
	for k := range m {
		//ermvet:ignore maporder fixture exercising the suppression path
		keys = append(keys, k)
	}
	return keys
}
