// Package a is a maporder fixture.
package a

import (
	"fmt"
	"io"
	"sort"
)

func unsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `map iteration appends to keys, which is never sorted afterwards`
	}
	return keys
}

// sorted is the canonical sort-after-range idiom and passes.
func sorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedWrapped passes too: one constructor layer around the slice.
func sortedWrapped(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Sort(sort.StringSlice(keys))
	return keys
}

func prints(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `emits output in random map order`
	}
}

// perIteration passes: the slice is loop-local, so no cross-iteration
// order escapes.
func perIteration(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// overSlice passes: ranging a slice is deterministic.
func overSlice(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// postingFlattenUnsorted mirrors the measure.ColumnIndex posting-cache
// shape — a map from value code to sorted row-id list — and flattens it
// straight out of the map range. The concatenation order is random per
// run, exactly the bug the columnar engine's sort-the-codes-first idiom
// avoids.
func postingFlattenUnsorted(postings map[int32][]int32) []int32 {
	var rows []int32
	for _, rs := range postings {
		rows = append(rows, rs...) // want `map iteration appends to rows, which is never sorted afterwards`
	}
	return rows
}

// postingFlattenSorted is the approved shape: collect the codes, sort
// with a total order, then emit the per-code lists in code order.
func postingFlattenSorted(postings map[int32][]int32) []int32 {
	codes := make([]int32, 0, len(postings))
	for c := range postings {
		codes = append(codes, c)
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	var rows []int32
	for _, c := range codes {
		rows = append(rows, postings[c]...)
	}
	return rows
}

func suppressed(m map[string]int) []string {
	var keys []string
	for k := range m {
		//ermvet:ignore maporder fixture exercising the suppression path
		keys = append(keys, k)
	}
	return keys
}
