// Package a is a lockflow fixture.
package a

import (
	"errors"
	"sync"
)

type store struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// ok locks with a deferred unlock and passes.
func (s *store) ok() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// okBranch unlocks on both paths and passes.
func (s *store) okBranch(fail bool) error {
	s.mu.Lock()
	if fail {
		s.mu.Unlock()
		return errors.New("boom")
	}
	s.n++
	s.mu.Unlock()
	return nil
}

// useAfterUnlock reads the guarded field after releasing the lock.
func (s *store) useAfterUnlock() int {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	return s.n // want `s.n accessed in useAfterUnlock on a path where s.mu is not held`
}

// branchyRead only locks on one branch but reads on both.
func (s *store) branchyRead(lock bool) int {
	if lock {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	return s.n // want `s.n accessed in branchyRead on a path where s.mu is not held`
}

// leakOnError forgets the unlock on the early error return.
func (s *store) leakOnError(fail bool) error {
	s.mu.Lock()
	if fail {
		return errors.New("boom") // want `s.mu is still locked when leakOnError returns on this path`
	}
	s.mu.Unlock()
	return nil
}

// doubleLock re-locks a mutex already held on the same path.
func (s *store) doubleLock() {
	s.mu.Lock()
	s.mu.Lock() // want `s.mu locked again in doubleLock while already held on this path \(self-deadlock\)`
	s.mu.Unlock()
}

// suppressedLeak keeps the lock across the return on purpose; the
// caller is documented to unlock.
func (s *store) suppressedLeak(fail bool) error {
	s.mu.Lock()
	if fail {
		//ermvet:ignore lockflow fixture exercising the suppression path
		return errors.New("caller unlocks")
	}
	s.mu.Unlock()
	return nil
}

type rstore struct {
	mu sync.RWMutex
	v  int // guarded by mu
}

// reread takes the read lock twice on one path; RLock over RLock is
// admitted (sync.RWMutex allows concurrent readers).
func (r *rstore) reread() int {
	r.mu.RLock()
	r.mu.RLock()
	v := r.v
	r.mu.RUnlock()
	r.mu.RUnlock()
	return v
}

// upgrade write-locks while read-holding: a self-deadlock.
func (r *rstore) upgrade() int {
	r.mu.RLock()
	r.mu.Lock() // want `r.mu locked again in upgrade while already held on this path \(self-deadlock\)`
	v := r.v
	r.mu.Unlock()
	return v
}

type plainBox struct {
	mu sync.Mutex
	v  int
}

// copyBox forks a live lock by dereferencing.
func copyBox(b *plainBox) int {
	dup := *b // want `assignment copies \*b, whose type .*plainBox contains a mutex`
	return dup.v
}

func sinkBox(plainBox) {}

// passBox forks a live lock into a call argument.
func passBox(b *plainBox) {
	sinkBox(*b) // want `call argument copies \*b, whose type .*plainBox contains a mutex`
}

type ptrBox struct {
	mu *sync.Mutex
	v  int
}

// copyPtrBox copies a *sync.Mutex field, which shares the lock rather
// than forking it, and passes.
func copyPtrBox(b *ptrBox) int {
	dup := *b
	return dup.v
}
