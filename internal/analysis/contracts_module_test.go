package analysis_test

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"erminer/internal/analysis"
)

// loadModuleContracts loads the whole module and returns the package
// list plus a by-import-path lookup, for the v4 whole-module contract
// gates (metricdrift, httpcontract, lockorder).
func loadModuleContracts(t *testing.T) ([]*analysis.Package, func(string) *analysis.Package) {
	t.Helper()
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	root := filepath.Join("..", "..")
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	return pkgs, func(path string) *analysis.Package {
		for _, pkg := range pkgs {
			if pkg.Path == path {
				return pkg
			}
		}
		t.Fatalf("module has no %s package", path)
		return nil
	}
}

// TestMetricManifestPinned requires the committed metric-name manifest
// to match the live names exactly, in both directions — the same
// comparison `ermvet -checks metricdrift` gates on, run from `go test`
// so a metric rename cannot land without a reviewed manifest diff.
func TestMetricManifestPinned(t *testing.T) {
	pkgs, _ := loadModuleContracts(t)
	manifest, err := analysis.LoadMetricsManifest(filepath.Join("..", "..", filepath.FromSlash(analysis.MetricsManifestPath)))
	if err != nil {
		t.Fatalf("LoadMetricsManifest: %v", err)
	}
	live := analysis.CollectMetricNames(pkgs)
	if !reflect.DeepEqual(live, manifest.Metrics) {
		t.Errorf("live metric names diverge from %s; review the change and run ermvet -update-metrics\nlive:     %v\nmanifest: %v",
			analysis.MetricsManifestPath, live, manifest.Metrics)
	}
}

// TestMetricDriftGates demonstrates the gate end-to-end on the real
// serve package: deleting a manifest entry makes its live literal an
// unrecorded name, and a phantom manifest entry is reported as a
// dropped metric. Either way the build fails — a name cannot change in
// only one place.
func TestMetricDriftGates(t *testing.T) {
	_, byPath := loadModuleContracts(t)
	servePkg := byPath("erminer/internal/serve")
	manifest, err := analysis.LoadMetricsManifest(filepath.Join("..", "..", filepath.FromSlash(analysis.MetricsManifestPath)))
	if err != nil {
		t.Fatalf("LoadMetricsManifest: %v", err)
	}

	const victim = "erminerd_requests_total"
	removed := &analysis.MetricsManifest{Metrics: make(map[string]string, len(manifest.Metrics))}
	for k, v := range manifest.Metrics {
		if k != victim {
			removed.Metrics[k] = v
		}
	}
	diags := analysis.RunOpts(servePkg, []*analysis.Check{analysis.MetricDrift}, &analysis.Options{Metrics: removed})
	if !hasDiag(diags, victim, "is not in the golden manifest") {
		t.Errorf("deleting %s from the manifest did not fail the gate; got %v", victim, diags)
	}

	added := &analysis.MetricsManifest{Metrics: make(map[string]string, len(manifest.Metrics)+1)}
	for k, v := range manifest.Metrics {
		added.Metrics[k] = v
	}
	added.Metrics["erminerd_phantom_total"] = "serve"
	diags = analysis.RunOpts(servePkg, []*analysis.Check{analysis.MetricDrift}, &analysis.Options{Metrics: added})
	if !hasDiag(diags, "erminerd_phantom_total", "is no longer emitted by package serve") {
		t.Errorf("a manifest name with no live literal did not fail the gate; got %v", diags)
	}
}

// TestRouteContractGates removes one registered route from the real
// module's table and requires httpcontract to fail the cluster package,
// whose rule-push path calls it: changing a client route string (or
// dropping its handler) cannot land silently.
func TestRouteContractGates(t *testing.T) {
	pkgs, byPath := loadModuleContracts(t)
	clusterPkg := byPath("erminer/internal/cluster")
	full := analysis.CollectRoutes(pkgs)
	// The wire manifest resolves the serve-side payload structs the
	// cluster handlers hand to encoding/json.
	wire, err := analysis.LoadWireManifest(filepath.Join("..", "..", filepath.FromSlash(analysis.WireManifestPath)))
	if err != nil {
		t.Fatalf("LoadWireManifest: %v", err)
	}

	const victim = "/v1/rules/stage"
	mutated := &analysis.RouteTable{}
	for _, r := range full.Routes {
		if r.Path != victim {
			mutated.Routes = append(mutated.Routes, r)
		}
	}
	if len(mutated.Routes) == len(full.Routes) {
		t.Fatalf("precondition: %s is not in the registered route table", victim)
	}
	diags := analysis.RunOpts(clusterPkg, []*analysis.Check{analysis.HTTPContract}, &analysis.Options{Routes: mutated, Wire: wire})
	if !hasDiag(diags, victim, "no handler registers that path") {
		t.Errorf("unregistering %s did not fail the cluster client; got %v", victim, diags)
	}

	// With the full table the cluster package is clean, so the finding
	// above is attributable to the removal alone.
	if diags := analysis.RunOpts(clusterPkg, []*analysis.Check{analysis.HTTPContract}, &analysis.Options{Routes: full, Wire: wire}); len(diags) != 0 {
		t.Errorf("cluster is not httpcontract-clean against the full route table: %v", diags)
	}
}

// TestLockOrderPushFindings pins the genuine blocking-under-mutex
// findings on the coordinator's push path: pushAll parks on a WaitGroup
// while pushMu serializes fleet pushes, at exactly three call sites,
// each suppressed with a written-down rationale. If the suppression or
// the detection disappears, this fails — the findings are real and must
// stay visible as documented decisions, not vanish.
func TestLockOrderPushFindings(t *testing.T) {
	pkgs, byPath := loadModuleContracts(t)
	clusterPkg := byPath("erminer/internal/cluster")
	locks := analysis.BuildLockOrder(pkgs, analysis.BuildCallGraph(pkgs))

	var got []analysis.Diagnostic
	for _, d := range analysis.RunAll(clusterPkg, []*analysis.Check{analysis.LockOrder}, &analysis.Options{Locks: locks}) {
		if d.Check == "lockorder" {
			got = append(got, d)
		}
	}
	if len(got) != 3 {
		t.Fatalf("cluster has %d lockorder findings, want the 3 pushAll sites: %v", len(got), got)
	}
	for _, d := range got {
		if filepath.Base(d.Pos.Filename) != "handlers.go" {
			t.Errorf("finding outside handlers.go: %s", d)
		}
		if !strings.Contains(d.Message, "pushAll") || !strings.Contains(d.Message, "Coordinator.pushMu") {
			t.Errorf("finding does not describe the pushAll-under-pushMu wait: %s", d)
		}
		if !d.Suppressed || d.Reason == "" {
			t.Errorf("push-path finding must be suppressed with a rationale, got suppressed=%v reason=%q: %s",
				d.Suppressed, d.Reason, d)
		}
	}
}

func hasDiag(diags []analysis.Diagnostic, substr, msg string) bool {
	for _, d := range diags {
		if strings.Contains(d.Message, substr) && strings.Contains(d.Message, msg) {
			return true
		}
	}
	return false
}
