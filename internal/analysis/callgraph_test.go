package analysis_test

import (
	"go/types"
	"path/filepath"
	"testing"

	"erminer/internal/analysis"
)

// loadCallgraphFixture loads the handcrafted callgraph fixture package
// and resolves the named functions.
func loadCallgraphFixture(t *testing.T) (*analysis.CallGraph, map[string]*types.Func) {
	t.Helper()
	dir := filepath.Join("testdata", "src", "callgraph", "a")
	pkg, err := analysis.LoadDir(dir, "fixture/callgraph/a")
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	graph := analysis.BuildCallGraph([]*analysis.Package{pkg})

	fns := make(map[string]*types.Func)
	for _, name := range []string{"top", "mid", "iface", "island"} {
		fn, ok := pkg.Types.Scope().Lookup(name).(*types.Func)
		if !ok {
			t.Fatalf("fixture has no function %q", name)
		}
		fns[name] = fn
	}
	named := pkg.Types.Scope().Lookup("doer").Type().(*types.Named)
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == "leaf" {
			fns["doer.leaf"] = m
		}
	}
	if fns["doer.leaf"] == nil {
		t.Fatal("fixture has no method doer.leaf")
	}
	return graph, fns
}

func TestCallGraphEdges(t *testing.T) {
	graph, fns := loadCallgraphFixture(t)

	if got := graph.Callees(fns["top"]); len(got) != 1 || got[0] != fns["mid"] {
		t.Errorf("Callees(top) = %v, want [mid]", got)
	}
	if got := graph.Callees(fns["mid"]); len(got) != 1 || got[0] != fns["doer.leaf"] {
		t.Errorf("Callees(mid) = %v, want [doer.leaf]", got)
	}
	// Interface dispatch must contribute no edge: the conservative graph
	// under-approximates rather than guessing implementations.
	if got := graph.Callees(fns["iface"]); len(got) != 0 {
		t.Errorf("Callees(iface) = %v, want none (interface dispatch is dynamic)", got)
	}
}

func TestCallGraphReachable(t *testing.T) {
	graph, fns := loadCallgraphFixture(t)

	want := []*types.Func{fns["top"], fns["mid"], fns["doer.leaf"]}
	got := graph.Reachable(fns["top"])
	if len(got) != len(want) {
		t.Fatalf("Reachable(top) has %d functions, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Reachable(top)[%d] = %s, want %s", i, got[i].FullName(), want[i].FullName())
		}
	}
	if got := graph.Reachable(fns["island"]); len(got) != 1 || got[0] != fns["island"] {
		t.Errorf("Reachable(island) = %v, want just island", got)
	}
}

func TestCallGraphDecls(t *testing.T) {
	graph, fns := loadCallgraphFixture(t)
	for _, name := range []string{"top", "mid", "doer.leaf"} {
		if d := graph.DeclOf(fns[name]); d == nil || d.Body == nil {
			t.Errorf("DeclOf(%s) should return the fixture declaration with a body", name)
		}
	}
}
