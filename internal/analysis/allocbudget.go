package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// allocbudget proves the zero-allocation property of the columnar
// repair hot path statically, over every reachable path, instead of
// trusting one benchmark run to exercise them all.
//
// A function is placed in the budget with
//
//	//ermvet:hotpath
//
// in its doc comment. The check then walks the conservative call graph
// from every annotated root — direct edges only, see CallGraph.direct —
// and requires each reached function to be free of allocation-inducing
// constructs: make/new, composite literals, append onto anything but an
// existing slice, string↔[]byte conversions, interface boxing at call
// sites, function literals (closure capture), fmt calls, map stores,
// string concatenation, and go statements. A callee that is genuinely
// cold (a cache-miss builder, a fallback engine) is pruned from the
// traversal with
//
//	//ermvet:coldpath <reason>
//
// whose reason is mandatory, like an ignore directive's.
const (
	hotpathDirective  = "//ermvet:hotpath"
	coldpathDirective = "//ermvet:coldpath"
)

// HotpathAnnotation is one //ermvet:hotpath or //ermvet:coldpath
// directive scraped from a function's doc comment.
type HotpathAnnotation struct {
	// Func is the declared name, receiver-qualified for methods:
	// "(*Evaluator).getCover".
	Func string
	// Cold is true for //ermvet:coldpath.
	Cold bool
	// Reason is the coldpath rationale; empty for hotpath.
	Reason string
	Pos    token.Pos
}

// HotpathAnnotations scrapes the hotpath/coldpath directives attached
// to function declarations in f. It is purely syntactic (no type
// information), so inventory tests can pin the annotated set from
// parsed sources alone.
func HotpathAnnotations(f *ast.File) []HotpathAnnotation {
	var anns []HotpathAnnotation
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			if rest, ok := cutDirective(c.Text, hotpathDirective); ok {
				anns = append(anns, HotpathAnnotation{
					Func: declName(fd), Reason: strings.TrimSpace(rest), Pos: c.Pos(),
				})
			} else if rest, ok := cutDirective(c.Text, coldpathDirective); ok {
				anns = append(anns, HotpathAnnotation{
					Func: declName(fd), Cold: true, Reason: strings.TrimSpace(rest), Pos: c.Pos(),
				})
			}
		}
	}
	return anns
}

// cutDirective matches prefix as a whole directive word: the remainder
// must be empty or start with whitespace, so //ermvet:hotpathological
// does not parse as //ermvet:hotpath.
func cutDirective(text, prefix string) (string, bool) {
	rest, ok := strings.CutPrefix(text, prefix)
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return "", false
	}
	return rest, true
}

// declName renders a FuncDecl's name, receiver-qualified for methods.
func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		return "(*" + types.ExprString(star.X) + ")." + fd.Name.Name
	}
	return types.ExprString(t) + "." + fd.Name.Name
}

// AllocBudget requires //ermvet:hotpath functions — and everything they
// reach through direct static calls — to be free of allocating
// constructs.
var AllocBudget = &Check{
	Name: "allocbudget",
	Doc:  "//ermvet:hotpath functions and their direct static callees stay free of allocating constructs",
	Run:  runAllocBudget,
}

func runAllocBudget(pass *Pass) {
	graph := pass.Opts.Graph
	if graph == nil {
		graph = BuildCallGraph([]*Package{pass.Package})
	}
	budget := hotpathBudget(graph)
	for _, f := range pass.Files {
		validateHotpathDirectives(pass, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if root, ok := budget[fn]; ok {
				scanAllocs(pass, fd, fn, root)
			}
		}
	}
}

// validateHotpathDirectives reports misuse of the hotpath/coldpath
// directives in one file: a directive outside a function doc comment, a
// hotpath with trailing arguments, a coldpath missing its mandatory
// reason, or a declaration carrying both. Attachment problems are
// reported at the function name so the finding sits on the declaration
// line.
func validateHotpathDirectives(pass *Pass, f *ast.File) {
	attached := make(map[*ast.Comment]*ast.FuncDecl)
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		var hot, cold bool
		for _, c := range fd.Doc.List {
			if rest, ok := cutDirective(c.Text, hotpathDirective); ok {
				attached[c] = fd
				hot = true
				if strings.TrimSpace(rest) != "" {
					pass.Reportf(fd.Name.Pos(), "%s takes no argument; use %s <reason> to prune a callee instead", hotpathDirective, coldpathDirective)
				}
			} else if rest, ok := cutDirective(c.Text, coldpathDirective); ok {
				attached[c] = fd
				cold = true
				if strings.TrimSpace(rest) == "" {
					pass.Reportf(fd.Name.Pos(), "%s is missing its reason: pruning a function from the allocation budget must say why it is cold", coldpathDirective)
				}
			}
		}
		if hot && cold {
			pass.Reportf(fd.Name.Pos(), "%s cannot carry both %s and %s", declName(fd), hotpathDirective, coldpathDirective)
		}
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if attached[c] != nil {
				continue
			}
			_, isHot := cutDirective(c.Text, hotpathDirective)
			_, isCold := cutDirective(c.Text, coldpathDirective)
			if isHot || isCold {
				pass.Reportf(c.Pos(), "hotpath/coldpath directive must be in the doc comment of a function declaration")
			}
		}
	}
}

// hotpathBudget computes the allocation budget: every function reached
// from a //ermvet:hotpath root over direct call edges, pruned at
// //ermvet:coldpath functions, mapped to the root that first reaches it
// (roots in deterministic order) for finding attribution.
func hotpathBudget(g *CallGraph) map[*types.Func]*types.Func {
	var roots []*types.Func
	cold := make(map[*types.Func]bool)
	for _, fn := range g.Decls() {
		fd := g.DeclOf(fn)
		if fd == nil || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			if _, ok := cutDirective(c.Text, hotpathDirective); ok {
				roots = append(roots, fn)
			} else if _, ok := cutDirective(c.Text, coldpathDirective); ok {
				cold[fn] = true
			}
		}
	}
	budget := make(map[*types.Func]*types.Func)
	for _, root := range roots {
		if cold[root] {
			continue // contradictory annotation; validation reports it
		}
		if _, seen := budget[root]; seen {
			continue
		}
		queue := []*types.Func{root}
		budget[root] = root
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			for _, callee := range g.DirectCallees(fn) {
				if cold[callee] {
					continue
				}
				if _, seen := budget[callee]; seen {
					continue
				}
				budget[callee] = root
				queue = append(queue, callee)
			}
		}
	}
	return budget
}

// scanAllocs reports every allocation-inducing construct in fd's body,
// at most one finding per source line (so one suppression directive
// covers the line, and fixture want-comments stay unambiguous).
func scanAllocs(pass *Pass, fd *ast.FuncDecl, fn, root *types.Func) {
	var why string
	if fn == root {
		why = "in //ermvet:hotpath function " + funcDisplayName(fn)
	} else {
		why = "in " + funcDisplayName(fn) + ", reachable from //ermvet:hotpath root " + funcDisplayName(root)
	}
	s := &allocScan{
		pass:      pass,
		why:       why,
		reported:  make(map[int]bool),
		exemptCnv: make(map[*ast.CallExpr]bool),
		onceLits:  make(map[*ast.FuncLit]bool),
	}
	s.prepass(fd.Body)
	s.walk(fd.Body)
}

type allocScan struct {
	pass *Pass
	why  string
	// reported dedups findings to one per line.
	reported map[int]bool
	// exemptCnv holds string(b) conversions used as map-read indices,
	// which the compiler elides without allocating.
	exemptCnv map[*ast.CallExpr]bool
	// onceLits holds function literals passed to sync.Once.Do: they run
	// at most once per cache entry, so their one-time cost is not a
	// steady-state allocation.
	onceLits map[*ast.FuncLit]bool
}

func (s *allocScan) reportf(pos token.Pos, format string, args ...any) {
	line := s.pass.Fset.Position(pos).Line
	if s.reported[line] {
		return
	}
	s.reported[line] = true
	args = append(args, s.why)
	s.pass.Reportf(pos, format+" %s", args...)
}

// prepass collects context the main walk cannot see from a node alone:
// map-read indices (store positions excluded) and sync.Once.Do
// literals.
func (s *allocScan) prepass(body *ast.BlockStmt) {
	stores := make(map[*ast.IndexExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					stores[ix] = true
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok {
				stores[ix] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			if stores[n] || !s.isMapIndex(n) {
				return true
			}
			if call, ok := ast.Unparen(n.Index).(*ast.CallExpr); ok && s.isConversion(call) {
				s.exemptCnv[call] = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Do" {
				if callee := StaticCallee(s.pass.Info, n); callee != nil && isSyncOnceDo(callee) {
					for _, arg := range n.Args {
						if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
							s.onceLits[lit] = true
						}
					}
				}
			}
		}
		return true
	})
}

func (s *allocScan) isMapIndex(ix *ast.IndexExpr) bool {
	tv, ok := s.pass.Info.Types[ix.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// isConversion reports whether call is a type conversion.
func (s *allocScan) isConversion(call *ast.CallExpr) bool {
	tv, ok := s.pass.Info.Types[call.Fun]
	return ok && tv.IsType()
}

func (s *allocScan) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if !s.onceLits[n] {
				s.reportf(n.Pos(), "function literal allocates its closure; hoist it out of the hot path")
			}
			// Either way the literal body is outside the budget: its
			// calls are not direct edges, and a Once-guarded body runs
			// at most once.
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					s.reportf(lit.Pos(), "composite literal allocates")
				}
			}
			return true
		case *ast.CompositeLit:
			// Slice and map literals always allocate their backing. A
			// plain struct or array value literal is a stack value —
			// its escape surfaces as &lit (above) or interface boxing.
			if tv, ok := s.pass.Info.Types[n]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					s.reportf(n.Pos(), "composite literal allocates")
				}
			}
			return true
		case *ast.GoStmt:
			s.reportf(n.Pos(), "go statement allocates a goroutine")
			return true
		case *ast.CallExpr:
			return s.walkCall(n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && s.isStringExpr(n) {
				if tv, ok := s.pass.Info.Types[n]; !ok || tv.Value == nil {
					s.reportf(n.Pos(), "string concatenation allocates")
				}
			}
			return true
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && s.isStringExpr(n.Lhs[0]) {
				s.reportf(n.Pos(), "string concatenation allocates")
			}
			s.checkMapStore(n.Pos(), n.Lhs)
			return true
		case *ast.IncDecStmt:
			s.checkMapStore(n.Pos(), []ast.Expr{n.X})
			return true
		}
		return true
	})
}

func (s *allocScan) isStringExpr(e ast.Expr) bool {
	tv, ok := s.pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// checkMapStore flags assignments through a map index: a store may grow
// the map's buckets, and with a converted []byte key it also
// materializes the key string.
func (s *allocScan) checkMapStore(pos token.Pos, lhs []ast.Expr) {
	for _, l := range lhs {
		if ix, ok := ast.Unparen(l).(*ast.IndexExpr); ok && s.isMapIndex(ix) {
			s.reportf(pos, "map store may grow the map")
		}
	}
}

// walkCall handles the call-shaped constructs: builtins, conversions,
// fmt calls and interface boxing of arguments. Returns whether to
// descend into the call's children.
func (s *allocScan) walkCall(call *ast.CallExpr) bool {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := s.pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				s.reportf(call.Pos(), "make allocates")
			case "new":
				s.reportf(call.Pos(), "new allocates")
			case "append":
				if len(call.Args) > 0 && !reusedBacking(call.Args[0]) {
					s.reportf(call.Pos(), "append onto a non-reused backing allocates")
				}
			}
			return true
		}
	}
	// Conversions.
	if s.isConversion(call) {
		if s.exemptCnv[call] {
			return true
		}
		tv := s.pass.Info.Types[call.Fun]
		if len(call.Args) == 1 && s.isAllocConversion(tv.Type, call.Args[0]) {
			s.reportf(call.Pos(), "string↔[]byte conversion copies its operand")
		}
		return true
	}
	// Calls into fmt always allocate (boxing plus formatting buffers);
	// flag the call itself and skip per-argument boxing noise.
	callee := StaticCallee(s.pass.Info, call)
	if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		s.reportf(call.Pos(), "fmt call allocates")
		return true
	}
	// panic's argument is boxed, but a panicking path has already left
	// the hot path.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		return true
	}
	s.checkBoxing(call)
	return true
}

// isAllocConversion reports whether converting arg to target crosses
// the string↔[]byte (or []rune) boundary, which copies. Constant
// operands convert at compile time.
func (s *allocScan) isAllocConversion(target types.Type, arg ast.Expr) bool {
	atv, ok := s.pass.Info.Types[arg]
	if !ok || atv.Type == nil || atv.Value != nil {
		return false
	}
	return (isStringType(target) && isByteOrRuneSlice(atv.Type)) ||
		(isByteOrRuneSlice(target) && isStringType(atv.Type))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// reusedBacking reports whether an append's first argument provably
// appends onto existing storage: a named slice or field (possibly
// resliced), so growth is amortized away once the backing is warm.
func reusedBacking(arg ast.Expr) bool {
	for {
		switch e := ast.Unparen(arg).(type) {
		case *ast.SliceExpr:
			arg = e.X
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
			return true
		default:
			return false
		}
	}
}

// checkBoxing flags arguments boxed into interface parameters. Values
// already interface-shaped, pointer-shaped (pointer, chan, map, func),
// constants and nil store into an interface without allocating.
func (s *allocScan) checkBoxing(call *ast.CallExpr) {
	tv, ok := s.pass.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarded slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		atv, ok := s.pass.Info.Types[arg]
		if !ok || atv.Type == nil || atv.Value != nil || atv.IsNil() || types.IsInterface(atv.Type) || pointerShaped(atv.Type) {
			continue
		}
		s.reportf(arg.Pos(), "argument boxed into interface parameter allocates")
	}
}

func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

func isSyncOnceDo(fn *types.Func) bool {
	if fn.Name() != "Do" || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// funcDisplayName renders fn compactly: receiver-qualified without the
// package path, matching the declName inventory format.
func funcDisplayName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, okp := t.(*types.Pointer); okp {
			t = p.Elem()
			ptr = "*"
		}
		if named, okn := t.(*types.Named); okn {
			return "(" + ptr + named.Obj().Name() + ")." + fn.Name()
		}
	}
	return fn.Name()
}
