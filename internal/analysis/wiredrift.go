package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
)

// WireDrift gates the serialized wire formats — the gob checkpoint and
// model snapshots, and the rules JSON — against silent shape drift. A
// struct marked with an //ermvet:wire directive in its doc comment is a
// wire root: its field names, types (transitively expanded through
// module-local structs) and tags are hashed and compared against the
// committed golden manifest (WireManifestPath). Any shape change fails
// the gate unless the struct's <name>Version constant was bumped and
// the manifest regenerated with `ermvet -update-wire` — so breaking a
// checkpoint or rule-file format is always an explicit, reviewed
// decision, never a casual field rename. (DESIGN.md decision 15
// records why this is a source-shape manifest rather than a gob
// round-trip.)
var WireDrift = &Check{
	Name: "wiredrift",
	Doc:  "//ermvet:wire struct shapes must match the golden manifest; changes need a version bump + ermvet -update-wire",
	Run:  runWireDrift,
}

// WireManifestPath is the golden manifest's module-root-relative path.
// It lives under the analyzer's testdata so the module loader never
// tries to compile it, while `go test ./internal/analysis` can pin it.
const WireManifestPath = "internal/analysis/testdata/wire_shapes.json"

const wireMarker = "//ermvet:wire"

// WireShape is one wire struct's golden record.
type WireShape struct {
	// Version mirrors the struct's <name>Version constant at the time
	// the manifest was generated.
	Version int `json:"version"`
	// Hash is the sha256 of the canonical transitively-expanded shape
	// string.
	Hash string `json:"hash"`
	// Fields lists the top-level fields ("Name type" plus the tag when
	// present) for human-readable diffs; the hash is the gate.
	Fields []string `json:"fields"`
}

// WireManifest is the committed golden manifest: fully qualified struct
// name ("erminer/internal/rlminer.checkpointWire") → shape.
type WireManifest struct {
	Structs map[string]WireShape `json:"structs"`
}

// LoadWireManifest reads a manifest written by WriteWireManifest.
func LoadWireManifest(path string) (*WireManifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading wire manifest: %w", err)
	}
	var m WireManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("analysis: parsing wire manifest %s: %w", path, err)
	}
	return &m, nil
}

// WriteWireManifest writes the manifest with sorted keys and a trailing
// newline, so regeneration produces minimal diffs.
func (m *WireManifest) WriteWireManifest(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// wireStruct is one //ermvet:wire-marked declaration found in a
// package.
type wireStruct struct {
	name    string
	pos     token.Pos
	st      *types.Struct // nil when the marked type is not a struct
	version int
	hasVer  bool
	verPos  token.Pos
}

// collectWireStructs scrapes the marked structs of one package and
// resolves their version constants.
func collectWireStructs(pkg *Package) []wireStruct {
	var out []wireStruct
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !hasWireMarker(gd.Doc) && !hasWireMarker(ts.Doc) && !hasWireMarker(ts.Comment) {
					continue
				}
				ws := wireStruct{name: ts.Name.Name, pos: ts.Name.Pos()}
				if obj := pkg.Types.Scope().Lookup(ts.Name.Name); obj != nil {
					if st, ok := obj.Type().Underlying().(*types.Struct); ok {
						ws.st = st
					}
				}
				if c, ok := pkg.Types.Scope().Lookup(ts.Name.Name + "Version").(*types.Const); ok {
					if v, exact := constant.Int64Val(c.Val()); exact {
						ws.version = int(v)
						ws.hasVer = true
						ws.verPos = c.Pos()
					}
				}
				out = append(out, ws)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func hasWireMarker(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if c.Text == wireMarker || strings.HasPrefix(c.Text, wireMarker+" ") {
			return true
		}
	}
	return false
}

// CollectWireShapes computes the live shape of every marked wire struct
// across the given packages, keyed by fully qualified name. Marked
// types that are not structs or lack their version constant are
// skipped here; runWireDrift reports them.
func CollectWireShapes(pkgs []*Package) map[string]WireShape {
	shapes := make(map[string]WireShape)
	for _, pkg := range pkgs {
		for _, ws := range collectWireStructs(pkg) {
			if ws.st == nil || !ws.hasVer {
				continue
			}
			shapes[pkg.Path+"."+ws.name] = liveShape(pkg, ws)
		}
	}
	return shapes
}

func liveShape(pkg *Package, ws wireStruct) WireShape {
	canon := renderStruct(ws.st, moduleRootOf(pkg.Path), map[string]bool{pkg.Path + "." + ws.name: true})
	sum := sha256.Sum256([]byte(canon))
	shape := WireShape{
		Version: ws.version,
		Hash:    hex.EncodeToString(sum[:]),
	}
	for i := 0; i < ws.st.NumFields(); i++ {
		f := ws.st.Field(i)
		line := f.Name() + " " + types.TypeString(f.Type(), nil)
		if tag := ws.st.Tag(i); tag != "" {
			line += " `" + tag + "`"
		}
		shape.Fields = append(shape.Fields, line)
	}
	return shape
}

// moduleRootOf returns the leading path segment ("erminer" for
// "erminer/internal/rl"), which decides whether a named struct is
// module-local and gets expanded, or foreign (standard library) and
// stays an opaque qualified name.
func moduleRootOf(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

// renderStruct produces the canonical shape string: field names, fully
// rendered types (module-local named structs expanded in place, with a
// seen-set breaking cycles) and tags, in declaration order. This is
// exactly what gob and encoding/json key on — names, order, kinds and
// tags — so hashing it detects every change those encoders would
// observe.
func renderStruct(st *types.Struct, modRoot string, seen map[string]bool) string {
	var b strings.Builder
	b.WriteString("struct{")
	for i := 0; i < st.NumFields(); i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		f := st.Field(i)
		b.WriteString(f.Name())
		b.WriteByte(' ')
		b.WriteString(renderType(f.Type(), modRoot, seen))
		if tag := st.Tag(i); tag != "" {
			b.WriteString(" `" + tag + "`")
		}
	}
	b.WriteString("}")
	return b.String()
}

func renderType(t types.Type, modRoot string, seen map[string]bool) string {
	switch t := t.(type) {
	case *types.Basic:
		return t.Name()
	case *types.Pointer:
		return "*" + renderType(t.Elem(), modRoot, seen)
	case *types.Slice:
		return "[]" + renderType(t.Elem(), modRoot, seen)
	case *types.Array:
		return fmt.Sprintf("[%d]%s", t.Len(), renderType(t.Elem(), modRoot, seen))
	case *types.Map:
		return "map[" + renderType(t.Key(), modRoot, seen) + "]" + renderType(t.Elem(), modRoot, seen)
	case *types.Named:
		obj := t.Obj()
		qual := obj.Name()
		if obj.Pkg() != nil {
			qual = obj.Pkg().Path() + "." + obj.Name()
		}
		st, isStruct := t.Underlying().(*types.Struct)
		if isStruct && obj.Pkg() != nil && moduleRootOf(obj.Pkg().Path()) == modRoot && !seen[qual] {
			seen[qual] = true
			return qual + renderStruct(st, modRoot, seen)
		}
		if !isStruct && obj.Pkg() != nil && moduleRootOf(obj.Pkg().Path()) == modRoot {
			// A module-local named non-struct (type Duration int64 etc.):
			// its underlying representation is the wire shape.
			return qual + "=" + renderType(t.Underlying(), modRoot, seen)
		}
		return qual
	default:
		// Interfaces, channels, signatures: not meaningfully
		// serializable; their printed form is stable enough to pin.
		return t.String()
	}
}

func runWireDrift(pass *Pass) {
	structs := collectWireStructs(pass.Package)
	manifest := pass.Opts.Wire
	livePresent := make(map[string]bool)
	for _, ws := range structs {
		key := pass.Path + "." + ws.name
		livePresent[key] = true
		if ws.st == nil {
			pass.Reportf(ws.pos, "//ermvet:wire marker on %s, which is not a struct type", ws.name)
			continue
		}
		if !ws.hasVer {
			pass.Reportf(ws.pos, "wire struct %s has no %sVersion integer constant; declare one so shape changes can be versioned", ws.name, ws.name)
			continue
		}
		if manifest == nil {
			continue // no golden manifest in this run: structural rules only
		}
		entry, ok := manifest.Structs[key]
		if !ok {
			pass.Reportf(ws.pos, "wire struct %s is not in the golden manifest (%s); record it with ermvet -update-wire", ws.name, WireManifestPath)
			continue
		}
		live := liveShape(pass.Package, ws)
		switch {
		case live.Hash == entry.Hash && live.Version == entry.Version:
			// In sync.
		case live.Hash != entry.Hash && live.Version == entry.Version:
			pass.Reportf(ws.pos,
				"wire shape of %s changed without a version bump (manifest hash %.12s, live %.12s): this silently breaks files written by the old format — bump %sVersion and regenerate with ermvet -update-wire",
				ws.name, entry.Hash, live.Hash, ws.name)
		case live.Hash == entry.Hash && live.Version != entry.Version:
			pass.Reportf(ws.verPos,
				"%sVersion is %d but the manifest records %d for an identical shape; regenerate with ermvet -update-wire",
				ws.name, live.Version, entry.Version)
		default:
			pass.Reportf(ws.pos,
				"wire shape of %s changed and %sVersion was bumped (%d → %d); regenerate the manifest with ermvet -update-wire",
				ws.name, ws.name, entry.Version, live.Version)
		}
	}
	if manifest != nil {
		var stale []string
		for key := range manifest.Structs {
			if dot := strings.LastIndexByte(key, '.'); dot >= 0 && key[:dot] == pass.Path && !livePresent[key] {
				stale = append(stale, key)
			}
		}
		sort.Strings(stale)
		for _, key := range stale {
			pos := token.NoPos
			if len(pass.Files) > 0 {
				pos = pass.Files[0].Pos()
			}
			pass.Reportf(pos, "manifest entry %s has no //ermvet:wire struct in the package; regenerate with ermvet -update-wire", key)
		}
	}
}

// UpdateWireManifest regenerates the manifest from the live shapes,
// refusing entries whose shape changed while the version constant did
// not: the bump is the reviewable signal that a format break is
// intentional. old may be nil (first generation).
func UpdateWireManifest(old *WireManifest, pkgs []*Package) (*WireManifest, error) {
	live := CollectWireShapes(pkgs)
	var frozen []string
	if old != nil {
		for key, entry := range old.Structs {
			if l, ok := live[key]; ok && l.Hash != entry.Hash && l.Version == entry.Version {
				frozen = append(frozen, key)
			}
		}
		sort.Strings(frozen)
	}
	if len(frozen) > 0 {
		return nil, fmt.Errorf("analysis: refusing to update wire manifest: shape of %s changed without a version bump (bump the Version constant first)",
			strings.Join(frozen, ", "))
	}
	return &WireManifest{Structs: live}, nil
}
