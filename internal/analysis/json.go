package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// diagJSON is the machine-readable finding format `ermvet -json` emits,
// one object per line. The field set is pinned by TestJSONFormat; CI
// parses it to build the PR step summary, so changes here are wire
// changes too.
type diagJSON struct {
	Check      string `json:"check"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	// Reason is the suppression directive's rationale; omitted for live
	// findings so pre-existing consumers see an unchanged record.
	Reason string `json:"reason,omitempty"`
}

// WriteJSON renders diagnostics as newline-delimited JSON. File paths
// are emitted as given; callers wanting module-relative paths rewrite
// Pos.Filename before calling.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		j := diagJSON{
			Check:      d.Check,
			File:       d.Pos.Filename,
			Line:       d.Pos.Line,
			Col:        d.Pos.Column,
			Message:    d.Message,
			Suppressed: d.Suppressed,
			Reason:     d.Reason,
		}
		if err := enc.Encode(j); err != nil {
			return fmt.Errorf("analysis: encoding diagnostic: %w", err)
		}
	}
	return nil
}

// timingJSON is the per-check timing record `ermvet -json -timing`
// appends after the findings. Record discriminates it from diagnostics
// in the shared NDJSON stream, so consumers select on it instead of
// guessing from missing fields.
type timingJSON struct {
	Record string  `json:"record"`
	Check  string  `json:"check"`
	Ms     float64 `json:"ms"`
}

// WriteTimingsJSON renders per-check wall-clock totals as NDJSON
// records, sorted by check name for stable output.
func WriteTimingsJSON(w io.Writer, timings map[string]time.Duration) error {
	names := make([]string, 0, len(timings))
	for name := range timings {
		names = append(names, name)
	}
	sort.Strings(names)
	enc := json.NewEncoder(w)
	for _, name := range names {
		rec := timingJSON{Record: "timing", Check: name, Ms: float64(timings[name].Microseconds()) / 1000}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("analysis: encoding timing record: %w", err)
		}
	}
	return nil
}
