package analysis

import (
	"encoding/json"
	"fmt"
	"io"
)

// diagJSON is the machine-readable finding format `ermvet -json` emits,
// one object per line. The field set is pinned by TestJSONFormat; CI
// parses it to build the PR step summary, so changes here are wire
// changes too.
type diagJSON struct {
	Check      string `json:"check"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	// Reason is the suppression directive's rationale; omitted for live
	// findings so pre-existing consumers see an unchanged record.
	Reason string `json:"reason,omitempty"`
}

// WriteJSON renders diagnostics as newline-delimited JSON. File paths
// are emitted as given; callers wanting module-relative paths rewrite
// Pos.Filename before calling.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		j := diagJSON{
			Check:      d.Check,
			File:       d.Pos.Filename,
			Line:       d.Pos.Line,
			Col:        d.Pos.Column,
			Message:    d.Message,
			Suppressed: d.Suppressed,
			Reason:     d.Reason,
		}
		if err := enc.Encode(j); err != nil {
			return fmt.Errorf("analysis: encoding diagnostic: %w", err)
		}
	}
	return nil
}
