package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"time"
)

// sarifSchema pins the SARIF dialect the writer emits. GitHub code
// scanning consumes 2.1.0; nothing newer is needed for line-level
// annotations with in-source suppressions.
const (
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	sarifVersion = "2.1.0"
)

// The SARIF object graph, restricted to the fields GitHub's
// code-scanning importer reads. One log, one run, one result per
// diagnostic; suppressed findings are carried as results with an
// inSource suppression whose justification is the //ermvet:ignore
// rationale, so the written-down decisions surface in the alerts UI
// instead of vanishing.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
	// Properties carries run-level metadata; ermvet uses it for the
	// optional per-check wall-clock timings (-timing). Omitted entirely
	// when no timings were collected, so the pinned document format is
	// unchanged for existing consumers.
	Properties *sarifRunProperties `json:"properties,omitempty"`
}

type sarifRunProperties struct {
	CheckTimingsMs map[string]float64 `json:"checkTimingsMs"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	Level        string             `json:"level"`
	Message      sarifText          `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// sarifRules enumerates the driver's rule metadata: every check in
// AllChecks plus the "ermvet" meta rule malformed //ermvet:ignore
// directives report under.
func sarifRules() []sarifRule {
	rules := make([]sarifRule, 0, len(AllChecks)+1)
	for _, c := range AllChecks {
		rules = append(rules, sarifRule{ID: c.Name, ShortDescription: sarifText{Text: c.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               "ermvet",
		ShortDescription: sarifText{Text: "//ermvet:ignore directives are well-formed and carry a rationale"},
	})
	return rules
}

// WriteSARIF renders diagnostics as one SARIF 2.1.0 document. File
// paths are emitted as given, normalized to forward slashes; callers
// wanting repository-relative URIs (as GitHub code scanning requires)
// rewrite Pos.Filename before calling, exactly as with WriteJSON.
func WriteSARIF(w io.Writer, diags []Diagnostic) error {
	return WriteSARIFWith(w, diags, nil)
}

// WriteSARIFWith is WriteSARIF plus optional per-check timings, carried
// in the run's property bag. A nil timings map produces a byte-for-byte
// WriteSARIF document.
func WriteSARIFWith(w io.Writer, diags []Diagnostic, timings map[string]time.Duration) error {
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		r := sarifResult{
			RuleID:  d.Check,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		}
		if d.Suppressed {
			r.Suppressions = []sarifSuppression{{Kind: "inSource", Justification: d.Reason}}
		}
		results = append(results, r)
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "ermvet", Rules: sarifRules()}},
			Results: results,
		}},
	}
	if len(timings) > 0 {
		ms := make(map[string]float64, len(timings))
		for name, d := range timings {
			ms[name] = float64(d.Microseconds()) / 1000
		}
		log.Runs[0].Properties = &sarifRunProperties{CheckTimingsMs: ms}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(log); err != nil {
		return fmt.Errorf("analysis: encoding SARIF: %w", err)
	}
	return nil
}
