package analysis

import (
	"go/ast"
	"go/types"
)

// detrandPkgs are the determinism-critical packages: everything on the
// mining and evaluation paths, whose outputs must be a pure function of
// the input data and the run's seed (the bit-identical parallel-mining
// guarantee of DESIGN.md decision 11 and the paper's reproducible-DQN
// protocol both depend on it).
var detrandPkgs = map[string]bool{
	"enuminer": true,
	"measure":  true,
	"mdp":      true,
	"rl":       true,
	"rlminer":  true,
	"relation": true,
	"cfd":      true,
	"datagen":  true,
	"detrand":  true,
}

// randConstructors are the math/rand calls that build an explicitly
// seeded generator — the one approved way randomness enters these
// packages. Everything else in math/rand draws from the global,
// non-reproducible source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// timeReads are the wall-clock reads; a determinism-critical package
// that wants timing stats takes an injected internal/clock.Clock.
var timeReads = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// DetRand forbids global math/rand draws and wall-clock reads in the
// determinism-critical packages.
var DetRand = &Check{
	Name: "detrand",
	Doc:  "no global math/rand or time.Now in determinism-critical packages; inject *rand.Rand / clock.Clock",
	Run:  runDetRand,
}

func runDetRand(pass *Pass) {
	if !detrandPkgs[pass.Types.Name()] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgFuncCall(pass.Info, call)
			if !ok {
				return true
			}
			switch {
			case (path == "math/rand" || path == "math/rand/v2") && !randConstructors[name]:
				pass.Reportf(call.Pos(),
					"call to global %s.%s in determinism-critical package %s; draw from an injected seeded *rand.Rand instead",
					path, name, pass.Types.Name())
			case path == "time" && timeReads[name]:
				pass.Reportf(call.Pos(),
					"wall-clock read time.%s in determinism-critical package %s; take an injected clock.Clock instead",
					name, pass.Types.Name())
			}
			return true
		})
	}
}

// pkgFuncCall resolves a call of the form pkg.Func, returning the
// package's import path and the function name.
func pkgFuncCall(info *types.Info, call *ast.CallExpr) (path, name string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}
