package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the flow-sensitive substrate of ermvet v2: a lightweight
// intra-procedural control-flow graph over go/ast. It is deliberately
// small — basic blocks of statements with successor edges, a synthetic
// exit block, and a side list of deferred calls — because the checks
// built on it (lockflow's lockset dataflow, primarily) need path
// structure, not SSA. Nested function literals are opaque: their bodies
// are separate flow units, analysed independently by the checks.
//
// Precision notes, all in the false-negative direction (the gate never
// cries wolf because of them):
//
//   - goto transfers to the exit block, abandoning the path;
//   - labeled break/continue resolve through the label stack like the
//     go spec says, falling back to the exit block if the label is
//     unknown (malformed code the type checker would reject anyway);
//   - panic and the noreturn os.Exit/log.Fatal family end the path
//     without reaching the exit block, so "lock held at return" is
//     never reported on a path that dies by panicking.

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Entry is the block control enters at the function's first
	// statement.
	Entry *CFGBlock
	// Exit is the synthetic block every return and the final
	// fall-through edge into. It holds no nodes.
	Exit *CFGBlock
	// Blocks lists every block, Entry first and Exit last.
	Blocks []*CFGBlock
	// Defers collects the argument calls of every defer statement in
	// the body, in source order, regardless of the path they sit on.
	// Flow-sensitive consumers treat them conservatively: a deferred
	// call runs at function exit whether or not its defer statement was
	// provably reached.
	Defers []*ast.CallExpr
}

// CFGBlock is one basic block: a maximal run of straight-line
// statements.
type CFGBlock struct {
	Index int
	// Nodes holds the block's statements (and, for control headers, the
	// init/condition statements and expressions) in execution order.
	Nodes []ast.Node
	Succs []*CFGBlock
	// Return is the return statement terminating the block, when the
	// block ends in one.
	Return *ast.ReturnStmt
}

type cfgBuilder struct {
	cfg *CFG
	// loops is the stack of enclosing breakable/continuable constructs.
	loops []loopFrame
}

type loopFrame struct {
	label    string
	brk      *CFGBlock // break target
	cont     *CFGBlock // continue target; nil for switch/select frames
	isSwitch bool
}

// BuildCFG constructs the control-flow graph of a function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = &CFGBlock{}
	cur := b.stmtList(body.List, b.cfg.Entry)
	if cur != nil {
		// The body can fall off the closing brace: an implicit return.
		b.edge(cur, b.cfg.Exit)
	}
	b.cfg.Exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

func (b *cfgBuilder) newBlock() *CFGBlock {
	blk := &CFGBlock{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *CFGBlock) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// stmtList threads the statements through cur, returning the block
// control continues in, or nil when every path diverged (return, break,
// panic).
func (b *cfgBuilder) stmtList(stmts []ast.Stmt, cur *CFGBlock) *CFGBlock {
	for _, s := range stmts {
		if cur == nil {
			// Unreachable code after a terminator; ignore it (the
			// compiler polices genuine misuse).
			return nil
		}
		cur = b.stmt(s, cur, "")
	}
	return cur
}

// stmt adds one statement to the graph. label is the pending label when
// the statement was wrapped in a LabeledStmt.
func (b *cfgBuilder) stmt(s ast.Stmt, cur *CFGBlock, label string) *CFGBlock {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		return b.stmt(s.Stmt, cur, s.Label.Name)

	case *ast.BlockStmt:
		return b.stmtList(s.List, cur)

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		cur.Return = s
		b.edge(cur, b.cfg.Exit)
		return nil

	case *ast.BranchStmt:
		return b.branch(s, cur)

	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s.Call)
		cur.Nodes = append(cur.Nodes, s)
		return cur

	case *ast.IfStmt:
		return b.ifStmt(s, cur)

	case *ast.ForStmt:
		return b.forStmt(s, cur, label)

	case *ast.RangeStmt:
		return b.rangeStmt(s, cur, label)

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		if s.Tag != nil {
			cur.Nodes = append(cur.Nodes, s.Tag)
		}
		return b.switchBody(s.Body, cur, label)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Assign)
		return b.switchBody(s.Body, cur, label)

	case *ast.SelectStmt:
		return b.selectStmt(s, cur, label)

	case *ast.ExprStmt:
		cur.Nodes = append(cur.Nodes, s)
		if noReturnCall(s.X) {
			return nil // panic/os.Exit: the path ends here
		}
		return cur

	default:
		// Assignments, declarations, sends, go statements, inc/dec:
		// straight-line nodes.
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

func (b *cfgBuilder) branch(s *ast.BranchStmt, cur *CFGBlock) *CFGBlock {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if t := b.breakTarget(label); t != nil {
			b.edge(cur, t)
		} else {
			b.edge(cur, b.cfg.Exit)
		}
	case token.CONTINUE:
		if t := b.continueTarget(label); t != nil {
			b.edge(cur, t)
		} else {
			b.edge(cur, b.cfg.Exit)
		}
	case token.GOTO:
		// Conservative: abandon the path (see the package note).
		b.edge(cur, b.cfg.Exit)
	case token.FALLTHROUGH:
		// Handled structurally by switchBody; reaching here means a
		// malformed fallthrough — drop the path.
	}
	return nil
}

func (b *cfgBuilder) breakTarget(label string) *CFGBlock {
	for i := len(b.loops) - 1; i >= 0; i-- {
		f := b.loops[i]
		if label == "" || f.label == label {
			return f.brk
		}
	}
	return nil
}

func (b *cfgBuilder) continueTarget(label string) *CFGBlock {
	for i := len(b.loops) - 1; i >= 0; i-- {
		f := b.loops[i]
		if f.cont == nil {
			continue // switch/select frames are not continue targets
		}
		if label == "" || f.label == label {
			return f.cont
		}
	}
	return nil
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt, cur *CFGBlock) *CFGBlock {
	if s.Init != nil {
		cur.Nodes = append(cur.Nodes, s.Init)
	}
	cur.Nodes = append(cur.Nodes, s.Cond)

	join := b.newBlock()
	thenBlk := b.newBlock()
	b.edge(cur, thenBlk)
	if end := b.stmtList(s.Body.List, thenBlk); end != nil {
		b.edge(end, join)
	}
	switch e := s.Else.(type) {
	case nil:
		b.edge(cur, join)
	case *ast.BlockStmt:
		elseBlk := b.newBlock()
		b.edge(cur, elseBlk)
		if end := b.stmtList(e.List, elseBlk); end != nil {
			b.edge(end, join)
		}
	case *ast.IfStmt:
		elseBlk := b.newBlock()
		b.edge(cur, elseBlk)
		if end := b.stmt(e, elseBlk, ""); end != nil {
			b.edge(end, join)
		}
	}
	if len(join.Succs) == 0 && !hasPred(b.cfg, join) {
		// Both arms diverged; the join is dead. Keep it in Blocks (the
		// dataflow skips blocks with no in-state) and report divergence.
		return nil
	}
	return join
}

func hasPred(cfg *CFG, blk *CFGBlock) bool {
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			if s == blk {
				return true
			}
		}
	}
	return false
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, cur *CFGBlock, label string) *CFGBlock {
	if s.Init != nil {
		cur.Nodes = append(cur.Nodes, s.Init)
	}
	header := b.newBlock()
	b.edge(cur, header)
	if s.Cond != nil {
		header.Nodes = append(header.Nodes, s.Cond)
	}
	done := b.newBlock()
	post := b.newBlock()
	if s.Cond != nil {
		b.edge(header, done)
	}

	body := b.newBlock()
	b.edge(header, body)
	b.loops = append(b.loops, loopFrame{label: label, brk: done, cont: post})
	end := b.stmtList(s.Body.List, body)
	b.loops = b.loops[:len(b.loops)-1]
	if end != nil {
		b.edge(end, post)
	}
	if s.Post != nil {
		post.Nodes = append(post.Nodes, s.Post)
	}
	b.edge(post, header)
	if s.Cond == nil && !hasPred(b.cfg, done) {
		return nil // for{} with no break never falls through
	}
	return done
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, cur *CFGBlock, label string) *CFGBlock {
	header := b.newBlock()
	b.edge(cur, header)
	// The range expression (and the per-iteration assignment targets)
	// evaluate in the header.
	header.Nodes = append(header.Nodes, s.X)
	if s.Key != nil {
		header.Nodes = append(header.Nodes, s.Key)
	}
	if s.Value != nil {
		header.Nodes = append(header.Nodes, s.Value)
	}
	done := b.newBlock()
	b.edge(header, done)

	body := b.newBlock()
	b.edge(header, body)
	b.loops = append(b.loops, loopFrame{label: label, brk: done, cont: header})
	end := b.stmtList(s.Body.List, body)
	b.loops = b.loops[:len(b.loops)-1]
	if end != nil {
		b.edge(end, header)
	}
	return done
}

// switchBody wires the case clauses of a switch or type switch: every
// clause is entered from the header, fallthrough chains clause bodies,
// and a missing default adds a header→join edge.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, header *CFGBlock, label string) *CFGBlock {
	join := b.newBlock()
	b.loops = append(b.loops, loopFrame{label: label, brk: join, isSwitch: true})
	defer func() { b.loops = b.loops[:len(b.loops)-1] }()

	hasDefault := false
	// Clause entry blocks are created first so fallthrough can target
	// the next clause.
	var clauses []*ast.CaseClause
	var entries []*CFGBlock
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		clauses = append(clauses, cc)
		entries = append(entries, b.newBlock())
	}
	for i, cc := range clauses {
		entry := entries[i]
		b.edge(header, entry)
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			entry.Nodes = append(entry.Nodes, e)
		}
		stmts := cc.Body
		fallsInto := -1
		if n := len(stmts); n > 0 {
			if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				stmts = stmts[:n-1]
				fallsInto = i + 1
			}
		}
		end := b.stmtList(stmts, entry)
		if end != nil {
			if fallsInto >= 0 && fallsInto < len(entries) {
				b.edge(end, entries[fallsInto])
			} else {
				b.edge(end, join)
			}
		}
	}
	if !hasDefault {
		b.edge(header, join)
	}
	if !hasPred(b.cfg, join) {
		return nil
	}
	return join
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, cur *CFGBlock, label string) *CFGBlock {
	join := b.newBlock()
	b.loops = append(b.loops, loopFrame{label: label, brk: join, isSwitch: true})
	defer func() { b.loops = b.loops[:len(b.loops)-1] }()

	reachedJoin := false
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		entry := b.newBlock()
		b.edge(cur, entry)
		if cc.Comm != nil {
			entry.Nodes = append(entry.Nodes, cc.Comm)
		}
		if end := b.stmtList(cc.Body, entry); end != nil {
			b.edge(end, join)
			reachedJoin = true
		}
	}
	if !reachedJoin && !hasPred(b.cfg, join) {
		return nil
	}
	return join
}

// noReturnCall recognises expression statements that never return:
// panic and the process-terminating standard-library calls.
func noReturnCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fun.Sel.Name {
		case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln", "runtime.Goexit":
			return true
		}
	}
	return false
}
