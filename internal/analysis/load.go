package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package under analysis.
type Package struct {
	// Path is the import path ("erminer/internal/serve"); fixture
	// packages get the synthetic path the test harness assigns.
	Path string
	// Dir is the package directory on disk.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// pkgSrc is a parsed-but-not-yet-type-checked package.
type pkgSrc struct {
	path    string
	dir     string
	files   []*ast.File
	imports map[string]bool
}

// LoadModule parses and type-checks every non-test package of the Go
// module rooted at root, in dependency order, and returns them sorted by
// import path. Module-internal imports resolve to the packages loaded
// here; standard-library imports are type-checked from GOROOT source via
// importer.ForCompiler(..., "source", ...) — no module dependencies.
// Directories named testdata or vendor and hidden directories are
// skipped, matching the go tool, so the analyzer's own intentionally
// hazardous fixtures never reach the gate. Test files are excluded:
// the checked invariants are properties of the library and serving
// paths, and tests prove determinism by assertion instead (DESIGN.md
// decision 13).
func LoadModule(root string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()

	srcs := make(map[string]*pkgSrc)
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		src, err := parseDir(fset, path)
		if err != nil {
			return err
		}
		if src == nil {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if rel == "." {
			src.path = modPath
		} else {
			src.path = modPath + "/" + filepath.ToSlash(rel)
		}
		srcs[src.path] = src
		return nil
	})
	if err != nil {
		return nil, err
	}

	order, err := topoSort(srcs, modPath)
	if err != nil {
		return nil, err
	}
	pkgs, err := typeCheck(fset, order)
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir under the
// given synthetic import path. Imports must resolve within the standard
// library — this is the fixture loader for the analyzer's own tests.
func LoadDir(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	src, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	src.path = importPath
	pkgs, err := typeCheck(fset, []*pkgSrc{src})
	if err != nil {
		return nil, err
	}
	return pkgs[0], nil
}

// parseDir parses the non-test Go files of one directory, returning nil
// when there are none.
func parseDir(fset *token.FileSet, dir string) (*pkgSrc, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	src := &pkgSrc{dir: dir, imports: make(map[string]bool)}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		src.files = append(src.files, f)
		for _, imp := range f.Imports {
			src.imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(src.files) == 0 {
		return nil, nil
	}
	return src, nil
}

// topoSort orders packages so every module-internal import precedes its
// importer; import cycles are reported rather than looping.
func topoSort(srcs map[string]*pkgSrc, modPath string) ([]*pkgSrc, error) {
	paths := make([]string, 0, len(srcs))
	for p := range srcs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[string]int, len(srcs))
	var order []*pkgSrc
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analysis: import cycle through %s", path)
		}
		state[path] = visiting
		src := srcs[path]
		deps := make([]string, 0, len(src.imports))
		for imp := range src.imports {
			if imp == modPath || strings.HasPrefix(imp, modPath+"/") {
				deps = append(deps, imp)
			}
		}
		sort.Strings(deps)
		for _, dep := range deps {
			if _, ok := srcs[dep]; !ok {
				return fmt.Errorf("analysis: %s imports %s, which has no Go files", path, dep)
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, src)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves module-internal imports to the packages
// type-checked in this run and everything else (the standard library)
// through the source importer.
type moduleImporter struct {
	std   types.Importer
	local map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.local[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}

func typeCheck(fset *token.FileSet, order []*pkgSrc) ([]*Package, error) {
	imp := &moduleImporter{
		std:   importer.ForCompiler(fset, "source", nil),
		local: make(map[string]*types.Package, len(order)),
	}
	pkgs := make([]*Package, 0, len(order))
	for _, src := range order {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(src.path, fset, src.files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", src.path, err)
		}
		imp.local[src.path] = tpkg
		pkgs = append(pkgs, &Package{
			Path:  src.path,
			Dir:   src.dir,
			Fset:  fset,
			Files: src.files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}
