package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed and type-checked package under analysis.
type Package struct {
	// Path is the import path ("erminer/internal/serve"); fixture
	// packages get the synthetic path the test harness assigns.
	Path string
	// Dir is the package directory on disk.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// pkgSrc is a parsed-but-not-yet-type-checked package.
type pkgSrc struct {
	path    string
	dir     string
	files   []*ast.File
	imports map[string]bool
}

// LoadModule parses and type-checks every non-test package of the Go
// module rooted at root, in dependency order, and returns them sorted by
// import path. Module-internal imports resolve to the packages loaded
// here; standard-library imports are type-checked from GOROOT source via
// importer.ForCompiler(..., "source", ...) — no module dependencies.
// Parsing runs one goroutine per directory and type-checking runs
// level-parallel over the dependency DAG, both bounded by GOMAXPROCS;
// TestLoadModuleParallelDeterministic pins that the output — package
// list, file lists and the full diagnostic stream — is identical run
// to run regardless of scheduling.
// Directories named testdata or vendor and hidden directories are
// skipped, matching the go tool, so the analyzer's own intentionally
// hazardous fixtures never reach the gate. Test files are excluded:
// the checked invariants are properties of the library and serving
// paths, and tests prove determinism by assertion instead (DESIGN.md
// decision 13).
func LoadModule(root string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}

	parsed, err := parseDirs(fset, dirs)
	if err != nil {
		return nil, err
	}
	srcs := make(map[string]*pkgSrc, len(parsed))
	for i, src := range parsed {
		if src == nil {
			continue
		}
		rel, err := filepath.Rel(root, dirs[i])
		if err != nil {
			return nil, err
		}
		if rel == "." {
			src.path = modPath
		} else {
			src.path = modPath + "/" + filepath.ToSlash(rel)
		}
		srcs[src.path] = src
	}

	order, err := topoSort(srcs, modPath)
	if err != nil {
		return nil, err
	}
	pkgs, err := typeCheck(fset, order)
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir under the
// given synthetic import path. Imports must resolve within the standard
// library — this is the fixture loader for the analyzer's own tests.
func LoadDir(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	src, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	src.path = importPath
	pkgs, err := typeCheck(fset, []*pkgSrc{src})
	if err != nil {
		return nil, err
	}
	return pkgs[0], nil
}

// parallelism bounds the loader's worker pools.
func parallelism() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// parseDirs parses the given directories concurrently and returns one
// (possibly nil) *pkgSrc per directory, index-aligned with dirs. The
// shared FileSet is safe for concurrent use, and each directory's
// files are parsed sequentially by one goroutine, so within a package
// the file base offsets stay in filename order and every per-package
// Pos comparison the checks make is deterministic run to run. When
// several directories fail to parse, the error reported is the first
// in dirs order (WalkDir's lexical order), independent of goroutine
// scheduling.
func parseDirs(fset *token.FileSet, dirs []string) ([]*pkgSrc, error) {
	srcs := make([]*pkgSrc, len(dirs))
	errs := make([]error, len(dirs))
	sem := make(chan struct{}, parallelism())
	var wg sync.WaitGroup
	for i, dir := range dirs {
		wg.Add(1)
		go func(i int, dir string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			srcs[i], errs[i] = parseDir(fset, dir)
		}(i, dir)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return srcs, nil
}

// parseDir parses the non-test Go files of one directory, returning nil
// when there are none.
func parseDir(fset *token.FileSet, dir string) (*pkgSrc, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	src := &pkgSrc{dir: dir, imports: make(map[string]bool)}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		src.files = append(src.files, f)
		for _, imp := range f.Imports {
			src.imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(src.files) == 0 {
		return nil, nil
	}
	return src, nil
}

// topoSort orders packages so every module-internal import precedes its
// importer; import cycles are reported rather than looping.
func topoSort(srcs map[string]*pkgSrc, modPath string) ([]*pkgSrc, error) {
	paths := make([]string, 0, len(srcs))
	for p := range srcs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[string]int, len(srcs))
	var order []*pkgSrc
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analysis: import cycle through %s", path)
		}
		state[path] = visiting
		src := srcs[path]
		deps := make([]string, 0, len(src.imports))
		for imp := range src.imports {
			if imp == modPath || strings.HasPrefix(imp, modPath+"/") {
				deps = append(deps, imp)
			}
		}
		sort.Strings(deps)
		for _, dep := range deps {
			if _, ok := srcs[dep]; !ok {
				return fmt.Errorf("analysis: %s imports %s, which has no Go files", path, dep)
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, src)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves module-internal imports to the packages
// type-checked in this run and everything else (the standard library)
// through the source importer. The mutex makes it safe for the
// concurrent type-checkers of one level: the source importer is not
// safe for concurrent use, so standard-library resolution serializes
// on mu — its per-package results are cached after the first import,
// and the module packages themselves still check in parallel.
type moduleImporter struct {
	mu    sync.Mutex
	std   types.Importer
	local map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p, ok := m.local[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}

func (m *moduleImporter) add(path string, pkg *types.Package) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.local[path] = pkg
}

// typeCheck type-checks the topologically ordered packages with level
// scheduling: a package's level is one past its deepest
// module-internal dependency, so the members of one level only import
// packages from earlier levels and are mutually independent — they
// type-check concurrently, with a barrier between levels. Results are
// deterministic: types.Info is per package, the shared importer is
// mutex-guarded, and when a level has several failures the error
// reported is from the lexically smallest failing import path,
// independent of goroutine scheduling.
func typeCheck(fset *token.FileSet, order []*pkgSrc) ([]*Package, error) {
	imp := &moduleImporter{
		std:   importer.ForCompiler(fset, "source", nil),
		local: make(map[string]*types.Package, len(order)),
	}

	index := make(map[string]int, len(order))
	for i, src := range order {
		index[src.path] = i
	}
	level := make([]int, len(order))
	maxLevel := 0
	for i, src := range order {
		for dep := range src.imports {
			// Dependencies precede their importers in order, so level[j]
			// is final by the time it feeds level[i].
			if j, ok := index[dep]; ok && level[j]+1 > level[i] {
				level[i] = level[j] + 1
			}
		}
		if level[i] > maxLevel {
			maxLevel = level[i]
		}
	}

	pkgs := make([]*Package, len(order))
	errs := make([]error, len(order))
	sem := make(chan struct{}, parallelism())
	for l := 0; l <= maxLevel; l++ {
		var wg sync.WaitGroup
		for i, src := range order {
			if level[i] != l {
				continue
			}
			wg.Add(1)
			go func(i int, src *pkgSrc) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				info := &types.Info{
					Types:      make(map[ast.Expr]types.TypeAndValue),
					Defs:       make(map[*ast.Ident]types.Object),
					Uses:       make(map[*ast.Ident]types.Object),
					Selections: make(map[*ast.SelectorExpr]*types.Selection),
					Implicits:  make(map[ast.Node]types.Object),
				}
				conf := types.Config{Importer: imp}
				tpkg, err := conf.Check(src.path, fset, src.files, info)
				if err != nil {
					errs[i] = fmt.Errorf("analysis: type-checking %s: %w", src.path, err)
					return
				}
				imp.add(src.path, tpkg)
				pkgs[i] = &Package{
					Path:  src.path,
					Dir:   src.dir,
					Fset:  fset,
					Files: src.files,
					Types: tpkg,
					Info:  info,
				}
			}(i, src)
		}
		wg.Wait()
		var firstErr error
		firstPath := ""
		for i, err := range errs {
			if err != nil && (firstErr == nil || order[i].path < firstPath) {
				firstErr, firstPath = err, order[i].path
			}
		}
		if firstErr != nil {
			return nil, firstErr
		}
	}
	return pkgs, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}
