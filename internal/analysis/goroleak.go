package analysis

import (
	"go/ast"
	"go/types"
)

// goroleakPkgs are the packages whose goroutines must be joinable or
// cancellable: the serving daemon (leaked workers shrink the pool until
// the daemon silently stops serving), the cluster coordinator (its
// fan-out goroutines and health checker), the miners' parallel engines,
// and rlminer's training loop. A goroutine counts as joined when its
// body — or any function it reaches through the static call graph —
// touches a sync.WaitGroup.Done, sends on / closes / receives from a
// channel, ranges over a channel, or selects; any of those gives the
// spawner a handle to observe or stop it.
var goroleakPkgs = map[string]bool{
	"serve":    true,
	"cluster":  true,
	"rlminer":  true,
	"enuminer": true,
	"measure":  true,
}

// GoroLeak requires every go statement in the serving and mining
// packages to be observable: joined by a WaitGroup or communicating on
// a channel (send, close, receive, range or select) somewhere in its
// reachable body.
var GoroLeak = &Check{
	Name: "goroleak",
	Doc:  "go statements in serve/cluster/rlminer/enuminer/measure must be joined (WaitGroup) or signal a channel",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	if !goroleakPkgs[pass.Types.Name()] {
		return
	}
	graph := pass.Opts.Graph
	if graph == nil {
		graph = BuildCallGraph([]*Package{pass.Package})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goroutineJoinable(pass, graph, gs.Call) {
				pass.Reportf(gs.Pos(),
					"goroutine started here has no join or cancellation signal (no WaitGroup.Done, channel operation or select reachable in its body): a caller can neither wait for it nor stop it")
			}
			return true
		})
	}
}

// goroutineJoinable reports whether the spawned call's body — the
// function literal or the statically resolved callee, plus everything
// reachable from it — contains a join signal.
func goroutineJoinable(pass *Pass, graph *CallGraph, call *ast.CallExpr) bool {
	var bodies []*ast.BlockStmt
	collect := func(fn *types.Func) {
		for _, r := range graph.Reachable(fn) {
			if d := graph.DeclOf(r); d != nil && d.Body != nil {
				bodies = append(bodies, d.Body)
			}
		}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		bodies = append(bodies, fun.Body)
		// Static calls inside the literal extend the search.
		ast.Inspect(fun.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if callee := StaticCallee(pass.Info, c); callee != nil {
					collect(callee)
				}
			}
			return true
		})
	default:
		callee := StaticCallee(pass.Info, call)
		if callee == nil {
			// Dynamic spawn: nothing to inspect. Stay quiet rather than
			// flagging code the analysis cannot see into.
			return true
		}
		collect(callee)
	}
	for _, body := range bodies {
		if bodyHasJoinSignal(pass, body) {
			return true
		}
	}
	return false
}

// bodyHasJoinSignal scans one function body (including its nested
// literals — a deferred func(){ wg.Done() }() counts) for a join or
// cancellation signal.
func bodyHasJoinSignal(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			// A receive: the goroutine blocks on (or polls) a channel
			// someone else controls — ctx.Done(), a done chan, a queue.
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "close" {
					found = true
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Done" || fun.Sel.Name == "Wait" {
					if tv, ok := pass.Info.Types[fun.X]; ok && isWaitGroup(tv.Type) {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
