package analysis_test

import (
	"go/parser"
	"go/token"
	"reflect"
	"sort"
	"testing"

	"erminer/internal/analysis"
)

// TestGuardedByInventory pins the guarded-by annotations seeded on the
// serving and cache layers. Deleting any single annotation fails this
// test, so the lock discipline cannot silently lose its machine
// checking; adding one extends the inventory deliberately.
func TestGuardedByInventory(t *testing.T) {
	want := map[string][]string{
		"../serve/server.go": {
			"Server.p=dictMu",
			"Server.staged=stagedMu",
		},
		"../serve/jobs.go": {
			"job.activated=mu",
			"job.err=mu",
			"job.explored=mu",
			"job.finished=mu",
			"job.rules=mu",
			"job.rulesJSON=mu",
			"job.started=mu",
			"job.state=mu",
			"job.step=mu",
			"job.total=mu",
			"jobManager.closed=mu",
			"jobManager.jobs=mu",
			"jobManager.nextID=mu",
			"jobManager.order=mu",
			"jobManager.queued=mu",
			"jobManager.running=mu",
		},
		"../serve/metrics.go": {
			"metrics.lat=latMu",
			"metrics.latN=latMu",
		},
		"../measure/cache.go": {
			"IndexCache.entries=mu",
		},
		"../measure/posting.go": {
			"ColumnIndex.all=mu",
			"ColumnIndex.attrs=mu",
			"ColumnIndex.groups=mu",
			"ColumnIndex.version=mu",
		},
	}
	for file, fields := range want {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", file, err)
		}
		var got []string
		for _, a := range analysis.GuardedByAnnotations(f) {
			got = append(got, a.Struct+"."+a.Field+"="+a.Mutex)
		}
		sort.Strings(got)
		if !reflect.DeepEqual(got, fields) {
			t.Errorf("%s guarded-by inventory:\ngot:  %v\nwant: %v", file, got, fields)
		}
	}
}
