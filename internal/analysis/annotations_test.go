package analysis_test

import (
	"go/parser"
	"go/token"
	"reflect"
	"sort"
	"testing"

	"erminer/internal/analysis"
)

// TestGuardedByInventory pins the guarded-by annotations seeded on the
// serving and cache layers. Deleting any single annotation fails this
// test, so the lock discipline cannot silently lose its machine
// checking; adding one extends the inventory deliberately.
func TestGuardedByInventory(t *testing.T) {
	want := map[string][]string{
		"../serve/server.go": {
			"Server.model=modelMu",
			"Server.p=dictMu",
			"Server.staged=stagedMu",
		},
		"../serve/jobs.go": {
			"job.activated=mu",
			"job.err=mu",
			"job.explored=mu",
			"job.finished=mu",
			"job.rules=mu",
			"job.rulesJSON=mu",
			"job.started=mu",
			"job.state=mu",
			"job.step=mu",
			"job.total=mu",
			"jobManager.closed=mu",
			"jobManager.jobs=mu",
			"jobManager.nextID=mu",
			"jobManager.order=mu",
			"jobManager.queued=mu",
			"jobManager.running=mu",
		},
		"../metrics/latency.go": {
			"LatencyRing.buf=mu",
			"LatencyRing.n=mu",
		},
		"../measure/cache.go": {
			"IndexCache.entries=mu",
		},
		"../measure/posting.go": {
			"ColumnIndex.all=mu",
			"ColumnIndex.attrs=mu",
			"ColumnIndex.groups=mu",
			"ColumnIndex.version=mu",
		},
	}
	for file, fields := range want {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", file, err)
		}
		var got []string
		for _, a := range analysis.GuardedByAnnotations(f) {
			got = append(got, a.Struct+"."+a.Field+"="+a.Mutex)
		}
		sort.Strings(got)
		if !reflect.DeepEqual(got, fields) {
			t.Errorf("%s guarded-by inventory:\ngot:  %v\nwant: %v", file, got, fields)
		}
	}
}

// TestHotpathInventory pins the //ermvet:hotpath roots and
// //ermvet:coldpath prunes seeded on the columnar repair path. Deleting
// an annotation fails this test, so the allocation budget cannot
// silently shrink; a "cold:" entry records a deliberate prune and its
// rationale's presence is enforced by the allocbudget check itself.
func TestHotpathInventory(t *testing.T) {
	want := map[string][]string{
		"../measure/measure.go": {
			"(*Evaluator).CoveredCandidates",
			"(*Evaluator).Evaluate",
			"(*Evaluator).ReleaseCover",
			"(*Evaluator).columnarFullCover",
			"(*Evaluator).filterCover",
			"(*Evaluator).getCover",
			"(*Evaluator).ruleProjection",
			"cold:(*Evaluator).evaluateScalar",
			"cold:(*Evaluator).fullScanCover",
		},
		"../measure/posting.go": {
			"cold:(*ColumnIndex).sync",
			"condRows",
			"intersectInto",
			"mergeInto",
			"subtractInto",
		},
		"../measure/groups.go": {
			"appendGroupKey",
			"appendLHSKey",
		},
		"../repair/repair.go": {
			"applyRule",
		},
	}
	for file, fns := range want {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", file, err)
		}
		var got []string
		for _, a := range analysis.HotpathAnnotations(f) {
			name := a.Func
			if a.Cold {
				name = "cold:" + name
			}
			got = append(got, name)
		}
		sort.Strings(got)
		if !reflect.DeepEqual(got, fns) {
			t.Errorf("%s hotpath inventory:\ngot:  %v\nwant: %v", file, got, fns)
		}
	}
}
