package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"erminer/internal/analysis"
)

const wireFixtureKey = "fixture/wiredrift/b.payload"

// loadWireFixture loads the shape fixture and its collected live shape.
func loadWireFixture(t *testing.T) (*analysis.Package, analysis.WireShape) {
	t.Helper()
	dir := filepath.Join("testdata", "src", "wiredrift", "b")
	pkg, err := analysis.LoadDir(dir, "fixture/wiredrift/b")
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	shapes := analysis.CollectWireShapes([]*analysis.Package{pkg})
	shape, ok := shapes[wireFixtureKey]
	if !ok {
		t.Fatalf("CollectWireShapes has no %s; got %v", wireFixtureKey, shapes)
	}
	return pkg, shape
}

// runWireDrift runs just the wiredrift check against one manifest.
func runWireDrift(pkg *analysis.Package, m *analysis.WireManifest) []analysis.Diagnostic {
	return analysis.RunOpts(pkg, []*analysis.Check{analysis.WireDrift}, &analysis.Options{Wire: m})
}

func manifestWith(shape analysis.WireShape) *analysis.WireManifest {
	return &analysis.WireManifest{Structs: map[string]analysis.WireShape{wireFixtureKey: shape}}
}

func TestWireShapeCollection(t *testing.T) {
	_, shape := loadWireFixture(t)
	if shape.Version != 2 {
		t.Errorf("Version = %d, want 2 (payloadVersion)", shape.Version)
	}
	if len(shape.Hash) != 64 {
		t.Errorf("Hash = %q, want a sha256 hex digest", shape.Hash)
	}
	wantFields := []string{"A int", "B string", "C fixture/wiredrift/b.inner"}
	if len(shape.Fields) != len(wantFields) {
		t.Fatalf("Fields = %v, want %v", shape.Fields, wantFields)
	}
	for i := range wantFields {
		if shape.Fields[i] != wantFields[i] {
			t.Errorf("Fields[%d] = %q, want %q", i, shape.Fields[i], wantFields[i])
		}
	}
}

func TestWireDriftGate(t *testing.T) {
	pkg, live := loadWireFixture(t)

	t.Run("in_sync", func(t *testing.T) {
		if diags := runWireDrift(pkg, manifestWith(live)); len(diags) != 0 {
			t.Errorf("in-sync manifest should be clean, got %v", diags)
		}
	})

	t.Run("shape_changed_without_bump", func(t *testing.T) {
		// A drifted hash at the same version is exactly what a field
		// rename without a version bump produces.
		drifted := live
		drifted.Hash = strings.Repeat("0", 64)
		diags := runWireDrift(pkg, manifestWith(drifted))
		if len(diags) != 1 || !strings.Contains(diags[0].Message, "changed without a version bump") {
			t.Errorf("want one 'changed without a version bump' finding, got %v", diags)
		}
	})

	t.Run("version_bumped_without_regen", func(t *testing.T) {
		stale := live
		stale.Version = 1
		stale.Hash = strings.Repeat("0", 64)
		diags := runWireDrift(pkg, manifestWith(stale))
		if len(diags) != 1 || !strings.Contains(diags[0].Message, "regenerate the manifest with ermvet -update-wire") {
			t.Errorf("want one 'regenerate the manifest' finding, got %v", diags)
		}
	})

	t.Run("version_mismatch_same_shape", func(t *testing.T) {
		mismatched := live
		mismatched.Version = 3
		diags := runWireDrift(pkg, manifestWith(mismatched))
		if len(diags) != 1 || !strings.Contains(diags[0].Message, "manifest records 3 for an identical shape") {
			t.Errorf("want one version-mismatch finding, got %v", diags)
		}
	})

	t.Run("missing_entry", func(t *testing.T) {
		diags := runWireDrift(pkg, &analysis.WireManifest{Structs: map[string]analysis.WireShape{}})
		if len(diags) != 1 || !strings.Contains(diags[0].Message, "not in the golden manifest") {
			t.Errorf("want one missing-entry finding, got %v", diags)
		}
	})

	t.Run("stale_entry", func(t *testing.T) {
		m := manifestWith(live)
		m.Structs["fixture/wiredrift/b.gone"] = analysis.WireShape{Version: 1, Hash: "x"}
		diags := runWireDrift(pkg, m)
		if len(diags) != 1 || !strings.Contains(diags[0].Message, "fixture/wiredrift/b.gone has no //ermvet:wire struct") {
			t.Errorf("want one stale-entry finding, got %v", diags)
		}
	})
}

func TestUpdateWireManifest(t *testing.T) {
	pkg, live := loadWireFixture(t)
	pkgs := []*analysis.Package{pkg}

	// First generation (no old manifest) succeeds.
	m, err := analysis.UpdateWireManifest(nil, pkgs)
	if err != nil {
		t.Fatalf("first generation: %v", err)
	}
	if got := m.Structs[wireFixtureKey]; got.Hash != live.Hash || got.Version != live.Version {
		t.Errorf("generated entry %+v does not match live shape %+v", got, live)
	}

	// Shape drifted but the version constant was not bumped: refuse.
	frozen := live
	frozen.Hash = strings.Repeat("0", 64)
	if _, err := analysis.UpdateWireManifest(manifestWith(frozen), pkgs); err == nil ||
		!strings.Contains(err.Error(), "without a version bump") {
		t.Errorf("want refusal for unbumped shape change, got err=%v", err)
	}

	// Shape drifted and the version was bumped (manifest holds the old
	// version): regeneration proceeds.
	old := frozen
	old.Version = 1
	m, err = analysis.UpdateWireManifest(manifestWith(old), pkgs)
	if err != nil {
		t.Fatalf("bumped regeneration: %v", err)
	}
	if got := m.Structs[wireFixtureKey]; got.Hash != live.Hash || got.Version != 2 {
		t.Errorf("regenerated entry %+v does not match live shape", got)
	}
}
