package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// floateqPkgs are the numeric packages: measure aggregation, evaluation
// metrics, the neural network and the DQN. Rounding there decides rule
// rankings and training behavior, so an exact float comparison is
// almost always a latent tie-break or convergence bug.
var floateqPkgs = map[string]bool{
	"measure": true,
	"metrics": true,
	"nn":      true,
	"rl":      true,
}

// FloatEq flags == and != between floating-point operands in the
// numeric packages. Comparing against the literal 0 is allowed: float
// zero is exact, and the zero test is the idiomatic "config field unset"
// and "skip zero entry" sentinel throughout the repo. Anything else
// needs an epsilon, a total-order tie-break, or a written suppression.
var FloatEq = &Check{
	Name: "floateq",
	Doc:  "no ==/!= on floats in numeric packages (exact-zero sentinel tests excepted)",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	if !floateqPkgs[pass.Types.Name()] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if tv, ok := pass.Info.Types[be]; ok && tv.Value != nil {
				return true // constant-folded at compile time
			}
			if !isFloat(pass.Info.TypeOf(be.X)) && !isFloat(pass.Info.TypeOf(be.Y)) {
				return true
			}
			if isZeroConst(pass.Info, be.X) || isZeroConst(pass.Info, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos,
				"float equality %s %s %s; compare with an epsilon or restructure the tie-break",
				types.ExprString(be.X), be.Op, types.ExprString(be.Y))
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
