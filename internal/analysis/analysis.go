// Package analysis is ermvet, the repository's custom static-analysis
// pass. It machine-checks the determinism and concurrency invariants
// the parallel mining engine (DESIGN.md decision 11) and the serving
// daemon (decision 12) rely on, which code review alone cannot keep
// enforced through heavy refactoring:
//
//   - detrand: determinism-critical packages take randomness as an
//     injected seeded *rand.Rand and time through an injected clock —
//     never the math/rand globals or time.Now.
//   - maporder: iterating a map must not feed ordered output (a slice
//     that is never sorted, or direct writes) — Go randomizes map order.
//   - guardedby: struct fields annotated "guarded by <mu>" are only
//     accessed in functions that lock <mu> on the same receiver.
//   - floateq: no ==/!= on floating-point operands in the measure/loss
//     packages (exact-zero sentinel tests excepted).
//   - ctxcancel: exported blocking entry points of the serving and
//     repair layers accept and honor a cancellation hook.
//
// Later layers grow the reach: flow-sensitive per-function dataflow
// (lockflow, goroleak, errdrop), interprocedural budgets and lifetimes
// (allocbudget, bodyclose), and finally whole-module contract gates —
// lockorder (cross-package lock-acquisition order and blocking-under-
// mutex), httpcontract (client routes must resolve against registered
// handlers), and metricdrift (the exported metric-name surface is
// pinned by a golden manifest). See each check's doc.
//
// A finding the code is genuinely entitled to is silenced in place with
//
//	//ermvet:ignore <check> <reason>
//
// on the flagged line or the line above; the reason is mandatory, so
// every suppression is a written-down decision. The pass is built on
// go/ast, go/parser and go/types only, with standard-library imports
// resolved from source (go/importer) — no third-party analyzer
// framework.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding, resolved to a file position. Suppressed
// marks findings silenced by a well-formed //ermvet:ignore directive;
// Run drops them, RunAll keeps them (the -json CI feed reports
// suppressions so a PR annotator can show the written-down decisions
// alongside the live findings). Reason carries the directive's
// mandatory rationale for suppressed findings, so reporting surfaces
// can show the decision, not just that one was made.
type Diagnostic struct {
	Check      string
	Pos        token.Position
	Message    string
	Suppressed bool
	Reason     string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Check is one analysis pass.
type Check struct {
	Name string
	// Doc is the one-line summary `ermvet -checks` prints.
	Doc string
	Run func(*Pass)
}

// AllChecks is the full pass list, in reporting-name order. The
// syntactic / function-granular v1 checks came first; lockflow,
// goroleak, errdrop and wiredrift are the flow-sensitive v2 layer built
// on the CFG and call graph (cfg.go, callgraph.go); allocbudget,
// atomicmix and bodyclose are the v3 layer, which adds interprocedural
// allocation budgets, atomics-consistency and resource-lifetime
// dataflow on the same substrate; httpcontract, lockorder and
// metricdrift are the v4 layer, which lifts the analysis from single
// functions and packages to whole-module contracts: the HTTP protocol
// between the serving roles, the module-wide lock-acquisition order,
// and the exported metric-name surface.
var AllChecks = []*Check{AllocBudget, AtomicMix, BodyClose, CtxCancel, DetRand, ErrDrop, FloatEq, GoroLeak, GuardedBy, HTTPContract, LockFlow, LockOrder, MapOrder, MetricDrift, WireDrift}

// Options carries the module-level context some checks need beyond the
// single package a Pass hands them. A nil *Options behaves like the
// zero value.
type Options struct {
	// Wire is the golden wire-shape manifest the wiredrift check gates
	// against. When nil, wiredrift runs its structural rules only
	// (marker on a non-struct, missing version constant) and skips the
	// shape comparison.
	Wire *WireManifest
	// Graph is the module call graph goroleak resolves `go f()`
	// spawns through. When nil, a per-package graph is built on demand.
	Graph *CallGraph
	// Metrics is the golden metric-name manifest the metricdrift check
	// gates against. When nil, metricdrift is a no-op: there is nothing
	// to gate.
	Metrics *MetricsManifest
	// Routes is the module-wide registered-route table httpcontract
	// resolves client call sites against. When nil, a per-package table
	// is built on demand (fixtures register and call in one package).
	Routes *RouteTable
	// Locks is the module-wide lock-order analysis lockorder reports
	// from. When nil, it is computed over the single pass package.
	Locks *LockOrderInfo
	// Timing, when set, receives each check's wall-clock duration after
	// it runs over a package.
	Timing func(check string, d time.Duration)
}

func (o *Options) orZero() *Options {
	if o == nil {
		return &Options{}
	}
	return o
}

// knownCheck also admits the meta-check name used for malformed
// directives, so an ignore can never target a check that does not exist.
func knownCheck(name string) bool {
	for _, c := range AllChecks {
		if c.Name == name {
			return true
		}
	}
	return false
}

// Pass hands one package to one check.
type Pass struct {
	*Package
	Check  string
	Opts   *Options
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Check:   p.Check,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// ReportAt records a finding at an already-resolved position. The
// module-wide checks compute findings across packages and hand each one
// to the pass that owns the file, where token.Pos values from other
// passes' resolution would be meaningless.
func (p *Pass) ReportAt(pos token.Position, format string, args ...any) {
	p.report(Diagnostic{
		Check:   p.Check,
		Pos:     pos,
		Message: fmt.Sprintf(format, args...),
	})
}

// Run applies the checks to one package, drops findings suppressed by a
// well-formed //ermvet:ignore directive, and returns the survivors —
// including one "ermvet" diagnostic per malformed directive, which is
// itself unsuppressable — sorted by position.
func Run(pkg *Package, checks []*Check) []Diagnostic {
	return RunOpts(pkg, checks, nil)
}

// RunOpts is Run with module-level options.
func RunOpts(pkg *Package, checks []*Check, opts *Options) []Diagnostic {
	all := RunAll(pkg, checks, opts)
	kept := all[:0]
	for _, d := range all {
		if !d.Suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// RunAll is RunOpts without the suppression filter: silenced findings
// come back with Suppressed set instead of being dropped, so reporting
// surfaces (ermvet -json) can show every decision the directives
// encode. Malformed directives are still unsuppressable "ermvet"
// findings. The result is sorted by position.
func RunAll(pkg *Package, checks []*Check, opts *Options) []Diagnostic {
	var diags []Diagnostic
	for _, c := range checks {
		pass := &Pass{
			Package: pkg,
			Check:   c.Name,
			Opts:    opts.orZero(),
			report:  func(d Diagnostic) { diags = append(diags, d) },
		}
		start := time.Now()
		c.Run(pass)
		if t := pass.Opts.Timing; t != nil {
			t(c.Name, time.Since(start))
		}
	}

	ign, bad := ignoreDirectives(pkg)
	for i, d := range diags {
		if reason, ok := ign[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Check}]; ok {
			diags[i].Suppressed = true
			diags[i].Reason = reason
		} else if reason, ok := ign[ignoreKey{d.Pos.Filename, d.Pos.Line - 1, d.Check}]; ok {
			diags[i].Suppressed = true
			diags[i].Reason = reason
		}
	}
	diags = append(diags, bad...)

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags
}

type ignoreKey struct {
	file  string
	line  int
	check string
}

const ignorePrefix = "//ermvet:ignore"

// ignoreDirectives scans every comment for suppression directives,
// mapping each well-formed one to its reason string. A directive must
// name a known check and carry a reason; anything else is reported as
// an "ermvet" diagnostic so a silencing typo cannot silently widen the
// gate.
func ignoreDirectives(pkg *Package) (map[ignoreKey]string, []Diagnostic) {
	ign := make(map[ignoreKey]string)
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0 || !knownCheck(fields[0]):
					bad = append(bad, Diagnostic{
						Check: "ermvet", Pos: pos,
						Message: fmt.Sprintf("malformed ignore directive: want %q with a known check name", ignorePrefix+" <check> <reason>"),
					})
				case len(fields) < 2:
					bad = append(bad, Diagnostic{
						Check: "ermvet", Pos: pos,
						Message: fmt.Sprintf("ignore directive for %q is missing its reason: every suppression must say why", fields[0]),
					})
				default:
					ign[ignoreKey{pos.Filename, pos.Line, fields[0]}] = strings.Join(fields[1:], " ")
				}
			}
		}
	}
	return ign, bad
}
