package analysis_test

import (
	"path/filepath"
	"testing"

	"erminer/internal/analysis"
)

// TestLoadModuleParallelDeterministic pins the contract the parallel
// loader must keep: two loads of the same module agree on the package
// list, the per-package file lists, and — the part goroutine
// scheduling could most plausibly perturb — the full diagnostic
// stream, byte for byte and in the same order. Parsing interleaves
// FileSet offsets across packages, so any check that compared raw
// token.Pos across files of different packages would flake here.
func TestLoadModuleParallelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source twice")
	}
	root := filepath.Join("..", "..")
	load := func() ([]string, []string) {
		pkgs, err := analysis.LoadModule(root)
		if err != nil {
			t.Fatalf("LoadModule: %v", err)
		}
		var shape, diags []string
		opts := &analysis.Options{Graph: analysis.BuildCallGraph(pkgs)}
		for _, pkg := range pkgs {
			shape = append(shape, pkg.Path)
			for _, f := range pkg.Files {
				shape = append(shape, "  "+pkg.Fset.Position(f.Package).Filename)
			}
			// Wire is nil here, so wiredrift runs its structural rules
			// only — enough to exercise every check's reporting order
			// without depending on the golden manifest.
			for _, d := range analysis.RunAll(pkg, analysis.AllChecks, opts) {
				diags = append(diags, d.String())
			}
		}
		return shape, diags
	}
	shape1, diags1 := load()
	shape2, diags2 := load()
	if len(shape1) != len(shape2) {
		t.Fatalf("package/file inventory differs between loads: %d vs %d entries", len(shape1), len(shape2))
	}
	for i := range shape1 {
		if shape1[i] != shape2[i] {
			t.Errorf("inventory entry %d differs: %q vs %q", i, shape1[i], shape2[i])
		}
	}
	if len(diags1) != len(diags2) {
		t.Fatalf("diagnostic streams differ in length: %d vs %d", len(diags1), len(diags2))
	}
	for i := range diags1 {
		if diags1[i] != diags2[i] {
			t.Errorf("diagnostic %d differs:\nfirst:  %s\nsecond: %s", i, diags1[i], diags2[i])
		}
	}
}
