package analysis_test

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"erminer/internal/analysis"
)

// wantRE matches a fixture expectation: a comment containing
// `// want `<regexp>“ on the line where a diagnostic must appear.
var wantRE = regexp.MustCompile("// want `([^`]*)`")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// TestChecks runs each check against its fixture packages and compares
// the diagnostics against the fixtures' want-expectations in both
// directions: a diagnostic with no matching want fails, and a want with
// no matching diagnostic fails. Every check has at least one firing and
// one non-firing fixture, and every fixture carries a suppressed case,
// so the //ermvet:ignore path is exercised throughout.
func TestChecks(t *testing.T) {
	cases := []struct {
		dir   string
		check *analysis.Check
		opts  *analysis.Options
	}{
		{dir: "detrand/measure", check: analysis.DetRand},
		{dir: "detrand/other", check: analysis.DetRand},
		{dir: "maporder/a", check: analysis.MapOrder},
		{dir: "guardedby/a", check: analysis.GuardedBy},
		{dir: "floateq/nn", check: analysis.FloatEq},
		{dir: "floateq/other", check: analysis.FloatEq},
		{dir: "ctxcancel/serve", check: analysis.CtxCancel},
		{dir: "ctxcancel/cluster", check: analysis.CtxCancel},
		{dir: "allocbudget/a", check: analysis.AllocBudget},
		{dir: "bodyclose/cluster", check: analysis.BodyClose},
		{dir: "bodyclose/other", check: analysis.BodyClose},
		{dir: "atomicmix/a", check: analysis.AtomicMix},
		{dir: "lockflow/a", check: analysis.LockFlow},
		{dir: "goroleak/serve", check: analysis.GoroLeak},
		{dir: "goroleak/other", check: analysis.GoroLeak},
		{dir: "errdrop/a", check: analysis.ErrDrop},
		{dir: "wiredrift/a", check: analysis.WireDrift},
		{dir: "lockorder/a", check: analysis.LockOrder},
		{dir: "httpcontract/cluster", check: analysis.HTTPContract},
		{dir: "httpcontract/other", check: analysis.HTTPContract},
		{dir: "metricdrift/serve", check: analysis.MetricDrift, opts: &analysis.Options{
			Metrics: &analysis.MetricsManifest{Metrics: map[string]string{
				"erminerd_known_total":   "serve",
				"erminerd_dropped_total": "serve",
			}},
		}},
	}
	for _, tc := range cases {
		t.Run(strings.ReplaceAll(tc.dir, "/", "_"), func(t *testing.T) {
			dir := filepath.Join("testdata", "src", filepath.FromSlash(tc.dir))
			pkg, err := analysis.LoadDir(dir, "fixture/"+tc.dir)
			if err != nil {
				t.Fatalf("LoadDir(%s): %v", dir, err)
			}
			wants := parseWants(t, pkg)
			for _, d := range analysis.RunOpts(pkg, []*analysis.Check{tc.check}, tc.opts) {
				if !claim(wants, d.Pos.Filename, d.Pos.Line, d.Message) {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("missing diagnostic at %s:%d matching %q", w.file, w.line, w.re)
				}
			}
		})
	}
}

// parseWants scrapes the want-expectations from the fixture's comments.
func parseWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
				}
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

// claim marks the first unhit expectation matching the diagnostic.
func claim(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.hit && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.hit = true
			return true
		}
	}
	return false
}

// TestMalformedIgnores pins the exact diagnostics for broken
// suppressions: an ignore without a reason and an ignore naming an
// unknown check both surface as unsuppressable "ermvet" findings, and
// the reasonless one does not silence the maporder finding under it.
func TestMalformedIgnores(t *testing.T) {
	dir := filepath.Join("testdata", "src", "ignore", "bad")
	pkg, err := analysis.LoadDir(dir, "fixture/ignore/bad")
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	file := filepath.Join(dir, "bad.go")
	want := []string{
		file + `:8:3: [ermvet] ignore directive for "maporder" is missing its reason: every suppression must say why`,
		file + ":9:3: [maporder] map iteration appends to out, which is never sorted afterwards in this block; map order is random — sort it (with a total tie-break) or restructure",
		file + `:14:1: [ermvet] malformed ignore directive: want "//ermvet:ignore <check> <reason>" with a known check name`,
	}
	var got []string
	for _, d := range analysis.Run(pkg, analysis.AllChecks) {
		got = append(got, d.String())
	}
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\ngot:  %s\nwant: %s",
			len(got), len(want), strings.Join(got, "\n      "), strings.Join(want, "\n      "))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d:\ngot:  %s\nwant: %s", i, got[i], want[i])
		}
	}
}

// TestModuleClean re-runs the full pass over the module from inside the
// test suite, so `go test ./...` — not only scripts/check.sh — fails
// the moment a determinism or locking invariant regresses (for example,
// deleting the sort after a map-range in an annotated package). It runs
// with the same module-level context the CLI uses: the golden wire
// manifest and the cross-package call graph.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	root := filepath.Join("..", "..")
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	manifest, err := analysis.LoadWireManifest(filepath.Join(root, filepath.FromSlash(analysis.WireManifestPath)))
	if err != nil {
		t.Fatalf("LoadWireManifest: %v", err)
	}
	metrics, err := analysis.LoadMetricsManifest(filepath.Join(root, filepath.FromSlash(analysis.MetricsManifestPath)))
	if err != nil {
		t.Fatalf("LoadMetricsManifest: %v", err)
	}
	graph := analysis.BuildCallGraph(pkgs)
	opts := &analysis.Options{
		Wire:    manifest,
		Graph:   graph,
		Metrics: metrics,
		Routes:  analysis.CollectRoutes(pkgs),
		Locks:   analysis.BuildLockOrder(pkgs, graph),
	}
	for _, pkg := range pkgs {
		for _, d := range analysis.RunOpts(pkg, analysis.AllChecks, opts) {
			t.Errorf("%s", d)
		}
	}
}

// TestCheckInventory pins the pass list: fifteen checks, in
// reporting-name order. Dropping a check from AllChecks would silently
// shrink every gate built on it — the CLI, check.sh, TestModuleClean —
// so the count and the names are fixed here.
func TestCheckInventory(t *testing.T) {
	want := []string{
		"allocbudget", "atomicmix", "bodyclose", "ctxcancel", "detrand",
		"errdrop", "floateq", "goroleak", "guardedby", "httpcontract",
		"lockflow", "lockorder", "maporder", "metricdrift", "wiredrift",
	}
	var got []string
	for _, c := range analysis.AllChecks {
		got = append(got, c.Name)
	}
	if len(got) != len(want) {
		t.Fatalf("AllChecks has %d checks, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("AllChecks[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
