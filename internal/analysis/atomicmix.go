package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix forbids mixing atomic and plain access to the same field.
// Two shapes are checked, in every package:
//
//   - A field of an atomic type (atomic.Int64, atomic.Pointer[T], ...)
//     may only be used through its methods or by address. Copying it as
//     a value reads its word without synchronization.
//   - A plain field passed as &x.f to a sync/atomic function must not
//     be read or written plainly anywhere else in the package — unless
//     the plain access is under the field's declared "guarded by"
//     mutex, using guardedby's receiver-chain identity, which is the
//     one sound mixed regime (atomic readers, locked writers).
var AtomicMix = &Check{
	Name: "atomicmix",
	Doc:  "fields accessed via sync/atomic must not also be accessed plainly outside their declared guard",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	guarded := guardedFields(pass)

	// Package-wide collection: plain fields that appear as &x.f
	// arguments to sync/atomic package functions, and those selector
	// sites themselves (exempt from the plain-access scan).
	atomicOps := make(map[*types.Var]bool)
	exempt := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := StaticCallee(pass.Info, call)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := callee.Type().(*types.Signature); !ok || sig.Recv() != nil {
				// Methods on atomic types are the safe API; only the
				// package-level &-taking functions mark a plain field
				// as atomically accessed.
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fv := fieldVarOf(pass, sel); fv != nil {
					atomicOps[fv] = true
					exempt[sel] = true
				}
			}
			return true
		})
	}

	type lineKey struct {
		file string
		line int
	}
	reported := make(map[lineKey]bool)
	reportf := func(pos token.Pos, format string, args ...any) {
		p := pass.Fset.Position(pos)
		k := lineKey{p.Filename, p.Line}
		if reported[k] {
			return
		}
		reported[k] = true
		pass.Reportf(pos, format, args...)
	}

	for _, f := range pass.Files {
		parents := parentMap(f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			locks := lockedChains(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fv := fieldVarOf(pass, sel)
				if fv == nil {
					return true
				}
				if isAtomicType(fv.Type()) {
					if !atomicUseOK(parents[sel], sel) {
						reportf(sel.Pos(), "atomic field %s is used as a plain value here; use its methods (or take its address) so every access stays atomic", fv.Name())
					}
					return true
				}
				if !atomicOps[fv] || exempt[sel] {
					return true
				}
				if mu, ok := guarded[fv]; ok {
					if locks[types.ExprString(sel.X)+"."+mu] {
						return true
					}
					reportf(sel.Pos(), "field %s is accessed with sync/atomic elsewhere in this package; this plain access is outside its declared guard %s and races with the atomic users", fv.Name(), mu)
					return true
				}
				reportf(sel.Pos(), "field %s is accessed with sync/atomic elsewhere in this package; this plain access races with it (guard it or use sync/atomic here too)", fv.Name())
				return true
			})
		}
	}
}

// fieldVarOf resolves sel to the struct field it selects, or nil when
// sel is not a field selection.
func fieldVarOf(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	s := pass.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return nil
	}
	return v
}

// atomicUseOK reports whether an atomic-typed field selection is in a
// safe position: the receiver of a method selection (x.f.Load) or the
// operand of & (passing the atomic by pointer).
func atomicUseOK(parent ast.Node, sel *ast.SelectorExpr) bool {
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		return p.X == sel
	case *ast.UnaryExpr:
		return p.Op == token.AND
	}
	return false
}

// isAtomicType reports whether t is one of sync/atomic's typed values
// (Int32..Uint64, Uintptr, Bool, Pointer[T], Value).
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// parentMap records each node's syntactic parent within f.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
