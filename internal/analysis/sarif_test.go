package analysis_test

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
	"time"

	"erminer/internal/analysis"
)

// TestSARIFFormat checks the `ermvet -sarif` document structurally:
// one run whose driver declares a rule per check (plus the "ermvet"
// meta rule for malformed directives), one result per diagnostic, and
// suppressed findings carried as inSource suppressions with the
// //ermvet:ignore rationale as justification — that is the shape
// GitHub code scanning needs to show alerts and written-down
// decisions side by side.
func TestSARIFFormat(t *testing.T) {
	diags := []analysis.Diagnostic{
		{
			Check:   "maporder",
			Pos:     token.Position{Filename: "internal/rule/set.go", Line: 31, Column: 2},
			Message: "map iteration feeds ordered output",
		},
		{
			Check:      "allocbudget",
			Pos:        token.Position{Filename: "internal/measure/measure.go", Line: 12, Column: 9},
			Message:    "make allocates in //ermvet:hotpath function getCover",
			Suppressed: true,
			Reason:     "freelist miss: first use at this capacity",
		},
	}
	var sb strings.Builder
	if err := analysis.WriteSARIF(&sb, diags); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				Suppressions []struct {
					Kind          string `json:"kind"`
					Justification string `json:"justification"`
				} `json:"suppressions"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("version/schema = %q / %q, want SARIF 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "ermvet" {
		t.Errorf("driver name = %q, want ermvet", run.Tool.Driver.Name)
	}
	ruleIDs := make(map[string]bool, len(run.Tool.Driver.Rules))
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	if len(run.Tool.Driver.Rules) != len(analysis.AllChecks)+1 {
		t.Errorf("got %d rules, want one per check plus the ermvet meta rule (%d)",
			len(run.Tool.Driver.Rules), len(analysis.AllChecks)+1)
	}
	for _, c := range analysis.AllChecks {
		if !ruleIDs[c.Name] {
			t.Errorf("driver rules missing check %q", c.Name)
		}
	}
	if !ruleIDs["ermvet"] {
		t.Errorf("driver rules missing the ermvet meta rule")
	}

	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	live, sup := run.Results[0], run.Results[1]
	if live.RuleID != "maporder" || live.Level != "error" {
		t.Errorf("live result = %s/%s, want maporder/error", live.RuleID, live.Level)
	}
	if len(live.Suppressions) != 0 {
		t.Errorf("live result carries %d suppressions, want none", len(live.Suppressions))
	}
	loc := live.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/rule/set.go" || loc.Region.StartLine != 31 || loc.Region.StartColumn != 2 {
		t.Errorf("live location = %q:%d:%d, want internal/rule/set.go:31:2",
			loc.ArtifactLocation.URI, loc.Region.StartLine, loc.Region.StartColumn)
	}
	if len(sup.Suppressions) != 1 {
		t.Fatalf("suppressed result carries %d suppressions, want 1", len(sup.Suppressions))
	}
	if s := sup.Suppressions[0]; s.Kind != "inSource" || s.Justification != "freelist miss: first use at this capacity" {
		t.Errorf("suppression = %q/%q, want inSource with the //ermvet:ignore rationale", s.Kind, s.Justification)
	}
}

// TestSARIFTimings pins the -timing run property: per-check wall time
// lands in the run's property bag without touching the pinned result
// format (WriteSARIF delegates with nil timings and emits no bag).
func TestSARIFTimings(t *testing.T) {
	var sb strings.Builder
	err := analysis.WriteSARIFWith(&sb, nil, map[string]time.Duration{"lockorder": 2 * time.Millisecond})
	if err != nil {
		t.Fatalf("WriteSARIFWith: %v", err)
	}
	var log struct {
		Runs []struct {
			Properties struct {
				CheckTimingsMs map[string]float64 `json:"checkTimingsMs"`
			} `json:"properties"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &log); err != nil {
		t.Fatalf("parsing SARIF: %v", err)
	}
	if got := log.Runs[0].Properties.CheckTimingsMs["lockorder"]; got != 2 {
		t.Errorf("checkTimingsMs[lockorder] = %v, want 2", got)
	}

	var plain strings.Builder
	if err := analysis.WriteSARIF(&plain, nil); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	if strings.Contains(plain.String(), "properties") {
		t.Errorf("WriteSARIF without timings must not emit a property bag")
	}
}
