package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ctxcancelPkgs are the layers that sit on the request path: the
// serving daemon, the repair engine it calls into, and the cluster
// coordinator that fans requests out over worker daemons.
var ctxcancelPkgs = map[string]bool{
	"serve":   true,
	"repair":  true,
	"cluster": true,
}

// CtxCancel requires exported blocking entry points of the serving and
// repair layers to accept a cancellation hook — a context.Context or a
// done channel — and to actually use it, matching repair.ApplyContext.
// "Blocking" is syntactic: the body performs a channel operation, a
// select, or a Wait call. Without a honored hook, one slow request
// pins a worker past its deadline and the bounded-queue latency story
// of DESIGN.md decision 12 falls over.
var CtxCancel = &Check{
	Name: "ctxcancel",
	Doc:  "exported blocking entry points in serve/repair/cluster take and use a context.Context or done channel",
	Run:  runCtxCancel,
}

func runCtxCancel(pass *Pass) {
	if !ctxcancelPkgs[pass.Types.Name()] {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			kind, pos := blockingOp(pass.Info, fn.Body)
			cancelObjs := cancelParams(pass, fn.Type)
			if kind != "" && len(cancelObjs) == 0 {
				pass.Reportf(pos,
					"exported %s blocks (%s) but takes no context.Context or done channel; cancellation must reach it like repair.ApplyContext",
					fn.Name.Name, kind)
				continue
			}
			for _, obj := range cancelObjs {
				if kind != "" && !usesObject(pass.Info, fn.Body, obj) {
					pass.Reportf(obj.Pos(),
						"exported %s blocks (%s) but never uses its cancellation parameter %s",
						fn.Name.Name, kind, obj.Name())
				}
			}
		}
	}
}

// blockingOp returns the first syntactically blocking operation of the
// body: a channel send/receive, a range over a channel, a select, or a
// Wait call.
func blockingOp(info *types.Info, body *ast.BlockStmt) (kind string, pos token.Pos) {
	ast.Inspect(body, func(n ast.Node) bool {
		if kind != "" {
			return false
		}
		switch e := n.(type) {
		case *ast.SendStmt:
			kind, pos = "channel send", e.Pos()
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				kind, pos = "channel receive", e.Pos()
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(e.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					kind, pos = "range over channel", e.Pos()
				}
			}
		case *ast.SelectStmt:
			kind, pos = "select", e.Pos()
		case *ast.CallExpr:
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				kind, pos = "Wait call", e.Pos()
			}
		}
		return kind == ""
	})
	return kind, pos
}

// cancelParams returns the parameter objects that count as cancellation
// hooks: context.Context values and receive-only channels.
func cancelParams(pass *Pass, ftype *ast.FuncType) []types.Object {
	var objs []types.Object
	if ftype.Params == nil {
		return nil
	}
	for _, field := range ftype.Params.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil || !isCancelType(t) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if obj := pass.Info.Defs[name]; obj != nil {
				objs = append(objs, obj)
			}
		}
	}
	return objs
}

func isCancelType(t types.Type) bool {
	if ch, ok := t.Underlying().(*types.Chan); ok {
		return ch.Dir() == types.RecvOnly
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func usesObject(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}
