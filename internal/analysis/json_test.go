package analysis_test

import (
	"go/token"
	"strings"
	"testing"

	"erminer/internal/analysis"
)

// TestJSONFormat pins the `ermvet -json` line format: one object per
// line with exactly the check/file/line/col/message/suppressed fields.
// CI parses this to build the PR step summary, so the field set is a
// wire format — extend it deliberately, never rename.
func TestJSONFormat(t *testing.T) {
	diags := []analysis.Diagnostic{
		{
			Check:   "errdrop",
			Pos:     token.Position{Filename: "internal/serve/checkpoint.go", Line: 54, Column: 8},
			Message: `call to os.Remove drops its error result`,
		},
		{
			Check:      "lockflow",
			Pos:        token.Position{Filename: "internal/serve/handlers.go", Line: 9, Column: 2},
			Message:    "s.mu is still locked when f returns on this path",
			Suppressed: true,
		},
		{
			Check:      "allocbudget",
			Pos:        token.Position{Filename: "internal/measure/measure.go", Line: 12, Column: 9},
			Message:    "make allocates in //ermvet:hotpath function getCover",
			Suppressed: true,
			Reason:     "freelist miss: first use at this capacity",
		},
	}
	var sb strings.Builder
	if err := analysis.WriteJSON(&sb, diags); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	want := `{"check":"errdrop","file":"internal/serve/checkpoint.go","line":54,"col":8,"message":"call to os.Remove drops its error result","suppressed":false}
{"check":"lockflow","file":"internal/serve/handlers.go","line":9,"col":2,"message":"s.mu is still locked when f returns on this path","suppressed":true}
{"check":"allocbudget","file":"internal/measure/measure.go","line":12,"col":9,"message":"make allocates in //ermvet:hotpath function getCover","suppressed":true,"reason":"freelist miss: first use at this capacity"}
`
	if sb.String() != want {
		t.Errorf("JSON output drifted:\ngot:  %q\nwant: %q", sb.String(), want)
	}
}
