package analysis_test

import (
	"go/token"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"erminer/internal/analysis"
)

// TestJSONFormat pins the `ermvet -json` line format: one object per
// line with exactly the check/file/line/col/message/suppressed fields.
// CI parses this to build the PR step summary, so the field set is a
// wire format — extend it deliberately, never rename.
func TestJSONFormat(t *testing.T) {
	diags := []analysis.Diagnostic{
		{
			Check:   "errdrop",
			Pos:     token.Position{Filename: "internal/serve/checkpoint.go", Line: 54, Column: 8},
			Message: `call to os.Remove drops its error result`,
		},
		{
			Check:      "lockflow",
			Pos:        token.Position{Filename: "internal/serve/handlers.go", Line: 9, Column: 2},
			Message:    "s.mu is still locked when f returns on this path",
			Suppressed: true,
		},
		{
			Check:      "allocbudget",
			Pos:        token.Position{Filename: "internal/measure/measure.go", Line: 12, Column: 9},
			Message:    "make allocates in //ermvet:hotpath function getCover",
			Suppressed: true,
			Reason:     "freelist miss: first use at this capacity",
		},
	}
	var sb strings.Builder
	if err := analysis.WriteJSON(&sb, diags); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	want := `{"check":"errdrop","file":"internal/serve/checkpoint.go","line":54,"col":8,"message":"call to os.Remove drops its error result","suppressed":false}
{"check":"lockflow","file":"internal/serve/handlers.go","line":9,"col":2,"message":"s.mu is still locked when f returns on this path","suppressed":true}
{"check":"allocbudget","file":"internal/measure/measure.go","line":12,"col":9,"message":"make allocates in //ermvet:hotpath function getCover","suppressed":true,"reason":"freelist miss: first use at this capacity"}
`
	if sb.String() != want {
		t.Errorf("JSON output drifted:\ngot:  %q\nwant: %q", sb.String(), want)
	}
}

// TestTimingJSONFormat pins the `-timing` NDJSON record: discriminated
// by record:"timing" so CI's jq can split the shared stream, sorted by
// check name.
func TestTimingJSONFormat(t *testing.T) {
	var sb strings.Builder
	err := analysis.WriteTimingsJSON(&sb, map[string]time.Duration{
		"lockorder":    1500 * time.Microsecond,
		"httpcontract": 250 * time.Microsecond,
	})
	if err != nil {
		t.Fatalf("WriteTimingsJSON: %v", err)
	}
	want := `{"record":"timing","check":"httpcontract","ms":0.25}
{"record":"timing","check":"lockorder","ms":1.5}
`
	if sb.String() != want {
		t.Errorf("timing output drifted:\ngot:  %q\nwant: %q", sb.String(), want)
	}
}

// TestRunAllTiming pins the Options.Timing hook: one callback per check
// per package, under the check's reporting name.
func TestRunAllTiming(t *testing.T) {
	dir := filepath.Join("testdata", "src", "maporder", "a")
	pkg, err := analysis.LoadDir(dir, "fixture/maporder/a")
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	var calls []string
	opts := &analysis.Options{Timing: func(check string, d time.Duration) {
		if d < 0 {
			t.Errorf("negative duration for %s", check)
		}
		calls = append(calls, check)
	}}
	analysis.RunOpts(pkg, []*analysis.Check{analysis.MapOrder, analysis.DetRand}, opts)
	if want := []string{"maporder", "detrand"}; !reflect.DeepEqual(calls, want) {
		t.Errorf("timing callbacks = %v, want %v", calls, want)
	}
}
