package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// MetricDrift gates the serving stack's metric names — every
// erminerd_*/ermcluster_* line the daemon and the coordinator emit —
// against the golden manifest (MetricsManifestPath), the same way
// wiredrift gates wire shapes. Dashboards and alert rules key on these
// names by string, so a rename or drop is a breaking interface change
// that deserves a reviewed manifest diff, not a silent scrape gap.
// Unlike wire shapes there is no version constant to bump: the name is
// the whole contract, so the manifest is simply regenerated with
// `ermvet -update-metrics` and the diff reviewed.
var MetricDrift = &Check{
	Name: "metricdrift",
	Doc:  "erminerd_/ermcluster_ metric names must match the golden manifest; changes need ermvet -update-metrics",
	Run:  runMetricDrift,
}

// MetricsManifestPath is the golden metrics manifest's
// module-root-relative path, under the analyzer's testdata like the
// wire-shape manifest.
const MetricsManifestPath = "internal/analysis/testdata/metrics_names.json"

// metricNameRE matches a serving-stack metric name inside a string
// literal. The two prefixes are the daemon's and the coordinator's;
// scanning literals (rather than one blessed const block) means the
// gate also catches a raw Fprintf that bypasses the name constants.
var metricNameRE = regexp.MustCompile(`\b(?:erminerd|ermcluster)_[a-z0-9_]+`)

// MetricsManifest is the committed golden manifest: metric name → the
// package (by package name, e.g. "serve") that emits it. The owner is
// recorded so a dropped name is reported against the package that used
// to emit it, and so each package only polices its own names.
type MetricsManifest struct {
	Metrics map[string]string `json:"metrics"`
}

// LoadMetricsManifest reads a manifest written by WriteMetricsManifest.
func LoadMetricsManifest(path string) (*MetricsManifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading metrics manifest: %w", err)
	}
	var m MetricsManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("analysis: parsing metrics manifest %s: %w", path, err)
	}
	return &m, nil
}

// WriteMetricsManifest writes the manifest with sorted keys and a
// trailing newline, so regeneration produces minimal diffs.
func (m *MetricsManifest) WriteMetricsManifest(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// collectMetricLiterals scrapes every metric name mentioned in the
// package's string literals, keeping the first occurrence's position
// for reporting.
func collectMetricLiterals(pkg *Package) map[string]token.Pos {
	found := make(map[string]token.Pos)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			s, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			for _, name := range metricNameRE.FindAllString(s, -1) {
				if _, ok := found[name]; !ok {
					found[name] = lit.Pos()
				}
			}
			return true
		})
	}
	return found
}

// CollectMetricNames computes the live manifest across the given
// packages: every metric name found in a string literal, mapped to the
// emitting package's name.
func CollectMetricNames(pkgs []*Package) map[string]string {
	live := make(map[string]string)
	for _, pkg := range pkgs {
		for name := range collectMetricLiterals(pkg) {
			live[name] = pkg.Types.Name()
		}
	}
	return live
}

func runMetricDrift(pass *Pass) {
	manifest := pass.Opts.Metrics
	if manifest == nil {
		return // no golden manifest in this run: nothing to gate against
	}
	found := collectMetricLiterals(pass.Package)
	names := make([]string, 0, len(found))
	for name := range found {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, ok := manifest.Metrics[name]; !ok {
			pass.Reportf(found[name],
				"metric %s is not in the golden manifest (%s); dashboards cannot see unrecorded names — add it with ermvet -update-metrics",
				name, MetricsManifestPath)
		}
	}
	// A manifest name owned by this package with no remaining literal was
	// renamed or dropped: the scrape consumers keyed on it break.
	var gone []string
	for name, owner := range manifest.Metrics {
		if owner == pass.Types.Name() {
			if _, ok := found[name]; !ok {
				gone = append(gone, name)
			}
		}
	}
	sort.Strings(gone)
	pos := token.NoPos
	if len(pass.Files) > 0 {
		pos = pass.Files[0].Pos()
	}
	for _, name := range gone {
		pass.Reportf(pos,
			"manifest metric %s is no longer emitted by package %s; renaming or dropping a metric breaks its scrape consumers — regenerate with ermvet -update-metrics",
			name, pass.Types.Name())
	}
}

// UpdateMetricsManifest regenerates the manifest from the live names.
// There is no version discipline to enforce (the name is the whole
// contract), but the rewrite still goes through review as a manifest
// diff.
func UpdateMetricsManifest(pkgs []*Package) *MetricsManifest {
	return &MetricsManifest{Metrics: CollectMetricNames(pkgs)}
}
