package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// GuardedBy enforces the repo's lock-annotation convention: a struct
// field whose doc or line comment says "guarded by <mu>" (where <mu> is
// a sibling sync.Mutex/sync.RWMutex field) may only be accessed inside
// functions that lock <mu> on the same receiver chain. The check is
// function-granular and syntactic about lock acquisition — it proves
// "this function participates in the locking discipline", not a full
// lockset analysis — which is exactly the drift code review keeps
// missing: a new accessor added without any locking at all.
var GuardedBy = &Check{
	Name: "guardedby",
	Doc:  `fields annotated "guarded by <mu>" are only accessed in functions that lock <mu>`,
	Run:  runGuardedBy,
}

// GuardedByAnnotation is one scraped "guarded by" field annotation.
// Scraping is purely syntactic so tests can inventory the annotations
// of a single parsed file.
type GuardedByAnnotation struct {
	Struct string
	Field  string
	Mutex  string
	Pos    token.Pos
}

var guardedByRE = regexp.MustCompile(`guarded by (\w+)`)

// GuardedByAnnotations scrapes the "guarded by" annotations of every
// struct type declared in f.
func GuardedByAnnotations(f *ast.File) []GuardedByAnnotation {
	var anns []GuardedByAnnotation
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			text := ""
			if field.Doc != nil {
				text += field.Doc.Text()
			}
			if field.Comment != nil {
				text += field.Comment.Text()
			}
			m := guardedByRE.FindStringSubmatch(text)
			if m == nil {
				continue
			}
			for _, name := range field.Names {
				anns = append(anns, GuardedByAnnotation{
					Struct: ts.Name.Name,
					Field:  name.Name,
					Mutex:  m[1],
					Pos:    name.Pos(),
				})
			}
		}
		return true
	})
	return anns
}

func runGuardedBy(pass *Pass) {
	// guarded maps each annotated field object to its mutex field name.
	guarded := make(map[*types.Var]string)
	for _, f := range pass.Files {
		for _, ann := range GuardedByAnnotations(f) {
			obj := pass.Types.Scope().Lookup(ann.Struct)
			if obj == nil {
				pass.Reportf(ann.Pos, "guarded-by annotation on field %s of %s, which is not a package-level type", ann.Field, ann.Struct)
				continue
			}
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				pass.Reportf(ann.Pos, "guarded-by annotation on %s.%s, but %s is not a struct", ann.Struct, ann.Field, ann.Struct)
				continue
			}
			var fieldVar, muVar *types.Var
			for i := 0; i < st.NumFields(); i++ {
				switch v := st.Field(i); v.Name() {
				case ann.Field:
					fieldVar = v
				case ann.Mutex:
					muVar = v
				}
			}
			switch {
			case fieldVar == nil:
				// Unreachable from scraping, but keeps the resolution honest.
				pass.Reportf(ann.Pos, "guarded-by annotation names unknown field %s.%s", ann.Struct, ann.Field)
			case muVar == nil:
				pass.Reportf(ann.Pos, "field %s.%s is annotated \"guarded by %s\", but %s has no field %s",
					ann.Struct, ann.Field, ann.Mutex, ann.Struct, ann.Mutex)
			case !isMutex(muVar.Type()):
				pass.Reportf(ann.Pos, "field %s.%s is annotated \"guarded by %s\", but %s.%s is %s, not a sync.Mutex or sync.RWMutex",
					ann.Struct, ann.Field, ann.Mutex, ann.Struct, ann.Mutex, muVar.Type())
			default:
				guarded[fieldVar] = ann.Mutex
			}
		}
	}
	if len(guarded) == 0 {
		return
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			locks := lockedChains(fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selection := pass.Info.Selections[sel]
				if selection == nil || selection.Kind() != types.FieldVal {
					return true
				}
				field, ok := selection.Obj().(*types.Var)
				if !ok {
					return true
				}
				mu, ok := guarded[field]
				if !ok {
					return true
				}
				want := types.ExprString(sel.X) + "." + mu
				if !locks[want] {
					pass.Reportf(sel.Sel.Pos(),
						"%s accessed without locking %s in %s (field is annotated \"guarded by %s\")",
						types.ExprString(sel), want, fn.Name.Name, mu)
				}
				return true
			})
		}
	}
}

// lockedChains collects every "<recv>.<mu>" whose Lock or RLock the
// function body calls (including deferred calls and calls from nested
// function literals).
func lockedChains(body *ast.BlockStmt) map[string]bool {
	locks := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		locks[types.ExprString(sel.X)] = true
		return true
	})
	return locks
}

func isMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
