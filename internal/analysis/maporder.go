package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` over a map whose body builds ordered output:
// appending to a slice that no later statement in the enclosing block
// sorts, or writing output directly from inside the loop. Go randomizes
// map iteration order per run, so either pattern is exactly the
// nondeterminism the parallel-mining determinism tests guard against —
// the fix is the sort-after-range idiom used throughout the repo
// (collect, then sort with a total tie-break).
var MapOrder = &Check{
	Name: "maporder",
	Doc:  "map iteration must not feed ordered output: sort collected slices, never print from the loop body",
	Run:  runMapOrder,
}

// orderedWriters are call names that emit output in iteration order.
var orderedWriters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Write": true, "WriteString": true,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				list = b.List
			case *ast.CaseClause:
				list = b.Body
			case *ast.CommClause:
				list = b.Body
			default:
				return true
			}
			for i, stmt := range list {
				if l, ok := stmt.(*ast.LabeledStmt); ok {
					stmt = l.Stmt
				}
				rng, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := pass.Info.TypeOf(rng.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				checkMapRange(pass, rng, list[i+1:])
			}
			return true
		})
	}
}

func checkMapRange(pass *Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && orderedWriters[sel.Sel.Name] {
				pass.Reportf(call.Pos(),
					"%s.%s inside map iteration emits output in random map order; collect into a slice and sort first",
					types.ExprString(sel.X), sel.Sel.Name)
			}
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || pass.Info.Uses[id] != types.Universe.Lookup("append") {
			return true
		}
		target := assign.Lhs[0]
		if declaredWithin(pass.Info, target, rng.Pos(), rng.End()) {
			return true
		}
		if !sortedAfter(pass.Info, types.ExprString(target), rest) {
			pass.Reportf(assign.Pos(),
				"map iteration appends to %s, which is never sorted afterwards in this block; map order is random — sort it (with a total tie-break) or restructure",
				types.ExprString(target))
		}
		return true
	})
}

// declaredWithin reports whether the root identifier of expr is declared
// inside [lo, hi] — an append to a loop-local slice is a fresh slice per
// iteration and carries no cross-iteration order.
func declaredWithin(info *types.Info, expr ast.Expr, lo, hi token.Pos) bool {
	for {
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.Ident:
			obj := info.ObjectOf(e)
			return obj != nil && lo <= obj.Pos() && obj.Pos() <= hi
		default:
			return false
		}
	}
}

// sortedAfter reports whether any later statement in the block passes
// target to a sort.* or slices.Sort* call, directly or wrapped in one
// conversion/constructor layer (sort.Sort(byScore(target))).
func sortedAfter(info *types.Info, target string, rest []ast.Stmt) bool {
	found := false
	for _, stmt := range rest {
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			path, _, ok := pkgFuncCall(info, call)
			if !ok || (path != "sort" && path != "slices") {
				return true
			}
			for _, arg := range call.Args {
				if types.ExprString(arg) == target {
					found = true
					return false
				}
				if inner, ok := arg.(*ast.CallExpr); ok && len(inner.Args) == 1 &&
					types.ExprString(inner.Args[0]) == target {
					found = true
					return false
				}
				if lit, ok := arg.(*ast.CompositeLit); ok && len(lit.Elts) == 1 &&
					types.ExprString(lit.Elts[0]) == target {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
