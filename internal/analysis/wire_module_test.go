package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"erminer/internal/analysis"
)

const checkpointWireKey = "erminer/internal/rlminer.checkpointWire"

// loadModuleWire loads the whole module, the committed manifest, and
// the package owning the training checkpoint's wire struct.
func loadModuleWire(t *testing.T) (*analysis.WireManifest, map[string]analysis.WireShape, *analysis.Package) {
	t.Helper()
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	root := filepath.Join("..", "..")
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	manifest, err := analysis.LoadWireManifest(filepath.Join(root, filepath.FromSlash(analysis.WireManifestPath)))
	if err != nil {
		t.Fatalf("LoadWireManifest: %v", err)
	}
	var rlminerPkg *analysis.Package
	for _, pkg := range pkgs {
		if pkg.Path == "erminer/internal/rlminer" {
			rlminerPkg = pkg
		}
	}
	if rlminerPkg == nil {
		t.Fatal("module has no erminer/internal/rlminer package")
	}
	return manifest, analysis.CollectWireShapes(pkgs), rlminerPkg
}

// TestWireShapesPinned fails the moment any //ermvet:wire struct in the
// module drifts from the committed golden manifest — the same
// comparison `ermvet -checks wiredrift` gates on, run from `go test` so
// a shape change cannot land without touching the manifest.
func TestWireShapesPinned(t *testing.T) {
	manifest, live, _ := loadModuleWire(t)
	for key, shape := range live {
		entry, ok := manifest.Structs[key]
		if !ok {
			t.Errorf("wire struct %s is missing from %s; run ermvet -update-wire", key, analysis.WireManifestPath)
			continue
		}
		if entry.Hash != shape.Hash {
			t.Errorf("wire struct %s drifted from the manifest (recorded %.12s, live %.12s); bump its version constant and run ermvet -update-wire",
				key, entry.Hash, shape.Hash)
		}
		if entry.Version != shape.Version {
			t.Errorf("wire struct %s: version constant is %d but the manifest records %d; run ermvet -update-wire",
				key, shape.Version, entry.Version)
		}
	}
	for key := range manifest.Structs {
		if _, ok := live[key]; !ok {
			t.Errorf("manifest entry %s has no //ermvet:wire struct in the module; run ermvet -update-wire", key)
		}
	}
	if _, ok := live[checkpointWireKey]; !ok {
		t.Errorf("the training checkpoint struct %s must stay a gated wire root", checkpointWireKey)
	}
}

// TestWireDriftGatesCheckpoint demonstrates the gate end-to-end on the
// real checkpoint struct: against a manifest recording a different
// shape for checkpointWire at the same version — exactly what editing
// the struct without bumping checkpointWireVersion produces — the
// wiredrift check must fail the rlminer package.
func TestWireDriftGatesCheckpoint(t *testing.T) {
	manifest, live, rlminerPkg := loadModuleWire(t)

	mutated := &analysis.WireManifest{Structs: make(map[string]analysis.WireShape, len(manifest.Structs))}
	for k, v := range manifest.Structs {
		mutated.Structs[k] = v
	}
	entry := mutated.Structs[checkpointWireKey]
	if entry.Version != live[checkpointWireKey].Version {
		t.Fatalf("precondition: manifest and live version differ for %s", checkpointWireKey)
	}
	// Simulate a field rename/add/reorder: the recorded shape no longer
	// matches the source, while the version constant is unchanged.
	entry.Hash = strings.Repeat("0", 64)
	mutated.Structs[checkpointWireKey] = entry

	diags := analysis.RunOpts(rlminerPkg, []*analysis.Check{analysis.WireDrift}, &analysis.Options{Wire: mutated})
	foundGate := false
	for _, d := range diags {
		if strings.Contains(d.Message, "changed without a version bump") &&
			strings.Contains(d.Message, "checkpointWire") {
			foundGate = true
		}
	}
	if !foundGate {
		t.Errorf("wiredrift did not gate a checkpoint shape change without a version bump; got %v", diags)
	}

	// The same mutation must also make -update-wire refuse to
	// regenerate, so the manifest cannot be force-synced around the gate.
	if _, err := analysis.UpdateWireManifest(mutated, []*analysis.Package{rlminerPkg}); err == nil ||
		!strings.Contains(err.Error(), "without a version bump") {
		t.Errorf("UpdateWireManifest should refuse an unbumped checkpoint shape change, got err=%v", err)
	}
}
