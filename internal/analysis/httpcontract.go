package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// HTTPContract gates the coordinator↔worker HTTP protocol. The serving
// packages register routes as `mux.HandleFunc("METHOD /path")` patterns
// and call each other through `http.NewRequest*` and fan-out helpers;
// both sides name paths through the shared serve.Path* constants, so
// every side of the contract constant-folds. The check requires (1)
// every registration pattern to be a constant carrying a method, (2)
// every client-side (method, path) pair to resolve to a registered
// route with a matching method — a client hitting an unregistered path
// or the wrong verb is a build failure, not a runtime 404 — and (3)
// every module-local struct handed directly to encoding/json across the
// process boundary to be an //ermvet:wire-versioned shape, so the two
// ends can never decode different layouts of the same route.
var HTTPContract = &Check{
	Name: "httpcontract",
	Doc:  "client (method, path) pairs must resolve to registered mux routes; cross-process JSON structs must be //ermvet:wire-versioned",
	Run:  runHTTPContract,
}

// httpcontractPkgs scopes the check to the two serving roles. The
// protocol exists between them; the mining packages neither register
// nor call HTTP routes.
var httpcontractPkgs = map[string]bool{
	"serve":   true,
	"cluster": true,
}

// Route is one registered mux route.
type Route struct {
	Method string
	Path   string
	Pos    token.Position
}

// RouteTable is the module-wide set of registered routes httpcontract
// resolves client call sites against.
type RouteTable struct {
	Routes []Route
}

// routePathRE recognizes a string constant that names a route path:
// a versioned API path, or one of the two well-known probe endpoints.
var routePathRE = regexp.MustCompile(`^(/v1/[a-zA-Z0-9_{}./-]*|/healthz|/metrics)$`)

// httpMethods is the set of constant strings accepted as an HTTP method
// in a client call site (the http.Method* constants fold to these).
var httpMethods = map[string]bool{
	"GET": true, "POST": true, "PUT": true, "PATCH": true,
	"DELETE": true, "HEAD": true, "OPTIONS": true,
}

// constString resolves expr's constant string value, folding through
// named constants and concatenations.
func constString(pkg *Package, expr ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// muxHandleFunc reports whether call is (*http.ServeMux).HandleFunc.
func muxHandleFunc(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "HandleFunc" || len(call.Args) != 2 {
		return false
	}
	tv, ok := pkg.Info.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "ServeMux"
}

// parsePattern splits a Go 1.22 ServeMux pattern into method and path.
func parsePattern(pat string) (method, path string) {
	if i := strings.IndexByte(pat, ' '); i > 0 {
		return pat[:i], pat[i+1:]
	}
	return "", pat
}

// CollectRoutes scrapes every constant HandleFunc registration in the
// serving packages. Non-constant patterns are skipped here and reported
// by the per-package run.
func CollectRoutes(pkgs []*Package) *RouteTable {
	table := &RouteTable{}
	for _, pkg := range pkgs {
		if !httpcontractPkgs[pkg.Types.Name()] {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !muxHandleFunc(pkg, call) {
					return true
				}
				pat, ok := constString(pkg, call.Args[0])
				if !ok {
					return true
				}
				method, path := parsePattern(pat)
				table.Routes = append(table.Routes, Route{
					Method: method, Path: path,
					Pos: pkg.Fset.Position(call.Args[0].Pos()),
				})
				return true
			})
		}
	}
	sort.Slice(table.Routes, func(i, j int) bool {
		a, b := table.Routes[i], table.Routes[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		return a.Method < b.Method
	})
	return table
}

// pathsMatch reports whether a registered path pattern matches a client
// path, treating {wildcard} registration segments as matching any
// single client segment.
func pathsMatch(registered, client string) bool {
	rs := strings.Split(registered, "/")
	cs := strings.Split(client, "/")
	if len(rs) != len(cs) {
		return false
	}
	for i := range rs {
		if rs[i] == cs[i] {
			continue
		}
		if strings.HasPrefix(rs[i], "{") && strings.HasSuffix(rs[i], "}") && cs[i] != "" {
			continue
		}
		return false
	}
	return true
}

// resolveRoute checks one client (method, path) pair against the table.
func resolveRoute(pass *Pass, table *RouteTable, pos token.Pos, method, path string) {
	var methods []string
	for _, r := range table.Routes {
		// Method-less registrations are their own finding and carry no
		// method to check a client pair against.
		if r.Method == "" || !pathsMatch(r.Path, path) {
			continue
		}
		if r.Method == method {
			return
		}
		methods = append(methods, r.Method)
	}
	if len(methods) == 0 {
		pass.Reportf(pos, "client calls %s %s, but no handler registers that path", method, path)
		return
	}
	sort.Strings(methods)
	pass.Reportf(pos, "client calls %s %s, but the route is registered as %s %s",
		method, path, strings.Join(methods, "/"), path)
}

// newRequestFunc returns the index of the method and URL arguments when
// call is http.NewRequest or http.NewRequestWithContext, else (-1, -1).
func newRequestFunc(pkg *Package, call *ast.CallExpr) (methodArg, urlArg int) {
	fn := StaticCallee(pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "net/http" {
		return -1, -1
	}
	switch fn.Name() {
	case "NewRequest":
		return 0, 1
	case "NewRequestWithContext":
		return 1, 2
	}
	return -1, -1
}

// routeOperand finds the route-path constant inside a client URL
// expression: the whole expression if it folds to a route path, or a
// route-shaped constant operand of a `base + path` concatenation.
func routeOperand(pkg *Package, expr ast.Expr) (string, bool) {
	if s, ok := constString(pkg, expr); ok && routePathRE.MatchString(s) {
		return s, true
	}
	if bin, ok := expr.(*ast.BinaryExpr); ok && bin.Op == token.ADD {
		if s, ok := routeOperand(pkg, bin.Y); ok {
			return s, true
		}
		return routeOperand(pkg, bin.X)
	}
	return "", false
}

// jsonBoundaryArg returns the value argument when call is a direct
// encoding/json Marshal/Unmarshal/Encode/Decode, else nil.
func jsonBoundaryArg(pkg *Package, call *ast.CallExpr) ast.Expr {
	fn := StaticCallee(pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/json" {
		return nil
	}
	switch fn.Name() {
	case "Marshal", "Unmarshal", "Encode", "Decode":
		// Marshal(v) / Encode(v): arg 0; Unmarshal(data, v) / Decode(v):
		// the value is the last argument in every signature.
		if len(call.Args) == 0 {
			return nil
		}
		return call.Args[len(call.Args)-1]
	}
	return nil
}

// wireCheckJSONArg requires arg's module-local named-struct type to be
// a wire-versioned shape. Interface-typed arguments (the generic
// writeJSON/decodeJSON helpers) and non-struct types are out of scope.
func wireCheckJSONArg(pass *Pass, marked map[string]bool, arg ast.Expr) {
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Type == nil {
		return
	}
	t := tv.Type
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	pkgPath := named.Obj().Pkg().Path()
	if moduleRootOf(pkgPath) != moduleRootOf(pass.Path) {
		return
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return
	}
	key := pkgPath + "." + named.Obj().Name()
	if marked[key] {
		return
	}
	if m := pass.Opts.Wire; m != nil {
		if _, ok := m.Structs[key]; ok {
			return
		}
	}
	pass.Reportf(arg.Pos(),
		"%s crosses the HTTP boundary via encoding/json but is not an //ermvet:wire-versioned shape; mark it so both ends pin the same layout",
		key)
}

func runHTTPContract(pass *Pass) {
	if !httpcontractPkgs[pass.Types.Name()] {
		return
	}
	table := pass.Opts.Routes
	if table == nil {
		table = CollectRoutes([]*Package{pass.Package})
	}
	// Wire markers of the current package; cross-package shapes resolve
	// through the manifest in Opts.Wire.
	marked := make(map[string]bool)
	for _, ws := range collectWireStructs(pass.Package) {
		marked[pass.Path+"."+ws.name] = true
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// Registrations: the pattern must be constant and carry a
			// method, or clients cannot be resolved against it.
			if muxHandleFunc(pass.Package, call) {
				pat, ok := constString(pass.Package, call.Args[0])
				if !ok {
					pass.Reportf(call.Args[0].Pos(), "HandleFunc pattern is not a constant expression; httpcontract cannot resolve clients against it")
					return true
				}
				if method, path := parsePattern(pat); method == "" {
					pass.Reportf(call.Args[0].Pos(), "route %s is registered without a method; method-less patterns match every verb and cannot be contract-checked", path)
				}
				return true
			}
			// http.NewRequest*: the canonical client site.
			if mi, ui := newRequestFunc(pass.Package, call); mi >= 0 && len(call.Args) > ui {
				method, mok := constString(pass.Package, call.Args[mi])
				path, pok := routeOperand(pass.Package, call.Args[ui])
				if mok && pok {
					resolveRoute(pass, table, call.Args[ui].Pos(), method, path)
				} else if pok && !mok {
					pass.Reportf(call.Args[mi].Pos(), "request for %s is built with a non-constant method; pass the method explicitly so the (method, path) pair can be contract-checked", path)
				}
				return true
			}
			// The JSON boundary: structs crossing between the roles.
			if arg := jsonBoundaryArg(pass.Package, call); arg != nil {
				wireCheckJSONArg(pass, marked, arg)
				return true
			}
			// Fan-out helpers: any other call carrying a route-path
			// constant must also carry a constant method, and the pair
			// must resolve.
			var method, path string
			var havePath bool
			var pathPos token.Pos
			for _, arg := range call.Args {
				if s, ok := routeOperand(pass.Package, arg); ok && !havePath {
					path, havePath, pathPos = s, true, arg.Pos()
				} else if s, ok := constString(pass.Package, arg); ok && httpMethods[s] {
					method = s
				}
			}
			if !havePath {
				return true
			}
			if method == "" {
				pass.Reportf(pathPos, "route %s is passed with no constant HTTP method in the same call; thread the method alongside the path so the pair can be contract-checked", path)
				return true
			}
			resolveRoute(pass, table, pathPos, method, path)
			return true
		})
	}
}
