package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockFlow is the path-sensitive upgrade of guardedby: it runs a
// lockset dataflow over each function's CFG and reports
//
//   - a guarded-field access on a path where the annotated mutex is not
//     held (released too early, or never acquired on that branch) — in
//     functions that do lock the mutex somewhere, so the purely
//     function-granular "never locks at all" case stays guardedby's;
//   - a lock still held on a return path (the classic missed unlock on
//     an early error return);
//   - a second Lock/RLock of a mutex already held on the path
//     (self-deadlock);
//   - copying a value whose type contains a sync.Mutex/RWMutex.
//
// Locks are identified by their receiver chain ("s.dictMu", "m.mu"), the
// same syntactic identity guardedby uses; aliasing through assignment is
// invisible, which under-reports but never invents a finding about code
// that follows the repo's direct-receiver locking idiom.
var LockFlow = &Check{
	Name: "lockflow",
	Doc:  "path-sensitive locking: no guarded access after Unlock, no lock held at return, no double-lock, no mutex copies",
	Run:  runLockFlow,
}

// lockMode distinguishes write locks from read locks.
type lockMode uint8

const (
	lockWrite lockMode = iota
	lockRead
)

// lockset is one path's held locks: chain → mode. Locksets are small
// (nesting two mutexes is already rare), so copying maps per event is
// fine.
type lockset map[string]lockMode

func (ls lockset) clone() lockset {
	c := make(lockset, len(ls))
	for k, v := range ls {
		c[k] = v
	}
	return c
}

// key is the canonical string form used to deduplicate locksets inside
// a dataflow state.
func (ls lockset) key() string {
	chains := make([]string, 0, len(ls))
	for c, m := range ls {
		if m == lockRead {
			c += ":R"
		}
		chains = append(chains, c)
	}
	sort.Strings(chains)
	return strings.Join(chains, "|")
}

// lockState is the set of locksets live at a program point — one per
// distinguishable path. maxLocksets bounds it; a function exceeding the
// bound (pathological branching on lock operations) is skipped rather
// than analysed imprecisely.
type lockState map[string]lockset

const maxLocksets = 64

func (st lockState) add(ls lockset) bool {
	k := ls.key()
	if _, ok := st[k]; ok {
		return false
	}
	st[k] = ls
	return true
}

// lockEvent is one lock-relevant operation inside a CFG node.
type lockEvent struct {
	kind  int // 0 acquire, 1 release, 2 guarded access
	chain string
	mode  lockMode
	// mu is the annotated mutex chain a guarded access requires.
	mu    string
	expr  string
	pos   token.Pos
	inDef bool // the event sits inside a defer statement
}

const (
	evAcquire = iota
	evRelease
	evAccess
)

func runLockFlow(pass *Pass) {
	guarded := guardedFields(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			analyzeLockFlow(pass, fn.Name.Name, fn.Body, guarded)
			// Nested function literals are separate flow units: their
			// lock operations do not leak into the enclosing frame, and
			// their own return paths are checked independently.
			forEachFuncLit(fn.Body, func(lit *ast.FuncLit) {
				analyzeLockFlow(pass, fn.Name.Name+" (func literal)", lit.Body, guarded)
			})
		}
		checkMutexCopies(pass, f)
	}
}

// guardedFields resolves the package's "guarded by" annotations to
// field objects, silently skipping the malformed ones (guardedby
// reports those).
func guardedFields(pass *Pass) map[*types.Var]string {
	guarded := make(map[*types.Var]string)
	for _, f := range pass.Files {
		for _, ann := range GuardedByAnnotations(f) {
			obj := pass.Types.Scope().Lookup(ann.Struct)
			if obj == nil {
				continue
			}
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			var fieldVar, muVar *types.Var
			for i := 0; i < st.NumFields(); i++ {
				switch v := st.Field(i); v.Name() {
				case ann.Field:
					fieldVar = v
				case ann.Mutex:
					muVar = v
				}
			}
			if fieldVar != nil && muVar != nil && isMutex(muVar.Type()) {
				guarded[fieldVar] = ann.Mutex
			}
		}
	}
	return guarded
}

// forEachFuncLit visits every function literal under body, including
// literals nested in other literals.
func forEachFuncLit(body *ast.BlockStmt, visit func(*ast.FuncLit)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			visit(lit)
		}
		return true
	})
}

// analyzeLockFlow runs the lockset dataflow over one function body.
func analyzeLockFlow(pass *Pass, fnName string, body *ast.BlockStmt, guarded map[*types.Var]string) {
	cfg := BuildCFG(body)

	// Per-block event lists, extracted once. A block with no events and
	// no return still participates in propagation.
	events := make([][]lockEvent, len(cfg.Blocks))
	everAcquired := make(map[string]bool)
	for i, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			events[i] = append(events[i], nodeLockEvents(pass, n, guarded)...)
		}
		for _, ev := range events[i] {
			if ev.kind == evAcquire {
				everAcquired[ev.chain] = true
			}
		}
	}

	// Deferred releases run at function exit on every path; treating
	// them flow-insensitively (a conditional defer counts) only
	// suppresses findings, never invents them.
	deferred := make(map[string]bool)
	for _, call := range cfg.Defers {
		if chain, _, ok := lockCall(pass.Package, call); ok {
			deferred[chain] = true
		}
	}
	// Deferred function literals that unlock (defer func() { mu.Unlock() }())
	// count the same way.
	for _, call := range cfg.Defers {
		if lit, ok := call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					if chain, kind, ok := lockCall(pass.Package, c); ok && kind == evRelease {
						deferred[chain] = true
					}
				}
				return true
			})
		}
	}

	type finding struct {
		pos token.Pos
		msg string
	}
	seen := make(map[string]bool)
	var findings []finding
	reportOnce := func(pos token.Pos, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		k := fmt.Sprint(int(pos)) + msg
		if !seen[k] {
			seen[k] = true
			findings = append(findings, finding{pos, msg})
		}
	}

	// checkReturn flags locks still held when a path leaves the
	// function, net of deferred releases.
	checkReturn := func(ls lockset, pos token.Pos) {
		chains := make([]string, 0, len(ls))
		for chain := range ls {
			if !deferred[chain] {
				chains = append(chains, chain)
			}
		}
		sort.Strings(chains)
		for _, chain := range chains {
			reportOnce(pos, "%s is still locked when %s returns on this path; unlock before returning or defer the unlock", chain, fnName)
		}
	}

	// apply runs one block's events over one incoming lockset, returning
	// the outgoing lockset (or nil to abandon the path).
	apply := func(blkIdx int, in lockset) lockset {
		ls := in.clone()
		for _, ev := range events[blkIdx] {
			switch ev.kind {
			case evAcquire:
				if ev.inDef {
					continue // a deferred Lock (if any) runs at exit; ignore
				}
				if held, ok := ls[ev.chain]; ok && !(held == lockRead && ev.mode == lockRead) {
					reportOnce(ev.pos, "%s locked again in %s while already held on this path (self-deadlock)", ev.chain, fnName)
				}
				ls[ev.chain] = ev.mode
			case evRelease:
				if ev.inDef {
					continue // deferred releases are handled at return
				}
				delete(ls, ev.chain)
			case evAccess:
				want := ev.chain
				if _, held := ls[want]; !held && everAcquired[want] {
					reportOnce(ev.pos, "%s accessed in %s on a path where %s is not held (released too early or never locked on this branch); field is annotated \"guarded by %s\"",
						ev.expr, fnName, want, ev.mu)
				}
			}
		}
		blk := cfg.Blocks[blkIdx]
		if blk.Return != nil {
			checkReturn(ls, blk.Return.Pos())
		}
		return ls
	}

	// Worklist iteration to a fixpoint over the lockset-set lattice.
	states := make([]lockState, len(cfg.Blocks))
	for i := range states {
		states[i] = make(lockState)
	}
	if !states[cfg.Entry.Index].add(lockset{}) {
		return
	}
	work := []int{cfg.Entry.Index}
	processed := make(map[string]bool) // blkIdx:locksetKey already applied
	for len(work) > 0 {
		idx := work[0]
		work = work[1:]
		blk := cfg.Blocks[idx]
		for _, in := range orderedLocksets(states[idx]) {
			pk := fmt.Sprintf("%d:%s", idx, in.key())
			if processed[pk] {
				continue
			}
			processed[pk] = true
			out := apply(idx, in)
			for _, succ := range blk.Succs {
				if len(states[succ.Index]) >= maxLocksets {
					return // bail: pathological state growth
				}
				if states[succ.Index].add(out) {
					work = append(work, succ.Index)
				}
			}
			// A block that falls off the end of the function body edges
			// into Exit; its held locks are checked there via the edge,
			// so check Exit in-states once they stabilise below.
		}
	}
	// Explicit returns were checked at their ReturnStmt inside apply;
	// fall-through exits (a path reaching the closing brace) are the
	// blocks edging into Exit without a Return — re-walk their
	// out-states and flag at the brace. reportOnce dedups the re-walk.
	for idx, blk := range cfg.Blocks {
		if blk == cfg.Exit || blk.Return != nil {
			continue
		}
		exits := false
		for _, s := range blk.Succs {
			if s == cfg.Exit {
				exits = true
			}
		}
		if !exits {
			continue
		}
		for _, in := range orderedLocksets(states[idx]) {
			checkReturn(apply(idx, in), body.Rbrace)
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		if findings[i].pos != findings[j].pos {
			return findings[i].pos < findings[j].pos
		}
		return findings[i].msg < findings[j].msg
	})
	for _, f := range findings {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

// orderedLocksets returns the state's locksets in deterministic order.
func orderedLocksets(st lockState) []lockset {
	keys := make([]string, 0, len(st))
	for k := range st {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]lockset, len(keys))
	for i, k := range keys {
		out[i] = st[k]
	}
	return out
}

// nodeLockEvents extracts the lock-relevant events of one CFG node, in
// source order, without descending into nested function literals.
func nodeLockEvents(pass *Pass, node ast.Node, guarded map[*types.Var]string) []lockEvent {
	var evs []lockEvent
	inDefer := false
	if _, ok := node.(*ast.DeferStmt); ok {
		inDefer = true
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if chain, kind, ok := lockCall(pass.Package, n); ok {
				mode := lockWrite
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "RLock" {
					mode = lockRead
				}
				evs = append(evs, lockEvent{kind: kind, chain: chain, mode: mode, pos: n.Pos(), inDef: inDefer})
				return false // the receiver chain is not a guarded access
			}
		case *ast.SelectorExpr:
			sel := pass.Info.Selections[n]
			if sel == nil || sel.Kind() != types.FieldVal {
				return true
			}
			field, ok := sel.Obj().(*types.Var)
			if !ok {
				return true
			}
			mu, ok := guarded[field]
			if !ok {
				return true
			}
			evs = append(evs, lockEvent{
				kind:  evAccess,
				chain: types.ExprString(n.X) + "." + mu,
				mu:    mu,
				expr:  types.ExprString(n),
				pos:   n.Sel.Pos(),
				inDef: inDefer,
			})
		}
		return true
	})
	return evs
}

// lockCall recognises <chain>.Lock/RLock/Unlock/RUnlock calls on a
// sync.Mutex or sync.RWMutex, returning the chain and whether the call
// acquires or releases.
func lockCall(pkg *Package, call *ast.CallExpr) (chain string, kind int, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = evAcquire
	case "Unlock", "RUnlock":
		kind = evRelease
	default:
		return "", 0, false
	}
	tv, okT := pkg.Info.Types[sel.X]
	if !okT || !isMutex(tv.Type) {
		return "", 0, false
	}
	return types.ExprString(sel.X), kind, true
}

// checkMutexCopies flags assignments and call arguments that copy a
// value whose type transitively contains a sync.Mutex or sync.RWMutex
// (pointers don't copy their pointee, so *T is always fine). Fresh
// composite literals and address-taking are not copies of a live lock.
func checkMutexCopies(pass *Pass, f *ast.File) {
	flag := func(e ast.Expr, what string) {
		switch ast.Unparen(e).(type) {
		case *ast.CompositeLit, *ast.UnaryExpr, *ast.CallExpr, *ast.FuncLit, *ast.BasicLit:
			return // a fresh value or an address, not a copy of a live lock
		}
		tv, ok := pass.Info.Types[e]
		if !ok || tv.Type == nil {
			return
		}
		if containsMutex(tv.Type, 0) {
			pass.Reportf(e.Pos(), "%s copies %s, whose type %s contains a mutex; copy a pointer to it instead", what, types.ExprString(e), tv.Type)
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				flag(rhs, "assignment")
			}
		case *ast.CallExpr:
			if _, _, isLock := lockCall(pass.Package, n); isLock {
				return true
			}
			for _, arg := range n.Args {
				flag(arg, "call argument")
			}
		}
		return true
	})
}

// containsMutex reports whether t transitively contains a sync.Mutex or
// sync.RWMutex by value. A *sync.Mutex field is fine: copying the
// pointer shares the lock rather than forking it.
func containsMutex(t types.Type, depth int) bool {
	if depth > 10 {
		return false
	}
	if _, isPtr := t.(*types.Pointer); !isPtr && isMutex(t) {
		return true
	}
	switch t := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsMutex(t.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsMutex(t.Elem(), depth+1)
	}
	return false
}
