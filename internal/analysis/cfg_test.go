package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"erminer/internal/analysis"
)

// buildCFG parses src (a file body without the package clause), finds
// the function named fn and builds its CFG.
func buildCFG(t *testing.T, src, fn string) *analysis.CFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return analysis.BuildCFG(fd.Body)
		}
	}
	t.Fatalf("no function %q in source", fn)
	return nil
}

// preds returns the predecessor blocks of blk.
func preds(cfg *analysis.CFG, blk *analysis.CFGBlock) []*analysis.CFGBlock {
	var out []*analysis.CFGBlock
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			if s == blk {
				out = append(out, b)
			}
		}
	}
	return out
}

// returnBlocks returns the blocks terminated by a return statement.
func returnBlocks(cfg *analysis.CFG) []*analysis.CFGBlock {
	var out []*analysis.CFGBlock
	for _, b := range cfg.Blocks {
		if b.Return != nil {
			out = append(out, b)
		}
	}
	return out
}

func TestCFGStraightLine(t *testing.T) {
	cfg := buildCFG(t, `
func f() int {
	x := 1
	x++
	return x
}`, "f")
	if len(cfg.Blocks) != 2 {
		t.Fatalf("got %d blocks, want 2 (entry + exit)", len(cfg.Blocks))
	}
	if cfg.Entry.Return == nil {
		t.Error("entry block should end in the return")
	}
	if len(cfg.Entry.Succs) != 1 || cfg.Entry.Succs[0] != cfg.Exit {
		t.Errorf("entry should edge only into exit, got %d succs", len(cfg.Entry.Succs))
	}
	if len(cfg.Entry.Nodes) != 3 {
		t.Errorf("entry should hold 3 nodes (assign, incdec, return), got %d", len(cfg.Entry.Nodes))
	}
}

func TestCFGIfElse(t *testing.T) {
	cfg := buildCFG(t, `
func f(b bool) int {
	if b {
		return 1
	}
	return 2
}`, "f")
	if len(cfg.Entry.Succs) != 2 {
		t.Fatalf("if header should have 2 successors, got %d", len(cfg.Entry.Succs))
	}
	rets := returnBlocks(cfg)
	if len(rets) != 2 {
		t.Fatalf("want 2 return blocks, got %d", len(rets))
	}
	for _, r := range rets {
		found := false
		for _, s := range r.Succs {
			if s == cfg.Exit {
				found = true
			}
		}
		if !found {
			t.Errorf("return block %d does not edge into exit", r.Index)
		}
	}
}

func TestCFGForLoop(t *testing.T) {
	cfg := buildCFG(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		_ = i
	}
}`, "f")
	// The loop header is the entry's sole successor; it branches to the
	// done block and the body, and the post block edges back to it.
	if len(cfg.Entry.Succs) != 1 {
		t.Fatalf("entry should edge only into the loop header, got %d succs", len(cfg.Entry.Succs))
	}
	header := cfg.Entry.Succs[0]
	if len(header.Succs) != 2 {
		t.Fatalf("loop header should have 2 successors (done, body), got %d", len(header.Succs))
	}
	if len(preds(cfg, header)) != 2 {
		t.Errorf("loop header should have 2 predecessors (entry, post), got %d", len(preds(cfg, header)))
	}
	if len(preds(cfg, cfg.Exit)) != 1 {
		t.Errorf("exit should be reached only from the done block, got %d preds", len(preds(cfg, cfg.Exit)))
	}
}

func TestCFGInfiniteLoopWithBreak(t *testing.T) {
	// for{} only falls through via the break; the done block's single
	// predecessor is the body block containing it.
	cfg := buildCFG(t, `
func f() {
	for {
		break
	}
}`, "f")
	if got := len(preds(cfg, cfg.Exit)); got != 1 {
		t.Fatalf("exit should have exactly 1 predecessor (the break's done block), got %d", got)
	}
}

func TestCFGInfiniteLoopNoBreak(t *testing.T) {
	// for{} with no break never reaches the function exit.
	cfg := buildCFG(t, `
func f() {
	for {
		_ = 1
	}
}`, "f")
	if got := len(preds(cfg, cfg.Exit)); got != 0 {
		t.Fatalf("exit of a non-breaking for{} should be unreachable, got %d preds", got)
	}
}

func TestCFGPanicEndsPath(t *testing.T) {
	cfg := buildCFG(t, `
func f() {
	defer cleanup()
	panic("boom")
}`, "f")
	if len(cfg.Defers) != 1 {
		t.Fatalf("want 1 recorded defer, got %d", len(cfg.Defers))
	}
	if got := len(preds(cfg, cfg.Exit)); got != 0 {
		t.Errorf("panic should end the path before the exit block, got %d preds", got)
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	cfg := buildCFG(t, `
func f(x int) int {
	switch x {
	case 1:
		x++
		fallthrough
	case 2:
		x--
	default:
		x = 0
	}
	return x
}`, "f")
	// The header (entry) fans out to the three clause entries only — the
	// default clause removes the header→join shortcut.
	if got := len(cfg.Entry.Succs); got != 3 {
		t.Fatalf("switch header should have 3 successors (one per clause), got %d", got)
	}
	rets := returnBlocks(cfg)
	if len(rets) != 1 {
		t.Fatalf("want exactly 1 return block (the join), got %d", len(rets))
	}
	// The join is fed by the fallthrough target and the default clause,
	// but not by the fallthrough source (its body chains onward instead).
	if got := len(preds(cfg, rets[0])); got != 2 {
		t.Errorf("join should have 2 predecessors (case 2 via fallthrough chain, default), got %d", got)
	}
}

func TestCFGSelect(t *testing.T) {
	cfg := buildCFG(t, `
func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case <-b:
	}
	return 0
}`, "f")
	if got := len(cfg.Entry.Succs); got != 2 {
		t.Fatalf("select should fan out to 2 comm clauses, got %d", got)
	}
	if got := len(returnBlocks(cfg)); got != 2 {
		t.Errorf("want 2 return blocks (case a, final return), got %d", got)
	}
}

func TestCFGBlocksWellFormed(t *testing.T) {
	// Structural sanity on a function mixing most constructs: blocks are
	// indexed by position, the exit is last and empty, and every edge
	// stays inside the graph.
	cfg := buildCFG(t, `
func f(xs []int, m map[string]int) int {
	total := 0
	for i, x := range xs {
		if x < 0 {
			continue
		}
		total += i
	}
	for k := range m {
		if k == "stop" {
			break
		}
	}
	switch {
	case total > 10:
		total = 10
	}
	return total
}`, "f")
	if cfg.Blocks[len(cfg.Blocks)-1] != cfg.Exit {
		t.Error("exit block must be last in Blocks")
	}
	if len(cfg.Exit.Nodes) != 0 || len(cfg.Exit.Succs) != 0 {
		t.Error("exit block must be empty with no successors")
	}
	for i, b := range cfg.Blocks {
		if b.Index != i {
			t.Errorf("block at position %d has Index %d", i, b.Index)
		}
		for _, s := range b.Succs {
			if s.Index < 0 || s.Index >= len(cfg.Blocks) || cfg.Blocks[s.Index] != s {
				t.Errorf("block %d has a successor outside the graph", i)
			}
		}
	}
}
