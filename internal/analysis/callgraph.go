package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CallGraph is a conservative static call graph over the analysed
// packages: an edge per direct call whose callee resolves to a declared
// function or concrete method at type-check time. Calls through
// function values, interface methods and reflection contribute no
// edges, so reachability is an under-approximation — the right
// direction for its consumers (goroleak treats "no join signal found"
// as a finding; an edge it cannot see can only make the check louder,
// never silently green).
type CallGraph struct {
	// callees maps a caller to its callees, deduplicated and ordered by
	// full name for deterministic traversal.
	callees map[*types.Func][]*types.Func
	// direct is callees restricted to calls made outside any nested
	// function literal. allocbudget traverses these edges: a literal's
	// body only runs when the literal is invoked, and creating the
	// literal is itself a flagged allocation, so the budget treats
	// closures as opaque boundaries (like cfg.go treats them for flow).
	direct map[*types.Func][]*types.Func
	// decls maps a function object to its syntax, when the declaration
	// is in one of the analysed packages.
	decls map[*types.Func]*ast.FuncDecl
}

// BuildCallGraph constructs the call graph of the given packages. The
// graph spans all of them: a call from internal/serve into
// internal/rlminer is an edge when both packages are in pkgs.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		callees: make(map[*types.Func][]*types.Func),
		direct:  make(map[*types.Func][]*types.Func),
		decls:   make(map[*types.Func]*ast.FuncDecl),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				caller, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.decls[caller] = fd
				// Calls lexically inside nested function literals count
				// toward callees (full reachability) but not direct
				// (closure-opaque reachability).
				var lits []*ast.FuncLit
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						lits = append(lits, lit)
					}
					return true
				})
				inLit := func(pos token.Pos) bool {
					for _, lit := range lits {
						if lit.Body.Pos() <= pos && pos < lit.Body.End() {
							return true
						}
					}
					return false
				}
				set := make(map[*types.Func]bool)
				directSet := make(map[*types.Func]bool)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := StaticCallee(pkg.Info, call); callee != nil {
						set[callee] = true
						if !inLit(call.Pos()) {
							directSet[callee] = true
						}
					}
					return true
				})
				g.callees[caller] = sortedFuncs(set)
				g.direct[caller] = sortedFuncs(directSet)
			}
		}
	}
	return g
}

func sortedFuncs(set map[*types.Func]bool) []*types.Func {
	fns := make([]*types.Func, 0, len(set))
	for fn := range set {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool {
		return fns[i].FullName() < fns[j].FullName()
	})
	return fns
}

// StaticCallee resolves the function or concrete method a call
// expression statically invokes, or nil for dynamic calls (function
// values, interface dispatch), conversions and builtins.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			if fn, ok := sel.Obj().(*types.Func); ok {
				// Interface dispatch is dynamic; everything else (a
				// concrete method value) is static.
				if !isInterfaceRecv(fn) {
					return fn
				}
			}
			return nil
		}
		// Package-qualified call: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func isInterfaceRecv(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// Callees returns fn's direct callees, in deterministic order.
func (g *CallGraph) Callees(fn *types.Func) []*types.Func { return g.callees[fn] }

// DirectCallees returns the callees fn calls outside any nested
// function literal, in deterministic order. See the direct field for
// why allocbudget wants this narrower edge set.
func (g *CallGraph) DirectCallees(fn *types.Func) []*types.Func { return g.direct[fn] }

// Decls returns every function with a declaration in the analysed
// packages, sorted by full name for deterministic traversal.
func (g *CallGraph) Decls() []*types.Func {
	set := make(map[*types.Func]bool, len(g.decls))
	for fn := range g.decls {
		set[fn] = true
	}
	return sortedFuncs(set)
}

// DeclOf returns the syntax of fn's declaration, or nil when fn was
// declared outside the analysed packages.
func (g *CallGraph) DeclOf(fn *types.Func) *ast.FuncDecl { return g.decls[fn] }

// Reachable returns every function reachable from fn through static
// call edges, including fn itself, in deterministic (BFS) order.
func (g *CallGraph) Reachable(fn *types.Func) []*types.Func {
	seen := map[*types.Func]bool{fn: true}
	order := []*types.Func{fn}
	for i := 0; i < len(order); i++ {
		for _, callee := range g.callees[order[i]] {
			if !seen[callee] {
				seen[callee] = true
				order = append(order, callee)
			}
		}
	}
	return order
}
