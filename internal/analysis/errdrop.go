package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags calls whose error result is silently discarded: a call
// with an error among its results used as a bare statement (including
// deferred — the classic lost fsync/Close on a checkpoint write path),
// and assignments that blank every result (`_ = f()`). Keeping the drop
// requires an //ermvet:ignore errdrop <reason> directive, so every
// ignored error is a written-down decision.
//
// Deliberately NOT flagged, to keep the gate signal-dense:
//
//   - partial blanking (`n, _ := w.Write(p)`) — the author visibly
//     handled the call and chose per-result;
//   - the fmt print family — stdout/stderr chatter, where checking is
//     ceremony (the paths that must not lose bytes use explicit
//     writers whose errors the other rules still cover);
//   - (*bytes.Buffer) and (*strings.Builder) writes, which are
//     documented to never return an error;
//   - go statements: the goroutine's result is inherently detached
//     (goroleak polices the goroutine itself).
var ErrDrop = &Check{
	Name: "errdrop",
	Doc:  "no silently dropped error results; `_ =` and bare calls need an //ermvet:ignore errdrop <reason>",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDroppedCall(pass, call, "")
				}
			case *ast.DeferStmt:
				checkDroppedCall(pass, n.Call, "deferred ")
			case *ast.AssignStmt:
				if !allBlank(n.Lhs) || len(n.Rhs) != 1 {
					return true
				}
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
					checkDroppedCall(pass, call, "blank-assigned ")
				}
			}
			return true
		})
	}
}

func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(lhs) > 0
}

func checkDroppedCall(pass *Pass, call *ast.CallExpr, how string) {
	if !callReturnsError(pass, call) || exemptCallee(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "%scall to %s drops its error result; handle it or suppress with //ermvet:ignore errdrop <reason>",
		how, types.ExprString(ast.Unparen(call.Fun)))
}

// callReturnsError reports whether the call's results include an error.
func callReturnsError(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return false // conversion, not a call
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return false // builtin or type parameter
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}

// exemptCallee applies the deliberate exclusions: fmt's print family
// and the never-failing in-memory writers.
func exemptCallee(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// fmt.Print/Printf/Println/Fprint/Fprintf/Fprintln.
	if path, name, ok := pkgFuncCall(pass.Info, call); ok {
		return path == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint"))
	}
	// Methods of *bytes.Buffer and *strings.Builder.
	if s := pass.Info.Selections[sel]; s != nil {
		if fn, ok := s.Obj().(*types.Func); ok && fn.Pkg() != nil {
			recv := fn.Type().(*types.Signature).Recv()
			if recv != nil {
				t := recv.Type()
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
				}
				if named, ok := t.(*types.Named); ok {
					full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
					if full == "bytes.Buffer" || full == "strings.Builder" {
						return true
					}
				}
			}
		}
	}
	return false
}
