package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"erminer/internal/core"
	"erminer/internal/datagen"
	"erminer/internal/errgen"
	"erminer/internal/metrics"
	"erminer/internal/repair"
	"erminer/internal/report"
)

// Scalability is a supplementary experiment probing the paper's headline
// claim directly: RLMiner "scales well on the datasets with many
// attributes and large domains" (abstract). It sweeps the schema width
// and the attribute domain cardinality of a parametric synthetic world
// and reports each miner's time and F-measure. EnuMiner's enumeration
// space grows exponentially in the number of attributes and with the
// product of domain sizes; RLMiner's training budget is fixed.
func (c *Config) Scalability() error {
	// The sweep needs a dense-enough master join to be meaningful, so the
	// sizes are floored rather than scaled all the way down.
	f := c.Scale.sizeFactor()
	inputSize := maxInt(2000, int(10000*f))
	masterSize := maxInt(800, int(2000*f))

	buildInstance := func(spec datagen.SynthSpec, seed int64) (*Instance, error) {
		w := datagen.Synth(spec)
		ds, err := w.Build(datagen.Spec{
			InputSize: inputSize, MasterSize: masterSize,
			DuplicateRate: -1, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		clean := ds.Input.Clone()
		errgen.Inject(ds.Input, errgen.Config{
			Rate: 0.08,
			Rng:  rand.New(rand.NewSource(seed + 1000)),
		})
		return &Instance{
			Dataset: ds,
			Problem: &core.Problem{
				Input: ds.Input, Master: ds.Master, Match: ds.Match,
				Y: ds.Y, Ym: ds.Ym,
				SupportThreshold: ds.SupportThreshold,
			},
			Truth: errgen.TruthColumn(clean, ds.Y),
			Clean: clean,
		}, nil
	}

	run := func(title string, specs []datagen.SynthSpec, x func(datagen.SynthSpec) float64) error {
		quality := report.NewFigure(title+" — (a) F-Measure", "x")
		times := report.NewFigure(title+" — (b) Time cost (s)", "x")
		for _, spec := range specs {
			inst, err := buildInstance(spec, c.Seed)
			if err != nil {
				return err
			}
			for _, m := range []Method{MethodEnuMiner, MethodEnuMinerH3, MethodRLMiner} {
				miner := c.NewMiner(m, c.Seed)
				start := time.Now()
				res, err := miner.Mine(inst.Problem)
				if err != nil {
					return err
				}
				secs := time.Since(start).Seconds()
				ev := inst.Problem.NewEvaluator()
				fixes := repair.Apply(ev, res.RuleList())
				prf := metrics.Weighted(fixes.Pred, inst.Truth)
				quality.Add(string(m), x(spec), prf.F1)
				times.Add(string(m), x(spec), secs)
			}
		}
		quality.Render(c.Out)
		fmt.Fprintln(c.Out)
		times.Render(c.Out)
		fmt.Fprintln(c.Out)
		return nil
	}

	if err := run("Scalability (i): varying the number of attributes (domain 20)",
		[]datagen.SynthSpec{
			{NumAttrs: 4, DomainSize: 20},
			{NumAttrs: 6, DomainSize: 20},
			{NumAttrs: 8, DomainSize: 20},
			{NumAttrs: 10, DomainSize: 20},
		},
		func(s datagen.SynthSpec) float64 { return float64(s.NumAttrs) },
	); err != nil {
		return err
	}
	if err := run("Scalability (ii): varying the domain size (6 attributes)",
		[]datagen.SynthSpec{
			{NumAttrs: 6, DomainSize: 10},
			{NumAttrs: 6, DomainSize: 50},
			{NumAttrs: 6, DomainSize: 200},
			{NumAttrs: 6, DomainSize: 1000},
		},
		func(s datagen.SynthSpec) float64 { return float64(s.DomainSize) },
	); err != nil {
		return err
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
