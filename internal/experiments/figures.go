package experiments

import (
	"fmt"
	"math"
	"time"

	"erminer/internal/core"
	"erminer/internal/measure"
	"erminer/internal/metrics"
	"erminer/internal/report"
	"erminer/internal/rlminer"
)

// Figure2 reproduces the utility-function illustration (paper Figure 2):
// U(φ) grows linearly in Certainty at fixed Support, and saturates
// (log-squared) in Support at fixed Certainty.
func (c *Config) Figure2() error {
	fa := report.NewFigure("Figure 2(a): Utility vs Certainty (S = 1000, Q = 0)", "certainty")
	for _, cert := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
		fa.Add("U", cert, measure.Utility(1000, cert, 0))
	}
	fa.Render(c.Out)
	fmt.Fprintln(c.Out)

	fb := report.NewFigure("Figure 2(b): Utility vs Support (C = 1, Q = 0)", "support")
	for _, s := range []int{1, 10, 100, 1000, 10000, 100000} {
		fb.Add("U", float64(s), measure.Utility(s, 1, 0))
	}
	fb.Render(c.Out)
	return nil
}

// sweep runs a set of methods over instances produced per x value and
// renders the F-measure and time panels the paper's figures use.
func (c *Config) sweep(title, xlabel string, xs []float64,
	build func(x float64, seed int64) (*Instance, error),
	methods []Method) error {

	quality := report.NewFigure(title+" — (a) F-Measure", xlabel)
	times := report.NewFigure(title+" — (b) Time cost (s)", xlabel)
	for _, x := range xs {
		for _, m := range methods {
			var f1s, secs []float64
			for i := 0; i < c.repeats(); i++ {
				seed := c.Seed + int64(i)*101
				inst, err := build(x, seed)
				if err != nil {
					return err
				}
				res, err := c.RunOne(inst, m, seed)
				if err != nil {
					return err
				}
				f1s = append(f1s, res.PRF.F1)
				secs = append(secs, res.MineTime.Seconds())
			}
			mf, _ := metrics.MeanStd(f1s)
			mt, _ := metrics.MeanStd(secs)
			quality.Add(string(m), x, mf)
			times.Add(string(m), x, mt)
		}
	}
	quality.Render(c.Out)
	fmt.Fprintln(c.Out)
	times.Render(c.Out)
	return nil
}

// Figure6 reproduces the noise-rate sweep over Adult (paper Figure 6).
func (c *Config) Figure6() error {
	return c.sweep("Figure 6: Varying noise rate over Adult", "noise",
		[]float64{0, 0.05, 0.10, 0.15, 0.20},
		func(x float64, seed int64) (*Instance, error) {
			spec := NewInstanceSpec("adult", seed)
			spec.NoiseRate = x
			return c.BuildInstance(spec)
		},
		[]Method{MethodEnuMiner, MethodEnuMinerH3, MethodRLMiner})
}

// Figure7 reproduces the duplicate-rate sweep over Adult (paper
// Figure 7): d% of the input tuples correspond to master entities.
func (c *Config) Figure7() error {
	f := c.Scale.sizeFactor()
	return c.sweep("Figure 7: Varying duplicate rate over Adult", "dup-rate",
		[]float64{0.2, 0.4, 0.6, 0.8, 1.0},
		func(x float64, seed int64) (*Instance, error) {
			spec := NewInstanceSpec("adult", seed)
			spec.DuplicateRate = x
			spec.InputSize = int(10000 * f)
			spec.MasterSize = int(5000 * f)
			return c.BuildInstance(spec)
		},
		[]Method{MethodEnuMiner, MethodRLMiner})
}

// Figure8 reproduces the input-size sweep over Adult (paper Figure 8):
// input grows from 10k to 40k (scaled), master fixed.
func (c *Config) Figure8() error {
	f := c.Scale.sizeFactor()
	return c.sweep("Figure 8: Varying input data size over Adult", "input-size",
		[]float64{math.Round(10000 * f), math.Round(20000 * f), math.Round(30000 * f), math.Round(40000 * f)},
		func(x float64, seed int64) (*Instance, error) {
			spec := NewInstanceSpec("adult", seed)
			spec.InputSize = int(x)
			spec.MasterSize = int(5000 * f)
			return c.BuildInstance(spec)
		},
		[]Method{MethodEnuMiner, MethodEnuMinerH3, MethodRLMiner})
}

// Figure9 reproduces the master-size sweep over Adult (paper Figure 9):
// master grows from 1k to 5k (scaled), input fixed at 40k (scaled).
func (c *Config) Figure9() error {
	f := c.Scale.sizeFactor()
	return c.sweep("Figure 9: Varying master data size over Adult", "master-size",
		[]float64{math.Round(1000 * f), math.Round(2000 * f), math.Round(3000 * f), math.Round(4000 * f), math.Round(5000 * f)},
		func(x float64, seed int64) (*Instance, error) {
			spec := NewInstanceSpec("adult", seed)
			spec.InputSize = int(40000 * f)
			spec.MasterSize = int(x)
			return c.BuildInstance(spec)
		},
		[]Method{MethodEnuMiner, MethodEnuMinerH3, MethodRLMiner})
}

// incremental runs the paper's incremental-discovery protocol (Figures
// 10 and 11): the data is enriched in stages; EnuMiner and RLMiner
// restart from scratch at each stage while RLMiner-ft fine-tunes the
// previous stage's value network with a reduced step budget.
func (c *Config) incremental(title string, fracs []float64,
	build func(frac float64, seed int64) (*Instance, error)) error {

	quality := report.NewFigure(title+" — (a) F-Measure", "fraction")
	times := report.NewFigure(title+" — (b) Time cost (s)", "fraction")

	seed := c.Seed
	var prev *rlminer.Miner
	for _, frac := range fracs {
		inst, err := build(frac, seed)
		if err != nil {
			return err
		}
		for _, m := range []Method{MethodEnuMiner, MethodRLMiner} {
			res, err := c.RunOne(inst, m, seed)
			if err != nil {
				return err
			}
			quality.Add(string(m), frac, res.PRF.F1)
			times.Add(string(m), frac, res.MineTime.Seconds())
		}

		// RLMiner-ft: first stage trains from scratch; later stages
		// fine-tune the previous network.
		ft := rlminer.New(rlminer.Config{
			TrainSteps: c.Scale.trainSteps(),
			Seed:       seed,
		})
		var prf metrics.PRF
		var secs float64
		if prev == nil {
			res, err := c.timedMine(inst, ft, nil)
			if err != nil {
				return err
			}
			prf, secs = res.prf, res.seconds
		} else {
			res, err := c.timedMine(inst, ft, prev)
			if err != nil {
				return err
			}
			prf, secs = res.prf, res.seconds
		}
		prev = ft
		quality.Add("RLMiner-ft", frac, prf.F1)
		times.Add("RLMiner-ft", frac, secs)
	}

	quality.Render(c.Out)
	fmt.Fprintln(c.Out)
	times.Render(c.Out)
	return nil
}

type timedResult struct {
	prf     metrics.PRF
	seconds float64
}

// timedMine mines (fine-tuning from prev when prev != nil) and scores
// the repair.
func (c *Config) timedMine(inst *Instance, m *rlminer.Miner, prev *rlminer.Miner) (*timedResult, error) {
	start := time.Now()
	var rs *core.ResultSet
	var err error
	if prev == nil {
		rs, err = m.Mine(inst.Problem)
	} else {
		rs, err = m.MineFineTuned(inst.Problem, prev)
	}
	if err != nil {
		return nil, err
	}
	secs := time.Since(start).Seconds()
	return &timedResult{prf: Repair(inst, rs.Rules), seconds: secs}, nil
}

// Figure10 reproduces incremental input-data discovery (paper Figure 10).
func (c *Config) Figure10() error {
	f := c.Scale.sizeFactor()
	return c.incremental("Figure 10: Incremental input data over Adult",
		[]float64{0.5, 0.75, 1.0},
		func(frac float64, seed int64) (*Instance, error) {
			spec := NewInstanceSpec("adult", seed)
			spec.InputSize = int(40000 * f * frac)
			spec.MasterSize = int(5000 * f)
			return c.BuildInstance(spec)
		})
}

// Figure11 reproduces incremental master-data discovery (paper Figure 11).
func (c *Config) Figure11() error {
	f := c.Scale.sizeFactor()
	return c.incremental("Figure 11: Incremental master data over Adult",
		[]float64{0.5, 0.75, 1.0},
		func(frac float64, seed int64) (*Instance, error) {
			spec := NewInstanceSpec("adult", seed)
			spec.InputSize = int(40000 * f)
			spec.MasterSize = int(5000 * f * frac)
			return c.BuildInstance(spec)
		})
}

// Figure12 reproduces the training/inference cost report (paper
// Figure 12): per dataset, the from-scratch training cost, the fine-tune
// cost, and the inference cost of RLMiner.
func (c *Config) Figure12() error {
	t := report.NewTable("Figure 12: Training and inference time of RLMiner",
		"Dataset", "Train steps", "Train time (s)",
		"Fine-tune steps", "Fine-tune time (s)",
		"Inference steps", "Inference time (s)")
	for _, name := range []string{"adult", "covid", "nursery", "location"} {
		inst, err := c.BuildInstance(NewInstanceSpec(name, c.Seed))
		if err != nil {
			return err
		}
		scratch := rlminer.New(rlminer.Config{
			TrainSteps: c.Scale.trainSteps(),
			Seed:       c.Seed,
		})
		if _, err := scratch.Mine(inst.Problem); err != nil {
			return err
		}
		ss := scratch.Stats()

		// Fine-tune on a freshly enriched instance.
		inst2, err := c.BuildInstance(NewInstanceSpec(name, c.Seed+7))
		if err != nil {
			return err
		}
		ft := rlminer.New(rlminer.Config{Seed: c.Seed + 7})
		if _, err := ft.MineFineTuned(inst2.Problem, scratch); err != nil {
			return err
		}
		fs := ft.Stats()

		t.AddRow(name,
			fmt.Sprintf("%d", ss.TrainSteps),
			fmt.Sprintf("%.2f", ss.TrainTime.Seconds()),
			fmt.Sprintf("%d", fs.TrainSteps),
			fmt.Sprintf("%.2f", fs.TrainTime.Seconds()),
			fmt.Sprintf("%d", ss.InferenceSteps),
			fmt.Sprintf("%.3f", ss.InferTime.Seconds()))
	}
	t.Render(c.Out)
	return nil
}
