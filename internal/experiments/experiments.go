// Package experiments reproduces the paper's evaluation section (§V):
// every table and figure has a driver here that regenerates the same
// rows/series layout over the synthetic datasets of package datagen. The
// experiment index in DESIGN.md §3 maps each driver to its paper
// artifact; EXPERIMENTS.md records paper-vs-measured results.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"erminer/internal/cfd"
	"erminer/internal/core"
	"erminer/internal/datagen"
	"erminer/internal/enuminer"
	"erminer/internal/errgen"
	"erminer/internal/metrics"
	"erminer/internal/relation"
	"erminer/internal/repair"
	"erminer/internal/rlminer"
)

// Scale selects the data sizes the experiments run at.
type Scale int

const (
	// ScaleBench is small enough for `go test -bench` on a laptop.
	ScaleBench Scale = iota
	// ScaleDefault is the mid-size default of cmd/experiments.
	ScaleDefault
	// ScalePaper is the paper's Table I sizes.
	ScalePaper
)

// ParseScale maps a flag string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "bench":
		return ScaleBench, nil
	case "default", "":
		return ScaleDefault, nil
	case "paper":
		return ScalePaper, nil
	default:
		return 0, fmt.Errorf("experiments: unknown scale %q (want bench, default or paper)", s)
	}
}

// sizeFactor returns the fraction of the paper's data sizes used.
func (s Scale) sizeFactor() float64 {
	switch s {
	case ScaleBench:
		return 0.10
	case ScaleDefault:
		return 0.25
	default:
		return 1.0
	}
}

// trainSteps returns the RLMiner training budget at this scale. Even the
// bench scale keeps the near-paper budget: with fewer than ~4000 steps
// the agent's exploration does not reliably cover the Adult dataset's
// ~80-dimensional action space.
func (s Scale) trainSteps() int {
	if s == ScalePaper {
		return 5000
	}
	return 4000
}

// Config parameterises a harness run.
type Config struct {
	// Scale selects the data sizes.
	Scale Scale
	// Repeats is the number of repeated runs per cell (the paper uses
	// 5). Zero means scale-dependent: 2 at bench scale, 3 at default,
	// 5 at paper scale.
	Repeats int
	// Seed is the base random seed; repeat i uses Seed+i.
	Seed int64
	// Out receives the rendered tables and figures.
	Out io.Writer
}

func (c *Config) repeats() int {
	if c.Repeats > 0 {
		return c.Repeats
	}
	switch c.Scale {
	case ScaleBench:
		return 2
	case ScaleDefault:
		return 3
	default:
		return 5
	}
}

// Method identifies a discovery algorithm in the experiments.
type Method string

// The methods compared in the paper's evaluation.
const (
	MethodCTANE      Method = "CTANE"
	MethodEnuMiner   Method = "EnuMiner"
	MethodEnuMinerH3 Method = "EnuMinerH3"
	MethodRLMiner    Method = "RLMiner"
)

// Instance is one materialised experiment input: a dirty input relation
// with known truth, its master data and the mining problem.
type Instance struct {
	Dataset *datagen.Dataset
	Problem *core.Problem
	// Truth holds the clean Y codes of every input tuple.
	Truth []int32
	// Clean is the input relation before error injection.
	Clean *relation.Relation
}

// InstanceSpec selects what to build.
type InstanceSpec struct {
	Name                  string
	InputSize, MasterSize int     // 0 = scale default
	NoiseRate             float64 // <0 = dataset default
	DuplicateRate         float64 // <0 = independent sampling
	Seed                  int64
	TopK                  int // 0 = paper default (50)
}

// NewInstanceSpec returns the default spec for a dataset: scale-default
// sizes, dataset-default noise, independent master/input samples.
func NewInstanceSpec(name string, seed int64) InstanceSpec {
	return InstanceSpec{Name: name, NoiseRate: -1, DuplicateRate: -1, Seed: seed}
}

// defaultNoise returns the paper-default cell noise rate per dataset.
func defaultNoise(name string) float64 {
	if name == "location" {
		// Location carries real, labelled errors rather than uniform
		// injected noise; see BuildInstance.
		return 0
	}
	return 0.10
}

// BuildInstance materialises a dataset at the configured scale and
// injects errors.
func (c *Config) BuildInstance(spec InstanceSpec) (*Instance, error) {
	w, err := datagen.ByName(spec.Name)
	if err != nil {
		return nil, err
	}
	f := c.Scale.sizeFactor()
	inputSize := spec.InputSize
	if inputSize == 0 {
		inputSize = int(float64(w.PaperInputSize) * f)
	}
	masterSize := spec.MasterSize
	if masterSize == 0 {
		masterSize = int(float64(w.PaperMasterSize) * f)
		if spec.Name == "location" {
			// The Location master data is the government postcode
			// directory — a fixed reference table the paper never
			// subsamples. Shrinking it destroys join coverage (a shop's
			// county simply has no directory entry), which is not a
			// property of the algorithms under test.
			masterSize = w.PaperMasterSize
		}
	}
	dspec := datagen.Spec{
		InputSize:     inputSize,
		MasterSize:    masterSize,
		DuplicateRate: spec.DuplicateRate,
		Seed:          spec.Seed,
	}
	ds, err := w.Build(dspec)
	if err != nil {
		return nil, err
	}

	clean := ds.Input.Clone()
	rng := rand.New(rand.NewSource(spec.Seed + 1000))
	noise := spec.NoiseRate
	if noise < 0 {
		noise = defaultNoise(spec.Name)
	}
	if spec.Name == "location" && spec.NoiseRate < 0 {
		// The paper's Location data is dirty as found: 14.7% missing
		// postcodes plus 19.6% real-world errors in the raw data. We
		// reproduce that error profile instead of uniform noise.
		errgen.Inject(ds.Input, errgen.Config{
			Rate: 0.147, Cols: []int{ds.Y},
			Weights: [4]float64{1, 0, 0, 0},
			Rng:     rng,
		})
		errgen.Inject(ds.Input, errgen.Config{Rate: 0.025, Rng: rng})
	} else if noise > 0 {
		errgen.Inject(ds.Input, errgen.Config{Rate: noise, Rng: rng})
	}

	return &Instance{
		Dataset: ds,
		Problem: &core.Problem{
			Input:            ds.Input,
			Master:           ds.Master,
			Match:            ds.Match,
			Y:                ds.Y,
			Ym:               ds.Ym,
			SupportThreshold: ds.SupportThreshold,
			TopK:             spec.TopK,
			Truth:            nil, // approximate Quality, per §V-A1
		},
		Truth: errgen.TruthColumn(clean, ds.Y),
		Clean: clean,
	}, nil
}

// NewMiner constructs the named method's miner.
func (c *Config) NewMiner(m Method, seed int64) core.Miner {
	switch m {
	case MethodCTANE:
		return cfd.New(cfd.Config{})
	case MethodEnuMiner:
		return enuminer.New(enuminer.Config{})
	case MethodEnuMinerH3:
		return enuminer.NewH3(enuminer.Config{})
	case MethodRLMiner:
		return rlminer.New(rlminer.Config{
			TrainSteps: c.Scale.trainSteps(),
			Seed:       seed,
		})
	default:
		panic(fmt.Sprintf("experiments: unknown method %q", m))
	}
}

// RunResult is one (dataset, method, seed) mining + repair outcome.
type RunResult struct {
	Rules    []core.MinedRule
	PRF      metrics.PRF
	MineTime time.Duration
	Explored int
	// Stats is RLMiner's training statistics (zero for other methods).
	Stats rlminer.Stats
}

// RunOne mines with the method and evaluates the repair.
func (c *Config) RunOne(inst *Instance, m Method, seed int64) (*RunResult, error) {
	miner := c.NewMiner(m, seed)
	start := time.Now()
	res, err := miner.Mine(inst.Problem)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s on %s: %w", m, inst.Dataset.Name, err)
	}
	elapsed := time.Since(start)

	out := &RunResult{
		Rules:    res.Rules,
		MineTime: elapsed,
		Explored: res.Explored,
	}
	if rm, ok := miner.(*rlminer.Miner); ok {
		out.Stats = rm.Stats()
	}

	ev := inst.Problem.NewEvaluator()
	fixes := repair.Apply(ev, res.RuleList())
	out.PRF = metrics.Weighted(fixes.Pred, inst.Truth)
	return out, nil
}

// Repair applies an already-mined rule set to an instance and scores it.
func Repair(inst *Instance, rules []core.MinedRule) metrics.PRF {
	rs := &core.ResultSet{Rules: rules}
	ev := inst.Problem.NewEvaluator()
	fixes := repair.Apply(ev, rs.RuleList())
	return metrics.Weighted(fixes.Pred, inst.Truth)
}
