package experiments

import (
	"fmt"

	"erminer/internal/core"
	"erminer/internal/datagen"
	"erminer/internal/metrics"
	"erminer/internal/report"
)

// TableI reproduces the dataset summary (paper Table I): schema widths
// and tuple counts of the four datasets at the configured scale.
func (c *Config) TableI() error {
	t := report.NewTable("Table I: Dataset summary", "Dataset", "#A", "#A_m", "#Input", "#Master")
	for _, name := range datagen.AllNames() {
		inst, err := c.BuildInstance(NewInstanceSpec(name, c.Seed))
		if err != nil {
			return err
		}
		t.AddRow(name,
			fmt.Sprintf("%d", inst.Problem.Input.Schema().Len()),
			fmt.Sprintf("%d", inst.Problem.Master.Schema().Len()),
			fmt.Sprintf("%d", inst.Problem.Input.NumRows()),
			fmt.Sprintf("%d", inst.Problem.Master.NumRows()))
	}
	t.Render(c.Out)
	return nil
}

// ruleLengthStats summarises LHS and pattern lengths over a rule set.
type ruleLengthStats struct {
	lhsMean, lhsStd float64
	lhsMax, lhsMin  int
	patMean, patStd float64
	patMax, patMin  int
}

func lengthStats(rules []core.MinedRule) ruleLengthStats {
	if len(rules) == 0 {
		return ruleLengthStats{}
	}
	var lhs, pat []float64
	s := ruleLengthStats{lhsMin: 1 << 30, patMin: 1 << 30}
	for _, r := range rules {
		l, p := len(r.Rule.LHS), len(r.Rule.Pattern)
		lhs = append(lhs, float64(l))
		pat = append(pat, float64(p))
		if l > s.lhsMax {
			s.lhsMax = l
		}
		if l < s.lhsMin {
			s.lhsMin = l
		}
		if p > s.patMax {
			s.patMax = p
		}
		if p < s.patMin {
			s.patMin = p
		}
	}
	s.lhsMean, s.lhsStd = metrics.MeanStd(lhs)
	s.patMean, s.patStd = metrics.MeanStd(pat)
	return s
}

// TableII reproduces the rule-length statistics (paper Table II): mean ±
// std and max/min of the number of LHS attribute pairs and pattern
// conditions in the rules each method discovers, per dataset.
func (c *Config) TableII() error {
	t := report.NewTable("Table II: Statistics on rule length",
		"Dataset", "Method", "#LHS (mean±std)", "#LHS (max/min)",
		"#Pattern (mean±std)", "#Pattern (max/min)")
	methods := []Method{MethodCTANE, MethodEnuMiner, MethodRLMiner}
	for _, name := range datagen.AllNames() {
		inst, err := c.BuildInstance(NewInstanceSpec(name, c.Seed))
		if err != nil {
			return err
		}
		for _, m := range methods {
			res, err := c.RunOne(inst, m, c.Seed)
			if err != nil {
				return err
			}
			s := lengthStats(res.Rules)
			if len(res.Rules) == 0 {
				t.AddRow(name, string(m), "-", "-", "-", "-")
				continue
			}
			t.AddRow(name, string(m),
				fmt.Sprintf("%.2f ± %.2f", s.lhsMean, s.lhsStd),
				fmt.Sprintf("%d / %d", s.lhsMax, s.lhsMin),
				fmt.Sprintf("%.2f ± %.2f", s.patMean, s.patStd),
				fmt.Sprintf("%d / %d", s.patMax, s.patMin))
		}
	}
	t.Render(c.Out)
	return nil
}

// TableIII reproduces the repair-quality comparison (paper Table III):
// weighted precision / recall / F-measure of each method on each dataset,
// mean ± std over repeated runs with different samples and error seeds.
func (c *Config) TableIII() error {
	t := report.NewTable("Table III: Repair results compared to baselines",
		"Dataset", "Method", "Precision", "Recall", "F1")
	methods := []Method{MethodCTANE, MethodEnuMiner, MethodRLMiner}
	for _, name := range datagen.AllNames() {
		for _, m := range methods {
			var runs []metrics.PRF
			for i := 0; i < c.repeats(); i++ {
				seed := c.Seed + int64(i)*101
				inst, err := c.BuildInstance(NewInstanceSpec(name, seed))
				if err != nil {
					return err
				}
				res, err := c.RunOne(inst, m, seed)
				if err != nil {
					return err
				}
				runs = append(runs, res.PRF)
			}
			s := metrics.Summarise(runs)
			t.AddRow(name, string(m),
				fmt.Sprintf("%.2f ± %.2f", s.Precision, s.PrecisionStd),
				fmt.Sprintf("%.2f ± %.2f", s.Recall, s.RecallStd),
				fmt.Sprintf("%.2f ± %.2f", s.F1, s.F1Std))
		}
	}
	t.Render(c.Out)
	return nil
}
