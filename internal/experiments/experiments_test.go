package experiments

import (
	"bytes"
	"strings"
	"testing"

	"erminer/internal/relation"
)

func TestParseScale(t *testing.T) {
	for s, want := range map[string]Scale{
		"bench": ScaleBench, "default": ScaleDefault, "": ScaleDefault, "paper": ScalePaper,
	} {
		got, err := ParseScale(s)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestScalePresets(t *testing.T) {
	if ScalePaper.sizeFactor() != 1.0 {
		t.Error("paper scale must use full sizes")
	}
	if ScaleBench.sizeFactor() >= ScaleDefault.sizeFactor() {
		t.Error("bench scale must be smaller than default")
	}
	if ScalePaper.trainSteps() != 5000 {
		t.Errorf("paper train steps = %d", ScalePaper.trainSteps())
	}
}

func TestBuildInstanceDefaults(t *testing.T) {
	cfg := &Config{Scale: ScaleBench, Seed: 1}
	inst, err := cfg.BuildInstance(NewInstanceSpec("covid", 1))
	if err != nil {
		t.Fatal(err)
	}
	if inst.Problem.Input.NumRows() != 250 {
		t.Errorf("bench covid input = %d, want 250", inst.Problem.Input.NumRows())
	}
	if len(inst.Truth) != inst.Problem.Input.NumRows() {
		t.Error("truth length mismatch")
	}
	// Default noise corrupted the input relative to the clean copy.
	dirty := 0
	for row := 0; row < inst.Problem.Input.NumRows(); row++ {
		for col := 0; col < inst.Problem.Input.NumCols(); col++ {
			if inst.Problem.Input.Code(row, col) != inst.Clean.Code(row, col) {
				dirty++
			}
		}
	}
	if dirty == 0 {
		t.Error("default noise injected nothing")
	}
	if err := inst.Problem.Validate(); err != nil {
		t.Errorf("built instance invalid: %v", err)
	}
}

func TestBuildInstanceZeroNoise(t *testing.T) {
	cfg := &Config{Scale: ScaleBench, Seed: 1}
	spec := NewInstanceSpec("covid", 1)
	spec.NoiseRate = 0
	inst, err := cfg.BuildInstance(spec)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < inst.Problem.Input.NumRows(); row++ {
		for col := 0; col < inst.Problem.Input.NumCols(); col++ {
			if inst.Problem.Input.Code(row, col) != inst.Clean.Code(row, col) {
				t.Fatal("zero noise still corrupted cells")
			}
		}
	}
}

func TestBuildInstanceLocationProfile(t *testing.T) {
	cfg := &Config{Scale: ScaleBench, Seed: 2}
	inst, err := cfg.BuildInstance(NewInstanceSpec("location", 2))
	if err != nil {
		t.Fatal(err)
	}
	// Location's error profile includes ~14.7% missing postcodes.
	y := inst.Problem.Y
	missing := 0
	for row := 0; row < inst.Problem.Input.NumRows(); row++ {
		if inst.Problem.Input.Code(row, y) == relation.Null {
			missing++
		}
	}
	frac := float64(missing) / float64(inst.Problem.Input.NumRows())
	if frac < 0.08 || frac > 0.25 {
		t.Errorf("missing postcode fraction = %.3f, want ≈ 0.147", frac)
	}
}

func TestBuildInstanceUnknownDataset(t *testing.T) {
	cfg := &Config{Scale: ScaleBench, Seed: 1}
	if _, err := cfg.BuildInstance(NewInstanceSpec("bogus", 1)); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestRunOneAllMethods(t *testing.T) {
	cfg := &Config{Scale: ScaleBench, Seed: 3}
	inst, err := cfg.BuildInstance(NewInstanceSpec("nursery", 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodCTANE, MethodEnuMiner, MethodEnuMinerH3} {
		res, err := cfg.RunOne(inst, m, 3)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if res.MineTime <= 0 {
			t.Errorf("%s: no time recorded", m)
		}
		if res.PRF.F1 < 0 || res.PRF.F1 > 1 {
			t.Errorf("%s: F1 = %g", m, res.PRF.F1)
		}
	}
}

func TestRunnersCoverAllNames(t *testing.T) {
	cfg := &Config{Scale: ScaleBench, Seed: 1, Out: &bytes.Buffer{}}
	r := cfg.Runners()
	for _, n := range Names() {
		if r[n] == nil {
			t.Errorf("experiment %q has no runner", n)
		}
	}
	if err := cfg.Run("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTableIOutput(t *testing.T) {
	var buf bytes.Buffer
	cfg := &Config{Scale: ScaleBench, Seed: 1, Out: &buf}
	if err := cfg.Run("tableI"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"adult", "covid", "nursery", "location"} {
		if !strings.Contains(out, name) {
			t.Errorf("tableI misses %s:\n%s", name, out)
		}
	}
}

func TestFigure2Output(t *testing.T) {
	var buf bytes.Buffer
	cfg := &Config{Scale: ScaleBench, Seed: 1, Out: &buf}
	if err := cfg.Run("figure2"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 2(a)") || !strings.Contains(out, "Figure 2(b)") {
		t.Errorf("figure2 output:\n%s", out)
	}
}

func TestRepeatsDefaults(t *testing.T) {
	if (&Config{Scale: ScaleBench}).repeats() != 2 {
		t.Error("bench repeats")
	}
	if (&Config{Scale: ScalePaper}).repeats() != 5 {
		t.Error("paper repeats should match the paper's 5 runs")
	}
	if (&Config{Scale: ScalePaper, Repeats: 1}).repeats() != 1 {
		t.Error("explicit repeats ignored")
	}
}
