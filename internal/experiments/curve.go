package experiments

import (
	"fmt"

	"erminer/internal/metrics"
	"erminer/internal/report"
	"erminer/internal/rlminer"
)

// LearningCurve is a supplementary experiment (not a numbered paper
// artifact): it prints RLMiner's per-episode summed reward over training
// on each dataset, the curve behind Figure 12's fixed-step protocol. A
// rising, flattening curve is the visual check that the agent converged
// within the step budget.
func (c *Config) LearningCurve() error {
	f := report.NewFigure("Learning curve: episode reward during RLMiner training", "episode-bucket")
	for _, name := range []string{"adult", "covid", "nursery", "location"} {
		inst, err := c.BuildInstance(NewInstanceSpec(name, c.Seed))
		if err != nil {
			return err
		}
		m := rlminer.New(rlminer.Config{
			TrainSteps: c.Scale.trainSteps(),
			Seed:       c.Seed,
		})
		if _, err := m.Mine(inst.Problem); err != nil {
			return err
		}
		rewards := m.Stats().EpisodeRewards
		if len(rewards) == 0 {
			continue
		}
		// Bucket the episodes into ten points so curves of different
		// lengths share an x-axis.
		const buckets = 10
		for b := 0; b < buckets; b++ {
			lo := b * len(rewards) / buckets
			hi := (b + 1) * len(rewards) / buckets
			if lo >= hi {
				continue
			}
			mean, _ := metrics.MeanStd(rewards[lo:hi])
			f.Add(name, float64(b+1), mean)
		}
	}
	f.Render(c.Out)
	fmt.Fprintln(c.Out)
	return nil
}
