package experiments

import (
	"fmt"
	"sort"
)

// Runners maps experiment names to their drivers on a Config.
func (c *Config) Runners() map[string]func() error {
	return map[string]func() error{
		"tableI":   c.TableI,
		"tableII":  c.TableII,
		"tableIII": c.TableIII,
		"figure2":  c.Figure2,
		"figure6":  c.Figure6,
		"figure7":  c.Figure7,
		"figure8":  c.Figure8,
		"figure9":  c.Figure9,
		"figure10": c.Figure10,
		"figure11": c.Figure11,
		"figure12": c.Figure12,
		// Supplementary (not numbered paper artifacts):
		"curve":       c.LearningCurve,
		"ablation":    c.Ablation,
		"scalability": c.Scalability,
	}
}

// Names returns the experiment names in presentation order.
func Names() []string {
	return []string{
		"tableI", "tableII", "tableIII",
		"figure2", "figure6", "figure7", "figure8", "figure9",
		"figure10", "figure11", "figure12",
	}
}

// Run dispatches one experiment by name; "all" runs every experiment in
// presentation order.
func (c *Config) Run(name string) error {
	runners := c.Runners()
	if name == "all" {
		for _, n := range Names() {
			fmt.Fprintf(c.Out, "\n=== %s ===\n", n)
			if err := runners[n](); err != nil {
				return fmt.Errorf("experiments: %s: %w", n, err)
			}
		}
		return nil
	}
	r, ok := runners[name]
	if !ok {
		known := Names()
		sort.Strings(known)
		return fmt.Errorf("experiments: unknown experiment %q (known: %v, all)", name, known)
	}
	return r()
}
