package experiments

import (
	"testing"
	"time"

	"erminer/internal/rlminer"
)

// TestPaperClaims asserts the qualitative shape of the paper's
// evaluation at bench scale — who wins, in quality and in time — rather
// than absolute numbers. It is the executable summary of EXPERIMENTS.md.
// Skipped under -short: the full comparison takes tens of seconds.
func TestPaperClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-claims comparison is slow")
	}
	cfg := &Config{Scale: ScaleBench, Seed: 1}

	// Claim 1 (Table III): on Adult, EnuMiner and RLMiner repair with
	// similar quality, and CTANE has the lowest recall of the three
	// (master-only CFDs carry no input-side conditions).
	inst, err := cfg.BuildInstance(NewInstanceSpec("adult", 1))
	if err != nil {
		t.Fatal(err)
	}
	results := make(map[Method]*RunResult)
	for _, m := range []Method{MethodCTANE, MethodEnuMiner, MethodEnuMinerH3, MethodRLMiner} {
		res, err := cfg.RunOne(inst, m, 1)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		results[m] = res
		t.Logf("%-11s F1=%.3f R=%.3f time=%v explored=%d",
			m, res.PRF.F1, res.PRF.Recall, res.MineTime.Round(time.Millisecond), res.Explored)
	}
	enu, rl, ctane := results[MethodEnuMiner], results[MethodRLMiner], results[MethodCTANE]
	if rl.PRF.F1 < enu.PRF.F1-0.25 {
		t.Errorf("claim 1: RLMiner F1 %.3f far below EnuMiner %.3f", rl.PRF.F1, enu.PRF.F1)
	}
	if ctane.PRF.Recall >= enu.PRF.Recall {
		t.Errorf("claim 1: CTANE recall %.3f not below EnuMiner %.3f",
			ctane.PRF.Recall, enu.PRF.Recall)
	}

	// Claim 2 (Figures 8-9): RLMiner explores orders of magnitude fewer
	// candidates than EnuMiner, and EnuMinerH3 sits between them in
	// work; EnuMiner costs the most wall-clock time.
	if rl.Explored*10 > enu.Explored {
		t.Errorf("claim 2: RLMiner explored %d, not ≪ EnuMiner's %d",
			rl.Explored, enu.Explored)
	}
	h3 := results[MethodEnuMinerH3]
	if h3.Explored > enu.Explored {
		t.Errorf("claim 2: H3 explored %d > EnuMiner %d", h3.Explored, enu.Explored)
	}
	if enu.MineTime < rl.MineTime {
		t.Errorf("claim 2: EnuMiner (%v) faster than RLMiner (%v) — expected the opposite at this scale",
			enu.MineTime, rl.MineTime)
	}

	// Claim 3 (Figures 10-12): fine-tuning costs a fraction of training
	// from scratch at comparable quality.
	inst2, err := cfg.BuildInstance(NewInstanceSpec("adult", 2))
	if err != nil {
		t.Fatal(err)
	}
	scratch := rlminer.New(rlminer.Config{TrainSteps: cfg.Scale.trainSteps(), Seed: 2})
	if _, err := scratch.Mine(inst.Problem); err != nil {
		t.Fatal(err)
	}
	ft := rlminer.New(rlminer.Config{Seed: 3})
	ftRes, err := ft.MineFineTuned(inst2.Problem, scratch)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("scratch train=%v, fine-tune train=%v",
		scratch.Stats().TrainTime.Round(time.Millisecond),
		ft.Stats().TrainTime.Round(time.Millisecond))
	if ft.Stats().TrainTime > scratch.Stats().TrainTime/2 {
		t.Errorf("claim 3: fine-tune (%v) not clearly cheaper than scratch (%v)",
			ft.Stats().TrainTime, scratch.Stats().TrainTime)
	}
	ftPRF := Repair(inst2, ftRes.Rules)
	t.Logf("fine-tuned F1=%.3f", ftPRF.F1)

	// Claim 4 (§V-B1, example rules): the discovered Covid rules carry
	// the paper's overseas=No guard.
	covid, err := cfg.BuildInstance(NewInstanceSpec("covid", 4))
	if err != nil {
		t.Fatal(err)
	}
	covidRes, err := cfg.RunOne(covid, MethodEnuMiner, 4)
	if err != nil {
		t.Fatal(err)
	}
	ov := covid.Problem.Input.Schema().MustIndex("overseas")
	guarded := 0
	for _, r := range covidRes.Rules {
		for _, c := range r.Rule.Pattern {
			if c.Attr == ov {
				guarded++
			}
		}
	}
	if guarded == 0 {
		t.Error("claim 4: no Covid rule carries a condition on overseas")
	}
}
