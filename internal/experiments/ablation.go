package experiments

import (
	"fmt"
	"time"

	"erminer/internal/mdp"
	"erminer/internal/metrics"
	"erminer/internal/repair"
	"erminer/internal/report"
	"erminer/internal/rl"
	"erminer/internal/rlminer"
)

// Ablation is a supplementary experiment (DESIGN.md §4): it re-runs
// RLMiner on the Covid dataset with individual design decisions switched
// off (or variants switched on) and reports the effect on repair
// quality, rule count, exploration volume and training time.
func (c *Config) Ablation() error {
	type variant struct {
		name string
		cfg  func(base rlminer.Config) rlminer.Config
	}
	variants := []variant{
		{"default", func(b rlminer.Config) rlminer.Config { return b }},
		{"no-seed-singletons", func(b rlminer.Config) rlminer.Config {
			b.Env = mdp.Config{DisableSeedSingletons: true}
			return b
		}},
		{"no-shaping", func(b rlminer.Config) rlminer.Config {
			b.Env = mdp.Config{DisableShaping: true}
			return b
		}},
		{"no-global-mask", func(b rlminer.Config) rlminer.Config {
			b.Env = mdp.Config{DisableGlobalMask: true}
			return b
		}},
		{"no-reward-cache", func(b rlminer.Config) rlminer.Config {
			b.Env = mdp.Config{DisableRewardCache: true}
			return b
		}},
		{"no-normalize", func(b rlminer.Config) rlminer.Config {
			b.Env = mdp.Config{DisableNormalize: true}
			return b
		}},
		{"inference-only", func(b rlminer.Config) rlminer.Config {
			b.InferenceOnly = true
			return b
		}},
		{"double-dqn", func(b rlminer.Config) rlminer.Config {
			b.Agent = rl.Config{DoubleDQN: true}
			return b
		}},
		{"prioritized", func(b rlminer.Config) rlminer.Config {
			b.Agent = rl.Config{PrioritizedAlpha: 0.6}
			return b
		}},
	}

	t := report.NewTable("Ablation: RLMiner design decisions over Covid",
		"Variant", "F1", "Rules", "Explored", "Train (s)")
	for _, v := range variants {
		var f1s, secs, explored, rules []float64
		for i := 0; i < c.repeats(); i++ {
			seed := c.Seed + int64(i)*101
			inst, err := c.BuildInstance(NewInstanceSpec("covid", seed))
			if err != nil {
				return err
			}
			base := rlminer.Config{
				TrainSteps: c.Scale.trainSteps(),
				Seed:       seed,
			}
			m := rlminer.New(v.cfg(base))
			start := time.Now()
			res, err := m.Mine(inst.Problem)
			if err != nil {
				return err
			}
			secs = append(secs, time.Since(start).Seconds())
			ev := inst.Problem.NewEvaluator()
			fixes := repair.Apply(ev, res.RuleList())
			f1s = append(f1s, metrics.Weighted(fixes.Pred, inst.Truth).F1)
			explored = append(explored, float64(res.Explored))
			rules = append(rules, float64(len(res.Rules)))
		}
		mf, sf := metrics.MeanStd(f1s)
		mt, _ := metrics.MeanStd(secs)
		me, _ := metrics.MeanStd(explored)
		mr, _ := metrics.MeanStd(rules)
		t.AddRow(v.name,
			fmt.Sprintf("%.2f ± %.2f", mf, sf),
			fmt.Sprintf("%.0f", mr),
			fmt.Sprintf("%.0f", me),
			fmt.Sprintf("%.2f", mt))
	}
	t.Render(c.Out)
	return nil
}
