// Package schema represents the schema match M between the input schema R
// and the master schema R_m (paper §II-C). The paper assumes the match is
// given; this package provides both an explicit representation and a
// convenience auto-matcher based on shared value domains.
package schema

import (
	"fmt"
	"sort"

	"erminer/internal/relation"
)

// Match maps input attribute indices to the master attribute indices they
// are matched with, i.e. M(A) = {A_m}. An input attribute with no entry is
// unmatched (M(A) = ∅) and can only appear in pattern conditions.
type Match struct {
	m map[int][]int
}

// NewMatch returns an empty match.
func NewMatch() *Match {
	return &Match{m: make(map[int][]int)}
}

// Add records that input attribute a matches master attribute am.
// Duplicate additions are ignored.
func (m *Match) Add(a, am int) {
	for _, x := range m.m[a] {
		if x == am {
			return
		}
	}
	m.m[a] = append(m.m[a], am)
	sort.Ints(m.m[a])
}

// Of returns the master attributes matched with input attribute a, in
// ascending order. The returned slice must not be modified.
func (m *Match) Of(a int) []int { return m.m[a] }

// Matched reports whether input attribute a has at least one match.
func (m *Match) Matched(a int) bool { return len(m.m[a]) > 0 }

// InputAttrs returns the matched input attribute indices in ascending order.
func (m *Match) InputAttrs() []int {
	out := make([]int, 0, len(m.m))
	for a := range m.m {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// Pairs returns every (input, master) attribute pair in deterministic
// order: by input attribute, then master attribute.
func (m *Match) Pairs() [][2]int {
	var out [][2]int
	for _, a := range m.InputAttrs() {
		for _, am := range m.m[a] {
			out = append(out, [2]int{a, am})
		}
	}
	return out
}

// Size returns the total number of matched attribute pairs |M|.
func (m *Match) Size() int {
	n := 0
	for _, ams := range m.m {
		n += len(ams)
	}
	return n
}

// FromNames builds a match from attribute-name pairs {input: master}.
func FromNames(r, rm *relation.Schema, pairs map[string]string) (*Match, error) {
	m := NewMatch()
	for a, am := range pairs {
		ia := r.Index(a)
		if ia < 0 {
			return nil, fmt.Errorf("schema: input schema has no attribute %q", a)
		}
		iam := rm.Index(am)
		if iam < 0 {
			return nil, fmt.Errorf("schema: master schema has no attribute %q", am)
		}
		m.Add(ia, iam)
	}
	return m, nil
}

// AutoMatch matches attributes that share a dictionary domain name. It is
// the convenience matcher used by the dataset generators, which construct
// both schemas from a common world and tag matched attributes with the
// same Domain.
func AutoMatch(r, rm *relation.Schema) *Match {
	m := NewMatch()
	byDomain := make(map[string][]int)
	for i := 0; i < rm.Len(); i++ {
		d := rm.Attr(i).DomainName()
		byDomain[d] = append(byDomain[d], i)
	}
	for i := 0; i < r.Len(); i++ {
		for _, am := range byDomain[r.Attr(i).DomainName()] {
			m.Add(i, am)
		}
	}
	return m
}
