package schema

import (
	"fmt"
	"testing"

	"erminer/internal/relation"
)

// inferFixture: input(city, zip, note) vs master(town, zipcode, id).
// city/town share values (different names); zip/zipcode share values AND
// case-folded-distinct names; note and id are unique-per-table.
func inferFixture() (*relation.Relation, *relation.Relation) {
	in := relation.NewSchema(
		relation.Attribute{Name: "city"},
		relation.Attribute{Name: "Zip"},
		relation.Attribute{Name: "note"},
	)
	ms := relation.NewSchema(
		relation.Attribute{Name: "town"},
		relation.Attribute{Name: "zip"},
		relation.Attribute{Name: "id"},
	)
	input := relation.New(in, relation.NewPool())
	master := relation.New(ms, relation.NewPool())
	cities := []string{"HZ", "BJ", "SZ", "SH", "GZ"}
	for i := 0; i < 50; i++ {
		input.AppendRow([]string{
			cities[i%5], fmt.Sprintf("%05d", 10000+i%10), fmt.Sprintf("note-%d", i),
		})
		master.AppendRow([]string{
			cities[i%5], fmt.Sprintf("%05d", 10000+i%10), fmt.Sprintf("id-%d", i),
		})
	}
	return input, master
}

func TestInferMatchFindsOverlaps(t *testing.T) {
	input, master := inferFixture()
	m := InferMatch(input, master, InferConfig{})
	if got := m.Of(0); len(got) != 1 || got[0] != 0 {
		t.Errorf("city match = %v, want [0] (town)", got)
	}
	if got := m.Of(1); len(got) != 1 || got[0] != 1 {
		t.Errorf("zip match = %v, want [1]", got)
	}
	if m.Matched(2) {
		t.Error("note matched something")
	}
}

func TestInferMatchDisjointColumns(t *testing.T) {
	in := relation.NewSchema(relation.Attribute{Name: "a"})
	ms := relation.NewSchema(relation.Attribute{Name: "b"})
	input := relation.New(in, relation.NewPool())
	master := relation.New(ms, relation.NewPool())
	for i := 0; i < 20; i++ {
		input.AppendRow([]string{fmt.Sprintf("x%d", i)})
		master.AppendRow([]string{fmt.Sprintf("y%d", i)})
	}
	m := InferMatch(input, master, InferConfig{})
	if m.Size() != 0 {
		t.Errorf("disjoint columns matched: %d pairs", m.Size())
	}
}

func TestInferMatchNameBonus(t *testing.T) {
	// Values overlap only partially, below the raw threshold, but the
	// equal name lifts the score over it.
	in := relation.NewSchema(relation.Attribute{Name: "status"})
	ms := relation.NewSchema(relation.Attribute{Name: "STATUS"})
	input := relation.New(in, relation.NewPool())
	master := relation.New(ms, relation.NewPool())
	for i := 0; i < 10; i++ {
		input.AppendRow([]string{fmt.Sprintf("s%d", i)})
		master.AppendRow([]string{fmt.Sprintf("s%d", i+9)}) // 1 of 19 shared
	}
	m := InferMatch(input, master, InferConfig{MinJaccard: 0.2})
	if !m.Matched(0) {
		t.Error("name bonus did not rescue the near-miss")
	}
	m2 := InferMatch(input, master, InferConfig{MinJaccard: 0.2, NameBonus: -1e-9})
	if m2.Matched(0) {
		t.Error("match found without the bonus despite tiny overlap")
	}
}

func TestInferMatchOneToOne(t *testing.T) {
	// Two master columns with identical content: each input attribute
	// takes only one (the greedy assignment marks masters used).
	in := relation.NewSchema(relation.Attribute{Name: "c"})
	ms := relation.NewSchema(
		relation.Attribute{Name: "c1"},
		relation.Attribute{Name: "c2"},
	)
	input := relation.New(in, relation.NewPool())
	master := relation.New(ms, relation.NewPool())
	for i := 0; i < 10; i++ {
		v := fmt.Sprintf("v%d", i%3)
		input.AppendRow([]string{v})
		master.AppendRow([]string{v, v})
	}
	m := InferMatch(input, master, InferConfig{})
	if got := len(m.Of(0)); got != 1 {
		t.Errorf("matched %d master attrs, want 1 (MaxPerAttr default)", got)
	}
	m2 := InferMatch(input, master, InferConfig{MaxPerAttr: 2})
	if got := len(m2.Of(0)); got != 2 {
		t.Errorf("MaxPerAttr=2 matched %d", got)
	}
}

func TestJaccard(t *testing.T) {
	set := func(vs ...string) map[string]struct{} {
		out := make(map[string]struct{})
		for _, v := range vs {
			out[v] = struct{}{}
		}
		return out
	}
	if got := jaccard(set("a", "b"), set("b", "c")); got != 1.0/3.0 {
		t.Errorf("jaccard = %g, want 1/3", got)
	}
	if got := jaccard(set(), set("a")); got != 0 {
		t.Errorf("empty jaccard = %g", got)
	}
	if got := jaccard(set("a"), set("a")); got != 1 {
		t.Errorf("identical jaccard = %g", got)
	}
}
