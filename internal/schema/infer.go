package schema

import (
	"strings"

	"erminer/internal/relation"
)

// InferConfig tunes the automatic matcher.
type InferConfig struct {
	// MinJaccard is the minimum Jaccard overlap of two columns' value
	// sets for a match. Zero means the default 0.3.
	MinJaccard float64
	// MaxPerAttr caps how many master attributes one input attribute may
	// match; zero means 1 (the common case in practice and in all of
	// the paper's datasets).
	MaxPerAttr int
	// NameBonus is added to the Jaccard score when the (case-folded)
	// attribute names are equal; zero means the default 0.25.
	NameBonus float64
}

func (c InferConfig) minJaccard() float64 {
	if c.MinJaccard > 0 {
		return c.MinJaccard
	}
	return 0.3
}

func (c InferConfig) maxPerAttr() int {
	if c.MaxPerAttr > 0 {
		return c.MaxPerAttr
	}
	return 1
}

func (c InferConfig) nameBonus() float64 {
	if c.NameBonus != 0 {
		return c.NameBonus
	}
	return 0.25
}

// InferMatch discovers the schema match M from the data itself: two
// columns match when their value sets overlap (Jaccard similarity over
// distinct string values), with a bonus for equal attribute names. The
// paper assumes M is given (§II-C, citing schema-matching surveys [28],
// [33]); this instance-based matcher is the substrate for users who do
// not have one.
//
// It compares string values, so the two relations need not share
// dictionaries. Each input attribute matches at most MaxPerAttr master
// attributes, greedily by score.
func InferMatch(input, master *relation.Relation, cfg InferConfig) *Match {
	type cand struct {
		a, am int
		score float64
	}
	var cands []cand
	inSets := columnValueSets(input)
	msSets := columnValueSets(master)

	for a := 0; a < input.Schema().Len(); a++ {
		for am := 0; am < master.Schema().Len(); am++ {
			j := jaccard(inSets[a], msSets[am])
			if strings.EqualFold(input.Schema().Attr(a).Name, master.Schema().Attr(am).Name) {
				j += cfg.nameBonus()
			}
			if j >= cfg.minJaccard() {
				cands = append(cands, cand{a: a, am: am, score: j})
			}
		}
	}
	// Greedy by descending score; ties break on (a, am) for determinism.
	for i := 1; i < len(cands); i++ {
		for k := i; k > 0; k-- {
			x, y := cands[k], cands[k-1]
			if x.score > y.score ||
				(x.score == y.score && (x.a < y.a || (x.a == y.a && x.am < y.am))) {
				cands[k], cands[k-1] = cands[k-1], cands[k]
			} else {
				break
			}
		}
	}

	m := NewMatch()
	perAttr := make(map[int]int)
	usedMaster := make(map[int]bool)
	for _, c := range cands {
		if perAttr[c.a] >= cfg.maxPerAttr() || usedMaster[c.am] {
			continue
		}
		m.Add(c.a, c.am)
		perAttr[c.a]++
		usedMaster[c.am] = true
	}
	return m
}

func columnValueSets(r *relation.Relation) []map[string]struct{} {
	out := make([]map[string]struct{}, r.Schema().Len())
	for col := range out {
		set := make(map[string]struct{})
		for row := 0; row < r.NumRows(); row++ {
			if c := r.Code(row, col); c != relation.Null {
				set[r.Dict(col).Value(c)] = struct{}{}
			}
		}
		out[col] = set
	}
	return out
}

func jaccard(a, b map[string]struct{}) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, big := a, b
	if len(small) > len(big) {
		small, big = big, small
	}
	inter := 0
	for v := range small {
		if _, ok := big[v]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}
