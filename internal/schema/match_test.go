package schema

import (
	"testing"

	"erminer/internal/relation"
)

func schemas() (*relation.Schema, *relation.Schema) {
	r := relation.NewSchema(
		relation.Attribute{Name: "city"},
		relation.Attribute{Name: "zip"},
		relation.Attribute{Name: "overseas"}, // input-only
	)
	rm := relation.NewSchema(
		relation.Attribute{Name: "city"},
		relation.Attribute{Name: "zipcode", Domain: "zip"},
		relation.Attribute{Name: "province"},
	)
	return r, rm
}

func TestMatchAddAndQuery(t *testing.T) {
	m := NewMatch()
	m.Add(0, 0)
	m.Add(1, 1)
	m.Add(0, 0) // duplicate ignored
	if got := m.Size(); got != 2 {
		t.Fatalf("Size = %d, want 2", got)
	}
	if !m.Matched(0) || !m.Matched(1) || m.Matched(2) {
		t.Error("Matched flags wrong")
	}
	if got := m.Of(0); len(got) != 1 || got[0] != 0 {
		t.Errorf("Of(0) = %v", got)
	}
	if got := m.Of(99); got != nil {
		t.Errorf("Of(unmatched) = %v, want nil", got)
	}
	attrs := m.InputAttrs()
	if len(attrs) != 2 || attrs[0] != 0 || attrs[1] != 1 {
		t.Errorf("InputAttrs = %v", attrs)
	}
}

func TestMatchPairsDeterministicOrder(t *testing.T) {
	m := NewMatch()
	m.Add(2, 1)
	m.Add(0, 2)
	m.Add(0, 0)
	pairs := m.Pairs()
	want := [][2]int{{0, 0}, {0, 2}, {2, 1}}
	if len(pairs) != len(want) {
		t.Fatalf("Pairs = %v", pairs)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Errorf("Pairs[%d] = %v, want %v", i, pairs[i], want[i])
		}
	}
}

func TestFromNames(t *testing.T) {
	r, rm := schemas()
	m, err := FromNames(r, rm, map[string]string{"city": "city", "zip": "zipcode"})
	if err != nil {
		t.Fatalf("FromNames: %v", err)
	}
	if m.Size() != 2 {
		t.Errorf("Size = %d", m.Size())
	}
	if _, err := FromNames(r, rm, map[string]string{"bogus": "city"}); err == nil {
		t.Error("unknown input attribute accepted")
	}
	if _, err := FromNames(r, rm, map[string]string{"city": "bogus"}); err == nil {
		t.Error("unknown master attribute accepted")
	}
}

func TestAutoMatchByDomain(t *testing.T) {
	r, rm := schemas()
	m := AutoMatch(r, rm)
	// city matches city (same default domain); zip matches zipcode
	// (explicit shared domain); overseas and province stay unmatched.
	if m.Size() != 2 {
		t.Fatalf("Size = %d, want 2", m.Size())
	}
	if got := m.Of(0); len(got) != 1 || got[0] != 0 {
		t.Errorf("city match = %v", got)
	}
	if got := m.Of(1); len(got) != 1 || got[0] != 1 {
		t.Errorf("zip match = %v", got)
	}
	if m.Matched(2) {
		t.Error("input-only attribute matched")
	}
}
