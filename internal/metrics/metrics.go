// Package metrics implements the evaluation criteria of paper §V-A2:
// weighted precision, recall and F-measure over the multi-class cell
// predictions produced by applying discovered editing rules, plus the
// mean ± standard deviation aggregation used for the repeated runs.
package metrics

import (
	"math"

	"erminer/internal/relation"
)

// PRF holds one precision/recall/F-measure triple.
type PRF struct {
	Precision, Recall, F1 float64
}

// Weighted computes the weighted precision/recall/F-measure of predictions
// against truths. Both slices are per-tuple dictionary codes of the
// dependent attribute; pred[i] == relation.Null means "no prediction for
// tuple i" (the rules did not cover it), which costs recall but not
// precision — this is what gives CTANE its characteristically low recall
// in Table III.
//
// Per §V-A2, the per-class metrics are weighted by the class's truth
// support |ŷ_l|:
//
//	Precision_w = Σ_l |ŷ_l|·P_l / Σ_l |ŷ_l|   (analogously for recall)
//
// and per-class F is the harmonic mean of the per-class P and R.
func Weighted(pred, truth []int32) PRF {
	if len(pred) != len(truth) {
		panic("metrics: pred and truth length mismatch")
	}
	type counts struct {
		truthN int // |ŷ_l|
		predN  int // predictions of class l
		tp     int // correct predictions of class l
	}
	byClass := make(map[int32]*counts)
	class := func(c int32) *counts {
		cc := byClass[c]
		if cc == nil {
			cc = &counts{}
			byClass[c] = cc
		}
		return cc
	}
	for i := range truth {
		if truth[i] != relation.Null {
			class(truth[i]).truthN++
		}
		if pred[i] != relation.Null {
			class(pred[i]).predN++
			if pred[i] == truth[i] {
				class(pred[i]).tp++
			}
		}
	}

	var sumW, sumP, sumR, sumF float64
	for _, c := range byClass {
		if c.truthN == 0 {
			// A class that appears only in predictions carries no
			// truth weight.
			continue
		}
		w := float64(c.truthN)
		var p, r float64
		if c.predN > 0 {
			p = float64(c.tp) / float64(c.predN)
		}
		r = float64(c.tp) / float64(c.truthN)
		var f float64
		if p+r > 0 {
			f = 2 * p * r / (p + r)
		}
		sumW += w
		sumP += w * p
		sumR += w * r
		sumF += w * f
	}
	if sumW == 0 {
		return PRF{}
	}
	return PRF{Precision: sumP / sumW, Recall: sumR / sumW, F1: sumF / sumW}
}

// MeanStd returns the mean and (population) standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// Summary aggregates repeated PRF results into mean ± std per component.
type Summary struct {
	Precision, PrecisionStd float64
	Recall, RecallStd       float64
	F1, F1Std               float64
}

// Summarise computes the Summary of repeated runs.
func Summarise(runs []PRF) Summary {
	p := make([]float64, len(runs))
	r := make([]float64, len(runs))
	f := make([]float64, len(runs))
	for i, x := range runs {
		p[i], r[i], f[i] = x.Precision, x.Recall, x.F1
	}
	var s Summary
	s.Precision, s.PrecisionStd = MeanStd(p)
	s.Recall, s.RecallStd = MeanStd(r)
	s.F1, s.F1Std = MeanStd(f)
	return s
}
