package metrics

import (
	"sort"
	"sync"
	"time"
)

// LatencyWindow is the number of recent request latencies a LatencyRing
// keeps. A fixed ring bounds memory under sustained traffic; p50/p99
// are computed over the window at scrape time.
const LatencyWindow = 1024

// LatencyRing is the shared p50/p99 latency estimator behind the
// erminerd_/ermcluster_ repair_latency_* metric lines. Both serving
// roles observe every request outcome into one ring — 4xx, queue
// rejections and timeouts included — so the percentile lines describe
// what clients actually experience, not just the successes. The zero
// value is ready to use; hold it by pointer (it contains a mutex).
type LatencyRing struct {
	mu  sync.Mutex
	buf [LatencyWindow]float64 // guarded by mu; milliseconds
	n   int64                  // guarded by mu; total observations (ring write cursor = n % window)
}

// Observe records one request latency.
func (r *LatencyRing) Observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	r.mu.Lock()
	r.buf[r.n%LatencyWindow] = ms
	r.n++
	r.mu.Unlock()
}

// Percentiles returns p50 and p99 over the latency window, in
// milliseconds, plus the total number of observations ever made (the
// window only bounds what the percentiles are computed over). Zeroes
// when nothing has been observed yet.
func (r *LatencyRing) Percentiles() (p50, p99 float64, total int64) {
	r.mu.Lock()
	total = r.n
	n := r.n
	if n > LatencyWindow {
		n = LatencyWindow
	}
	buf := make([]float64, n)
	copy(buf, r.buf[:n])
	r.mu.Unlock()
	if n == 0 {
		return 0, 0, total
	}
	sort.Float64s(buf)
	rank := func(q float64) float64 {
		i := int(q*float64(n-1) + 0.5)
		return buf[i]
	}
	return rank(0.50), rank(0.99), total
}
