package metrics

import (
	"testing"
	"testing/quick"
)

// clampCodes folds arbitrary int32s into a small label space with some
// Nulls, so the property tests exercise realistic class structure.
func clampCodes(xs []int32) []int32 {
	out := make([]int32, len(xs))
	for i, x := range xs {
		v := x % 5
		if v < 0 {
			v = -1 // Null
		}
		out[i] = v
	}
	return out
}

// Property: weighted P/R/F1 always lie in [0, 1], for any prediction and
// truth vectors.
func TestWeightedBoundsProperty(t *testing.T) {
	f := func(raw []int32) bool {
		codes := clampCodes(raw)
		// Split the vector in two halves as pred/truth of equal length.
		n := len(codes) / 2
		pred, truth := codes[:n], codes[n:2*n]
		got := Weighted(pred, truth)
		for _, v := range []float64{got.Precision, got.Recall, got.F1} {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: perfect predictions always score 1/1/1 (when any non-Null
// truth exists).
func TestWeightedPerfectProperty(t *testing.T) {
	f := func(raw []int32) bool {
		truth := clampCodes(raw)
		hasTruth := false
		for _, v := range truth {
			if v >= 0 {
				hasTruth = true
			}
		}
		got := Weighted(truth, truth)
		if !hasTruth {
			return got == (PRF{})
		}
		return got.Precision == 1 && got.Recall == 1 && got.F1 == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: recall never exceeds the covered fraction... more precisely,
// withholding predictions can only lower recall, never precision of the
// remaining classes' counts beyond bounds. We check the simpler
// monotonicity: masking one prediction never increases recall.
func TestWeightedMaskingMonotoneProperty(t *testing.T) {
	f := func(raw []int32, maskIdx uint8) bool {
		codes := clampCodes(raw)
		n := len(codes) / 2
		if n == 0 {
			return true
		}
		pred := append([]int32(nil), codes[:n]...)
		truth := codes[n : 2*n]
		before := Weighted(pred, truth).Recall
		pred[int(maskIdx)%n] = -1
		after := Weighted(pred, truth).Recall
		return after <= before+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
