package metrics

import (
	"math"
	"testing"

	"erminer/internal/relation"
)

func TestWeightedPerfect(t *testing.T) {
	truth := []int32{0, 0, 1, 1, 2}
	got := Weighted(truth, truth)
	if got.Precision != 1 || got.Recall != 1 || got.F1 != 1 {
		t.Errorf("perfect predictions scored %+v", got)
	}
}

func TestWeightedNoPredictions(t *testing.T) {
	truth := []int32{0, 1, 2}
	pred := []int32{relation.Null, relation.Null, relation.Null}
	got := Weighted(pred, truth)
	if got.Precision != 0 || got.Recall != 0 || got.F1 != 0 {
		t.Errorf("empty predictions scored %+v", got)
	}
}

// TestWeightedHandComputed verifies the §V-A2 formulas on a worked
// example with two classes of different sizes.
func TestWeightedHandComputed(t *testing.T) {
	// Class 0: 4 truth tuples; class 1: 2 truth tuples.
	truth := []int32{0, 0, 0, 0, 1, 1}
	// Predictions: three 0s (two correct, one on a class-1 tuple), one 1
	// (correct), two uncovered.
	pred := []int32{0, 0, relation.Null, relation.Null, 0, 1}
	// Class 0: P = 2/3, R = 2/4. Class 1: P = 1/1, R = 1/2.
	// Weights: 4 and 2 (truth counts), total 6.
	p0, r0 := 2.0/3.0, 0.5
	f0 := 2 * p0 * r0 / (p0 + r0)
	p1, r1 := 1.0, 0.5
	f1 := 2 * p1 * r1 / (p1 + r1)
	wantP := (4*p0 + 2*p1) / 6
	wantR := (4*r0 + 2*r1) / 6
	wantF := (4*f0 + 2*f1) / 6

	got := Weighted(pred, truth)
	if math.Abs(got.Precision-wantP) > 1e-12 {
		t.Errorf("P = %g, want %g", got.Precision, wantP)
	}
	if math.Abs(got.Recall-wantR) > 1e-12 {
		t.Errorf("R = %g, want %g", got.Recall, wantR)
	}
	if math.Abs(got.F1-wantF) > 1e-12 {
		t.Errorf("F1 = %g, want %g", got.F1, wantF)
	}
}

func TestWeightedIgnoresPredictionOnlyClasses(t *testing.T) {
	truth := []int32{0, 0}
	pred := []int32{0, 7} // class 7 never appears in truth
	got := Weighted(pred, truth)
	// Class 0: P = 1, R = 1/2. Class 7 carries no weight.
	if math.Abs(got.Precision-1) > 1e-12 {
		t.Errorf("P = %g, want 1", got.Precision)
	}
	if math.Abs(got.Recall-0.5) > 1e-12 {
		t.Errorf("R = %g, want 0.5", got.Recall)
	}
}

func TestWeightedNullTruthExcluded(t *testing.T) {
	// Tuples whose truth is Null carry no class weight.
	truth := []int32{relation.Null, 1}
	pred := []int32{1, 1}
	got := Weighted(pred, truth)
	// Class 1: predN = 2, tp = 1 → P = 0.5; R = 1/1.
	if math.Abs(got.Precision-0.5) > 1e-12 || got.Recall != 1 {
		t.Errorf("got %+v", got)
	}
}

func TestWeightedLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Weighted([]int32{1}, []int32{1, 2})
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd(nil)
	if m != 0 || s != 0 {
		t.Errorf("empty MeanStd = %g, %g", m, s)
	}
	m, s = MeanStd([]float64{2, 2, 2})
	if m != 2 || s != 0 {
		t.Errorf("constant MeanStd = %g, %g", m, s)
	}
	m, s = MeanStd([]float64{1, 3})
	if m != 2 || s != 1 {
		t.Errorf("MeanStd([1,3]) = %g, %g, want 2, 1", m, s)
	}
}

func TestSummarise(t *testing.T) {
	runs := []PRF{
		{Precision: 0.8, Recall: 0.6, F1: 0.7},
		{Precision: 0.6, Recall: 0.8, F1: 0.7},
	}
	s := Summarise(runs)
	if math.Abs(s.Precision-0.7) > 1e-12 || math.Abs(s.Recall-0.7) > 1e-12 {
		t.Errorf("means = %+v", s)
	}
	if math.Abs(s.PrecisionStd-0.1) > 1e-12 {
		t.Errorf("precision std = %g, want 0.1", s.PrecisionStd)
	}
	if s.F1Std != 0 {
		t.Errorf("F1 std = %g, want 0", s.F1Std)
	}
}
