package detrand

import (
	"math/rand"
	"testing"
)

func TestDeterministicGivenSeed(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("draw %d differs across identically seeded generators", i)
		}
	}
	c := New(43)
	same := true
	for i := 0; i < 8; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestStateRoundTripMidStream(t *testing.T) {
	r := New(7)
	for i := 0; i < 137; i++ {
		r.Uint64()
	}
	st := r.State()
	want := make([]uint64, 64)
	for i := range want {
		want[i] = r.Uint64()
	}
	fresh := &RNG{}
	if err := fresh.SetState(st); err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if got := fresh.Uint64(); got != w {
			t.Fatalf("restored draw %d = %d, want %d", i, got, w)
		}
	}
}

func TestSetStateRejectsZero(t *testing.T) {
	r := New(1)
	if err := r.SetState([4]uint64{}); err == nil {
		t.Fatal("all-zero state accepted")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestIntnBoundsAndCoverage(t *testing.T) {
	r := New(11)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) covered %d values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

// TestSource64Compatible seeds a math/rand.Rand from an RNG and checks
// the shared state advances through the wrapper — the path network
// initialisation takes.
func TestSource64Compatible(t *testing.T) {
	src := New(5)
	wrapped := rand.New(src)
	wrapped.Float64()
	wrapped.NormFloat64()
	// The wrapper drew from src, so a twin that replays the same draws
	// directly diverges from a twin that does not.
	twin := New(5)
	if src.Uint64() == twin.Uint64() {
		t.Error("wrapper did not draw from the underlying source")
	}
}

func TestSeedResets(t *testing.T) {
	r := New(3)
	first := r.Uint64()
	r.Uint64()
	r.Seed(3)
	if got := r.Uint64(); got != first {
		t.Errorf("Seed did not reset the stream: %d vs %d", got, first)
	}
}
