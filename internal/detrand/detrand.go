// Package detrand provides the repository's state-exportable
// deterministic RNG: a xoshiro256** generator seeded via splitmix64.
//
// math/rand.Rand is deterministic given a seed but opaque — its source
// state cannot be exported, so a training run using it cannot be
// checkpointed and resumed bit-identically. RNG closes that gap: the
// whole generator is four uint64 words, State/SetState round-trip them
// exactly, and every draw is a pure function of those words. The ermvet
// detrand check holds this package to the same discipline as the other
// determinism-critical packages (no global randomness, no wall clock).
//
// RNG also implements math/rand.Source64, so code that needs the
// stdlib's derived distributions (e.g. network initialisation through
// rand.New) can draw from the same state. Note that rand.Rand.Read
// buffers internally; avoid it on generators whose state is exported.
package detrand

// RNG is a xoshiro256** PRNG (Blackman & Vigna 2018) with exportable
// state. The zero value is invalid; construct with New or SetState.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64, the seeding
// procedure the xoshiro authors recommend.
func New(seed int64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to the state derived from seed. It
// implements math/rand.Source.
func (r *RNG) Seed(seed int64) {
	x := uint64(seed)
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		// The all-zero state is the one fixed point of xoshiro;
		// splitmix64 cannot reach it from four consecutive outputs, but
		// guard anyway.
		r.s[0] = 1
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits. It implements
// math/rand.Source64.
func (r *RNG) Uint64() uint64 {
	out := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return out
}

// Int63 returns a non-negative 63-bit value. It implements
// math/rand.Source.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0. The
// rejection loop makes the draw exactly uniform.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("detrand: Intn called with n <= 0")
	}
	un := uint64(n)
	const maxU = ^uint64(0)
	// Accept v < k·n where k = floor(2^64 / n); k·n - 1 = maxU - (2^64 mod n).
	bound := maxU - (maxU%un+1)%un
	for {
		if v := r.Uint64(); v <= bound {
			return int(v % un)
		}
	}
}

// State exports the generator's full state. Restoring it with SetState
// reproduces the exact future draw sequence.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState restores a state captured with State. The all-zero state is
// invalid (xoshiro's fixed point) and reports an error.
func (r *RNG) SetState(s [4]uint64) error {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return errZeroState
	}
	r.s = s
	return nil
}

type zeroStateError struct{}

func (zeroStateError) Error() string { return "detrand: all-zero RNG state is invalid" }

var errZeroState error = zeroStateError{}
