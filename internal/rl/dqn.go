// Package rl implements the reinforcement-learning substrate of RLMiner:
// a Deep Q-Network agent (Mnih et al. [26], the algorithm the paper's
// §III-C5 selects for its discrete state/action spaces) with experience
// replay, a periodically synchronised target network, an ε-greedy
// exploration schedule and action masking — Q-values of invalid actions
// are pushed to -inf exactly as the paper's masked value network does
// (Eq. 13).
package rl

import (
	"math"
	"math/rand"

	"erminer/internal/detrand"
	"erminer/internal/nn"
)

// Transition is one (s, a, r, s') experience tuple. NextMask carries the
// valid-action mask of the next state so the Bellman backup maximises
// only over allowed actions.
type Transition struct {
	State    []float64
	Action   int
	Reward   float64
	Next     []float64
	NextMask []bool
	Done     bool
}

// Replay is a fixed-capacity ring-buffer experience replay memory.
type Replay struct {
	buf []Transition
	cap int
	pos int
	n   int
}

// NewReplay returns a replay memory with the given capacity. It panics
// if capacity is not positive: a zero-capacity ring buffer would divide
// by zero on the first Add.
func NewReplay(capacity int) *Replay {
	if capacity <= 0 {
		panic("rl: NewReplay capacity must be positive")
	}
	return &Replay{buf: make([]Transition, capacity), cap: capacity}
}

// Add appends a transition, evicting the oldest when full.
func (r *Replay) Add(t Transition) {
	r.buf[r.pos] = t
	r.pos = (r.pos + 1) % r.cap
	if r.n < r.cap {
		r.n++
	}
}

// Len returns the number of stored transitions.
func (r *Replay) Len() int { return r.n }

// Sample draws k transitions uniformly with replacement.
func (r *Replay) Sample(rng *detrand.RNG, k int) []Transition {
	out := make([]Transition, k)
	for i := range out {
		out[i] = r.buf[rng.Intn(r.n)]
	}
	return out
}

// Config holds the DQN hyperparameters.
type Config struct {
	// Gamma is the discount factor. Zero means 0.95.
	Gamma float64
	// LR is the Adam learning rate. Zero means 1e-3.
	LR float64
	// BatchSize is the minibatch size. Zero means 32.
	BatchSize int
	// ReplayCapacity is the replay memory size. Zero means 10000.
	ReplayCapacity int
	// TargetSync is how many optimisation steps separate target-network
	// synchronisations. Zero means 200.
	TargetSync int
	// Warmup is the number of observed transitions before optimisation
	// starts. Zero means 100.
	Warmup int
	// EpsStart/EpsEnd/EpsDecaySteps define the linear ε schedule.
	// Zero values mean 1.0 / 0.05 / 3000.
	EpsStart, EpsEnd float64
	EpsDecaySteps    int
	// Hidden lists the hidden layer widths. Nil means [128, 128].
	Hidden []int
	// DoubleDQN selects the double-DQN backup (argmax online, evaluate
	// target).
	DoubleDQN bool
	// PrioritizedAlpha, when positive, replaces uniform replay with
	// proportional prioritized experience replay at that α (typical
	// value 0.6).
	PrioritizedAlpha float64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Gamma == 0 {
		out.Gamma = 0.95
	}
	if out.LR == 0 {
		out.LR = 1e-3
	}
	if out.BatchSize == 0 {
		out.BatchSize = 32
	}
	if out.ReplayCapacity == 0 {
		out.ReplayCapacity = 10000
	}
	if out.TargetSync == 0 {
		out.TargetSync = 200
	}
	if out.Warmup == 0 {
		out.Warmup = 100
	}
	if out.EpsStart == 0 {
		out.EpsStart = 1.0
	}
	if out.EpsEnd == 0 {
		out.EpsEnd = 0.05
	}
	if out.EpsDecaySteps == 0 {
		out.EpsDecaySteps = 3000
	}
	if out.Hidden == nil {
		out.Hidden = []int{128, 128}
	}
	return out
}

// Agent is a DQN agent over a fixed-dimensional discrete action space.
type Agent struct {
	cfg      Config
	online   *nn.MLP
	target   *nn.MLP
	opt      *nn.Adam
	replay   *Replay
	preplay  *PrioritizedReplay
	rng      *detrand.RNG
	steps    int // observed transitions (drives ε)
	optSteps int // optimisation steps (drives target sync)
}

// NewAgent builds an agent for the given state/action dimensions. The
// agent draws all its randomness from rng, whose state is exportable, so
// SaveState captures the agent completely.
func NewAgent(rng *detrand.RNG, stateDim, actionDim int, cfg Config) *Agent {
	c := cfg.withDefaults()
	sizes := append([]int{stateDim}, c.Hidden...)
	sizes = append(sizes, actionDim)
	// Network initialisation draws through the stdlib wrapper from the
	// same underlying state; it happens before any checkpoint, so the
	// wrapper's internal buffering never leaks into a saved state.
	return NewAgentFrom(rng, nn.NewMLP(rand.New(rng), sizes...), cfg)
}

// NewAgentFrom builds an agent around an existing value network (used by
// RLMiner-ft to fine-tune a previously trained network). The exploration
// schedule restarts at cfg's settings.
func NewAgentFrom(rng *detrand.RNG, net *nn.MLP, cfg Config) *Agent {
	c := cfg.withDefaults()
	a := &Agent{
		cfg:    c,
		online: net,
		target: net.Clone(),
		opt:    nn.NewAdam(c.LR),
		rng:    rng,
	}
	if c.PrioritizedAlpha > 0 {
		a.preplay = NewPrioritizedReplay(c.ReplayCapacity, c.PrioritizedAlpha)
	} else {
		a.replay = NewReplay(c.ReplayCapacity)
	}
	return a
}

// replayLen returns the number of stored transitions.
func (a *Agent) replayLen() int {
	if a.preplay != nil {
		return a.preplay.Len()
	}
	return a.replay.Len()
}

// Network returns the online value network.
func (a *Agent) Network() *nn.MLP { return a.online }

// Epsilon returns the current exploration rate.
func (a *Agent) Epsilon() float64 {
	c := a.cfg
	if a.steps >= c.EpsDecaySteps {
		return c.EpsEnd
	}
	frac := float64(a.steps) / float64(c.EpsDecaySteps)
	return c.EpsStart + (c.EpsEnd-c.EpsStart)*frac
}

// QValues returns the online network's Q-value vector for a state.
func (a *Agent) QValues(state []float64) []float64 {
	return append([]float64(nil), a.online.Predict(state)...)
}

// SelectAction returns a masked ε-greedy action: with probability eps a
// uniformly random valid action, otherwise the valid action with maximal
// Q-value (the paper's Eq. 13 mask: invalid logits are −inf). It panics
// if no action is valid — the environment always allows "stop".
func (a *Agent) SelectAction(state []float64, mask []bool, eps float64) int {
	if eps > 0 && a.rng.Float64() < eps {
		var valid []int
		for i, ok := range mask {
			if ok {
				valid = append(valid, i)
			}
		}
		if len(valid) == 0 {
			panic("rl: no valid action")
		}
		return valid[a.rng.Intn(len(valid))]
	}
	q := a.online.Predict(state)
	best, bestQ := -1, math.Inf(-1)
	for i, ok := range mask {
		if ok && q[i] > bestQ {
			best, bestQ = i, q[i]
		}
	}
	if best < 0 {
		panic("rl: no valid action")
	}
	return best
}

// Observe stores a transition and advances the ε schedule.
func (a *Agent) Observe(t Transition) {
	if a.preplay != nil {
		a.preplay.Add(t)
	} else {
		a.replay.Add(t)
	}
	a.steps++
}

// TrainStep samples a minibatch and performs one optimisation step. It
// returns the mean Huber loss actually optimised and whether an
// optimisation step happened at all — during warmup (replay smaller than
// Warmup or BatchSize) it returns (0, false), which callers must not
// confuse with a genuine zero-loss step.
func (a *Agent) TrainStep() (loss float64, stepped bool) {
	if a.replayLen() < a.cfg.Warmup || a.replayLen() < a.cfg.BatchSize {
		return 0, false
	}
	var batch []Transition
	var prioIdxs []int
	if a.preplay != nil {
		batch, prioIdxs = a.preplay.Sample(a.rng, a.cfg.BatchSize)
	} else {
		batch = a.replay.Sample(a.rng, a.cfg.BatchSize)
	}

	stateDim := len(batch[0].State)
	states := nn.NewMatrix(len(batch), stateDim)
	nexts := nn.NewMatrix(len(batch), stateDim)
	for i, t := range batch {
		copy(states.Row(i), t.State)
		if !t.Done {
			copy(nexts.Row(i), t.Next)
		}
	}

	// Bellman targets from the target network, maximising over the next
	// state's valid actions only.
	targetQ := a.target.Forward(nexts)
	var onlineNextQ *nn.Matrix
	if a.cfg.DoubleDQN {
		onlineNextQ = a.online.Forward(nexts)
	}
	targets := make([]float64, len(batch))
	for i, t := range batch {
		targets[i] = t.Reward
		if t.Done {
			continue
		}
		if a.cfg.DoubleDQN {
			best, bestQ := -1, math.Inf(-1)
			row := onlineNextQ.Row(i)
			for j, ok := range t.NextMask {
				if ok && row[j] > bestQ {
					best, bestQ = j, row[j]
				}
			}
			if best >= 0 {
				targets[i] += a.cfg.Gamma * targetQ.At(i, best)
			}
		} else {
			bestQ := math.Inf(-1)
			row := targetQ.Row(i)
			for j, ok := range t.NextMask {
				if ok && row[j] > bestQ {
					bestQ = row[j]
				}
			}
			if !math.IsInf(bestQ, -1) {
				targets[i] += a.cfg.Gamma * bestQ
			}
		}
	}

	// Forward-backward on the online network; the loss gradient is
	// non-zero only at the taken actions (Huber-clipped error).
	q := a.online.Forward(states)
	grad := nn.NewMatrix(q.Rows, q.Cols)
	errs := make([]float64, len(batch))
	for i, t := range batch {
		e := q.At(i, t.Action) - targets[i]
		errs[i] = e
		loss += nn.HuberLoss(e)
		grad.Set(i, t.Action, nn.HuberGrad(e)/float64(len(batch)))
	}
	a.online.ZeroGrads()
	a.online.Backward(grad)
	a.opt.Step(a.online.Params())
	if a.preplay != nil {
		a.preplay.Update(prioIdxs, errs)
	}

	a.optSteps++
	if a.optSteps%a.cfg.TargetSync == 0 {
		a.target.CopyFrom(a.online)
	}
	return loss / float64(len(batch)), true
}
