package rl

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"erminer/internal/detrand"
	"erminer/internal/nn"
)

// savedReplay is the wire form of a uniform replay buffer. The ring is
// saved verbatim — buffer contents, write position and fill level — so a
// restored agent samples exactly the transitions the original would.
type savedReplay struct {
	Cap int
	Pos int
	N   int
	Buf []Transition
}

// savedPrioReplay is the wire form of a prioritized replay buffer,
// including the full sum tree so sampling probabilities survive the
// round trip bit-for-bit.
type savedPrioReplay struct {
	Capacity int
	Pos      int
	N        int
	MaxPrio  float64
	Tree     []float64
	Data     []Transition
}

// savedAgentVersion numbers the agent gob format, including everything
// it embeds (Config, replay buffers, Adam moments); bump on any shape
// change (wiredrift gates it).
const savedAgentVersion = 1

// savedAgent is the gob wire format of a DQN agent mid-training. Cfg is
// the resolved configuration (defaults already applied), so loading does
// not re-apply defaults — a caller who explicitly configured a value
// that collides with a zero sentinel keeps it.
//
//ermvet:wire
type savedAgent struct {
	Cfg      Config
	Online   []byte // nn.MLP.Save wire
	Target   []byte
	Adam     nn.AdamState
	Steps    int // ε-schedule position
	OptSteps int // target-sync position
	RNG      [4]uint64
	Replay   *savedReplay
	PReplay  *savedPrioReplay
}

// SaveState serialises the complete training state of the agent: both
// networks, optimiser moments, replay contents, step counters and the
// RNG state. An agent restored with LoadAgentState continues training
// bit-identically to one that was never interrupted.
func (a *Agent) SaveState() ([]byte, error) {
	var online, target bytes.Buffer
	if err := a.online.Save(&online); err != nil {
		return nil, fmt.Errorf("rl: saving online net: %w", err)
	}
	if err := a.target.Save(&target); err != nil {
		return nil, fmt.Errorf("rl: saving target net: %w", err)
	}
	sa := savedAgent{
		Cfg:      a.cfg,
		Online:   online.Bytes(),
		Target:   target.Bytes(),
		Adam:     a.opt.State(a.online.Params()),
		Steps:    a.steps,
		OptSteps: a.optSteps,
		RNG:      a.rng.State(),
	}
	if a.preplay != nil {
		p := a.preplay
		sa.PReplay = &savedPrioReplay{
			Capacity: p.capacity,
			Pos:      p.pos,
			N:        p.n,
			MaxPrio:  p.maxPrio,
			Tree:     append([]float64(nil), p.tree...),
			Data:     append([]Transition(nil), p.data...),
		}
	} else {
		r := a.replay
		sa.Replay = &savedReplay{
			Cap: r.cap,
			Pos: r.pos,
			N:   r.n,
			Buf: append([]Transition(nil), r.buf...),
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(sa); err != nil {
		return nil, fmt.Errorf("rl: encoding agent state: %w", err)
	}
	return buf.Bytes(), nil
}

// LoadAgentState reconstructs an agent saved with SaveState.
func LoadAgentState(data []byte) (*Agent, error) {
	var sa savedAgent
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&sa); err != nil {
		return nil, fmt.Errorf("rl: decoding agent state: %w", err)
	}
	online, err := nn.LoadMLP(bytes.NewReader(sa.Online))
	if err != nil {
		return nil, fmt.Errorf("rl: restoring online net: %w", err)
	}
	target, err := nn.LoadMLP(bytes.NewReader(sa.Target))
	if err != nil {
		return nil, fmt.Errorf("rl: restoring target net: %w", err)
	}
	rng := &detrand.RNG{}
	if err := rng.SetState(sa.RNG); err != nil {
		return nil, fmt.Errorf("rl: restoring RNG: %w", err)
	}
	a := &Agent{
		cfg:      sa.Cfg,
		online:   online,
		target:   target,
		opt:      nn.NewAdam(sa.Cfg.LR),
		rng:      rng,
		steps:    sa.Steps,
		optSteps: sa.OptSteps,
	}
	if err := a.opt.SetState(online.Params(), sa.Adam); err != nil {
		return nil, err
	}
	switch {
	case sa.PReplay != nil:
		p := sa.PReplay
		if p.Capacity <= 0 || len(p.Tree) != 2*p.Capacity || len(p.Data) != p.Capacity {
			return nil, fmt.Errorf("rl: prioritized replay state inconsistent (cap %d, tree %d, data %d)",
				p.Capacity, len(p.Tree), len(p.Data))
		}
		a.preplay = &PrioritizedReplay{
			capacity: p.Capacity,
			alpha:    sa.Cfg.PrioritizedAlpha,
			tree:     append([]float64(nil), p.Tree...),
			data:     append([]Transition(nil), p.Data...),
			pos:      p.Pos,
			n:        p.N,
			maxPrio:  p.MaxPrio,
		}
	case sa.Replay != nil:
		r := sa.Replay
		if r.Cap <= 0 || len(r.Buf) != r.Cap {
			return nil, fmt.Errorf("rl: replay state inconsistent (cap %d, buf %d)", r.Cap, len(r.Buf))
		}
		a.replay = &Replay{
			buf: append([]Transition(nil), r.Buf...),
			cap: r.Cap,
			pos: r.Pos,
			n:   r.N,
		}
	default:
		return nil, fmt.Errorf("rl: agent state has no replay buffer")
	}
	return a, nil
}
