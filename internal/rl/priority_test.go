package rl

import (
	"erminer/internal/detrand"
	"testing"
)

func TestNewPrioritizedReplayZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPrioritizedReplay(0, α) did not panic")
		}
	}()
	NewPrioritizedReplay(0, 0.6)
}

func TestPrioritizedReplayAddAndLen(t *testing.T) {
	p := NewPrioritizedReplay(4, 0.6)
	if p.Len() != 0 {
		t.Fatal("new replay not empty")
	}
	for i := 0; i < 6; i++ {
		p.Add(Transition{Reward: float64(i)})
	}
	if p.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", p.Len())
	}
}

func TestPrioritizedReplaySamplesHighPriority(t *testing.T) {
	p := NewPrioritizedReplay(8, 1.0)
	for i := 0; i < 8; i++ {
		p.Add(Transition{Reward: float64(i)})
	}
	// Give transition 3 an enormous error, everything else near zero.
	idxs := make([]int, 8)
	errs := make([]float64, 8)
	for i := range idxs {
		idxs[i] = i
		errs[i] = 0.001
	}
	errs[3] = 100
	p.Update(idxs, errs)

	rng := detrand.New(1)
	hits := 0
	const draws = 2000
	for i := 0; i < draws; i++ {
		batch, _ := p.Sample(rng, 1)
		if batch[0].Reward == 3 {
			hits++
		}
	}
	if float64(hits)/draws < 0.9 {
		t.Errorf("high-priority transition sampled %d/%d times", hits, draws)
	}
}

func TestPrioritizedReplayUniformAtAlphaZero(t *testing.T) {
	p := NewPrioritizedReplay(8, 0)
	for i := 0; i < 8; i++ {
		p.Add(Transition{Reward: float64(i)})
	}
	idxs := []int{0}
	p.Update(idxs, []float64{1e9}) // α = 0 flattens any priority to 1
	rng := detrand.New(2)
	counts := make(map[float64]int)
	for i := 0; i < 4000; i++ {
		batch, _ := p.Sample(rng, 1)
		counts[batch[0].Reward]++
	}
	for r, c := range counts {
		if c < 300 || c > 700 {
			t.Errorf("α=0 sampling skewed: reward %g drawn %d/4000", r, c)
		}
	}
}

func TestPrioritizedReplayIndicesValid(t *testing.T) {
	p := NewPrioritizedReplay(5, 0.6) // rounds up to 8
	for i := 0; i < 3; i++ {          // partially filled
		p.Add(Transition{Reward: float64(i)})
	}
	rng := detrand.New(3)
	for i := 0; i < 100; i++ {
		batch, idxs := p.Sample(rng, 4)
		for j, idx := range idxs {
			if idx < 0 || idx >= p.Len() {
				t.Fatalf("index %d out of range", idx)
			}
			if batch[j].Reward != p.data[idx].Reward {
				t.Fatal("index does not correspond to sampled transition")
			}
		}
	}
}

// TestDQNWithPrioritizedReplayLearns: the bandit test again, through the
// prioritized path.
func TestDQNWithPrioritizedReplayLearns(t *testing.T) {
	rng := detrand.New(4)
	a := NewAgent(rng, 1, 2, Config{
		Warmup: 20, BatchSize: 8, TargetSync: 20,
		Hidden: []int{8}, EpsDecaySteps: 200, Gamma: 0.9,
		PrioritizedAlpha: 0.6,
	})
	state := []float64{1}
	mask := []bool{true, true}
	for i := 0; i < 600; i++ {
		act := a.SelectAction(state, mask, a.Epsilon())
		r := 0.0
		if act == 1 {
			r = 1
		}
		a.Observe(Transition{State: state, Action: act, Reward: r, Done: true})
		a.TrainStep()
	}
	q := a.QValues(state)
	if q[1] <= q[0] {
		t.Errorf("Q = %v, want action 1 preferred", q)
	}
}
