package rl

import (
	"erminer/internal/detrand"
	"testing"
)

func TestReplayRingBuffer(t *testing.T) {
	r := NewReplay(3)
	if r.Len() != 0 {
		t.Fatal("new replay not empty")
	}
	for i := 0; i < 5; i++ {
		r.Add(Transition{Reward: float64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want capacity 3", r.Len())
	}
	// The oldest transitions (0, 1) were evicted.
	rng := detrand.New(1)
	for i := 0; i < 50; i++ {
		for _, tr := range r.Sample(rng, 3) {
			if tr.Reward < 2 {
				t.Fatalf("evicted transition sampled: %g", tr.Reward)
			}
		}
	}
}

func TestEpsilonSchedule(t *testing.T) {
	rng := detrand.New(2)
	a := NewAgent(rng, 2, 3, Config{EpsStart: 1.0, EpsEnd: 0.1, EpsDecaySteps: 100})
	if got := a.Epsilon(); got != 1.0 {
		t.Errorf("initial ε = %g", got)
	}
	for i := 0; i < 50; i++ {
		a.Observe(Transition{State: []float64{0, 0}, Next: []float64{0, 0}, NextMask: []bool{true, true, true}})
	}
	mid := a.Epsilon()
	if mid >= 1.0 || mid <= 0.1 {
		t.Errorf("mid ε = %g, want strictly between", mid)
	}
	for i := 0; i < 100; i++ {
		a.Observe(Transition{State: []float64{0, 0}, Next: []float64{0, 0}, NextMask: []bool{true, true, true}})
	}
	if got := a.Epsilon(); got != 0.1 {
		t.Errorf("final ε = %g, want 0.1", got)
	}
}

func TestSelectActionRespectsMask(t *testing.T) {
	rng := detrand.New(3)
	a := NewAgent(rng, 2, 4, Config{})
	state := []float64{0.5, -0.5}
	mask := []bool{false, true, false, true}
	// Greedy and random selections must both respect the mask.
	for i := 0; i < 200; i++ {
		if got := a.SelectAction(state, mask, 1.0); !mask[got] {
			t.Fatalf("random selection picked masked action %d", got)
		}
		if got := a.SelectAction(state, mask, 0); !mask[got] {
			t.Fatalf("greedy selection picked masked action %d", got)
		}
	}
}

func TestSelectActionNoValidPanics(t *testing.T) {
	rng := detrand.New(4)
	a := NewAgent(rng, 1, 2, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("all-masked selection did not panic")
		}
	}()
	a.SelectAction([]float64{0}, []bool{false, false}, 0)
}

func TestTrainStepWarmup(t *testing.T) {
	rng := detrand.New(5)
	a := NewAgent(rng, 1, 2, Config{Warmup: 50, BatchSize: 8})
	a.Observe(Transition{State: []float64{0}, Next: []float64{0}, NextMask: []bool{true, true}})
	if loss, stepped := a.TrainStep(); stepped || loss != 0 {
		t.Errorf("training before warmup returned (%g, %v), want (0, false)", loss, stepped)
	}
}

func TestNewReplayZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewReplay(0) did not panic")
		}
	}()
	NewReplay(0)
}

// twoArmBandit is the simplest possible environment: one state, two
// actions with rewards 0 and 1. The agent must learn Q(a1) > Q(a0).
func TestDQNLearnsBandit(t *testing.T) {
	rng := detrand.New(6)
	a := NewAgent(rng, 1, 2, Config{
		Warmup: 20, BatchSize: 8, TargetSync: 20,
		Hidden: []int{8}, EpsDecaySteps: 200, Gamma: 0.9,
	})
	state := []float64{1}
	mask := []bool{true, true}
	for i := 0; i < 600; i++ {
		act := a.SelectAction(state, mask, a.Epsilon())
		r := 0.0
		if act == 1 {
			r = 1
		}
		a.Observe(Transition{State: state, Action: act, Reward: r, Done: true})
		a.TrainStep()
	}
	q := a.QValues(state)
	if q[1] <= q[0] {
		t.Errorf("Q = %v, want action 1 preferred", q)
	}
	if q[1] < 0.6 || q[1] > 1.4 {
		t.Errorf("Q(a1) = %g, want ≈ 1 (terminal reward)", q[1])
	}
}

// chainMDP: states s0 -> s1 -> goal. Action 0 advances, action 1
// terminates with 0 reward. Reaching the goal from s1 pays 1. The agent
// must propagate value back to s0 through the Bellman backup.
func TestDQNLearnsChain(t *testing.T) {
	rng := detrand.New(7)
	for _, double := range []bool{false, true} {
		a := NewAgent(rng, 2, 2, Config{
			Warmup: 30, BatchSize: 16, TargetSync: 25,
			Hidden: []int{16}, EpsDecaySteps: 400, Gamma: 0.9,
			DoubleDQN: double,
		})
		s0 := []float64{1, 0}
		s1 := []float64{0, 1}
		mask := []bool{true, true}
		for episode := 0; episode < 400; episode++ {
			state := s0
			for state != nil {
				act := a.SelectAction(state, mask, a.Epsilon())
				var tr Transition
				switch {
				case act == 1: // quit
					tr = Transition{State: state, Action: 1, Reward: 0, Done: true}
					a.Observe(tr)
					a.TrainStep()
					state = nil
				case equal(state, s0):
					tr = Transition{State: s0, Action: 0, Reward: 0, Next: s1, NextMask: mask}
					a.Observe(tr)
					a.TrainStep()
					state = s1
				default: // s1 -> goal
					tr = Transition{State: s1, Action: 0, Reward: 1, Done: true}
					a.Observe(tr)
					a.TrainStep()
					state = nil
				}
			}
		}
		q0 := a.QValues(s0)
		q1 := a.QValues(s1)
		if q1[0] <= q1[1] {
			t.Errorf("double=%v: s1 Q = %v, want advance preferred", double, q1)
		}
		if q0[0] <= q0[1] {
			t.Errorf("double=%v: s0 Q = %v, want advance preferred (value propagated)", double, q0)
		}
		// Q(s0, advance) ≈ γ · 1.
		if q0[0] < 0.5 || q0[0] > 1.3 {
			t.Errorf("double=%v: Q(s0, advance) = %g, want ≈ 0.9", double, q0[0])
		}
	}
}

func equal(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestQValuesIsCopy(t *testing.T) {
	rng := detrand.New(8)
	a := NewAgent(rng, 1, 2, Config{})
	q := a.QValues([]float64{1})
	q[0] = 999
	q2 := a.QValues([]float64{1})
	if q2[0] == 999 {
		t.Error("QValues returns shared storage")
	}
}

func TestNewAgentFromReusesNetwork(t *testing.T) {
	rng := detrand.New(9)
	a := NewAgent(rng, 2, 3, Config{})
	b := NewAgentFrom(rng, a.Network(), Config{})
	s := []float64{0.2, 0.8}
	qa, qb := a.QValues(s), b.QValues(s)
	for i := range qa {
		if qa[i] != qb[i] {
			t.Errorf("transferred network differs at %d", i)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := (&Config{}).withDefaults()
	if c.Gamma != 0.95 || c.LR != 1e-3 || c.BatchSize != 32 ||
		c.ReplayCapacity != 10000 || c.TargetSync != 200 ||
		c.EpsStart != 1.0 || c.EpsEnd != 0.05 || len(c.Hidden) != 2 {
		t.Errorf("defaults = %+v", c)
	}
}
