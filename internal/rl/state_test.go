package rl

import (
	"bytes"
	"testing"

	"erminer/internal/detrand"
)

// driveBandit runs n interaction+training steps of the two-arm bandit.
// Everything it does is a pure function of the agent's state, so two
// agents with identical state stay identical under it.
func driveBandit(a *Agent, n int) {
	state := []float64{1}
	mask := []bool{true, true}
	for i := 0; i < n; i++ {
		act := a.SelectAction(state, mask, a.Epsilon())
		r := 0.0
		if act == 1 {
			r = 1
		}
		a.Observe(Transition{State: state, Action: act, Reward: r, Done: true})
		a.TrainStep()
	}
}

// TestAgentStateRoundTripBitIdentical is the core resume guarantee at
// the agent level: save at step k, restore in a "fresh process"
// (LoadAgentState from bytes), continue both — the final serialised
// states must be byte-for-byte equal.
func TestAgentStateRoundTripBitIdentical(t *testing.T) {
	configs := map[string]Config{
		"uniform": {Warmup: 20, BatchSize: 8, TargetSync: 20,
			Hidden: []int{8}, EpsDecaySteps: 200, ReplayCapacity: 64},
		"prioritized": {Warmup: 20, BatchSize: 8, TargetSync: 20,
			Hidden: []int{8}, EpsDecaySteps: 200, ReplayCapacity: 64,
			PrioritizedAlpha: 0.6},
		"double": {Warmup: 20, BatchSize: 8, TargetSync: 20,
			Hidden: []int{8}, EpsDecaySteps: 200, ReplayCapacity: 64,
			DoubleDQN: true},
	}
	for name, cfg := range configs {
		for _, k := range []int{0, 10, 57, 150} {
			a := NewAgent(detrand.New(11), 1, 2, cfg)
			driveBandit(a, k)
			blob, err := a.SaveState()
			if err != nil {
				t.Fatalf("%s k=%d: SaveState: %v", name, k, err)
			}
			b, err := LoadAgentState(blob)
			if err != nil {
				t.Fatalf("%s k=%d: LoadAgentState: %v", name, k, err)
			}

			driveBandit(a, 120)
			driveBandit(b, 120)

			fa, err := a.SaveState()
			if err != nil {
				t.Fatal(err)
			}
			fb, err := b.SaveState()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fa, fb) {
				t.Errorf("%s k=%d: resumed agent diverged from uninterrupted run", name, k)
			}
		}
	}
}

// TestAgentStateCountersSurvive pins that the ε-schedule and target-sync
// positions are part of the state, not restarted.
func TestAgentStateCountersSurvive(t *testing.T) {
	a := NewAgent(detrand.New(5), 1, 2, Config{Warmup: 10, BatchSize: 4,
		Hidden: []int{4}, EpsDecaySteps: 100, ReplayCapacity: 32})
	driveBandit(a, 40)
	blob, err := a.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadAgentState(blob)
	if err != nil {
		t.Fatal(err)
	}
	if b.steps != a.steps || b.optSteps != a.optSteps {
		t.Errorf("counters lost: got (%d, %d), want (%d, %d)", b.steps, b.optSteps, a.steps, a.optSteps)
	}
	if b.Epsilon() != a.Epsilon() {
		t.Errorf("ε position lost: %g vs %g", b.Epsilon(), a.Epsilon())
	}
}

func TestLoadAgentStateRejectsGarbage(t *testing.T) {
	if _, err := LoadAgentState([]byte("not a gob stream")); err == nil {
		t.Error("garbage accepted")
	}
}
