package rl

import (
	"math"

	"erminer/internal/detrand"
)

// PrioritizedReplay is proportional prioritized experience replay
// (Schaul et al. 2016): transitions are sampled with probability
// proportional to |δ|^α (δ = last Bellman error), focusing optimisation
// on surprising experiences. A sum-tree gives O(log n) sampling and
// priority updates.
type PrioritizedReplay struct {
	capacity int
	alpha    float64
	tree     []float64 // binary sum tree over 2*capacity nodes
	data     []Transition
	pos      int
	n        int
	maxPrio  float64
}

// NewPrioritizedReplay returns a prioritized replay memory. alpha = 0
// degrades to uniform sampling; the usual value is 0.6. It panics if
// capacity is not positive, matching NewReplay rather than silently
// rounding up to a one-slot buffer.
func NewPrioritizedReplay(capacity int, alpha float64) *PrioritizedReplay {
	if capacity <= 0 {
		panic("rl: NewPrioritizedReplay capacity must be positive")
	}
	// Round capacity up to a power of two for a clean tree layout.
	c := 1
	for c < capacity {
		c *= 2
	}
	return &PrioritizedReplay{
		capacity: c,
		alpha:    alpha,
		tree:     make([]float64, 2*c),
		data:     make([]Transition, c),
		maxPrio:  1,
	}
}

// Len returns the number of stored transitions.
func (p *PrioritizedReplay) Len() int { return p.n }

// Add stores a transition with the maximum seen priority so it is
// sampled at least once soon.
func (p *PrioritizedReplay) Add(t Transition) {
	idx := p.pos
	p.data[idx] = t
	p.setPriority(idx, p.maxPrio)
	p.pos = (p.pos + 1) % p.capacity
	if p.n < p.capacity {
		p.n++
	}
}

// setPriority writes |δ|^α into the leaf and propagates the sums up.
func (p *PrioritizedReplay) setPriority(idx int, prio float64) {
	node := idx + p.capacity
	p.tree[node] = prio
	for node > 1 {
		node /= 2
		p.tree[node] = p.tree[2*node] + p.tree[2*node+1]
	}
}

// Sample draws k transitions proportionally to priority, returning their
// indices for later priority updates.
func (p *PrioritizedReplay) Sample(rng *detrand.RNG, k int) ([]Transition, []int) {
	out := make([]Transition, k)
	idxs := make([]int, k)
	total := p.tree[1]
	for i := 0; i < k; i++ {
		x := rng.Float64() * total
		node := 1
		for node < p.capacity {
			if x < p.tree[2*node] {
				node = 2 * node
			} else {
				x -= p.tree[2*node]
				node = 2*node + 1
			}
		}
		idx := node - p.capacity
		if idx >= p.n {
			// Rounding landed on an unused leaf (possible with float
			// noise); fall back to uniform.
			idx = rng.Intn(p.n)
		}
		out[i] = p.data[idx]
		idxs[i] = idx
	}
	return out, idxs
}

// Update records the new Bellman errors of sampled transitions.
func (p *PrioritizedReplay) Update(idxs []int, errs []float64) {
	for i, idx := range idxs {
		prio := math.Pow(math.Abs(errs[i])+1e-6, p.alpha)
		if prio > p.maxPrio {
			p.maxPrio = prio
		}
		p.setPriority(idx, prio)
	}
}
