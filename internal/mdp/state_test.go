package mdp

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// driveEnvScripted applies a fixed pseudo-policy for n steps, resetting
// at episode boundaries. The policy is a pure function of the step index
// and the environment's mask, so two identical environments stay in
// lockstep under it.
func driveEnvScripted(t *testing.T, e *Env, n int) []float64 {
	t.Helper()
	rewards := make([]float64, 0, n)
	mask := e.Mask()
	for i := 0; i < n; i++ {
		if e.Done() {
			_, mask = e.Reset()
		}
		var valid []int
		for d, ok := range mask {
			if ok {
				valid = append(valid, d)
			}
		}
		if len(valid) == 0 {
			t.Fatal("no valid action")
		}
		res := e.Step(valid[(i*7+3)%len(valid)])
		rewards = append(rewards, res.Reward)
		mask = res.Mask
	}
	return rewards
}

// TestEnvStateRoundTripBitIdentical saves mid-run (including mid-episode
// positions), restores into a freshly built environment, and checks the
// two runs stay byte-for-byte identical: same rewards, same discovered
// rules, same evaluator stats, same re-serialised state.
func TestEnvStateRoundTripBitIdentical(t *testing.T) {
	for _, k := range []int{0, 3, 7, 18} {
		a, err := NewEnv(envFixture(t), Config{})
		if err != nil {
			t.Fatal(err)
		}
		driveEnvScripted(t, a, k)
		blob, err := a.SaveState()
		if err != nil {
			t.Fatalf("k=%d: SaveState: %v", k, err)
		}
		b, err := NewEnv(envFixture(t), Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := b.RestoreState(blob); err != nil {
			t.Fatalf("k=%d: RestoreState: %v", k, err)
		}

		ra := driveEnvScripted(t, a, 30)
		rb := driveEnvScripted(t, b, 30)
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("k=%d: reward %d diverged: %g vs %g", k, i, ra[i], rb[i])
			}
		}

		fa, fb := a.AllFound(), b.AllFound()
		if len(fa) != len(fb) {
			t.Fatalf("k=%d: AllFound sizes differ: %d vs %d", k, len(fa), len(fb))
		}
		for i := range fa {
			ma, mb := fa[i].Measures, fb[i].Measures
			if fa[i].Rule.Key() != fb[i].Rule.Key() ||
				ma.Support != mb.Support || ma.Certainty != mb.Certainty ||
				ma.Quality != mb.Quality || ma.Utility != mb.Utility {
				t.Fatalf("k=%d: AllFound[%d] differs", k, i)
			}
		}
		if a.Evaluator().Stats.Evaluations != b.Evaluator().Stats.Evaluations {
			t.Errorf("k=%d: Evaluations diverged: %d vs %d",
				k, a.Evaluator().Stats.Evaluations, b.Evaluator().Stats.Evaluations)
		}

		sa, err := a.SaveState()
		if err != nil {
			t.Fatal(err)
		}
		sb, err := b.SaveState()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(normalizeIndexStats(t, sa), normalizeIndexStats(t, sb)) {
			t.Errorf("k=%d: final serialised states differ", k)
		}
	}
}

// normalizeIndexStats zeroes the evaluator work counters that are
// allowed to differ after a resume: the master-index cache is not part
// of the checkpoint, so a resumed run may rebuild indexes (IndexBuilds,
// TuplesScanned) the uninterrupted run had warm. Evaluations — the
// metric behind ResultSet.Explored — must stay bit-identical and is NOT
// normalised.
func normalizeIndexStats(t *testing.T, blob []byte) []byte {
	t.Helper()
	var w envWire
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&w); err != nil {
		t.Fatal(err)
	}
	w.EvalStats.IndexBuilds = 0
	w.EvalStats.TuplesScanned = 0
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEnvStateRebuiltRulesMatch pins that rules reconstructed from node
// keys are structurally identical to the originals (normalised order,
// labels included).
func TestEnvStateRebuiltRulesMatch(t *testing.T) {
	e, err := NewEnv(envFixture(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	driveEnvScripted(t, e, 12)
	blob, err := e.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewEnv(envFixture(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	for key, orig := range e.seen {
		got, ok := r.seen[key]
		if !ok {
			t.Fatalf("node %q missing after restore", key)
		}
		if got.r.Key() != orig.r.Key() {
			t.Errorf("node %q rule key mismatch", key)
		}
		if len(got.r.Pattern) != len(orig.r.Pattern) {
			t.Errorf("node %q pattern length mismatch", key)
			continue
		}
		for i := range orig.r.Pattern {
			if got.r.Pattern[i].Label != orig.r.Pattern[i].Label {
				t.Errorf("node %q pattern %d label %q, want %q",
					key, i, got.r.Pattern[i].Label, orig.r.Pattern[i].Label)
			}
		}
	}
}

func TestEnvRestoreRejectsGarbage(t *testing.T) {
	e, err := NewEnv(envFixture(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RestoreState([]byte("junk")); err == nil {
		t.Error("garbage accepted")
	}
}
