package mdp

import (
	"fmt"
	"math"
	"testing"

	"erminer/internal/core"
	"erminer/internal/measure"
	"erminer/internal/relation"
	"erminer/internal/schema"
)

// envFixture builds a precisely controlled problem:
//
//	input/master: A (2 values, determines Y), B (2 values, random wrt Y),
//	              G (input-only; g0 exactly when B = b1), Y
//	20 rows; η_s = 5.
//
// Properties used in the tests:
//   - rule (A) → Y has S = 20, C = 1, Q = 1: valid AND certain;
//   - rule (B) → Y has C < 1: valid and refinable;
//   - pattern B=b0 co-occurs with G=g0 on zero rows.
func envFixture(t testing.TB) *core.Problem {
	t.Helper()
	pool := relation.NewPool()
	in := relation.NewSchema(
		relation.Attribute{Name: "A", Domain: "a"},
		relation.Attribute{Name: "B", Domain: "b"},
		relation.Attribute{Name: "G"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	ms := relation.NewSchema(
		relation.Attribute{Name: "A", Domain: "a"},
		relation.Attribute{Name: "B", Domain: "b"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	input := relation.New(in, pool)
	master := relation.New(ms, pool)
	for i := 0; i < 20; i++ {
		a := i % 2
		b := (i / 2) % 2
		g := "g1"
		if b == 1 {
			g = "g0"
		}
		y := fmt.Sprintf("y%d", a)
		input.AppendRow([]string{fmt.Sprintf("a%d", a), fmt.Sprintf("b%d", b), g, y})
		master.AppendRow([]string{fmt.Sprintf("a%d", a), fmt.Sprintf("b%d", b), y})
	}
	return &core.Problem{
		Input:            input,
		Master:           master,
		Match:            schema.AutoMatch(in, ms),
		Y:                3,
		Ym:               2,
		SupportThreshold: 5,
		TopK:             10,
	}
}

// dims resolves the environment's action indices by semantic identity.
func dims(t testing.TB, e *Env) (lhsA, lhsB, condB0, condG0 int) {
	t.Helper()
	lhsA, lhsB, condB0, condG0 = -1, -1, -1, -1
	s := e.Space()
	for d := 0; d < s.NumLHS(); d++ {
		switch s.LHSPairs[d].Input {
		case 0:
			lhsA = d
		case 1:
			lhsB = d
		}
	}
	in := e.Evaluator().Input()
	b0, _ := in.Dict(1).Lookup("b0")
	g0, _ := in.Dict(2).Lookup("g0")
	for d := s.NumLHS(); d < s.Dim(); d++ {
		u := s.Unit(d)
		if u.Cond.Attr == 1 && u.Cond.Matches(b0) {
			condB0 = d
		}
		if u.Cond.Attr == 2 && u.Cond.Matches(g0) {
			condG0 = d
		}
	}
	if lhsA < 0 || lhsB < 0 || condB0 < 0 || condG0 < 0 {
		t.Fatalf("fixture dims not found: %d %d %d %d", lhsA, lhsB, condB0, condG0)
	}
	return
}

func TestEnvDimensions(t *testing.T) {
	e, err := NewEnv(envFixture(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// s_l: A and B matched (G input-only, Y excluded) = 2 dims.
	// s_p: A 2 values + B 2 values + G 2 values = 6 dims... minus any
	// pruned by MinValueCount (all counts are 10 ≥ 5, none pruned).
	if e.Space().NumLHS() != 2 {
		t.Errorf("NumLHS = %d, want 2", e.Space().NumLHS())
	}
	if e.StateDim() != 8 {
		t.Errorf("StateDim = %d, want 8", e.StateDim())
	}
	if e.ActionDim() != 9 || e.StopAction() != 8 {
		t.Errorf("ActionDim = %d, StopAction = %d", e.ActionDim(), e.StopAction())
	}
}

func TestEnvResetState(t *testing.T) {
	e, err := NewEnv(envFixture(t), Config{DisableSeedSingletons: true})
	if err != nil {
		t.Fatal(err)
	}
	state, mask := e.Reset()
	for i, v := range state {
		if v != 0 {
			t.Errorf("root state[%d] = %g", i, v)
		}
	}
	for i, ok := range mask {
		if !ok {
			t.Errorf("root mask[%d] = false", i)
		}
	}
	if e.Done() || e.EpisodeSteps() != 0 {
		t.Error("fresh episode not clean")
	}
}

func TestStopRewardAndTermination(t *testing.T) {
	e, err := NewEnv(envFixture(t), Config{DisableSeedSingletons: true})
	if err != nil {
		t.Fatal(err)
	}
	// Stop at the root with an empty queue terminates the episode with
	// reward θ.
	res := e.Step(e.StopAction())
	if res.Reward != 0.01 {
		t.Errorf("stop reward = %g, want θ = 0.01", res.Reward)
	}
	if !res.Done || !e.Done() {
		t.Error("stop on empty queue should end the episode")
	}
	// Stepping a done episode is a no-op.
	res2 := e.Step(0)
	if !res2.Done || res2.Reward != 0 {
		t.Errorf("step after done = %+v", res2)
	}
}

func TestValidRuleRewardWithShaping(t *testing.T) {
	p := envFixture(t)
	e, err := NewEnv(p, Config{DisableSeedSingletons: true})
	if err != nil {
		t.Fatal(err)
	}
	lhsA, _, _, _ := dims(t, e)
	res := e.Step(lhsA)
	// U(A) = (ln 20)²·(1+1) = MaxUtility(20), so the normalised base
	// reward is 1. The root had no children, so the first-expansion
	// shaping doubles it: r = 1 + (1 − 0) = 2.
	if math.Abs(res.Reward-2.0) > 1e-9 {
		t.Errorf("shaped reward = %g, want 2.0", res.Reward)
	}
	found := e.Found()
	if len(found) != 1 || found[0].Measures.Support != 20 {
		t.Errorf("found = %+v", found)
	}
}

func TestShapingDisabled(t *testing.T) {
	p := envFixture(t)
	e, err := NewEnv(p, Config{DisableSeedSingletons: true, DisableShaping: true})
	if err != nil {
		t.Fatal(err)
	}
	lhsA, _, _, _ := dims(t, e)
	res := e.Step(lhsA)
	if math.Abs(res.Reward-1.0) > 1e-9 {
		t.Errorf("unshaped reward = %g, want 1.0", res.Reward)
	}
}

func TestRawRewardWithoutNormalisation(t *testing.T) {
	p := envFixture(t)
	e, err := NewEnv(p, Config{DisableSeedSingletons: true, DisableNormalize: true, DisableShaping: true})
	if err != nil {
		t.Fatal(err)
	}
	lhsA, _, _, _ := dims(t, e)
	res := e.Step(lhsA)
	want := measure.MaxUtility(20)
	if math.Abs(res.Reward-want) > 1e-9 {
		t.Errorf("raw reward = %g, want %g", res.Reward, want)
	}
}

func TestCertainRuleNotDescended(t *testing.T) {
	p := envFixture(t)
	e, err := NewEnv(p, Config{DisableSeedSingletons: true})
	if err != nil {
		t.Fatal(err)
	}
	lhsA, _, _, _ := dims(t, e)
	res := e.Step(lhsA)
	// The (A) rule is certain: the walk must stay at the root, so the
	// next state is still all-zero.
	for i, v := range res.State {
		if v != 0 {
			t.Errorf("state[%d] = %g after certain child, want root", i, v)
		}
	}
	// Global mask: regenerating the same rule must now be masked.
	if res.Mask[lhsA] {
		t.Error("global mask did not block the regenerated rule")
	}
}

func TestGlobalMaskDisabled(t *testing.T) {
	p := envFixture(t)
	e, err := NewEnv(p, Config{DisableSeedSingletons: true, DisableGlobalMask: true})
	if err != nil {
		t.Fatal(err)
	}
	lhsA, _, _, _ := dims(t, e)
	res := e.Step(lhsA)
	if !res.Mask[lhsA] {
		t.Error("global mask active despite DisableGlobalMask")
	}
}

func TestRefinableRuleDescends(t *testing.T) {
	p := envFixture(t)
	e, err := NewEnv(p, Config{DisableSeedSingletons: true})
	if err != nil {
		t.Fatal(err)
	}
	_, lhsB, _, _ := dims(t, e)
	res := e.Step(lhsB)
	// The (B) rule has C < 1: the walk descends into it.
	if res.State[lhsB] != 1 {
		t.Error("did not descend into refinable child")
	}
	// Local mask: B's LHS dim and nothing else on the LHS side.
	if res.Mask[lhsB] {
		t.Error("local mask allows re-adding B")
	}
}

func TestLocalMaskAfterCondition(t *testing.T) {
	p := envFixture(t)
	e, err := NewEnv(p, Config{DisableSeedSingletons: true})
	if err != nil {
		t.Fatal(err)
	}
	_, _, condB0, _ := dims(t, e)
	res := e.Step(condB0)
	// The pattern-only child (cover 10 ≥ η_s) is refinable: descend.
	if res.State[condB0] != 1 {
		t.Fatal("did not descend into pattern-only child")
	}
	// All pattern dims on attribute B must be masked now.
	for _, d := range e.Space().UnitDims(1) {
		if res.Mask[d] {
			t.Errorf("unit dim %d on conditioned attribute allowed", d)
		}
	}
	// But B's LHS dim stays allowed (pattern and LHS may overlap).
	_, lhsB, _, _ := dims(t, e)
	if !res.Mask[lhsB] {
		t.Error("LHS dim masked by a pattern condition")
	}
}

func TestEmptyLHSReward(t *testing.T) {
	p := envFixture(t)
	e, err := NewEnv(p, Config{DisableSeedSingletons: true})
	if err != nil {
		t.Fatal(err)
	}
	_, _, condB0, _ := dims(t, e)
	res := e.Step(condB0)
	// A pattern-only rule has no LHS: reward is the invalid constant.
	if res.Reward != -0.01 {
		t.Errorf("empty-LHS reward = %g, want -0.01", res.Reward)
	}
	if len(e.Found()) != 0 {
		t.Error("pattern-only node counted as discovered")
	}
}

func TestDeadEndChildStays(t *testing.T) {
	p := envFixture(t)
	e, err := NewEnv(p, Config{DisableSeedSingletons: true})
	if err != nil {
		t.Fatal(err)
	}
	_, _, condB0, condG0 := dims(t, e)
	e.Step(condB0) // descend into pattern B=b0 (10 rows)
	res := e.Step(condG0)
	// B=b0 ∧ G=g0 covers zero rows: dead child, the walk stays.
	if res.State[condG0] != 0 {
		t.Error("descended into a dead child")
	}
	if res.Reward != -0.01 {
		t.Errorf("dead child reward = %g, want -0.01", res.Reward)
	}
}

func TestRewardCacheReuse(t *testing.T) {
	p := envFixture(t)
	e, err := NewEnv(p, Config{DisableSeedSingletons: true})
	if err != nil {
		t.Fatal(err)
	}
	lhsA, _, _, _ := dims(t, e)
	e.Step(lhsA)
	evals := e.Evaluator().Stats.Evaluations
	e.Reset()
	e.Step(lhsA)
	if got := e.Evaluator().Stats.Evaluations; got != evals {
		t.Errorf("rule re-evaluated despite cache: %d -> %d", evals, got)
	}
	// With the cache disabled, the count grows.
	e2, err := NewEnv(p, Config{DisableSeedSingletons: true, DisableRewardCache: true})
	if err != nil {
		t.Fatal(err)
	}
	lhsA2, _, _, _ := dims(t, e2)
	e2.Step(lhsA2)
	evals2 := e2.Evaluator().Stats.Evaluations
	e2.Reset()
	e2.Step(lhsA2)
	if got := e2.Evaluator().Stats.Evaluations; got <= evals2 {
		t.Error("DisableRewardCache did not force re-evaluation")
	}
}

func TestEpisodeEndsAtK(t *testing.T) {
	p := envFixture(t)
	p.TopK = 1
	e, err := NewEnv(p, Config{DisableSeedSingletons: true})
	if err != nil {
		t.Fatal(err)
	}
	lhsA, _, _, _ := dims(t, e)
	res := e.Step(lhsA)
	if !res.Done {
		t.Error("episode did not end after K discovered rules")
	}
}

func TestEpisodeStepBudget(t *testing.T) {
	p := envFixture(t)
	e, err := NewEnv(p, Config{DisableSeedSingletons: true, MaxEpisodeSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, lhsB, condB0, _ := dims(t, e)
	if res := e.Step(lhsB); res.Done {
		t.Fatal("ended after 1 step with budget 2")
	}
	if res := e.Step(condB0); !res.Done {
		t.Error("episode exceeded MaxEpisodeSteps")
	}
}

func TestAllFoundPersistsAcrossEpisodes(t *testing.T) {
	p := envFixture(t)
	e, err := NewEnv(p, Config{DisableSeedSingletons: true})
	if err != nil {
		t.Fatal(err)
	}
	lhsA, lhsB, _, _ := dims(t, e)
	e.Step(lhsA)
	e.Reset()
	e.Step(lhsB)
	if len(e.Found()) != 1 {
		t.Errorf("per-episode found = %d, want 1", len(e.Found()))
	}
	if len(e.AllFound()) != 2 {
		t.Errorf("all found = %d, want 2", len(e.AllFound()))
	}
	// Sorted by utility descending.
	af := e.AllFound()
	for i := 1; i < len(af); i++ {
		if af[i].Measures.Utility > af[i-1].Measures.Utility {
			t.Error("AllFound not sorted")
		}
	}
}

func TestStopMovesToQueuedNode(t *testing.T) {
	p := envFixture(t)
	e, err := NewEnv(p, Config{DisableSeedSingletons: true})
	if err != nil {
		t.Fatal(err)
	}
	_, lhsB, _, _ := dims(t, e)
	e.Step(lhsB) // descend into (B); (B) is also queued
	res := e.Step(e.StopAction())
	if res.Done {
		t.Fatal("queue should not be empty")
	}
	// Level-order: the only queued node is (B) itself.
	if res.State[lhsB] != 1 {
		t.Error("stop did not move to the queued node")
	}
}

func TestEmptySpaceRejected(t *testing.T) {
	p := envFixture(t)
	p.Match = schema.NewMatch() // nothing matched
	p.Match.Add(p.Y, p.Ym)      // only the dependent pair
	if _, err := NewEnv(p, Config{Space: core.SpaceConfig{MinValueCount: 10000}}); err == nil {
		t.Fatal("empty refinement space accepted")
	}
}

func TestInvalidProblemRejected(t *testing.T) {
	if _, err := NewEnv(&core.Problem{}, Config{}); err == nil {
		t.Fatal("invalid problem accepted")
	}
}

// TestSeedSingletons: by default every episode starts with the first
// lattice level pre-expanded — the singleton-LHS rules are discovered,
// the refinable ones queued, and their actions globally masked.
func TestSeedSingletons(t *testing.T) {
	p := envFixture(t)
	e, err := NewEnv(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	state, mask := e.Reset()
	// The walk still starts at the root...
	for i, v := range state {
		if v != 0 {
			t.Fatalf("state[%d] = %g, want root", i, v)
		}
	}
	// ...but both singleton rules exist: (A) certain+valid, (B) valid.
	if got := len(e.Found()); got != 2 {
		t.Fatalf("found %d singleton rules, want 2", got)
	}
	// Their LHS actions are globally masked at the root.
	lhsA, lhsB, _, _ := dims(t, e)
	if mask[lhsA] || mask[lhsB] {
		t.Error("seeded singleton actions not masked")
	}
	// (B) is refinable and queued: stop moves to it instead of ending.
	res := e.Step(e.StopAction())
	if res.Done {
		t.Fatal("queue empty despite seeded refinable singleton")
	}
	if res.State[lhsB] != 1 {
		t.Error("stop did not move to the queued singleton")
	}
	// Seeding costs no episode steps.
	if e.EpisodeSteps() != 1 {
		t.Errorf("episode steps = %d, want 1 (the stop)", e.EpisodeSteps())
	}
}

// TestSeedSingletonsCached: the second episode's seeding is served from
// the reward cache.
func TestSeedSingletonsCached(t *testing.T) {
	p := envFixture(t)
	e, err := NewEnv(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	evals := e.Evaluator().Stats.Evaluations
	e.Reset()
	if got := e.Evaluator().Stats.Evaluations; got != evals {
		t.Errorf("re-seeding re-evaluated rules: %d -> %d", evals, got)
	}
}
