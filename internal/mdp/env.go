// Package mdp implements the Editing Rule Discovery Markov Decision
// Process of paper Definition 5 and §III–IV: the environment that grows a
// rule tree (Alg. 4), the one-hot state encoding s = [s_l; s_p] (§IV-A),
// the action space a = [a_l; a_p; a_stop] (§IV-B), the rule mask
// (Alg. 1) and the utility-based reward function with its reward cache
// R_Σ and first-expansion shaping bonus (Alg. 2).
package mdp

import (
	"fmt"
	"sort"

	"erminer/internal/core"
	"erminer/internal/measure"
	"erminer/internal/rule"
)

// Config tunes the environment. Zero values select the paper defaults;
// the Disable* flags exist for the ablation benchmarks (DESIGN.md §4).
type Config struct {
	// Space configures the refinement space (N_split, prefix buckets).
	Space core.SpaceConfig
	// StopReward is θ, the small positive reward of the stop action.
	// Zero means the paper default 0.01.
	StopReward float64
	// InvalidReward is the constant reward of a below-threshold rule.
	// Zero means the paper default -0.01.
	InvalidReward float64
	// DisableNormalize keeps rewards at raw utility scale. By default
	// utilities are divided by MaxUtility(|D|) so rewards live in
	// roughly [-1, 1], which stabilises the DQN (implementation choice;
	// see DESIGN.md).
	DisableNormalize bool
	// DisableShaping turns off the Alg. 2 lines 15–16 shaping bonus.
	DisableShaping bool
	// DisableGlobalMask turns off the Alg. 1 lines 12–17 global mask.
	DisableGlobalMask bool
	// DisableRewardCache turns off R_Σ reuse (rewards are recomputed).
	DisableRewardCache bool
	// DisableSeedSingletons turns off the warm start: by default every
	// episode's tree is pre-expanded with the singleton-LHS rules — the
	// first lattice level EnuMiner also starts from (§II-D) — so the
	// broad rules are always in the discovered set and the queue, and
	// the agent's exploration budget goes to the interesting deeper
	// space. This markedly reduces seed-to-seed variance on wide action
	// spaces (DESIGN.md §4).
	DisableSeedSingletons bool
	// MaxEpisodeSteps bounds one episode. Zero means 400.
	MaxEpisodeSteps int
}

func (c Config) stopReward() float64 {
	if c.StopReward != 0 {
		return c.StopReward
	}
	return 0.01
}

func (c Config) invalidReward() float64 {
	if c.InvalidReward != 0 {
		return c.InvalidReward
	}
	return -0.01
}

func (c Config) maxEpisodeSteps() int {
	if c.MaxEpisodeSteps > 0 {
		return c.MaxEpisodeSteps
	}
	return 400
}

// node is one rule-tree node.
type node struct {
	r        *rule.Rule
	key      string
	setDims  []int // sorted state dimensions set to 1
	cover    []int32
	children int
	parent   *node
}

// cachedMeasures is the R_Σ / utility cache entry for one rule.
type cachedMeasures struct {
	support   int
	certainty float64
	quality   float64
	utility   float64
	reward    float64
}

// StepResult is what one environment step returns.
type StepResult struct {
	// State is the next state's encoding.
	State []float64
	// Mask is the next state's action mask (true = allowed).
	Mask []bool
	// Reward is r_t.
	Reward float64
	// Done reports episode termination.
	Done bool
}

// Env is the rule-discovery environment.
type Env struct {
	cfg     Config
	problem *core.Problem
	space   *core.Space
	// ev serves the reward queries. It is built via Problem.NewEvaluator,
	// so when the problem carries a shared index cache
	// (Problem.ShareIndexes) the reward path reuses the master indexes
	// already built by a miner or the repair engine — and its
	// full-relation cover scans chunk across Problem.Workers()
	// goroutines.
	ev   *measure.Evaluator
	norm float64 // utility normaliser

	// Persistent across episodes (Alg. 2's R_Σ).
	rewardCache map[string]cachedMeasures

	// Per-episode tree state.
	current    *node
	queue      []*node
	seen       map[string]*node // every rule generated this episode
	found      map[string]core.MinedRule
	steps      int
	done       bool
	discovered int

	// AllFound accumulates every above-threshold rule seen in any
	// episode (keyed by rule), for diagnostics.
	allFound map[string]core.MinedRule
}

// NewEnv builds the environment for a problem.
func NewEnv(p *core.Problem, cfg Config) (*Env, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	spaceCfg := cfg.Space
	if spaceCfg.MinValueCount == 0 {
		spaceCfg.MinValueCount = p.SupportThreshold
	}
	space := core.BuildSpace(p, spaceCfg)
	if space.Dim() == 0 {
		return nil, fmt.Errorf("mdp: empty refinement space (no matched attributes?)")
	}
	norm := 1.0
	if !cfg.DisableNormalize {
		norm = measure.MaxUtility(p.Input.NumRows())
		if norm <= 0 {
			norm = 1
		}
	}
	e := &Env{
		cfg:         cfg,
		problem:     p,
		space:       space,
		ev:          p.NewEvaluator(),
		norm:        norm,
		rewardCache: make(map[string]cachedMeasures),
		allFound:    make(map[string]core.MinedRule),
	}
	e.Reset()
	return e, nil
}

// Space returns the refinement space (the action-space layout).
func (e *Env) Space() *core.Space { return e.space }

// StateDim returns dim(s) = |s_l| + |s_p|.
func (e *Env) StateDim() int { return e.space.Dim() }

// ActionDim returns dim(a) = dim(s) + 1 (the stop action).
func (e *Env) ActionDim() int { return e.space.Dim() + 1 }

// StopAction returns the index of the stop action.
func (e *Env) StopAction() int { return e.space.Dim() }

// Reset starts a new episode with a fresh rule tree rooted at the empty
// rule s*, returning the initial state and mask.
func (e *Env) Reset() ([]float64, []bool) {
	// Recycle the finished episode's cover buffers: found/allFound keep
	// measures only (never PatternCover), so the tree nodes are the sole
	// owners of their covers and handing them back keeps steady-state
	// episodes allocation-free.
	for _, n := range e.seen {
		e.ev.ReleaseCover(n.cover)
		n.cover = nil
	}
	root := &node{
		r:   rule.New(nil, e.problem.Y, e.problem.Ym, nil),
		key: "",
	}
	root.cover = e.ev.PatternCover(root.r, nil)
	e.current = root
	e.queue = nil
	e.seen = map[string]*node{root.key: root}
	e.found = make(map[string]core.MinedRule)
	e.steps = 0
	e.done = false
	e.discovered = 0
	if !e.cfg.DisableSeedSingletons {
		e.seedSingletons(root)
	}
	return e.State(), e.Mask()
}

// seedSingletons pre-expands the root with every singleton-LHS rule —
// the first level of EnuMiner's lattice — registering them as
// discovered (when valid) and queueing the refinable ones. The agent's
// steps then go to the combinatorial part of the space. Evaluations are
// served from the reward cache after the first episode.
func (e *Env) seedSingletons(root *node) {
	for d := 0; d < e.space.NumLHS(); d++ {
		e.growChild(root, d)
		e.current = root // growChild may descend; the walk starts at s*
	}
	// Pre-seeding must not count toward episode termination on its own;
	// keep the discovery budget for the agent. (K is usually far larger
	// than the number of singleton rules, so this is a no-op guard.)
	if e.discovered >= e.problem.K() {
		e.done = true
	}
}

// State returns the current state encoding.
func (e *Env) State() []float64 {
	s := make([]float64, e.space.Dim())
	if e.current != nil {
		for _, d := range e.current.setDims {
			s[d] = 1
		}
	}
	return s
}

// Done reports whether the episode has terminated.
func (e *Env) Done() bool { return e.done }

// EpisodeSteps returns the number of steps taken this episode.
func (e *Env) EpisodeSteps() int { return e.steps }

// Found returns the rules discovered in the current episode.
func (e *Env) Found() []core.MinedRule {
	return sortedRules(e.found)
}

// AllFound returns every above-threshold rule discovered in any episode.
func (e *Env) AllFound() []core.MinedRule {
	return sortedRules(e.allFound)
}

func sortedRules(m map[string]core.MinedRule) []core.MinedRule {
	out := make([]core.MinedRule, 0, len(m))
	for _, r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Measures.Utility != out[j].Measures.Utility {
			return out[i].Measures.Utility > out[j].Measures.Utility
		}
		return out[i].Rule.Key() < out[j].Rule.Key()
	})
	return out
}

// Mask computes the action mask of the current state (Alg. 1): local
// masking forbids re-constraining attributes already used by the current
// rule, global masking forbids actions that would regenerate a rule this
// episode already contains, and the stop action is never masked.
func (e *Env) Mask() []bool {
	m := make([]bool, e.ActionDim())
	if e.done || e.current == nil {
		m[e.StopAction()] = true
		return m
	}
	e.maskInto(m, e.current)
	return m
}

func (e *Env) maskInto(m []bool, n *node) {
	for i := range m {
		m[i] = true
	}
	// Local mask (Alg. 1 lines 3-11).
	for _, p := range n.r.LHS {
		for _, d := range e.space.PairDims(p.Input) {
			m[d] = false
		}
	}
	for _, c := range n.r.Pattern {
		for _, d := range e.space.UnitDims(c.Attr) {
			m[d] = false
		}
	}
	// Global mask (Alg. 1 lines 12-17): mask any action whose resulting
	// state already exists in the tree.
	if !e.cfg.DisableGlobalMask {
		for d := 0; d < e.space.Dim(); d++ {
			if !m[d] {
				continue
			}
			if _, exists := e.seen[childKey(n.setDims, d)]; exists {
				m[d] = false
			}
		}
	}
	m[e.StopAction()] = true
}

// childKey returns the canonical key of setDims ∪ {d}.
func childKey(setDims []int, d int) string {
	buf := make([]byte, 0, (len(setDims)+1)*2)
	inserted := false
	for _, x := range setDims {
		if !inserted && d < x {
			buf = appendDim(buf, d)
			inserted = true
		}
		buf = appendDim(buf, x)
	}
	if !inserted {
		buf = appendDim(buf, d)
	}
	return string(buf)
}

func appendDim(b []byte, d int) []byte {
	return append(b, byte(d), byte(d>>8))
}

func keyOf(setDims []int) string {
	buf := make([]byte, 0, len(setDims)*2)
	for _, d := range setDims {
		buf = appendDim(buf, d)
	}
	return string(buf)
}

// Step applies an action (Alg. 3 lines 12-16 driving Alg. 4 and Alg. 2).
func (e *Env) Step(action int) StepResult {
	if e.done {
		return StepResult{State: e.State(), Mask: e.Mask(), Done: true}
	}
	e.steps++
	budgetDone := e.steps >= e.cfg.maxEpisodeSteps()

	if action == e.StopAction() {
		// Stop refinement: move to the next node in level order.
		r := e.cfg.stopReward()
		if len(e.queue) == 0 {
			e.done = true
			return StepResult{State: e.State(), Mask: e.Mask(), Reward: r, Done: true}
		}
		e.current = e.queue[0]
		e.queue = e.queue[1:]
		e.done = budgetDone
		return StepResult{State: e.State(), Mask: e.Mask(), Reward: r, Done: e.done}
	}

	parent := e.current
	reward := e.growChild(parent, action)

	if e.discovered >= e.problem.K() || budgetDone {
		e.done = true
	}
	return StepResult{State: e.State(), Mask: e.Mask(), Reward: reward, Done: e.done}
}

// growChild generates the child of parent on dimension `action`,
// computes its reward, registers it in the tree and decides whether the
// walk descends into it. It returns the (possibly shaped) reward.
func (e *Env) growChild(parent *node, action int) float64 {
	childRule, ok := e.refine(parent.r, action)
	if !ok {
		// The action was masked for structural reasons; treat as an
		// invalid rule. (Agents only pick masked actions in tests.)
		return e.cfg.invalidReward()
	}
	setDims := insertDim(parent.setDims, action)
	key := keyOf(setDims)

	firstExpansion := parent.children == 0
	parent.children++

	cm, cached := e.rewardCache[key]
	var cover []int32
	if !cached || e.cfg.DisableRewardCache {
		ms := e.ev.Evaluate(childRule, parent.cover)
		cover = ms.PatternCover
		cm = cachedMeasures{
			support:   ms.Support,
			certainty: ms.Certainty,
			quality:   ms.Quality,
			utility:   ms.Utility,
		}
		if len(childRule.LHS) > 0 && ms.Support >= e.problem.SupportThreshold {
			cm.reward = ms.Utility / e.norm
		} else {
			cm.reward = e.cfg.invalidReward()
		}
		e.rewardCache[key] = cm
	}

	child := &node{
		r:       childRule,
		key:     key,
		setDims: setDims,
		parent:  parent,
	}
	e.seen[key] = child

	valid := len(childRule.LHS) > 0 && cm.support >= e.problem.SupportThreshold
	if valid {
		mined := core.MinedRule{
			Rule: childRule,
			Measures: measure.Measures{
				Support:   cm.support,
				Certainty: cm.certainty,
				Quality:   cm.quality,
				Utility:   cm.utility,
			},
		}
		if _, dup := e.found[key]; !dup {
			e.found[key] = mined
			e.discovered++
		}
		// Keyed by the dimension-set key (bijective with the rule, since
		// every dimension maps to one distinct refinement) so checkpoint
		// state can reconstruct the rule from the key alone.
		e.allFound[key] = mined
	}

	// Alg. 4 lines 14-17: only refinable nodes join the queue and are
	// descended into. A pattern-only node is refinable while its cover
	// can still satisfy η_s; a valid rule is refinable until certain.
	refinable := false
	if len(childRule.LHS) == 0 {
		if cover == nil {
			cover = e.ev.PatternCover(childRule, parent.cover)
		}
		refinable = len(cover) >= e.problem.SupportThreshold
	} else if valid && cm.certainty < 1 {
		refinable = true
	}
	if refinable {
		if cover == nil {
			cover = e.ev.PatternCover(childRule, parent.cover)
		}
		child.cover = cover
		e.queue = append(e.queue, child)
		e.current = child
	} else if cover != nil {
		// Evaluated but pruned: the cover will never be descended into,
		// so return its buffer to the evaluator.
		e.ev.ReleaseCover(cover)
	}

	// Reward (Alg. 2): base reward plus the first-expansion shaping
	// bonus r_t + (r_t − R_Σ(s_t)) when the parent had no children and
	// the child clears the support threshold.
	r := cm.reward
	if !e.cfg.DisableShaping && firstExpansion && valid {
		parentReward := 0.0
		if pm, ok := e.rewardCache[parent.key]; ok {
			parentReward = pm.reward
		}
		r += r - parentReward
	}
	return r
}

// refine applies a refinement dimension to a rule, mirroring
// enuminer's transition function.
func (e *Env) refine(r *rule.Rule, d int) (*rule.Rule, bool) {
	if d < e.space.NumLHS() {
		pair := e.space.LHSPairs[d]
		if r.HasLHSAttr(pair.Input) {
			return nil, false
		}
		return r.WithLHS(pair.Input, pair.Master), true
	}
	unit := e.space.Unit(d)
	if r.HasPatternAttr(unit.Cond.Attr) {
		return nil, false
	}
	return r.WithCondition(unit.Cond), true
}

func insertDim(setDims []int, d int) []int {
	out := make([]int, 0, len(setDims)+1)
	inserted := false
	for _, x := range setDims {
		if !inserted && d < x {
			out = append(out, d)
			inserted = true
		}
		out = append(out, x)
	}
	if !inserted {
		out = append(out, d)
	}
	return out
}

// Evaluator exposes the environment's evaluator (shared with repair).
func (e *Env) Evaluator() *measure.Evaluator { return e.ev }
