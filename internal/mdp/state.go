package mdp

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"erminer/internal/core"
	"erminer/internal/measure"
	"erminer/internal/rule"
)

// The environment's checkpoint wire format. Bit-identical resume needs
// the full mutable state of the environment, not just the agent:
//
//   - the reward cache R_Σ decides which Step calls hit the evaluator,
//     so restoring it reproduces the exact Evaluate-call pattern (and
//     with it Stats.Evaluations, the paper's #Explored metric);
//   - the per-episode tree (seen/queue/current) lets a run killed
//     mid-episode continue from the same tree position;
//   - allFound accumulates across episodes and is the mining result.
//
// The evaluator's master-index cache is deliberately NOT part of the
// state: it is a pure performance artifact, and a resumed run rebuilds
// indexes on demand. Consequently Stats.IndexBuilds and TuplesScanned
// may exceed the uninterrupted run's after a resume; Stats.Evaluations
// (the paper's #Explored) is driven by the reward cache and stays
// bit-identical.
//
// Rules are not serialised: every node key encodes its dimension set
// (two bytes per dimension, sorted), and replaying those refinements
// through Env.refine rebuilds a structurally identical *rule.Rule —
// rule construction normalises LHS/Pattern order, so the rebuilt rule
// is indistinguishable from the original. Measures come back from the
// reward cache, which holds an entry for every key ever generated.
// All map-derived slices are sorted by key so the encoding itself is
// deterministic.

// cacheEntryWire is one R_Σ entry.
type cacheEntryWire struct {
	Key       string
	Support   int
	Certainty float64
	Quality   float64
	Utility   float64
	Reward    float64
}

// nodeWire is one rule-tree node. Cover distinguishes nil (never
// computed; the node was not refinable) from present via HasCover,
// because recomputing a cover on resume would perturb evaluator stats.
type nodeWire struct {
	Key       string
	Children  int
	Parent    string
	HasParent bool
	Cover     []int32
	HasCover  bool
}

// envWireVersion numbers the environment gob format, including the
// nested cache and node records; bump on any shape change (wiredrift
// gates it).
const envWireVersion = 1

// envWire is the gob wire format of Env's mutable state.
//
//ermvet:wire
type envWire struct {
	RewardCache []cacheEntryWire
	Nodes       []nodeWire // the episode's `seen` set, sorted by key
	Queue       []string   // node keys, in queue order
	Current     string
	HasCurrent  bool
	Found       []string // per-episode discoveries, sorted
	AllFound    []string // cross-episode discoveries, sorted
	Steps       int
	Discovered  int
	Done        bool
	EvalStats   measure.Stats
}

// SaveState serialises the environment's mutable state (tree, caches,
// counters, evaluator stats). The configuration and problem are not
// included: RestoreState must be called on an Env built with NewEnv
// from the same problem and Config.
func (e *Env) SaveState() ([]byte, error) {
	w := envWire{
		Steps:      e.steps,
		Discovered: e.discovered,
		Done:       e.done,
		EvalStats:  e.ev.Stats,
	}
	for key, cm := range e.rewardCache {
		w.RewardCache = append(w.RewardCache, cacheEntryWire{
			Key:       key,
			Support:   cm.support,
			Certainty: cm.certainty,
			Quality:   cm.quality,
			Utility:   cm.utility,
			Reward:    cm.reward,
		})
	}
	sort.Slice(w.RewardCache, func(i, j int) bool { return w.RewardCache[i].Key < w.RewardCache[j].Key })
	for key, n := range e.seen {
		nw := nodeWire{Key: key, Children: n.children}
		if n.parent != nil {
			nw.Parent = n.parent.key
			nw.HasParent = true
		}
		if n.cover != nil {
			// Copy: node covers live in the evaluator's reusable buffer
			// pool, and the wire snapshot must stay intact after the
			// next Reset recycles them.
			nw.Cover = append([]int32(nil), n.cover...)
			nw.HasCover = true
		}
		w.Nodes = append(w.Nodes, nw)
	}
	sort.Slice(w.Nodes, func(i, j int) bool { return w.Nodes[i].Key < w.Nodes[j].Key })
	for _, n := range e.queue {
		w.Queue = append(w.Queue, n.key)
	}
	if e.current != nil {
		w.Current = e.current.key
		w.HasCurrent = true
	}
	for key := range e.found {
		w.Found = append(w.Found, key)
	}
	sort.Strings(w.Found)
	for key := range e.allFound {
		w.AllFound = append(w.AllFound, key)
	}
	sort.Strings(w.AllFound)

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("mdp: encoding env state: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreState replaces the environment's mutable state with one saved
// by SaveState. The receiver must have been built from the same problem
// and Config as the saving environment.
func (e *Env) RestoreState(data []byte) error {
	var w envWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("mdp: decoding env state: %w", err)
	}

	rc := make(map[string]cachedMeasures, len(w.RewardCache))
	for _, c := range w.RewardCache {
		rc[c.Key] = cachedMeasures{
			support:   c.Support,
			certainty: c.Certainty,
			quality:   c.Quality,
			utility:   c.Utility,
			reward:    c.Reward,
		}
	}

	seen := make(map[string]*node, len(w.Nodes))
	for _, nw := range w.Nodes {
		r, dims, err := e.buildRule(nw.Key)
		if err != nil {
			return err
		}
		n := &node{r: r, key: nw.Key, setDims: dims, children: nw.Children}
		if nw.HasCover {
			n.cover = nw.Cover
			if n.cover == nil {
				n.cover = []int32{} // gob decodes empty as nil
			}
		}
		seen[nw.Key] = n
	}
	for _, nw := range w.Nodes {
		if !nw.HasParent {
			continue
		}
		p, ok := seen[nw.Parent]
		if !ok {
			return fmt.Errorf("mdp: node %q references missing parent %q", nw.Key, nw.Parent)
		}
		seen[nw.Key].parent = p
	}

	queue := make([]*node, 0, len(w.Queue))
	for _, key := range w.Queue {
		n, ok := seen[key]
		if !ok {
			return fmt.Errorf("mdp: queued node %q not in tree", key)
		}
		queue = append(queue, n)
	}
	var current *node
	if w.HasCurrent {
		n, ok := seen[w.Current]
		if !ok {
			return fmt.Errorf("mdp: current node %q not in tree", w.Current)
		}
		current = n
	}

	found := make(map[string]core.MinedRule, len(w.Found))
	for _, key := range w.Found {
		n, ok := seen[key]
		if !ok {
			return fmt.Errorf("mdp: found rule %q not in tree", key)
		}
		mined, err := e.minedFrom(rc, key, n.r)
		if err != nil {
			return err
		}
		found[key] = mined
	}
	allFound := make(map[string]core.MinedRule, len(w.AllFound))
	for _, key := range w.AllFound {
		var r *rule.Rule
		if n, ok := seen[key]; ok {
			r = n.r
		} else {
			// Discovered in an earlier, already-torn-down episode.
			var err error
			r, _, err = e.buildRule(key)
			if err != nil {
				return err
			}
		}
		mined, err := e.minedFrom(rc, key, r)
		if err != nil {
			return err
		}
		allFound[key] = mined
	}

	e.rewardCache = rc
	e.seen = seen
	e.queue = queue
	e.current = current
	e.found = found
	e.allFound = allFound
	e.steps = w.Steps
	e.discovered = w.Discovered
	e.done = w.Done
	e.ev.Stats = w.EvalStats
	return nil
}

// minedFrom assembles a MinedRule from the restored reward cache, which
// holds an entry for every key the environment ever generated.
func (e *Env) minedFrom(rc map[string]cachedMeasures, key string, r *rule.Rule) (core.MinedRule, error) {
	cm, ok := rc[key]
	if !ok {
		return core.MinedRule{}, fmt.Errorf("mdp: discovered rule %q missing from reward cache", key)
	}
	return core.MinedRule{
		Rule: r,
		Measures: measure.Measures{
			Support:   cm.support,
			Certainty: cm.certainty,
			Quality:   cm.quality,
			Utility:   cm.utility,
		},
	}, nil
}

// buildRule decodes a node key into its dimension set and replays the
// refinements from the empty root rule.
func (e *Env) buildRule(key string) (*rule.Rule, []int, error) {
	if len(key)%2 != 0 {
		return nil, nil, fmt.Errorf("mdp: malformed node key (%d bytes)", len(key))
	}
	dims := make([]int, 0, len(key)/2)
	for i := 0; i < len(key); i += 2 {
		d := int(key[i]) | int(key[i+1])<<8
		if d >= e.space.Dim() {
			return nil, nil, fmt.Errorf("mdp: node key dimension %d outside space (dim %d)", d, e.space.Dim())
		}
		if len(dims) > 0 && d <= dims[len(dims)-1] {
			return nil, nil, fmt.Errorf("mdp: node key dimensions not strictly increasing")
		}
		dims = append(dims, d)
	}
	r := rule.New(nil, e.problem.Y, e.problem.Ym, nil)
	for _, d := range dims {
		next, ok := e.refine(r, d)
		if !ok {
			return nil, nil, fmt.Errorf("mdp: node key replays invalid refinement on dimension %d", d)
		}
		r = next
	}
	if len(dims) == 0 {
		dims = nil
	}
	return r, dims, nil
}
