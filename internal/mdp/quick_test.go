package mdp

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// Property: childKey(setDims, d) equals keyOf(sorted(setDims ∪ {d})) for
// arbitrary dimension sets.
func TestChildKeyProperty(t *testing.T) {
	f := func(raw []uint16, d uint16) bool {
		seen := map[int]bool{int(d): true}
		var dims []int
		for _, x := range raw {
			if !seen[int(x)] {
				seen[int(x)] = true
				dims = append(dims, int(x))
			}
		}
		sort.Ints(dims)
		got := childKey(dims, int(d))
		want := keyOf(insertDim(dims, int(d)))
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: insertDim keeps the slice sorted and adds exactly one
// element.
func TestInsertDimProperty(t *testing.T) {
	f := func(raw []uint16, d uint16) bool {
		seen := map[int]bool{int(d): true}
		var dims []int
		for _, x := range raw {
			if !seen[int(x)] {
				seen[int(x)] = true
				dims = append(dims, int(x))
			}
		}
		sort.Ints(dims)
		out := insertDim(dims, int(d))
		if len(out) != len(dims)+1 {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i-1] >= out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: over a random walk, the mask never allows an action that
// would regenerate an existing rule, and the stop action is always
// allowed.
func TestMaskInvariantRandomWalk(t *testing.T) {
	p := envFixture(t)
	e, err := NewEnv(p, Config{DisableSeedSingletons: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for episode := 0; episode < 5; episode++ {
		_, mask := e.Reset()
		for !e.Done() {
			if !mask[e.StopAction()] {
				t.Fatal("stop action masked")
			}
			// Pick a random allowed action.
			var allowed []int
			for i, ok := range mask {
				if ok {
					allowed = append(allowed, i)
				}
			}
			a := allowed[rng.Intn(len(allowed))]
			res := e.Step(a)
			mask = res.Mask
		}
	}
	// No duplicate rules were ever registered (the seen map would have
	// been overwritten silently; instead verify discovered keys unique).
	keys := make(map[string]bool)
	for _, r := range e.AllFound() {
		k := r.Rule.Key()
		if keys[k] {
			t.Fatalf("duplicate discovered rule %s", k)
		}
		keys[k] = true
	}
}

// Property: every reward the environment emits is finite and bounded by
// the normalised utility range.
func TestRewardBoundsRandomWalk(t *testing.T) {
	p := envFixture(t)
	e, err := NewEnv(p, Config{DisableSeedSingletons: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(123))
	for episode := 0; episode < 5; episode++ {
		_, mask := e.Reset()
		for !e.Done() {
			var allowed []int
			for i, ok := range mask {
				if ok {
					allowed = append(allowed, i)
				}
			}
			a := allowed[rng.Intn(len(allowed))]
			res := e.Step(a)
			// Normalised utility ∈ [-1, 1]; shaping at most doubles it
			// and subtracts at most 1.
			if res.Reward < -3 || res.Reward > 3 {
				t.Fatalf("reward %g out of bounds", res.Reward)
			}
			mask = res.Mask
		}
	}
}
