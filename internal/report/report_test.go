package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "Name", "Value")
	tb.AddRow("alpha", "1")
	tb.AddRow("beta-longer", "22")
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Name") || !strings.Contains(lines[1], "Value") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("separator = %q", lines[2])
	}
	// Columns align: "Value" starts at the same offset in every row.
	off := strings.Index(lines[1], "Value")
	if lines[3][off:off+1] != "1" {
		t.Errorf("row 1 misaligned:\n%s", out)
	}
	if lines[4][off:off+2] != "22" {
		t.Errorf("row 2 misaligned:\n%s", out)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "A", "B", "C")
	tb.AddRow("x") // missing cells become empty
	var buf bytes.Buffer
	tb.Render(&buf)
	if !strings.Contains(buf.String(), "x") {
		t.Error("row lost")
	}
}

func TestTableExtraCellsDropped(t *testing.T) {
	tb := NewTable("", "A")
	tb.AddRow("x", "overflow")
	if len(tb.Rows[0]) != 1 {
		t.Errorf("row = %v", tb.Rows[0])
	}
}

func TestFigureAddAndRender(t *testing.T) {
	f := NewFigure("Fig", "x")
	f.Add("s1", 1, 0.5)
	f.Add("s2", 1, 0.6)
	f.Add("s1", 2, 0.7)
	var buf bytes.Buffer
	f.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "s1") || !strings.Contains(out, "s2") {
		t.Errorf("series missing:\n%s", out)
	}
	if !strings.Contains(out, "0.5") || !strings.Contains(out, "0.7") {
		t.Errorf("values missing:\n%s", out)
	}
	// Two x rows (1 and 2).
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Errorf("rendered %d lines:\n%s", len(lines), out)
	}
	// s2 has no point at x=2: cell stays empty, row still renders.
	if !strings.Contains(lines[4], "0.7") {
		t.Errorf("x=2 row = %q", lines[4])
	}
}

func TestFigureSeriesOrderStable(t *testing.T) {
	f := NewFigure("", "x")
	f.Add("b", 1, 1)
	f.Add("a", 1, 2)
	if f.Series[0].Name != "b" || f.Series[1].Name != "a" {
		t.Error("series not in first-seen order")
	}
}
