// Package report renders the experiment harness's tables and figure
// series as aligned ASCII, in the same row/column layout as the paper's
// tables and figures so measured results can be compared side by side
// with the published ones.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable returns a table with the given title and header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	fmt.Fprintln(w, line(t.Header))
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total-2))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is one line of a figure: a named sequence of (x, y) points.
type Series struct {
	Name   string
	X      []float64
	Y      []float64
	YLabel string
}

// Figure is a set of series sharing an x-axis, standing in for one paper
// figure panel.
type Figure struct {
	Title  string
	XLabel string
	Series []*Series
}

// NewFigure returns an empty figure.
func NewFigure(title, xlabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel}
}

// Add appends a point to the named series (created on first use).
func (f *Figure) Add(series string, x, y float64) {
	for _, s := range f.Series {
		if s.Name == series {
			s.X = append(s.X, x)
			s.Y = append(s.Y, y)
			return
		}
	}
	f.Series = append(f.Series, &Series{Name: series, X: []float64{x}, Y: []float64{y}})
}

// Render writes the figure as a table: one row per x value, one column
// per series.
func (f *Figure) Render(w io.Writer) {
	// Collect the union of x values in first-seen order.
	var xs []float64
	seen := make(map[float64]bool)
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	t := NewTable(f.Title, header...)
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = fmt.Sprintf("%.4g", s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	t.Render(w)
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.4g", x)
	return s
}
