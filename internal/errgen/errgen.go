// Package errgen injects synthetic errors into a clean input relation,
// following the error-generation protocol of BART [10] that the paper
// adopts (§V-A1): a configurable fraction of cells is corrupted with
// typos, value substitutions and missing values, and the ground truth of
// every corrupted cell is recorded so that the Quality measure and the
// weighted precision/recall/F-measure can be computed exactly.
package errgen

import (
	"math/rand"

	"erminer/internal/relation"
)

// Kind is one class of injected error.
type Kind int

const (
	// Missing blanks the cell (relation.Null).
	Missing Kind = iota
	// Substitute replaces the value with a different value drawn from
	// the attribute's active domain.
	Substitute
	// Typo perturbs the string value by one character edit, usually
	// producing an out-of-domain value.
	Typo
	// Swap exchanges the cell's value with the same column of another
	// random row (BART's pairwise value swap). Both cells become errors
	// when their values differ. Disabled by default; enable via Weights.
	Swap
)

func (k Kind) String() string {
	switch k {
	case Missing:
		return "missing"
	case Substitute:
		return "substitute"
	case Typo:
		return "typo"
	case Swap:
		return "swap"
	default:
		return "unknown"
	}
}

// Error records one injected error.
type Error struct {
	Row, Col int
	Kind     Kind
	// Truth is the original (clean) code of the cell.
	Truth int32
}

// Config controls the injection.
type Config struct {
	// Rate is the per-cell corruption probability.
	Rate float64
	// Cols restricts injection to these columns; nil means all columns.
	Cols []int
	// Weights gives the relative frequency of (Missing, Substitute,
	// Typo, Swap). Zero value means the default (0.3, 0.4, 0.3, 0):
	// swaps occur only when explicitly weighted, keeping the paper's
	// error profile as the baseline.
	Weights [4]float64
	// Rng drives the randomness; required.
	Rng *rand.Rand
}

func (c *Config) weights() [4]float64 {
	if c.Weights == ([4]float64{}) {
		return [4]float64{0.3, 0.4, 0.3, 0}
	}
	return c.Weights
}

// Inject corrupts the relation in place and returns the injected errors.
// Callers who need the clean data keep a Clone taken before injection.
func Inject(rel *relation.Relation, cfg Config) []Error {
	if cfg.Rng == nil {
		panic("errgen: Config.Rng is required")
	}
	cols := cfg.Cols
	if cols == nil {
		cols = make([]int, rel.NumCols())
		for i := range cols {
			cols[i] = i
		}
	}
	w := cfg.weights()
	total := w[0] + w[1] + w[2] + w[3]

	// Pre-compute active domains for substitution.
	domains := make(map[int][]int32)
	for _, c := range cols {
		domains[c] = rel.DomainCodes(c)
	}

	var errs []Error
	// touched guards against corrupting a cell twice (possible once
	// swaps are enabled), which would record a wrong ground truth.
	touched := make(map[[2]int]bool)
	for row := 0; row < rel.NumRows(); row++ {
		for _, col := range cols {
			if cfg.Rng.Float64() >= cfg.Rate {
				continue
			}
			if touched[[2]int{row, col}] {
				continue
			}
			orig := rel.Code(row, col)
			if orig == relation.Null {
				continue // already missing; nothing to corrupt
			}
			kind := pickKind(cfg.Rng, w, total)
			switch kind {
			case Missing:
				rel.SetCode(row, col, relation.Null)
			case Substitute:
				dom := domains[col]
				if len(dom) < 2 {
					continue
				}
				repl := dom[cfg.Rng.Intn(len(dom))]
				for repl == orig {
					repl = dom[cfg.Rng.Intn(len(dom))]
				}
				rel.SetCode(row, col, repl)
			case Typo:
				v := rel.Dict(col).Value(orig)
				rel.SetValue(row, col, typo(cfg.Rng, v))
			case Swap:
				other := cfg.Rng.Intn(rel.NumRows())
				otherVal := rel.Code(other, col)
				if otherVal == orig || otherVal == relation.Null ||
					touched[[2]int{other, col}] {
					continue
				}
				rel.SetCode(row, col, otherVal)
				rel.SetCode(other, col, orig)
				touched[[2]int{other, col}] = true
				errs = append(errs, Error{Row: other, Col: col, Kind: Swap, Truth: otherVal})
			}
			touched[[2]int{row, col}] = true
			errs = append(errs, Error{Row: row, Col: col, Kind: kind, Truth: orig})
		}
	}
	return errs
}

func pickKind(rng *rand.Rand, w [4]float64, total float64) Kind {
	x := rng.Float64() * total
	switch {
	case x < w[0]:
		return Missing
	case x < w[0]+w[1]:
		return Substitute
	case x < w[0]+w[1]+w[2]:
		return Typo
	default:
		return Swap
	}
}

// typo applies one random character-level edit: substitution, deletion,
// insertion or adjacent transposition.
func typo(rng *rand.Rand, v string) string {
	if v == "" {
		return "?"
	}
	b := []byte(v)
	const letters = "abcdefghijklmnopqrstuvwxyz0123456789"
	switch rng.Intn(4) {
	case 0: // substitute one character
		i := rng.Intn(len(b))
		b[i] = letters[rng.Intn(len(letters))]
	case 1: // delete one character
		if len(b) > 1 {
			i := rng.Intn(len(b))
			b = append(b[:i], b[i+1:]...)
		} else {
			b = append(b, letters[rng.Intn(len(letters))])
		}
	case 2: // insert one character
		i := rng.Intn(len(b) + 1)
		b = append(b[:i], append([]byte{letters[rng.Intn(len(letters))]}, b[i:]...)...)
	default: // transpose adjacent characters
		if len(b) > 1 {
			i := rng.Intn(len(b) - 1)
			b[i], b[i+1] = b[i+1], b[i]
		} else {
			b = append(b, letters[rng.Intn(len(letters))])
		}
	}
	out := string(b)
	if out == v {
		out = v + "~"
	}
	return out
}

// TruthColumn reconstructs the ground-truth codes of one column: the clean
// relation's codes. It is a convenience for building the truth vector the
// measure and metrics packages consume.
func TruthColumn(clean *relation.Relation, col int) []int32 {
	out := make([]int32, clean.NumRows())
	copy(out, clean.Column(col))
	return out
}
