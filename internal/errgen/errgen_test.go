package errgen

import (
	"math"
	"math/rand"
	"testing"

	"erminer/internal/relation"
)

func bigRelation(rows int) *relation.Relation {
	s := relation.NewSchema(
		relation.Attribute{Name: "a"},
		relation.Attribute{Name: "b"},
	)
	r := relation.New(s, relation.NewPool())
	vals := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < rows; i++ {
		r.AppendRow([]string{vals[i%4], vals[(i+1)%4]})
	}
	return r
}

func TestInjectRate(t *testing.T) {
	r := bigRelation(5000)
	errs := Inject(r, Config{Rate: 0.1, Rng: rand.New(rand.NewSource(1))})
	got := float64(len(errs)) / float64(5000*2)
	if math.Abs(got-0.1) > 0.02 {
		t.Errorf("observed error rate %.3f, want ≈ 0.10", got)
	}
}

func TestInjectRecordsTruth(t *testing.T) {
	r := bigRelation(1000)
	clean := r.Clone()
	errs := Inject(r, Config{Rate: 0.2, Rng: rand.New(rand.NewSource(2))})
	if len(errs) == 0 {
		t.Fatal("no errors injected")
	}
	for _, e := range errs {
		if e.Truth != clean.Code(e.Row, e.Col) {
			t.Fatalf("recorded truth %d, clean value %d", e.Truth, clean.Code(e.Row, e.Col))
		}
		got := r.Code(e.Row, e.Col)
		switch e.Kind {
		case Missing:
			if got != relation.Null {
				t.Fatalf("missing error left value %d", got)
			}
		case Substitute, Typo:
			if got == e.Truth {
				t.Fatalf("%v error left the value unchanged", e.Kind)
			}
		}
	}
}

func TestInjectKindsAllOccur(t *testing.T) {
	r := bigRelation(3000)
	errs := Inject(r, Config{Rate: 0.3, Rng: rand.New(rand.NewSource(3))})
	counts := make(map[Kind]int)
	for _, e := range errs {
		counts[e.Kind]++
	}
	for _, k := range []Kind{Missing, Substitute, Typo} {
		if counts[k] == 0 {
			t.Errorf("kind %v never injected", k)
		}
	}
}

func TestInjectColsRestriction(t *testing.T) {
	r := bigRelation(1000)
	errs := Inject(r, Config{Rate: 0.3, Cols: []int{1}, Rng: rand.New(rand.NewSource(4))})
	for _, e := range errs {
		if e.Col != 1 {
			t.Fatalf("error in column %d despite Cols=[1]", e.Col)
		}
	}
	if len(errs) == 0 {
		t.Fatal("no errors injected in the allowed column")
	}
}

func TestInjectWeights(t *testing.T) {
	r := bigRelation(3000)
	errs := Inject(r, Config{
		Rate:    0.3,
		Weights: [4]float64{1, 0, 0, 0}, // only missing
		Rng:     rand.New(rand.NewSource(5)),
	})
	for _, e := range errs {
		if e.Kind != Missing {
			t.Fatalf("kind %v injected despite missing-only weights", e.Kind)
		}
	}
}

func TestInjectSkipsNullCells(t *testing.T) {
	s := relation.NewSchema(relation.Attribute{Name: "a"})
	r := relation.New(s, relation.NewPool())
	for i := 0; i < 100; i++ {
		r.AppendRow([]string{""}) // all Null
	}
	errs := Inject(r, Config{Rate: 1.0, Rng: rand.New(rand.NewSource(6))})
	if len(errs) != 0 {
		t.Errorf("injected %d errors into all-Null column", len(errs))
	}
}

func TestInjectRequiresRng(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inject without Rng did not panic")
		}
	}()
	Inject(bigRelation(1), Config{Rate: 0.5})
}

func TestTypoAlwaysChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, v := range []string{"", "a", "ab", "hello", "2021-12"} {
		for i := 0; i < 50; i++ {
			if got := typo(rng, v); got == v {
				t.Fatalf("typo(%q) returned the input", v)
			}
		}
	}
}

func TestTruthColumn(t *testing.T) {
	r := bigRelation(10)
	truth := TruthColumn(r, 0)
	if len(truth) != 10 {
		t.Fatalf("len = %d", len(truth))
	}
	for i := range truth {
		if truth[i] != r.Code(i, 0) {
			t.Fatalf("truth[%d] = %d", i, truth[i])
		}
	}
	// The returned slice is a copy.
	truth[0] = 99
	if r.Code(0, 0) == 99 {
		t.Error("TruthColumn shares backing store")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Missing: "missing", Substitute: "substitute", Typo: "typo", Kind(9): "unknown"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestInjectSwap(t *testing.T) {
	r := bigRelation(2000)
	clean := r.Clone()
	errs := Inject(r, Config{
		Rate:    0.2,
		Weights: [4]float64{0, 0, 0, 1}, // swaps only
		Rng:     rand.New(rand.NewSource(8)),
	})
	if len(errs) == 0 {
		t.Fatal("no swaps injected")
	}
	for _, e := range errs {
		if e.Kind != Swap {
			t.Fatalf("kind %v injected despite swap-only weights", e.Kind)
		}
		if e.Truth != clean.Code(e.Row, e.Col) {
			t.Fatalf("swap truth wrong at (%d,%d): %d vs clean %d",
				e.Row, e.Col, e.Truth, clean.Code(e.Row, e.Col))
		}
		if r.Code(e.Row, e.Col) == e.Truth {
			t.Fatalf("swap left cell (%d,%d) unchanged", e.Row, e.Col)
		}
	}
	// Swaps preserve column value multisets.
	for col := 0; col < r.NumCols(); col++ {
		want := clean.ValueCounts(col)
		got := r.ValueCounts(col)
		for v, n := range want {
			if got[v] != n {
				t.Fatalf("column %d multiset changed for value %d", col, v)
			}
		}
	}
}

func TestInjectNoDoubleCorruption(t *testing.T) {
	r := bigRelation(500)
	errs := Inject(r, Config{
		Rate: 0.9,
		Rng:  rand.New(rand.NewSource(9)),
	})
	seen := make(map[[2]int]bool)
	for _, e := range errs {
		cell := [2]int{e.Row, e.Col}
		if seen[cell] {
			t.Fatalf("cell (%d,%d) corrupted twice", e.Row, e.Col)
		}
		seen[cell] = true
	}
}
