package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
)

// MLP is a multi-layer perceptron: Dense layers with ReLU activations
// between them and a linear output layer — the architecture of the
// paper's value network (Figure 5: DNN feature extractor z_t followed by
// a linear layer producing the logits q_t).
type MLP struct {
	sizes  []int
	layers []Layer
}

// NewMLP builds an MLP with the given layer sizes, e.g.
// NewMLP(rng, 64, 128, 128, 10) for a 64-input, 10-output network with
// two hidden layers of 128 units.
func NewMLP(rng *rand.Rand, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic("nn: NewMLP needs at least input and output sizes")
	}
	m := &MLP{sizes: append([]int(nil), sizes...)}
	for i := 0; i+1 < len(sizes); i++ {
		m.layers = append(m.layers, NewDense(rng, sizes[i], sizes[i+1]))
		if i+2 < len(sizes) {
			m.layers = append(m.layers, &ReLU{})
		}
	}
	return m
}

// Sizes returns the layer sizes the network was built with.
func (m *MLP) Sizes() []int { return append([]int(nil), m.sizes...) }

// Forward runs a batch through the network.
func (m *MLP) Forward(x *Matrix) *Matrix {
	for _, l := range m.layers {
		x = l.Forward(x)
	}
	return x
}

// Predict runs a single input vector and returns the output vector.
func (m *MLP) Predict(v []float64) []float64 {
	out := m.Forward(FromRow(v))
	return out.Row(0)
}

// Backward backpropagates the gradient of the loss w.r.t. the output,
// accumulating parameter gradients. Forward must have been called first.
func (m *MLP) Backward(gradOut *Matrix) {
	for i := len(m.layers) - 1; i >= 0; i-- {
		gradOut = m.layers[i].Backward(gradOut)
	}
}

// Params returns all trainable parameters.
func (m *MLP) Params() []*Param {
	var out []*Param
	for _, l := range m.layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrads clears all parameter gradients.
func (m *MLP) ZeroGrads() {
	for _, p := range m.Params() {
		p.Grad.Zero()
	}
}

// Clone returns a deep copy of the network (used for target networks).
func (m *MLP) Clone() *MLP {
	c := NewMLP(rand.New(rand.NewSource(0)), m.sizes...)
	c.CopyFrom(m)
	return c
}

// CopyFrom copies the other network's parameter values into this one.
// The architectures must match.
func (m *MLP) CopyFrom(other *MLP) {
	mp, op := m.Params(), other.Params()
	if len(mp) != len(op) {
		panic("nn: CopyFrom architecture mismatch")
	}
	for i := range mp {
		copy(mp[i].Value.Data, op[i].Value.Data)
	}
}

// snapshotVersion numbers the MLP gob format; bump on any shape change
// (wiredrift gates it).
const snapshotVersion = 1

// snapshot is the gob wire format of an MLP.
//
//ermvet:wire
type snapshot struct {
	Sizes  []int
	Values [][]float64
}

// Save serialises the network parameters.
func (m *MLP) Save(w io.Writer) error {
	s := snapshot{Sizes: m.sizes}
	for _, p := range m.Params() {
		s.Values = append(s.Values, append([]float64(nil), p.Value.Data...))
	}
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("nn: saving MLP: %w", err)
	}
	return nil
}

// LoadMLP deserialises a network saved with Save.
func LoadMLP(r io.Reader) (*MLP, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("nn: loading MLP: %w", err)
	}
	m := NewMLP(rand.New(rand.NewSource(0)), s.Sizes...)
	params := m.Params()
	if len(params) != len(s.Values) {
		return nil, fmt.Errorf("nn: snapshot has %d tensors, architecture needs %d",
			len(s.Values), len(params))
	}
	for i, p := range params {
		if len(p.Value.Data) != len(s.Values[i]) {
			return nil, fmt.Errorf("nn: tensor %d size mismatch", i)
		}
		copy(p.Value.Data, s.Values[i])
	}
	return m, nil
}
