package nn

import (
	"math/rand"
)

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	Value *Matrix
	Grad  *Matrix
}

// Layer is one differentiable network stage. Forward caches whatever it
// needs for Backward; Backward consumes the gradient w.r.t. its output
// and returns the gradient w.r.t. its input, accumulating parameter
// gradients along the way.
type Layer interface {
	Forward(x *Matrix) *Matrix
	Backward(gradOut *Matrix) *Matrix
	Params() []*Param
}

// Dense is a fully connected layer y = x·W + b.
type Dense struct {
	W, B *Param
	x    *Matrix // cached input
}

// NewDense builds a Dense layer with Xavier-initialised weights.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	w := NewMatrix(in, out)
	XavierFill(w, rng, in, out)
	return &Dense{
		W: &Param{Value: w, Grad: NewMatrix(in, out)},
		B: &Param{Value: NewMatrix(1, out), Grad: NewMatrix(1, out)},
	}
}

// Forward implements Layer.
func (d *Dense) Forward(x *Matrix) *Matrix {
	d.x = x
	out := MatMul(x, d.W.Value)
	b := d.B.Value.Data
	for r := 0; r < out.Rows; r++ {
		row := out.Row(r)
		for j := range row {
			row[j] += b[j]
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(gradOut *Matrix) *Matrix {
	// dW += xᵀ·gradOut ; db += column sums of gradOut ; dx = gradOut·Wᵀ.
	gw := MatMulATB(d.x, gradOut)
	for i, v := range gw.Data {
		d.W.Grad.Data[i] += v
	}
	for r := 0; r < gradOut.Rows; r++ {
		row := gradOut.Row(r)
		for j, v := range row {
			d.B.Grad.Data[j] += v
		}
	}
	return MatMulABT(gradOut, d.W.Value)
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

// Forward implements Layer.
func (r *ReLU) Forward(x *Matrix) *Matrix {
	out := x.Clone()
	if cap(r.mask) < len(out.Data) {
		r.mask = make([]bool, len(out.Data))
	}
	r.mask = r.mask[:len(out.Data)]
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
			r.mask[i] = false
		} else {
			r.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(gradOut *Matrix) *Matrix {
	out := gradOut.Clone()
	for i := range out.Data {
		if !r.mask[i] {
			out.Data[i] = 0
		}
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }
