package nn

import (
	"math/rand"
	"testing"
)

// trainSteps drives net through n Adam steps on a fixed regression
// target so moments accumulate deterministically.
func trainSteps(net *MLP, opt *Adam, n int) {
	x := FromRow([]float64{0.3, -0.7})
	for i := 0; i < n; i++ {
		out := net.Forward(x)
		grad := NewMatrix(out.Rows, out.Cols)
		for j := 0; j < out.Cols; j++ {
			grad.Set(0, j, out.At(0, j)-1)
		}
		net.ZeroGrads()
		net.Backward(grad)
		opt.Step(net.Params())
	}
}

func paramsEqual(t *testing.T, a, b *MLP) {
	t.Helper()
	ap, bp := a.Params(), b.Params()
	for i := range ap {
		for j, v := range ap[i].Value.Data {
			if bp[i].Value.Data[j] != v {
				t.Fatalf("param %d entry %d diverged: %g vs %g", i, j, v, bp[i].Value.Data[j])
			}
		}
	}
}

// TestAdamStateRoundTrip checks the checkpoint/resume contract: train k
// steps, export the optimiser state, restore into a fresh Adam over a
// cloned network, continue both — every subsequent parameter update must
// be bit-identical.
func TestAdamStateRoundTrip(t *testing.T) {
	for _, k := range []int{0, 1, 17} {
		net := NewMLP(rand.New(rand.NewSource(1)), 2, 8, 3)
		opt := NewAdam(1e-2)
		trainSteps(net, opt, k)

		resumed := net.Clone()
		ropt := NewAdam(1e-2)
		if err := ropt.SetState(resumed.Params(), opt.State(net.Params())); err != nil {
			t.Fatalf("k=%d: SetState: %v", k, err)
		}

		trainSteps(net, opt, 25)
		trainSteps(resumed, ropt, 25)
		paramsEqual(t, net, resumed)
	}
}

// TestAdamStateFreshRestartDiverges pins why the state matters: resuming
// with a zeroed optimiser does NOT reproduce the uninterrupted run.
func TestAdamStateFreshRestartDiverges(t *testing.T) {
	net := NewMLP(rand.New(rand.NewSource(2)), 2, 8, 3)
	opt := NewAdam(1e-2)
	trainSteps(net, opt, 10)

	cold := net.Clone()
	coldOpt := NewAdam(1e-2)

	trainSteps(net, opt, 10)
	trainSteps(cold, coldOpt, 10)

	same := true
	ap, bp := net.Params(), cold.Params()
	for i := range ap {
		for j := range ap[i].Value.Data {
			if ap[i].Value.Data[j] != bp[i].Value.Data[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("cold optimiser restart reproduced the warm run; the state export would be pointless")
	}
}

func TestAdamSetStateRejectsMismatch(t *testing.T) {
	net := NewMLP(rand.New(rand.NewSource(3)), 2, 4, 2)
	opt := NewAdam(1e-3)
	st := opt.State(net.Params())
	if err := NewAdam(1e-3).SetState(net.Params()[:1], st); err == nil {
		t.Error("mismatched param count accepted")
	}
	trainSteps(net, opt, 1)
	st = opt.State(net.Params())
	st.M[0] = st.M[0][:1]
	if err := NewAdam(1e-3).SetState(net.Params(), st); err == nil {
		t.Error("mismatched moment length accepted")
	}
}

func TestHuberLossMatchesGrad(t *testing.T) {
	// The loss must be continuous, match ½e² inside the clip region, and
	// its numerical derivative must agree with HuberGrad everywhere.
	for _, e := range []float64{-3, -1.5, -1, -0.5, 0, 0.25, 1, 2.5} {
		const h = 1e-6
		num := (HuberLoss(e+h) - HuberLoss(e-h)) / (2 * h)
		if g := HuberGrad(e); num-g > 1e-4 || g-num > 1e-4 {
			t.Errorf("dHuberLoss(%g) = %g, HuberGrad = %g", e, num, g)
		}
	}
	if HuberLoss(0.5) != 0.125 {
		t.Errorf("HuberLoss(0.5) = %g", HuberLoss(0.5))
	}
	if HuberLoss(3) != 2.5 || HuberLoss(-3) != 2.5 {
		t.Errorf("linear region wrong: %g %g", HuberLoss(3), HuberLoss(-3))
	}
}
