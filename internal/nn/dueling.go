package nn

import "math/rand"

// Dueling is the dueling network architecture (Wang et al. 2016), one of
// the DQN variants the paper's §III-C5 alludes to: a shared feature
// trunk feeds two heads, a scalar state-value V(s) and per-action
// advantages A(s, a), combined as
//
//	Q(s, a) = V(s) + A(s, a) − mean_a' A(s, a').
//
// Separating value from advantage stabilises learning when many actions
// have similar values — common in rule discovery, where most refinements
// of a bad rule are equally bad.
type Dueling struct {
	trunk     *MLP
	valueHead *Dense
	advHead   *Dense
	actions   int
	sizes     []int

	// Cached forward state for Backward.
	feats *Matrix
	adv   *Matrix
}

// NewDueling builds a dueling network: inputs → hidden... → (V, A).
// sizes lists input and hidden widths; actions is the output count.
func NewDueling(rng *rand.Rand, actions int, sizes ...int) *Dueling {
	if len(sizes) < 2 {
		panic("nn: NewDueling needs input and at least one hidden size")
	}
	// The trunk ends with a ReLU so both heads see rectified features.
	trunk := &MLP{sizes: append([]int(nil), sizes...)}
	for i := 0; i+1 < len(sizes); i++ {
		trunk.layers = append(trunk.layers, NewDense(rng, sizes[i], sizes[i+1]), &ReLU{})
	}
	h := sizes[len(sizes)-1]
	return &Dueling{
		trunk:     trunk,
		valueHead: NewDense(rng, h, 1),
		advHead:   NewDense(rng, h, actions),
		actions:   actions,
		sizes:     append([]int(nil), sizes...),
	}
}

// Forward computes Q-values for a batch.
func (d *Dueling) Forward(x *Matrix) *Matrix {
	d.feats = d.trunk.Forward(x)
	v := d.valueHead.Forward(d.feats)
	d.adv = d.advHead.Forward(d.feats)

	out := NewMatrix(x.Rows, d.actions)
	for r := 0; r < x.Rows; r++ {
		mean := 0.0
		arow := d.adv.Row(r)
		for _, a := range arow {
			mean += a
		}
		mean /= float64(d.actions)
		orow := out.Row(r)
		for j, a := range arow {
			orow[j] = v.At(r, 0) + a - mean
		}
	}
	return out
}

// Predict runs a single input vector.
func (d *Dueling) Predict(v []float64) []float64 {
	return d.Forward(FromRow(v)).Row(0)
}

// Backward backpropagates dL/dQ through both heads and the trunk.
func (d *Dueling) Backward(gradQ *Matrix) {
	// dQ/dV = 1 per action; dQ/dA_j = δ_ij − 1/n.
	gradV := NewMatrix(gradQ.Rows, 1)
	gradA := NewMatrix(gradQ.Rows, d.actions)
	for r := 0; r < gradQ.Rows; r++ {
		sum := 0.0
		grow := gradQ.Row(r)
		for _, g := range grow {
			sum += g
		}
		gradV.Set(r, 0, sum)
		arow := gradA.Row(r)
		for j, g := range grow {
			arow[j] = g - sum/float64(d.actions)
		}
	}
	gFeats := d.valueHead.Backward(gradV)
	gFeats2 := d.advHead.Backward(gradA)
	for i := range gFeats.Data {
		gFeats.Data[i] += gFeats2.Data[i]
	}
	d.trunk.Backward(gFeats)
}

// Params returns all trainable parameters.
func (d *Dueling) Params() []*Param {
	out := d.trunk.Params()
	out = append(out, d.valueHead.Params()...)
	out = append(out, d.advHead.Params()...)
	return out
}

// ZeroGrads clears all gradients.
func (d *Dueling) ZeroGrads() {
	for _, p := range d.Params() {
		p.Grad.Zero()
	}
}

// Clone returns a deep copy (for target networks).
func (d *Dueling) Clone() *Dueling {
	c := NewDueling(rand.New(rand.NewSource(0)), d.actions, d.sizes...)
	c.CopyFrom(d)
	return c
}

// CopyFrom copies parameter values; architectures must match.
func (d *Dueling) CopyFrom(other *Dueling) {
	dp, op := d.Params(), other.Params()
	if len(dp) != len(op) {
		panic("nn: Dueling CopyFrom architecture mismatch")
	}
	for i := range dp {
		copy(dp[i].Value.Data, op[i].Value.Data)
	}
}
