package nn

import (
	"fmt"
	"math"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      map[*Param][]float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make(map[*Param][]float64)}
}

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		v := s.vel[p]
		if v == nil {
			v = make([]float64, len(p.Value.Data))
			s.vel[p] = v
		}
		for i, g := range p.Grad.Data {
			v[i] = s.Momentum*v[i] - s.LR*g
			p.Value.Data[i] += v[i]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba 2015) with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*Param][]float64
}

// NewAdam returns an Adam optimizer with the usual defaults
// (β1 = 0.9, β2 = 0.999, ε = 1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param][]float64),
		v: make(map[*Param][]float64),
	}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m := a.m[p]
		v := a.v[p]
		if m == nil {
			m = make([]float64, len(p.Value.Data))
			v = make([]float64, len(p.Value.Data))
			a.m[p] = m
			a.v[p] = v
		}
		for i, g := range p.Grad.Data {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mhat := m[i] / c1
			vhat := v[i] / c2
			p.Value.Data[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
	}
}

// AdamState is the optimiser's serialisable state, expressed relative
// to an ordered parameter list: M[i] and V[i] are the first and second
// moment vectors of params[i] (nil when the optimiser has not stepped
// yet), and T is the bias-correction timestep. Together with the
// parameter values themselves it makes an interrupted training run
// resumable bit-identically — without it, a restored network would
// restart Adam's moments at zero and diverge from the uninterrupted
// run on the first step.
//
//ermvet:wire
type AdamState struct {
	T    int
	M, V [][]float64
}

// AdamStateVersion numbers the optimiser-state wire format (it rides
// inside the agent gob); bump on any shape change (wiredrift gates it).
const AdamStateVersion = 1

// State exports the moment state of params, in order.
func (a *Adam) State(params []*Param) AdamState {
	st := AdamState{T: a.t, M: make([][]float64, len(params)), V: make([][]float64, len(params))}
	for i, p := range params {
		if m := a.m[p]; m != nil {
			st.M[i] = append([]float64(nil), m...)
			st.V[i] = append([]float64(nil), a.v[p]...)
		}
	}
	return st
}

// SetState restores moment state captured with State onto params, which
// must be the same tensors in the same order (same count and lengths).
func (a *Adam) SetState(params []*Param, st AdamState) error {
	if len(st.M) != len(params) || len(st.V) != len(params) {
		return fmt.Errorf("nn: Adam state has %d/%d moment vectors, want %d",
			len(st.M), len(st.V), len(params))
	}
	m := make(map[*Param][]float64, len(params))
	v := make(map[*Param][]float64, len(params))
	for i, p := range params {
		if len(st.M[i]) == 0 && len(st.V[i]) == 0 {
			continue // param not stepped yet: Step lazily zero-initialises
		}
		if len(st.M[i]) != len(p.Value.Data) || len(st.V[i]) != len(p.Value.Data) {
			return fmt.Errorf("nn: Adam moment %d has %d/%d entries, param has %d",
				i, len(st.M[i]), len(st.V[i]), len(p.Value.Data))
		}
		m[p] = append([]float64(nil), st.M[i]...)
		v[p] = append([]float64(nil), st.V[i]...)
	}
	a.t = st.T
	a.m = m
	a.v = v
	return nil
}

// HuberGrad returns the gradient of the Huber loss (δ = 1) of the
// prediction error e = pred − target: e clipped to [-1, 1]. DQN uses it
// to keep large Bellman errors from destabilising training.
func HuberGrad(e float64) float64 {
	if e > 1 {
		return 1
	}
	if e < -1 {
		return -1
	}
	return e
}

// HuberLoss returns the Huber loss (δ = 1) whose gradient HuberGrad
// computes: ½·e² in the quadratic region, |e| − ½ beyond it.
func HuberLoss(e float64) float64 {
	if e > 1 {
		return e - 0.5
	}
	if e < -1 {
		return -e - 0.5
	}
	return 0.5 * e * e
}

// MSEGrad returns the gradient of ½·e² — the raw error.
func MSEGrad(e float64) float64 { return e }
