// Package nn is a small, dependency-free neural-network library: dense
// layers with ReLU activations, mean-squared-error and Huber losses, SGD
// and Adam optimizers, and gob serialisation. It exists to support the
// DQN value network of RLMiner (paper §IV-C) at the paper's scale —
// state vectors of tens to a few hundred dimensions and a few thousand
// training steps — where a CPU implementation is entirely sufficient.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRow wraps a single row vector (shared backing slice).
func FromRow(v []float64) *Matrix {
	return &Matrix{Rows: 1, Cols: len(v), Data: v}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns row r as a slice sharing the matrix backing store.
func (m *Matrix) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero resets all elements to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MatMul computes a·b into a new matrix.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("nn: MatMul shape mismatch (%dx%d)·(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulATB computes aᵀ·b into a new matrix.
func MatMulATB(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("nn: MatMulATB shape mismatch (%dx%d)ᵀ·(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Cols, b.Cols)
	for r := 0; r < a.Rows; r++ {
		arow := a.Row(r)
		brow := b.Row(r)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulABT computes a·bᵀ into a new matrix.
func MatMulABT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("nn: MatMulABT shape mismatch (%dx%d)·(%dx%d)ᵀ",
			a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			s := 0.0
			for k := range arow {
				s += arow[k] * brow[k]
			}
			orow[j] = s
		}
	}
	return out
}

// XavierFill initialises the matrix with Glorot-uniform values for a
// layer with the given fan-in and fan-out.
func XavierFill(m *Matrix, rng *rand.Rand, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}
