package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Error("Set/At broken")
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 5 {
		t.Errorf("Row = %v", row)
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Error("Clone shares storage")
	}
	m.Zero()
	if m.At(1, 2) != 0 {
		t.Error("Zero failed")
	}
	fr := FromRow([]float64{1, 2})
	if fr.Rows != 1 || fr.Cols != 2 || fr.At(0, 1) != 2 {
		t.Errorf("FromRow = %+v", fr)
	}
}

// naiveMul is the obvious triple loop used to validate the optimised
// multiplication kernels.
func naiveMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func randMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func matEq(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func transpose(a *Matrix) *Matrix {
	out := NewMatrix(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Set(j, i, a.At(i, j))
		}
	}
	return out
}

func TestMatMulKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMatrix(rng, 4, 6)
	b := randMatrix(rng, 6, 5)
	if !matEq(MatMul(a, b), naiveMul(a, b), 1e-12) {
		t.Error("MatMul disagrees with naive multiplication")
	}
	c := randMatrix(rng, 4, 5)
	if !matEq(MatMulATB(a, c), naiveMul(transpose(a), c), 1e-12) {
		t.Error("MatMulATB disagrees")
	}
	d := randMatrix(rng, 7, 5)
	if !matEq(MatMulABT(c, d), naiveMul(c, transpose(d)), 1e-12) {
		t.Error("MatMulABT disagrees")
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(4, 5))
}

// TestGradientCheck compares the analytic gradients of an MLP against
// central finite differences on a scalar loss L = Σ out².
func TestGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mlp := NewMLP(rng, 4, 6, 3)
	x := randMatrix(rng, 2, 4)

	loss := func() float64 {
		out := mlp.Forward(x)
		l := 0.0
		for _, v := range out.Data {
			l += v * v
		}
		return 0.5 * l
	}

	// Analytic gradients: dL/dout = out.
	out := mlp.Forward(x)
	mlp.ZeroGrads()
	mlp.Backward(out.Clone())

	const eps = 1e-6
	for pi, p := range mlp.Params() {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			lp := loss()
			p.Value.Data[i] = orig - eps
			lm := loss()
			p.Value.Data[i] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := p.Grad.Data[i]
			if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("param %d[%d]: numeric %g vs analytic %g", pi, i, numeric, analytic)
			}
		}
	}
}

func TestReLU(t *testing.T) {
	r := &ReLU{}
	x := FromRow([]float64{-1, 0, 2})
	out := r.Forward(x)
	want := []float64{0, 0, 2}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("ReLU out[%d] = %g", i, out.Data[i])
		}
	}
	grad := r.Backward(FromRow([]float64{1, 1, 1}))
	wantG := []float64{0, 1, 1}
	for i, w := range wantG {
		if grad.Data[i] != w {
			t.Errorf("ReLU grad[%d] = %g", i, grad.Data[i])
		}
	}
	if r.Params() != nil {
		t.Error("ReLU has params")
	}
}

// TestMLPLearnsXOR: a 2-layer network with Adam must fit XOR.
func TestMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mlp := NewMLP(rng, 2, 16, 1)
	opt := NewAdam(0.01)
	xs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	ys := []float64{0, 1, 1, 0}

	x := NewMatrix(4, 2)
	for i, v := range xs {
		copy(x.Row(i), v)
	}
	var loss float64
	for epoch := 0; epoch < 2000; epoch++ {
		out := mlp.Forward(x)
		grad := NewMatrix(4, 1)
		loss = 0
		for i := range ys {
			e := out.At(i, 0) - ys[i]
			loss += e * e
			grad.Set(i, 0, e/4)
		}
		mlp.ZeroGrads()
		mlp.Backward(grad)
		opt.Step(mlp.Params())
	}
	if loss > 0.05 {
		t.Errorf("XOR loss after training = %g", loss)
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	mlp := NewMLP(rng, 1, 8, 1)
	opt := NewSGD(0.05, 0.9)
	// Fit y = 2x on [-1, 1].
	x := NewMatrix(8, 1)
	y := make([]float64, 8)
	for i := 0; i < 8; i++ {
		v := float64(i)/4 - 1
		x.Set(i, 0, v)
		y[i] = 2 * v
	}
	var loss float64
	for epoch := 0; epoch < 3000; epoch++ {
		out := mlp.Forward(x)
		grad := NewMatrix(8, 1)
		loss = 0
		for i := range y {
			e := out.At(i, 0) - y[i]
			loss += e * e
			grad.Set(i, 0, e/8)
		}
		mlp.ZeroGrads()
		mlp.Backward(grad)
		opt.Step(mlp.Params())
	}
	if loss > 0.05 {
		t.Errorf("linear-fit loss = %g", loss)
	}
}

func TestPredictMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mlp := NewMLP(rng, 3, 4, 2)
	v := []float64{0.1, -0.2, 0.3}
	p := mlp.Predict(v)
	f := mlp.Forward(FromRow(v)).Row(0)
	for i := range p {
		if p[i] != f[i] {
			t.Errorf("Predict[%d] = %g, Forward = %g", i, p[i], f[i])
		}
	}
}

func TestCloneAndCopyFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := NewMLP(rng, 2, 3, 1)
	b := a.Clone()
	in := []float64{0.5, -0.5}
	if a.Predict(in)[0] != b.Predict(in)[0] {
		t.Error("clone predicts differently")
	}
	// Mutate a; b is unaffected.
	a.Params()[0].Value.Data[0] += 1
	if a.Predict(in)[0] == b.Predict(in)[0] {
		t.Error("clone shares parameters")
	}
	b.CopyFrom(a)
	if a.Predict(in)[0] != b.Predict(in)[0] {
		t.Error("CopyFrom did not synchronise")
	}
}

func TestCopyFromMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewMLP(rng, 2, 3, 1)
	b := NewMLP(rng, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("architecture mismatch did not panic")
		}
	}()
	a.CopyFrom(b)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := NewMLP(rng, 3, 5, 2)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := LoadMLP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{0.3, 0.1, -0.7}
	pa, pb := a.Predict(in), b.Predict(in)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Errorf("loaded net differs at output %d", i)
		}
	}
	sizes := b.Sizes()
	if len(sizes) != 3 || sizes[0] != 3 || sizes[2] != 2 {
		t.Errorf("Sizes = %v", sizes)
	}
}

func TestLoadMLPGarbage(t *testing.T) {
	if _, err := LoadMLP(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestHuberGrad(t *testing.T) {
	for _, tc := range []struct{ e, want float64 }{
		{0.5, 0.5}, {-0.5, -0.5}, {3, 1}, {-3, -1}, {0, 0},
	} {
		if got := HuberGrad(tc.e); got != tc.want {
			t.Errorf("HuberGrad(%g) = %g, want %g", tc.e, got, tc.want)
		}
	}
	if MSEGrad(2.5) != 2.5 {
		t.Error("MSEGrad broken")
	}
}

func TestNewMLPTooFewSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("one-size MLP did not panic")
		}
	}()
	NewMLP(rand.New(rand.NewSource(9)), 3)
}

func TestXavierFillRange(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := NewMatrix(10, 10)
	XavierFill(m, rng, 10, 10)
	limit := math.Sqrt(6.0 / 20.0)
	nonZero := 0
	for _, v := range m.Data {
		if math.Abs(v) > limit {
			t.Fatalf("value %g outside Xavier limit %g", v, limit)
		}
		if v != 0 {
			nonZero++
		}
	}
	if nonZero < 90 {
		t.Error("XavierFill left most values zero")
	}
}
