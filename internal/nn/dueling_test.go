package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestDuelingForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDueling(rng, 5, 3, 8)
	x := randMatrix(rng, 4, 3)
	out := d.Forward(x)
	if out.Rows != 4 || out.Cols != 5 {
		t.Fatalf("shape = %dx%d", out.Rows, out.Cols)
	}
}

// TestDuelingIdentifiability: Q(s,·) = V + A − mean(A), so the mean of
// the advantages cancels: adding a constant to all advantages leaves Q
// unchanged. Check directly that mean-centering holds: Q − V has zero
// mean per row... V isn't exposed; instead verify the gradient identity
// by gradient checking below.
func TestDuelingGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDueling(rng, 4, 3, 6)
	x := randMatrix(rng, 2, 3)

	loss := func() float64 {
		out := d.Forward(x)
		l := 0.0
		for _, v := range out.Data {
			l += v * v
		}
		return 0.5 * l
	}

	out := d.Forward(x)
	d.ZeroGrads()
	d.Backward(out.Clone())

	const eps = 1e-6
	for pi, p := range d.Params() {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			lp := loss()
			p.Value.Data[i] = orig - eps
			lm := loss()
			p.Value.Data[i] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := p.Grad.Data[i]
			if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("param %d[%d]: numeric %g vs analytic %g", pi, i, numeric, analytic)
			}
		}
	}
}

func TestDuelingLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDueling(rng, 1, 2, 16)
	opt := NewAdam(0.01)
	xs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	ys := []float64{0, 1, 1, 0}
	x := NewMatrix(4, 2)
	for i, v := range xs {
		copy(x.Row(i), v)
	}
	var loss float64
	for epoch := 0; epoch < 3000; epoch++ {
		out := d.Forward(x)
		grad := NewMatrix(4, 1)
		loss = 0
		for i := range ys {
			e := out.At(i, 0) - ys[i]
			loss += e * e
			grad.Set(i, 0, e/4)
		}
		d.ZeroGrads()
		d.Backward(grad)
		opt.Step(d.Params())
	}
	if loss > 0.05 {
		t.Errorf("dueling XOR loss = %g", loss)
	}
}

func TestDuelingCloneAndCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewDueling(rng, 3, 2, 4)
	b := a.Clone()
	in := []float64{0.4, -0.1}
	pa, pb := a.Predict(in), b.Predict(in)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("clone predicts differently")
		}
	}
	a.Params()[0].Value.Data[0] += 1
	if a.Predict(in)[0] == b.Predict(in)[0] {
		t.Error("clone shares parameters")
	}
	b.CopyFrom(a)
	if a.Predict(in)[0] != b.Predict(in)[0] {
		t.Error("CopyFrom did not synchronise")
	}
}

func TestDuelingTooFewSizesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("did not panic")
		}
	}()
	NewDueling(rand.New(rand.NewSource(5)), 2, 3)
}
