package relation

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	r := buildTestRelation(t)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(strings.NewReader(buf.String()), testSchema(), NewPool())
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.NumRows() != r.NumRows() {
		t.Fatalf("rows = %d, want %d", got.NumRows(), r.NumRows())
	}
	for row := 0; row < r.NumRows(); row++ {
		for col := 0; col < r.NumCols(); col++ {
			if got.Value(row, col) != r.Value(row, col) {
				t.Errorf("cell (%d,%d) = %q, want %q",
					row, col, got.Value(row, col), r.Value(row, col))
			}
		}
	}
	// Null round-trips as Null.
	if got.Code(2, 1) != Null {
		t.Errorf("Null cell round-tripped to %q", got.Value(2, 1))
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	r := buildTestRelation(t)
	path := filepath.Join(t.TempDir(), "rel.csv")
	if err := r.WriteCSVFile(path); err != nil {
		t.Fatalf("WriteCSVFile: %v", err)
	}
	got, err := ReadCSVFile(path, testSchema(), NewPool())
	if err != nil {
		t.Fatalf("ReadCSVFile: %v", err)
	}
	if got.NumRows() != 3 {
		t.Errorf("rows = %d", got.NumRows())
	}
}

func TestReadCSVHeaderMismatch(t *testing.T) {
	csv := "city,wrong,age\nHZ,1,2\n"
	if _, err := ReadCSV(strings.NewReader(csv), testSchema(), NewPool()); err == nil {
		t.Fatal("mismatched header accepted")
	}
}

func TestReadCSVBadRecord(t *testing.T) {
	csv := "city,zip,age\nHZ,1\n"
	if _, err := ReadCSV(strings.NewReader(csv), testSchema(), NewPool()); err == nil {
		t.Fatal("short record accepted")
	}
}

func TestReadCSVMissingFile(t *testing.T) {
	if _, err := ReadCSVFile(filepath.Join(t.TempDir(), "nope.csv"), testSchema(), NewPool()); err == nil {
		t.Fatal("missing file accepted")
	}
}
