package relation

import (
	"fmt"
	"math"
	"sort"
)

// CellUpdate overwrites one cell with a pre-interned code.
type CellUpdate struct {
	Row  int
	Col  int
	Code int32
}

// Delta is a batch of mutations applied atomically by ApplyDelta:
// whole-row appends followed by individual cell updates. Codes must be
// pre-interned against the relation's dictionaries (Null is allowed).
type Delta struct {
	Appends [][]int32
	Updates []CellUpdate
}

// ChangeSet summarizes what a span of versions changed. It is the unit
// of the relation's change log and the input to incremental maintenance
// of derived structures (posting lists, group projections, master
// indexes): Appended rows occupy ids [OldRows, OldRows+Appended) and
// Cols lists the columns touched by in-place cell updates.
type ChangeSet struct {
	// From and To delimit the half-open version span (From, To] the set
	// describes: a structure built at version From is brought to To by
	// applying it.
	From, To int64
	// OldRows is the row count before the first append in the span.
	OldRows int
	// Appended counts rows appended in the span.
	Appended int
	// Cols holds the sorted distinct columns whose existing cells were
	// overwritten. Appends are not reflected here; they touch every
	// column and are accounted for by Appended.
	Cols []int
}

// Touches reports whether existing cells of column col were overwritten.
// Appended rows are not considered: a structure that splices appends in
// separately only needs to know about in-place updates.
func (c ChangeSet) Touches(col int) bool {
	i := sort.SearchInts(c.Cols, col)
	return i < len(c.Cols) && c.Cols[i] == col
}

// Empty reports whether the set describes no mutation at all.
func (c ChangeSet) Empty() bool { return c.Appended == 0 && len(c.Cols) == 0 }

// logChange appends one entry to the bounded change log.
func (r *Relation) logChange(c ChangeSet) {
	if len(r.log) >= maxChangeLog {
		// Drop the oldest half in one copy so appends stay amortized O(1).
		n := copy(r.log, r.log[len(r.log)-maxChangeLog/2:])
		r.log = r.log[:n]
	}
	r.log = append(r.log, c)
}

// ChangesSince merges the change log over the span (since, Version()].
// ok is false when the log no longer covers the span (too many
// mutations since, or since predates the relation's log); callers must
// then fall back to a full rebuild. since == Version() yields an empty
// set with ok true.
func (r *Relation) ChangesSince(since int64) (ChangeSet, bool) {
	if since == r.version {
		return ChangeSet{From: since, To: since, OldRows: r.n}, true
	}
	if since > r.version {
		return ChangeSet{}, false
	}
	// Find the first entry with From >= since; entries are contiguous in
	// version order, so the span is covered iff that entry starts exactly
	// at since and the last entry ends at the current version.
	i := sort.Search(len(r.log), func(i int) bool { return r.log[i].From >= since })
	if i == len(r.log) || r.log[i].From != since || r.log[len(r.log)-1].To != r.version {
		return ChangeSet{}, false
	}
	out := ChangeSet{From: since, To: r.version, OldRows: r.log[i].OldRows}
	cols := make(map[int]struct{})
	for ; i < len(r.log); i++ {
		out.Appended += r.log[i].Appended
		for _, c := range r.log[i].Cols {
			cols[c] = struct{}{}
		}
	}
	if len(cols) > 0 {
		out.Cols = make([]int, 0, len(cols))
		for c := range cols {
			out.Cols = append(out.Cols, c)
		}
		sort.Ints(out.Cols)
	}
	return out, true
}

// ApplyDelta validates and applies a delta atomically: either every
// append and update is applied under a single version bump, or the
// relation is left untouched and an error returned. Updates that write
// a cell's existing value are skipped; if the whole delta is a no-op
// the version is not bumped and the returned ChangeSet is empty.
func (r *Relation) ApplyDelta(d Delta) (ChangeSet, error) {
	// Validate everything before mutating anything.
	for i, row := range d.Appends {
		if len(row) != r.schema.Len() {
			return ChangeSet{}, fmt.Errorf("relation: delta append %d has %d codes for %d attributes",
				i, len(row), r.schema.Len())
		}
		for col, c := range row {
			if c < Null || int(c) >= r.dicts[col].Size() {
				return ChangeSet{}, fmt.Errorf("relation: delta append %d column %d: code %d out of range",
					i, col, c)
			}
		}
	}
	for i, u := range d.Updates {
		if u.Col < 0 || u.Col >= r.schema.Len() {
			return ChangeSet{}, fmt.Errorf("relation: delta update %d: column %d out of range", i, u.Col)
		}
		if u.Row < 0 || u.Row >= r.n {
			return ChangeSet{}, fmt.Errorf("relation: delta update %d: row %d out of range", i, u.Row)
		}
		if u.Code < Null || int(u.Code) >= r.dicts[u.Col].Size() {
			return ChangeSet{}, fmt.Errorf("relation: delta update %d: code %d out of range", i, u.Code)
		}
	}
	cs := ChangeSet{OldRows: r.n}
	for _, row := range d.Appends {
		for col, c := range row {
			r.cols[col] = append(r.cols[col], c)
			if r.nums[col] != nil {
				v, ok := r.NumericValue(r.n, col)
				if !ok {
					v = math.Inf(-1)
				}
				r.nums[col] = append(r.nums[col], v)
			}
		}
		r.n++
		cs.Appended++
	}
	touched := make(map[int]struct{})
	for _, u := range d.Updates {
		if r.cols[u.Col][u.Row] == u.Code {
			continue
		}
		r.cols[u.Col][u.Row] = u.Code
		r.nums[u.Col] = nil
		touched[u.Col] = struct{}{}
	}
	if len(touched) > 0 {
		cs.Cols = make([]int, 0, len(touched))
		for c := range touched {
			cs.Cols = append(cs.Cols, c)
		}
		sort.Ints(cs.Cols)
	}
	if cs.Empty() {
		cs.From, cs.To = r.version, r.version
		return cs, nil
	}
	r.version++
	cs.From, cs.To = r.version-1, r.version
	r.logChange(cs)
	return cs, nil
}
