package relation

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testSchema() *Schema {
	return NewSchema(
		Attribute{Name: "city"},
		Attribute{Name: "zip", Domain: "zipcode"},
		Attribute{Name: "age", Type: Continuous},
	)
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema()
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if got := s.Index("zip"); got != 1 {
		t.Errorf("Index(zip) = %d, want 1", got)
	}
	if got := s.Index("nope"); got != -1 {
		t.Errorf("Index(nope) = %d, want -1", got)
	}
	if got := s.MustIndex("age"); got != 2 {
		t.Errorf("MustIndex(age) = %d, want 2", got)
	}
	if got := s.Attr(1).DomainName(); got != "zipcode" {
		t.Errorf("DomainName = %q, want zipcode", got)
	}
	if got := s.Attr(0).DomainName(); got != "city" {
		t.Errorf("DomainName = %q, want city (default to name)", got)
	}
	want := []string{"city", "zip", "age"}
	for i, n := range s.Names() {
		if n != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, n, want[i])
		}
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSchema with duplicate names did not panic")
		}
	}()
	NewSchema(Attribute{Name: "a"}, Attribute{Name: "a"})
}

func TestMustIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustIndex on missing attribute did not panic")
		}
	}()
	testSchema().MustIndex("missing")
}

func TestDictInternAndLookup(t *testing.T) {
	d := NewDict()
	a := d.Code("x")
	b := d.Code("y")
	if a == b {
		t.Fatal("distinct values got equal codes")
	}
	if got := d.Code("x"); got != a {
		t.Errorf("re-interning x gave %d, want %d", got, a)
	}
	if got := d.Value(a); got != "x" {
		t.Errorf("Value(%d) = %q, want x", a, got)
	}
	if got := d.Value(Null); got != "" {
		t.Errorf("Value(Null) = %q, want empty", got)
	}
	if _, ok := d.Lookup("z"); ok {
		t.Error("Lookup(z) reported present")
	}
	if c, ok := d.Lookup("y"); !ok || c != b {
		t.Errorf("Lookup(y) = (%d, %v), want (%d, true)", c, ok, b)
	}
	if d.Size() != 2 {
		t.Errorf("Size = %d, want 2", d.Size())
	}
	vals := d.Values()
	if len(vals) != 2 || vals[a] != "x" || vals[b] != "y" {
		t.Errorf("Values() = %v", vals)
	}
}

// Property: interning any sequence of strings round-trips code -> value.
func TestDictRoundTripProperty(t *testing.T) {
	f := func(vals []string) bool {
		d := NewDict()
		for _, v := range vals {
			c := d.Code(v)
			if d.Value(c) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPoolSharesDicts(t *testing.T) {
	p := NewPool()
	a := p.Dict("zip")
	b := p.Dict("zip")
	if a != b {
		t.Fatal("pool returned distinct dicts for the same domain")
	}
	if p.Dict("other") == a {
		t.Fatal("pool shared dict across domains")
	}
}

func buildTestRelation(t *testing.T) *Relation {
	t.Helper()
	r := New(testSchema(), NewPool())
	r.AppendRow([]string{"HZ", "31200", "30"})
	r.AppendRow([]string{"BJ", "10021", "41"})
	r.AppendRow([]string{"HZ", "", "25"})
	return r
}

func TestRelationAppendAndAccess(t *testing.T) {
	r := buildTestRelation(t)
	if r.NumRows() != 3 || r.NumCols() != 3 {
		t.Fatalf("shape = %dx%d, want 3x3", r.NumRows(), r.NumCols())
	}
	if got := r.Value(0, 0); got != "HZ" {
		t.Errorf("Value(0,0) = %q", got)
	}
	if got := r.Code(2, 1); got != Null {
		t.Errorf("empty cell code = %d, want Null", got)
	}
	if r.Code(0, 0) != r.Code(2, 0) {
		t.Error("equal strings got different codes")
	}
	row := r.RowStrings(1)
	if row[0] != "BJ" || row[1] != "10021" || row[2] != "41" {
		t.Errorf("RowStrings(1) = %v", row)
	}
	codes := r.Row(1)
	for c, code := range codes {
		if code != r.Code(1, c) {
			t.Errorf("Row(1)[%d] = %d, want %d", c, code, r.Code(1, c))
		}
	}
}

func TestAppendRowWrongArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AppendRow with wrong arity did not panic")
		}
	}()
	buildTestRelation(t).AppendRow([]string{"only-one"})
}

func TestSetValueAndSetCode(t *testing.T) {
	r := buildTestRelation(t)
	r.SetValue(0, 1, "99999")
	if got := r.Value(0, 1); got != "99999" {
		t.Errorf("after SetValue: %q", got)
	}
	r.SetValue(0, 1, "")
	if got := r.Code(0, 1); got != Null {
		t.Errorf("SetValue empty should store Null, got %d", got)
	}
	r.SetCode(0, 0, r.Code(1, 0))
	if got := r.Value(0, 0); got != "BJ" {
		t.Errorf("after SetCode: %q", got)
	}
}

func TestNumeric(t *testing.T) {
	r := buildTestRelation(t)
	nums := r.Numeric(2)
	want := []float64{30, 41, 25}
	for i, w := range want {
		if nums[i] != w {
			t.Errorf("Numeric[%d] = %g, want %g", i, nums[i], w)
		}
	}
	// Null and non-numeric cells map to -Inf.
	nonNum := r.Numeric(0)
	for i, v := range nonNum {
		if !math.IsInf(v, -1) {
			t.Errorf("Numeric(city)[%d] = %g, want -Inf", i, v)
		}
	}
	if v, ok := r.NumericValue(2, 1); ok || v != 0 {
		t.Errorf("NumericValue of Null = (%g, %v), want (0, false)", v, ok)
	}
	// The cache must be invalidated by writes.
	r.SetValue(0, 2, "99")
	if got := r.Numeric(2)[0]; got != 99 {
		t.Errorf("Numeric after SetValue = %g, want 99", got)
	}
}

func TestNumericCacheInvalidatedByAppend(t *testing.T) {
	r := buildTestRelation(t)
	_ = r.Numeric(2)
	r.AppendRow([]string{"SZ", "51800", "60"})
	nums := r.Numeric(2)
	if len(nums) != 4 || nums[3] != 60 {
		t.Errorf("Numeric after append = %v", nums)
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := buildTestRelation(t)
	c := r.Clone()
	c.SetValue(0, 0, "SZ")
	if r.Value(0, 0) != "HZ" {
		t.Error("mutating clone changed original")
	}
	if c.NumRows() != r.NumRows() {
		t.Errorf("clone rows = %d", c.NumRows())
	}
	// Clones share dictionaries: codes must be comparable.
	if c.Code(1, 0) != r.Code(1, 0) {
		t.Error("clone codes differ from original")
	}
}

func TestSelect(t *testing.T) {
	r := buildTestRelation(t)
	s := r.Select([]int{2, 0})
	if s.NumRows() != 2 {
		t.Fatalf("Select rows = %d, want 2", s.NumRows())
	}
	if s.Value(0, 0) != "HZ" || s.Value(1, 1) != "31200" {
		t.Errorf("Select reordered wrongly: %v / %v", s.RowStrings(0), s.RowStrings(1))
	}
}

func TestDomainCodesAndCounts(t *testing.T) {
	r := buildTestRelation(t)
	codes := r.DomainCodes(0)
	if len(codes) != 2 {
		t.Fatalf("city domain = %d values, want 2", len(codes))
	}
	for i := 1; i < len(codes); i++ {
		if codes[i-1] >= codes[i] {
			t.Error("DomainCodes not sorted")
		}
	}
	if got := r.DomainSize(1); got != 2 {
		t.Errorf("zip DomainSize = %d, want 2 (Null excluded)", got)
	}
	counts := r.ValueCounts(0)
	if counts[r.Code(0, 0)] != 2 {
		t.Errorf("count(HZ) = %d, want 2", counts[r.Code(0, 0)])
	}
}

func TestSampleRows(t *testing.T) {
	r := buildTestRelation(t)
	rng := rand.New(rand.NewSource(1))
	rows := r.SampleRows(rng, 2)
	if len(rows) != 2 {
		t.Fatalf("SampleRows = %d rows", len(rows))
	}
	if rows[0] == rows[1] {
		t.Error("SampleRows returned duplicates")
	}
	all := r.SampleRows(rng, 10)
	if len(all) != 3 {
		t.Errorf("oversized sample = %d rows, want all 3", len(all))
	}
	s := r.Sample(rng, 2)
	if s.NumRows() != 2 {
		t.Errorf("Sample rows = %d", s.NumRows())
	}
}

func TestSplitSampleIndependence(t *testing.T) {
	r := New(testSchema(), NewPool())
	for i := 0; i < 100; i++ {
		r.AppendRow([]string{"c", "z", "1"})
	}
	rng := rand.New(rand.NewSource(2))
	a, b := r.SplitSample(rng, 30, 60)
	if a.NumRows() != 30 || b.NumRows() != 60 {
		t.Errorf("SplitSample sizes = %d, %d", a.NumRows(), b.NumRows())
	}
}

func TestDuplicateSample(t *testing.T) {
	r := New(testSchema(), NewPool())
	for i := 0; i < 200; i++ {
		r.AppendRow([]string{string(rune('a' + i%26)), "z", "1"})
	}
	rng := rand.New(rand.NewSource(3))
	input, master := r.DuplicateSample(rng, 100, 50, 1.0)
	if input.NumRows() != 100 || master.NumRows() != 50 {
		t.Fatalf("sizes = %d, %d", input.NumRows(), master.NumRows())
	}
	// With d = 1.0 every input row must duplicate a master row's city.
	masterCities := make(map[int32]bool)
	for i := 0; i < master.NumRows(); i++ {
		masterCities[master.Code(i, 0)] = true
	}
	for i := 0; i < input.NumRows(); i++ {
		if !masterCities[input.Code(i, 0)] {
			t.Fatalf("input row %d not drawn from master at d=1.0", i)
		}
	}
}
