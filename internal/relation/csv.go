package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// ReadCSV loads a relation from CSV data. The first record must be a header
// whose column names match the schema's attribute names exactly and in
// order. Empty cells become Null.
func ReadCSV(r io.Reader, schema *Schema, pool *Pool) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = schema.Len()
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	for i, name := range header {
		if name != schema.Attr(i).Name {
			return nil, fmt.Errorf("relation: CSV header column %d is %q, schema expects %q",
				i, name, schema.Attr(i).Name)
		}
	}
	rel := New(schema, pool)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV record: %w", err)
		}
		rel.AppendRow(rec)
	}
	return rel, nil
}

// ReadCSVFile is ReadCSV over a file path.
func ReadCSVFile(path string, schema *Schema, pool *Pool) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("relation: %w", err)
	}
	//ermvet:ignore errdrop read-only descriptor; closing cannot lose data
	defer f.Close()
	return ReadCSV(f, schema, pool)
}

// WriteCSV writes the relation (with a header row) as CSV. Null cells are
// written as empty strings.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.schema.Names()); err != nil {
		return fmt.Errorf("relation: writing CSV header: %w", err)
	}
	for row := 0; row < r.n; row++ {
		if err := cw.Write(r.RowStrings(row)); err != nil {
			return fmt.Errorf("relation: writing CSV row %d: %w", row, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("relation: flushing CSV: %w", err)
	}
	return nil
}

// WriteCSVFile writes the relation to a file path.
func (r *Relation) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("relation: %w", err)
	}
	if err := r.WriteCSV(f); err != nil {
		//ermvet:ignore errdrop the write error is already being returned; close failure is secondary
		f.Close()
		return err
	}
	return f.Close()
}
