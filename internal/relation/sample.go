package relation

import "math/rand"

// SampleRows returns k distinct row indices drawn uniformly without
// replacement. If k >= NumRows, all rows are returned (shuffled).
func (r *Relation) SampleRows(rng *rand.Rand, k int) []int {
	idx := rng.Perm(r.n)
	if k > r.n {
		k = r.n
	}
	return idx[:k]
}

// Sample returns a new relation of k rows drawn uniformly without
// replacement.
func (r *Relation) Sample(rng *rand.Rand, k int) *Relation {
	return r.Select(r.SampleRows(rng, k))
}

// SplitSample draws two independent uniform samples of the relation:
// nA rows for the first and nB rows for the second. The two samples are
// drawn separately (with overlap possible), mirroring the paper's
// "sampled separately from the original dataset" protocol (§V-A1).
func (r *Relation) SplitSample(rng *rand.Rand, nA, nB int) (*Relation, *Relation) {
	return r.Sample(rng, nA), r.Sample(rng, nB)
}

// DuplicateSample implements the duplicate-rate protocol of §V-C2: it first
// draws a master sample of nMaster rows, then draws an input sample of
// nInput rows of which d (in [0,1]) fraction come from the master rows and
// the remainder from the non-master rows. Rows are drawn with replacement
// within each side so the requested sizes are always met.
func (r *Relation) DuplicateSample(rng *rand.Rand, nInput, nMaster int, d float64) (input, master *Relation) {
	perm := rng.Perm(r.n)
	if nMaster > r.n {
		nMaster = r.n
	}
	masterRows := perm[:nMaster]
	otherRows := perm[nMaster:]
	if len(otherRows) == 0 {
		otherRows = masterRows
	}

	inputRows := make([]int, 0, nInput)
	for i := 0; i < nInput; i++ {
		if rng.Float64() < d {
			inputRows = append(inputRows, masterRows[rng.Intn(len(masterRows))])
		} else {
			inputRows = append(inputRows, otherRows[rng.Intn(len(otherRows))])
		}
	}
	return r.Select(inputRows), r.Select(masterRows)
}
