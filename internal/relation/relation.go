// Package relation implements the in-memory columnar relational substrate
// used throughout the ERMiner reproduction.
//
// All cell values are dictionary-encoded: each attribute belongs to a named
// domain, and every domain owns a Dict that interns string values to dense
// int32 codes. Attributes of the input and master relations that are matched
// by the schema match M share a domain, so their codes are directly
// comparable and rule evaluation reduces to integer hashing.
//
// NULL (a missing value) is represented by the code Null (-1).
package relation

import (
	"fmt"
	"math"
	"sort"
	"strconv"
)

// Null is the dictionary code used for missing values.
const Null int32 = -1

// Type describes how an attribute's values behave for pattern encoding.
type Type int

const (
	// Discrete attributes have an unordered categorical domain.
	Discrete Type = iota
	// Continuous attributes have numerically ordered values; the MDP
	// encoder splits them into ranges rather than enumerating values.
	Continuous
)

func (t Type) String() string {
	switch t {
	case Discrete:
		return "discrete"
	case Continuous:
		return "continuous"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Attribute describes one column of a schema.
type Attribute struct {
	// Name is the attribute name, unique within its schema.
	Name string
	// Type is Discrete or Continuous.
	Type Type
	// Domain names the shared dictionary this attribute draws values
	// from. Attributes matched across schemas must share a domain so
	// that equal strings receive equal codes. Empty means "same as Name".
	Domain string
}

// DomainName returns the dictionary key for the attribute.
func (a Attribute) DomainName() string {
	if a.Domain != "" {
		return a.Domain
	}
	return a.Name
}

// Schema is an ordered list of attributes with name lookup.
type Schema struct {
	attrs []Attribute
	index map[string]int
}

// NewSchema builds a schema from the given attributes. Duplicate attribute
// names panic: schemas are static program data and a duplicate is a bug.
func NewSchema(attrs ...Attribute) *Schema {
	s := &Schema{
		attrs: append([]Attribute(nil), attrs...),
		index: make(map[string]int, len(attrs)),
	}
	for i, a := range attrs {
		if _, dup := s.index[a.Name]; dup {
			panic(fmt.Sprintf("relation: duplicate attribute %q", a.Name))
		}
		s.index[a.Name] = i
	}
	return s
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attribute { return append([]Attribute(nil), s.attrs...) }

// Index returns the position of the named attribute, or -1 if absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// MustIndex is Index but panics when the attribute is missing. It is meant
// for static experiment definitions where a miss is a programming error.
func (s *Schema) MustIndex(name string) int {
	i := s.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("relation: schema has no attribute %q", name))
	}
	return i
}

// Names returns the attribute names in order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		names[i] = a.Name
	}
	return names
}

// Dict interns string values of one domain to dense int32 codes.
type Dict struct {
	vals []string
	idx  map[string]int32
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{idx: make(map[string]int32)}
}

// Code interns v and returns its code.
func (d *Dict) Code(v string) int32 {
	if c, ok := d.idx[v]; ok {
		return c
	}
	c := int32(len(d.vals))
	d.vals = append(d.vals, v)
	d.idx[v] = c
	return c
}

// Lookup returns the code of v without interning; ok is false if v is
// unknown to the dictionary.
func (d *Dict) Lookup(v string) (code int32, ok bool) {
	c, ok := d.idx[v]
	return c, ok
}

// Value returns the string for a code. Null maps to the empty string.
func (d *Dict) Value(c int32) string {
	if c == Null {
		return ""
	}
	return d.vals[c]
}

// Size returns the number of distinct interned values.
func (d *Dict) Size() int { return len(d.vals) }

// Values returns a copy of all interned values in code order.
func (d *Dict) Values() []string { return append([]string(nil), d.vals...) }

// Pool owns the dictionaries of all domains so that relations built from
// the same pool share codes for matched attributes.
type Pool struct {
	dicts map[string]*Dict
}

// NewPool returns an empty dictionary pool.
func NewPool() *Pool {
	return &Pool{dicts: make(map[string]*Dict)}
}

// Dict returns (creating if needed) the dictionary of the named domain.
func (p *Pool) Dict(domain string) *Dict {
	d, ok := p.dicts[domain]
	if !ok {
		d = NewDict()
		p.dicts[domain] = d
	}
	return d
}

// Relation is a dictionary-encoded, column-oriented table.
type Relation struct {
	schema *Schema
	pool   *Pool
	cols   [][]int32
	dicts  []*Dict
	// nums caches the numeric interpretation of continuous columns,
	// indexed by column then row; nil for discrete columns.
	nums [][]float64
	n    int
	// version counts mutations (AppendCodes, SetCode, ApplyDelta) so
	// derived caches such as measure.ColumnIndex can detect staleness
	// cheaply.
	version int64
	// log records what each recent version step changed (bounded to
	// maxChangeLog entries), so derived structures can patch themselves
	// instead of rebuilding; see ChangesSince.
	log []ChangeSet
}

// maxChangeLog bounds the per-relation change log. A derived structure
// whose build version has fallen further behind than the log covers
// falls back to a full rebuild, so the bound trades patchability for
// memory; deltas batch arbitrarily many mutations into one entry.
const maxChangeLog = 64

// New creates an empty relation over schema, drawing dictionaries from pool.
func New(schema *Schema, pool *Pool) *Relation {
	r := &Relation{
		schema: schema,
		pool:   pool,
		cols:   make([][]int32, schema.Len()),
		dicts:  make([]*Dict, schema.Len()),
		nums:   make([][]float64, schema.Len()),
	}
	for i := 0; i < schema.Len(); i++ {
		r.dicts[i] = pool.Dict(schema.Attr(i).DomainName())
	}
	return r
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Pool returns the dictionary pool the relation draws from.
func (r *Relation) Pool() *Pool { return r.pool }

// NumRows returns the number of tuples.
func (r *Relation) NumRows() int { return r.n }

// NumCols returns the number of attributes.
func (r *Relation) NumCols() int { return r.schema.Len() }

// Dict returns the dictionary of column col.
func (r *Relation) Dict(col int) *Dict { return r.dicts[col] }

// AppendRow interns the string values (one per attribute, in schema order)
// and appends them as a new tuple. An empty string is stored as Null.
func (r *Relation) AppendRow(values []string) {
	if len(values) != r.schema.Len() {
		panic(fmt.Sprintf("relation: AppendRow got %d values for %d attributes",
			len(values), r.schema.Len()))
	}
	codes := make([]int32, len(values))
	for i, v := range values {
		if v == "" {
			codes[i] = Null
		} else {
			codes[i] = r.dicts[i].Code(v)
		}
	}
	r.AppendCodes(codes)
}

// AppendCodes appends a tuple given pre-interned codes.
func (r *Relation) AppendCodes(codes []int32) {
	if len(codes) != r.schema.Len() {
		panic(fmt.Sprintf("relation: AppendCodes got %d codes for %d attributes",
			len(codes), r.schema.Len()))
	}
	for i, c := range codes {
		r.cols[i] = append(r.cols[i], c)
		// Extend resident numeric caches in place instead of dropping the
		// whole cache: untouched columns keep their parsed values and only
		// the one appended cell is parsed.
		if r.nums[i] != nil {
			v, ok := r.NumericValue(r.n, i)
			if !ok {
				v = math.Inf(-1)
			}
			r.nums[i] = append(r.nums[i], v)
		}
	}
	r.n++
	r.version++
	r.logChange(ChangeSet{From: r.version - 1, To: r.version, OldRows: r.n - 1, Appended: 1})
}

// Code returns the dictionary code of cell (row, col).
func (r *Relation) Code(row, col int) int32 { return r.cols[col][row] }

// SetCode overwrites cell (row, col) with a code. Writing the value the
// cell already holds is a no-op: the version counter is not bumped and
// no caches are invalidated.
func (r *Relation) SetCode(row, col int, code int32) {
	if r.cols[col][row] == code {
		return
	}
	r.cols[col][row] = code
	r.nums[col] = nil
	r.version++
	r.logChange(ChangeSet{From: r.version - 1, To: r.version, OldRows: r.n, Cols: []int{col}})
}

// Version returns the relation's mutation counter: it changes whenever
// a tuple is appended or a cell overwritten. Derived structures (posting
// lists, group projections) compare it against the value observed at
// build time to decide whether they are still valid.
func (r *Relation) Version() int64 { return r.version }

// Value returns the string value of cell (row, col); "" for Null.
func (r *Relation) Value(row, col int) string {
	return r.dicts[col].Value(r.cols[col][row])
}

// SetValue interns v and stores it at (row, col). Empty string means Null.
func (r *Relation) SetValue(row, col int, v string) {
	if v == "" {
		r.SetCode(row, col, Null)
		return
	}
	r.SetCode(row, col, r.dicts[col].Code(v))
}

// Column returns the code slice of column col. The slice is shared with the
// relation; callers must not modify it.
func (r *Relation) Column(col int) []int32 { return r.cols[col] }

// Numeric returns the numeric interpretation of a continuous column,
// computed lazily. Null or non-parsable cells map to -Inf so they sort
// first and never fall inside a finite range condition.
func (r *Relation) Numeric(col int) []float64 {
	if r.nums[col] != nil {
		return r.nums[col]
	}
	out := make([]float64, r.n)
	for row := 0; row < r.n; row++ {
		v, ok := r.NumericValue(row, col)
		if !ok {
			v = math.Inf(-1)
		}
		out[row] = v
	}
	r.nums[col] = out
	return out
}

// NumericValue parses cell (row, col) as a float64.
func (r *Relation) NumericValue(row, col int) (float64, bool) {
	c := r.cols[col][row]
	if c == Null {
		return 0, false
	}
	f, err := strconv.ParseFloat(r.dicts[col].Value(c), 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// Clone returns a deep copy of the relation sharing the same schema, pool
// and dictionaries.
func (r *Relation) Clone() *Relation {
	c := New(r.schema, r.pool)
	c.n = r.n
	for i := range r.cols {
		c.cols[i] = append([]int32(nil), r.cols[i]...)
	}
	return c
}

// Select returns a new relation containing the given rows, in order.
func (r *Relation) Select(rows []int) *Relation {
	out := New(r.schema, r.pool)
	out.n = len(rows)
	for c := range r.cols {
		col := make([]int32, len(rows))
		for i, row := range rows {
			col[i] = r.cols[c][row]
		}
		out.cols[c] = col
	}
	return out
}

// Row returns the codes of one tuple as a fresh slice.
func (r *Relation) Row(row int) []int32 {
	out := make([]int32, r.schema.Len())
	for c := range r.cols {
		out[c] = r.cols[c][row]
	}
	return out
}

// RowStrings returns the string values of one tuple.
func (r *Relation) RowStrings(row int) []string {
	out := make([]string, r.schema.Len())
	for c := range r.cols {
		out[c] = r.Value(row, c)
	}
	return out
}

// DomainCodes returns the sorted distinct non-Null codes present in column
// col. This is the active domain dom(A) used for pattern enumeration.
func (r *Relation) DomainCodes(col int) []int32 {
	seen := make(map[int32]struct{})
	for _, c := range r.cols[col] {
		if c != Null {
			seen[c] = struct{}{}
		}
	}
	out := make([]int32, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DomainSize returns the number of distinct non-Null values in column col.
func (r *Relation) DomainSize(col int) int {
	seen := make(map[int32]struct{})
	for _, c := range r.cols[col] {
		if c != Null {
			seen[c] = struct{}{}
		}
	}
	return len(seen)
}

// ValueCounts returns a histogram of the non-Null codes in column col.
func (r *Relation) ValueCounts(col int) map[int32]int {
	out := make(map[int32]int)
	for _, c := range r.cols[col] {
		if c != Null {
			out[c]++
		}
	}
	return out
}
