package relation

import (
	"reflect"
	"testing"
)

// Regression: writing a cell's existing value must not bump the version
// (and thus must not thrash downstream caches).
func TestSetCodeNoOpKeepsVersion(t *testing.T) {
	r := buildTestRelation(t)
	v := r.Version()
	r.SetCode(0, 0, r.Code(0, 0))
	r.SetValue(1, 1, r.Value(1, 1))
	r.SetValue(2, 1, "") // already Null
	if got := r.Version(); got != v {
		t.Fatalf("Version after no-op writes = %d, want %d", got, v)
	}
	// A real write still bumps it.
	r.SetValue(0, 0, "SZ")
	if got := r.Version(); got != v+1 {
		t.Fatalf("Version after real write = %d, want %d", got, v+1)
	}
}

// Regression: appending must extend resident numeric caches in place
// rather than dropping them, so untouched continuous columns keep the
// same backing slice.
func TestAppendExtendsNumericCacheInPlace(t *testing.T) {
	r := buildTestRelation(t)
	before := r.Numeric(2)
	r.AppendRow([]string{"SZ", "51800", "60"})
	after := r.Numeric(2)
	if len(after) != 4 || after[3] != 60 {
		t.Fatalf("Numeric after append = %v", after)
	}
	// The first three parsed values must be carried over, not re-parsed
	// into a fresh slice starting from scratch.
	for i := range before[:3] {
		if after[i] != before[i] {
			t.Errorf("Numeric[%d] changed across append: %g -> %g", i, before[i], after[i])
		}
	}
}

func TestApplyDeltaAtomicAndLogged(t *testing.T) {
	r := buildTestRelation(t)
	v0 := r.Version()
	zip := r.Dict(1).Code("51800")
	cs, err := r.ApplyDelta(Delta{
		Appends: [][]int32{{r.Dict(0).Code("SZ"), zip, r.Dict(2).Code("60")}},
		Updates: []CellUpdate{{Row: 0, Col: 1, Code: zip}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != v0+1 {
		t.Fatalf("Version = %d, want one bump for the whole delta", r.Version())
	}
	if cs.Appended != 1 || cs.OldRows != 3 || !cs.Touches(1) || cs.Touches(0) {
		t.Fatalf("ChangeSet = %+v", cs)
	}
	if r.NumRows() != 4 || r.Value(3, 0) != "SZ" || r.Value(0, 1) != "51800" {
		t.Fatalf("delta not applied: rows=%d", r.NumRows())
	}
	got, ok := r.ChangesSince(v0)
	if !ok || !reflect.DeepEqual(got, cs) {
		t.Fatalf("ChangesSince(%d) = %+v, %v; want %+v", v0, got, ok, cs)
	}
}

func TestApplyDeltaValidatesUpfront(t *testing.T) {
	r := buildTestRelation(t)
	v0 := r.Version()
	bad := []Delta{
		{Appends: [][]int32{{0}}},                                 // wrong arity
		{Appends: [][]int32{{0, 0, int32(r.Dict(2).Size())}}},     // code out of range
		{Updates: []CellUpdate{{Row: 99, Col: 0, Code: 0}}},       // row out of range
		{Updates: []CellUpdate{{Row: 0, Col: 99, Code: 0}}},       // col out of range
		{Updates: []CellUpdate{{Row: 0, Col: 0, Code: Null - 1}}}, // code below Null
	}
	for i, d := range bad {
		if _, err := r.ApplyDelta(d); err == nil {
			t.Errorf("delta %d: want error", i)
		}
	}
	if r.Version() != v0 || r.NumRows() != 3 {
		t.Fatal("failed deltas must leave the relation untouched")
	}
}

func TestApplyDeltaNoOp(t *testing.T) {
	r := buildTestRelation(t)
	v0 := r.Version()
	cs, err := r.ApplyDelta(Delta{Updates: []CellUpdate{{Row: 0, Col: 0, Code: r.Code(0, 0)}}})
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Empty() || r.Version() != v0 {
		t.Fatalf("no-op delta: cs=%+v version=%d want %d", cs, r.Version(), v0)
	}
}

func TestChangesSinceMergesAndExpires(t *testing.T) {
	r := buildTestRelation(t)
	v0 := r.Version()
	r.SetValue(0, 0, "SZ")
	r.AppendRow([]string{"GZ", "44000", "33"})
	r.SetValue(1, 2, "50")
	cs, ok := r.ChangesSince(v0)
	if !ok {
		t.Fatal("ChangesSince should cover three recent mutations")
	}
	if cs.Appended != 1 || cs.OldRows != 3 || !reflect.DeepEqual(cs.Cols, []int{0, 2}) {
		t.Fatalf("merged ChangeSet = %+v", cs)
	}
	// Same-version query is an empty set.
	cs, ok = r.ChangesSince(r.Version())
	if !ok || !cs.Empty() {
		t.Fatalf("ChangesSince(now) = %+v, %v", cs, ok)
	}
	// Future version cannot be covered.
	if _, ok := r.ChangesSince(r.Version() + 1); ok {
		t.Fatal("ChangesSince(future) must report not covered")
	}
	// Overflow the bounded log: old spans expire.
	for i := 0; i < 2*maxChangeLog; i++ {
		r.AppendRow([]string{"HZ", "31200", "30"})
	}
	if _, ok := r.ChangesSince(v0); ok {
		t.Fatal("ChangesSince must report not covered once the log is trimmed")
	}
	// But recent spans survive trimming.
	v := r.Version()
	r.AppendRow([]string{"HZ", "31200", "30"})
	if cs, ok := r.ChangesSince(v); !ok || cs.Appended != 1 {
		t.Fatalf("ChangesSince(recent) = %+v, %v", cs, ok)
	}
}
