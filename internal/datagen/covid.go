package datagen

import (
	"math/rand"

	"erminer/internal/relation"
)

// Covid-like world (paper Table I: input 7 × 2,500, master 8 × 1,824;
// Y = infection_case; η_s = 100).
//
// Dependency structure mirrors the paper's running example (Figure 1):
// the infection case of a non-overseas patient is determined by
// (city, confirmed_date), while overseas patients (t[overseas] = "Yes")
// have their own inflow cases and are absent from the master data (the
// national records). The useful rules therefore carry the input-side
// condition t_p[overseas] = "No", which is exactly the paper's φ₀.
var (
	covidCities = []string{
		"Seoul", "Busan", "Daegu", "Incheon", "Gwangju", "Daejeon",
		"Ulsan", "Sejong", "Suwon", "Changwon", "Goyang", "Yongin",
	}
	covidDates = []string{
		"2021-05", "2021-06", "2021-07", "2021-08", "2021-09",
		"2021-10", "2021-11", "2021-12",
	}
	covidAges  = []string{"0s", "10s", "20s", "30s", "40s", "50s", "60s", "70s", "80s"}
	covidCases = []string{
		"contact with patient", "contact with imports", "gym facility",
		"church gathering", "hospital outbreak", "nursing home",
		"call center", "community infection",
	}
	covidOverseasCases = []string{"overseas inflow", "airport screening"}
	covidStates        = []string{"released", "isolated", "deceased"}
	covidProvinces     = []string{
		"Gyeonggi-do", "Gangwon-do", "Chungcheongbuk-do",
		"Chungcheongnam-do", "Jeollabuk-do", "Jeollanam-do",
		"Gyeongsangbuk-do", "Gyeongsangnam-do", "Jeju-do", "Capital-area",
	}
	covidHospitals = []string{
		"H01", "H02", "H03", "H04", "H05", "H06", "H07", "H08",
		"H09", "H10", "H11", "H12", "H13", "H14", "H15",
	}
)

// covidCase deterministically assigns the outbreak case of a
// (city, month) cell, playing the role of the real epidemic structure.
func covidCase(city, date string) string {
	h := 0
	for _, c := range city + "|" + date {
		h = h*31 + int(c)
	}
	if h < 0 {
		h = -h
	}
	return covidCases[h%len(covidCases)]
}

// Covid returns the Covid-like world.
func Covid() *World {
	inputSchema := relation.NewSchema(
		relation.Attribute{Name: "city"},
		relation.Attribute{Name: "sex"},
		relation.Attribute{Name: "age_group"},
		relation.Attribute{Name: "confirmed_date"},
		relation.Attribute{Name: "state"},    // input-only
		relation.Attribute{Name: "overseas"}, // input-only
		relation.Attribute{Name: "infection_case"},
	)
	masterSchema := relation.NewSchema(
		relation.Attribute{Name: "city"},
		relation.Attribute{Name: "sex"},
		relation.Attribute{Name: "age_group"},
		relation.Attribute{Name: "confirmed_date"},
		relation.Attribute{Name: "infection_case"},
		relation.Attribute{Name: "province"},
		relation.Attribute{Name: "hospital"},
		relation.Attribute{Name: "released_date"},
	)

	gen := func(rng *rand.Rand) Entity {
		city := pickZipf(rng, covidCities)
		date := pick(rng, covidDates)
		overseas := "No"
		var infCase string
		if rng.Float64() < 0.15 {
			overseas = "Yes"
			infCase = pick(rng, covidOverseasCases)
		} else {
			infCase = covidCase(city, date)
			if rng.Float64() < 0.05 {
				// Sporadic unrelated infections keep certainty < 1.
				infCase = pick(rng, covidCases)
			}
		}
		return Entity{
			"city":           city,
			"sex":            pick(rng, []string{"male", "female"}),
			"age_group":      pickZipf(rng, covidAges),
			"confirmed_date": date,
			"state":          pickZipf(rng, covidStates),
			"overseas":       overseas,
			"infection_case": infCase,
			"province":       pickZipf(rng, covidProvinces),
			"hospital":       pick(rng, covidHospitals),
			"released_date":  pick(rng, covidDates),
		}
	}

	return &World{
		Name:            "covid",
		InputSchema:     inputSchema,
		MasterSchema:    masterSchema,
		YName:           "infection_case",
		YmName:          "infection_case",
		DefaultSupport:  100,
		PaperInputSize:  2500,
		PaperMasterSize: 1824,
		WorldSize:       6000,
		Gen:             gen,
		InMaster: func(e Entity) bool {
			// National records track only domestic, released cases
			// (§V-A1 keeps master tuples whose state is "released").
			return e["overseas"] == "No" && e["state"] == "released"
		},
		RenderInput: func(e Entity) []string {
			return []string{
				e["city"], e["sex"], e["age_group"], e["confirmed_date"],
				e["state"], e["overseas"], e["infection_case"],
			}
		},
		RenderMaster: func(e Entity) []string {
			return []string{
				e["city"], e["sex"], e["age_group"], e["confirmed_date"],
				e["infection_case"], e["province"], e["hospital"],
				e["released_date"],
			}
		},
	}
}
