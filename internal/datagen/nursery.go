package datagen

import (
	"math/rand"

	"erminer/internal/relation"
)

// Nursery-like world (paper Table I: input 9 × 10,000, master 9 × 2,980;
// Y = finance; η_s = 1000). All nine attributes are matched — the real
// Nursery data is a full-factorial categorical design, which is why the
// paper observes very deep EnuMiner rules on it (small domains make high
// support easy, Table II discussion).
//
// Dependency structure: finance is determined by (parents, housing), with
// a divergent sub-population keyed by health = "not_recom" whose finance
// is arbitrary and which the master data exclude.
var (
	nurseryParents  = []string{"usual", "pretentious", "great_pret"}
	nurseryHasNurs  = []string{"proper", "less_proper", "improper", "critical", "very_crit"}
	nurseryForm     = []string{"complete", "completed", "incomplete", "foster"}
	nurseryChildren = []string{"1", "2", "3", "more"}
	nurseryHousing  = []string{"convenient", "less_conv", "critical"}
	nurserySocial   = []string{"nonprob", "slightly_prob", "problematic"}
	nurseryHealth   = []string{"recommended", "priority", "not_recom"}
	nurseryFinance  = []string{"convenient", "inconv"}
)

// nurseryFinanceOf determines mainstream finance from (parents, housing).
func nurseryFinanceOf(parents, housing string) string {
	switch {
	case housing == "critical":
		return "inconv"
	case parents == "great_pret" && housing == "less_conv":
		return "inconv"
	default:
		return "convenient"
	}
}

// Nursery returns the Nursery-like world.
func Nursery() *World {
	attrs := func() []relation.Attribute {
		return []relation.Attribute{
			{Name: "parents"},
			{Name: "has_nurs"},
			{Name: "form"},
			{Name: "children"},
			{Name: "housing"},
			{Name: "social"},
			{Name: "health"},
			{Name: "recommend"},
			{Name: "finance"},
		}
	}
	inputSchema := relation.NewSchema(attrs()...)
	masterSchema := relation.NewSchema(attrs()...)

	gen := func(rng *rand.Rand) Entity {
		parents := pick(rng, nurseryParents)
		housing := pick(rng, nurseryHousing)
		health := pickZipf(rng, nurseryHealth)
		finance := nurseryFinanceOf(parents, housing)
		if health == "not_recom" {
			finance = pick(rng, nurseryFinance)
		} else if rng.Float64() < 0.03 {
			finance = pick(rng, nurseryFinance)
		}
		return Entity{
			"parents":   parents,
			"has_nurs":  pick(rng, nurseryHasNurs),
			"form":      pick(rng, nurseryForm),
			"children":  pick(rng, nurseryChildren),
			"housing":   housing,
			"social":    pick(rng, nurserySocial),
			"health":    health,
			"recommend": pick(rng, []string{"recommend", "priority", "not_recom", "very_recom", "spec_prior"}),
			"finance":   finance,
		}
	}

	render := func(e Entity) []string {
		return []string{
			e["parents"], e["has_nurs"], e["form"], e["children"],
			e["housing"], e["social"], e["health"], e["recommend"],
			e["finance"],
		}
	}

	return &World{
		Name:            "nursery",
		InputSchema:     inputSchema,
		MasterSchema:    masterSchema,
		YName:           "finance",
		YmName:          "finance",
		DefaultSupport:  1000,
		PaperInputSize:  10000,
		PaperMasterSize: 2980,
		WorldSize:       12960,
		Gen:             gen,
		InMaster: func(e Entity) bool {
			return e["health"] != "not_recom"
		},
		RenderInput:  render,
		RenderMaster: render,
	}
}
