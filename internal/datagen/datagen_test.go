package datagen

import (
	"math/rand"
	"strconv"
	"testing"

	"erminer/internal/relation"
)

func TestByName(t *testing.T) {
	for _, name := range AllNames() {
		w, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if w.Name != name {
			t.Errorf("world name = %q, want %q", w.Name, name)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

// TestTableISchemaWidths checks each world's schema widths against the
// paper's Table I.
func TestTableISchemaWidths(t *testing.T) {
	want := map[string][2]int{
		"adult":    {10, 9},
		"covid":    {7, 8},
		"nursery":  {9, 9},
		"location": {9, 5},
	}
	for name, w := range want {
		world, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := world.InputSchema.Len(); got != w[0] {
			t.Errorf("%s input width = %d, want %d", name, got, w[0])
		}
		if got := world.MasterSchema.Len(); got != w[1] {
			t.Errorf("%s master width = %d, want %d", name, got, w[1])
		}
	}
}

// TestTableIPaperSizes checks the paper-default tuple counts.
func TestTableIPaperSizes(t *testing.T) {
	want := map[string][2]int{
		"adult":    {40000, 5000},
		"covid":    {2500, 1824},
		"nursery":  {10000, 2980},
		"location": {2559, 3430},
	}
	for name, w := range want {
		world, _ := ByName(name)
		if world.PaperInputSize != w[0] || world.PaperMasterSize != w[1] {
			t.Errorf("%s paper sizes = %d/%d, want %d/%d",
				name, world.PaperInputSize, world.PaperMasterSize, w[0], w[1])
		}
	}
}

func TestBuildSizesAndMatch(t *testing.T) {
	for _, name := range AllNames() {
		w, _ := ByName(name)
		ds, err := w.Build(DefaultSpec(500, 300, 1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.Input.NumRows() != 500 {
			t.Errorf("%s input rows = %d", name, ds.Input.NumRows())
		}
		if ds.Master.NumRows() > 300 || ds.Master.NumRows() == 0 {
			t.Errorf("%s master rows = %d", name, ds.Master.NumRows())
		}
		// The dependent pair must be matched and indices valid.
		if ds.Y < 0 || ds.Ym < 0 {
			t.Fatalf("%s: bad Y/Ym", name)
		}
		found := false
		for _, ym := range ds.Match.Of(ds.Y) {
			if ym == ds.Ym {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: (Y, Ym) not in match", name)
		}
		if ds.SupportThreshold <= 0 {
			t.Errorf("%s: support threshold %d", name, ds.SupportThreshold)
		}
		// Matched attributes must share dictionaries so codes compare.
		for _, pr := range ds.Match.Pairs() {
			if ds.Input.Dict(pr[0]) != ds.Master.Dict(pr[1]) {
				t.Errorf("%s: matched pair %v does not share a dictionary", name, pr)
			}
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	w := Covid()
	a, err := w.Build(DefaultSpec(200, 100, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Build(DefaultSpec(200, 100, 7))
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < a.Input.NumRows(); row++ {
		for col := 0; col < a.Input.NumCols(); col++ {
			if a.Input.Value(row, col) != b.Input.Value(row, col) {
				t.Fatalf("same seed produced different data at (%d,%d)", row, col)
			}
		}
	}
}

// TestAdultEducationFD: Education → EducationNum holds exactly, as in
// the real UCI data.
func TestAdultEducationFD(t *testing.T) {
	ds, err := Adult().Build(DefaultSpec(2000, 500, 3))
	if err != nil {
		t.Fatal(err)
	}
	edu := ds.Input.Schema().MustIndex("education")
	num := ds.Input.Schema().MustIndex("education_num")
	seen := make(map[int32]int32)
	for row := 0; row < ds.Input.NumRows(); row++ {
		e, n := ds.Input.Code(row, edu), ds.Input.Code(row, num)
		if prev, ok := seen[e]; ok && prev != n {
			t.Fatalf("education FD violated at row %d", row)
		}
		seen[e] = n
	}
	if len(seen) < 10 {
		t.Errorf("education domain too small: %d", len(seen))
	}
}

// TestAdultMasterExcludesDivergent: the divergent sub-population
// (relationship = Other-relative) must be absent from master data.
func TestAdultMasterExcludesDivergent(t *testing.T) {
	w := Adult()
	for i := 0; i < 2000; i++ {
		e := w.Gen(newTestRng(int64(i)))
		if e["relationship"] == "Other-relative" && w.InMaster(e) {
			t.Fatal("Other-relative entity admitted to master")
		}
	}
}

// TestCovidOverseasExcluded: national records contain only domestic
// released cases.
func TestCovidOverseasExcluded(t *testing.T) {
	ds, err := Covid().Build(DefaultSpec(500, 400, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Master schema has no overseas column; instead check that no master
	// infection_case is an overseas inflow case.
	ymCol := ds.Master.Schema().MustIndex("infection_case")
	for row := 0; row < ds.Master.NumRows(); row++ {
		v := ds.Master.Value(row, ymCol)
		for _, bad := range covidOverseasCases {
			if v == bad {
				t.Fatalf("master row %d has overseas case %q", row, v)
			}
		}
	}
	// The input data must contain overseas rows (the divergent ones).
	ov := ds.Input.Schema().MustIndex("overseas")
	yes := 0
	for row := 0; row < ds.Input.NumRows(); row++ {
		if ds.Input.Value(row, ov) == "Yes" {
			yes++
		}
	}
	if yes == 0 {
		t.Error("input has no overseas tuples")
	}
}

// TestCovidCaseDeterminism: the epidemic structure c(city, date) is a
// fixed function.
func TestCovidCaseDeterminism(t *testing.T) {
	if covidCase("Seoul", "2021-12") != covidCase("Seoul", "2021-12") {
		t.Error("covidCase not deterministic")
	}
	distinct := make(map[string]bool)
	for _, c := range covidCities {
		for _, d := range covidDates {
			distinct[covidCase(c, d)] = true
		}
	}
	if len(distinct) < 4 {
		t.Errorf("case assignment uses only %d distinct cases", len(distinct))
	}
}

// TestLocationMasterFD: in the postcode directory, (County, AreaCode)
// determines Postcode — the paper's φ₂ — while County alone does not.
func TestLocationMasterFD(t *testing.T) {
	ds, err := Location().Build(DefaultSpec(500, 3430, 9))
	if err != nil {
		t.Fatal(err)
	}
	ms := ds.Master.Schema()
	county := ms.MustIndex("county")
	area := ms.MustIndex("area_code")
	post := ms.MustIndex("postcode")

	joint := make(map[[2]int32]int32)
	single := make(map[int32]map[int32]bool)
	for row := 0; row < ds.Master.NumRows(); row++ {
		c, a, p := ds.Master.Code(row, county), ds.Master.Code(row, area), ds.Master.Code(row, post)
		k := [2]int32{c, a}
		if prev, ok := joint[k]; ok && prev != p {
			t.Fatalf("(county, area_code) -> postcode FD violated")
		}
		joint[k] = p
		if single[c] == nil {
			single[c] = make(map[int32]bool)
		}
		single[c][p] = true
	}
	reused := 0
	for _, ps := range single {
		if len(ps) > 1 {
			reused++
		}
	}
	if reused == 0 {
		t.Error("county names are never reused: County alone determines Postcode, φ₂ would be trivial")
	}
}

// TestLocationDirectoryStable: the directory does not depend on the
// experiment seed.
func TestLocationDirectoryStable(t *testing.T) {
	a := buildLocationDirectory()
	b := buildLocationDirectory()
	if len(a.combos) != len(b.combos) || len(a.combos) != 3430 {
		t.Fatalf("directory sizes = %d, %d, want 3430", len(a.combos), len(b.combos))
	}
	for i := range a.combos {
		if a.combos[i] != b.combos[i] {
			t.Fatal("directory not deterministic")
		}
	}
}

// TestNurseryFinanceDependency: finance follows (parents, housing) for
// the mainstream population.
func TestNurseryFinanceDependency(t *testing.T) {
	w := Nursery()
	agree := 0
	total := 0
	for i := 0; i < 1000; i++ {
		e := w.Gen(newTestRng(int64(1000 + i)))
		if e["health"] == "not_recom" {
			continue
		}
		total++
		if e["finance"] == nurseryFinanceOf(e["parents"], e["housing"]) {
			agree++
		}
	}
	if total == 0 || float64(agree)/float64(total) < 0.9 {
		t.Errorf("finance dependency holds for %d/%d mainstream entities", agree, total)
	}
}

// TestDuplicateRateControlsOverlap: with d = 1 the input is drawn from
// master entities; with d = 0 overlap is only incidental.
func TestDuplicateRateControlsOverlap(t *testing.T) {
	w := Nursery()
	overlapAt := func(d float64) float64 {
		spec := Spec{InputSize: 500, MasterSize: 300, DuplicateRate: d, Seed: 11}
		ds, err := w.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		// Count input rows whose full tuple appears in master.
		masterSet := make(map[string]bool)
		for row := 0; row < ds.Master.NumRows(); row++ {
			masterSet[rowKey(ds.Master, row)] = true
		}
		hits := 0
		for row := 0; row < ds.Input.NumRows(); row++ {
			if masterSet[rowKey(ds.Input, row)] {
				hits++
			}
		}
		return float64(hits) / float64(ds.Input.NumRows())
	}
	hi, lo := overlapAt(1.0), overlapAt(0.0)
	if hi <= lo {
		t.Errorf("duplicate rate has no effect: overlap(1.0)=%.2f overlap(0.0)=%.2f", hi, lo)
	}
	if hi < 0.9 {
		t.Errorf("overlap at d=1.0 is only %.2f", hi)
	}
}

func rowKey(r *relation.Relation, row int) string {
	key := ""
	for c := 0; c < r.NumCols(); c++ {
		key += r.Value(row, c) + "\x00"
	}
	return key
}

func TestPickZipfSkew(t *testing.T) {
	rng := newTestRng(13)
	vals := []string{"a", "b", "c", "d", "e"}
	counts := make(map[string]int)
	for i := 0; i < 10000; i++ {
		counts[pickZipf(rng, vals)]++
	}
	if counts["a"] <= counts["e"] {
		t.Errorf("zipf not skewed: a=%d e=%d", counts["a"], counts["e"])
	}
	total := 0
	for _, v := range vals {
		total += counts[v]
	}
	if total != 10000 {
		t.Errorf("counts sum to %d", total)
	}
}

func TestEtaScaling(t *testing.T) {
	w := Adult()
	ds, err := w.Build(DefaultSpec(4000, 500, 1))
	if err != nil {
		t.Fatal(err)
	}
	// η_s scales with input size: 1000 * 4000/40000 = 100.
	if ds.SupportThreshold != 100 {
		t.Errorf("scaled η_s = %d, want 100", ds.SupportThreshold)
	}
	ds2, err := w.Build(DefaultSpec(40000, 500, 1))
	if err != nil {
		t.Fatal(err)
	}
	if ds2.SupportThreshold != 1000 {
		t.Errorf("paper-size η_s = %d, want 1000", ds2.SupportThreshold)
	}
}

func TestAdultIncomeBands(t *testing.T) {
	// Young entities always earn <=50K.
	if adultIncome("Exec-managerial", 16, 22) != "<=50K" {
		t.Error("young high-flyer should earn <=50K")
	}
	// Mid-band executives with top education earn >50K.
	if adultIncome("Exec-managerial", 16, 40) != ">50K" {
		t.Error("mid-band executive with doctorate should earn >50K")
	}
	// Low education never earns >50K in any band.
	for _, age := range []int{20, 40, 70} {
		if adultIncome("Exec-managerial", 1, age) != "<=50K" {
			t.Errorf("low education at age %d should earn <=50K", age)
		}
	}
	_ = strconv.Itoa(0)
}

func newTestRng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func TestSynthWorldStructure(t *testing.T) {
	w := Synth(SynthSpec{NumAttrs: 5, DomainSize: 12})
	ds, err := w.Build(DefaultSpec(800, 400, 17))
	if err != nil {
		t.Fatal(err)
	}
	// Schema: 5 evidence attrs + guard + Y on the input side.
	if got := ds.Input.Schema().Len(); got != 7 {
		t.Errorf("input width = %d, want 7", got)
	}
	if got := ds.Master.Schema().Len(); got != 6 {
		t.Errorf("master width = %d, want 6", got)
	}
	// All evidence attributes matched, guard unmatched.
	if ds.Match.Size() != 6 { // 5 evidence + y
		t.Errorf("|M| = %d, want 6", ds.Match.Size())
	}
	g := ds.Input.Schema().MustIndex("g")
	if ds.Match.Matched(g) {
		t.Error("guard attribute matched")
	}
	// Domain sizes are as requested (up to sampling).
	a0 := ds.Input.Schema().MustIndex("a0")
	if got := ds.Input.DomainSize(a0); got > 12 {
		t.Errorf("a0 domain = %d, want <= 12", got)
	}
	// The planted rule holds on master: (a0, a1) determines y up to the
	// world noise.
	counts := make(map[[2]int32]map[int32]int)
	a1 := ds.Master.Schema().MustIndex("a1")
	y := ds.Master.Schema().MustIndex("y")
	for row := 0; row < ds.Master.NumRows(); row++ {
		k := [2]int32{ds.Master.Code(row, 0), ds.Master.Code(row, a1)}
		if counts[k] == nil {
			counts[k] = make(map[int32]int)
		}
		counts[k][ds.Master.Code(row, y)]++
	}
	pure, total := 0, 0
	for _, hist := range counts {
		max, sum := 0, 0
		for _, n := range hist {
			sum += n
			if n > max {
				max = n
			}
		}
		pure += max
		total += sum
	}
	if float64(pure)/float64(total) < 0.85 {
		t.Errorf("planted rule purity = %.2f on master", float64(pure)/float64(total))
	}
}

func TestSynthPanicsOnTooFewAttrs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("did not panic")
		}
	}()
	Synth(SynthSpec{NumAttrs: 1, DomainSize: 5})
}
