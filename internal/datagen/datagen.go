// Package datagen generates the four experimental datasets of the paper
// (§V-A1): Adult, Covid-19, Nursery and Location.
//
// The paper uses public UCI/Kaggle data plus a Chinese-government postcode
// table, none of which are shipped here. Instead, each dataset is a
// deterministic synthetic world that reproduces the original's schema
// width, attribute types, domain-size profile and — crucially — the
// dependency structure that makes editing rules discoverable, including a
// divergent sub-population that is absent from (or mislabelled relative
// to) the master data, so that useful rules need input-side pattern
// conditions exactly as in the paper's motivating example
// (t_p[Overseas] = No). See DESIGN.md §1 for the substitution argument.
//
// Every generator follows the same protocol:
//
//  1. generate a world of entities (complete, clean records);
//  2. render the master relation from a filtered entity sample (the
//     divergent sub-population is excluded, as national records exclude
//     overseas infections in the paper's example);
//  3. render the clean input relation from an entity sample drawn either
//     independently (the paper's default protocol) or with a controlled
//     duplicate rate d% (§V-C2);
//  4. the caller injects errors into the input with package errgen.
package datagen

import (
	"fmt"
	"math/rand"

	"erminer/internal/relation"
	"erminer/internal/schema"
)

// Entity is one complete world record: field name → value.
type Entity map[string]string

// World describes a synthetic dataset generator.
type World struct {
	// Name identifies the dataset ("adult", "covid", "nursery",
	// "location").
	Name string
	// InputSchema and MasterSchema are the schemas R and R_m. Matched
	// attributes share a Domain name.
	InputSchema  *relation.Schema
	MasterSchema *relation.Schema
	// YName / YmName name the dependent attribute pair (Y, Y_m).
	YName, YmName string
	// DefaultSupport is the paper's default support threshold η_s for
	// this dataset, at the paper's data sizes. Builders scale it
	// proportionally when a smaller input is requested.
	DefaultSupport int
	// PaperInputSize / PaperMasterSize are the sizes in Table I.
	PaperInputSize, PaperMasterSize int
	// WorldSize is the number of entities generated.
	WorldSize int
	// Gen draws one entity.
	Gen func(rng *rand.Rand) Entity
	// InMaster reports whether an entity may appear in the master data.
	InMaster func(e Entity) bool
	// RenderInput / RenderMaster project an entity onto the schemas.
	RenderInput  func(e Entity) []string
	RenderMaster func(e Entity) []string
	// MasterRows, when non-nil, overrides entity-based master sampling:
	// the master relation comes from an external directory (e.g. the
	// Location world's postcode table) rather than the entity world.
	MasterRows func(rng *rand.Rand, n int) [][]string
}

// Spec selects the size and sampling protocol for one built dataset.
type Spec struct {
	// InputSize and MasterSize are tuple counts; zero means the paper's
	// Table I sizes.
	InputSize, MasterSize int
	// DuplicateRate, when >= 0, switches to the §V-C2 protocol where
	// this fraction of input tuples correspond to master entities.
	// Negative (the default from DefaultSpec) means independent samples.
	DuplicateRate float64
	// Seed drives all randomness in generation and sampling.
	Seed int64
}

// DefaultSpec returns the paper's default protocol at the given sizes.
func DefaultSpec(inputSize, masterSize int, seed int64) Spec {
	return Spec{InputSize: inputSize, MasterSize: masterSize, DuplicateRate: -1, Seed: seed}
}

// Dataset is a fully materialised experiment input: clean input relation,
// master relation, schema match and dependent attribute pair.
type Dataset struct {
	Name string
	// Input is the clean input relation D (before error injection).
	Input *relation.Relation
	// Master is the master relation D_m.
	Master *relation.Relation
	// Match is the schema match M.
	Match *schema.Match
	// Y and Ym index the dependent attributes in R and R_m.
	Y, Ym int
	// SupportThreshold is η_s scaled to the built input size.
	SupportThreshold int
	// Pool is the shared dictionary pool of both relations.
	Pool *relation.Pool
}

// Build materialises the world under the given spec.
func (w *World) Build(spec Spec) (*Dataset, error) {
	if spec.InputSize == 0 {
		spec.InputSize = w.PaperInputSize
	}
	if spec.MasterSize == 0 {
		spec.MasterSize = w.PaperMasterSize
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	entities := make([]Entity, w.WorldSize)
	var masterPool []Entity
	for i := range entities {
		e := w.Gen(rng)
		entities[i] = e
		if w.InMaster == nil || w.InMaster(e) {
			masterPool = append(masterPool, e)
		}
	}

	// Master sample (entity-based unless the world supplies a directory).
	var masterEnts []Entity
	var masterRows [][]string
	if w.MasterRows != nil {
		masterRows = w.MasterRows(rng, spec.MasterSize)
	} else {
		if len(masterPool) == 0 {
			return nil, fmt.Errorf("datagen: world %q produced no master-eligible entities", w.Name)
		}
		nMaster := spec.MasterSize
		if nMaster > len(masterPool) {
			nMaster = len(masterPool)
		}
		masterIdx := rng.Perm(len(masterPool))[:nMaster]
		masterEnts = make([]Entity, nMaster)
		for i, j := range masterIdx {
			masterEnts[i] = masterPool[j]
		}
	}

	// Input sample.
	inputEnts := make([]Entity, 0, spec.InputSize)
	if spec.DuplicateRate >= 0 && len(masterEnts) > 0 {
		for i := 0; i < spec.InputSize; i++ {
			if rng.Float64() < spec.DuplicateRate {
				inputEnts = append(inputEnts, masterEnts[rng.Intn(len(masterEnts))])
			} else {
				inputEnts = append(inputEnts, entities[rng.Intn(len(entities))])
			}
		}
	} else {
		perm := rng.Perm(len(entities))
		for i := 0; i < spec.InputSize; i++ {
			inputEnts = append(inputEnts, entities[perm[i%len(perm)]])
		}
	}

	pool := relation.NewPool()
	input := relation.New(w.InputSchema, pool)
	for _, e := range inputEnts {
		input.AppendRow(w.RenderInput(e))
	}
	master := relation.New(w.MasterSchema, pool)
	if masterRows != nil {
		for _, row := range masterRows {
			master.AppendRow(row)
		}
	} else {
		for _, e := range masterEnts {
			master.AppendRow(w.RenderMaster(e))
		}
	}

	m := schema.AutoMatch(w.InputSchema, w.MasterSchema)
	y := w.InputSchema.MustIndex(w.YName)
	ym := w.MasterSchema.MustIndex(w.YmName)

	eta := w.DefaultSupport
	if spec.InputSize != w.PaperInputSize && w.PaperInputSize > 0 {
		eta = w.DefaultSupport * spec.InputSize / w.PaperInputSize
		if eta < 5 {
			eta = 5
		}
	}

	return &Dataset{
		Name:             w.Name,
		Input:            input,
		Master:           master,
		Match:            m,
		Y:                y,
		Ym:               ym,
		SupportThreshold: eta,
		Pool:             pool,
	}, nil
}

// ByName returns the named world. Valid names: adult, covid, nursery,
// location.
func ByName(name string) (*World, error) {
	switch name {
	case "adult":
		return Adult(), nil
	case "covid":
		return Covid(), nil
	case "nursery":
		return Nursery(), nil
	case "location":
		return Location(), nil
	default:
		return nil, fmt.Errorf("datagen: unknown dataset %q", name)
	}
}

// AllNames lists the dataset names in the paper's Table I order.
func AllNames() []string { return []string{"adult", "covid", "nursery", "location"} }

// pick returns a uniformly random element of vals.
func pick(rng *rand.Rand, vals []string) string {
	return vals[rng.Intn(len(vals))]
}

// pickZipf returns an element of vals with a skewed (harmonic) weight so
// early elements are more frequent, approximating real categorical
// distributions.
func pickZipf(rng *rand.Rand, vals []string) string {
	// Weight of element i is 1/(i+1); total = H(n).
	n := len(vals)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / float64(i+1)
	}
	x := rng.Float64() * total
	for i := 0; i < n; i++ {
		x -= 1 / float64(i+1)
		if x <= 0 {
			return vals[i]
		}
	}
	return vals[n-1]
}
