package datagen

import (
	"fmt"
	"math/rand"

	"erminer/internal/relation"
)

// SynthSpec parameterises the fully synthetic scalability world used to
// probe the paper's headline claim that RLMiner "scales well on the
// datasets with many attributes and large domains" (abstract, §V): the
// enumeration space N_enum = 2^|M| · Π(|dom(A)|+1) grows exponentially
// in NumAttrs and polynomially in DomainSize, so sweeping them separates
// the miners far more sharply than row counts do.
type SynthSpec struct {
	// NumAttrs is the number of evidence attributes (all matched);
	// the schema also carries a guard attribute and Y.
	NumAttrs int
	// DomainSize is the domain cardinality of every evidence attribute.
	DomainSize int
	// RuleAttrs is how many evidence attributes determine Y (the
	// planted rule's LHS width). Zero means 2.
	RuleAttrs int
	// NoiseRate is the fraction of entities with an idiosyncratic Y.
	// Zero means 0.05.
	NoiseRate float64
}

func (s SynthSpec) ruleAttrs() int {
	if s.RuleAttrs > 0 {
		return s.RuleAttrs
	}
	return 2
}

func (s SynthSpec) noiseRate() float64 {
	if s.NoiseRate > 0 {
		return s.NoiseRate
	}
	return 0.05
}

// Synth returns a parametric world: attributes a0..a{n-1} with uniform
// domains of the requested size, a guard G (the divergent sub-population
// is absent from master data), and Y determined by the first RuleAttrs
// attributes.
func Synth(spec SynthSpec) *World {
	if spec.NumAttrs < spec.ruleAttrs() {
		panic(fmt.Sprintf("datagen: Synth needs at least %d attributes", spec.ruleAttrs()))
	}
	var inAttrs, msAttrs []relation.Attribute
	for i := 0; i < spec.NumAttrs; i++ {
		a := relation.Attribute{Name: fmt.Sprintf("a%d", i)}
		inAttrs = append(inAttrs, a)
		msAttrs = append(msAttrs, a)
	}
	inAttrs = append(inAttrs, relation.Attribute{Name: "g"}) // input-only guard
	inAttrs = append(inAttrs, relation.Attribute{Name: "y"})
	msAttrs = append(msAttrs, relation.Attribute{Name: "y"})

	inputSchema := relation.NewSchema(inAttrs...)
	masterSchema := relation.NewSchema(msAttrs...)
	yDomain := 8

	gen := func(rng *rand.Rand) Entity {
		e := Entity{}
		h := 0
		for i := 0; i < spec.NumAttrs; i++ {
			v := rng.Intn(spec.DomainSize)
			e[fmt.Sprintf("a%d", i)] = fmt.Sprintf("v%d", v)
			if i < spec.ruleAttrs() {
				h = h*31 + v
			}
		}
		if h < 0 {
			h = -h
		}
		y := h % yDomain
		g := "ok"
		switch {
		case rng.Float64() < 0.15:
			// The divergent sub-population: arbitrary Y, absent from
			// the master data, guarded by g.
			g = "odd"
			y = rng.Intn(yDomain)
		case rng.Float64() < spec.noiseRate():
			y = rng.Intn(yDomain)
		}
		e["g"] = g
		e["y"] = fmt.Sprintf("y%d", y)
		return e
	}

	render := func(names []string) func(e Entity) []string {
		return func(e Entity) []string {
			out := make([]string, len(names))
			for i, n := range names {
				out[i] = e[n]
			}
			return out
		}
	}

	return &World{
		Name:            fmt.Sprintf("synth-a%d-d%d", spec.NumAttrs, spec.DomainSize),
		InputSchema:     inputSchema,
		MasterSchema:    masterSchema,
		YName:           "y",
		YmName:          "y",
		DefaultSupport:  100,
		PaperInputSize:  10000,
		PaperMasterSize: 2000,
		WorldSize:       15000,
		Gen:             gen,
		InMaster:        func(e Entity) bool { return e["g"] == "ok" },
		RenderInput:     render(inputSchema.Names()),
		RenderMaster:    render(masterSchema.Names()),
	}
}
