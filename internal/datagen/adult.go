package datagen

import (
	"fmt"
	"math/rand"

	"erminer/internal/relation"
)

// Adult-like world (paper Table I: input 10 attributes × 40,000 tuples,
// master 9 × 5,000; Y = Income; η_s = 1000).
//
// Dependency structure:
//   - Education → EducationNum is an exact FD (as in the real UCI data).
//   - Income is determined by (Occupation, EducationNum) for the
//     mainstream population, with two divergent sub-populations that make
//     input-side conditions worthwhile:
//   - Relationship = "Other-relative" entities (input-only attribute,
//     excluded from master data) have half their incomes flipped;
//   - Age < 25 entities always earn "<=50K" regardless of occupation
//     (they are in the master data, so rules restricted to adult age
//     ranges via continuous-range pattern conditions gain Quality).
var (
	adultWorkclass = []string{
		"Private", "Self-emp-not-inc", "Self-emp-inc", "Federal-gov",
		"Local-gov", "State-gov", "Without-pay",
	}
	adultEducation = []string{
		"Preschool", "1st-4th", "5th-6th", "7th-8th", "9th", "10th",
		"11th", "12th", "HS-grad", "Some-college", "Assoc-voc",
		"Assoc-acdm", "Bachelors", "Masters", "Prof-school", "Doctorate",
	}
	adultMarital = []string{
		"Married-civ-spouse", "Never-married", "Divorced", "Separated",
		"Widowed", "Married-spouse-absent", "Married-AF-spouse",
	}
	adultOccupation = []string{
		"Exec-managerial", "Prof-specialty", "Tech-support", "Sales",
		"Craft-repair", "Adm-clerical", "Machine-op-inspct",
		"Other-service", "Transport-moving", "Handlers-cleaners",
		"Farming-fishing", "Protective-serv", "Priv-house-serv",
		"Armed-Forces",
	}
	adultRelationship = []string{
		"Husband", "Wife", "Own-child", "Not-in-family", "Unmarried",
		"Other-relative",
	}
	adultRace = []string{"White", "Black", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other"}
	adultSex  = []string{"Male", "Female"}

	// adultOccRank scores occupations by pay; the list above is ordered
	// from highest to lowest pay, and pickZipf makes the high-pay end
	// the most frequent (executives dominate the sample as "Private"
	// dominates the real data's workclass).
	adultOccRank = func() map[string]int {
		m := make(map[string]int, len(adultOccupation))
		for i, o := range adultOccupation {
			m[o] = len(adultOccupation) - 1 - i
		}
		return m
	}()
)

// adultIncome computes the mainstream income of an entity from a joint
// score of occupation rank, education and age band. No single attribute
// (nor most pairs) determines income cleanly — exactly like the real
// Adult data — so discovering accurate rules requires multi-attribute
// LHS sets and age-range pattern conditions, and the CFD baseline cannot
// get away with broad variable-only dependencies.
func adultIncome(occupation string, eduNum, age int) string {
	score := adultOccRank[occupation] + 2*eduNum
	switch {
	case age < 30:
		// Early-career: below the threshold regardless of occupation
		// (max score 13 + 32 - 20 = 25 < 30).
		score -= 20
	case age >= 60:
		score -= 6
	}
	if score >= 30 {
		return ">50K"
	}
	return "<=50K"
}

func flipIncome(v string) string {
	if v == ">50K" {
		return "<=50K"
	}
	return ">50K"
}

// Adult returns the Adult-like world.
func Adult() *World {
	inputSchema := relation.NewSchema(
		relation.Attribute{Name: "age", Type: relation.Continuous},
		relation.Attribute{Name: "workclass"},
		relation.Attribute{Name: "education"},
		relation.Attribute{Name: "education_num"},
		relation.Attribute{Name: "marital_status"},
		relation.Attribute{Name: "occupation"},
		relation.Attribute{Name: "relationship"}, // input-only
		relation.Attribute{Name: "race"},
		relation.Attribute{Name: "sex"},
		relation.Attribute{Name: "income"},
	)
	masterSchema := relation.NewSchema(
		relation.Attribute{Name: "age", Type: relation.Continuous},
		relation.Attribute{Name: "workclass"},
		relation.Attribute{Name: "education"},
		relation.Attribute{Name: "education_num"},
		relation.Attribute{Name: "marital_status"},
		relation.Attribute{Name: "occupation"},
		relation.Attribute{Name: "race"},
		relation.Attribute{Name: "sex"},
		relation.Attribute{Name: "income"},
	)

	gen := func(rng *rand.Rand) Entity {
		eduIdx := rng.Intn(len(adultEducation))
		eduNum := eduIdx + 1 // Education → EducationNum FD
		occupation := pickZipf(rng, adultOccupation)
		relationship := pickZipf(rng, adultRelationship)
		age := 17 + rng.Intn(74)

		income := adultIncome(occupation, eduNum, age)
		if relationship == "Other-relative" && rng.Intn(2) == 0 {
			income = flipIncome(income)
		}
		if rng.Float64() < 0.05 {
			// Idiosyncratic world noise: income is never a clean
			// function of the other attributes, as in the real data.
			income = flipIncome(income)
		}
		return Entity{
			"age":            fmt.Sprintf("%d", age),
			"workclass":      pickZipf(rng, adultWorkclass),
			"education":      adultEducation[eduIdx],
			"education_num":  fmt.Sprintf("%d", eduNum),
			"marital_status": pickZipf(rng, adultMarital),
			"occupation":     occupation,
			"relationship":   relationship,
			"race":           pickZipf(rng, adultRace),
			"sex":            pick(rng, adultSex),
			"income":         income,
		}
	}

	return &World{
		Name:            "adult",
		InputSchema:     inputSchema,
		MasterSchema:    masterSchema,
		YName:           "income",
		YmName:          "income",
		DefaultSupport:  1000,
		PaperInputSize:  40000,
		PaperMasterSize: 5000,
		WorldSize:       48842,
		Gen:             gen,
		InMaster: func(e Entity) bool {
			// Master data (curated records) exclude the divergent
			// "Other-relative" sub-population, mirroring how the
			// paper's national records exclude overseas infections.
			return e["relationship"] != "Other-relative"
		},
		RenderInput: func(e Entity) []string {
			return []string{
				e["age"], e["workclass"], e["education"], e["education_num"],
				e["marital_status"], e["occupation"], e["relationship"],
				e["race"], e["sex"], e["income"],
			}
		},
		RenderMaster: func(e Entity) []string {
			return []string{
				e["age"], e["workclass"], e["education"], e["education_num"],
				e["marital_status"], e["occupation"], e["race"], e["sex"],
				e["income"],
			}
		},
	}
}
