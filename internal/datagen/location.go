package datagen

import (
	"fmt"
	"math/rand"

	"erminer/internal/relation"
)

// Location-like world (paper Table I: input 9 × 2,559 coffee shops,
// master 5 × 3,430 counties; Y = Postcode; η_s = 100).
//
// The master data plays the role of the government postcode directory:
// one row per (City, County) pair carrying Province, AreaCode and
// Postcode. County names are deliberately reused across cities (as real
// district names are), so Postcode is determined by (County, AreaCode)
// or (City, County) jointly but NOT by County alone — which is exactly
// the paper's discovered rule φ₂ = ((area_code, County) → Postcode).
//
// The input relation describes shops with several large-domain attributes
// (name, street, phone) that stress the domain-compression encoding of
// §IV-A. A small fraction of shops sit in new districts absent from the
// directory and cannot be fixed from master data.
type locationDirectory struct {
	provinces []string
	cities    []string
	cityProv  map[string]string
	cityArea  map[string]string
	// combos lists every (city, county) pair with its postcode.
	combos []locationCombo
}

type locationCombo struct {
	province, city, county, areaCode, postcode string
}

func buildLocationDirectory() *locationDirectory {
	// The directory is fixed structure (like the real government table),
	// independent of the experiment seed.
	rng := rand.New(rand.NewSource(424242))
	d := &locationDirectory{
		cityProv: make(map[string]string),
		cityArea: make(map[string]string),
	}
	for i := 0; i < 30; i++ {
		d.provinces = append(d.provinces, fmt.Sprintf("Province-%02d", i))
	}
	countyNames := make([]string, 400)
	for i := range countyNames {
		countyNames[i] = fmt.Sprintf("District-%03d", i)
	}
	postcode := 100000
	for i := 0; i < 350; i++ {
		city := fmt.Sprintf("City-%03d", i)
		d.cities = append(d.cities, city)
		d.cityProv[city] = d.provinces[i%len(d.provinces)]
		d.cityArea[city] = fmt.Sprintf("0%03d", 100+i)
		nCounties := 8 + rng.Intn(5)
		perm := rng.Perm(len(countyNames))
		for j := 0; j < nCounties && len(d.combos) < 3430; j++ {
			postcode += 7 + rng.Intn(23)
			d.combos = append(d.combos, locationCombo{
				province: d.cityProv[city],
				city:     city,
				county:   countyNames[perm[j]],
				areaCode: d.cityArea[city],
				postcode: fmt.Sprintf("%06d", postcode),
			})
		}
	}
	return d
}

var locationBrands = []string{"Starbeans", "Brewster", "Kaffa Reserve"}

// Location returns the Location-like world.
func Location() *World {
	dir := buildLocationDirectory()

	inputSchema := relation.NewSchema(
		relation.Attribute{Name: "name"},
		relation.Attribute{Name: "brand"},
		relation.Attribute{Name: "city", Domain: "city"},
		relation.Attribute{Name: "county", Domain: "county"},
		relation.Attribute{Name: "area_code", Domain: "area_code"},
		relation.Attribute{Name: "postcode", Domain: "postcode"},
		relation.Attribute{Name: "street"},
		relation.Attribute{Name: "phone"},
		relation.Attribute{Name: "ownership"},
	)
	masterSchema := relation.NewSchema(
		relation.Attribute{Name: "province"},
		relation.Attribute{Name: "city", Domain: "city"},
		relation.Attribute{Name: "county", Domain: "county"},
		relation.Attribute{Name: "area_code", Domain: "area_code"},
		relation.Attribute{Name: "postcode", Domain: "postcode"},
	)

	gen := func(rng *rand.Rand) Entity {
		var combo locationCombo
		if rng.Float64() < 0.02 {
			// A shop in a new district that the directory has not
			// registered yet: its county joins nothing in master data.
			city := dir.cities[rng.Intn(len(dir.cities))]
			combo = locationCombo{
				province: dir.cityProv[city],
				city:     city,
				county:   fmt.Sprintf("NewDistrict-%03d", rng.Intn(40)),
				areaCode: dir.cityArea[city],
				postcode: fmt.Sprintf("%06d", 900000+rng.Intn(999)),
			}
		} else {
			combo = dir.combos[rng.Intn(len(dir.combos))]
		}
		brand := pickZipf(rng, locationBrands)
		return Entity{
			"name":      fmt.Sprintf("%s #%04d", brand, rng.Intn(4000)),
			"brand":     brand,
			"city":      combo.city,
			"county":    combo.county,
			"area_code": combo.areaCode,
			"postcode":  combo.postcode,
			"street":    fmt.Sprintf("%d %s Rd", 1+rng.Intn(999), combo.county),
			"phone":     fmt.Sprintf("%s-%07d", combo.areaCode, rng.Intn(10000000)),
			"ownership": pick(rng, []string{"company", "licensed"}),
		}
	}

	return &World{
		Name:            "location",
		InputSchema:     inputSchema,
		MasterSchema:    masterSchema,
		YName:           "postcode",
		YmName:          "postcode",
		DefaultSupport:  100,
		PaperInputSize:  2559,
		PaperMasterSize: 3430,
		WorldSize:       8000,
		Gen:             gen,
		MasterRows: func(rng *rand.Rand, n int) [][]string {
			perm := rng.Perm(len(dir.combos))
			if n > len(dir.combos) {
				n = len(dir.combos)
			}
			rows := make([][]string, n)
			for i := 0; i < n; i++ {
				c := dir.combos[perm[i]]
				rows[i] = []string{c.province, c.city, c.county, c.areaCode, c.postcode}
			}
			return rows
		},
		RenderInput: func(e Entity) []string {
			return []string{
				e["name"], e["brand"], e["city"], e["county"],
				e["area_code"], e["postcode"], e["street"], e["phone"],
				e["ownership"],
			}
		},
	}
}
