// Package enuminer implements EnuMiner (paper §II-D), the
// enumeration-based editing-rule discovery baseline, and its heuristic
// variant EnuMinerH3 (§V-D2) that bounds rule length.
//
// EnuMiner performs a levelwise walk of the rule lattice in the style of
// CTANE: it starts from the empty rule and repeatedly refines rules by
// adding LHS attribute pairs or pattern conditions. The enumeration space
// N_enum = 2^|M| · Π_{A∈R\Y}(|dom(A)|+1) is exponential, so the miner
// deploys the pruning strategies the paper describes:
//
//   - support pruning: by Lemma 1, refinement never increases support, so
//     a subtree rooted at a rule below η_s is discarded;
//   - certainty pruning: a rule that already returns a single certain fix
//     (C = 1) is not refined further (Alg. 4 line 14);
//   - canonical ordered extension: each candidate rule is generated
//     exactly once (the role the paper's hash table plays);
//   - cover-index subspace search: children are evaluated only over the
//     parent's pattern cover (Alg. 4 lines 9–10).
//
// The walk runs either serially or as a level-synchronized parallel
// frontier expansion: each BFS level's (node, dim) refinements fan out
// across a bounded pool of evaluator shards and are merged back in
// canonical order, so found rules, Explored counts and every pruning
// decision are bit-identical to the serial walk (DESIGN.md decision 11).
package enuminer

import (
	"sync"
	"sync/atomic"

	"erminer/internal/core"
	"erminer/internal/measure"
	"erminer/internal/rule"
)

// Config controls an EnuMiner run.
type Config struct {
	// Space configures the candidate refinement space.
	Space core.SpaceConfig
	// MaxLHS and MaxPattern bound the rule shape; zero means unbounded.
	// EnuMinerH3 sets both to 3.
	MaxLHS, MaxPattern int
	// MaxExplored caps the number of evaluated candidates as a safety
	// valve; zero means no cap.
	MaxExplored int
	// Parallelism overrides the problem's worker budget for the
	// level-synchronized frontier expansion. Zero defers to
	// Problem.Workers() (whose own default is runtime.NumCPU()); 1
	// forces the serial walk. Any setting produces a bit-identical
	// ResultSet.
	Parallelism int
}

// Miner is the enumeration-based discovery algorithm.
type Miner struct {
	cfg  Config
	name string
}

// New returns an EnuMiner with the given configuration.
func New(cfg Config) *Miner {
	return &Miner{cfg: cfg, name: "EnuMiner"}
}

// NewH3 returns EnuMinerH3: EnuMiner with LHS and pattern lengths bounded
// by 3 (§V-D2).
func NewH3(cfg Config) *Miner {
	cfg.MaxLHS, cfg.MaxPattern = 3, 3
	return &Miner{cfg: cfg, name: "EnuMinerH3"}
}

// Name implements core.Miner.
func (m *Miner) Name() string { return m.name }

// node is one lattice element during the walk.
type node struct {
	r      *rule.Rule
	cover  []int32
	maxDim int // canonical extension: children only add dims > maxDim
}

// Mine implements core.Miner.
func (m *Miner) Mine(p *core.Problem) (*core.ResultSet, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	spaceCfg := m.cfg.Space
	if spaceCfg.MinValueCount == 0 {
		spaceCfg.MinValueCount = p.SupportThreshold
	}
	space := core.BuildSpace(p, spaceCfg)
	ev := p.NewEvaluator()

	root := &node{
		r:      rule.New(nil, p.Y, p.Ym, nil),
		maxDim: -1,
	}
	rootMeasures := ev.Evaluate(root.r, nil)
	root.cover = rootMeasures.PatternCover

	var (
		found    []core.MinedRule
		explored int
	)
	workers := m.cfg.Parallelism
	if workers == 0 {
		workers = p.Workers()
	}
	if workers > 1 {
		found, explored = m.mineParallel(p, space, ev, root, workers)
	} else {
		found, explored = m.mineSerial(p, space, ev, root)
	}

	return &core.ResultSet{
		Rules:    core.SelectTopK(found, p.K()),
		Explored: explored,
	}, nil
}

// mineSerial is the original single-threaded levelwise walk; it is the
// reference the parallel path must match bit for bit.
func (m *Miner) mineSerial(p *core.Problem, space *core.Space, ev *measure.Evaluator, root *node) ([]core.MinedRule, int) {
	var (
		queue    = []*node{root}
		found    []core.MinedRule
		explored = 0
	)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for d := n.maxDim + 1; d < space.Dim(); d++ {
			child, ok := m.refine(space, n, d)
			if !ok {
				continue
			}
			if m.cfg.MaxExplored > 0 && explored >= m.cfg.MaxExplored {
				queue = nil
				break
			}
			explored++
			ms := ev.Evaluate(child.r, n.cover)
			child.cover = ms.PatternCover

			if len(child.r.LHS) == 0 {
				// A pattern-only node is an internal node: it cannot be
				// a rule, but its subtree can. Its support upper bound
				// is its cover size.
				if len(child.cover) >= p.SupportThreshold {
					queue = append(queue, child)
				} else {
					// Pruned: recycle the cover buffer. Found rules
					// keep ms.PatternCover (the same slice), so only
					// never-surfaced covers may be released.
					ev.ReleaseCover(child.cover)
					child.cover = nil
				}
				continue
			}
			if ms.Support < p.SupportThreshold {
				ev.ReleaseCover(child.cover)
				child.cover = nil
				continue // Lemma 1: the whole subtree is below η_s
			}
			found = append(found, core.MinedRule{Rule: child.r, Measures: ms})
			if ms.Certainty < 1 {
				queue = append(queue, child)
			}
		}
	}
	return found, explored
}

// task is one (parent, child) refinement of a BFS level awaiting
// evaluation.
type task struct {
	parent *node
	child  *node
}

// mineParallel is the level-synchronized frontier expansion. The BFS
// queue of the serial walk is processed level by level (the FIFO order
// is exactly level order, since every level-k node enters the queue
// before any level-k+1 node): each level's candidates are generated
// serially in canonical (node, dim) order — which also places the
// MaxExplored cap at precisely the candidate the serial walk would stop
// at — then evaluated concurrently by a pool of evaluator shards
// borrowing one shared index cache, and finally merged back in
// canonical order so found, Explored and every pruning decision match
// the serial walk bit for bit.
func (m *Miner) mineParallel(p *core.Problem, space *core.Space, ev *measure.Evaluator, root *node, workers int) ([]core.MinedRule, int) {
	shards := make([]*measure.Evaluator, workers)
	for i := range shards {
		shards[i] = ev.Shard()
	}

	var (
		found    []core.MinedRule
		explored int
		level    = []*node{root}
		tasks    []task
	)
	for len(level) > 0 {
		// Phase 1: generate this level's candidates canonically.
		// Refinement is a cheap structural check; the expensive part is
		// evaluation, which is what fans out.
		tasks = tasks[:0]
		capped := false
		for _, n := range level {
			for d := n.maxDim + 1; d < space.Dim(); d++ {
				child, ok := m.refine(space, n, d)
				if !ok {
					continue
				}
				if m.cfg.MaxExplored > 0 && explored >= m.cfg.MaxExplored {
					capped = true
					break
				}
				explored++
				tasks = append(tasks, task{parent: n, child: child})
			}
			if capped {
				break
			}
		}

		// Phase 2: fan the evaluations out across the shard pool. Each
		// result lands in its own slot, so merging needs no locks.
		results := make([]measure.Measures, len(tasks))
		var next atomic.Int64
		var wg sync.WaitGroup
		for _, shard := range shards {
			wg.Add(1)
			go func(shard *measure.Evaluator) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(tasks) {
						return
					}
					results[i] = shard.Evaluate(tasks[i].child.r, tasks[i].parent.cover)
				}
			}(shard)
		}
		wg.Wait()

		// Phase 3: merge in canonical order, applying exactly the
		// serial walk's pruning decisions.
		var nextLevel []*node
		for i, t := range tasks {
			ms := results[i]
			child := t.child
			child.cover = ms.PatternCover
			if len(child.r.LHS) == 0 {
				if len(child.cover) >= p.SupportThreshold {
					nextLevel = append(nextLevel, child)
				}
				continue
			}
			if ms.Support < p.SupportThreshold {
				continue // Lemma 1: the whole subtree is below η_s
			}
			found = append(found, core.MinedRule{Rule: child.r, Measures: ms})
			if ms.Certainty < 1 {
				nextLevel = append(nextLevel, child)
			}
		}
		if capped {
			break
		}
		level = nextLevel
	}

	for _, shard := range shards {
		ev.Stats.Add(shard.Stats)
	}
	return found, explored
}

// refine builds the child of n on dimension d, or reports that the
// dimension is inapplicable (attribute already used, or shape bound hit).
func (m *Miner) refine(space *core.Space, n *node, d int) (*node, bool) {
	if d < space.NumLHS() {
		pair := space.LHSPairs[d]
		if n.r.HasLHSAttr(pair.Input) {
			return nil, false
		}
		if m.cfg.MaxLHS > 0 && len(n.r.LHS) >= m.cfg.MaxLHS {
			return nil, false
		}
		return &node{r: n.r.WithLHS(pair.Input, pair.Master), maxDim: d}, true
	}
	unit := space.Unit(d)
	if n.r.HasPatternAttr(unit.Cond.Attr) {
		return nil, false
	}
	if m.cfg.MaxPattern > 0 && len(n.r.Pattern) >= m.cfg.MaxPattern {
		return nil, false
	}
	return &node{r: n.r.WithCondition(unit.Cond), maxDim: d}, true
}
