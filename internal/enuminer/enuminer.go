// Package enuminer implements EnuMiner (paper §II-D), the
// enumeration-based editing-rule discovery baseline, and its heuristic
// variant EnuMinerH3 (§V-D2) that bounds rule length.
//
// EnuMiner performs a levelwise walk of the rule lattice in the style of
// CTANE: it starts from the empty rule and repeatedly refines rules by
// adding LHS attribute pairs or pattern conditions. The enumeration space
// N_enum = 2^|M| · Π_{A∈R\Y}(|dom(A)|+1) is exponential, so the miner
// deploys the pruning strategies the paper describes:
//
//   - support pruning: by Lemma 1, refinement never increases support, so
//     a subtree rooted at a rule below η_s is discarded;
//   - certainty pruning: a rule that already returns a single certain fix
//     (C = 1) is not refined further (Alg. 4 line 14);
//   - canonical ordered extension: each candidate rule is generated
//     exactly once (the role the paper's hash table plays);
//   - cover-index subspace search: children are evaluated only over the
//     parent's pattern cover (Alg. 4 lines 9–10).
package enuminer

import (
	"erminer/internal/core"
	"erminer/internal/rule"
)

// Config controls an EnuMiner run.
type Config struct {
	// Space configures the candidate refinement space.
	Space core.SpaceConfig
	// MaxLHS and MaxPattern bound the rule shape; zero means unbounded.
	// EnuMinerH3 sets both to 3.
	MaxLHS, MaxPattern int
	// MaxExplored caps the number of evaluated candidates as a safety
	// valve; zero means no cap.
	MaxExplored int
}

// Miner is the enumeration-based discovery algorithm.
type Miner struct {
	cfg  Config
	name string
}

// New returns an EnuMiner with the given configuration.
func New(cfg Config) *Miner {
	return &Miner{cfg: cfg, name: "EnuMiner"}
}

// NewH3 returns EnuMinerH3: EnuMiner with LHS and pattern lengths bounded
// by 3 (§V-D2).
func NewH3(cfg Config) *Miner {
	cfg.MaxLHS, cfg.MaxPattern = 3, 3
	return &Miner{cfg: cfg, name: "EnuMinerH3"}
}

// Name implements core.Miner.
func (m *Miner) Name() string { return m.name }

// node is one lattice element during the walk.
type node struct {
	r      *rule.Rule
	cover  []int32
	maxDim int // canonical extension: children only add dims > maxDim
}

// Mine implements core.Miner.
func (m *Miner) Mine(p *core.Problem) (*core.ResultSet, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	spaceCfg := m.cfg.Space
	if spaceCfg.MinValueCount == 0 {
		spaceCfg.MinValueCount = p.SupportThreshold
	}
	space := core.BuildSpace(p, spaceCfg)
	ev := p.NewEvaluator()

	root := &node{
		r:      rule.New(nil, p.Y, p.Ym, nil),
		maxDim: -1,
	}
	rootMeasures := ev.Evaluate(root.r, nil)
	root.cover = rootMeasures.PatternCover

	var (
		queue    = []*node{root}
		found    []core.MinedRule
		explored = 0
	)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for d := n.maxDim + 1; d < space.Dim(); d++ {
			child, ok := m.refine(space, n, d)
			if !ok {
				continue
			}
			if m.cfg.MaxExplored > 0 && explored >= m.cfg.MaxExplored {
				queue = nil
				break
			}
			explored++
			ms := ev.Evaluate(child.r, n.cover)
			child.cover = ms.PatternCover

			if len(child.r.LHS) == 0 {
				// A pattern-only node is an internal node: it cannot be
				// a rule, but its subtree can. Its support upper bound
				// is its cover size.
				if len(child.cover) >= p.SupportThreshold {
					queue = append(queue, child)
				}
				continue
			}
			if ms.Support < p.SupportThreshold {
				continue // Lemma 1: the whole subtree is below η_s
			}
			found = append(found, core.MinedRule{Rule: child.r, Measures: ms})
			if ms.Certainty < 1 {
				queue = append(queue, child)
			}
		}
	}

	return &core.ResultSet{
		Rules:    core.SelectTopK(found, p.K()),
		Explored: explored,
	}, nil
}

// refine builds the child of n on dimension d, or reports that the
// dimension is inapplicable (attribute already used, or shape bound hit).
func (m *Miner) refine(space *core.Space, n *node, d int) (*node, bool) {
	if d < space.NumLHS() {
		pair := space.LHSPairs[d]
		if n.r.HasLHSAttr(pair.Input) {
			return nil, false
		}
		if m.cfg.MaxLHS > 0 && len(n.r.LHS) >= m.cfg.MaxLHS {
			return nil, false
		}
		return &node{r: n.r.WithLHS(pair.Input, pair.Master), maxDim: d}, true
	}
	unit := space.Unit(d)
	if n.r.HasPatternAttr(unit.Cond.Attr) {
		return nil, false
	}
	if m.cfg.MaxPattern > 0 && len(n.r.Pattern) >= m.cfg.MaxPattern {
		return nil, false
	}
	return &node{r: n.r.WithCondition(unit.Cond), maxDim: d}, true
}
