package enuminer

import (
	"math/rand"
	"reflect"
	"testing"

	"erminer/internal/core"
	"erminer/internal/datagen"
	"erminer/internal/errgen"
	"erminer/internal/measure"
	"erminer/internal/rule"
)

// assertIdenticalResults requires got to be bit-identical to want:
// same Explored count, same rules in the same order, same measures
// (exact float equality, covers included).
func assertIdenticalResults(t *testing.T, want, got *core.ResultSet, workers int) {
	t.Helper()
	if got.Explored != want.Explored {
		t.Fatalf("workers=%d: Explored=%d, want %d", workers, got.Explored, want.Explored)
	}
	if len(got.Rules) != len(want.Rules) {
		t.Fatalf("workers=%d: %d rules, want %d", workers, len(got.Rules), len(want.Rules))
	}
	for i := range want.Rules {
		if got.Rules[i].Rule.Key() != want.Rules[i].Rule.Key() {
			t.Fatalf("workers=%d: rule %d key mismatch:\n got %q\nwant %q",
				workers, i, got.Rules[i].Rule.Key(), want.Rules[i].Rule.Key())
		}
		if !reflect.DeepEqual(got.Rules[i].Measures, want.Rules[i].Measures) {
			t.Fatalf("workers=%d: rule %d measures mismatch:\n got %+v\nwant %+v",
				workers, i, got.Rules[i].Measures, want.Rules[i].Measures)
		}
	}
}

// TestParallelMineDeterminism runs EnuMiner and EnuMinerH3 on the covid
// and location benchmark generators at Parallelism 1, 2 and 8 and
// requires identical ResultSets (rules, order, measures) and identical
// Explored counts — the level-synchronized merge must reproduce the
// serial walk exactly.
func TestParallelMineDeterminism(t *testing.T) {
	for _, tc := range []struct {
		dataset       string
		input, master int
	}{
		{"covid", 500, 600},
		{"location", 400, 600},
	} {
		t.Run(tc.dataset, func(t *testing.T) {
			w, err := datagen.ByName(tc.dataset)
			if err != nil {
				t.Fatal(err)
			}
			ds, err := w.Build(datagen.DefaultSpec(tc.input, tc.master, 1))
			if err != nil {
				t.Fatal(err)
			}
			errgen.Inject(ds.Input, errgen.Config{Rate: 0.08, Rng: rand.New(rand.NewSource(2))})
			mkProblem := func(workers int, scalar bool) *core.Problem {
				return &core.Problem{
					Input: ds.Input, Master: ds.Master, Match: ds.Match,
					Y: ds.Y, Ym: ds.Ym,
					SupportThreshold: ds.SupportThreshold,
					TopK:             20,
					Parallelism:      workers,
					ScalarEval:       scalar,
				}
			}
			for _, miner := range []struct {
				name string
				mk   func(Config) *Miner
			}{{"EnuMiner", New}, {"EnuMinerH3", NewH3}} {
				t.Run(miner.name, func(t *testing.T) {
					cfg := Config{MaxExplored: 4000}
					// The scalar serial walk is the reference; the
					// columnar engine and every worker count must
					// reproduce it bit for bit.
					base, err := miner.mk(cfg).Mine(mkProblem(1, true))
					if err != nil {
						t.Fatal(err)
					}
					if base.Explored == 0 || len(base.Rules) == 0 {
						t.Fatalf("degenerate baseline: explored=%d rules=%d",
							base.Explored, len(base.Rules))
					}
					for _, scalar := range []bool{true, false} {
						for _, workers := range []int{1, 2, 8} {
							if scalar && workers == 1 {
								continue // the baseline itself
							}
							got, err := miner.mk(cfg).Mine(mkProblem(workers, scalar))
							if err != nil {
								t.Fatal(err)
							}
							assertIdenticalResults(t, base, got, workers)
						}
					}
				})
			}
		})
	}
}

// TestParallelCapDeterminism places the MaxExplored cap at awkward
// positions (mid-node, mid-level, first candidate) and checks the
// parallel walk cuts off at exactly the candidate the serial walk
// would, with an identical result.
func TestParallelCapDeterminism(t *testing.T) {
	p := plantedProblem(t, 400, 5)
	for _, capN := range []int{1, 7, 50, 333} {
		cfg := Config{MaxExplored: capN}
		p.Parallelism = 1
		base, err := New(cfg).Mine(p)
		if err != nil {
			t.Fatal(err)
		}
		if base.Explored > capN {
			t.Fatalf("cap=%d: serial explored %d", capN, base.Explored)
		}
		for _, workers := range []int{2, 3, 8} {
			p.Parallelism = workers
			got, err := New(cfg).Mine(p)
			if err != nil {
				t.Fatal(err)
			}
			assertIdenticalResults(t, base, got, workers)
		}
	}
	p.Parallelism = 0
}

// TestParallelStatsMatchSerial asserts that a parallel walk, with its
// worker-shard stats merged back through Stats.Add, reports exactly the
// same Evaluations / IndexBuilds / TuplesScanned totals as the serial
// walk.
func TestParallelStatsMatchSerial(t *testing.T) {
	p := plantedProblem(t, 300, 9)
	space := core.BuildSpace(p, core.SpaceConfig{MinValueCount: p.SupportThreshold})
	m := New(Config{})

	run := func(workers int) (explored int, stats measure.Stats) {
		ev := measure.NewEvaluator(p.Input, p.Master, p.Truth)
		root := &node{r: rule.New(nil, p.Y, p.Ym, nil), maxDim: -1}
		ms := ev.Evaluate(root.r, nil)
		root.cover = ms.PatternCover
		if workers > 1 {
			_, explored = m.mineParallel(p, space, ev, root, workers)
		} else {
			_, explored = m.mineSerial(p, space, ev, root)
		}
		return explored, ev.Stats
	}

	explored1, stats1 := run(1)
	if stats1.Evaluations == 0 || stats1.IndexBuilds == 0 {
		t.Fatalf("degenerate serial stats: %+v", stats1)
	}
	for _, workers := range []int{2, 8} {
		exploredN, statsN := run(workers)
		if exploredN != explored1 {
			t.Fatalf("workers=%d: explored %d, want %d", workers, exploredN, explored1)
		}
		if statsN != stats1 {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, statsN, stats1)
		}
	}
}
