package enuminer

import (
	"fmt"
	"math/rand"
	"testing"

	"erminer/internal/core"
	"erminer/internal/measure"
	"erminer/internal/relation"
	"erminer/internal/rule"
	"erminer/internal/schema"
)

// plantedProblem builds data with a planted dependency Y = f(A, B) plus
// a guard attribute G: tuples with G = "bad" have scrambled Y and are
// absent from the master data. Every single attribute leaves the join
// groups impure, so the miner must refine to (A, B).
func plantedProblem(t testing.TB, n int, seed int64) *core.Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pool := relation.NewPool()
	in := relation.NewSchema(
		relation.Attribute{Name: "A", Domain: "a"},
		relation.Attribute{Name: "B", Domain: "b"},
		relation.Attribute{Name: "G"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	ms := relation.NewSchema(
		relation.Attribute{Name: "A", Domain: "a"},
		relation.Attribute{Name: "B", Domain: "b"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	input := relation.New(in, pool)
	master := relation.New(ms, pool)
	for i := 0; i < n; i++ {
		a := rng.Intn(4)
		b := rng.Intn(4)
		y := fmt.Sprintf("y%d", (a*3+b*5)%7)
		g := "good"
		if rng.Intn(5) == 0 {
			g = "bad"
			y = fmt.Sprintf("y%d", rng.Intn(7))
		}
		input.AppendRow([]string{
			fmt.Sprintf("a%d", a), fmt.Sprintf("b%d", b), g, y,
		})
		if g == "good" {
			my := (a*3 + b*5) % 7
			if rng.Intn(33) == 0 {
				// A pinch of master-side noise keeps every rule's
				// certainty below 1, so the paper's certainty pruning
				// (Alg. 4 line 14) never stops refinement and the
				// brute-force comparison below is apples-to-apples.
				my = (my + 1) % 7
			}
			master.AppendRow([]string{
				fmt.Sprintf("a%d", a), fmt.Sprintf("b%d", b),
				fmt.Sprintf("y%d", my),
			})
		}
	}
	return &core.Problem{
		Input:            input,
		Master:           master,
		Match:            schema.AutoMatch(in, ms),
		Y:                3,
		Ym:               2,
		SupportThreshold: 20,
		TopK:             10,
	}
}

func TestEnuMinerFindsPlantedRule(t *testing.T) {
	p := plantedProblem(t, 600, 1)
	res, err := New(Config{}).Mine(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) == 0 {
		t.Fatal("no rules discovered")
	}
	top := res.Rules[0]
	if !top.Rule.HasLHSAttr(0) || !top.Rule.HasLHSAttr(1) {
		t.Errorf("top rule misses the planted (A, B) LHS: %s",
			top.Rule.String(p.Input, p.Master.Schema()))
	}
	if top.Measures.Certainty < 0.9 {
		t.Errorf("planted rule certainty = %g, want ≥ 0.9", top.Measures.Certainty)
	}
}

func TestEnuMinerRespectsSupportThreshold(t *testing.T) {
	p := plantedProblem(t, 600, 2)
	res, err := New(Config{}).Mine(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rules {
		if r.Measures.Support < p.SupportThreshold {
			t.Errorf("rule below η_s: S=%d", r.Measures.Support)
		}
		if len(r.Rule.LHS) == 0 {
			t.Error("rule with empty LHS returned")
		}
	}
}

func TestEnuMinerResultNonRedundant(t *testing.T) {
	p := plantedProblem(t, 600, 3)
	res, err := New(Config{}).Mine(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range res.Rules {
		for j, b := range res.Rules {
			if i != j && rule.Dominates(a.Rule, b.Rule) {
				t.Errorf("rule %d dominates rule %d", i, j)
			}
		}
	}
}

func TestEnuMinerResultSortedByUtility(t *testing.T) {
	p := plantedProblem(t, 600, 4)
	res, err := New(Config{}).Mine(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rules); i++ {
		if res.Rules[i].Measures.Utility > res.Rules[i-1].Measures.Utility {
			t.Errorf("rules not sorted: %g > %g at %d",
				res.Rules[i].Measures.Utility, res.Rules[i-1].Measures.Utility, i)
		}
	}
}

func TestEnuMinerH3Bounds(t *testing.T) {
	p := plantedProblem(t, 600, 5)
	m := NewH3(Config{})
	if m.Name() != "EnuMinerH3" {
		t.Errorf("name = %q", m.Name())
	}
	res, err := m.Mine(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rules {
		if len(r.Rule.LHS) > 3 || len(r.Rule.Pattern) > 3 {
			t.Errorf("H3 rule exceeds bounds: LHS=%d pattern=%d",
				len(r.Rule.LHS), len(r.Rule.Pattern))
		}
	}
	full, err := New(Config{}).Mine(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Explored > full.Explored {
		t.Errorf("H3 explored more than full EnuMiner: %d > %d",
			res.Explored, full.Explored)
	}
}

func TestEnuMinerMaxExplored(t *testing.T) {
	p := plantedProblem(t, 600, 6)
	res, err := New(Config{MaxExplored: 50}).Mine(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Explored > 50 {
		t.Errorf("explored %d > cap 50", res.Explored)
	}
}

// bruteForce enumerates every rule with |LHS| ≤ 2 and |pattern| ≤ 1 and
// returns the maximum utility among rules meeting the support threshold.
func bruteForce(p *core.Problem) float64 {
	space := core.BuildSpace(p, core.SpaceConfig{MinValueCount: p.SupportThreshold, MaxValueFrac: -1})
	ev := measure.NewEvaluator(p.Input, p.Master, p.Truth)
	best := 0.0
	consider := func(r *rule.Rule) {
		m := ev.Evaluate(r, nil)
		if m.Support >= p.SupportThreshold && m.Utility > best {
			best = m.Utility
		}
	}
	var lhsSets [][]rule.AttrPair
	for i, a := range space.LHSPairs {
		lhsSets = append(lhsSets, []rule.AttrPair{a})
		for _, b := range space.LHSPairs[i+1:] {
			if b.Input != a.Input {
				lhsSets = append(lhsSets, []rule.AttrPair{a, b})
			}
		}
	}
	for _, lhs := range lhsSets {
		consider(rule.New(lhs, p.Y, p.Ym, nil))
		for _, u := range space.Units {
			consider(rule.New(lhs, p.Y, p.Ym, []rule.Condition{u.Cond}))
		}
	}
	return best
}

// TestEnuMinerMatchesBruteForce: on a small instance, EnuMiner's best
// rule must reach the brute-force optimum over the depth-3 space.
func TestEnuMinerMatchesBruteForce(t *testing.T) {
	p := plantedProblem(t, 400, 7)
	res, err := New(Config{}).Mine(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) == 0 {
		t.Fatal("no rules")
	}
	want := bruteForce(p)
	got := res.Rules[0].Measures.Utility
	if got < want-1e-9 {
		t.Errorf("EnuMiner best utility %g < brute force %g", got, want)
	}
}

// TestEnuMinerGuardImprovesQuality: the guarded pattern G = "good" must
// appear among the discovered rules, since it removes the scrambled
// sub-population from the covered tuples.
func TestEnuMinerGuardImprovesQuality(t *testing.T) {
	p := plantedProblem(t, 1200, 8)
	res, err := New(Config{}).Mine(p)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res.Rules {
		for _, c := range r.Rule.Pattern {
			if c.Attr == 2 { // G
				found = true
			}
		}
	}
	if !found {
		t.Error("no discovered rule carries a guard condition on G")
	}
}

func TestEnuMinerInvalidProblem(t *testing.T) {
	if _, err := New(Config{}).Mine(&core.Problem{}); err == nil {
		t.Fatal("invalid problem accepted")
	}
}

func TestEnuMinerDeterministic(t *testing.T) {
	p1 := plantedProblem(t, 400, 9)
	p2 := plantedProblem(t, 400, 9)
	r1, err := New(Config{}).Mine(p1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(Config{}).Mine(p2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rules) != len(r2.Rules) {
		t.Fatalf("rule counts differ: %d vs %d", len(r1.Rules), len(r2.Rules))
	}
	for i := range r1.Rules {
		if r1.Rules[i].Rule.Key() != r2.Rules[i].Rule.Key() {
			t.Errorf("rule %d differs across identical runs", i)
		}
	}
}

// TestEnuMinerNegatedGuard: with the ā extension enabled, the miner can
// express the guard as a single negated condition G ≠ "bad" instead of
// one positive rule per good value.
func TestEnuMinerNegatedGuard(t *testing.T) {
	p := plantedProblem(t, 1200, 10)
	res, err := New(Config{Space: core.SpaceConfig{NegatedUnits: true}}).Mine(p)
	if err != nil {
		t.Fatal(err)
	}
	foundNegated := false
	for _, r := range res.Rules {
		for _, c := range r.Rule.Pattern {
			if c.Negate && c.Attr == 2 {
				foundNegated = true
			}
		}
	}
	if !foundNegated {
		t.Error("no rule with a negated guard discovered")
	}
}
