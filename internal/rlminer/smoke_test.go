package rlminer_test

import (
	"math/rand"
	"testing"

	"erminer/internal/core"
	"erminer/internal/datagen"
	"erminer/internal/enuminer"
	"erminer/internal/errgen"
	"erminer/internal/metrics"
	"erminer/internal/relation"
	"erminer/internal/repair"
	"erminer/internal/rlminer"
)

// buildProblem materialises a small covid dataset with injected errors.
func buildProblem(t testing.TB, seed int64) (*core.Problem, []int32) {
	t.Helper()
	w := datagen.Covid()
	ds, err := w.Build(datagen.DefaultSpec(1200, 800, seed))
	if err != nil {
		t.Fatalf("building dataset: %v", err)
	}
	clean := ds.Input.Clone()
	errgen.Inject(ds.Input, errgen.Config{
		Rate: 0.08,
		Rng:  rand.New(rand.NewSource(seed + 1)),
	})
	truth := errgen.TruthColumn(clean, ds.Y)
	return &core.Problem{
		Input:            ds.Input,
		Master:           ds.Master,
		Match:            ds.Match,
		Y:                ds.Y,
		Ym:               ds.Ym,
		SupportThreshold: ds.SupportThreshold,
		TopK:             20,
	}, truth
}

func TestEnuMinerSmoke(t *testing.T) {
	p, truth := buildProblem(t, 7)
	res, err := enuminer.New(enuminer.Config{}).Mine(p)
	if err != nil {
		t.Fatalf("EnuMiner: %v", err)
	}
	if len(res.Rules) == 0 {
		t.Fatalf("EnuMiner found no rules (explored %d)", res.Explored)
	}
	t.Logf("EnuMiner: %d rules, explored %d", len(res.Rules), res.Explored)
	for i, r := range res.Rules[:minInt(3, len(res.Rules))] {
		t.Logf("  #%d U=%.2f S=%d C=%.2f Q=%.2f  %s",
			i, r.Measures.Utility, r.Measures.Support,
			r.Measures.Certainty, r.Measures.Quality,
			r.Rule.String(p.Input, p.Master.Schema()))
	}

	ev := p.NewEvaluator()
	fixes := repair.Apply(ev, res.RuleList())
	prf := metrics.Weighted(fixes.Pred, truth)
	t.Logf("EnuMiner repair: covered=%d P=%.3f R=%.3f F1=%.3f",
		fixes.Covered, prf.Precision, prf.Recall, prf.F1)
	if prf.F1 < 0.3 {
		t.Errorf("EnuMiner repair F1 = %.3f, want >= 0.3", prf.F1)
	}
}

func TestRLMinerSmoke(t *testing.T) {
	p, truth := buildProblem(t, 7)
	m := rlminer.New(rlminer.Config{TrainSteps: 3000, Seed: 11})
	res, err := m.Mine(p)
	if err != nil {
		t.Fatalf("RLMiner: %v", err)
	}
	if len(res.Rules) == 0 {
		t.Fatalf("RLMiner found no rules (explored %d)", res.Explored)
	}
	st := m.Stats()
	t.Logf("RLMiner: %d rules, explored %d, episodes %d, infer steps %d",
		len(res.Rules), res.Explored, st.Episodes, st.InferenceSteps)
	for i, r := range res.Rules[:minInt(3, len(res.Rules))] {
		t.Logf("  #%d U=%.2f S=%d C=%.2f Q=%.2f  %s",
			i, r.Measures.Utility, r.Measures.Support,
			r.Measures.Certainty, r.Measures.Quality,
			r.Rule.String(p.Input, p.Master.Schema()))
	}

	ev := p.NewEvaluator()
	fixes := repair.Apply(ev, res.RuleList())
	prf := metrics.Weighted(fixes.Pred, truth)
	t.Logf("RLMiner repair: covered=%d P=%.3f R=%.3f F1=%.3f",
		fixes.Covered, prf.Precision, prf.Recall, prf.F1)
	if prf.F1 < 0.25 {
		t.Errorf("RLMiner repair F1 = %.3f, want >= 0.25", prf.F1)
	}
	_ = relation.Null
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
