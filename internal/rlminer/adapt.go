package rlminer

import (
	"math/rand"

	"erminer/internal/core"
	"erminer/internal/detrand"
	"erminer/internal/nn"
)

// spaceDimIDs lists a space's semantic dimension identities in order.
func spaceDimIDs(s *core.Space) []string {
	out := make([]string, s.Dim())
	for d := range out {
		out[d] = s.DimID(d)
	}
	return out
}

// adaptNetwork transfers a value network trained on the space whose
// dimension identities are oldIDs to newSpace. When the enriched data
// leaves the refinement space unchanged the network is cloned as-is.
// Otherwise a new network with the new input and output widths is built;
// weights of dimensions present in both spaces (matched by DimID) are
// copied, and genuinely new dimensions keep their fresh Xavier
// initialisation. Hidden layers carry over unchanged — they are
// dimension-agnostic feature extractors.
func adaptNetwork(rng *detrand.RNG, old *nn.MLP, oldIDs []string, newSpace *core.Space) *nn.MLP {
	if oldIDs == nil {
		return old.Clone()
	}
	newIDs := spaceDimIDs(newSpace)
	oldIn, newIn := len(oldIDs), newSpace.Dim()
	if oldIn == newIn && sameIDs(oldIDs, newIDs) {
		return old.Clone()
	}

	sizes := old.Sizes()
	newSizes := append([]int(nil), sizes...)
	newSizes[0] = newIn
	newSizes[len(newSizes)-1] = newIn + 1 // actions = dims + stop
	fresh := nn.NewMLP(rand.New(rng), newSizes...)

	// Map new dimension index -> old dimension index.
	oldByID := make(map[string]int, oldIn)
	for d, id := range oldIDs {
		oldByID[id] = d
	}
	dimMap := make([]int, newIn)
	for d := 0; d < newIn; d++ {
		if od, ok := oldByID[newIDs[d]]; ok {
			dimMap[d] = od
		} else {
			dimMap[d] = -1
		}
	}

	oldParams := old.Params()
	newParams := fresh.Params()

	// First Dense: W is [in × h] — remap rows; B copies unchanged.
	oldW0, newW0 := oldParams[0].Value, newParams[0].Value
	for d := 0; d < newIn; d++ {
		if od := dimMap[d]; od >= 0 {
			copy(newW0.Row(d), oldW0.Row(od))
		}
	}
	copy(newParams[1].Value.Data, oldParams[1].Value.Data)

	// Middle layers copy verbatim.
	for i := 2; i < len(oldParams)-2; i++ {
		copy(newParams[i].Value.Data, oldParams[i].Value.Data)
	}

	// Last Dense: W is [h × out] — remap columns; B likewise. The stop
	// action is the final column in both.
	oldWL, newWL := oldParams[len(oldParams)-2].Value, newParams[len(newParams)-2].Value
	oldBL, newBL := oldParams[len(oldParams)-1].Value, newParams[len(newParams)-1].Value
	h := oldWL.Rows
	for d := 0; d < newIn; d++ {
		if od := dimMap[d]; od >= 0 {
			for r := 0; r < h; r++ {
				newWL.Set(r, d, oldWL.At(r, od))
			}
			newBL.Set(0, d, oldBL.At(0, od))
		}
	}
	for r := 0; r < h; r++ {
		newWL.Set(r, newIn, oldWL.At(r, oldIn))
	}
	newBL.Set(0, newIn, oldBL.At(0, oldIn))

	return fresh
}

func sameIDs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
