package rlminer

import (
	"os"
	"path/filepath"
	"sync"
	"time"

	"testing"

	"erminer/internal/clock"
	"erminer/internal/core"
	"erminer/internal/rl"
)

var fixedClock = clock.Fixed(time.Unix(1700000000, 0))

// copyFileAtStep returns a Progress hook that snapshots the checkpoint
// file one step after it was written (the write for step k happens
// between the Progress calls for k and k+1).
func copyFileAtStep(t *testing.T, src, dst string, k int) func(step, total int) {
	t.Helper()
	var once sync.Once
	return func(step, total int) {
		if step != k+1 {
			return
		}
		once.Do(func() {
			data, err := os.ReadFile(src)
			if err != nil {
				t.Errorf("checkpoint not on disk at step %d: %v", step, err)
				return
			}
			if err := os.WriteFile(dst, data, 0o644); err != nil {
				t.Error(err)
			}
		})
	}
}

func requireSameResults(t *testing.T, label string, a, b *core.ResultSet) {
	t.Helper()
	if a.Explored != b.Explored {
		t.Errorf("%s: Explored %d vs %d", label, a.Explored, b.Explored)
	}
	if len(a.Rules) != len(b.Rules) {
		t.Fatalf("%s: rule counts %d vs %d", label, len(a.Rules), len(b.Rules))
	}
	for i := range a.Rules {
		ma, mb := a.Rules[i].Measures, b.Rules[i].Measures
		if a.Rules[i].Rule.Key() != b.Rules[i].Rule.Key() ||
			ma.Support != mb.Support || ma.Certainty != mb.Certainty ||
			ma.Quality != mb.Quality || ma.Utility != mb.Utility {
			t.Errorf("%s: rule %d differs", label, i)
		}
	}
}

func requireSameStats(t *testing.T, label string, a, b Stats) {
	t.Helper()
	if a.TrainSteps != b.TrainSteps || a.Episodes != b.Episodes ||
		a.InferenceSteps != b.InferenceSteps || a.MeanLoss != b.MeanLoss ||
		a.TrainTime != b.TrainTime || a.InferTime != b.InferTime {
		t.Errorf("%s: stats differ:\nA: %+v\nB: %+v", label, a, b)
	}
	if len(a.EpisodeRewards) != len(b.EpisodeRewards) {
		t.Fatalf("%s: learning curves have %d vs %d episodes", label, len(a.EpisodeRewards), len(b.EpisodeRewards))
	}
	for i := range a.EpisodeRewards {
		if a.EpisodeRewards[i] != b.EpisodeRewards[i] {
			t.Errorf("%s: episode reward %d: %g vs %g", label, i, a.EpisodeRewards[i], b.EpisodeRewards[i])
		}
	}
}

// TestCheckpointResumeBitIdentical is the tentpole guarantee: a run
// killed at step k and resumed in a fresh Miner produces bit-identical
// rules, measures, and Stats to the uninterrupted run — at several k,
// across uniform replay, prioritized replay, and Double-DQN.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	agentCfgs := map[string]rl.Config{
		"uniform":     {Warmup: 24, BatchSize: 8, TargetSync: 25, Hidden: []int{16}, ReplayCapacity: 256},
		"prioritized": {Warmup: 24, BatchSize: 8, TargetSync: 25, Hidden: []int{16}, ReplayCapacity: 256, PrioritizedAlpha: 0.6},
		"double":      {Warmup: 24, BatchSize: 8, TargetSync: 25, Hidden: []int{16}, ReplayCapacity: 256, DoubleDQN: true},
	}
	const steps = 220
	for name, acfg := range agentCfgs {
		t.Run(name, func(t *testing.T) {
			base := Config{Agent: acfg, TrainSteps: steps, Seed: 31, Clock: fixedClock}
			baseline := New(base)
			want, err := baseline.Mine(covidProblem(t, 400, 31))
			if err != nil {
				t.Fatal(err)
			}

			for _, k := range []int{40, 111, 200} {
				dir := t.TempDir()
				ckPath := filepath.Join(dir, "run.ckpt")
				savedPath := filepath.Join(dir, "killed-at-k.ckpt")

				cfg := base
				cfg.CheckpointPath = ckPath
				cfg.CheckpointEverySteps = k
				cfg.Progress = copyFileAtStep(t, ckPath, savedPath, k)
				// The checkpointing run itself must not be perturbed by the
				// checkpoint writes.
				ckRun := New(cfg)
				got, err := ckRun.Mine(covidProblem(t, 400, 31))
				if err != nil {
					t.Fatal(err)
				}
				requireSameResults(t, "checkpointing run", want, got)

				ck, err := ReadCheckpointFile(savedPath)
				if err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				if ck.Step() != k || ck.TotalSteps() != steps || ck.Name() != "RLMiner" {
					t.Fatalf("k=%d: checkpoint header %q %d/%d", k, ck.Name(), ck.Step(), ck.TotalSteps())
				}

				resumed := New(base)
				res, err := resumed.ResumeMine(covidProblem(t, 400, 31), ck)
				if err != nil {
					t.Fatalf("k=%d: ResumeMine: %v", k, err)
				}
				requireSameResults(t, name, want, res)
				requireSameStats(t, name, baseline.Stats(), resumed.Stats())
			}
		})
	}
}

// TestCheckpointResumeFineTuned is the RLMiner-ft leg of the guarantee:
// kill/resume mid-fine-tune reproduces the uninterrupted fine-tune.
func TestCheckpointResumeFineTuned(t *testing.T) {
	scratch := New(Config{TrainSteps: 300, Seed: 41, Clock: fixedClock})
	if _, err := scratch.Mine(covidProblem(t, 400, 41)); err != nil {
		t.Fatal(err)
	}

	const ftSteps = 150
	base := Config{FineTuneSteps: ftSteps, Seed: 42, Clock: fixedClock}
	baseline := New(base)
	want, err := baseline.MineFineTuned(covidProblem(t, 400, 41), scratch)
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{30, 77, 120} {
		dir := t.TempDir()
		ckPath := filepath.Join(dir, "ft.ckpt")
		savedPath := filepath.Join(dir, "ft-killed.ckpt")

		cfg := base
		cfg.CheckpointPath = ckPath
		cfg.CheckpointEverySteps = k
		cfg.Progress = copyFileAtStep(t, ckPath, savedPath, k)
		if _, err := New(cfg).MineFineTuned(covidProblem(t, 400, 41), scratch); err != nil {
			t.Fatal(err)
		}

		ck, err := ReadCheckpointFile(savedPath)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if ck.Name() != "RLMiner-ft" {
			t.Fatalf("k=%d: checkpoint name %q", k, ck.Name())
		}

		resumed := New(base)
		res, err := resumed.ResumeMine(covidProblem(t, 400, 41), ck)
		if err != nil {
			t.Fatalf("k=%d: ResumeMine: %v", k, err)
		}
		if resumed.Name() != "RLMiner-ft" {
			t.Errorf("k=%d: resumed miner name %q", k, resumed.Name())
		}
		requireSameResults(t, "ft", want, res)
		requireSameStats(t, "ft", baseline.Stats(), resumed.Stats())
	}
}

// TestCheckpointWallClockTrigger drives the periodic checkpointer with
// an artificial advancing clock.
func TestCheckpointWallClockTrigger(t *testing.T) {
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "run.ckpt")
	tick := 0
	advancing := clock.Clock(func() time.Time {
		tick++
		return time.Unix(1700000000, 0).Add(time.Duration(tick) * time.Second)
	})
	m := New(Config{TrainSteps: 60, Seed: 51, Clock: advancing,
		CheckpointPath: ckPath, CheckpointEvery: time.Second})
	if _, err := m.Mine(covidProblem(t, 400, 51)); err != nil {
		t.Fatal(err)
	}
	ck, err := ReadCheckpointFile(ckPath)
	if err != nil {
		t.Fatalf("periodic checkpointer never wrote: %v", err)
	}
	if ck.Step() <= 0 || ck.Step() >= 60 {
		t.Errorf("checkpoint at step %d, want mid-run", ck.Step())
	}
}

// TestTruncatedEpisodeNotCounted pins the learning-curve bugfix: a final
// episode cut short by the step budget must not contribute a partial
// reward to Stats.EpisodeRewards.
func TestTruncatedEpisodeNotCounted(t *testing.T) {
	p := covidProblem(t, 400, 61)
	p.TopK = 50 // far more than 4 steps can discover: the episode cannot end
	m := New(Config{TrainSteps: 4, Seed: 61, Clock: fixedClock})
	if _, err := m.Mine(p); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.TrainSteps != 4 {
		t.Errorf("TrainSteps = %d", st.TrainSteps)
	}
	if st.Episodes != 0 || len(st.EpisodeRewards) != 0 {
		t.Errorf("truncated episode leaked into stats: Episodes=%d, rewards=%v",
			st.Episodes, st.EpisodeRewards)
	}
}

func TestReadCheckpointFileRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.ckpt")
	if err := os.WriteFile(path, []byte("definitely not gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpointFile(path); err == nil {
		t.Error("garbage checkpoint accepted")
	}
	if _, err := ReadCheckpointFile(filepath.Join(dir, "missing.ckpt")); err == nil {
		t.Error("missing checkpoint accepted")
	}
}

// TestResumeRejectsMismatchedSpace: resuming against a problem whose
// refinement space differs from the checkpoint's must fail loudly, not
// silently mis-train.
func TestResumeRejectsMismatchedSpace(t *testing.T) {
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "run.ckpt")
	cfg := Config{TrainSteps: 80, Seed: 71, Clock: fixedClock,
		CheckpointPath: ckPath, CheckpointEverySteps: 40}
	if _, err := New(cfg).Mine(covidProblem(t, 400, 71)); err != nil {
		t.Fatal(err)
	}
	ck, err := ReadCheckpointFile(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	// A different generator seed yields different dictionaries, hence a
	// different refinement space.
	if _, err := New(Config{Seed: 71, Clock: fixedClock}).ResumeMine(covidProblem(t, 400, 99), ck); err == nil {
		t.Error("mismatched space accepted")
	}
}
