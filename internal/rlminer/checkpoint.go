package rlminer

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"erminer/internal/mdp"
	"erminer/internal/rl"
)

// Checkpoint is the crash-safe snapshot of an in-flight RLMiner run:
// the complete agent state (networks, optimiser moments, replay buffer,
// RNG, counters), the environment state (rule tree, reward cache,
// cross-episode discoveries, evaluator stats), the step position, and
// the partial Stats accumulated so far. Resuming from it with
// Miner.ResumeMine reproduces the uninterrupted run bit-for-bit.
type Checkpoint struct {
	name           string
	seed           int64
	dimIDs         []string
	step           int
	totalSteps     int
	episodes       int
	episodeRewards []float64
	episodeReward  float64 // partial reward of the in-flight episode
	inEpisode      bool
	lossSum        float64
	lossN          int
	trainTime      time.Duration
	agentState     []byte
	envState       []byte
}

// Name returns the miner variant that wrote the checkpoint ("RLMiner"
// or "RLMiner-ft").
func (c *Checkpoint) Name() string { return c.name }

// Step returns the training step the checkpoint was taken at.
func (c *Checkpoint) Step() int { return c.step }

// TotalSteps returns the run's full training budget.
func (c *Checkpoint) TotalSteps() int { return c.totalSteps }

// checkpointWireVersion numbers the checkpoint gob format. Bump it on
// any shape change so ermvet's wiredrift gate can tell a deliberate
// format break from an accidental one.
const checkpointWireVersion = 1

// checkpointWire is the gob format.
//
//ermvet:wire
type checkpointWire struct {
	Name           string
	Seed           int64
	DimIDs         []string
	Step           int
	TotalSteps     int
	Episodes       int
	EpisodeRewards []float64
	EpisodeReward  float64
	InEpisode      bool
	LossSum        float64
	LossN          int
	TrainTime      time.Duration
	AgentState     []byte
	EnvState       []byte
}

// checkpoint captures the run's current state as a Checkpoint.
func (m *Miner) checkpoint(env *mdp.Env, agent *rl.Agent, step, total int,
	episodeReward float64, inEpisode bool, lossSum float64, lossN int,
	trainTime time.Duration) (*Checkpoint, error) {
	agentState, err := agent.SaveState()
	if err != nil {
		return nil, err
	}
	envState, err := env.SaveState()
	if err != nil {
		return nil, err
	}
	return &Checkpoint{
		name:           m.name,
		seed:           m.cfg.Seed,
		dimIDs:         spaceDimIDs(env.Space()),
		step:           step,
		totalSteps:     total,
		episodes:       m.stats.Episodes,
		episodeRewards: append([]float64(nil), m.stats.EpisodeRewards...),
		episodeReward:  episodeReward,
		inEpisode:      inEpisode,
		lossSum:        lossSum,
		lossN:          lossN,
		trainTime:      trainTime,
		agentState:     agentState,
		envState:       envState,
	}, nil
}

// Save serialises the checkpoint.
func (c *Checkpoint) Save(w io.Writer) error {
	wire := checkpointWire{
		Name:           c.name,
		Seed:           c.seed,
		DimIDs:         c.dimIDs,
		Step:           c.step,
		TotalSteps:     c.totalSteps,
		Episodes:       c.episodes,
		EpisodeRewards: c.episodeRewards,
		EpisodeReward:  c.episodeReward,
		InEpisode:      c.inEpisode,
		LossSum:        c.lossSum,
		LossN:          c.lossN,
		TrainTime:      c.trainTime,
		AgentState:     c.agentState,
		EnvState:       c.envState,
	}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("rlminer: saving checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint saved with Save.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var wire checkpointWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("rlminer: loading checkpoint: %w", err)
	}
	if wire.Step < 0 || wire.TotalSteps <= 0 || wire.Step > wire.TotalSteps {
		return nil, fmt.Errorf("rlminer: checkpoint step %d/%d out of range", wire.Step, wire.TotalSteps)
	}
	if len(wire.AgentState) == 0 || len(wire.EnvState) == 0 {
		return nil, fmt.Errorf("rlminer: checkpoint missing agent or environment state")
	}
	return &Checkpoint{
		name:           wire.Name,
		seed:           wire.Seed,
		dimIDs:         wire.DimIDs,
		step:           wire.Step,
		totalSteps:     wire.TotalSteps,
		episodes:       wire.Episodes,
		episodeRewards: wire.EpisodeRewards,
		episodeReward:  wire.EpisodeReward,
		inEpisode:      wire.InEpisode,
		lossSum:        wire.LossSum,
		lossN:          wire.LossN,
		trainTime:      wire.TrainTime,
		agentState:     wire.AgentState,
		envState:       wire.EnvState,
	}, nil
}

// WriteFile writes the checkpoint to path atomically: the bytes go to a
// temp file in the same directory, are fsynced, and the file is renamed
// over path. A crash mid-write leaves the previous checkpoint intact; a
// reader never observes a partial file.
func (c *Checkpoint) WriteFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("rlminer: creating checkpoint temp file: %w", err)
	}
	//ermvet:ignore errdrop best-effort temp cleanup; after a successful rename the file is gone
	defer os.Remove(tmp.Name())
	if err := c.Save(tmp); err != nil {
		//ermvet:ignore errdrop the save error is already being returned; close failure is secondary
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		//ermvet:ignore errdrop the sync error is already being returned; close failure is secondary
		tmp.Close()
		return fmt.Errorf("rlminer: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("rlminer: closing checkpoint temp file: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("rlminer: publishing checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpointFile loads a checkpoint written with WriteFile.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("rlminer: opening checkpoint: %w", err)
	}
	//ermvet:ignore errdrop read-only descriptor; closing cannot lose data
	defer f.Close()
	return LoadCheckpoint(f)
}
