package rlminer

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"erminer/internal/nn"
)

// SavedModel is a persisted RLMiner value network together with the
// semantic identities of the refinement-space dimensions it was trained
// on. The identities let a later process adapt the network to an
// enriched dataset's (possibly wider) space before fine-tuning.
type SavedModel struct {
	net    *nn.MLP
	dimIDs []string
}

// savedModelWireVersion numbers the saved-model gob format; bump on any
// shape change (wiredrift gates it).
const savedModelWireVersion = 1

// savedModelWire is the gob format.
//
//ermvet:wire
type savedModelWire struct {
	Net    []byte
	DimIDs []string
}

// SaveModel persists the trained value network. It errors before Mine
// has produced one.
func (m *Miner) SaveModel(w io.Writer) error {
	if m.net == nil || m.space == nil {
		return fmt.Errorf("rlminer: no trained model to save (run Mine first)")
	}
	var netBuf bytes.Buffer
	if err := m.net.Save(&netBuf); err != nil {
		return err
	}
	wire := savedModelWire{
		Net:    netBuf.Bytes(),
		DimIDs: spaceDimIDs(m.space),
	}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("rlminer: saving model: %w", err)
	}
	return nil
}

// LoadModel reads a model persisted with SaveModel.
func LoadModel(r io.Reader) (*SavedModel, error) {
	var wire savedModelWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("rlminer: loading model: %w", err)
	}
	net, err := nn.LoadMLP(bytes.NewReader(wire.Net))
	if err != nil {
		return nil, err
	}
	if sizes := net.Sizes(); sizes[0] != len(wire.DimIDs) {
		return nil, fmt.Errorf("rlminer: model input width %d does not match %d dimension ids",
			sizes[0], len(wire.DimIDs))
	}
	return &SavedModel{net: net, dimIDs: wire.DimIDs}, nil
}

// DimCount returns the number of refinement dimensions the model was
// trained on.
func (s *SavedModel) DimCount() int { return len(s.dimIDs) }
