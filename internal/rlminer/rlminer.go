// Package rlminer implements RLMiner (paper Alg. 3), the reinforcement-
// learning editing-rule discovery algorithm, and RLMiner-ft, its
// fine-tuning variant for incrementally enriched data (§V-D3).
//
// RLMiner trains a DQN agent over the rule-discovery MDP of package mdp
// for a fixed number of environment steps (5,000 by default, following
// the paper's §V-D4 protocol of training by steps rather than episodes),
// then runs one greedy inference episode whose discovered rules —
// filtered to the non-redundant top-K by utility — are the result.
package rlminer

import (
	"fmt"
	"time"

	"erminer/internal/clock"
	"erminer/internal/core"
	"erminer/internal/detrand"
	"erminer/internal/mdp"
	"erminer/internal/nn"
	"erminer/internal/rl"
)

// Config tunes RLMiner.
type Config struct {
	// Env configures the MDP environment.
	Env mdp.Config
	// Agent configures the DQN.
	Agent rl.Config
	// TrainSteps is the total training step budget N. Zero means 5000.
	TrainSteps int
	// FineTuneSteps is the budget used by MineFineTuned. Zero means 1000.
	FineTuneSteps int
	// InferenceMaxSteps bounds the greedy inference episode. Zero means
	// 300 (the paper reports ~150 steps to mine top-K rules, §V-D4).
	InferenceMaxSteps int
	// InferenceOnly restricts the final selection to the rules the
	// greedy inference episode discovers. By default the selection pools
	// the above-threshold rules discovered across every training episode
	// as well — the reward cache R_Σ already holds their measures, and
	// pooling markedly reduces the seed-to-seed variance the paper notes
	// for RLMiner (§V-D2) without extra evaluation cost.
	InferenceOnly bool
	// Seed drives all randomness.
	Seed int64
	// Clock supplies the wall-clock readings behind Stats.TrainTime and
	// Stats.InferTime, and drives the periodic checkpointer. Nil means
	// the system clock. Everything else in a run is a pure function of
	// the problem and Seed.
	Clock clock.Clock
	// CheckpointPath, when non-empty, makes training write crash-safe
	// checkpoints (atomic temp-file+rename) to this file. A run resumed
	// from such a checkpoint with ResumeMine produces bit-identical
	// results to the uninterrupted run.
	CheckpointPath string
	// CheckpointEvery is the wall-clock period between checkpoint writes,
	// measured on Clock. Zero with CheckpointPath set (and no
	// CheckpointEverySteps) means 30s.
	CheckpointEvery time.Duration
	// CheckpointEverySteps, when positive, additionally checkpoints every
	// that many training steps — a deterministic trigger for tests and CI.
	CheckpointEverySteps int
	// Progress, when non-nil, is called after every completed training
	// step with the cumulative step count and the total budget.
	Progress func(step, total int)
}

func (c Config) trainSteps() int {
	if c.TrainSteps > 0 {
		return c.TrainSteps
	}
	return 5000
}

func (c Config) fineTuneSteps() int {
	if c.FineTuneSteps > 0 {
		return c.FineTuneSteps
	}
	return 1000
}

func (c Config) clock() clock.Clock {
	if c.Clock != nil {
		return c.Clock
	}
	return clock.System()
}

func (c Config) inferenceMaxSteps() int {
	if c.InferenceMaxSteps > 0 {
		return c.InferenceMaxSteps
	}
	return 300
}

// Stats reports one mining run's training and inference effort
// (paper Figure 12).
type Stats struct {
	// TrainSteps and Episodes count the training phase.
	TrainSteps int
	Episodes   int
	// TrainTime and InferTime are wall-clock durations.
	TrainTime time.Duration
	InferTime time.Duration
	// InferenceSteps counts the greedy episode's steps.
	InferenceSteps int
	// EpisodeRewards holds the summed reward of each training episode,
	// in order — the learning curve.
	EpisodeRewards []float64
	// MeanLoss is the mean Bellman error over training.
	MeanLoss float64
}

// Miner is the RL-based discovery algorithm.
type Miner struct {
	cfg   Config
	name  string
	net   *nn.MLP
	space *core.Space
	stats Stats
}

// New returns a fresh RLMiner (training from scratch).
func New(cfg Config) *Miner { return &Miner{cfg: cfg, name: "RLMiner"} }

// Name implements core.Miner.
func (m *Miner) Name() string { return m.name }

// Network returns the trained value network (nil before Mine).
func (m *Miner) Network() *nn.MLP { return m.net }

// TrainedSpace returns the refinement space the network was trained on.
func (m *Miner) TrainedSpace() *core.Space { return m.space }

// Stats returns the last run's statistics.
func (m *Miner) Stats() Stats { return m.stats }

// Mine implements core.Miner: train from scratch, then infer.
func (m *Miner) Mine(p *core.Problem) (*core.ResultSet, error) {
	return m.run(p, nil, nil, m.cfg.trainSteps(), nil)
}

// ResumeMine continues an interrupted run from a checkpoint and carries
// it through to the final result. The problem and Config must match the
// ones the checkpointing run used; the refinement space is verified
// dimension-by-dimension. The resumed run is bit-identical to one that
// was never interrupted, except that evaluator index caches start cold
// (Stats.Evaluations and the mined rules are unaffected; see
// mdp.Env.SaveState).
func (m *Miner) ResumeMine(p *core.Problem, ck *Checkpoint) (*core.ResultSet, error) {
	if ck == nil {
		return nil, fmt.Errorf("rlminer: nil checkpoint")
	}
	m.name = ck.name
	return m.run(p, nil, nil, ck.totalSteps, ck)
}

// MineFineTuned is RLMiner-ft: it transfers a previously trained network
// (from a Miner that ran on the pre-enrichment data) and fine-tunes it
// for a reduced step budget on the enriched problem. The network is
// adapted dimension-by-dimension when the enriched data changes the
// refinement space.
func (m *Miner) MineFineTuned(p *core.Problem, prev *Miner) (*core.ResultSet, error) {
	m.name = "RLMiner-ft"
	return m.run(p, prev.net, spaceDimIDs(prev.space), m.cfg.fineTuneSteps(), nil)
}

// MineFineTunedFromSaved is MineFineTuned for a model persisted with
// SaveModel — e.g. fine-tuning in a later process on enriched data.
func (m *Miner) MineFineTunedFromSaved(p *core.Problem, saved *SavedModel) (*core.ResultSet, error) {
	m.name = "RLMiner-ft"
	return m.run(p, saved.net, saved.dimIDs, m.cfg.fineTuneSteps(), nil)
}

func (m *Miner) run(p *core.Problem, prevNet *nn.MLP, prevDimIDs []string, steps int, ck *Checkpoint) (*core.ResultSet, error) {
	env, err := mdp.NewEnv(p, m.cfg.Env)
	if err != nil {
		return nil, err
	}

	m.stats = Stats{}
	var agent *rl.Agent
	var lossSum float64
	var lossN int
	var prevTrainTime time.Duration
	var state []float64
	var mask []bool
	n := 0
	episodeReward := 0.0
	inEpisode := false

	if ck != nil {
		if !sameIDs(ck.dimIDs, spaceDimIDs(env.Space())) {
			return nil, fmt.Errorf("rlminer: checkpoint refinement space does not match the problem's")
		}
		agent, err = rl.LoadAgentState(ck.agentState)
		if err != nil {
			return nil, err
		}
		if err := env.RestoreState(ck.envState); err != nil {
			return nil, err
		}
		n = ck.step
		m.stats.Episodes = ck.episodes
		m.stats.EpisodeRewards = append([]float64(nil), ck.episodeRewards...)
		episodeReward = ck.episodeReward
		inEpisode = ck.inEpisode
		lossSum, lossN = ck.lossSum, ck.lossN
		prevTrainTime = ck.trainTime
		if inEpisode {
			state, mask = env.State(), env.Mask()
		}
	} else {
		rng := detrand.New(m.cfg.Seed)
		agentCfg := m.cfg.Agent
		if agentCfg.EpsDecaySteps == 0 {
			agentCfg.EpsDecaySteps = steps * 6 / 10
		}
		if agentCfg.Hidden == nil {
			// Two hidden layers of 64 units match the paper's quality at the
			// problem's state widths while halving CPU training time.
			agentCfg.Hidden = []int{64, 64}
		}
		if prevNet != nil {
			net := adaptNetwork(rng, prevNet, prevDimIDs, env.Space())
			if agentCfg.EpsStart == 0 {
				// Fine-tuning explores less: the policy is already good.
				agentCfg.EpsStart = 0.2
			}
			agent = rl.NewAgentFrom(rng, net, agentCfg)
		} else {
			agent = rl.NewAgent(rng, env.StateDim(), env.ActionDim(), agentCfg)
		}
	}

	now := m.cfg.clock()
	start := now()
	ckEvery := m.cfg.CheckpointEvery
	if m.cfg.CheckpointPath != "" && ckEvery == 0 && m.cfg.CheckpointEverySteps == 0 {
		ckEvery = 30 * time.Second
	}
	lastCk := start

	// One iteration per training step: episode boundaries are handled
	// inside the loop so the run can checkpoint at any step with fully
	// consistent accounting (an episode is counted exactly when it ends).
	for n < steps {
		if !inEpisode {
			state, mask = env.Reset()
			episodeReward = 0
			inEpisode = true
		}
		a := agent.SelectAction(state, mask, agent.Epsilon())
		res := env.Step(a)
		agent.Observe(rl.Transition{
			State:    state,
			Action:   a,
			Reward:   res.Reward,
			Next:     res.State,
			NextMask: res.Mask,
			Done:     res.Done,
		})
		if l, stepped := agent.TrainStep(); stepped {
			lossSum += l
			lossN++
		}
		state, mask = res.State, res.Mask
		episodeReward += res.Reward
		n++
		if env.Done() {
			inEpisode = false
			m.stats.Episodes++
			m.stats.EpisodeRewards = append(m.stats.EpisodeRewards, episodeReward)
		}
		if m.cfg.Progress != nil {
			m.cfg.Progress(n, steps)
		}
		if m.cfg.CheckpointPath != "" && n < steps {
			write := m.cfg.CheckpointEverySteps > 0 && n%m.cfg.CheckpointEverySteps == 0
			if !write && ckEvery > 0 {
				if t := now(); t.Sub(lastCk) >= ckEvery {
					write = true
				}
			}
			if write {
				c, err := m.checkpoint(env, agent, n, steps, episodeReward, inEpisode,
					lossSum, lossN, prevTrainTime+now().Sub(start))
				if err != nil {
					return nil, err
				}
				if err := c.WriteFile(m.cfg.CheckpointPath); err != nil {
					return nil, err
				}
				lastCk = now()
			}
		}
	}
	// A final episode cut short by the step budget is NOT counted: its
	// partial reward would corrupt the tail of the learning curve
	// (Stats.EpisodeRewards is the paper's Fig. 12 input).
	m.stats.TrainSteps = n
	m.stats.TrainTime = prevTrainTime + now().Sub(start)
	if lossN > 0 {
		m.stats.MeanLoss = lossSum / float64(lossN)
	}

	// Greedy inference episode (ε = 0).
	inferStart := now()
	state, mask = env.Reset()
	inferSteps := 0
	for !env.Done() && inferSteps < m.cfg.inferenceMaxSteps() {
		a := agent.SelectAction(state, mask, 0)
		res := env.Step(a)
		state, mask = res.State, res.Mask
		inferSteps++
	}
	m.stats.InferTime = now().Sub(inferStart)
	m.stats.InferenceSteps = inferSteps

	found := env.AllFound()
	if m.cfg.InferenceOnly {
		found = env.Found()
	}

	m.net = agent.Network()
	m.space = env.Space()

	return &core.ResultSet{
		Rules:    core.SelectTopK(found, p.K()),
		Explored: env.Evaluator().Stats.Evaluations,
	}, nil
}
