package rlminer

import (
	"math/rand"

	"erminer/internal/detrand"
	"testing"

	"erminer/internal/core"
	"erminer/internal/datagen"
	"erminer/internal/errgen"
	"erminer/internal/nn"
	"erminer/internal/rule"
	"erminer/internal/schema"

	"erminer/internal/relation"
)

func covidProblem(t testing.TB, inputSize int, seed int64) *core.Problem {
	t.Helper()
	ds, err := datagen.Covid().Build(datagen.DefaultSpec(inputSize, 600, seed))
	if err != nil {
		t.Fatal(err)
	}
	errgen.Inject(ds.Input, errgen.Config{Rate: 0.08, Rng: rand.New(rand.NewSource(seed + 1))})
	return &core.Problem{
		Input:            ds.Input,
		Master:           ds.Master,
		Match:            ds.Match,
		Y:                ds.Y,
		Ym:               ds.Ym,
		SupportThreshold: ds.SupportThreshold,
		TopK:             15,
	}
}

func TestRLMinerDeterministicGivenSeed(t *testing.T) {
	p1 := covidProblem(t, 800, 3)
	p2 := covidProblem(t, 800, 3)
	m1 := New(Config{TrainSteps: 800, Seed: 5})
	m2 := New(Config{TrainSteps: 800, Seed: 5})
	r1, err := m1.Mine(p1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m2.Mine(p2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rules) != len(r2.Rules) {
		t.Fatalf("rule counts differ: %d vs %d", len(r1.Rules), len(r2.Rules))
	}
	for i := range r1.Rules {
		if r1.Rules[i].Rule.Key() != r2.Rules[i].Rule.Key() {
			t.Errorf("rule %d differs across identical seeded runs", i)
		}
	}
}

func TestRLMinerStatsPopulated(t *testing.T) {
	p := covidProblem(t, 800, 4)
	m := New(Config{TrainSteps: 600, Seed: 6})
	if _, err := m.Mine(p); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.TrainSteps != 600 {
		t.Errorf("TrainSteps = %d, want 600", st.TrainSteps)
	}
	if st.Episodes == 0 || len(st.EpisodeRewards) != st.Episodes {
		t.Errorf("episodes = %d, rewards = %d", st.Episodes, len(st.EpisodeRewards))
	}
	if st.TrainTime <= 0 || st.InferTime <= 0 {
		t.Error("durations not recorded")
	}
	if st.InferenceSteps == 0 {
		t.Error("inference did not run")
	}
	if m.Network() == nil || m.TrainedSpace() == nil {
		t.Error("trained artifacts not retained")
	}
}

func TestRLMinerRespectsSupportAndRedundancy(t *testing.T) {
	p := covidProblem(t, 800, 7)
	m := New(Config{TrainSteps: 1200, Seed: 8})
	res, err := m.Mine(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rules {
		if r.Measures.Support < p.SupportThreshold {
			t.Errorf("rule below η_s: %d", r.Measures.Support)
		}
		if r.Measures.Utility <= 0 {
			t.Errorf("non-positive utility rule returned: %g", r.Measures.Utility)
		}
	}
	for i, a := range res.Rules {
		for j, b := range res.Rules {
			if i != j && rule.Dominates(a.Rule, b.Rule) {
				t.Errorf("rule %d dominates rule %d", i, j)
			}
		}
	}
}

func TestRLMinerInferenceOnly(t *testing.T) {
	p := covidProblem(t, 800, 9)
	m := New(Config{TrainSteps: 800, Seed: 10, InferenceOnly: true})
	res, err := m.Mine(p)
	if err != nil {
		t.Fatal(err)
	}
	// Inference-only selection is a subset of what training explored.
	if len(res.Rules) > p.K() {
		t.Errorf("too many rules: %d", len(res.Rules))
	}
}

func TestMineFineTunedSameSpace(t *testing.T) {
	p1 := covidProblem(t, 800, 11)
	scratch := New(Config{TrainSteps: 1000, Seed: 12})
	if _, err := scratch.Mine(p1); err != nil {
		t.Fatal(err)
	}
	// Same data again: the space is identical, the network transfers
	// verbatim.
	p2 := covidProblem(t, 800, 11)
	ft := New(Config{FineTuneSteps: 300, Seed: 13})
	res, err := ft.MineFineTuned(p2, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if ft.Name() != "RLMiner-ft" {
		t.Errorf("name = %q", ft.Name())
	}
	if ft.Stats().TrainSteps != 300 {
		t.Errorf("fine-tune steps = %d, want 300", ft.Stats().TrainSteps)
	}
	if len(res.Rules) == 0 {
		t.Error("fine-tuned miner found nothing")
	}
}

func TestMineFineTunedGrownSpace(t *testing.T) {
	p1 := covidProblem(t, 600, 14)
	scratch := New(Config{TrainSteps: 800, Seed: 15})
	if _, err := scratch.Mine(p1); err != nil {
		t.Fatal(err)
	}
	// Enriched data: more rows, new domain values → wider space.
	p2 := covidProblem(t, 1400, 16)
	ft := New(Config{FineTuneSteps: 400, Seed: 17})
	res, err := ft.MineFineTuned(p2, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) == 0 {
		t.Error("fine-tuned miner found nothing on enriched data")
	}
	// The adapted network must match the new space's dimensions.
	sizes := ft.Network().Sizes()
	if sizes[0] != ft.TrainedSpace().Dim() {
		t.Errorf("network input %d != space %d", sizes[0], ft.TrainedSpace().Dim())
	}
	if sizes[len(sizes)-1] != ft.TrainedSpace().Dim()+1 {
		t.Errorf("network output %d != actions %d", sizes[len(sizes)-1], ft.TrainedSpace().Dim()+1)
	}
}

// TestAdaptNetworkPreservesMappedWeights builds two spaces that differ by
// one extra pattern value and checks weight transfer dimension by
// dimension.
func TestAdaptNetworkPreservesMappedWeights(t *testing.T) {
	build := func(extra bool) (*core.Problem, *core.Space) {
		pool := relation.NewPool()
		in := relation.NewSchema(
			relation.Attribute{Name: "A", Domain: "a"},
			relation.Attribute{Name: "Y", Domain: "y"},
		)
		ms := relation.NewSchema(
			relation.Attribute{Name: "A", Domain: "a"},
			relation.Attribute{Name: "Y", Domain: "y"},
		)
		input := relation.New(in, pool)
		master := relation.New(ms, pool)
		n := 10
		for i := 0; i < n; i++ {
			input.AppendRow([]string{"a0", "y0"})
			input.AppendRow([]string{"a1", "y1"})
			master.AppendRow([]string{"a0", "y0"})
			master.AppendRow([]string{"a1", "y1"})
		}
		if extra {
			for i := 0; i < n; i++ {
				input.AppendRow([]string{"a2", "y0"})
				master.AppendRow([]string{"a2", "y0"})
			}
		}
		p := &core.Problem{
			Input: input, Master: master,
			Match: schema.AutoMatch(in, ms),
			Y:     1, Ym: 1, SupportThreshold: 2,
		}
		return p, core.BuildSpace(p, core.SpaceConfig{MinValueCount: 2, MaxValueFrac: -1})
	}
	_, oldSpace := build(false)
	_, newSpace := build(true)
	if newSpace.Dim() <= oldSpace.Dim() {
		t.Fatalf("expected the space to grow: %d -> %d", oldSpace.Dim(), newSpace.Dim())
	}

	rng := rand.New(rand.NewSource(18))
	old := nn.NewMLP(rng, oldSpace.Dim(), 8, oldSpace.Dim()+1)
	adapted := adaptNetwork(detrand.New(19), old, spaceDimIDs(oldSpace), newSpace)

	sizes := adapted.Sizes()
	if sizes[0] != newSpace.Dim() || sizes[len(sizes)-1] != newSpace.Dim()+1 {
		t.Fatalf("adapted sizes = %v", sizes)
	}

	// Shared dimensions must carry their first-layer weights over.
	oldByID := make(map[string]int)
	for d := 0; d < oldSpace.Dim(); d++ {
		oldByID[oldSpace.DimID(d)] = d
	}
	oldW := old.Params()[0].Value
	newW := adapted.Params()[0].Value
	mapped := 0
	for d := 0; d < newSpace.Dim(); d++ {
		od, ok := oldByID[newSpace.DimID(d)]
		if !ok {
			continue
		}
		mapped++
		for j := 0; j < 8; j++ {
			if newW.At(d, j) != oldW.At(od, j) {
				t.Fatalf("weight not transferred for dim %d", d)
			}
		}
	}
	if mapped != oldSpace.Dim() {
		t.Errorf("mapped %d dims, want all %d old dims", mapped, oldSpace.Dim())
	}

	// The stop action's output weights transfer too.
	oldWL := old.Params()[2].Value
	newWL := adapted.Params()[2].Value
	for r := 0; r < 8; r++ {
		if newWL.At(r, newSpace.Dim()) != oldWL.At(r, oldSpace.Dim()) {
			t.Fatal("stop-action weights not transferred")
		}
	}
}

func TestAdaptNetworkIdenticalSpace(t *testing.T) {
	p := covidProblem(t, 400, 19)
	space := core.BuildSpace(p, core.SpaceConfig{MinValueCount: p.SupportThreshold})
	rng := rand.New(rand.NewSource(20))
	old := nn.NewMLP(rng, space.Dim(), 4, space.Dim()+1)
	adapted := adaptNetwork(detrand.New(20), old, spaceDimIDs(space), space)
	in := make([]float64, space.Dim())
	in[0] = 1
	a, b := old.Predict(in), adapted.Predict(in)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("identical-space adaptation changed predictions")
		}
	}
	// And it must be a copy, not the same network.
	old.Params()[0].Value.Data[0] += 1
	if old.Predict(in)[0] == adapted.Predict(in)[0] {
		t.Error("adaptation shares parameters")
	}
}

func TestAdaptNetworkNilSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	old := nn.NewMLP(rng, 3, 4, 4)
	if adaptNetwork(detrand.New(21), old, nil, nil) == old {
		t.Error("nil-space adaptation returned the same instance")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	if c.trainSteps() != 5000 || c.fineTuneSteps() != 1000 || c.inferenceMaxSteps() != 300 {
		t.Errorf("defaults: %d %d %d", c.trainSteps(), c.fineTuneSteps(), c.inferenceMaxSteps())
	}
}

func TestMineInvalidProblem(t *testing.T) {
	if _, err := New(Config{}).Mine(&core.Problem{}); err == nil {
		t.Fatal("invalid problem accepted")
	}
}
