package rlminer

import (
	"bytes"
	"testing"
)

func TestSaveLoadModelRoundTrip(t *testing.T) {
	p := covidProblem(t, 600, 30)
	m := New(Config{TrainSteps: 600, Seed: 31})
	if _, err := m.Mine(p); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	saved, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if saved.DimCount() != m.TrainedSpace().Dim() {
		t.Errorf("DimCount = %d, want %d", saved.DimCount(), m.TrainedSpace().Dim())
	}

	// Fine-tune in a "new process" on enriched data.
	p2 := covidProblem(t, 1000, 32)
	ft := New(Config{FineTuneSteps: 300, Seed: 33})
	res, err := ft.MineFineTunedFromSaved(p2, saved)
	if err != nil {
		t.Fatal(err)
	}
	if ft.Name() != "RLMiner-ft" {
		t.Errorf("name = %q", ft.Name())
	}
	if len(res.Rules) == 0 {
		t.Error("fine-tuning from a saved model found nothing")
	}
}

func TestSaveModelBeforeMine(t *testing.T) {
	var buf bytes.Buffer
	if err := New(Config{}).SaveModel(&buf); err == nil {
		t.Fatal("saving an untrained miner succeeded")
	}
}

func TestLoadModelGarbage(t *testing.T) {
	if _, err := LoadModel(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage decoded")
	}
}
