package repair

import (
	"sort"

	"erminer/internal/measure"
	"erminer/internal/relation"
	"erminer/internal/rule"
)

// Target is one dependent attribute with its discovered rule set, for
// multi-attribute chase repair.
type Target struct {
	// Y is the input attribute the rules fix.
	Y int
	// Rules is the discovered rule set for Y (all rules share Y).
	Rules []*rule.Rule
	// MinScore optionally requires the winning candidate's summed
	// certainty score to reach this value before the fix is applied;
	// zero applies every proposed fix.
	MinScore float64
}

// ChaseResult reports a chase run.
type ChaseResult struct {
	// Rounds is the number of passes until fixpoint (or the cap).
	Rounds int
	// Fixed counts cells changed, per target attribute.
	Fixed map[int]int
	// Total is the total number of cells changed.
	Total int
}

// Chase applies several targets' rule sets to the input relation
// iteratively, in the spirit of the certain-fix chase of Fan et al.
// (VLDB J. 2012) that editing rules were designed for: fixing one
// attribute can provide the evidence another rule needs (a repaired city
// lets a (city, date) rule fire), so single-pass application is not
// enough. Each round re-evaluates every target against the current state
// of the relation and writes the winning fixes; the chase stops when a
// round changes nothing or after maxRounds (a safety cap; 0 means 8).
//
// Termination is guaranteed: a cell is fixed at most once across the
// whole chase, so each round either changes at least one never-touched
// cell or terminates.
//
// The relation is modified in place.
func Chase(input, master *relation.Relation, targets []Target, maxRounds int) ChaseResult {
	if maxRounds <= 0 {
		maxRounds = 8
	}
	// Deterministic target order.
	ts := append([]Target(nil), targets...)
	sort.Slice(ts, func(i, j int) bool { return ts[i].Y < ts[j].Y })

	res := ChaseResult{Fixed: make(map[int]int)}
	touched := make(map[[2]int]bool) // (row, col) cells already fixed

	for round := 0; round < maxRounds; round++ {
		changed := 0
		for _, tgt := range ts {
			// The relation mutates between rounds, so each pass needs a
			// fresh evaluator (its master index is still cached within
			// the pass).
			ev := measure.NewEvaluator(input, master, nil)
			fixes := Apply(ev, tgt.Rules)
			for row := 0; row < input.NumRows(); row++ {
				p := fixes.Pred[row]
				if p == relation.Null || fixes.Score[row] < tgt.MinScore {
					continue
				}
				cell := [2]int{row, tgt.Y}
				if touched[cell] || input.Code(row, tgt.Y) == p {
					continue
				}
				input.SetCode(row, tgt.Y, p)
				touched[cell] = true
				res.Fixed[tgt.Y]++
				res.Total++
				changed++
			}
		}
		res.Rounds = round + 1
		if changed == 0 {
			break
		}
	}
	return res
}
