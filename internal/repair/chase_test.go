package repair

import (
	"testing"

	"erminer/internal/relation"
	"erminer/internal/rule"
)

// chaseFixture builds a two-stage dependency:
//
//	input:  K, M (mid), Y
//	master: K, M, Y  with FDs K → M and M → Y.
//
// One input tuple has both M and Y missing: fixing Y requires first
// fixing M from K — exactly the cascade the chase exists for.
func chaseFixture() (input, master *relation.Relation) {
	pool := relation.NewPool()
	in := relation.NewSchema(
		relation.Attribute{Name: "K", Domain: "k"},
		relation.Attribute{Name: "M", Domain: "m"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	ms := relation.NewSchema(
		relation.Attribute{Name: "K", Domain: "k"},
		relation.Attribute{Name: "M", Domain: "m"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	input = relation.New(in, pool)
	input.AppendRow([]string{"k1", "", ""})     // needs M then Y
	input.AppendRow([]string{"k2", "m2", "y2"}) // clean
	master = relation.New(ms, pool)
	master.AppendRow([]string{"k1", "m1", "y1"})
	master.AppendRow([]string{"k2", "m2", "y2"})
	return input, master
}

func TestChaseCascadesFixes(t *testing.T) {
	input, master := chaseFixture()
	ruleM := rule.New([]rule.AttrPair{{Input: 0, Master: 0}}, 1, 1, nil) // K → M
	ruleY := rule.New([]rule.AttrPair{{Input: 1, Master: 1}}, 2, 2, nil) // M → Y

	res := Chase(input, master, []Target{
		{Y: 1, Rules: []*rule.Rule{ruleM}},
		{Y: 2, Rules: []*rule.Rule{ruleY}},
	}, 0)

	if input.Value(0, 1) != "m1" {
		t.Errorf("M not fixed: %q", input.Value(0, 1))
	}
	if input.Value(0, 2) != "y1" {
		t.Errorf("Y not fixed through the cascade: %q", input.Value(0, 2))
	}
	if res.Total != 2 || res.Fixed[1] != 1 || res.Fixed[2] != 1 {
		t.Errorf("result = %+v", res)
	}
	if res.Rounds < 1 || res.Rounds > 3 {
		t.Errorf("rounds = %d", res.Rounds)
	}
}

// TestChaseSingleRoundWhenOrdered: with targets processed in Y order,
// the (M before Y) cascade resolves in the first round; a second round
// confirms the fixpoint.
func TestChaseSingleRoundWhenOrdered(t *testing.T) {
	input, master := chaseFixture()
	ruleM := rule.New([]rule.AttrPair{{Input: 0, Master: 0}}, 1, 1, nil)
	ruleY := rule.New([]rule.AttrPair{{Input: 1, Master: 1}}, 2, 2, nil)
	res := Chase(input, master, []Target{
		{Y: 2, Rules: []*rule.Rule{ruleY}}, // deliberately out of order
		{Y: 1, Rules: []*rule.Rule{ruleM}},
	}, 0)
	if res.Rounds != 2 {
		t.Errorf("rounds = %d, want 2 (fix round + fixpoint round)", res.Rounds)
	}
}

func TestChaseCellFixedAtMostOnce(t *testing.T) {
	input, master := chaseFixture()
	// A contradictory second master tuple would otherwise flip row 0's M
	// back and forth; the touched-set guarantees one fix per cell.
	master.AppendRow([]string{"k1", "m9", "y1"})
	ruleM := rule.New([]rule.AttrPair{{Input: 0, Master: 0}}, 1, 1, nil)
	res := Chase(input, master, []Target{{Y: 1, Rules: []*rule.Rule{ruleM}}}, 10)
	if res.Fixed[1] != 1 {
		t.Errorf("M fixed %d times", res.Fixed[1])
	}
	if res.Rounds > 3 {
		t.Errorf("chase did not converge promptly: %d rounds", res.Rounds)
	}
}

func TestChaseMinScore(t *testing.T) {
	input, master := chaseFixture()
	// k1 now maps to two conflicting M values: certainty 0.5 each.
	master.AppendRow([]string{"k1", "m9", "y1"})
	ruleM := rule.New([]rule.AttrPair{{Input: 0, Master: 0}}, 1, 1, nil)
	res := Chase(input, master, []Target{
		{Y: 1, Rules: []*rule.Rule{ruleM}, MinScore: 0.9},
	}, 0)
	if res.Total != 0 {
		t.Errorf("low-certainty fix applied despite MinScore: %+v", res)
	}
	if input.Code(0, 1) != relation.Null {
		t.Error("cell modified")
	}
}

func TestChaseNoTargets(t *testing.T) {
	input, master := chaseFixture()
	res := Chase(input, master, nil, 0)
	if res.Total != 0 || res.Rounds != 1 {
		t.Errorf("empty chase = %+v", res)
	}
}

func TestChaseLeavesCleanDataAlone(t *testing.T) {
	input, master := chaseFixture()
	ruleY := rule.New([]rule.AttrPair{{Input: 1, Master: 1}}, 2, 2, nil)
	Chase(input, master, []Target{{Y: 2, Rules: []*rule.Rule{ruleY}}}, 0)
	if input.Value(1, 2) != "y2" {
		t.Error("clean tuple modified")
	}
}
