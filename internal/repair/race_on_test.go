//go:build race

package repair

// raceEnabled reports whether the race detector is active; allocation
// gates skip under it because instrumentation perturbs alloc counts.
const raceEnabled = true
