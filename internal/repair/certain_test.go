package repair

import (
	"testing"

	"erminer/internal/measure"
	"erminer/internal/relation"
	"erminer/internal/rule"
)

// certainFixture: k1 has a unique master value (certain); k2 has two
// conflicting master values (uncertain); k3 joins nothing.
func certainFixture() (input, master *relation.Relation) {
	pool := relation.NewPool()
	in := relation.NewSchema(
		relation.Attribute{Name: "A", Domain: "a"},
		relation.Attribute{Name: "B", Domain: "b"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	ms := relation.NewSchema(
		relation.Attribute{Name: "A", Domain: "a"},
		relation.Attribute{Name: "B", Domain: "b"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	input = relation.New(in, pool)
	input.AppendRow([]string{"k1", "b1", ""})
	input.AppendRow([]string{"k2", "b2", ""})
	input.AppendRow([]string{"k3", "b3", ""})
	master = relation.New(ms, pool)
	master.AppendRow([]string{"k1", "b1", "v1"})
	master.AppendRow([]string{"k1", "b9", "v1"}) // duplicate value: still certain
	master.AppendRow([]string{"k2", "b2", "v2"})
	master.AppendRow([]string{"k2", "b2", "v3"}) // conflict: uncertain
	return input, master
}

func TestApplyCertainOnlyUnique(t *testing.T) {
	input, master := certainFixture()
	ev := measure.NewEvaluator(input, master, nil)
	r := rule.New([]rule.AttrPair{{Input: 0, Master: 0}}, 2, 2, nil)
	res := ApplyCertain(ev, []*rule.Rule{r})

	v1, _ := input.Dict(2).Lookup("v1")
	if res.Pred[0] != v1 {
		t.Errorf("k1 fix = %d, want v1", res.Pred[0])
	}
	if res.Pred[1] != relation.Null {
		t.Error("uncertain tuple was fixed")
	}
	if res.Pred[2] != relation.Null {
		t.Error("uncovered tuple was fixed")
	}
	if res.Certain != 1 || res.Conflicts != 0 {
		t.Errorf("result = %+v", res)
	}
}

func TestApplyCertainDetectsConflicts(t *testing.T) {
	input, master := certainFixture()
	ev := measure.NewEvaluator(input, master, nil)
	// Rule 1 joins on A; rule 2 joins on B. For k1/b1 both are certain
	// but agree (v1). Add a master row making the B-join of k1 certain
	// on a different value.
	master.AppendRow([]string{"k9", "b1", "v9"})
	// Now Cand via B=b1 is {v1, v9}: not certain — adjust: use a row
	// where B-join is certain but different. Give k3/b3 two rules:
	master.AppendRow([]string{"k3", "b8", "x1"})
	master.AppendRow([]string{"k8", "b3", "x2"})
	rA := rule.New([]rule.AttrPair{{Input: 0, Master: 0}}, 2, 2, nil)
	rB := rule.New([]rule.AttrPair{{Input: 1, Master: 1}}, 2, 2, nil)
	res := ApplyCertain(ev, []*rule.Rule{rA, rB})
	// k3: rA gives x1 (certain via A=k3), rB gives x2 (certain via
	// B=b3) → conflict, no fix.
	if res.Pred[2] != relation.Null {
		t.Errorf("conflicting tuple fixed to %d", res.Pred[2])
	}
	if res.Conflicts != 1 {
		t.Errorf("conflicts = %d, want 1", res.Conflicts)
	}
}

func TestApplyCertainAgreementIsNotConflict(t *testing.T) {
	input, master := certainFixture()
	ev := measure.NewEvaluator(input, master, nil)
	rA := rule.New([]rule.AttrPair{{Input: 0, Master: 0}}, 2, 2, nil)
	res := ApplyCertain(ev, []*rule.Rule{rA, rA})
	if res.Conflicts != 0 {
		t.Errorf("identical rules conflicted: %+v", res)
	}
	if res.Certain != 1 {
		t.Errorf("certain = %d", res.Certain)
	}
}

func TestCertainRegion(t *testing.T) {
	input, master := certainFixture()
	ev := measure.NewEvaluator(input, master, nil)
	r := rule.New([]rule.AttrPair{{Input: 0, Master: 0}}, 2, 2, nil)
	region := CertainRegion(ev, []*rule.Rule{r})
	if got := region[r.Key()]; got != 1 {
		t.Errorf("certain region = %d, want 1 (only k1)", got)
	}
}

func TestApplyCertainGuardedPattern(t *testing.T) {
	input, master := certainFixture()
	ev := measure.NewEvaluator(input, master, nil)
	b1, _ := input.Dict(1).Lookup("b1")
	r := rule.New([]rule.AttrPair{{Input: 0, Master: 0}}, 2, 2,
		[]rule.Condition{rule.Eq(1, b1)})
	res := ApplyCertain(ev, []*rule.Rule{r})
	if res.Certain != 1 || res.Pred[1] != relation.Null {
		t.Errorf("pattern not respected: %+v", res)
	}
}
