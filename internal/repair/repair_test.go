package repair

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"erminer/internal/measure"
	"erminer/internal/relation"
	"erminer/internal/rule"
)

// fixture builds a small input/master pair where two rules propose
// conflicting fixes with different certainty scores.
//
// input:  A (join key), G (guard), Y
// master: A, Y
func fixture() (input, master *relation.Relation) {
	pool := relation.NewPool()
	in := relation.NewSchema(
		relation.Attribute{Name: "A", Domain: "a"},
		relation.Attribute{Name: "G"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	ms := relation.NewSchema(
		relation.Attribute{Name: "A", Domain: "a"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	input = relation.New(in, pool)
	input.AppendRow([]string{"k1", "g", ""})
	input.AppendRow([]string{"k2", "g", "old"})
	input.AppendRow([]string{"k3", "g", ""}) // k3 joins nothing
	master = relation.New(ms, pool)
	master.AppendRow([]string{"k1", "v1"})
	master.AppendRow([]string{"k1", "v1"})
	master.AppendRow([]string{"k1", "v2"})
	master.AppendRow([]string{"k2", "v2"})
	return input, master
}

func TestApplyAggregatesCertainty(t *testing.T) {
	input, master := fixture()
	ev := measure.NewEvaluator(input, master, nil)
	r := rule.New([]rule.AttrPair{{Input: 0, Master: 0}}, 2, 1, nil)
	res := Apply(ev, []*rule.Rule{r})

	if res.Covered != 2 {
		t.Fatalf("covered = %d, want 2 (k3 joins nothing)", res.Covered)
	}
	v1, _ := input.Dict(2).Lookup("v1")
	v2, _ := input.Dict(2).Lookup("v2")
	if res.Pred[0] != v1 {
		t.Errorf("row 0 fix = %d, want v1 (majority 2/3)", res.Pred[0])
	}
	if math.Abs(res.Score[0]-2.0/3.0) > 1e-12 {
		t.Errorf("row 0 score = %g, want 2/3", res.Score[0])
	}
	if res.Pred[1] != v2 {
		t.Errorf("row 1 fix = %d, want v2", res.Pred[1])
	}
	if res.Pred[2] != relation.Null {
		t.Errorf("row 2 should be uncovered, got %d", res.Pred[2])
	}
}

func TestApplyMultipleRulesSumScores(t *testing.T) {
	input, master := fixture()
	ev := measure.NewEvaluator(input, master, nil)
	r1 := rule.New([]rule.AttrPair{{Input: 0, Master: 0}}, 2, 1, nil)
	// The same rule twice doubles every candidate's score: the argmax is
	// unchanged but scores sum.
	res1 := Apply(ev, []*rule.Rule{r1})
	res2 := Apply(ev, []*rule.Rule{r1, r1})
	for row := range res1.Pred {
		if res1.Pred[row] != res2.Pred[row] {
			t.Errorf("row %d: argmax changed", row)
		}
	}
	if math.Abs(res2.Score[0]-2*res1.Score[0]) > 1e-12 {
		t.Errorf("scores did not sum: %g vs %g", res2.Score[0], res1.Score[0])
	}
}

func TestApplyEmptyRuleSet(t *testing.T) {
	input, master := fixture()
	ev := measure.NewEvaluator(input, master, nil)
	res := Apply(ev, nil)
	if res.Covered != 0 {
		t.Errorf("covered = %d", res.Covered)
	}
	for _, p := range res.Pred {
		if p != relation.Null {
			t.Errorf("prediction without rules: %d", p)
		}
	}
}

func TestApplyDeterministicTieBreak(t *testing.T) {
	pool := relation.NewPool()
	in := relation.NewSchema(
		relation.Attribute{Name: "A", Domain: "a"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	ms := relation.NewSchema(
		relation.Attribute{Name: "A", Domain: "a"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	input := relation.New(in, pool)
	input.AppendRow([]string{"k", ""})
	master := relation.New(ms, pool)
	master.AppendRow([]string{"k", "x"})
	master.AppendRow([]string{"k", "y"})
	ev := measure.NewEvaluator(input, master, nil)
	r := rule.New([]rule.AttrPair{{Input: 0, Master: 0}}, 1, 1, nil)
	a := Apply(ev, []*rule.Rule{r})
	b := Apply(ev, []*rule.Rule{r})
	if a.Pred[0] != b.Pred[0] {
		t.Error("tie break not deterministic")
	}
}

func TestWriteFixesRepairMode(t *testing.T) {
	input, master := fixture()
	ev := measure.NewEvaluator(input, master, nil)
	r := rule.New([]rule.AttrPair{{Input: 0, Master: 0}}, 2, 1, nil)
	res := Apply(ev, []*rule.Rule{r})

	rel := input.Clone()
	changed := WriteFixes(rel, 2, res, false)
	if changed != 2 {
		t.Fatalf("changed = %d, want 2", changed)
	}
	if rel.Value(0, 2) != "v1" || rel.Value(1, 2) != "v2" {
		t.Errorf("fixed values = %q, %q", rel.Value(0, 2), rel.Value(1, 2))
	}
}

func TestWriteFixesImputationMode(t *testing.T) {
	input, master := fixture()
	ev := measure.NewEvaluator(input, master, nil)
	r := rule.New([]rule.AttrPair{{Input: 0, Master: 0}}, 2, 1, nil)
	res := Apply(ev, []*rule.Rule{r})

	rel := input.Clone()
	changed := WriteFixes(rel, 2, res, true)
	if changed != 1 {
		t.Fatalf("changed = %d, want 1 (only the Null cell)", changed)
	}
	if rel.Value(0, 2) != "v1" {
		t.Errorf("missing cell not imputed: %q", rel.Value(0, 2))
	}
	if rel.Value(1, 2) != "old" {
		t.Errorf("present cell overwritten in imputation mode: %q", rel.Value(1, 2))
	}
}

func TestApplyGuardedRule(t *testing.T) {
	input, master := fixture()
	ev := measure.NewEvaluator(input, master, nil)
	// A pattern on G = "nope" matches no tuple: no fixes at all.
	r := rule.New([]rule.AttrPair{{Input: 0, Master: 0}}, 2, 1,
		[]rule.Condition{rule.NewCondition(1, []int32{9999}, "")})
	res := Apply(ev, []*rule.Rule{r})
	if res.Covered != 0 {
		t.Errorf("guarded rule covered %d tuples", res.Covered)
	}
}

func TestExplainMatchesApply(t *testing.T) {
	input, master := fixture()
	ev := measure.NewEvaluator(input, master, nil)
	r := rule.New([]rule.AttrPair{{Input: 0, Master: 0}}, 2, 1, nil)
	rules := []*rule.Rule{r}
	res := Apply(ev, rules)
	for row := 0; row < input.NumRows(); row++ {
		exp := Explain(ev, rules, row)
		if exp.Fix != res.Pred[row] {
			t.Errorf("row %d: Explain fix %d != Apply fix %d", row, exp.Fix, res.Pred[row])
		}
		if exp.Fix != relation.Null && exp.Score != res.Score[row] {
			t.Errorf("row %d: scores differ: %g vs %g", row, exp.Score, res.Score[row])
		}
	}
}

func TestExplainEvidenceDetail(t *testing.T) {
	input, master := fixture()
	ev := measure.NewEvaluator(input, master, nil)
	r := rule.New([]rule.AttrPair{{Input: 0, Master: 0}}, 2, 1, nil)
	exp := Explain(ev, []*rule.Rule{r}, 0)
	if len(exp.Evidence) != 1 {
		t.Fatalf("evidence = %d entries", len(exp.Evidence))
	}
	cands := exp.Evidence[0].Candidates
	if len(cands) != 2 {
		t.Fatalf("candidates = %d", len(cands))
	}
	// Sorted by score: v1 (2/3) before v2 (1/3).
	if cands[0].Count != 2 || cands[1].Count != 1 {
		t.Errorf("candidate order wrong: %+v", cands)
	}
	s := exp.Format(input, master.Schema(), 2)
	if !strings.Contains(s, "v1") || !strings.Contains(s, "σ") {
		t.Errorf("Format output:\n%s", s)
	}
}

func TestExplainUncovered(t *testing.T) {
	input, master := fixture()
	ev := measure.NewEvaluator(input, master, nil)
	r := rule.New([]rule.AttrPair{{Input: 0, Master: 0}}, 2, 1, nil)
	exp := Explain(ev, []*rule.Rule{r}, 2) // k3 joins nothing
	if exp.Fix != relation.Null || len(exp.Evidence) != 0 {
		t.Errorf("uncovered explanation = %+v", exp)
	}
	s := exp.Format(input, master.Schema(), 2)
	if !strings.Contains(s, "no rule") {
		t.Errorf("Format output:\n%s", s)
	}
}

func TestApplyContextCancellation(t *testing.T) {
	input, master := fixture()
	ev := measure.NewEvaluator(input, master, nil)
	r := rule.New([]rule.AttrPair{{Input: 0, Master: 0}}, 2, 1, nil)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ApplyContext(ctx, ev, []*rule.Rule{r})
	if err == nil {
		t.Fatal("ApplyContext with a cancelled context returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The partial result is still well-formed (no rule ran).
	if res.Covered != 0 {
		t.Errorf("cancelled run covered %d tuples, want 0", res.Covered)
	}

	// An unexpired context behaves exactly like Apply.
	got, err := ApplyContext(context.Background(), ev, []*rule.Rule{r})
	if err != nil {
		t.Fatal(err)
	}
	want := Apply(ev, []*rule.Rule{r})
	for row := range want.Pred {
		if got.Pred[row] != want.Pred[row] {
			t.Errorf("row %d: ApplyContext diverged from Apply", row)
		}
	}
}

// TestApplyRuleZeroAllocSteadyState is the repair-side allocation
// gate: once a request's score maps exist and the evaluator's caches
// are warm, applyRule — the per-rule inner loop of ApplyContext and an
// //ermvet:hotpath root — must not allocate. Together with the measure
// package's TestEvaluateZeroAlloc it proves dynamically, on one
// execution each, what the allocbudget check enforces statically on
// every path: a steady-state repair request stays off the heap.
func TestApplyRuleZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	input, master := fixture()
	ev := measure.NewEvaluator(input, master, nil)
	guard := input.DomainCodes(1)
	rules := []*rule.Rule{
		rule.New([]rule.AttrPair{{Input: 0, Master: 0}}, 2, 1, nil),
		rule.New([]rule.AttrPair{{Input: 0, Master: 0}}, 2, 1, nil).
			WithCondition(rule.Eq(1, guard[0])),
	}
	scores := make([]map[int32]float64, input.NumRows())
	for i := 0; i < 3; i++ { // warm postings, projections, freelist, score maps
		for _, r := range rules {
			applyRule(ev, r, scores)
		}
	}
	for i, r := range rules {
		if allocs := testing.AllocsPerRun(100, func() {
			applyRule(ev, r, scores)
		}); allocs != 0 {
			t.Errorf("rule %d: applyRule allocates %.1f/op in steady state, want 0", i, allocs)
		}
	}
}
