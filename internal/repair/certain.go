package repair

import (
	"erminer/internal/measure"
	"erminer/internal/relation"
	"erminer/internal/rule"
)

// CertainResult holds the outcome of certain-fix application.
type CertainResult struct {
	// Pred[i] is the certain fix for tuple i, or relation.Null when no
	// rule yields one.
	Pred []int32
	// Certain counts tuples with a certain fix.
	Certain int
	// Conflicts counts tuples where two rules each produced a certain
	// fix but disagreed — evidence of rule-set inconsistency, reported
	// rather than silently resolved. Conflicting tuples get no fix.
	Conflicts int
}

// ApplyCertain applies only certain fixes, the semantics editing rules
// were designed for (Fan et al. [18]): a tuple is fixed only when a rule
// covering it returns exactly one candidate value from the master data
// (f_c = 1, unique Cand). Unlike Apply's certainty-score aggregation —
// the paper's evaluation protocol (§V-B2) — ApplyCertain never guesses:
// ambiguous evidence leaves the cell untouched, and disagreeing certain
// rules are surfaced as conflicts.
func ApplyCertain(ev *measure.Evaluator, rules []*rule.Rule) CertainResult {
	n := ev.Input().NumRows()
	res := CertainResult{Pred: make([]int32, n)}
	for i := range res.Pred {
		res.Pred[i] = relation.Null
	}
	conflicted := make([]bool, n)

	for _, r := range rules {
		for row := 0; row < n; row++ {
			if conflicted[row] {
				continue
			}
			h, ok := ev.Candidates(r, row)
			if !ok || h.Total == 0 || len(h.Counts) != 1 {
				continue // not a certain fix
			}
			v := h.Arg
			switch prev := res.Pred[row]; {
			case prev == relation.Null:
				res.Pred[row] = v
				res.Certain++
			case prev != v:
				// Two certain rules disagree: retract the fix.
				res.Pred[row] = relation.Null
				res.Certain--
				res.Conflicts++
				conflicted[row] = true
			}
		}
	}
	return res
}

// CertainRegion reports, per rule, how many input tuples the rule fixes
// certainly — the rule-level view of the certain region of [18]. The
// result maps the rule's canonical key to its certain-fix count.
func CertainRegion(ev *measure.Evaluator, rules []*rule.Rule) map[string]int {
	out := make(map[string]int, len(rules))
	n := ev.Input().NumRows()
	for _, r := range rules {
		count := 0
		for row := 0; row < n; row++ {
			if h, ok := ev.Candidates(r, row); ok && len(h.Counts) == 1 {
				count++
			}
		}
		out[r.Key()] = count
	}
	return out
}
