package repair

import (
	"fmt"
	"sort"
	"strings"

	"erminer/internal/measure"
	"erminer/internal/relation"
	"erminer/internal/rule"
)

// Evidence is one rule's contribution to a tuple's fix.
type Evidence struct {
	// Rule is the contributing rule.
	Rule *rule.Rule
	// Candidates lists the rule's candidate fixes with their certainty
	// scores σ_{v,φ}, highest first.
	Candidates []Candidate
}

// Candidate is one candidate fix value with its certainty score.
type Candidate struct {
	Value int32
	Score float64
	Count int
}

// Explanation justifies the fix proposed for one tuple.
type Explanation struct {
	Row int
	// Fix is the winning value (relation.Null when uncovered).
	Fix int32
	// Score is the winning value's summed certainty score.
	Score float64
	// Evidence lists each covering rule's candidates.
	Evidence []Evidence
}

// Explain reconstructs why the rule set proposes its fix for one input
// tuple: which rules cover it, what candidates each contributes, and how
// the certainty scores add up. This is the interpretability story
// rule-based cleaning is chosen for (paper §I: "easier to interpret and
// thus helpful for users to understand the data").
func Explain(ev *measure.Evaluator, rules []*rule.Rule, row int) Explanation {
	out := Explanation{Row: row, Fix: relation.Null}
	total := make(map[int32]float64)
	for _, r := range rules {
		h, ok := ev.Candidates(r, row)
		if !ok || h.Total == 0 {
			continue
		}
		e := Evidence{Rule: r}
		for v, c := range h.Counts {
			score := float64(c) / float64(h.Total)
			e.Candidates = append(e.Candidates, Candidate{Value: v, Score: score, Count: c})
			total[v] += score
		}
		sort.Slice(e.Candidates, func(i, j int) bool {
			a, b := e.Candidates[i], e.Candidates[j]
			if a.Score != b.Score {
				return a.Score > b.Score
			}
			return a.Value < b.Value
		})
		out.Evidence = append(out.Evidence, e)
	}
	for v, s := range total {
		if s > out.Score || (s == out.Score && (out.Fix == relation.Null || v < out.Fix)) {
			out.Fix = v
			out.Score = s
		}
	}
	return out
}

// Format renders the explanation with attribute names and values.
func (e Explanation) Format(input *relation.Relation, masterSchema *relation.Schema, y int) string {
	var b strings.Builder
	if e.Fix == relation.Null {
		fmt.Fprintf(&b, "tuple %d: no rule proposes a fix\n", e.Row)
		return b.String()
	}
	fmt.Fprintf(&b, "tuple %d: fix %s = %q (summed certainty %.3f)\n",
		e.Row, input.Schema().Attr(y).Name, input.Dict(y).Value(e.Fix), e.Score)
	for _, ev := range e.Evidence {
		fmt.Fprintf(&b, "  by %s\n", ev.Rule.String(input, masterSchema))
		for _, c := range ev.Candidates {
			fmt.Fprintf(&b, "     %q ×%d (σ = %.3f)\n",
				input.Dict(y).Value(c.Value), c.Count, c.Score)
		}
	}
	return b.String()
}
