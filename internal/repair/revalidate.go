// Delta re-validation of an active rule set (ISSUE 9): after a data
// mutation, only the rules whose attribute footprint intersects the
// changed columns need re-scoring, mirroring the rule-selection
// refinement loop of the knowledge-refinement literature. The serving
// layer calls Revalidate after Relation.ApplyDelta to decide which
// rules survive into the next generation without re-mining.

package repair

import (
	"erminer/internal/core"
	"erminer/internal/measure"
	"erminer/internal/relation"
	"erminer/internal/rule"
)

// TouchedBy reports whether a rule's measures could have changed under
// the given change set. master selects which side's footprint is
// tested: the input side reads the LHS Input attributes, the pattern
// attributes and Y (through Truth when labelled data stands in);
// the master side reads the LHS Master attributes and Y_m. Appended
// rows enlarge every rule's evaluation universe, so any append touches
// every rule.
func TouchedBy(r *rule.Rule, ch relation.ChangeSet, master bool) bool {
	if ch.Appended > 0 {
		return true
	}
	if master {
		for _, p := range r.LHS {
			if ch.Touches(p.Master) {
				return true
			}
		}
		return ch.Touches(r.Ym)
	}
	for _, p := range r.LHS {
		if ch.Touches(p.Input) {
			return true
		}
	}
	for _, c := range r.Pattern {
		if ch.Touches(c.Attr) {
			return true
		}
	}
	return ch.Touches(r.Y)
}

// Revalidate re-scores the rules selected by touched against ev,
// refreshing their Measures and dropping the ones that no longer clear
// the thresholds (Support ≥ etaS, Utility > 0). Untouched rules are
// passed through with their existing measures. The returned kept slice
// preserves input order; revalidated counts the rules re-scored and
// dropped the rules removed. Covers are not retained: the stored
// Measures carry a nil PatternCover, since evaluator cover buffers are
// recycled and must not outlive the call.
func Revalidate(ev *measure.Evaluator, rules []core.MinedRule, etaS int, touched func(*rule.Rule) bool) (kept []core.MinedRule, revalidated, dropped int) {
	kept = make([]core.MinedRule, 0, len(rules))
	for _, mr := range rules {
		if touched == nil || touched(mr.Rule) {
			revalidated++
			m := ev.Evaluate(mr.Rule, nil)
			ev.ReleaseCover(m.PatternCover)
			m.PatternCover = nil
			if m.Support < etaS || m.Utility <= 0 {
				dropped++
				continue
			}
			mr.Measures = m
		}
		kept = append(kept, mr)
	}
	return kept, revalidated, dropped
}
