package repair

import (
	"testing"

	"erminer/internal/core"
	"erminer/internal/measure"
	"erminer/internal/relation"
	"erminer/internal/rule"
)

func TestTouchedBy(t *testing.T) {
	r := rule.New(
		[]rule.AttrPair{{Input: 0, Master: 0}},
		2, 1,
		[]rule.Condition{rule.NewCondition(1, []int32{3}, "")},
	)
	cases := []struct {
		name   string
		ch     relation.ChangeSet
		master bool
		want   bool
	}{
		{"append touches everything", relation.ChangeSet{Appended: 1}, false, true},
		{"append touches master side too", relation.ChangeSet{Appended: 1}, true, true},
		{"input LHS column", relation.ChangeSet{Cols: []int{0}}, false, true},
		{"input pattern column", relation.ChangeSet{Cols: []int{1}}, false, true},
		{"input Y column", relation.ChangeSet{Cols: []int{2}}, false, true},
		{"unrelated input column", relation.ChangeSet{Cols: []int{7}}, false, false},
		{"master LHS column", relation.ChangeSet{Cols: []int{0}}, true, true},
		{"master Ym column", relation.ChangeSet{Cols: []int{1}}, true, true},
		{"unrelated master column", relation.ChangeSet{Cols: []int{2}}, true, false},
	}
	for _, c := range cases {
		if got := TouchedBy(r, c.ch, c.master); got != c.want {
			t.Errorf("%s: TouchedBy = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRevalidateRescoresAndDrops(t *testing.T) {
	input, master := fixture()
	// Labelled truth agreeing with the majority fixes keeps Quality — and
	// hence Utility — positive for the surviving rule.
	v1, _ := master.Dict(1).Lookup("v1")
	v2, _ := master.Dict(1).Lookup("v2")
	truth := []int32{v1, v2, relation.Null}
	ev := measure.NewEvaluator(input, master, truth)
	good := rule.New([]rule.AttrPair{{Input: 0, Master: 0}}, 2, 1, nil)
	// A rule whose pattern matches nothing: Support 0, must be dropped.
	gone := rule.New([]rule.AttrPair{{Input: 0, Master: 0}}, 2, 1,
		[]rule.Condition{rule.NewCondition(1, []int32{int32(input.Dict(1).Size()) + 5}, "")})
	rules := []core.MinedRule{
		{Rule: good, Measures: measure.Measures{Support: -1}}, // stale on purpose
		{Rule: gone, Measures: measure.Measures{Support: 99, Utility: 9}},
	}
	kept, revalidated, dropped := Revalidate(ev, rules, 1, nil)
	if revalidated != 2 || dropped != 1 || len(kept) != 1 {
		t.Fatalf("revalidated=%d dropped=%d kept=%d, want 2/1/1", revalidated, dropped, len(kept))
	}
	if kept[0].Rule != good {
		t.Fatal("wrong rule survived")
	}
	if kept[0].Measures.Support <= 0 {
		t.Errorf("measures not refreshed: %+v", kept[0].Measures)
	}
	if kept[0].Measures.PatternCover != nil {
		t.Error("kept measures must not retain a recycled cover buffer")
	}
	// Want-based selection: an untouched rule passes through unscored.
	stale := measure.Measures{Support: -7}
	rules = []core.MinedRule{{Rule: good, Measures: stale}}
	kept, revalidated, dropped = Revalidate(ev, rules, 1, func(*rule.Rule) bool { return false })
	if revalidated != 0 || dropped != 0 || len(kept) != 1 || kept[0].Measures.Support != -7 {
		t.Fatalf("untouched rule was rescored: revalidated=%d kept=%+v", revalidated, kept)
	}
}
