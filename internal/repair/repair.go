// Package repair applies a set of discovered editing rules to an input
// relation, producing per-tuple candidate fixes for the dependent
// attribute and aggregating them across rules by summed certainty score
// (paper §V-B2):
//
//	σ_{v,φ} = count(v,φ) / Σ_{v'} count(v',φ)
//	fix(t)  = argmax_v Σ_φ σ_{v,φ}
package repair

import (
	"context"
	"sync"

	"erminer/internal/measure"
	"erminer/internal/relation"
	"erminer/internal/rule"
)

// Result holds the outcome of applying a rule set.
type Result struct {
	// Pred[i] is the predicted Y code for input tuple i, or
	// relation.Null when no rule covers the tuple.
	Pred []int32
	// Score[i] is the winning candidate's summed certainty score.
	Score []float64
	// Covered is the number of tuples with at least one candidate fix.
	Covered int
}

// Apply evaluates every rule over the evaluator's input relation and
// aggregates candidate fixes. Rules must share the evaluator's dependent
// attribute pair (they do, by construction of the miners).
func Apply(ev *measure.Evaluator, rules []*rule.Rule) Result {
	res, _ := ApplyContext(context.Background(), ev, rules)
	return res
}

// applyScratch is the pooled per-call accumulation state of
// ApplyContext. The per-row score maps are retained (emptied, not
// freed) across calls, so a serving layer's steady-state repair
// requests stop allocating them.
type applyScratch struct {
	scores []map[int32]float64
}

var scratchPool = sync.Pool{New: func() any { return new(applyScratch) }}

// ApplyContext is Apply with cooperative cancellation: the context is
// checked between rules, so a serving layer can bound per-request repair
// latency. On cancellation it returns the context's error together with
// the aggregation over the rules fully applied so far (callers that want
// all-or-nothing should discard the partial result).
//
// Each rule is applied over its pattern cover — computed by the
// evaluator's columnar engine as a posting-list intersection — rather
// than by re-testing the pattern against every tuple, and candidate
// lookups go through the dense group-id projection
// (Evaluator.CoveredCandidates). The covered rows come back in
// ascending row order, exactly the order the former full scan visited
// them, so the floating-point accumulation is bit-identical.
func ApplyContext(ctx context.Context, ev *measure.Evaluator, rules []*rule.Rule) (Result, error) {
	n := ev.Input().NumRows()
	sc := scratchPool.Get().(*applyScratch)
	if cap(sc.scores) < n {
		sc.scores = make([]map[int32]float64, n)
	} else {
		sc.scores = sc.scores[:n]
	}
	scores := sc.scores
	defer func() {
		for i := range scores {
			if scores[i] != nil {
				clear(scores[i])
			}
		}
		scratchPool.Put(sc)
	}()

	var ctxErr error
	for _, r := range rules {
		if err := ctx.Err(); err != nil {
			ctxErr = err
			break
		}
		applyRule(ev, r, scores)
	}

	res := Result{
		Pred:  make([]int32, n),
		Score: make([]float64, n),
	}
	for row := 0; row < n; row++ {
		res.Pred[row] = relation.Null
		m := scores[row]
		if len(m) == 0 {
			continue
		}
		best := relation.Null
		bestScore := -1.0
		for v, s := range m {
			if s > bestScore || (s == bestScore && v < best) {
				best, bestScore = v, s
			}
		}
		res.Pred[row] = best
		res.Score[row] = bestScore
		res.Covered++
	}
	return res, ctxErr
}

// applyRule accumulates one rule's candidate fixes into the per-row
// score maps: the rule's pattern cover (a posting-list intersection),
// one group-projection candidate lookup per covered row, and the
// certainty-weighted vote merge. It is the steady-state inner loop of a
// repair request, so it anchors the allocation budget on the repair
// side the way Evaluate anchors it on the measure side.
//
//ermvet:hotpath
func applyRule(ev *measure.Evaluator, r *rule.Rule, scores []map[int32]float64) {
	cover := ev.PatternCover(r, nil)
	for _, row := range cover {
		h, ok := ev.CoveredCandidates(r, int(row))
		if !ok || h.Total == 0 {
			continue
		}
		m := scores[row]
		if m == nil {
			//ermvet:ignore allocbudget first fix for a row allocates its score map once; maps are pooled and emptied, not freed
			m = make(map[int32]float64, len(h.Counts))
			scores[row] = m
		}
		for v, c := range h.Counts {
			//ermvet:ignore allocbudget vote-map growth is bounded by the Y domain; the backing is pooled across requests
			m[v] += float64(c) / float64(h.Total)
		}
	}
	ev.ReleaseCover(cover)
}

// WriteFixes writes the predicted values into the relation's dependent
// column. When onlyMissing is true, only Null cells are overwritten
// (imputation mode); otherwise every covered cell is updated (repair
// mode). It returns the number of cells changed.
func WriteFixes(rel *relation.Relation, y int, res Result, onlyMissing bool) int {
	changed := 0
	for row := 0; row < rel.NumRows(); row++ {
		p := res.Pred[row]
		if p == relation.Null {
			continue
		}
		cur := rel.Code(row, y)
		if onlyMissing && cur != relation.Null {
			continue
		}
		if cur != p {
			rel.SetCode(row, y, p)
			changed++
		}
	}
	return changed
}
