// Package measure implements the utility measures of paper §II-B —
// Support (Eq. 1), Certainty (Eq. 2–3), Quality (Eq. 4–5) and the
// combined Utility U(φ) = (log S)² · (C + Q) — together with the
// evaluation machinery both miners share:
//
//   - a master-side index per LHS master-attribute list, mapping the
//     joined X_m key to a histogram of Y_m values (built once and cached,
//     so Certainty is computed per X-key group rather than per tuple);
//   - cover-based subspace search (Alg. 4 lines 9–10): a child rule is
//     evaluated only over the input tuples covered by its parent's
//     pattern;
//   - a parallel evaluation layer: the index cache is a thread-safe,
//     build-once structure (IndexCache) that N evaluator shards borrow
//     (Shard), and full-relation pattern scans chunk across goroutines
//     (Parallelism), all with bit-identical results to a serial run.
package measure

import (
	"math"
	"sync"

	"erminer/internal/relation"
	"erminer/internal/rule"
)

// Measures aggregates the paper's rule measures for one rule.
type Measures struct {
	// Support is S(φ): the number of input tuples with f_s(φ, t) = 1.
	Support int
	// Certainty is C(φ) ∈ [0, 1]: the mean of f_c over covered tuples.
	Certainty float64
	// Quality is Q(φ) ∈ [-1, 1]: the mean of κ over covered tuples.
	Quality float64
	// Utility is U(φ) = (log S)² · (C + Q).
	Utility float64
	// PatternCover lists the input rows matching t_p (within the parent
	// cover the rule was evaluated on). It is the cover handed to child
	// rules for subspace search.
	PatternCover []int32
}

// Hist is the Y_m-value histogram of one X_m-key group of the master data,
// i.e. the multiset Cand(t, φ) shared by every input tuple with the same
// t[X] values.
type Hist struct {
	Counts map[int32]int
	Total  int
	// Max is max_v count(v); Arg is the corresponding value. Ties break
	// toward the smaller code for determinism.
	Max int
	Arg int32
}

func (h *Hist) add(v int32) {
	h.Counts[v]++
	h.Total++
	c := h.Counts[v]
	if h.Total == 1 {
		// First observation: the argmax is v by definition. Make that
		// explicit rather than relying on c > h.Max with the zero-valued
		// Arg — the implicit form silently depends on Max starting at 0
		// and would corrupt the tie-break if it ever didn't.
		h.Max, h.Arg = c, v
		return
	}
	if c > h.Max || (c == h.Max && v < h.Arg) {
		h.Max = c
		h.Arg = v
	}
}

// Certainty returns f_c for tuples in this group: max count / total count.
func (h *Hist) Certainty() float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Max) / float64(h.Total)
}

// masterIndex maps the encoded X_m key to the Y_m histogram of the
// matching master tuples.
type masterIndex map[string]*Hist

// Evaluator evaluates rules over a fixed (input, master, truth) triple.
// It caches master indexes keyed by the master attribute list, which is
// what makes repeated evaluation across thousands of candidate rules
// tractable (DESIGN.md decision 2). By default rules are evaluated on
// the columnar engine — posting-list cover intersections plus dense
// group-id projections (posting.go, groups.go; DESIGN.md decision 16) —
// which is bit-identical to the retained scalar path selectable with
// Scalar.
//
// An Evaluator is not safe for concurrent use, but evaluators sharing
// one IndexCache may run concurrently with each other: use Shard to
// derive one per worker goroutine (DESIGN.md decision 11).
type Evaluator struct {
	input  *relation.Relation
	master *relation.Relation
	// truth[i] is the ground-truth code of input tuple i on the
	// dependent attribute Y. When no labelled data is available the
	// caller passes the observed (possibly dirty) Y column, yielding the
	// paper's approximate Quality measure (§II-B3).
	truth []int32

	// cache holds the built master indexes; it may be shared across
	// evaluator shards and is safe for concurrent use.
	cache *IndexCache
	// columns is the columnar store over the input relation (posting
	// lists, group projections). Like cache it may be shared across
	// shards and is safe for concurrent use; unlike cache it is bound to
	// one input relation (see ShareColumns).
	columns *ColumnIndex
	// keyBuf is reused across input-key constructions to avoid
	// allocation. It must never be shared with idxKeyBuf: index() can
	// run between an inputKey() call and the use of its result, so a
	// common buffer would corrupt cache keys (see TestKeyBufNoAliasing).
	keyBuf []byte
	// idxKeyBuf is the separate reusable buffer for index cache keys.
	idxKeyBuf []byte

	// memoRule/memoProj memoise the last rule's group projection on
	// pointer identity, skipping the cache mutex on the common
	// many-Evaluate-calls-per-rule pattern. memoVersion and
	// memoMasterVersion guard against input and master mutation between
	// calls (the projection captures master histograms at build time).
	memoRule          *rule.Rule
	memoProj          *groupProjection
	memoVersion       int64
	memoMasterVersion int64

	// coverFree is the freelist of cover buffers handed back through
	// ReleaseCover; getCover pops from it so steady-state evaluation is
	// allocation-free. Owned by the evaluator's goroutine.
	coverFree [][]int32
	// condScratch, condLists and condOrder are the per-condition scratch
	// of columnar cover intersection, reused across calls.
	condScratch []condBufs
	condLists   [][]int32
	condOrder   []int
	// isectA/isectB are the ping-pong buffers of the intersection chain.
	isectA, isectB []int32

	// Parallelism chunks full-relation pattern scans — Evaluate and
	// PatternCover with a nil parent cover — across this many
	// goroutines. Zero or one scans serially; chunk results are merged
	// in row order, so every setting yields bit-identical output. The
	// chunked scan belongs to the scalar engine; the columnar engine
	// replaces it with posting-list intersections. Set it only from the
	// goroutine that owns the evaluator.
	Parallelism int

	// Scalar forces the retained row-at-a-time reference path. The
	// columnar default is bit-identical (pinned by the differential and
	// fuzz suites); the flag exists for those suites and as an
	// operational escape hatch.
	Scalar bool

	// Stats counts evaluator work for the ablation benchmarks.
	Stats Stats
}

// Stats counts evaluator work.
type Stats struct {
	// Evaluations is the number of Evaluate calls.
	Evaluations int
	// IndexBuilds is the number of master indexes built (cache misses).
	IndexBuilds int
	// TuplesScanned is the total number of logical input tuples a scan
	// visits (full-relation scans count NumRows, cover-restricted scans
	// count the parent cover size). The columnar engine reports the same
	// totals as the scalar one even though its posting-list intersections
	// touch fewer rows physically, so ablation comparisons stay stable.
	TuplesScanned int
}

// Add accumulates other into s. Worker shards each collect their own
// Stats; merging them through Add at join time reproduces exactly the
// totals a serial run would report.
func (s *Stats) Add(other Stats) {
	s.Evaluations += other.Evaluations
	s.IndexBuilds += other.IndexBuilds
	s.TuplesScanned += other.TuplesScanned
}

// NewEvaluator builds an evaluator with a private index cache. truth may
// be nil, in which case the observed Y column of the input is used per
// dependent attribute at evaluation time (approximate Quality).
func NewEvaluator(input, master *relation.Relation, truth []int32) *Evaluator {
	return NewSharedEvaluator(input, master, truth, NewIndexCache())
}

// NewSharedEvaluator builds an evaluator borrowing an existing index
// cache, so separately-constructed evaluators (mining, reward queries,
// repair) reuse each other's built indexes.
func NewSharedEvaluator(input, master *relation.Relation, truth []int32, cache *IndexCache) *Evaluator {
	return &Evaluator{
		input:   input,
		master:  master,
		truth:   truth,
		cache:   cache,
		columns: NewColumnIndex(input),
	}
}

// Shard returns a lightweight evaluator that borrows e's relations,
// truth column, index cache and columnar store but owns its key
// buffers, scratch, freelist and Stats, so it can run on a different
// goroutine than e and than any other shard. Shards scan serially
// (Parallelism 1): the caller owns the cross-shard fan-out. Merge shard
// Stats back with Stats.Add.
func (e *Evaluator) Shard() *Evaluator {
	return &Evaluator{
		input:   e.input,
		master:  e.master,
		truth:   e.truth,
		cache:   e.cache,
		columns: e.columns,
		Scalar:  e.Scalar,
	}
}

// Cache exposes the evaluator's index cache for sharing with other
// evaluators (see NewSharedEvaluator).
func (e *Evaluator) Cache() *IndexCache { return e.cache }

// Columns exposes the evaluator's columnar store for sharing with other
// evaluators over the same input relation (see ShareColumns).
func (e *Evaluator) Columns() *ColumnIndex { return e.columns }

// ShareColumns rebinds the evaluator to an existing columnar store so
// that separately-constructed evaluators over the same input relation
// (mining, reward queries, repair) reuse each other's posting lists and
// group projections. It panics if ci indexes a different relation.
func (e *Evaluator) ShareColumns(ci *ColumnIndex) {
	if ci.rel != e.input {
		panic("measure: ShareColumns: column index built over a different relation")
	}
	e.columns = ci
	e.memoRule, e.memoProj = nil, nil
}

// Input returns the input relation the evaluator reads.
func (e *Evaluator) Input() *relation.Relation { return e.input }

// Master returns the master relation the evaluator reads.
func (e *Evaluator) Master() *relation.Relation { return e.master }

// index returns the master index for the rule's LHS master attributes and
// dependent master attribute, building and caching it on first use. The
// cache key lives in idxKeyBuf, never keyBuf, so an interleaved
// inputKey() cannot corrupt it (and vice versa).
func (e *Evaluator) index(r *rule.Rule) masterIndex {
	e.idxKeyBuf = e.idxKeyBuf[:0]
	for _, p := range r.LHS {
		e.idxKeyBuf = appendCode(e.idxKeyBuf, int32(p.Master))
	}
	e.idxKeyBuf = appendCode(e.idxKeyBuf, int32(r.Ym))
	//ermvet:ignore allocbudget cache-miss builder closure runs once per (X_m, Y_m) index
	idx, built := e.cache.get(e.idxKeyBuf, func() masterIndex {
		return buildIndex(e.master, r)
	})
	if built {
		e.Stats.IndexBuilds++
	}
	return idx
}

// buildIndex scans the master relation once, grouping Y_m values by the
// encoded X_m key. The result is deterministic in the master row order
// and immutable once returned.
func buildIndex(m *relation.Relation, r *rule.Rule) masterIndex {
	idx := make(masterIndex)
	var buf []byte
	for row := 0; row < m.NumRows(); row++ {
		y := m.Code(row, r.Ym)
		if y == relation.Null {
			continue
		}
		var ok bool
		buf, ok = appendLHSKey(buf[:0], m, row, r.LHS, true)
		if !ok {
			continue
		}
		h := idx[string(buf)]
		if h == nil {
			h = &Hist{Counts: make(map[int32]int)}
			idx[string(buf)] = h
		}
		h.add(y)
	}
	return idx
}

func appendCode(b []byte, c int32) []byte {
	return append(b, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
}

// inputKey encodes t[X] for the rule's LHS; ok is false when any LHS cell
// is Null (a tuple with a missing LHS value cannot match any master tuple).
func (e *Evaluator) inputKey(r *rule.Rule, row int) (string, bool) {
	var ok bool
	e.keyBuf, ok = appendLHSKey(e.keyBuf[:0], e.input, row, r.LHS, false)
	if !ok {
		return "", false
	}
	//ermvet:ignore allocbudget scalar path only; the columnar path probes by group id, never by string key
	return string(e.keyBuf), true
}

// Candidates returns the candidate-fix histogram Cand(t, φ) for input row,
// or ok=false when the tuple does not match t_p or joins no master tuple.
func (e *Evaluator) Candidates(r *rule.Rule, row int) (*Hist, bool) {
	if len(r.LHS) == 0 || !r.MatchesPattern(e.input, row) {
		return nil, false
	}
	return e.CoveredCandidates(r, row)
}

// CoveredCandidates is Candidates for a row already known to match the
// rule's pattern (typically drawn from its PatternCover): it skips the
// per-row pattern re-check, which is what makes cover-driven repair
// (repair.ApplyContext) sub-linear in the relation size.
//
//ermvet:hotpath
func (e *Evaluator) CoveredCandidates(r *rule.Rule, row int) (*Hist, bool) {
	if len(r.LHS) == 0 {
		return nil, false
	}
	if e.Scalar {
		key, ok := e.inputKey(r, row)
		if !ok {
			return nil, false
		}
		h, ok := e.index(r)[key]
		return h, ok
	}
	gp := e.ruleProjection(r)
	gid := gp.rowGroup[row]
	if gid < 0 || gp.hists[gid] == nil {
		return nil, false
	}
	return gp.hists[gid], true
}

// truthCode returns the ground-truth Y code for input row.
func (e *Evaluator) truthCode(r *rule.Rule, row int) int32 {
	if e.truth != nil {
		return e.truth[row]
	}
	return e.input.Code(row, r.Y)
}

// Evaluate computes the rule's measures over the given parent cover
// (nil means the whole input relation). The returned PatternCover is the
// subset of the parent cover matching the rule's full pattern.
//
// A rule with an empty LHS has, by definition, no join with the master
// data and is assigned zero support and utility; its pattern cover is
// still computed so children can be evaluated on the subspace.
//
// The returned cover may come from the evaluator's buffer freelist:
// callers that are done with it can hand it back via ReleaseCover to
// keep steady-state evaluation allocation-free.
//
//ermvet:hotpath
func (e *Evaluator) Evaluate(r *rule.Rule, parentCover []int32) Measures {
	if e.Scalar {
		return e.evaluateScalar(r, parentCover)
	}
	e.Stats.Evaluations++

	var cover []int32
	if parentCover == nil {
		cover = e.columnarFullCover(r)
		e.Stats.TuplesScanned += e.input.NumRows()
	} else {
		cover = e.filterCover(r, parentCover)
		e.Stats.TuplesScanned += len(parentCover)
	}

	m := Measures{PatternCover: cover}
	if len(r.LHS) == 0 {
		return m
	}

	gp := e.ruleProjection(r)
	truth := e.truth
	if truth == nil {
		truth = e.input.Column(r.Y)
	}
	var sumC, sumK float64
	for _, row := range cover {
		gid := gp.rowGroup[row]
		if gid < 0 || gp.hists[gid] == nil {
			continue
		}
		m.Support++
		sumC += gp.cert[gid]
		if gp.arg[gid] == truth[row] {
			sumK++
		} else {
			sumK--
		}
	}
	if m.Support > 0 {
		m.Certainty = sumC / float64(m.Support)
		m.Quality = sumK / float64(m.Support)
		m.Utility = Utility(m.Support, m.Certainty, m.Quality)
	}
	return m
}

// evaluateScalar is the retained row-at-a-time reference implementation
// of Evaluate: a MatchesPattern cover scan followed by a per-row string
// key build and master-index map probe. The differential and fuzz
// suites pin the columnar path against it.
//
//ermvet:coldpath retained row-at-a-time reference engine; only the differential and fuzz suites select it
func (e *Evaluator) evaluateScalar(r *rule.Rule, parentCover []int32) Measures {
	e.Stats.Evaluations++
	in := e.input

	var cover []int32
	if parentCover == nil {
		cover = e.fullScanCover(r)
		e.Stats.TuplesScanned += in.NumRows()
	} else {
		cover = make([]int32, 0, len(parentCover))
		for _, row := range parentCover {
			if r.MatchesPattern(in, int(row)) {
				cover = append(cover, row)
			}
		}
		e.Stats.TuplesScanned += len(parentCover)
	}

	m := Measures{PatternCover: cover}
	if len(r.LHS) == 0 {
		return m
	}

	idx := e.index(r)
	var sumC, sumK float64
	for _, row := range cover {
		key, ok := e.inputKey(r, int(row))
		if !ok {
			continue
		}
		h, ok := idx[key]
		if !ok {
			continue
		}
		m.Support++
		sumC += h.Certainty()
		if h.Arg == e.truthCode(r, int(row)) {
			sumK++
		} else {
			sumK--
		}
	}
	if m.Support > 0 {
		m.Certainty = sumC / float64(m.Support)
		m.Quality = sumK / float64(m.Support)
		m.Utility = Utility(m.Support, m.Certainty, m.Quality)
	}
	return m
}

// PatternCover filters the parent cover (nil = all input rows) down to
// the rows matching the rule's pattern, without evaluating measures. The
// MDP environment uses it to rebuild a node's cover cheaply when the
// rule's measures come from the reward cache R_Σ. Like Evaluate's cover,
// the result may be handed back through ReleaseCover.
func (e *Evaluator) PatternCover(r *rule.Rule, parentCover []int32) []int32 {
	if e.Scalar {
		in := e.input
		if parentCover == nil {
			return e.fullScanCover(r)
		}
		//ermvet:ignore allocbudget scalar reference path; columnar covers come from the freelist
		out := make([]int32, 0, len(parentCover))
		for _, row := range parentCover {
			if r.MatchesPattern(in, int(row)) {
				out = append(out, row)
			}
		}
		return out
	}
	if parentCover == nil {
		return e.columnarFullCover(r)
	}
	return e.filterCover(r, parentCover)
}

// getCover pops a cover buffer of at least the given capacity from the
// freelist, or allocates one. The returned slice is non-nil and empty.
//
//ermvet:hotpath
func (e *Evaluator) getCover(capacity int) []int32 {
	if n := len(e.coverFree); n > 0 {
		c := e.coverFree[n-1]
		e.coverFree[n-1] = nil
		e.coverFree = e.coverFree[:n-1]
		if cap(c) >= capacity {
			return c[:0]
		}
		// Too small: drop it and allocate at the requested size.
	}
	//ermvet:ignore allocbudget freelist miss: first use at this capacity; steady state reuses released covers
	return make([]int32, 0, capacity)
}

// maxCoverFree bounds the freelist so pathological release patterns
// cannot pin unbounded memory.
const maxCoverFree = 256

// ReleaseCover returns a cover obtained from Evaluate or PatternCover
// to the evaluator's freelist for reuse. Passing nil is a no-op. The
// caller must not use the slice afterwards, and must call it on the
// same goroutine that owns the evaluator (shards own their freelists).
//
//ermvet:hotpath
func (e *Evaluator) ReleaseCover(c []int32) {
	if cap(c) == 0 || len(e.coverFree) >= maxCoverFree {
		return
	}
	e.coverFree = append(e.coverFree, c[:0])
}

// filterCover restricts a non-nil parent cover to the rows matching the
// rule's pattern. The parent cover is caller-ordered (in practice
// ascending), so the columnar engine keeps the row loop here — posting
// intersections apply only to full-relation scans — which preserves the
// scalar path's ordering semantics exactly.
//
//ermvet:hotpath
func (e *Evaluator) filterCover(r *rule.Rule, parentCover []int32) []int32 {
	in := e.input
	out := e.getCover(len(parentCover))
	for _, row := range parentCover {
		if r.MatchesPattern(in, int(row)) {
			out = append(out, row)
		}
	}
	return out
}

// columnarFullCover computes the whole-relation pattern cover as a
// k-way intersection of per-condition posting lists, smallest list
// first. The output is ascending row ids — bit-identical to the scalar
// full scan.
//
//ermvet:hotpath
func (e *Evaluator) columnarFullCover(r *rule.Rule) []int32 {
	if len(r.Pattern) == 0 {
		all := e.columns.allRows()
		out := e.getCover(len(all))
		return append(out, all...)
	}

	// Grow the per-condition scratch without losing accumulated buffer
	// capacity, then resolve each condition to its ascending row list.
	for len(e.condScratch) < len(r.Pattern) {
		e.condScratch = append(e.condScratch, condBufs{})
	}
	lists := e.condLists[:0]
	for i := range r.Pattern {
		cond := r.Pattern[i]
		rows := condRows(e.columns.postings(cond.Attr), cond, &e.condScratch[i])
		if len(rows) == 0 {
			e.condLists = lists
			return e.getCover(0)
		}
		lists = append(lists, rows)
	}
	e.condLists = lists

	// Intersect smallest-first for the tightest intermediate results.
	// The order is chosen by (length, position) with an insertion sort —
	// deterministic and allocation-free for the short condition lists
	// rules carry.
	order := e.condOrder[:0]
	for i := range lists {
		order = append(order, i)
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if len(lists[a]) < len(lists[b]) || (len(lists[a]) == len(lists[b]) && a < b) {
				break
			}
			order[j-1], order[j] = b, a
		}
	}
	e.condOrder = order

	acc := lists[order[0]]
	useA := true
	for k := 1; k < len(order) && len(acc) > 0; k++ {
		if useA {
			e.isectA = intersectInto(e.isectA[:0], acc, lists[order[k]])
			acc = e.isectA
		} else {
			e.isectB = intersectInto(e.isectB[:0], acc, lists[order[k]])
			acc = e.isectB
		}
		useA = !useA
	}
	out := e.getCover(len(acc))
	return append(out, acc...)
}

// ruleProjection returns the rule's group projection, memoised on rule
// pointer identity so repeated evaluations of one rule skip the cache
// mutex entirely.
//
//ermvet:hotpath
func (e *Evaluator) ruleProjection(r *rule.Rule) *groupProjection {
	if e.memoRule == r && e.memoVersion == e.input.Version() && e.memoMasterVersion == e.master.Version() {
		return e.memoProj
	}
	idx := e.index(r)
	e.keyBuf = appendGroupKey(e.keyBuf[:0], r)
	//ermvet:ignore allocbudget cache-miss builder closure runs once per projection key
	gp := e.columns.projection(e.keyBuf, func() *groupProjection {
		return buildProjection(e.input, r.LHS, idx)
	})
	e.memoRule, e.memoProj, e.memoVersion = r, gp, e.input.Version()
	e.memoMasterVersion = e.master.Version()
	return gp
}

// minScanChunk bounds the per-goroutine work of a chunked full-relation
// scan: below this many rows per worker the goroutine overhead exceeds
// the scan itself, so the effective worker count is capped.
const minScanChunk = 512

// fullScanCover returns the rows of the whole input matching the rule's
// pattern. With Parallelism > 1 the row range is chunked across
// goroutines and the per-chunk results are concatenated in row order,
// so the output is identical to the serial scan bit for bit.
//
//ermvet:coldpath scalar reference engine scan; the columnar path computes covers from posting lists
func (e *Evaluator) fullScanCover(r *rule.Rule) []int32 {
	in := e.input
	n := in.NumRows()
	workers := e.Parallelism
	if max := n / minScanChunk; workers > max {
		workers = max
	}
	if workers <= 1 {
		out := make([]int32, 0, n)
		for row := 0; row < n; row++ {
			if r.MatchesPattern(in, row) {
				out = append(out, int32(row))
			}
		}
		return out
	}
	chunks := make([][]int32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			part := make([]int32, 0, hi-lo)
			for row := lo; row < hi; row++ {
				if r.MatchesPattern(in, row) {
					part = append(part, int32(row))
				}
			}
			chunks[w] = part
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	out := make([]int32, 0, total)
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}

// Utility computes U = (log S)² · (C + Q) (natural log, paper §II-B4).
func Utility(support int, certainty, quality float64) float64 {
	if support <= 0 {
		return 0
	}
	l := math.Log(float64(support))
	return l * l * (certainty + quality)
}

// MaxUtility returns the utility of a perfect rule covering all n input
// tuples (C = 1, Q = 1). It is the normalisation constant used when the
// RL reward is scaled to roughly [-1, 1] for DQN stability.
func MaxUtility(n int) float64 {
	return Utility(n, 1, 1)
}
