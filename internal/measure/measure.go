// Package measure implements the utility measures of paper §II-B —
// Support (Eq. 1), Certainty (Eq. 2–3), Quality (Eq. 4–5) and the
// combined Utility U(φ) = (log S)² · (C + Q) — together with the
// evaluation machinery both miners share:
//
//   - a master-side index per LHS master-attribute list, mapping the
//     joined X_m key to a histogram of Y_m values (built once and cached,
//     so Certainty is computed per X-key group rather than per tuple);
//   - cover-based subspace search (Alg. 4 lines 9–10): a child rule is
//     evaluated only over the input tuples covered by its parent's
//     pattern;
//   - a parallel evaluation layer: the index cache is a thread-safe,
//     build-once structure (IndexCache) that N evaluator shards borrow
//     (Shard), and full-relation pattern scans chunk across goroutines
//     (Parallelism), all with bit-identical results to a serial run.
package measure

import (
	"math"
	"sync"

	"erminer/internal/relation"
	"erminer/internal/rule"
)

// Measures aggregates the paper's rule measures for one rule.
type Measures struct {
	// Support is S(φ): the number of input tuples with f_s(φ, t) = 1.
	Support int
	// Certainty is C(φ) ∈ [0, 1]: the mean of f_c over covered tuples.
	Certainty float64
	// Quality is Q(φ) ∈ [-1, 1]: the mean of κ over covered tuples.
	Quality float64
	// Utility is U(φ) = (log S)² · (C + Q).
	Utility float64
	// PatternCover lists the input rows matching t_p (within the parent
	// cover the rule was evaluated on). It is the cover handed to child
	// rules for subspace search.
	PatternCover []int32
}

// Hist is the Y_m-value histogram of one X_m-key group of the master data,
// i.e. the multiset Cand(t, φ) shared by every input tuple with the same
// t[X] values.
type Hist struct {
	Counts map[int32]int
	Total  int
	// Max is max_v count(v); Arg is the corresponding value. Ties break
	// toward the smaller code for determinism.
	Max int
	Arg int32
}

func (h *Hist) add(v int32) {
	h.Counts[v]++
	h.Total++
	if c := h.Counts[v]; c > h.Max || (c == h.Max && v < h.Arg) {
		h.Max = c
		h.Arg = v
	}
}

// Certainty returns f_c for tuples in this group: max count / total count.
func (h *Hist) Certainty() float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Max) / float64(h.Total)
}

// masterIndex maps the encoded X_m key to the Y_m histogram of the
// matching master tuples.
type masterIndex map[string]*Hist

// Evaluator evaluates rules over a fixed (input, master, truth) triple.
// It caches master indexes keyed by the master attribute list, which is
// what makes repeated evaluation across thousands of candidate rules
// tractable (DESIGN.md decision 2).
//
// An Evaluator is not safe for concurrent use, but evaluators sharing
// one IndexCache may run concurrently with each other: use Shard to
// derive one per worker goroutine (DESIGN.md decision 11).
type Evaluator struct {
	input  *relation.Relation
	master *relation.Relation
	// truth[i] is the ground-truth code of input tuple i on the
	// dependent attribute Y. When no labelled data is available the
	// caller passes the observed (possibly dirty) Y column, yielding the
	// paper's approximate Quality measure (§II-B3).
	truth []int32

	// cache holds the built master indexes; it may be shared across
	// evaluator shards and is safe for concurrent use.
	cache *IndexCache
	// keyBuf is reused across input-key constructions to avoid
	// allocation. It must never be shared with idxKeyBuf: index() can
	// run between an inputKey() call and the use of its result, so a
	// common buffer would corrupt cache keys (see TestKeyBufNoAliasing).
	keyBuf []byte
	// idxKeyBuf is the separate reusable buffer for index cache keys.
	idxKeyBuf []byte

	// Parallelism chunks full-relation pattern scans — Evaluate and
	// PatternCover with a nil parent cover — across this many
	// goroutines. Zero or one scans serially; chunk results are merged
	// in row order, so every setting yields bit-identical output. Set
	// it only from the goroutine that owns the evaluator.
	Parallelism int

	// Stats counts evaluator work for the ablation benchmarks.
	Stats Stats
}

// Stats counts evaluator work.
type Stats struct {
	// Evaluations is the number of Evaluate calls.
	Evaluations int
	// IndexBuilds is the number of master indexes built (cache misses).
	IndexBuilds int
	// TuplesScanned is the total number of input tuples visited.
	TuplesScanned int
}

// Add accumulates other into s. Worker shards each collect their own
// Stats; merging them through Add at join time reproduces exactly the
// totals a serial run would report.
func (s *Stats) Add(other Stats) {
	s.Evaluations += other.Evaluations
	s.IndexBuilds += other.IndexBuilds
	s.TuplesScanned += other.TuplesScanned
}

// NewEvaluator builds an evaluator with a private index cache. truth may
// be nil, in which case the observed Y column of the input is used per
// dependent attribute at evaluation time (approximate Quality).
func NewEvaluator(input, master *relation.Relation, truth []int32) *Evaluator {
	return NewSharedEvaluator(input, master, truth, NewIndexCache())
}

// NewSharedEvaluator builds an evaluator borrowing an existing index
// cache, so separately-constructed evaluators (mining, reward queries,
// repair) reuse each other's built indexes.
func NewSharedEvaluator(input, master *relation.Relation, truth []int32, cache *IndexCache) *Evaluator {
	return &Evaluator{
		input:  input,
		master: master,
		truth:  truth,
		cache:  cache,
	}
}

// Shard returns a lightweight evaluator that borrows e's relations,
// truth column and index cache but owns its key buffers and Stats, so
// it can run on a different goroutine than e and than any other shard.
// Shards scan serially (Parallelism 1): the caller owns the cross-shard
// fan-out. Merge shard Stats back with Stats.Add.
func (e *Evaluator) Shard() *Evaluator {
	return &Evaluator{
		input:  e.input,
		master: e.master,
		truth:  e.truth,
		cache:  e.cache,
	}
}

// Cache exposes the evaluator's index cache for sharing with other
// evaluators (see NewSharedEvaluator).
func (e *Evaluator) Cache() *IndexCache { return e.cache }

// Input returns the input relation the evaluator reads.
func (e *Evaluator) Input() *relation.Relation { return e.input }

// Master returns the master relation the evaluator reads.
func (e *Evaluator) Master() *relation.Relation { return e.master }

// index returns the master index for the rule's LHS master attributes and
// dependent master attribute, building and caching it on first use. The
// cache key lives in idxKeyBuf, never keyBuf, so an interleaved
// inputKey() cannot corrupt it (and vice versa).
func (e *Evaluator) index(r *rule.Rule) masterIndex {
	e.idxKeyBuf = e.idxKeyBuf[:0]
	for _, p := range r.LHS {
		e.idxKeyBuf = appendCode(e.idxKeyBuf, int32(p.Master))
	}
	e.idxKeyBuf = appendCode(e.idxKeyBuf, int32(r.Ym))
	idx, built := e.cache.get(string(e.idxKeyBuf), func() masterIndex {
		return buildIndex(e.master, r)
	})
	if built {
		e.Stats.IndexBuilds++
	}
	return idx
}

// buildIndex scans the master relation once, grouping Y_m values by the
// encoded X_m key. The result is deterministic in the master row order
// and immutable once returned.
func buildIndex(m *relation.Relation, r *rule.Rule) masterIndex {
	idx := make(masterIndex)
	var buf []byte
	for row := 0; row < m.NumRows(); row++ {
		y := m.Code(row, r.Ym)
		if y == relation.Null {
			continue
		}
		buf = buf[:0]
		ok := true
		for _, p := range r.LHS {
			c := m.Code(row, p.Master)
			if c == relation.Null {
				ok = false
				break
			}
			buf = appendCode(buf, c)
		}
		if !ok {
			continue
		}
		h := idx[string(buf)]
		if h == nil {
			h = &Hist{Counts: make(map[int32]int)}
			idx[string(buf)] = h
		}
		h.add(y)
	}
	return idx
}

func appendCode(b []byte, c int32) []byte {
	return append(b, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
}

// inputKey encodes t[X] for the rule's LHS; ok is false when any LHS cell
// is Null (a tuple with a missing LHS value cannot match any master tuple).
func (e *Evaluator) inputKey(r *rule.Rule, row int) (string, bool) {
	e.keyBuf = e.keyBuf[:0]
	for _, p := range r.LHS {
		c := e.input.Code(row, p.Input)
		if c == relation.Null {
			return "", false
		}
		e.keyBuf = appendCode(e.keyBuf, c)
	}
	return string(e.keyBuf), true
}

// Candidates returns the candidate-fix histogram Cand(t, φ) for input row,
// or ok=false when the tuple does not match t_p or joins no master tuple.
func (e *Evaluator) Candidates(r *rule.Rule, row int) (*Hist, bool) {
	if len(r.LHS) == 0 || !r.MatchesPattern(e.input, row) {
		return nil, false
	}
	key, ok := e.inputKey(r, row)
	if !ok {
		return nil, false
	}
	h, ok := e.index(r)[key]
	return h, ok
}

// truthCode returns the ground-truth Y code for input row.
func (e *Evaluator) truthCode(r *rule.Rule, row int) int32 {
	if e.truth != nil {
		return e.truth[row]
	}
	return e.input.Code(row, r.Y)
}

// Evaluate computes the rule's measures over the given parent cover
// (nil means the whole input relation). The returned PatternCover is the
// subset of the parent cover matching the rule's full pattern.
//
// A rule with an empty LHS has, by definition, no join with the master
// data and is assigned zero support and utility; its pattern cover is
// still computed so children can be evaluated on the subspace.
func (e *Evaluator) Evaluate(r *rule.Rule, parentCover []int32) Measures {
	e.Stats.Evaluations++
	in := e.input

	var cover []int32
	if parentCover == nil {
		cover = e.fullScanCover(r)
		e.Stats.TuplesScanned += in.NumRows()
	} else {
		cover = make([]int32, 0, len(parentCover))
		for _, row := range parentCover {
			if r.MatchesPattern(in, int(row)) {
				cover = append(cover, row)
			}
		}
		e.Stats.TuplesScanned += len(parentCover)
	}

	m := Measures{PatternCover: cover}
	if len(r.LHS) == 0 {
		return m
	}

	idx := e.index(r)
	var sumC, sumK float64
	for _, row := range cover {
		key, ok := e.inputKey(r, int(row))
		if !ok {
			continue
		}
		h, ok := idx[key]
		if !ok {
			continue
		}
		m.Support++
		sumC += h.Certainty()
		if h.Arg == e.truthCode(r, int(row)) {
			sumK++
		} else {
			sumK--
		}
	}
	if m.Support > 0 {
		m.Certainty = sumC / float64(m.Support)
		m.Quality = sumK / float64(m.Support)
		m.Utility = Utility(m.Support, m.Certainty, m.Quality)
	}
	return m
}

// PatternCover filters the parent cover (nil = all input rows) down to
// the rows matching the rule's pattern, without evaluating measures. The
// MDP environment uses it to rebuild a node's cover cheaply when the
// rule's measures come from the reward cache R_Σ.
func (e *Evaluator) PatternCover(r *rule.Rule, parentCover []int32) []int32 {
	in := e.input
	if parentCover == nil {
		return e.fullScanCover(r)
	}
	out := make([]int32, 0, len(parentCover))
	for _, row := range parentCover {
		if r.MatchesPattern(in, int(row)) {
			out = append(out, row)
		}
	}
	return out
}

// minScanChunk bounds the per-goroutine work of a chunked full-relation
// scan: below this many rows per worker the goroutine overhead exceeds
// the scan itself, so the effective worker count is capped.
const minScanChunk = 512

// fullScanCover returns the rows of the whole input matching the rule's
// pattern. With Parallelism > 1 the row range is chunked across
// goroutines and the per-chunk results are concatenated in row order,
// so the output is identical to the serial scan bit for bit.
func (e *Evaluator) fullScanCover(r *rule.Rule) []int32 {
	in := e.input
	n := in.NumRows()
	workers := e.Parallelism
	if max := n / minScanChunk; workers > max {
		workers = max
	}
	if workers <= 1 {
		out := make([]int32, 0, n)
		for row := 0; row < n; row++ {
			if r.MatchesPattern(in, row) {
				out = append(out, int32(row))
			}
		}
		return out
	}
	chunks := make([][]int32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			part := make([]int32, 0, hi-lo)
			for row := lo; row < hi; row++ {
				if r.MatchesPattern(in, row) {
					part = append(part, int32(row))
				}
			}
			chunks[w] = part
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	out := make([]int32, 0, total)
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}

// Utility computes U = (log S)² · (C + Q) (natural log, paper §II-B4).
func Utility(support int, certainty, quality float64) float64 {
	if support <= 0 {
		return 0
	}
	l := math.Log(float64(support))
	return l * l * (certainty + quality)
}

// MaxUtility returns the utility of a perfect rule covering all n input
// tuples (C = 1, Q = 1). It is the normalisation constant used when the
// RL reward is scaled to roughly [-1, 1] for DQN stability.
func MaxUtility(n int) float64 {
	return Utility(n, 1, 1)
}
