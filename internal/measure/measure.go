// Package measure implements the utility measures of paper §II-B —
// Support (Eq. 1), Certainty (Eq. 2–3), Quality (Eq. 4–5) and the
// combined Utility U(φ) = (log S)² · (C + Q) — together with the
// evaluation machinery both miners share:
//
//   - a master-side index per LHS master-attribute list, mapping the
//     joined X_m key to a histogram of Y_m values (built once and cached,
//     so Certainty is computed per X-key group rather than per tuple);
//   - cover-based subspace search (Alg. 4 lines 9–10): a child rule is
//     evaluated only over the input tuples covered by its parent's
//     pattern.
package measure

import (
	"math"

	"erminer/internal/relation"
	"erminer/internal/rule"
)

// Measures aggregates the paper's rule measures for one rule.
type Measures struct {
	// Support is S(φ): the number of input tuples with f_s(φ, t) = 1.
	Support int
	// Certainty is C(φ) ∈ [0, 1]: the mean of f_c over covered tuples.
	Certainty float64
	// Quality is Q(φ) ∈ [-1, 1]: the mean of κ over covered tuples.
	Quality float64
	// Utility is U(φ) = (log S)² · (C + Q).
	Utility float64
	// PatternCover lists the input rows matching t_p (within the parent
	// cover the rule was evaluated on). It is the cover handed to child
	// rules for subspace search.
	PatternCover []int32
}

// Hist is the Y_m-value histogram of one X_m-key group of the master data,
// i.e. the multiset Cand(t, φ) shared by every input tuple with the same
// t[X] values.
type Hist struct {
	Counts map[int32]int
	Total  int
	// Max is max_v count(v); Arg is the corresponding value. Ties break
	// toward the smaller code for determinism.
	Max int
	Arg int32
}

func (h *Hist) add(v int32) {
	h.Counts[v]++
	h.Total++
	if c := h.Counts[v]; c > h.Max || (c == h.Max && v < h.Arg) {
		h.Max = c
		h.Arg = v
	}
}

// Certainty returns f_c for tuples in this group: max count / total count.
func (h *Hist) Certainty() float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Max) / float64(h.Total)
}

// masterIndex maps the encoded X_m key to the Y_m histogram of the
// matching master tuples.
type masterIndex map[string]*Hist

// Evaluator evaluates rules over a fixed (input, master, truth) triple.
// It caches master indexes keyed by the master attribute list, which is
// what makes repeated evaluation across thousands of candidate rules
// tractable (DESIGN.md decision 2).
//
// An Evaluator is not safe for concurrent use.
type Evaluator struct {
	input  *relation.Relation
	master *relation.Relation
	// truth[i] is the ground-truth code of input tuple i on the
	// dependent attribute Y. When no labelled data is available the
	// caller passes the observed (possibly dirty) Y column, yielding the
	// paper's approximate Quality measure (§II-B3).
	truth []int32

	indexes map[string]masterIndex
	// keyBuf is reused across key constructions to avoid allocation.
	keyBuf []byte

	// Stats counts evaluator work for the ablation benchmarks.
	Stats Stats
}

// Stats counts evaluator work.
type Stats struct {
	// Evaluations is the number of Evaluate calls.
	Evaluations int
	// IndexBuilds is the number of master indexes built (cache misses).
	IndexBuilds int
	// TuplesScanned is the total number of input tuples visited.
	TuplesScanned int
}

// NewEvaluator builds an evaluator. truth may be nil, in which case the
// observed Y column of the input is used per dependent attribute at
// evaluation time (approximate Quality).
func NewEvaluator(input, master *relation.Relation, truth []int32) *Evaluator {
	return &Evaluator{
		input:   input,
		master:  master,
		truth:   truth,
		indexes: make(map[string]masterIndex),
	}
}

// Input returns the input relation the evaluator reads.
func (e *Evaluator) Input() *relation.Relation { return e.input }

// Master returns the master relation the evaluator reads.
func (e *Evaluator) Master() *relation.Relation { return e.master }

// index returns the master index for the rule's LHS master attributes and
// dependent master attribute, building and caching it on first use.
func (e *Evaluator) index(r *rule.Rule) masterIndex {
	e.keyBuf = e.keyBuf[:0]
	for _, p := range r.LHS {
		e.keyBuf = appendCode(e.keyBuf, int32(p.Master))
	}
	e.keyBuf = appendCode(e.keyBuf, int32(r.Ym))
	cacheKey := string(e.keyBuf)
	if idx, ok := e.indexes[cacheKey]; ok {
		return idx
	}

	e.Stats.IndexBuilds++
	idx := make(masterIndex)
	m := e.master
	var buf []byte
	for row := 0; row < m.NumRows(); row++ {
		y := m.Code(row, r.Ym)
		if y == relation.Null {
			continue
		}
		buf = buf[:0]
		ok := true
		for _, p := range r.LHS {
			c := m.Code(row, p.Master)
			if c == relation.Null {
				ok = false
				break
			}
			buf = appendCode(buf, c)
		}
		if !ok {
			continue
		}
		h := idx[string(buf)]
		if h == nil {
			h = &Hist{Counts: make(map[int32]int)}
			idx[string(buf)] = h
		}
		h.add(y)
	}
	e.indexes[cacheKey] = idx
	return idx
}

func appendCode(b []byte, c int32) []byte {
	return append(b, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
}

// inputKey encodes t[X] for the rule's LHS; ok is false when any LHS cell
// is Null (a tuple with a missing LHS value cannot match any master tuple).
func (e *Evaluator) inputKey(r *rule.Rule, row int) (string, bool) {
	e.keyBuf = e.keyBuf[:0]
	for _, p := range r.LHS {
		c := e.input.Code(row, p.Input)
		if c == relation.Null {
			return "", false
		}
		e.keyBuf = appendCode(e.keyBuf, c)
	}
	return string(e.keyBuf), true
}

// Candidates returns the candidate-fix histogram Cand(t, φ) for input row,
// or ok=false when the tuple does not match t_p or joins no master tuple.
func (e *Evaluator) Candidates(r *rule.Rule, row int) (*Hist, bool) {
	if len(r.LHS) == 0 || !r.MatchesPattern(e.input, row) {
		return nil, false
	}
	key, ok := e.inputKey(r, row)
	if !ok {
		return nil, false
	}
	h, ok := e.index(r)[key]
	return h, ok
}

// truthCode returns the ground-truth Y code for input row.
func (e *Evaluator) truthCode(r *rule.Rule, row int) int32 {
	if e.truth != nil {
		return e.truth[row]
	}
	return e.input.Code(row, r.Y)
}

// Evaluate computes the rule's measures over the given parent cover
// (nil means the whole input relation). The returned PatternCover is the
// subset of the parent cover matching the rule's full pattern.
//
// A rule with an empty LHS has, by definition, no join with the master
// data and is assigned zero support and utility; its pattern cover is
// still computed so children can be evaluated on the subspace.
func (e *Evaluator) Evaluate(r *rule.Rule, parentCover []int32) Measures {
	e.Stats.Evaluations++
	in := e.input

	var cover []int32
	if parentCover == nil {
		cover = make([]int32, 0, in.NumRows())
		for row := 0; row < in.NumRows(); row++ {
			if r.MatchesPattern(in, row) {
				cover = append(cover, int32(row))
			}
		}
		e.Stats.TuplesScanned += in.NumRows()
	} else {
		cover = make([]int32, 0, len(parentCover))
		for _, row := range parentCover {
			if r.MatchesPattern(in, int(row)) {
				cover = append(cover, row)
			}
		}
		e.Stats.TuplesScanned += len(parentCover)
	}

	m := Measures{PatternCover: cover}
	if len(r.LHS) == 0 {
		return m
	}

	idx := e.index(r)
	var sumC, sumK float64
	for _, row := range cover {
		key, ok := e.inputKey(r, int(row))
		if !ok {
			continue
		}
		h, ok := idx[key]
		if !ok {
			continue
		}
		m.Support++
		sumC += h.Certainty()
		if h.Arg == e.truthCode(r, int(row)) {
			sumK++
		} else {
			sumK--
		}
	}
	if m.Support > 0 {
		m.Certainty = sumC / float64(m.Support)
		m.Quality = sumK / float64(m.Support)
		m.Utility = Utility(m.Support, m.Certainty, m.Quality)
	}
	return m
}

// PatternCover filters the parent cover (nil = all input rows) down to
// the rows matching the rule's pattern, without evaluating measures. The
// MDP environment uses it to rebuild a node's cover cheaply when the
// rule's measures come from the reward cache R_Σ.
func (e *Evaluator) PatternCover(r *rule.Rule, parentCover []int32) []int32 {
	in := e.input
	if parentCover == nil {
		out := make([]int32, 0, in.NumRows())
		for row := 0; row < in.NumRows(); row++ {
			if r.MatchesPattern(in, row) {
				out = append(out, int32(row))
			}
		}
		return out
	}
	out := make([]int32, 0, len(parentCover))
	for _, row := range parentCover {
		if r.MatchesPattern(in, int(row)) {
			out = append(out, row)
		}
	}
	return out
}

// Utility computes U = (log S)² · (C + Q) (natural log, paper §II-B4).
func Utility(support int, certainty, quality float64) float64 {
	if support <= 0 {
		return 0
	}
	l := math.Log(float64(support))
	return l * l * (certainty + quality)
}

// MaxUtility returns the utility of a perfect rule covering all n input
// tuples (C = 1, Q = 1). It is the normalisation constant used when the
// RL reward is scaled to roughly [-1, 1] for DQN stability.
func MaxUtility(n int) float64 {
	return Utility(n, 1, 1)
}
