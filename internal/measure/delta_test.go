package measure

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"erminer/internal/relation"
	"erminer/internal/rule"
)

// randomDelta builds a random batch of appends and cell updates over
// rel, drawing codes (including Null) from the relation's dictionaries.
func randomDelta(rng *rand.Rand, rel *relation.Relation, nAppend, nUpdate int) relation.Delta {
	var d relation.Delta
	code := func(col int) int32 {
		if rng.Intn(6) == 0 {
			return relation.Null
		}
		size := rel.Dict(col).Size()
		if size == 0 {
			return relation.Null
		}
		return int32(rng.Intn(size))
	}
	for i := 0; i < nAppend; i++ {
		row := make([]int32, rel.NumCols())
		for c := range row {
			row[c] = code(c)
		}
		d.Appends = append(d.Appends, row)
	}
	for i := 0; i < nUpdate && rel.NumRows() > 0; i++ {
		col := rng.Intn(rel.NumCols())
		d.Updates = append(d.Updates, relation.CellUpdate{
			Row:  rng.Intn(rel.NumRows()),
			Col:  col,
			Code: code(col),
		})
	}
	return d
}

// applyDeltas mutates the pair and reconciles the shared caches the way
// the serving layer does: the input-side ColumnIndex patches itself
// through the relation's change log, the master-side structures are
// patched explicitly.
func applyDeltas(t *testing.T, input, master *relation.Relation, ci *ColumnIndex, cache *IndexCache, din, dm relation.Delta) {
	t.Helper()
	if _, err := input.ApplyDelta(din); err != nil {
		t.Fatalf("input ApplyDelta: %v", err)
	}
	cs, err := master.ApplyDelta(dm)
	if err != nil {
		t.Fatalf("master ApplyDelta: %v", err)
	}
	cache.ApplyDelta(master, cs)
	ci.ApplyMasterDelta(cs)
}

// TestDeltaPatchBitIdentical is the differential suite of ISSUE 9:
// evaluating on caches patched through ApplyDelta must be bit-identical
// — measures, cover contents and order, and the data-shape Stats — to
// evaluating on freshly built caches over the mutated relations, while
// performing strictly fewer index builds (the point of patching).
func TestDeltaPatchBitIdentical(t *testing.T) {
	input, master := synthPair(400, 21)
	cache := NewIndexCache()
	ci := NewColumnIndex(input)
	warm := NewSharedEvaluator(input, master, nil, cache)
	warm.ShareColumns(ci)
	rules := synthRules(input)
	for _, r := range rules {
		warm.ReleaseCover(warm.Evaluate(r, nil).PatternCover)
	}

	// Round 1: appends on both sides plus input updates to the guard
	// column G (not in any group key, so projections for other rules
	// stay patchable) — master appends splice into every built index.
	din := relation.Delta{
		Appends: [][]int32{
			{input.Dict(0).Code("a1"), input.Dict(1).Code("b2"), input.Dict(2).Code("g0"), input.Dict(3).Code("y3")},
			{relation.Null, input.Dict(1).Code("b0"), input.Dict(2).Code("g1"), relation.Null},
		},
		Updates: []relation.CellUpdate{
			{Row: 0, Col: 2, Code: input.Dict(2).Code("g2")},
			{Row: 5, Col: 2, Code: relation.Null},
		},
	}
	dm := relation.Delta{
		Appends: [][]int32{
			{master.Dict(0).Code("a2"), master.Dict(1).Code("b1"), master.Dict(2).Code("y5")},
			{master.Dict(0).Code("a1"), relation.Null, master.Dict(2).Code("y0")},
		},
	}
	applyDeltas(t, input, master, ci, cache, din, dm)
	assertDeltaMatchesFresh(t, input, master, ci, cache, "round 1", true)

	// Round 2: update-only deltas, including master cells, which must
	// drop exactly the touched indexes and projections.
	din = relation.Delta{Updates: []relation.CellUpdate{
		{Row: 1, Col: 0, Code: relation.Null},
		{Row: 2, Col: 3, Code: input.Dict(3).Code("y1")},
	}}
	dm = relation.Delta{Updates: []relation.CellUpdate{
		{Row: 3, Col: 2, Code: master.Dict(2).Code("y6")},
	}}
	applyDeltas(t, input, master, ci, cache, din, dm)
	assertDeltaMatchesFresh(t, input, master, ci, cache, "round 2", false)
}

// assertDeltaMatchesFresh drives identical evaluation sequences over
// the patched shared caches and over brand-new caches, comparing every
// result (via the scalar oracle as well) and the Stats counters.
// wantFewerBuilds additionally pins that the patched run needed
// strictly fewer master-index builds than the fresh one.
func assertDeltaMatchesFresh(t *testing.T, input, master *relation.Relation, ci *ColumnIndex, cache *IndexCache, tag string, wantFewerBuilds bool) {
	t.Helper()
	patched := NewSharedEvaluator(input, master, nil, cache)
	patched.ShareColumns(ci)
	fresh := NewEvaluator(input, master, nil)
	sc := scalarOf(input, master, nil)
	for i, r := range synthRules(input) {
		assertSameEval(t, patched, sc, r, fmt.Sprintf("%s patched rule %d", tag, i))
		assertSameEval(t, fresh, sc, r, fmt.Sprintf("%s fresh rule %d", tag, i))
	}
	if patched.Stats.Evaluations != fresh.Stats.Evaluations ||
		patched.Stats.TuplesScanned != fresh.Stats.TuplesScanned {
		t.Errorf("%s: data-shape stats diverged:\npatched %+v\nfresh   %+v", tag, patched.Stats, fresh.Stats)
	}
	if wantFewerBuilds && patched.Stats.IndexBuilds >= fresh.Stats.IndexBuilds {
		t.Errorf("%s: patched run built %d indexes, fresh built %d — patching saved nothing",
			tag, patched.Stats.IndexBuilds, fresh.Stats.IndexBuilds)
	}
}

// BenchmarkApplyDelta compares the two ways of absorbing a data
// mutation into the evaluation caches: patching through the change log
// (ApplyDelta + ColumnIndex.sync keeping untouched posting lists,
// projections and master indexes) versus discarding and rebuilding
// every cache, as the pre-delta engine effectively did. Each iteration
// applies a single-cell update to the guard column and re-evaluates
// the full rule set.
func BenchmarkApplyDelta(b *testing.B) {
	const n = 4000
	evalAll := func(ev *Evaluator, rules []*rule.Rule) {
		for _, r := range rules {
			ev.ReleaseCover(ev.Evaluate(r, nil).PatternCover)
		}
	}
	step := func(b *testing.B, input *relation.Relation, i int, gs []int32) {
		b.Helper()
		row := i % n
		c := gs[i%len(gs)]
		if input.Code(row, 2) == c {
			c = gs[(i+1)%len(gs)]
		}
		d := relation.Delta{Updates: []relation.CellUpdate{{Row: row, Col: 2, Code: c}}}
		if _, err := input.ApplyDelta(d); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("patched", func(b *testing.B) {
		input, master := synthPair(n, 31)
		cache := NewIndexCache()
		ci := NewColumnIndex(input)
		ev := NewSharedEvaluator(input, master, nil, cache)
		ev.ShareColumns(ci)
		rules := synthRules(input)
		evalAll(ev, rules)
		gs := input.DomainCodes(2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step(b, input, i, gs)
			evalAll(ev, rules)
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		input, master := synthPair(n, 31)
		rules := synthRules(input)
		gs := input.DomainCodes(2)
		evalAll(NewEvaluator(input, master, nil), rules)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step(b, input, i, gs)
			ev := NewEvaluator(input, master, nil)
			evalAll(ev, rules)
		}
	})
}

// FuzzApplyDelta drives random append/update deltas against the scalar
// path as oracle: after mutating both relations and patching the shared
// caches, a columnar evaluator over the patched caches must agree
// bit-for-bit with a fresh scalar evaluator over the mutated data.
func FuzzApplyDelta(f *testing.F) {
	f.Add(int64(1), uint8(30), uint8(20), uint8(3), uint8(4))
	f.Add(int64(2), uint8(1), uint8(1), uint8(1), uint8(0))
	f.Add(int64(3), uint8(0), uint8(9), uint8(0), uint8(6))
	f.Add(int64(4), uint8(80), uint8(40), uint8(9), uint8(9))
	f.Fuzz(func(t *testing.T, seed int64, nIn, nMaster, nAppend, nUpdate uint8) {
		rng := rand.New(rand.NewSource(seed))
		input, master := fuzzPair(rng, int(nIn), int(nMaster))
		cache := NewIndexCache()
		ci := NewColumnIndex(input)
		warm := NewSharedEvaluator(input, master, nil, cache)
		warm.ShareColumns(ci)
		rules := fuzzRules(rng, input)
		for _, r := range rules {
			warm.ReleaseCover(warm.Evaluate(r, nil).PatternCover)
		}

		din := randomDelta(rng, input, int(nAppend), int(nUpdate))
		dm := randomDelta(rng, master, int(nAppend)/2, int(nUpdate)/2)
		if _, err := input.ApplyDelta(din); err != nil {
			t.Fatalf("input ApplyDelta: %v", err)
		}
		cs, err := master.ApplyDelta(dm)
		if err != nil {
			t.Fatalf("master ApplyDelta: %v", err)
		}
		cache.ApplyDelta(master, cs)
		ci.ApplyMasterDelta(cs)

		patched := NewSharedEvaluator(input, master, nil, cache)
		patched.ShareColumns(ci)
		sc := NewEvaluator(input, master, nil)
		sc.Scalar = true
		for i, r := range rules {
			want := sc.Evaluate(r, nil)
			got := patched.Evaluate(r, nil)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("rule %d (%s): Evaluate(nil) diverged after delta:\nscalar  %+v\npatched %+v",
					i, r.Key(), want, got)
			}
			patched.ReleaseCover(got.PatternCover)
		}
	})
}
