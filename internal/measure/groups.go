// Group-id projection of the columnar evaluation engine (DESIGN.md
// decision 16): one pass over the input relation assigns every row a
// dense int32 group id per rule LHS, replacing the per-row string key
// build and map probe of the scalar path with two array loads.

package measure

import (
	"erminer/internal/relation"
	"erminer/internal/rule"
)

// groupProjection is the dense group-id view of one rule's LHS over the
// input relation. rowGroup assigns every input row a group id (-1 when
// any LHS cell is Null; such rows join no master tuple), and the
// group-indexed arrays carry the master histogram of the group's X_m
// key together with its precomputed certainty and argmax fix, so the
// Evaluate inner loop reads gp.rowGroup[row] and three parallel array
// slots instead of hashing a string key. Immutable once built.
type groupProjection struct {
	rowGroup []int32
	// hists[g] is the master histogram of group g, nil when the group's
	// X_m key is absent from the master index.
	hists []*Hist
	cert  []float64
	arg   []int32
}

// buildProjection scans the input once, interning each row's encoded
// LHS key to a dense group id in first-appearance order (the order is
// internal: evaluation results depend only on per-row group contents,
// never on id assignment order).
func buildProjection(in *relation.Relation, lhs []rule.AttrPair, idx masterIndex) *groupProjection {
	n := in.NumRows()
	gp := &groupProjection{rowGroup: make([]int32, n)}
	gids := make(map[string]int32)
	var buf []byte
	for row := 0; row < n; row++ {
		var ok bool
		buf, ok = appendLHSKey(buf[:0], in, row, lhs, false)
		if !ok {
			gp.rowGroup[row] = -1
			continue
		}
		gid, seen := gids[string(buf)]
		if !seen {
			gid = int32(len(gp.hists))
			gids[string(buf)] = gid
			h := idx[string(buf)]
			gp.hists = append(gp.hists, h)
			if h != nil {
				gp.cert = append(gp.cert, h.Certainty())
				gp.arg = append(gp.arg, h.Arg)
			} else {
				gp.cert = append(gp.cert, 0)
				gp.arg = append(gp.arg, relation.Null)
			}
		}
		gp.rowGroup[row] = gid
	}
	return gp
}

// appendLHSKey appends the encoded LHS key of one row — the input-side
// attributes of each pair when master is false, the master-side ones
// when true — returning ok=false when any cell is Null. It is the
// single key builder shared by the master index, the scalar input key
// and the group projection, so the three can never drift apart.
//
//ermvet:hotpath
func appendLHSKey(buf []byte, rel *relation.Relation, row int, lhs []rule.AttrPair, master bool) ([]byte, bool) {
	for _, p := range lhs {
		a := p.Input
		if master {
			a = p.Master
		}
		c := rel.Code(row, a)
		if c == relation.Null {
			return buf, false
		}
		buf = appendCode(buf, c)
	}
	return buf, true
}

// appendGroupKey appends the projection cache key of a rule: the
// encoded (Input, Master) attribute pairs plus Y_m. Two rules with the
// same LHS and dependent master attribute share one projection
// regardless of their patterns.
//
//ermvet:hotpath
func appendGroupKey(buf []byte, r *rule.Rule) []byte {
	for _, p := range r.LHS {
		buf = appendCode(buf, int32(p.Input))
		buf = appendCode(buf, int32(p.Master))
	}
	return appendCode(buf, int32(r.Ym))
}
