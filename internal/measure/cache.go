package measure

import (
	"sync"
	"sync/atomic"

	"erminer/internal/relation"
)

// IndexCache is a thread-safe, build-once cache of master-side indexes,
// keyed by the encoded (LHS master attributes, Y_m) list of a rule. It
// is the shared read-only layer of the parallel evaluation engine:
// N evaluator shards borrow one cache, and per-key singleflight
// semantics guarantee that no two workers ever build the same
// (X_m, Y_m) index twice — concurrent requests for one key block until
// the single builder finishes, while requests for distinct keys proceed
// independently.
//
// A built index is immutable; readers need no further synchronisation
// (sync.Once publication establishes the happens-before edge).
type IndexCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry // guarded by mu
}

type cacheEntry struct {
	once sync.Once
	// built is set after the once body publishes idx, so ApplyDelta can
	// tell a finished index (patchable) from one still being built or
	// never requested (just dropped).
	built atomic.Bool
	idx   masterIndex
}

// NewIndexCache returns an empty cache.
func NewIndexCache() *IndexCache {
	return &IndexCache{entries: make(map[string]*cacheEntry)}
}

// get returns the index stored under key, invoking build at most once
// per key across all callers. built reports whether this call performed
// the build, so the calling shard can account for it in its Stats. The
// key is taken as bytes so the hit path never allocates (the compiler
// elides the string conversion in map lookups); it is copied to a
// string only on insert.
func (c *IndexCache) get(key []byte, build func() masterIndex) (idx masterIndex, built bool) {
	c.mu.Lock()
	e, ok := c.entries[string(key)]
	if !ok {
		//ermvet:ignore allocbudget one entry per distinct index key; hits take the read above
		e = &cacheEntry{}
		//ermvet:ignore allocbudget cache insert happens once per distinct index key
		c.entries[string(key)] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.idx = build()
		e.built.Store(true)
		built = true
	})
	return e.idx, built
}

// ApplyDelta reconciles the cache with a change to the master relation
// m, mirroring ColumnIndex.sync on the master side. Entries whose key —
// the encoded (LHS master attributes, Y_m) list laid down by
// Evaluator.index, 4 bytes per code — references an updated column are
// dropped (their histograms counted the old cell values); surviving
// built entries have the appended master rows spliced into their
// histograms, which is identical to a fresh build because rows are
// added in the same ascending order a full scan would visit them.
// Entries still being built (or malformed keys) are dropped
// conservatively. The caller must guarantee no evaluation runs
// concurrently with the master mutation, as everywhere else.
func (c *IndexCache) ApplyDelta(m *relation.Relation, ch relation.ChangeSet) {
	if ch.Empty() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.entries {
		if !e.built.Load() || len(k) < 4 || len(k)%4 != 0 {
			delete(c.entries, k)
			continue
		}
		ym := int(decodeCode(k[len(k)-4:]))
		drop := ch.Touches(ym)
		attrs := make([]int, 0, len(k)/4-1)
		for off := 0; off+4 < len(k); off += 4 {
			a := int(decodeCode(k[off:]))
			attrs = append(attrs, a)
			drop = drop || ch.Touches(a)
		}
		if drop {
			delete(c.entries, k)
			continue
		}
		spliceIndex(e.idx, m, attrs, ym, ch.OldRows, ch.Appended)
	}
}

// spliceIndex adds master rows [oldRows, oldRows+appended) to a built
// master index, skipping rows with a Null Y_m or any Null LHS cell
// exactly as buildIndex does.
func spliceIndex(idx masterIndex, m *relation.Relation, attrs []int, ym, oldRows, appended int) {
	var buf []byte
	for row := oldRows; row < oldRows+appended; row++ {
		y := m.Code(row, ym)
		if y == relation.Null {
			continue
		}
		buf = buf[:0]
		ok := true
		for _, a := range attrs {
			c := m.Code(row, a)
			if c == relation.Null {
				ok = false
				break
			}
			buf = appendCode(buf, c)
		}
		if !ok {
			continue
		}
		h := idx[string(buf)]
		if h == nil {
			h = &Hist{Counts: make(map[int32]int)}
			idx[string(buf)] = h
		}
		h.add(y)
	}
}

// Len returns the number of distinct indexes resident in the cache.
func (c *IndexCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
