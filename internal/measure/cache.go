package measure

import "sync"

// IndexCache is a thread-safe, build-once cache of master-side indexes,
// keyed by the encoded (LHS master attributes, Y_m) list of a rule. It
// is the shared read-only layer of the parallel evaluation engine:
// N evaluator shards borrow one cache, and per-key singleflight
// semantics guarantee that no two workers ever build the same
// (X_m, Y_m) index twice — concurrent requests for one key block until
// the single builder finishes, while requests for distinct keys proceed
// independently.
//
// A built index is immutable; readers need no further synchronisation
// (sync.Once publication establishes the happens-before edge).
type IndexCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry // guarded by mu
}

type cacheEntry struct {
	once sync.Once
	idx  masterIndex
}

// NewIndexCache returns an empty cache.
func NewIndexCache() *IndexCache {
	return &IndexCache{entries: make(map[string]*cacheEntry)}
}

// get returns the index stored under key, invoking build at most once
// per key across all callers. built reports whether this call performed
// the build, so the calling shard can account for it in its Stats. The
// key is taken as bytes so the hit path never allocates (the compiler
// elides the string conversion in map lookups); it is copied to a
// string only on insert.
func (c *IndexCache) get(key []byte, build func() masterIndex) (idx masterIndex, built bool) {
	c.mu.Lock()
	e, ok := c.entries[string(key)]
	if !ok {
		//ermvet:ignore allocbudget one entry per distinct index key; hits take the read above
		e = &cacheEntry{}
		//ermvet:ignore allocbudget cache insert happens once per distinct index key
		c.entries[string(key)] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.idx = build()
		built = true
	})
	return e.idx, built
}

// Len returns the number of distinct indexes resident in the cache.
func (c *IndexCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
