// Columnar posting-list layer of the evaluation engine (DESIGN.md
// decision 16). For each input attribute the ColumnIndex materialises,
// lazily and at most once, the posting list of every value code: the
// ascending row ids holding that code. A rule's pattern cover then
// reduces to a k-way intersection of sorted int32 lists instead of a
// MatchesPattern loop over every tuple, and the per-rule group
// projection (groups.go) turns the Evaluate inner loop into two array
// loads.

package measure

import (
	"sync"

	"erminer/internal/relation"
	"erminer/internal/rule"
)

// attrPostings holds the posting lists of one input attribute: rows maps
// each value code to the ascending row ids carrying it, and nonNull is
// the ascending list of all rows with a non-Null value (the universe a
// negated condition subtracts from). Immutable once built.
type attrPostings struct {
	rows    map[int32][]int32
	nonNull []int32
}

func buildAttrPostings(rel *relation.Relation, attr int) *attrPostings {
	col := rel.Column(attr)
	p := &attrPostings{rows: make(map[int32][]int32)}
	for row, c := range col {
		if c == relation.Null {
			continue
		}
		p.rows[c] = append(p.rows[c], int32(row))
		p.nonNull = append(p.nonNull, int32(row))
	}
	return p
}

// postingEntry and groupEntry give each cached structure per-key
// singleflight semantics, mirroring IndexCache: concurrent requests for
// one entry block until the single builder finishes, requests for
// distinct entries proceed independently.
type postingEntry struct {
	once sync.Once
	p    *attrPostings
}

type groupEntry struct {
	once sync.Once
	g    *groupProjection
}

// ColumnIndex is the shared columnar store of one input relation:
// per-attribute posting lists, per-rule group projections (groups.go)
// and the identity row list. It is the input-side counterpart of
// IndexCache and is deliberately kept separate from it — IndexCache is
// keyed only by master-side attribute lists and is shared across
// requests with different input relations in the serving layer, so
// caching input-derived structures there would both leak memory per
// request and break the cache-size accounting the shard tests pin
// (DESIGN.md decision 16).
//
// A ColumnIndex is safe for concurrent use. Entries are immutable once
// published. Every access validates the relation's mutation counter and
// drops all entries when the relation has changed since they were
// built; mutating the relation while another goroutine evaluates is not
// supported (it never was — evaluation reads columns without locks).
type ColumnIndex struct {
	rel *relation.Relation

	mu sync.Mutex
	// version is the relation mutation counter the resident entries were
	// built against. guarded by mu
	version int64
	// attrs holds one posting entry per input attribute. guarded by mu
	attrs []*postingEntry
	// groups holds the group projections, keyed by the encoded
	// (LHS pairs, Y_m) list of a rule. guarded by mu
	groups map[string]*groupEntry
	// all caches the identity row list [0, NumRows). guarded by mu
	all []int32
}

// NewColumnIndex returns an empty columnar store over rel.
func NewColumnIndex(rel *relation.Relation) *ColumnIndex {
	return &ColumnIndex{
		rel:     rel,
		version: rel.Version(),
		attrs:   make([]*postingEntry, rel.NumCols()),
		groups:  make(map[string]*groupEntry),
	}
}

// Relation returns the input relation the store indexes.
func (ci *ColumnIndex) Relation() *relation.Relation { return ci.rel }

// Each accessor below re-checks the relation's mutation counter under
// ci.mu and drops every cached structure when it changed. The
// invalidation is inlined rather than factored into a *Locked helper so
// the guardedby analysis can verify, function by function, that every
// access to the annotated fields happens under the lock.

// postings returns the posting lists of one attribute, building them at
// most once per relation version.
func (ci *ColumnIndex) postings(attr int) *attrPostings {
	ci.mu.Lock()
	if v := ci.rel.Version(); v != ci.version {
		ci.version = v
		//ermvet:ignore allocbudget relation-version invalidation: rebuilt only when the input mutates
		ci.attrs = make([]*postingEntry, ci.rel.NumCols())
		//ermvet:ignore allocbudget relation-version invalidation: rebuilt only when the input mutates
		ci.groups = make(map[string]*groupEntry)
		ci.all = nil
	}
	e := ci.attrs[attr]
	if e == nil {
		//ermvet:ignore allocbudget one entry per attribute per relation version
		e = &postingEntry{}
		ci.attrs[attr] = e
	}
	ci.mu.Unlock()
	e.once.Do(func() { e.p = buildAttrPostings(ci.rel, attr) })
	return e.p
}

// allRows returns the shared identity row list [0, NumRows). Callers
// must not modify or retain it beyond the current evaluation.
func (ci *ColumnIndex) allRows() []int32 {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	if v := ci.rel.Version(); v != ci.version {
		ci.version = v
		//ermvet:ignore allocbudget relation-version invalidation: rebuilt only when the input mutates
		ci.attrs = make([]*postingEntry, ci.rel.NumCols())
		//ermvet:ignore allocbudget relation-version invalidation: rebuilt only when the input mutates
		ci.groups = make(map[string]*groupEntry)
		ci.all = nil
	}
	if ci.all == nil {
		//ermvet:ignore allocbudget identity row list built once per relation version
		all := make([]int32, ci.rel.NumRows())
		for i := range all {
			all[i] = int32(i)
		}
		ci.all = all
	}
	return ci.all
}

// projection returns the group projection stored under key, invoking
// build at most once per key and relation version. key is copied on
// insert, so callers may reuse the backing buffer.
func (ci *ColumnIndex) projection(key []byte, build func() *groupProjection) *groupProjection {
	ci.mu.Lock()
	if v := ci.rel.Version(); v != ci.version {
		ci.version = v
		//ermvet:ignore allocbudget relation-version invalidation: rebuilt only when the input mutates
		ci.attrs = make([]*postingEntry, ci.rel.NumCols())
		//ermvet:ignore allocbudget relation-version invalidation: rebuilt only when the input mutates
		ci.groups = make(map[string]*groupEntry)
		ci.all = nil
	}
	e, ok := ci.groups[string(key)]
	if !ok {
		//ermvet:ignore allocbudget one entry per rule key per relation version
		e = &groupEntry{}
		//ermvet:ignore allocbudget cache insert happens once per rule key; hits take the read above
		ci.groups[string(key)] = e
	}
	ci.mu.Unlock()
	e.once.Do(func() { e.g = build() })
	return e.g
}

// mergeInto appends the ascending union of a and b (both ascending,
// mutually disjoint or not) to dst and returns it.
//
//ermvet:hotpath
func mergeInto(dst, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case b[j] < a[i]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// subtractInto appends base minus sub (both ascending) to dst and
// returns it.
//
//ermvet:hotpath
func subtractInto(dst, base, sub []int32) []int32 {
	j := 0
	for _, v := range base {
		for j < len(sub) && sub[j] < v {
			j++
		}
		if j < len(sub) && sub[j] == v {
			continue
		}
		dst = append(dst, v)
	}
	return dst
}

// intersectInto appends the ascending intersection of a and b to dst
// and returns it. When the lengths are lopsided it gallops through the
// longer list with a doubling probe instead of stepping linearly.
//
//ermvet:hotpath
func intersectInto(dst, a, b []int32) []int32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return dst
	}
	if len(b) >= 8*len(a) {
		// Galloping: binary-search each element of the short list in the
		// remaining suffix of the long one.
		lo := 0
		for _, v := range a {
			step := 1
			hi := lo
			for hi < len(b) && b[hi] < v {
				lo = hi + 1
				hi += step
				step *= 2
			}
			if hi > len(b) {
				hi = len(b)
			}
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if b[mid] < v {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < len(b) && b[lo] == v {
				dst = append(dst, v)
				lo++
			}
			if lo >= len(b) {
				break
			}
		}
		return dst
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case b[j] < a[i]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// condBufs are the per-condition scratch buffers of a columnar cover
// computation: two ping-pong slots for the code-set union and one for
// the negation difference. They live on the evaluator and are reused
// across Evaluate calls, keeping the steady state allocation-free.
type condBufs struct {
	a, b, diff []int32
}

// condRows computes the ascending row ids satisfying cond. The result
// may alias the attribute's posting lists or the scratch buffers, so
// callers must copy it before retaining it.
//
//ermvet:hotpath
func condRows(p *attrPostings, cond rule.Condition, bufs *condBufs) []int32 {
	if !cond.Negate && len(cond.Codes) == 1 {
		return p.rows[cond.Codes[0]]
	}
	// Union of the code set's posting lists via iterative pairwise merge
	// into the ping-pong buffers. The lists are disjoint (each row holds
	// one code) but interleave arbitrarily.
	var acc []int32
	useA := true
	for _, code := range cond.Codes {
		rows := p.rows[code]
		if len(rows) == 0 {
			continue
		}
		if acc == nil {
			acc = rows
			continue
		}
		var dst []int32
		if useA {
			dst = mergeInto(bufs.a[:0], acc, rows)
			bufs.a = dst
		} else {
			dst = mergeInto(bufs.b[:0], acc, rows)
			bufs.b = dst
		}
		acc = dst
		useA = !useA
	}
	if !cond.Negate {
		return acc
	}
	if acc == nil {
		return p.nonNull
	}
	bufs.diff = subtractInto(bufs.diff[:0], p.nonNull, acc)
	return bufs.diff
}
