// Columnar posting-list layer of the evaluation engine (DESIGN.md
// decision 16). For each input attribute the ColumnIndex materialises,
// lazily and at most once, the posting list of every value code: the
// ascending row ids holding that code. A rule's pattern cover then
// reduces to a k-way intersection of sorted int32 lists instead of a
// MatchesPattern loop over every tuple, and the per-rule group
// projection (groups.go) turns the Evaluate inner loop into two array
// loads.

package measure

import (
	"sync"
	"sync/atomic"

	"erminer/internal/relation"
	"erminer/internal/rule"
)

// attrPostings holds the posting lists of one input attribute: rows maps
// each value code to the ascending row ids carrying it, and nonNull is
// the ascending list of all rows with a non-Null value (the universe a
// negated condition subtracts from). Immutable once built.
type attrPostings struct {
	rows    map[int32][]int32
	nonNull []int32
}

func buildAttrPostings(rel *relation.Relation, attr int) *attrPostings {
	col := rel.Column(attr)
	p := &attrPostings{rows: make(map[int32][]int32)}
	for row, c := range col {
		if c == relation.Null {
			continue
		}
		p.rows[c] = append(p.rows[c], int32(row))
		p.nonNull = append(p.nonNull, int32(row))
	}
	return p
}

// postingEntry and groupEntry give each cached structure per-key
// singleflight semantics, mirroring IndexCache: concurrent requests for
// one entry block until the single builder finishes, requests for
// distinct entries proceed independently.
//
// version records the relation mutation counter the entry was created
// at; the builder re-validates it after building and only then marks
// the entry clean. A mutation landing between entry creation and build
// completion therefore can never publish torn data under an old stamp —
// the entry stays unclean, accessors drop it and retry.
type postingEntry struct {
	once    sync.Once
	version int64
	clean   atomic.Bool
	p       *attrPostings
}

type groupEntry struct {
	once    sync.Once
	version int64
	clean   atomic.Bool
	g       *groupProjection
}

// ColumnIndex is the shared columnar store of one input relation:
// per-attribute posting lists, per-rule group projections (groups.go)
// and the identity row list. It is the input-side counterpart of
// IndexCache and is deliberately kept separate from it — IndexCache is
// keyed only by master-side attribute lists and is shared across
// requests with different input relations in the serving layer, so
// caching input-derived structures there would both leak memory per
// request and break the cache-size accounting the shard tests pin
// (DESIGN.md decision 16).
//
// A ColumnIndex is safe for concurrent use. Entries are immutable once
// published. Every access validates the relation's mutation counter;
// when the relation has changed since the entries were built the store
// patches itself through the relation's change log — splicing appended
// rows into posting lists and dropping only the projections whose
// columns were touched — and falls back to dropping everything when the
// log no longer covers the gap (DESIGN.md decision 19). Mutating the
// relation while another goroutine evaluates is not supported (it never
// was — evaluation reads columns without locks).
type ColumnIndex struct {
	rel *relation.Relation

	mu sync.Mutex
	// version is the relation mutation counter the resident entries were
	// built against. guarded by mu
	version int64
	// attrs holds one posting entry per input attribute. guarded by mu
	attrs []*postingEntry
	// groups holds the group projections, keyed by the encoded
	// (LHS pairs, Y_m) list of a rule. guarded by mu
	groups map[string]*groupEntry
	// all caches the identity row list [0, NumRows). guarded by mu
	all []int32
}

// NewColumnIndex returns an empty columnar store over rel.
func NewColumnIndex(rel *relation.Relation) *ColumnIndex {
	return &ColumnIndex{
		rel:     rel,
		version: rel.Version(),
		attrs:   make([]*postingEntry, rel.NumCols()),
		groups:  make(map[string]*groupEntry),
	}
}

// Relation returns the input relation the store indexes.
func (ci *ColumnIndex) Relation() *relation.Relation { return ci.rel }

// Each accessor below first brings the store up to the relation's
// current version via sync — which patches through the change log or
// drops wholesale — then re-checks the counter under its own lock
// before touching the guarded fields. sync is self-locking rather than
// a *Locked helper so the guardedby analysis can verify, function by
// function, that every access to the annotated fields happens under
// the lock. Builds run outside the lock via once.Do; the entry's
// version stamp plus the post-build clean check close the torn-build
// window a bare version check left open.

// sync reconciles the cached structures with the relation's mutation
// counter. When the relation's change log covers the gap since the
// resident version, entries are patched: appended rows are spliced
// into each surviving attribute's posting lists and the identity row
// list, attributes whose existing cells were overwritten are dropped,
// and group projections are dropped only when appends occurred (their
// rowGroup must cover the new rows) or their LHS input attributes were
// touched. When the log has expired, everything is dropped.
//
//ermvet:coldpath runs work only when the relation mutated; steady-state accesses take the version fast path
func (ci *ColumnIndex) sync() {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	v := ci.rel.Version()
	if v == ci.version {
		return
	}
	ch, ok := ci.rel.ChangesSince(ci.version)
	if !ok {
		ci.version = v
		ci.attrs = make([]*postingEntry, ci.rel.NumCols())
		ci.groups = make(map[string]*groupEntry)
		ci.all = nil
		return
	}
	for attr, e := range ci.attrs {
		if e == nil {
			continue
		}
		if !e.clean.Load() || ch.Touches(attr) {
			ci.attrs[attr] = nil
			continue
		}
		spliceAppends(e.p, ci.rel, attr, ch.OldRows, ch.Appended)
	}
	if ch.Appended > 0 {
		ci.groups = make(map[string]*groupEntry)
		if ci.all != nil {
			if len(ci.all) == ch.OldRows {
				for row := ch.OldRows; row < ch.OldRows+ch.Appended; row++ {
					ci.all = append(ci.all, int32(row))
				}
			} else {
				ci.all = nil
			}
		}
	} else {
		for k, e := range ci.groups {
			if !e.clean.Load() || groupKeyTouched(k, ch, false) {
				delete(ci.groups, k)
			}
		}
	}
	ci.version = v
}

// spliceAppends extends one attribute's posting lists with the rows
// appended since the entry was built. Rows are visited in ascending
// order, so the result is identical to a fresh build over the grown
// column.
func spliceAppends(p *attrPostings, rel *relation.Relation, attr, oldRows, appended int) {
	if appended == 0 {
		return
	}
	col := rel.Column(attr)
	for row := oldRows; row < oldRows+appended; row++ {
		c := col[row]
		if c == relation.Null {
			continue
		}
		p.rows[c] = append(p.rows[c], int32(row))
		p.nonNull = append(p.nonNull, int32(row))
	}
}

// groupKeyTouched reports whether a group-projection cache key — the
// encoded (Input, Master) attribute pairs plus Y_m laid down by
// appendGroupKey, 4 bytes per code — references a column the change
// set touched. With master false only the Input attribute of each pair
// is consulted (input-side invalidation: rowGroup is the only
// input-derived piece); with master true the Master attributes and Y_m
// are (master-side invalidation: hists, cert and arg capture master
// state at build time). Malformed keys invalidate conservatively.
func groupKeyTouched(key string, ch relation.ChangeSet, master bool) bool {
	if len(key) < 4 || (len(key)-4)%8 != 0 {
		return true
	}
	pairs := (len(key) - 4) / 8
	for i := 0; i < pairs; i++ {
		off := i * 8
		if master {
			off += 4
		}
		if ch.Touches(int(decodeCode(key[off:]))) {
			return true
		}
	}
	if master {
		return ch.Touches(int(decodeCode(key[len(key)-4:])))
	}
	return false
}

// decodeCode reads one little-endian int32 from the head of s,
// inverting appendCode.
func decodeCode(s string) int32 {
	return int32(s[0]) | int32(s[1])<<8 | int32(s[2])<<16 | int32(s[3])<<24
}

// ApplyMasterDelta invalidates the group projections affected by a
// change to the master relation. Projections capture each group's
// master histogram, certainty and argmax fix at build time, so master
// appends invalidate every projection, while cell updates invalidate
// only the projections whose LHS master attributes or Y_m were
// touched. The input-side structures (posting lists, identity row
// list) never read the master and survive untouched.
func (ci *ColumnIndex) ApplyMasterDelta(ch relation.ChangeSet) {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	if ch.Empty() {
		return
	}
	if ch.Appended > 0 {
		ci.groups = make(map[string]*groupEntry)
		return
	}
	for k, e := range ci.groups {
		if !e.clean.Load() || groupKeyTouched(k, ch, true) {
			delete(ci.groups, k)
		}
	}
}

// postings returns the posting lists of one attribute, building them at
// most once per relation version.
func (ci *ColumnIndex) postings(attr int) *attrPostings {
	for {
		ci.sync()
		ci.mu.Lock()
		if ci.rel.Version() != ci.version {
			ci.mu.Unlock()
			continue
		}
		e := ci.attrs[attr]
		if e == nil {
			//ermvet:ignore allocbudget one entry per attribute per relation version
			e = &postingEntry{version: ci.version}
			ci.attrs[attr] = e
		}
		ci.mu.Unlock()
		e.once.Do(func() {
			e.p = buildAttrPostings(ci.rel, attr)
			if ci.rel.Version() == e.version {
				e.clean.Store(true)
			}
		})
		if e.clean.Load() {
			return e.p
		}
		ci.dropTornPosting(attr, e)
	}
}

// dropTornPosting removes a posting entry whose build raced a
// mutation, so the caller's retry rebuilds against the settled
// relation.
func (ci *ColumnIndex) dropTornPosting(attr int, e *postingEntry) {
	ci.mu.Lock()
	if ci.attrs[attr] == e {
		ci.attrs[attr] = nil
	}
	ci.mu.Unlock()
}

// allRows returns the shared identity row list [0, NumRows). Callers
// must not modify or retain it beyond the current evaluation.
func (ci *ColumnIndex) allRows() []int32 {
	for {
		ci.sync()
		ci.mu.Lock()
		if ci.rel.Version() != ci.version {
			ci.mu.Unlock()
			continue
		}
		if ci.all == nil {
			//ermvet:ignore allocbudget identity row list built once per relation version
			all := make([]int32, ci.rel.NumRows())
			for i := range all {
				all[i] = int32(i)
			}
			ci.all = all
		}
		all := ci.all
		ci.mu.Unlock()
		return all
	}
}

// projection returns the group projection stored under key, invoking
// build at most once per key and relation version. key is copied on
// insert, so callers may reuse the backing buffer.
func (ci *ColumnIndex) projection(key []byte, build func() *groupProjection) *groupProjection {
	for {
		ci.sync()
		ci.mu.Lock()
		if ci.rel.Version() != ci.version {
			ci.mu.Unlock()
			continue
		}
		e, ok := ci.groups[string(key)]
		if !ok {
			//ermvet:ignore allocbudget one entry per rule key per relation version
			e = &groupEntry{version: ci.version}
			//ermvet:ignore allocbudget cache insert happens once per rule key; hits take the read above
			ci.groups[string(key)] = e
		}
		ci.mu.Unlock()
		e.once.Do(func() {
			e.g = build()
			if ci.rel.Version() == e.version {
				e.clean.Store(true)
			}
		})
		if e.clean.Load() {
			return e.g
		}
		ci.dropTornGroup(key, e)
	}
}

// dropTornGroup removes a projection entry whose build raced a
// mutation; the caller retries against the settled relation.
func (ci *ColumnIndex) dropTornGroup(key []byte, e *groupEntry) {
	ci.mu.Lock()
	if ci.groups[string(key)] == e {
		//ermvet:ignore allocbudget torn-build recovery only, never on the steady-state path
		delete(ci.groups, string(key))
	}
	ci.mu.Unlock()
}

// mergeInto appends the ascending union of a and b (both ascending,
// mutually disjoint or not) to dst and returns it.
//
//ermvet:hotpath
func mergeInto(dst, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case b[j] < a[i]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// subtractInto appends base minus sub (both ascending) to dst and
// returns it.
//
//ermvet:hotpath
func subtractInto(dst, base, sub []int32) []int32 {
	j := 0
	for _, v := range base {
		for j < len(sub) && sub[j] < v {
			j++
		}
		if j < len(sub) && sub[j] == v {
			continue
		}
		dst = append(dst, v)
	}
	return dst
}

// intersectInto appends the ascending intersection of a and b to dst
// and returns it. When the lengths are lopsided it gallops through the
// longer list with a doubling probe instead of stepping linearly.
//
//ermvet:hotpath
func intersectInto(dst, a, b []int32) []int32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return dst
	}
	if len(b) >= 8*len(a) {
		// Galloping: binary-search each element of the short list in the
		// remaining suffix of the long one.
		lo := 0
		for _, v := range a {
			step := 1
			hi := lo
			for hi < len(b) && b[hi] < v {
				lo = hi + 1
				hi += step
				step *= 2
			}
			if hi > len(b) {
				hi = len(b)
			}
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if b[mid] < v {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < len(b) && b[lo] == v {
				dst = append(dst, v)
				lo++
			}
			if lo >= len(b) {
				break
			}
		}
		return dst
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case b[j] < a[i]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// condBufs are the per-condition scratch buffers of a columnar cover
// computation: two ping-pong slots for the code-set union and one for
// the negation difference. They live on the evaluator and are reused
// across Evaluate calls, keeping the steady state allocation-free.
type condBufs struct {
	a, b, diff []int32
}

// condRows computes the ascending row ids satisfying cond. The result
// may alias the attribute's posting lists or the scratch buffers, so
// callers must copy it before retaining it.
//
//ermvet:hotpath
func condRows(p *attrPostings, cond rule.Condition, bufs *condBufs) []int32 {
	if !cond.Negate && len(cond.Codes) == 1 {
		return p.rows[cond.Codes[0]]
	}
	// Union of the code set's posting lists via iterative pairwise merge
	// into the ping-pong buffers. The lists are disjoint (each row holds
	// one code) but interleave arbitrarily.
	var acc []int32
	useA := true
	for _, code := range cond.Codes {
		rows := p.rows[code]
		if len(rows) == 0 {
			continue
		}
		if acc == nil {
			acc = rows
			continue
		}
		var dst []int32
		if useA {
			dst = mergeInto(bufs.a[:0], acc, rows)
			bufs.a = dst
		} else {
			dst = mergeInto(bufs.b[:0], acc, rows)
			bufs.b = dst
		}
		acc = dst
		useA = !useA
	}
	if !cond.Negate {
		return acc
	}
	if acc == nil {
		return p.nonNull
	}
	bufs.diff = subtractInto(bufs.diff[:0], p.nonNull, acc)
	return bufs.diff
}
