package measure

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"erminer/internal/relation"
	"erminer/internal/rule"
)

// fuzzPair builds a random input/master pair over a 4-attribute schema
// (A, B, G, Y matched to A, B, Y) with Null cells sprinkled in, so the
// differential fuzz exercises the -1 group id, absent master keys and
// the Null-never-matches pattern semantics.
func fuzzPair(rng *rand.Rand, nIn, nMaster int) (input, master *relation.Relation) {
	pool := relation.NewPool()
	in := relation.NewSchema(
		relation.Attribute{Name: "A", Domain: "a"},
		relation.Attribute{Name: "B", Domain: "b"},
		relation.Attribute{Name: "G"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	ms := relation.NewSchema(
		relation.Attribute{Name: "A", Domain: "a"},
		relation.Attribute{Name: "B", Domain: "b"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	cell := func(prefix string, dom int) string {
		if rng.Intn(6) == 0 {
			return "" // Null
		}
		return fmt.Sprintf("%s%d", prefix, rng.Intn(dom))
	}
	input = relation.New(in, pool)
	for i := 0; i < nIn; i++ {
		input.AppendRow([]string{cell("a", 4), cell("b", 3), cell("g", 3), cell("y", 4)})
	}
	master = relation.New(ms, pool)
	for i := 0; i < nMaster; i++ {
		master.AppendRow([]string{cell("a", 4), cell("b", 3), cell("y", 4)})
	}
	return input, master
}

// fuzzRules derives a random rule set over fuzzPair's schema: random
// LHS subsets and random pattern conditions (either polarity, one to
// three codes, possibly over codes absent from the input).
func fuzzRules(rng *rand.Rand, input *relation.Relation) []*rule.Rule {
	allPairs := []rule.AttrPair{{Input: 0, Master: 0}, {Input: 1, Master: 1}}
	var rules []*rule.Rule
	for i := 0; i < 12; i++ {
		var lhs []rule.AttrPair
		for _, p := range allPairs {
			if rng.Intn(2) == 0 {
				lhs = append(lhs, p)
			}
		}
		var pattern []rule.Condition
		for attr := 0; attr < 3; attr++ {
			if rng.Intn(3) != 0 {
				continue
			}
			ncodes := 1 + rng.Intn(3)
			codes := make([]int32, ncodes)
			for j := range codes {
				// Codes range over the dictionary, including values the
				// input column may not contain.
				codes[j] = int32(rng.Intn(input.Dict(attr).Size() + 1))
			}
			cond := rule.NewCondition(attr, codes, "")
			cond.Negate = rng.Intn(3) == 0
			if len(cond.Codes) > 0 {
				pattern = append(pattern, cond)
			}
		}
		rules = append(rules, rule.New(lhs, 3, 2, pattern))
	}
	return rules
}

// FuzzEvaluateColumnar is the differential fuzz of the columnar engine:
// for random relations and rules, Evaluate and PatternCover on the
// columnar default must be bit-identical — measures, cover contents and
// cover order — to the retained scalar reference path, on both full
// scans and parent-cover-restricted evaluations.
func FuzzEvaluateColumnar(f *testing.F) {
	f.Add(int64(1), uint8(24), uint8(20))
	f.Add(int64(2), uint8(1), uint8(1))
	f.Add(int64(3), uint8(0), uint8(9))
	f.Add(int64(4), uint8(100), uint8(3))
	f.Add(int64(5), uint8(63), uint8(63))
	f.Fuzz(func(t *testing.T, seed int64, nIn, nMaster uint8) {
		rng := rand.New(rand.NewSource(seed))
		input, master := fuzzPair(rng, int(nIn), int(nMaster))
		col := NewEvaluator(input, master, nil)
		sc := NewEvaluator(input, master, nil)
		sc.Scalar = true
		for i, r := range fuzzRules(rng, input) {
			want := sc.Evaluate(r, nil)
			got := col.Evaluate(r, nil)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("rule %d (%s): Evaluate(nil) diverged:\nscalar   %+v\ncolumnar %+v",
					i, r.Key(), want, got)
			}
			if pc := col.PatternCover(r, nil); !reflect.DeepEqual(pc, want.PatternCover) {
				t.Fatalf("rule %d (%s): PatternCover(nil) = %v, want %v", i, r.Key(), pc, want.PatternCover)
			}
			parent := make([]int32, 0, len(want.PatternCover))
			for j, row := range want.PatternCover {
				if j%2 == 0 {
					parent = append(parent, row)
				}
			}
			want2 := sc.Evaluate(r, parent)
			got2 := col.Evaluate(r, parent)
			if !reflect.DeepEqual(want2, got2) {
				t.Fatalf("rule %d (%s): Evaluate(parent) diverged:\nscalar   %+v\ncolumnar %+v",
					i, r.Key(), want2, got2)
			}
			col.ReleaseCover(got.PatternCover)
			col.ReleaseCover(got2.PatternCover)
		}
	})
}
