package measure

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"erminer/internal/relation"
	"erminer/internal/rule"
)

// synthPair builds an n-row input / master pair with a planted
// dependency Y = f(A, B) and a pattern attribute G, large enough to
// trigger chunked scans and give concurrent shards real work.
func synthPair(n int, seed int64) (input, master *relation.Relation) {
	rng := rand.New(rand.NewSource(seed))
	pool := relation.NewPool()
	in := relation.NewSchema(
		relation.Attribute{Name: "A", Domain: "a"},
		relation.Attribute{Name: "B", Domain: "b"},
		relation.Attribute{Name: "G"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	ms := relation.NewSchema(
		relation.Attribute{Name: "A", Domain: "a"},
		relation.Attribute{Name: "B", Domain: "b"},
		relation.Attribute{Name: "Y", Domain: "y"},
	)
	input = relation.New(in, pool)
	master = relation.New(ms, pool)
	for i := 0; i < n; i++ {
		a, b := rng.Intn(6), rng.Intn(6)
		y := fmt.Sprintf("y%d", (a*3+b*5)%7)
		g := fmt.Sprintf("g%d", rng.Intn(3))
		input.AppendRow([]string{
			fmt.Sprintf("a%d", a), fmt.Sprintf("b%d", b), g, y,
		})
		my := (a*3 + b*5) % 7
		if rng.Intn(17) == 0 {
			my = (my + 1) % 7 // master noise keeps certainty < 1
		}
		master.AppendRow([]string{
			fmt.Sprintf("a%d", a), fmt.Sprintf("b%d", b), fmt.Sprintf("y%d", my),
		})
	}
	return input, master
}

// synthRules enumerates a mixed rule set over synthPair's schema:
// varying LHS lengths (distinct cache keys) and guard patterns.
func synthRules(input *relation.Relation) []*rule.Rule {
	var rules []*rule.Rule
	lhs := [][]rule.AttrPair{
		{{Input: 0, Master: 0}},
		{{Input: 1, Master: 1}},
		{{Input: 0, Master: 0}, {Input: 1, Master: 1}},
	}
	for _, l := range lhs {
		rules = append(rules, rule.New(l, 3, 2, nil))
		for _, g := range input.DomainCodes(2) {
			r := rule.New(l, 3, 2, nil).WithCondition(rule.Eq(2, g))
			rules = append(rules, r)
		}
	}
	return rules
}

// TestKeyBufNoAliasing is the regression test for the latent hazard
// where index() and inputKey() shared e.keyBuf: an index construction
// interleaved between an inputKey call and the use of its result would
// have rewritten the buffer under it. The two paths now own separate
// buffers.
func TestKeyBufNoAliasing(t *testing.T) {
	input, master := fig1()
	ev := NewEvaluator(input, master, nil)
	r := rule.New([]rule.AttrPair{{Input: 1, Master: 2}}, 6, 7, nil)

	key1, ok := ev.inputKey(r, 1)
	if !ok {
		t.Fatal("inputKey not ok on row 1")
	}
	idx := ev.index(r) // interleaved index construction
	key2, ok := ev.inputKey(r, 1)
	if !ok || key1 != key2 {
		t.Fatalf("inputKey unstable across index(): %q vs %q", key1, key2)
	}
	if _, ok := idx[key1]; !ok {
		t.Fatalf("input key %q no longer addresses the index", key1)
	}
	if len(ev.keyBuf) > 0 && len(ev.idxKeyBuf) > 0 && &ev.keyBuf[0] == &ev.idxKeyBuf[0] {
		t.Fatal("inputKey and index share one buffer backing array")
	}

	// Interleaving rules of different LHS lengths must match fresh
	// single-rule evaluators.
	input2, master2 := synthPair(256, 3)
	shared := NewEvaluator(input2, master2, nil)
	rules := synthRules(input2)
	for range [3]struct{}{} {
		for i, r := range rules {
			got := shared.Evaluate(r, nil)
			want := NewEvaluator(input2, master2, nil).Evaluate(r, nil)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("rule %d: interleaved evaluation diverged: %+v vs %+v", i, got, want)
			}
		}
	}
}

func TestStatsAdd(t *testing.T) {
	s := Stats{Evaluations: 1, IndexBuilds: 2, TuplesScanned: 3}
	s.Add(Stats{Evaluations: 10, IndexBuilds: 20, TuplesScanned: 30})
	if s != (Stats{Evaluations: 11, IndexBuilds: 22, TuplesScanned: 33}) {
		t.Fatalf("Stats.Add: got %+v", s)
	}
}

// TestShardConcurrency runs many shards of one evaluator concurrently
// over a mixed rule set and checks that (a) every result is identical
// to a fresh serial evaluator's, (b) the merged shard stats equal the
// serial totals exactly, and (c) singleflight built each distinct index
// exactly once across all workers. Run under -race this is the
// correctness gate for the shared cache.
func TestShardConcurrency(t *testing.T) {
	input, master := synthPair(2000, 7)
	rules := synthRules(input)

	serial := NewEvaluator(input, master, nil)
	want := make([]Measures, len(rules))
	for i, r := range rules {
		want[i] = serial.Evaluate(r, nil)
	}

	const workers = 8
	const rounds = 4
	ev := NewEvaluator(input, master, nil)
	shards := make([]*Evaluator, workers)
	for i := range shards {
		shards[i] = ev.Shard()
	}
	var wg sync.WaitGroup
	got := make([][]Measures, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shard := shards[w]
			out := make([]Measures, 0, rounds*len(rules))
			for round := 0; round < rounds; round++ {
				for _, r := range rules {
					out = append(out, shard.Evaluate(r, nil))
				}
			}
			got[w] = out
		}(w)
	}
	wg.Wait()

	for w := 0; w < workers; w++ {
		for i := range got[w] {
			if !reflect.DeepEqual(got[w][i], want[i%len(rules)]) {
				t.Fatalf("shard %d result %d diverged from serial", w, i)
			}
		}
	}

	var merged Stats
	for _, shard := range shards {
		merged.Add(shard.Stats)
	}
	if wantEvals := workers * rounds * len(rules); merged.Evaluations != wantEvals {
		t.Fatalf("merged Evaluations = %d, want %d", merged.Evaluations, wantEvals)
	}
	if wantScanned := workers * rounds * len(rules) * input.NumRows(); merged.TuplesScanned != wantScanned {
		t.Fatalf("merged TuplesScanned = %d, want %d", merged.TuplesScanned, wantScanned)
	}
	// Every distinct index built exactly once across all shards, and no
	// more indexes than the serial run built.
	if merged.IndexBuilds != serial.Stats.IndexBuilds {
		t.Fatalf("merged IndexBuilds = %d, serial built %d", merged.IndexBuilds, serial.Stats.IndexBuilds)
	}
	if ev.Cache().Len() != merged.IndexBuilds {
		t.Fatalf("cache holds %d indexes, shards report %d builds", ev.Cache().Len(), merged.IndexBuilds)
	}
}

// TestParallelScanDeterminism checks that chunked full-relation scans
// (Evaluate and PatternCover with a nil parent cover) return exactly
// the serial result at every worker count, including counts that do not
// divide the row count.
func TestParallelScanDeterminism(t *testing.T) {
	input, master := synthPair(4096+37, 11)
	rules := synthRules(input)
	for _, workers := range []int{2, 3, 8, 64} {
		par := NewEvaluator(input, master, nil)
		par.Parallelism = workers
		serial := NewEvaluator(input, master, nil)
		for i, r := range rules {
			if !reflect.DeepEqual(par.Evaluate(r, nil), serial.Evaluate(r, nil)) {
				t.Fatalf("workers=%d rule %d: Evaluate diverged", workers, i)
			}
			if !reflect.DeepEqual(par.PatternCover(r, nil), serial.PatternCover(r, nil)) {
				t.Fatalf("workers=%d rule %d: PatternCover diverged", workers, i)
			}
		}
		if par.Stats != serial.Stats {
			t.Fatalf("workers=%d: stats diverged: %+v vs %+v", workers, par.Stats, serial.Stats)
		}
	}
}
