package measure

import (
	"math"
	"math/rand"
	"testing"

	"erminer/internal/relation"
	"erminer/internal/rule"
)

// fig1 reconstructs the paper's Figure 1: the registration input data D
// and the national COVID-19 records master data D_m. Attribute indices:
//
//	input:  0 Name, 1 City, 2 ZIP, 3 AC, 4 Phone, 5 Sex, 6 Case, 7 Date, 8 Overseas
//	master: 0 FN, 1 LN, 2 City, 3 Zip, 4 AC, 5 Phone, 6 Sex, 7 Infection, 8 Date
func fig1() (input, master *relation.Relation) {
	pool := relation.NewPool()
	in := relation.NewSchema(
		relation.Attribute{Name: "Name", Domain: "name"},
		relation.Attribute{Name: "City", Domain: "city"},
		relation.Attribute{Name: "ZIP", Domain: "zip"},
		relation.Attribute{Name: "AC", Domain: "ac"},
		relation.Attribute{Name: "Phone", Domain: "phone"},
		relation.Attribute{Name: "Sex", Domain: "sex"},
		relation.Attribute{Name: "Case", Domain: "case"},
		relation.Attribute{Name: "Date", Domain: "date"},
		relation.Attribute{Name: "Overseas"},
	)
	ms := relation.NewSchema(
		relation.Attribute{Name: "FN", Domain: "name"},
		relation.Attribute{Name: "LN"},
		relation.Attribute{Name: "City", Domain: "city"},
		relation.Attribute{Name: "Zip", Domain: "zip"},
		relation.Attribute{Name: "AC", Domain: "ac"},
		relation.Attribute{Name: "Phone", Domain: "phone"},
		relation.Attribute{Name: "Sex", Domain: "sex"},
		relation.Attribute{Name: "Infection", Domain: "case"},
		relation.Attribute{Name: "Date", Domain: "date"},
	)
	input = relation.New(in, pool)
	input.AppendRow([]string{"Kevin", "HZ", "", "", "325-8455", "Male", "", "2021-12", "No"})
	input.AppendRow([]string{"Kyrie", "BJ", "10021", "010", "358-1553", "", "contact with imports", "2021-11", "No"})
	input.AppendRow([]string{"Robin", "HZ", "31200", "", "325-7538", "Male", "Others", "2021-12", "Yes"})

	master = relation.New(ms, pool)
	master.AppendRow([]string{"Kevin", "Lees", "SZ", "51800", "755", "625-0418", "Male", "contact with imports", "2021-10"})
	master.AppendRow([]string{"Kyrie", "Wang", "BJ", "10021", "010", "358-1563", "Female", "contact with imports", "2021-11"})
	master.AppendRow([]string{"Kevin", "Sun", "HZ", "31200", "571", "325-8465", "Male", "contact with patient", "2021-12"})
	master.AppendRow([]string{"Susan", "Lu", "HZ", "31200", "571", "325-8931", "Female", "contact with patient", "2021-12"})
	return input, master
}

// Attribute indices for fig1.
const (
	iName, iCity, iZIP, iAC, iPhone, iSex, iCase, iDate, iOverseas = 0, 1, 2, 3, 4, 5, 6, 7, 8
	mFN, mLN, mCity, mZip, mAC, mPhone, mSex, mInfection, mDate    = 0, 1, 2, 3, 4, 5, 6, 7, 8
)

func code(t *testing.T, r *relation.Relation, col int, v string) int32 {
	t.Helper()
	c, ok := r.Dict(col).Lookup(v)
	if !ok {
		t.Fatalf("value %q not in column %d", v, col)
	}
	return c
}

// fig1Truth returns the ground truth of the Case column: t1's case is
// "contact with patient" (fixable from master), t2 and t3 keep their
// observed values.
func fig1Truth(t *testing.T, input *relation.Relation) []int32 {
	truth := make([]int32, 3)
	truth[0] = code(t, input, iCase, "contact with patient")
	truth[1] = code(t, input, iCase, "contact with imports")
	truth[2] = code(t, input, iCase, "Others")
	return truth
}

// TestPhi0 verifies the paper's φ₀: with the pattern
// (City, Date, Overseas) = (HZ, 2021-12, No), only t1 is covered, the
// fix is certain, and it matches the truth.
func TestPhi0(t *testing.T) {
	input, master := fig1()
	ev := NewEvaluator(input, master, fig1Truth(t, input))
	phi0 := rule.New(
		[]rule.AttrPair{{Input: iCity, Master: mCity}, {Input: iDate, Master: mDate}},
		iCase, mInfection,
		[]rule.Condition{
			rule.Eq(iCity, code(t, input, iCity, "HZ")),
			rule.Eq(iDate, code(t, input, iDate, "2021-12")),
			rule.Eq(iOverseas, code(t, input, iOverseas, "No")),
		},
	)
	m := ev.Evaluate(phi0, nil)
	if m.Support != 1 {
		t.Errorf("S(φ0) = %d, want 1 (only t1)", m.Support)
	}
	if m.Certainty != 1 {
		t.Errorf("C(φ0) = %g, want 1 (both s3, s4 say patient)", m.Certainty)
	}
	if m.Quality != 1 {
		t.Errorf("Q(φ0) = %g, want 1", m.Quality)
	}
	if len(m.PatternCover) != 1 || m.PatternCover[0] != 0 {
		t.Errorf("PatternCover = %v, want [0]", m.PatternCover)
	}

	// The candidate fix for t1 is "contact with patient" with count 2.
	h, ok := ev.Candidates(phi0, 0)
	if !ok {
		t.Fatal("t1 has no candidates")
	}
	if h.Arg != code(t, input, iCase, "contact with patient") || h.Max != 2 || h.Total != 2 {
		t.Errorf("candidates = %+v", h)
	}
	// t3 is guarded by the Overseas=No condition.
	if _, ok := ev.Candidates(phi0, 2); ok {
		t.Error("t3 (overseas) should have no candidates under φ0")
	}
}

// TestUnguardedRule verifies the same rule without the pattern: it now
// covers t1, t2 and t3, and wrongly fixes t3 (κ = −1), giving Q = 1/3.
func TestUnguardedRule(t *testing.T) {
	input, master := fig1()
	ev := NewEvaluator(input, master, fig1Truth(t, input))
	r := rule.New(
		[]rule.AttrPair{{Input: iCity, Master: mCity}, {Input: iDate, Master: mDate}},
		iCase, mInfection, nil,
	)
	m := ev.Evaluate(r, nil)
	if m.Support != 3 {
		t.Errorf("S = %d, want 3", m.Support)
	}
	if m.Certainty != 1 {
		t.Errorf("C = %g, want 1 (every joined group is pure)", m.Certainty)
	}
	if want := 1.0 / 3.0; math.Abs(m.Quality-want) > 1e-12 {
		t.Errorf("Q = %g, want %g", m.Quality, want)
	}
	if got, want := m.Utility, Utility(3, 1, 1.0/3.0); got != want {
		t.Errorf("U = %g, want %g", got, want)
	}
}

// TestNullLHSExcluded: a tuple with Null on an LHS attribute joins
// nothing (t1 and t3 have Null AC).
func TestNullLHSExcluded(t *testing.T) {
	input, master := fig1()
	ev := NewEvaluator(input, master, nil)
	r := rule.New([]rule.AttrPair{{Input: iAC, Master: mAC}}, iCase, mInfection, nil)
	m := ev.Evaluate(r, nil)
	if m.Support != 1 {
		t.Errorf("S = %d, want 1 (only t2 has a non-Null AC)", m.Support)
	}
}

// TestMixedCandidates: joining on Name gives Kevin two conflicting
// master tuples, so f_c = 1/2.
func TestMixedCandidates(t *testing.T) {
	input, master := fig1()
	ev := NewEvaluator(input, master, nil)
	r := rule.New([]rule.AttrPair{{Input: iName, Master: mFN}}, iCase, mInfection, nil)
	h, ok := ev.Candidates(r, 0)
	if !ok {
		t.Fatal("Kevin joins nothing")
	}
	if h.Total != 2 || h.Max != 1 {
		t.Errorf("hist = %+v, want two conflicting candidates", h)
	}
	if h.Certainty() != 0.5 {
		t.Errorf("f_c = %g, want 0.5", h.Certainty())
	}
}

// TestEmptyLHS: a rule without LHS has zero support but still computes a
// pattern cover for subspace search.
func TestEmptyLHS(t *testing.T) {
	input, master := fig1()
	ev := NewEvaluator(input, master, nil)
	r := rule.New(nil, iCase, mInfection,
		[]rule.Condition{rule.Eq(iCity, code(t, input, iCity, "HZ"))})
	m := ev.Evaluate(r, nil)
	if m.Support != 0 || m.Utility != 0 {
		t.Errorf("empty-LHS measures = %+v", m)
	}
	if len(m.PatternCover) != 2 {
		t.Errorf("PatternCover = %v, want t1 and t3", m.PatternCover)
	}
}

// TestApproximateQuality: with nil truth, the observed (input) Y column
// stands in for the ground truth (§II-B3).
func TestApproximateQuality(t *testing.T) {
	input, master := fig1()
	ev := NewEvaluator(input, master, nil)
	r := rule.New(
		[]rule.AttrPair{{Input: iCity, Master: mCity}, {Input: iDate, Master: mDate}},
		iCase, mInfection, nil,
	)
	m := ev.Evaluate(r, nil)
	// t1's observed Case is Null ≠ majority fix → κ = −1; t2 correct;
	// t3 wrong. Q = (−1 + 1 − 1) / 3.
	if want := -1.0 / 3.0; math.Abs(m.Quality-want) > 1e-12 {
		t.Errorf("approximate Q = %g, want %g", m.Quality, want)
	}
}

// TestCoverSubspaceEquivalence: evaluating a child over the parent's
// pattern cover must equal evaluating it over the full input.
func TestCoverSubspaceEquivalence(t *testing.T) {
	input, master := fig1()
	ev := NewEvaluator(input, master, fig1Truth(t, input))
	parent := rule.New(
		[]rule.AttrPair{{Input: iCity, Master: mCity}},
		iCase, mInfection,
		[]rule.Condition{rule.Eq(iCity, code(t, input, iCity, "HZ"))},
	)
	pm := ev.Evaluate(parent, nil)
	child := parent.WithCondition(rule.Eq(iOverseas, code(t, input, iOverseas, "No")))

	full := ev.Evaluate(child, nil)
	sub := ev.Evaluate(child, pm.PatternCover)
	if full.Support != sub.Support || full.Certainty != sub.Certainty ||
		full.Quality != sub.Quality || full.Utility != sub.Utility {
		t.Errorf("subspace evaluation differs: full=%+v sub=%+v", full, sub)
	}
	if len(full.PatternCover) != len(sub.PatternCover) {
		t.Errorf("covers differ: %v vs %v", full.PatternCover, sub.PatternCover)
	}
}

// TestPatternCoverHelper agrees with Evaluate's cover.
func TestPatternCoverHelper(t *testing.T) {
	input, master := fig1()
	ev := NewEvaluator(input, master, nil)
	r := rule.New(nil, iCase, mInfection,
		[]rule.Condition{rule.Eq(iCity, code(t, input, iCity, "HZ"))})
	a := ev.Evaluate(r, nil).PatternCover
	b := ev.PatternCover(r, nil)
	if len(a) != len(b) {
		t.Fatalf("covers differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("covers differ: %v vs %v", a, b)
		}
	}
}

// TestLemma1 property: refining a rule never increases support.
func TestLemma1(t *testing.T) {
	input, master := fig1()
	ev := NewEvaluator(input, master, nil)
	rng := rand.New(rand.NewSource(5))
	base := rule.New([]rule.AttrPair{{Input: iCity, Master: mCity}}, iCase, mInfection, nil)
	baseM := ev.Evaluate(base, nil)

	for i := 0; i < 50; i++ {
		r := base
		// Random chain of refinements.
		prev := baseM.Support
		for depth := 0; depth < 3; depth++ {
			if rng.Intn(2) == 0 {
				a := rng.Intn(5)
				if !r.HasLHSAttr(a) && a != iCase {
					r = r.WithLHS(a, a) // fig1 domains align index-wise for 2..5? use matched-ish pairs
				}
			} else {
				attrs := []int{iDate, iOverseas, iSex}
				a := attrs[rng.Intn(len(attrs))]
				if !r.HasPatternAttr(a) {
					dom := input.DomainCodes(a)
					if len(dom) > 0 {
						r = r.WithCondition(rule.Eq(a, dom[rng.Intn(len(dom))]))
					}
				}
			}
			m := ev.Evaluate(r, nil)
			if m.Support > prev {
				t.Fatalf("refinement increased support: %d -> %d (%s)",
					prev, m.Support, r.Key())
			}
			prev = m.Support
		}
	}
}

func TestUtilityFunction(t *testing.T) {
	if Utility(0, 1, 1) != 0 {
		t.Error("U with S=0 must be 0")
	}
	if Utility(1, 1, 1) != 0 {
		t.Error("U with S=1 must be 0 (log 1 = 0)")
	}
	// Linear in C+Q at fixed S (Figure 2a).
	u1 := Utility(100, 0.5, 0)
	u2 := Utility(100, 1.0, 0)
	if math.Abs(u2-2*u1) > 1e-9 {
		t.Errorf("U not linear in certainty: %g vs %g", u1, u2)
	}
	// Monotone but saturating in S (Figure 2b).
	if !(Utility(10, 1, 0) < Utility(100, 1, 0) && Utility(100, 1, 0) < Utility(1000, 1, 0)) {
		t.Error("U not monotone in support")
	}
	// Per-tuple marginal utility of support shrinks (dU/dS = 2·lnS/S is
	// decreasing for S ≥ e), which is Figure 2(b)'s saturation.
	gain1 := Utility(110, 1, 0) - Utility(100, 1, 0)
	gain2 := Utility(10010, 1, 0) - Utility(10000, 1, 0)
	if gain2 >= gain1 {
		t.Errorf("marginal utility of support should shrink: %g vs %g", gain1, gain2)
	}
	// Negative quality can make utility negative.
	if Utility(100, 0, -0.5) >= 0 {
		t.Error("U should be negative when C+Q < 0")
	}
	if MaxUtility(100) != Utility(100, 1, 1) {
		t.Error("MaxUtility mismatch")
	}
}

func TestEvaluatorStats(t *testing.T) {
	input, master := fig1()
	ev := NewEvaluator(input, master, nil)
	r1 := rule.New([]rule.AttrPair{{Input: iCity, Master: mCity}}, iCase, mInfection, nil)
	ev.Evaluate(r1, nil)
	if ev.Stats.Evaluations != 1 || ev.Stats.IndexBuilds != 1 {
		t.Errorf("stats after 1 eval = %+v", ev.Stats)
	}
	// Same LHS again: the master index is cached.
	r2 := r1.WithCondition(rule.Eq(iOverseas, code(t, input, iOverseas, "No")))
	ev.Evaluate(r2, nil)
	if ev.Stats.IndexBuilds != 1 {
		t.Errorf("index rebuilt for cached LHS: %+v", ev.Stats)
	}
	// New LHS: one more build.
	r3 := r1.WithLHS(iDate, mDate)
	ev.Evaluate(r3, nil)
	if ev.Stats.IndexBuilds != 2 {
		t.Errorf("index not built for new LHS: %+v", ev.Stats)
	}
}

func TestHistTieBreaksDeterministic(t *testing.T) {
	h := &Hist{Counts: make(map[int32]int)}
	h.add(5)
	h.add(2)
	if h.Arg != 2 {
		t.Errorf("tie should break to smaller code, got %d", h.Arg)
	}
	h.add(5)
	if h.Arg != 5 || h.Max != 2 {
		t.Errorf("majority should win: %+v", h)
	}
}
