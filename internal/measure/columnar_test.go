package measure

import (
	"fmt"
	"reflect"
	"testing"

	"erminer/internal/relation"
	"erminer/internal/rule"
)

// scalarOf derives a scalar-path evaluator over the same data as ev,
// with a private cache so stats and indexes never interact.
func scalarOf(input, master *relation.Relation, truth []int32) *Evaluator {
	ev := NewEvaluator(input, master, truth)
	ev.Scalar = true
	return ev
}

// diffRules builds an adversarial rule set over the fig1 schemas:
// every single-pair LHS, a multi-pair LHS, empty LHS, and patterns
// exercising equality, negation and multi-code conditions on columns
// with and without Nulls.
func fig1DiffRules(t *testing.T, input *relation.Relation) []*rule.Rule {
	t.Helper()
	hz := code(t, input, iCity, "HZ")
	bj := code(t, input, iCity, "BJ")
	d12 := code(t, input, iDate, "2021-12")
	no := code(t, input, iOverseas, "No")
	pairs := []rule.AttrPair{
		{Input: iName, Master: mFN},
		{Input: iCity, Master: mCity},
		{Input: iZIP, Master: mZip},
		{Input: iAC, Master: mAC},
		{Input: iPhone, Master: mPhone},
		{Input: iSex, Master: mSex},
		{Input: iDate, Master: mDate},
	}
	var rules []*rule.Rule
	rules = append(rules, rule.New(nil, iCase, mInfection, nil))
	rules = append(rules, rule.New(nil, iCase, mInfection,
		[]rule.Condition{rule.Eq(iCity, hz)}))
	for _, p := range pairs {
		rules = append(rules, rule.New([]rule.AttrPair{p}, iCase, mInfection, nil))
		rules = append(rules, rule.New([]rule.AttrPair{p}, iCase, mInfection,
			[]rule.Condition{rule.Eq(iCity, hz)}))
		rules = append(rules, rule.New([]rule.AttrPair{p}, iCase, mInfection,
			[]rule.Condition{rule.NotEq(iCity, hz)}))
		rules = append(rules, rule.New([]rule.AttrPair{p}, iCase, mInfection,
			[]rule.Condition{rule.NewCondition(iCity, []int32{hz, bj}, "")}))
		// ZIP and Sex carry Nulls: both polarities must treat them as
		// non-matching.
		rules = append(rules, rule.New([]rule.AttrPair{p}, iCase, mInfection,
			[]rule.Condition{rule.NotEq(iZIP, code(t, input, iZIP, "10021"))}))
		rules = append(rules, rule.New([]rule.AttrPair{p}, iCase, mInfection,
			[]rule.Condition{rule.Eq(iSex, code(t, input, iSex, "Male"))}))
	}
	rules = append(rules, rule.New(
		[]rule.AttrPair{{Input: iCity, Master: mCity}, {Input: iDate, Master: mDate}},
		iCase, mInfection,
		[]rule.Condition{rule.Eq(iCity, hz), rule.Eq(iDate, d12), rule.Eq(iOverseas, no)}))
	return rules
}

// assertSameEval pins the columnar engine to the scalar reference on
// one rule: full-scan Evaluate, PatternCover, a parent-cover-restricted
// Evaluate and per-row Candidates must be bit-identical.
func assertSameEval(t *testing.T, col, sc *Evaluator, r *rule.Rule, tag string) {
	t.Helper()
	want := sc.Evaluate(r, nil)
	got := col.Evaluate(r, nil)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: Evaluate(nil) diverged:\nscalar   %+v\ncolumnar %+v", tag, want, got)
	}
	if pc := col.PatternCover(r, nil); !reflect.DeepEqual(pc, want.PatternCover) {
		t.Fatalf("%s: PatternCover(nil) = %v, want %v", tag, pc, want.PatternCover)
	}
	// Restrict to a parent cover with holes: every other covered row.
	parent := make([]int32, 0, len(want.PatternCover))
	for i, row := range want.PatternCover {
		if i%2 == 0 {
			parent = append(parent, row)
		}
	}
	want2 := sc.Evaluate(r, parent)
	got2 := col.Evaluate(r, parent)
	if !reflect.DeepEqual(want2, got2) {
		t.Fatalf("%s: Evaluate(parent) diverged:\nscalar   %+v\ncolumnar %+v", tag, want2, got2)
	}
	for row := 0; row < col.Input().NumRows(); row++ {
		hw, okw := sc.Candidates(r, row)
		hg, okg := col.Candidates(r, row)
		if okw != okg || !reflect.DeepEqual(hw, hg) {
			t.Fatalf("%s: Candidates(row %d) diverged: (%v,%v) vs (%v,%v)", tag, row, hw, okw, hg, okg)
		}
	}
}

// TestColumnarMatchesScalarFig1 runs the differential suite on the
// paper's Figure 1 data, whose Null cells exercise the -1 group id and
// the Null-never-matches pattern semantics.
func TestColumnarMatchesScalarFig1(t *testing.T) {
	input, master := fig1()
	truth := fig1Truth(t, input)
	col := NewEvaluator(input, master, truth)
	sc := scalarOf(input, master, truth)
	for i, r := range fig1DiffRules(t, input) {
		assertSameEval(t, col, sc, r, fmt.Sprintf("fig1 rule %d", i))
	}
	// Approximate-quality mode (nil truth) reads the observed Y column.
	colA := NewEvaluator(input, master, nil)
	scA := scalarOf(input, master, nil)
	for i, r := range fig1DiffRules(t, input) {
		assertSameEval(t, colA, scA, r, fmt.Sprintf("fig1/approx rule %d", i))
	}
}

// TestColumnarMatchesScalarSynth runs the differential suite on larger
// synthetic pairs across seeds, interleaving rules on one shared
// evaluator so memoisation and cache reuse are stressed.
func TestColumnarMatchesScalarSynth(t *testing.T) {
	for _, seed := range []int64{1, 2, 7} {
		input, master := synthPair(1000, seed)
		col := NewEvaluator(input, master, nil)
		sc := scalarOf(input, master, nil)
		rules := synthRules(input)
		// Add negated and multi-code guards over G.
		gs := input.DomainCodes(2)
		rules = append(rules,
			rule.New([]rule.AttrPair{{Input: 0, Master: 0}}, 3, 2,
				[]rule.Condition{rule.NotEq(2, gs[0])}),
			rule.New([]rule.AttrPair{{Input: 0, Master: 0}, {Input: 1, Master: 1}}, 3, 2,
				[]rule.Condition{rule.NewCondition(2, gs[:2], "")}),
		)
		for round := 0; round < 2; round++ {
			for i, r := range rules {
				assertSameEval(t, col, sc, r, fmt.Sprintf("seed %d round %d rule %d", seed, round, i))
			}
		}
	}
}

// TestColumnarInvalidatesOnMutation mutates the input after the caches
// are warm and checks the columnar engine rebuilds: its results must
// match a fresh scalar evaluator over the mutated relation.
func TestColumnarInvalidatesOnMutation(t *testing.T) {
	input, master := synthPair(300, 11)
	col := NewEvaluator(input, master, nil)
	rules := synthRules(input)
	for _, r := range rules {
		col.Evaluate(r, nil) // warm postings, projections, memo
	}

	// Move row 0 to a different guard group and blank row 1's LHS.
	gs := input.DomainCodes(2)
	input.SetCode(0, 2, gs[len(gs)-1])
	input.SetCode(1, 0, relation.Null)

	sc := scalarOf(input, master, nil)
	for i, r := range rules {
		assertSameEval(t, col, sc, r, fmt.Sprintf("post-mutation rule %d", i))
	}
}

// TestReleaseCoverReuse checks that covers returned to the freelist are
// recycled without corrupting later results, including the empty cover.
func TestReleaseCoverReuse(t *testing.T) {
	input, master := synthPair(500, 5)
	ev := NewEvaluator(input, master, nil)
	r := synthRules(input)[4]
	want := ev.Evaluate(r, nil)
	wantCover := append([]int32(nil), want.PatternCover...)
	for i := 0; i < 10; i++ {
		ms := ev.Evaluate(r, nil)
		if !reflect.DeepEqual(ms.PatternCover, wantCover) {
			t.Fatalf("iteration %d: cover drifted after reuse", i)
		}
		ev.ReleaseCover(ms.PatternCover)
	}
	ev.ReleaseCover(nil) // no-op
	if got := ev.Evaluate(r, nil); !reflect.DeepEqual(got.PatternCover, wantCover) {
		t.Fatalf("cover drifted after nil release")
	}
}

// TestEvaluateZeroAlloc is the allocation gate of the columnar hot
// path: with warmed caches and the cover buffer recycled, Evaluate,
// PatternCover and CoveredCandidates must not allocate. The closing
// sweep drives the repair-request shape (cover intersection, then one
// candidate lookup per covered row) over every synthetic rule — mixed
// LHS widths and guard patterns — so every //ermvet:hotpath function
// reachable from a repair request executes under the allocation
// counter, the dynamic counterpart of the static allocbudget check.
// CI runs this test by name; keep it green or the build gate fails.
func TestEvaluateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	input, master := synthPair(2048, 7)
	ev := NewEvaluator(input, master, nil)
	rules := synthRules(input)
	for _, r := range []*rule.Rule{rules[0], rules[len(rules)-1]} {
		name := "guarded"
		if len(r.Pattern) == 0 {
			name = "empty-pattern"
		}
		for i := 0; i < 3; i++ { // warm postings, projection, memo, freelist
			ms := ev.Evaluate(r, nil)
			ev.ReleaseCover(ms.PatternCover)
		}
		if allocs := testing.AllocsPerRun(100, func() {
			ms := ev.Evaluate(r, nil)
			ev.ReleaseCover(ms.PatternCover)
		}); allocs != 0 {
			t.Errorf("%s: Evaluate allocates %.1f/op on a warmed cache, want 0", name, allocs)
		}
		if allocs := testing.AllocsPerRun(100, func() {
			ev.ReleaseCover(ev.PatternCover(r, nil))
		}); allocs != 0 {
			t.Errorf("%s: PatternCover allocates %.1f/op on a warmed cache, want 0", name, allocs)
		}
	}
	r := rules[len(rules)-1]
	if allocs := testing.AllocsPerRun(100, func() {
		for row := 0; row < 64; row++ {
			ev.CoveredCandidates(r, row)
		}
	}); allocs != 0 {
		t.Errorf("CoveredCandidates allocates %.1f/op on a warmed cache, want 0", allocs)
	}
	for i, r := range rules {
		for j := 0; j < 3; j++ { // warm this rule's projection and cover
			ev.ReleaseCover(ev.PatternCover(r, nil))
		}
		if allocs := testing.AllocsPerRun(20, func() {
			cover := ev.PatternCover(r, nil)
			for _, row := range cover {
				ev.CoveredCandidates(r, int(row))
			}
			ev.ReleaseCover(cover)
		}); allocs != 0 {
			t.Errorf("rule %d: repair-shaped sweep allocates %.1f/op on a warmed cache, want 0", i, allocs)
		}
	}
}

// TestHistFirstAddSetsArg is the regression test for the implicit
// first-observation tie-break: a histogram whose true argmax has a code
// larger than 0 must report that code, not the zero value.
func TestHistFirstAddSetsArg(t *testing.T) {
	h := &Hist{Counts: make(map[int32]int)}
	h.add(5)
	if h.Max != 1 || h.Arg != 5 {
		t.Fatalf("after first add(5): Max=%d Arg=%d, want 1/5", h.Max, h.Arg)
	}
	h2 := &Hist{Counts: make(map[int32]int)}
	for _, v := range []int32{7, 3, 7} {
		h2.add(v)
	}
	if h2.Max != 2 || h2.Arg != 7 {
		t.Fatalf("argmax with code > 0: Max=%d Arg=%d, want 2/7", h2.Max, h2.Arg)
	}
	if c := h2.Certainty(); c != 2.0/3.0 {
		t.Fatalf("Certainty = %g, want 2/3", c)
	}
}

// TestShareColumnsRejectsForeignRelation pins the guard against binding
// an evaluator to a columnar store over a different relation.
func TestShareColumnsRejectsForeignRelation(t *testing.T) {
	input, master := fig1()
	other := input.Clone()
	ev := NewEvaluator(input, master, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("ShareColumns accepted a store over a different relation")
		}
	}()
	ev.ShareColumns(NewColumnIndex(other))
}
