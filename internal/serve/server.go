// Package serve is the online rule-serving and repair layer: a
// stdlib-only net/http daemon (cmd/erminerd) that holds one discovery
// problem's master data, serves repair and validation over arriving
// dirty tuples with the currently active rule set, mines new rule sets
// on an asynchronous bounded worker pool, and hot-swaps the active set
// with zero downtime.
//
// Concurrency design (DESIGN.md decision 12):
//
//   - The active rule set lives behind an atomic pointer; a swap is one
//     pointer store, and every request reads a consistent snapshot.
//   - Repair evaluation is dictionary-free (codes only), so concurrent
//     requests run lock-free and share the problem's IndexCache: the
//     master index of each rule is built exactly once across all
//     requests, workers and swaps.
//   - The shared value dictionaries are touched only when encoding
//     request tuples and rendering responses; a single RWMutex guards
//     them (short critical sections, never held during evaluation).
//   - Mining jobs run on a deep copy of the problem with a private
//     dictionary pool and index cache, so a long mine never contends
//     with the request path; mined rules cross back through the
//     portable JSON wire format, the same path PUT /v1/rules takes.
//   - A bounded worker pool plus bounded wait queue backs the repair
//     path; requests beyond the queue capacity get 429 immediately
//     rather than piling up, and each request carries a deadline.
package serve

import (
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"erminer/internal/cfd"
	"erminer/internal/core"
	"erminer/internal/enuminer"
	"erminer/internal/measure"
	"erminer/internal/relation"
	"erminer/internal/rlminer"
	"erminer/internal/rule"
	"erminer/internal/rulesio"
)

// Config tunes the daemon. The zero value is fully usable.
type Config struct {
	// RepairWorkers bounds concurrently executing repair/validate
	// requests. Zero means runtime.NumCPU().
	RepairWorkers int
	// QueueDepth bounds requests waiting for a worker slot; beyond it
	// the daemon answers 429 immediately. Zero means 64.
	QueueDepth int
	// RequestTimeout is the per-request deadline, covering both queue
	// wait and evaluation. Zero means 30s.
	RequestTimeout time.Duration
	// JobWorkers is the mining worker-pool size. Zero means 1.
	JobWorkers int
	// JobQueue bounds accepted-but-not-started jobs; beyond it POST
	// /v1/jobs answers 429. Zero means 16.
	JobQueue int
	// MaxBatch bounds tuples per repair/validate call. Zero means 10000.
	MaxBatch int
	// MaxBody bounds request bodies in bytes. Zero means 32 MiB.
	MaxBody int64
	// CheckpointDir, when non-empty, makes rlminer jobs write crash-safe
	// training checkpoints (and a small spec manifest) there, and makes
	// New resume jobs a previous process left interrupted.
	CheckpointDir string
	// CheckpointEvery is the wall-clock period between checkpoint
	// writes. Zero means the rlminer default (30s).
	CheckpointEvery time.Duration
	// Role names this daemon's place in a topology ("worker" under an
	// ermcluster coordinator); it is reported in /healthz and changes no
	// behaviour — a worker is a full single-node daemon.
	Role string
}

func (c Config) repairWorkers() int {
	if c.RepairWorkers > 0 {
		return c.RepairWorkers
	}
	return runtime.NumCPU()
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 64
}

func (c Config) requestTimeout() time.Duration {
	if c.RequestTimeout > 0 {
		return c.RequestTimeout
	}
	return 30 * time.Second
}

func (c Config) jobWorkers() int {
	if c.JobWorkers > 0 {
		return c.JobWorkers
	}
	return 1
}

func (c Config) jobQueue() int {
	if c.JobQueue > 0 {
		return c.JobQueue
	}
	return 16
}

func (c Config) maxBatch() int {
	if c.MaxBatch > 0 {
		return c.MaxBatch
	}
	return 10000
}

func (c Config) maxBody() int64 {
	if c.MaxBody > 0 {
		return c.MaxBody
	}
	return 32 << 20
}

// ruleSet is one immutable generation of the active rules. Swaps replace
// the whole value behind the atomic pointer. etag is the generation's
// content hash — rulesio.Hash over the canonical wire export — which
// names the generation across processes: an ermcluster coordinator
// compares worker etags to detect replication skew.
type ruleSet struct {
	version int64
	etag    string
	rules   []core.MinedRule
	list    []*rule.Rule
}

// stagedRules is a generation parked by POST /v1/rules/stage, waiting
// for the matching activate — phase one of the cluster's two-phase
// rule push. It is already imported and content-addressed, so the
// activate is a pure pointer swap that cannot fail.
type stagedRules struct {
	etag  string
	rules []core.MinedRule
}

// Server is the rule-serving daemon. Build one with New, mount it as an
// http.Handler, and stop it with Shutdown.
type Server struct {
	// p's value dictionaries (its relation pool) are guarded by dictMu:
	// interning and rendering take the lock. Evaluation reads immutable
	// codes only and is lock-free by design (decision 12) — the one
	// accessor on that path carries a written ermvet suppression.
	p   *core.Problem
	cfg Config
	mux *http.ServeMux

	active  atomic.Pointer[ruleSet]
	version atomic.Int64

	// dictMu guards the shared value dictionaries (the problem's pool):
	// write-locked while encoding request tuples and importing rules
	// (both intern new values), read-locked while rendering values.
	// Evaluation itself is code-only and takes no lock.
	dictMu sync.RWMutex

	// workers is the repair worker-pool semaphore; waiters counts
	// requests queued for a slot (bounded by cfg.queueDepth()).
	workers chan struct{}
	waiters atomic.Int64

	// stagedMu guards the parked generation between the stage and
	// activate phases of a two-phase rule push.
	stagedMu sync.Mutex
	staged   *stagedRules // guarded by stagedMu

	// modelMu guards the retained value network: the SaveModel bytes of
	// the last successful rlminer job, which an rlminer-ft job
	// fine-tunes after a data patch instead of training from scratch.
	modelMu sync.Mutex
	model   []byte // guarded by modelMu

	jobs    *jobManager
	metrics *metrics
	closed  atomic.Bool

	// Test hooks (nil in production): holdRepair blocks a repair request
	// while it holds a worker slot; holdJob blocks a running job.
	holdRepair func()
	holdJob    func(id string)
}

// New builds a Server over the problem. The problem's master data,
// match and schemas define the serving contract; its input relation is
// the training corpus mining jobs run on. rules may be nil to start
// without an active rule set (requests are served, proposing no fixes,
// until a job or a PUT /v1/rules activates one).
func New(p *core.Problem, rules []core.MinedRule, cfg Config) (*Server, error) {
	if p == nil {
		return nil, fmt.Errorf("serve: nil problem")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.ShareIndexes()
	s := &Server{
		p:       p,
		cfg:     cfg,
		workers: make(chan struct{}, cfg.repairWorkers()),
		metrics: newMetrics(),
	}
	s.jobs = newJobManager(cfg.jobWorkers(), cfg.jobQueue(), s.runJob)
	etag, err := s.generationETag(rules)
	if err != nil {
		return nil, err
	}
	s.install(&ruleSet{version: s.version.Add(1), etag: etag, rules: rules, list: ruleList(rules)})
	s.routes()
	// Recovery runs last: recovered jobs start immediately, and one that
	// finishes fast (and activates) must never race the initial install.
	if cfg.CheckpointDir != "" {
		if err := s.recoverJobs(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Jobs returns a snapshot of every known job, in submission order.
func (s *Server) Jobs() []JobStatus { return s.jobs.list() }

func ruleList(rules []core.MinedRule) []*rule.Rule {
	out := make([]*rule.Rule, len(rules))
	for i, r := range rules {
		out[i] = r.Rule
	}
	return out
}

func (s *Server) install(rs *ruleSet) {
	s.active.Store(rs)
}

// rules returns the active rule-set snapshot (never nil).
func (s *Server) rules() *ruleSet {
	return s.active.Load()
}

// generationETag content-addresses a rule set: the hash of its
// canonical wire export. Canonicalising before hashing makes the id
// independent of client formatting, so every node that holds the same
// rules reports the same etag regardless of the bytes it was fed.
func (s *Server) generationETag(rules []core.MinedRule) (string, error) {
	s.dictMu.RLock()
	data, err := rulesio.Export(s.p, rules)
	s.dictMu.RUnlock()
	if err != nil {
		return "", err
	}
	return rulesio.Hash(data), nil
}

// importGeneration parses a wire-format rule file against the serving
// problem and returns the rules with their canonical generation etag.
func (s *Server) importGeneration(data []byte) ([]core.MinedRule, string, error) {
	s.dictMu.Lock()
	imported, err := rulesio.Import(s.p, data)
	s.dictMu.Unlock()
	if err != nil {
		return nil, "", err
	}
	etag, err := s.generationETag(imported)
	if err != nil {
		return nil, "", err
	}
	return imported, etag, nil
}

// SwapRules imports a wire-format rule file against the serving problem
// and atomically activates it, returning the new version and rule
// count. In-flight requests keep the snapshot they started with.
func (s *Server) SwapRules(data []byte) (version int64, count int, err error) {
	imported, etag, err := s.importGeneration(data)
	if err != nil {
		return 0, 0, err
	}
	rs := &ruleSet{version: s.version.Add(1), etag: etag, rules: imported, list: ruleList(imported)}
	s.install(rs)
	s.metrics.ruleSwaps.Add(1)
	return rs.version, len(imported), nil
}

// StageRules parks a generation without activating it: phase one of
// the cluster's two-phase rule push. The rules are fully imported and
// validated here, so the later activate cannot fail; the returned etag
// is the generation's content hash, which the coordinator requires to
// agree across every worker before it activates anywhere.
func (s *Server) StageRules(data []byte) (etag string, count int, err error) {
	imported, etag, err := s.importGeneration(data)
	if err != nil {
		return "", 0, err
	}
	s.stagedMu.Lock()
	s.staged = &stagedRules{etag: etag, rules: imported}
	s.stagedMu.Unlock()
	s.metrics.rulesStaged.Add(1)
	return etag, len(imported), nil
}

// ActivateStaged atomically installs the generation parked by
// StageRules. etag must name it exactly — activating "whatever is
// staged" would race concurrent stagers — and the parked set is
// consumed either way.
func (s *Server) ActivateStaged(etag string) (version int64, count int, err error) {
	s.stagedMu.Lock()
	st := s.staged
	s.staged = nil
	s.stagedMu.Unlock()
	if st == nil {
		return 0, 0, fmt.Errorf("serve: no staged rule set to activate")
	}
	if st.etag != etag {
		return 0, 0, fmt.Errorf("serve: staged generation is %s, not %s", st.etag, etag)
	}
	rs := &ruleSet{version: s.version.Add(1), etag: st.etag, rules: st.rules, list: ruleList(st.rules)}
	s.install(rs)
	s.metrics.ruleSwaps.Add(1)
	return rs.version, len(st.rules), nil
}

// RulesETag returns the active generation's content hash.
func (s *Server) RulesETag() string { return s.rules().etag }

// cloneProblem deep-copies the serving problem into a private
// dictionary pool and index cache, so a mining job shares no mutable
// state with the request path. Schemas and the match are immutable and
// shared; row data is re-interned from string values.
func (s *Server) cloneProblem() *core.Problem {
	s.dictMu.RLock()
	defer s.dictMu.RUnlock()
	pool := relation.NewPool()
	copyRel := func(src *relation.Relation) *relation.Relation {
		dst := relation.New(src.Schema(), pool)
		for row := 0; row < src.NumRows(); row++ {
			dst.AppendRow(src.RowStrings(row))
		}
		return dst
	}
	input := copyRel(s.p.Input)
	return &core.Problem{
		Input:            input,
		Master:           copyRel(s.p.Master),
		Match:            s.p.Match,
		Y:                s.p.Y,
		Ym:               s.p.Ym,
		SupportThreshold: s.p.SupportThreshold,
		TopK:             s.p.TopK,
		Parallelism:      s.p.Parallelism,
		IndexCache:       measure.NewIndexCache(),
		// The columnar store is bound to the cloned input: sharing the
		// serving problem's would index the wrong relation.
		Columns:    measure.NewColumnIndex(input),
		ScalarEval: s.p.ScalarEval,
	}
}

// newMiner resolves a job spec to a miner instance.
func newMiner(spec JobSpec) (core.Miner, error) {
	switch spec.Method {
	case "enuminer":
		return enuminer.New(enuminer.Config{}), nil
	case "enuminerh3":
		return enuminer.NewH3(enuminer.Config{}), nil
	case "rlminer":
		return rlminer.New(rlminer.Config{TrainSteps: spec.Steps, Seed: spec.Seed}), nil
	case "rlminer-ft":
		return rlminer.New(rlminer.Config{FineTuneSteps: spec.Steps, Seed: spec.Seed}), nil
	case "ctane":
		return cfd.New(cfd.Config{}), nil
	default:
		return nil, fmt.Errorf("serve: unknown method %q (want enuminer, enuminerh3, rlminer, rlminer-ft or ctane)", spec.Method)
	}
}

// jobProblem prepares a job's isolated problem copy with its spec
// overrides applied.
func (s *Server) jobProblem(j *job) *core.Problem {
	p := s.cloneProblem()
	if j.spec.K > 0 {
		p.TopK = j.spec.K
	}
	if j.spec.Eta > 0 {
		p.SupportThreshold = j.spec.Eta
	}
	return p
}

// runJob executes one mining job on an isolated problem copy. On
// success the mined rules are exported to the wire format; when the job
// asked for activation they are re-imported against the serving problem
// and hot-swapped in — the exact path a PUT /v1/rules takes, so a job
// cannot corrupt serving state in any way a client upload couldn't.
func (s *Server) runJob(j *job) {
	// A panicking miner must fail its job, not the daemon: this recover
	// attributes the panic to the job and keeps the metrics honest (the
	// worker pool carries its own last-resort recover behind it).
	defer func() {
		if r := recover(); r != nil {
			j.setFailed(fmt.Errorf("job panicked: %v", r))
			s.metrics.jobsFailed.Add(1)
		}
	}()
	j.setRunning()
	if s.holdJob != nil {
		s.holdJob(j.id)
	}
	var p *core.Problem
	var res *core.ResultSet
	var err error
	if j.spec.Method == "rlminer" || j.spec.Method == "rlminer-ft" {
		p = s.jobProblem(j)
		res, err = s.runRLMinerJob(j, p)
	} else {
		var miner core.Miner
		if miner, err = newMiner(j.spec); err == nil {
			p = s.jobProblem(j)
			res, err = miner.Mine(p)
		}
	}
	if err != nil {
		j.setFailed(err)
		s.metrics.jobsFailed.Add(1)
		return
	}
	data, err := rulesio.Export(p, res.Rules)
	if err != nil {
		j.setFailed(err)
		s.metrics.jobsFailed.Add(1)
		return
	}
	var activated int64
	// An RLMiner-ft generation is threshold-gated: a fine-tune whose
	// rules degraded below η_s (or mined nothing) must not displace the
	// serving set, so the job completes with its rules exported but
	// nothing activated.
	if j.spec.Activate && (j.spec.Method != "rlminer-ft" || remineClears(res, p.SupportThreshold)) {
		v, _, err := s.SwapRules(data)
		if err != nil {
			j.setFailed(fmt.Errorf("mined %d rules but activation failed: %w", len(res.Rules), err))
			s.metrics.jobsFailed.Add(1)
			return
		}
		activated = v
	}
	j.setDone(len(res.Rules), res.Explored, data, activated)
	s.metrics.jobsDone.Add(1)
}

// acquire claims a repair worker slot, waiting in the bounded queue when
// all slots are busy. It returns a release func on success, or an HTTP
// status (429 queue full, 503 shutting down, 504 deadline) and error.
func (s *Server) acquire(done <-chan struct{}) (release func(), status int, err error) {
	if s.closed.Load() {
		return nil, http.StatusServiceUnavailable, errShuttingDown
	}
	select {
	case s.workers <- struct{}{}:
		return func() { <-s.workers }, 0, nil
	default:
	}
	if s.waiters.Add(1) > int64(s.cfg.queueDepth()) {
		s.waiters.Add(-1)
		s.metrics.rejectedTotal.Add(1)
		return nil, http.StatusTooManyRequests,
			fmt.Errorf("serve: %d requests already queued", s.cfg.queueDepth())
	}
	s.metrics.queueDepth.Store(s.waiters.Load())
	defer func() {
		s.waiters.Add(-1)
		s.metrics.queueDepth.Store(s.waiters.Load())
	}()
	select {
	case s.workers <- struct{}{}:
		return func() { <-s.workers }, 0, nil
	case <-done:
		s.metrics.timeoutsTotal.Add(1)
		return nil, http.StatusGatewayTimeout, fmt.Errorf("serve: timed out waiting for a worker slot")
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsTotal.Add(1)
	s.mux.ServeHTTP(w, r)
}

// Shutdown stops accepting new work and drains: running mining jobs
// finish, still-queued jobs are cancelled, and subsequent requests get
// 503. In-flight HTTP requests are the caller's to drain (the net/http
// server's Shutdown does that). done bounds the wait; when it fires
// first an error is returned and draining continues in the background.
func (s *Server) Shutdown(done <-chan struct{}) error {
	s.closed.Store(true)
	return s.jobs.shutdown(done)
}
