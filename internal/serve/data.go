// PATCH /v1/data: incremental mutation of the serving data (delta
// maintenance, DESIGN.md decision 19). A delta — appended tuples plus
// cell updates against the input or master relation — is applied
// atomically under the daemon's generation discipline: the repair
// worker pool is quiesced so no evaluation observes a torn relation,
// the relation absorbs the delta through relation.ApplyDelta, the
// shared caches patch themselves through the change log instead of
// being dropped, and only the active rules whose (X, X_m) footprint
// intersects the touched columns are re-scored. Rules that no longer
// clear the thresholds are dropped and a new rule generation is
// installed exactly as a PUT /v1/rules would install one. A request
// may additionally enqueue an RLMiner-ft fine-tuning job on the
// enriched data (see runFineTuneJob).

package serve

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"erminer/internal/measure"
	"erminer/internal/relation"
	"erminer/internal/repair"
	"erminer/internal/rule"
)

// DataCellJSON is one cell update of a PATCH /v1/data delta. An empty
// value means Null (the same convention the tuple batch API uses for
// absent columns).
type DataCellJSON struct {
	Row   int    `json:"row"`
	Attr  string `json:"attr"`
	Value string `json:"value"`
}

// DataPatchRequest is the body of PATCH /v1/data: a delta against one
// of the serving relations. Appends use the tuple-batch column-map
// shape; absent columns are Null. The whole delta is validated before
// any of it is applied — a bad row index or unknown column leaves the
// data untouched.
//
//ermvet:wire
type DataPatchRequest struct {
	// Target selects the relation: "input" (the mining corpus) or
	// "master" (the reference data repairs are drawn from).
	Target  string              `json:"target"`
	Appends []map[string]string `json:"appends,omitempty"`
	Updates []DataCellJSON      `json:"updates,omitempty"`
	// Remine enqueues an RLMiner-ft job after the patch: fine-tune the
	// retained value network on the enriched data and hot-swap the
	// mined generation in if its measures clear the thresholds.
	Remine bool `json:"remine,omitempty"`
	// RemineSteps overrides the fine-tune step budget; zero means the
	// rlminer default.
	RemineSteps int `json:"remine_steps,omitempty"`
}

// DataPatchRequestVersion numbers the PATCH /v1/data request shape.
const DataPatchRequestVersion = 1

// DataPatchResponse reports what a PATCH /v1/data changed: the data
// side (rows appended, columns touched, the relation's new version)
// and the rule side (how many active rules were re-scored, how many
// fell below the thresholds and were dropped, and the generation now
// serving). An ermcluster coordinator compares DataVersion and
// RulesETag across workers to verify the fleet converged.
//
//ermvet:wire
type DataPatchResponse struct {
	Target         string   `json:"target"`
	AppendedRows   int      `json:"appended_rows"`
	TouchedColumns []string `json:"touched_columns,omitempty"`
	Rows           int      `json:"rows"`
	DataVersion    int64    `json:"data_version"`
	Revalidated    int      `json:"revalidated"`
	Dropped        int      `json:"dropped"`
	RulesActive    int      `json:"rules_active"`
	RulesVersion   int64    `json:"rules_version"`
	RulesETag      string   `json:"rules_etag"`
	RemineJob      string   `json:"remine_job,omitempty"`
	RemineError    string   `json:"remine_error,omitempty"`
}

// DataPatchResponseVersion numbers the PATCH /v1/data response shape.
const DataPatchResponseVersion = 1

// patchEnv captures, under dictMu, every piece of serving state the
// post-patch steps need, so cache patching and re-validation touch no
// s.p field outside the lock.
type patchEnv struct {
	input, master *relation.Relation
	truth         []int32
	cache         *measure.IndexCache
	columns       *measure.ColumnIndex
	etaS          int
	workers       int
	scalar        bool
}

// rel returns the patched relation.
func (e patchEnv) rel(master bool) *relation.Relation {
	if master {
		return e.master
	}
	return e.input
}

// quiesce claims every repair worker slot, draining in-flight
// evaluation: once it returns, no request is evaluating against the
// serving relations or the shared caches, and none can start until
// release is called. done bounds the wait.
func (s *Server) quiesce(done <-chan struct{}) (release func(), err error) {
	if s.closed.Load() {
		return nil, errShuttingDown
	}
	n := cap(s.workers)
	for i := 0; i < n; i++ {
		select {
		case s.workers <- struct{}{}:
		case <-done:
			for ; i > 0; i-- {
				<-s.workers
			}
			return nil, fmt.Errorf("serve: timed out draining in-flight evaluation for the data patch")
		}
	}
	return func() {
		for i := 0; i < n; i++ {
			<-s.workers
		}
	}, nil
}

// PatchData applies a delta to the serving data and re-validates the
// active rule set. It quiesces the repair pool for the duration — a
// data patch is a rare control-plane operation, and stopping the world
// is what makes the mutation atomic from every request's point of
// view. The returned status is the HTTP code for err.
func (s *Server) PatchData(done <-chan struct{}, req DataPatchRequest) (DataPatchResponse, int, error) {
	resp := DataPatchResponse{Target: req.Target}
	var master bool
	switch req.Target {
	case "input":
	case "master":
		master = true
	default:
		return resp, http.StatusBadRequest, fmt.Errorf("target must be \"input\" or \"master\", got %q", req.Target)
	}
	if len(req.Appends) == 0 && len(req.Updates) == 0 {
		return resp, http.StatusBadRequest, fmt.Errorf("empty delta: no appends and no updates")
	}
	release, err := s.quiesce(done)
	if err != nil {
		return resp, http.StatusGatewayTimeout, err
	}
	defer release()

	cs, env, err := s.applyPatch(req, master)
	if err != nil {
		return resp, http.StatusBadRequest, err
	}
	rel := env.rel(master)
	resp.AppendedRows = cs.Appended
	for _, c := range cs.Cols {
		resp.TouchedColumns = append(resp.TouchedColumns, rel.Schema().Attr(c).Name)
	}
	resp.Rows = rel.NumRows()
	resp.DataVersion = rel.Version()

	if cs.Empty() {
		// Every update wrote the value already present: nothing moved,
		// no cache was invalidated, the active generation stands.
		rs := s.rules()
		resp.RulesVersion, resp.RulesETag, resp.RulesActive = rs.version, rs.etag, len(rs.rules)
		return resp, http.StatusOK, nil
	}
	if master {
		// The input-side ColumnIndex patches itself through the change
		// log on next access; the master-side structures are patched
		// here, while the pool is quiet.
		env.cache.ApplyDelta(env.master, cs)
		if env.columns != nil {
			env.columns.ApplyMasterDelta(cs)
		}
	}
	version, etag, active, revalidated, dropped, err := s.revalidateAfter(cs, env, master)
	if err != nil {
		return resp, http.StatusInternalServerError, err
	}
	resp.RulesVersion, resp.RulesETag, resp.RulesActive = version, etag, active
	resp.Revalidated, resp.Dropped = revalidated, dropped
	s.metrics.dataPatches.Add(1)
	return resp, http.StatusOK, nil
}

// applyPatch resolves the request's column names and values to a typed
// delta under the dictionary lock (unseen values are interned) and
// applies it. The delta is validated in full before any mutation:
// relation.ApplyDelta is atomic.
func (s *Server) applyPatch(req DataPatchRequest, master bool) (relation.ChangeSet, patchEnv, error) {
	s.dictMu.Lock()
	defer s.dictMu.Unlock()
	env := patchEnv{
		input:   s.p.Input,
		master:  s.p.Master,
		truth:   s.p.Truth,
		cache:   s.p.IndexCache,
		columns: s.p.Columns,
		etaS:    s.p.SupportThreshold,
		workers: s.p.Workers(),
		scalar:  s.p.ScalarEval,
	}
	rel := env.rel(master)
	schema := rel.Schema()
	var d relation.Delta
	for i, t := range req.Appends {
		row := make([]int32, schema.Len())
		for c := range row {
			row[c] = relation.Null
		}
		for col, v := range t {
			idx := schema.Index(col)
			if idx < 0 {
				return relation.ChangeSet{}, env, fmt.Errorf("append %d: unknown column %q", i, col)
			}
			if v != "" {
				row[idx] = rel.Dict(idx).Code(v)
			}
		}
		d.Appends = append(d.Appends, row)
	}
	for i, u := range req.Updates {
		idx := schema.Index(u.Attr)
		if idx < 0 {
			return relation.ChangeSet{}, env, fmt.Errorf("update %d: unknown column %q", i, u.Attr)
		}
		code := relation.Null
		if u.Value != "" {
			code = rel.Dict(idx).Code(u.Value)
		}
		d.Updates = append(d.Updates, relation.CellUpdate{Row: u.Row, Col: idx, Code: code})
	}
	cs, err := rel.ApplyDelta(d)
	if err != nil {
		return cs, env, err
	}
	// Labelled problems: appended input tuples arrive unlabelled, and
	// Truth must keep pace with the row count (Problem.Validate pins
	// len(Truth) == NumRows).
	if !master && cs.Appended > 0 && s.p.Truth != nil {
		for i := 0; i < cs.Appended; i++ {
			s.p.Truth = append(s.p.Truth, relation.Null)
		}
		env.truth = s.p.Truth
	}
	return cs, env, nil
}

// revalidateAfter re-scores exactly the active rules whose footprint
// the change set touches and installs the surviving rules as a new
// generation. When the delta touched no active rule, the current
// generation stands — same version, same etag.
func (s *Server) revalidateAfter(cs relation.ChangeSet, env patchEnv, master bool) (version int64, etag string, active, revalidated, dropped int, err error) {
	rs := s.rules()
	ev := measure.NewSharedEvaluator(env.input, env.master, env.truth, env.cache)
	if env.columns != nil {
		ev.ShareColumns(env.columns)
	}
	ev.Parallelism = env.workers
	ev.Scalar = env.scalar
	kept, revalidated, dropped := repair.Revalidate(ev, rs.rules, env.etaS, func(r *rule.Rule) bool {
		return repair.TouchedBy(r, cs, master)
	})
	s.metrics.indexBuilds.Add(int64(ev.Stats.IndexBuilds))
	if revalidated == 0 {
		return rs.version, rs.etag, len(rs.rules), 0, 0, nil
	}
	etag, err = s.generationETag(kept)
	if err != nil {
		return 0, "", 0, revalidated, dropped, fmt.Errorf("hashing re-validated generation: %w", err)
	}
	nrs := &ruleSet{version: s.version.Add(1), etag: etag, rules: kept, list: ruleList(kept)}
	s.install(nrs)
	s.metrics.ruleSwaps.Add(1)
	return nrs.version, etag, len(kept), revalidated, dropped, nil
}

// handleDataPatch is PATCH /v1/data.
func (s *Server) handleDataPatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.metrics.observeLatency(time.Since(start)) }()
	var req DataPatchRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if n := len(req.Appends) + len(req.Updates); n > s.cfg.maxBatch() {
		httpError(w, http.StatusBadRequest, "delta of %d entries exceeds the %d limit", n, s.cfg.maxBatch())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.requestTimeout())
	defer cancel()
	resp, status, err := s.PatchData(ctx.Done(), req)
	if err != nil {
		httpError(w, status, "%v", err)
		return
	}
	if req.Remine {
		// The patch itself succeeded; a full remine queue degrades the
		// response, it does not fail it.
		j, jerr := s.jobs.submit(JobSpec{Method: "rlminer-ft", Steps: req.RemineSteps, Activate: true})
		if jerr != nil {
			resp.RemineError = jerr.Error()
		} else {
			resp.RemineJob = j.id
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
