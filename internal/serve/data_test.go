package serve

import (
	"net/http"
	"strings"
	"testing"

	"erminer/internal/core"
)

// TestDataPatchMasterAppend is the serving half of the delta
// maintenance contract: appending master tuples through PATCH /v1/data
// must splice into the already-built shared indexes — not rebuild them
// — and the very next repair must draw fixes from the new rows.
func TestDataPatchMasterAppend(t *testing.T) {
	s := newTestServer(t, []core.MinedRule{districtRule()}, Config{})

	// Warm the shared master index through a normal repair.
	w := do(s, "POST", "/v1/repair", `{"tuples": [{"district": "hz", "area": "020"}]}`)
	var rr RepairResponse
	decode(t, w, &rr)
	if len(rr.Fixes) != 1 || rr.Fixes[0].New != "31200" {
		t.Fatalf("warm-up repair: %+v", rr.Fixes)
	}

	w = do(s, "PATCH", "/v1/data", `{"target": "master", "appends": [
		{"district": "xy", "area": "010", "postcode": "77777"},
		{"district": "xy", "area": "020", "postcode": "77777"},
		{"district": "xy", "area": "030", "postcode": "77777"}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("PATCH /v1/data: status %d: %s", w.Code, w.Body)
	}
	var pr DataPatchResponse
	decode(t, w, &pr)
	if pr.Target != "master" || pr.AppendedRows != 3 || pr.Rows != 12 {
		t.Fatalf("patch response = %+v", pr)
	}
	// Appended rows enlarge every rule's universe: the one active rule
	// must have been re-scored, survived, and a new generation installed.
	if pr.Revalidated != 1 || pr.Dropped != 0 || pr.RulesActive != 1 {
		t.Fatalf("revalidation after master append = %+v", pr)
	}
	if pr.RulesVersion != 2 || pr.RulesETag == "" {
		t.Fatalf("generation after patch = version %d etag %q", pr.RulesVersion, pr.RulesETag)
	}

	// A tuple from the appended district repairs from the spliced index.
	w = do(s, "POST", "/v1/repair", `{"tuples": [{"district": "xy", "area": "010"}]}`)
	decode(t, w, &rr)
	if len(rr.Fixes) != 1 || rr.Fixes[0].New != "77777" {
		t.Fatalf("repair from appended master rows: %+v", rr.Fixes)
	}
	if rr.RulesVersion != 2 {
		t.Errorf("repair ran on generation %d, want 2", rr.RulesVersion)
	}
}

// TestDataPatchInputUpdateDropsRule corrupts every input postcode so
// the active rule's approximate quality collapses: re-validation must
// drop it and install an empty generation.
func TestDataPatchInputUpdateDropsRule(t *testing.T) {
	s := newTestServer(t, []core.MinedRule{districtRule()}, Config{})
	var sb strings.Builder
	sb.WriteString(`{"target": "input", "updates": [`)
	for row := 0; row < 9; row++ {
		if row > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"row": `)
		sb.WriteString(string(rune('0' + row)))
		sb.WriteString(`, "attr": "postcode", "value": "00000"}`)
	}
	sb.WriteString(`]}`)
	w := do(s, "PATCH", "/v1/data", sb.String())
	if w.Code != http.StatusOK {
		t.Fatalf("PATCH /v1/data: status %d: %s", w.Code, w.Body)
	}
	var pr DataPatchResponse
	decode(t, w, &pr)
	if pr.Revalidated != 1 || pr.Dropped != 1 || pr.RulesActive != 0 {
		t.Fatalf("rule must be dropped when its quality collapses: %+v", pr)
	}
	if len(pr.TouchedColumns) != 1 || pr.TouchedColumns[0] != "postcode" {
		t.Errorf("touched_columns = %v, want [postcode]", pr.TouchedColumns)
	}

	// With no active rules the repair path proposes nothing.
	var rr RepairResponse
	decode(t, do(s, "POST", "/v1/repair", `{"tuples": [{"district": "hz", "area": "020"}]}`), &rr)
	if len(rr.Fixes) != 0 || rr.RulesVersion != 2 {
		t.Fatalf("repair after drop = %+v", rr)
	}
}

// TestDataPatchUntouchedRuleStands pins the selective re-validation: a
// delta on a column outside the active rule's (X, X_m, Y) footprint
// re-scores nothing and keeps the current generation — same version,
// same etag.
func TestDataPatchUntouchedRuleStands(t *testing.T) {
	s := newTestServer(t, []core.MinedRule{districtRule()}, Config{})
	before := s.rules()
	w := do(s, "PATCH", "/v1/data", `{"target": "input", "updates": [{"row": 0, "attr": "area", "value": "040"}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("PATCH /v1/data: status %d: %s", w.Code, w.Body)
	}
	var pr DataPatchResponse
	decode(t, w, &pr)
	if pr.Revalidated != 0 || pr.Dropped != 0 {
		t.Fatalf("untouched rule was re-scored: %+v", pr)
	}
	after := s.rules()
	if after.version != before.version || after.etag != before.etag {
		t.Errorf("generation moved from (%d, %s) to (%d, %s) without any rule changing",
			before.version, before.etag, after.version, after.etag)
	}
}

// TestDataPatchNoOp writes the values already present: the relation
// version must not move and no re-validation runs.
func TestDataPatchNoOp(t *testing.T) {
	s := newTestServer(t, []core.MinedRule{districtRule()}, Config{})
	body := `{"target": "input", "updates": [{"row": 0, "attr": "postcode", "value": "31200"}]}`
	var first, second DataPatchResponse
	decode(t, do(s, "PATCH", "/v1/data", body), &first)
	decode(t, do(s, "PATCH", "/v1/data", body), &second)
	if first.DataVersion != second.DataVersion {
		t.Errorf("no-op patch bumped the data version: %d then %d", first.DataVersion, second.DataVersion)
	}
	if first.Revalidated != 0 || first.RulesVersion != 1 {
		t.Errorf("no-op patch touched the rules: %+v", first)
	}
}

func TestDataPatchBadRequests(t *testing.T) {
	s := newTestServer(t, []core.MinedRule{districtRule()}, Config{MaxBatch: 2})
	cases := []struct {
		name, body string
	}{
		{"bad target", `{"target": "nowhere", "updates": [{"row": 0, "attr": "area", "value": "x"}]}`},
		{"empty delta", `{"target": "input"}`},
		{"unknown append column", `{"target": "input", "appends": [{"zip": "1"}]}`},
		{"unknown update column", `{"target": "input", "updates": [{"row": 0, "attr": "zip", "value": "1"}]}`},
		{"row out of range", `{"target": "input", "updates": [{"row": 99, "attr": "area", "value": "x"}]}`},
		{"over batch limit", `{"target": "input", "updates": [{"row": 0, "attr": "area", "value": "x"},
			{"row": 1, "attr": "area", "value": "x"}, {"row": 2, "attr": "area", "value": "x"}]}`},
		{"unknown field", `{"target": "input", "rows": []}`},
	}
	before := s.p.Input.Version()
	for _, c := range cases {
		if w := do(s, "PATCH", "/v1/data", c.body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", c.name, w.Code, w.Body)
		}
	}
	if got := s.p.Input.Version(); got != before {
		t.Errorf("a rejected delta mutated the input: version %d -> %d", before, got)
	}
}

// TestDataPatchQuiesceTimeout pins the stop-the-world discipline: a
// patch cannot start while a repair holds a worker slot, and gives up
// with 504 when the drain deadline passes.
func TestDataPatchQuiesceTimeout(t *testing.T) {
	s := newTestServer(t, []core.MinedRule{districtRule()}, Config{RepairWorkers: 1})
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	s.holdRepair = func() {
		entered <- struct{}{}
		<-gate
	}
	go do(s, "POST", "/v1/repair", `{"tuples": [{"district": "hz", "area": "020"}]}`)
	<-entered

	done := make(chan struct{})
	close(done)
	req := DataPatchRequest{Target: "input", Updates: []DataCellJSON{{Row: 0, Attr: "area", Value: "050"}}}
	if _, status, err := s.PatchData(done, req); status != http.StatusGatewayTimeout || err == nil {
		t.Fatalf("patch under a held worker slot: status %d, err %v", status, err)
	}

	close(gate)
	s.holdRepair = nil
	waitFor(t, "repair slot to drain", func() bool {
		resp, status, err := s.PatchData(make(chan struct{}), req)
		return err == nil && status == http.StatusOK && resp.DataVersion > 0
	})
}

// TestRemineFineTune drives the full enrichment loop: train and retain
// a model with an rlminer job, enrich the corpus through PATCH
// /v1/data with remine set, and watch the enqueued RLMiner-ft job
// fine-tune, clear the thresholds and activate a new generation.
func TestRemineFineTune(t *testing.T) {
	s := newTestServer(t, nil, Config{})

	// No retained model yet: a fine-tune job must fail up front.
	w := do(s, "POST", "/v1/jobs", `{"method": "rlminer-ft", "steps": 10}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("rlminer-ft submit: status %d: %s", w.Code, w.Body)
	}
	var st JobStatus
	decode(t, w, &st)
	early := st.ID
	waitFor(t, "premature fine-tune job to fail", func() bool {
		decode(t, do(s, "GET", "/v1/jobs/"+early, ""), &st)
		return st.State == JobDone || st.State == JobFailed
	})
	if st.State != JobFailed || !strings.Contains(st.Error, "no retained rlminer model") {
		t.Fatalf("fine-tune without a model = %+v", st)
	}

	// Train and retain.
	w = do(s, "POST", "/v1/jobs", `{"method": "rlminer", "steps": 120, "seed": 7, "activate": true}`)
	decode(t, w, &st)
	trained := st.ID
	waitFor(t, "rlminer job to finish", func() bool {
		decode(t, do(s, "GET", "/v1/jobs/"+trained, ""), &st)
		return st.State == JobDone || st.State == JobFailed
	})
	if st.State != JobDone || st.Rules == 0 {
		t.Fatalf("rlminer job = %+v", st)
	}

	// Enrich the corpus and ask for a fine-tune in the same request.
	w = do(s, "PATCH", "/v1/data", `{"target": "input",
		"appends": [{"district": "hz", "area": "040", "postcode": "31200"}],
		"remine": true, "remine_steps": 60}`)
	if w.Code != http.StatusOK {
		t.Fatalf("PATCH with remine: status %d: %s", w.Code, w.Body)
	}
	var pr DataPatchResponse
	decode(t, w, &pr)
	if pr.RemineJob == "" {
		t.Fatalf("no fine-tune job enqueued: %+v", pr)
	}
	waitFor(t, "fine-tune job to finish", func() bool {
		decode(t, do(s, "GET", "/v1/jobs/"+pr.RemineJob, ""), &st)
		return st.State == JobDone || st.State == JobFailed
	})
	if st.State != JobDone || st.Rules == 0 {
		t.Fatalf("fine-tune job = %+v", st)
	}
	if st.ActivatedVersion == 0 {
		t.Fatalf("fine-tuned generation cleared the thresholds but was not activated: %+v", st)
	}
	if got := s.rules().version; got != st.ActivatedVersion {
		t.Errorf("serving generation %d, fine-tune activated %d", got, st.ActivatedVersion)
	}
}
