package serve

// The daemon's route paths, shared with the ermcluster coordinator so
// both sides of the coordinator↔worker protocol name every endpoint
// through one set of constants. The ermvet httpcontract check resolves
// each client-side (method, path) pair against the registered routes by
// constant-folding these, so a path typo (or a client calling a route
// no daemon registers) fails the build instead of surfacing as a
// runtime 404. Registration patterns are built as "METHOD " + Path…
// string concatenations, which the Go 1.22 ServeMux parses and the
// type checker still folds to constants.
const (
	PathRepair        = "/v1/repair"
	PathValidate      = "/v1/validate"
	PathRules         = "/v1/rules"
	PathRulesStage    = "/v1/rules/stage"
	PathRulesActivate = "/v1/rules/activate"
	PathData          = "/v1/data"
	PathJobs          = "/v1/jobs"
	PathJobByID       = "/v1/jobs/{id}"
	PathHealthz       = "/healthz"
	PathMetrics       = "/metrics"
)
