package serve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	obs "erminer/internal/metrics"
)

// The daemon's metric names. Every name is a const (not an inline
// Fprintf literal) so the ermvet metricdrift check can pin the full set
// in its golden manifest: renaming or dropping a line here without
// regenerating metrics_names.json fails the build, the same way a wire
// shape cannot drift without a version bump.
const (
	metricUptimeSeconds       = "erminerd_uptime_seconds"
	metricRequestsTotal       = "erminerd_requests_total"
	metricInFlight            = "erminerd_requests_in_flight"
	metricInFlightRepair      = "erminerd_requests_in_flight_repair"
	metricInFlightValidate    = "erminerd_requests_in_flight_validate"
	metricQueueDepth          = "erminerd_queue_depth"
	metricRejectedTotal       = "erminerd_rejected_total"
	metricTimeoutsTotal       = "erminerd_timeouts_total"
	metricTuplesTotal         = "erminerd_tuples_total"
	metricRepairsAppliedTotal = "erminerd_repairs_applied_total"
	metricIndexBuildsTotal    = "erminerd_index_builds_total"
	metricRulesActive         = "erminerd_rules_active"
	metricRulesVersion        = "erminerd_rules_version"
	metricRuleSwapsTotal      = "erminerd_rule_swaps_total"
	metricRulesStagedTotal    = "erminerd_rules_staged_total"
	metricDataPatchesTotal    = "erminerd_data_patches_total"
	metricJobsQueued          = "erminerd_jobs_queued"
	metricJobsRunning         = "erminerd_jobs_running"
	metricJobsDoneTotal       = "erminerd_jobs_done_total"
	metricJobsFailedTotal     = "erminerd_jobs_failed_total"
	metricJobsRecoveredTotal  = "erminerd_jobs_recovered_total"
	metricRepairLatencyCount  = "erminerd_repair_latency_count"
	metricRepairLatencyP50    = "erminerd_repair_latency_p50_ms"
	metricRepairLatencyP99    = "erminerd_repair_latency_p99_ms"
)

// metrics holds the daemon's plain-text counters. Hot-path updates are
// atomic; only the latency ring takes a lock (one short critical section
// per request and per scrape).
type metrics struct {
	start time.Time

	requestsTotal    atomic.Int64 // every HTTP request received
	rejectedTotal    atomic.Int64 // 429s from the bounded queue
	timeoutsTotal    atomic.Int64 // requests cut off by the per-request timeout
	inFlight         atomic.Int64 // repair/validate requests holding a worker slot
	inFlightRepair   atomic.Int64 // POST /v1/repair requests currently inside the handler
	inFlightValidate atomic.Int64 // POST /v1/validate requests currently inside the handler
	queueDepth       atomic.Int64 // repair/validate requests waiting for a slot
	repairsApplied   atomic.Int64 // cells changed by POST /v1/repair
	tuplesSeen       atomic.Int64 // tuples received across repair+validate
	indexBuilds      atomic.Int64 // master indexes built (cache misses) on the serving path
	ruleSwaps        atomic.Int64 // successful rule-set activations
	rulesStaged      atomic.Int64 // generations parked by POST /v1/rules/stage
	dataPatches      atomic.Int64 // deltas applied by PATCH /v1/data
	jobsDone         atomic.Int64
	jobsFailed       atomic.Int64
	jobsRecovered    atomic.Int64 // jobs resumed from checkpoints at startup

	lat obs.LatencyRing // the shared p50/p99 window estimator
}

func newMetrics() *metrics {
	return &metrics{start: time.Now()}
}

func (m *metrics) observeLatency(d time.Duration) {
	m.lat.Observe(d)
}

// write renders the counters in a flat `name value` text format (one
// metric per line, Prometheus-parsable as untyped gauges).
func (m *metrics) write(w io.Writer, rulesActive int, rulesVersion int64, jobsQueued, jobsRunning int) {
	p50, p99, latCount := m.lat.Percentiles()
	fmt.Fprintf(w, "%s %.0f\n", metricUptimeSeconds, time.Since(m.start).Seconds())
	fmt.Fprintf(w, "%s %d\n", metricRequestsTotal, m.requestsTotal.Load())
	fmt.Fprintf(w, "%s %d\n", metricInFlight, m.inFlight.Load())
	fmt.Fprintf(w, "%s %d\n", metricInFlightRepair, m.inFlightRepair.Load())
	fmt.Fprintf(w, "%s %d\n", metricInFlightValidate, m.inFlightValidate.Load())
	fmt.Fprintf(w, "%s %d\n", metricQueueDepth, m.queueDepth.Load())
	fmt.Fprintf(w, "%s %d\n", metricRejectedTotal, m.rejectedTotal.Load())
	fmt.Fprintf(w, "%s %d\n", metricTimeoutsTotal, m.timeoutsTotal.Load())
	fmt.Fprintf(w, "%s %d\n", metricTuplesTotal, m.tuplesSeen.Load())
	fmt.Fprintf(w, "%s %d\n", metricRepairsAppliedTotal, m.repairsApplied.Load())
	fmt.Fprintf(w, "%s %d\n", metricIndexBuildsTotal, m.indexBuilds.Load())
	fmt.Fprintf(w, "%s %d\n", metricRulesActive, rulesActive)
	fmt.Fprintf(w, "%s %d\n", metricRulesVersion, rulesVersion)
	fmt.Fprintf(w, "%s %d\n", metricRuleSwapsTotal, m.ruleSwaps.Load())
	fmt.Fprintf(w, "%s %d\n", metricRulesStagedTotal, m.rulesStaged.Load())
	fmt.Fprintf(w, "%s %d\n", metricDataPatchesTotal, m.dataPatches.Load())
	fmt.Fprintf(w, "%s %d\n", metricJobsQueued, jobsQueued)
	fmt.Fprintf(w, "%s %d\n", metricJobsRunning, jobsRunning)
	fmt.Fprintf(w, "%s %d\n", metricJobsDoneTotal, m.jobsDone.Load())
	fmt.Fprintf(w, "%s %d\n", metricJobsFailedTotal, m.jobsFailed.Load())
	fmt.Fprintf(w, "%s %d\n", metricJobsRecoveredTotal, m.jobsRecovered.Load())
	// latency_count tallies every repair/validate outcome — 4xx, 429s
	// and timeouts included — so the percentile lines above can be read
	// against the real request population, not just the successes.
	fmt.Fprintf(w, "%s %d\n", metricRepairLatencyCount, latCount)
	fmt.Fprintf(w, "%s %.3f\n", metricRepairLatencyP50, p50)
	fmt.Fprintf(w, "%s %.3f\n", metricRepairLatencyP99, p99)
}
