package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyWindow is the number of recent request latencies the percentile
// estimator keeps. A fixed ring bounds memory under sustained traffic;
// p50/p99 are computed over the window at scrape time.
const latencyWindow = 1024

// metrics holds the daemon's plain-text counters. Hot-path updates are
// atomic; only the latency ring takes a lock (one short critical section
// per request and per scrape).
type metrics struct {
	start time.Time

	requestsTotal    atomic.Int64 // every HTTP request received
	rejectedTotal    atomic.Int64 // 429s from the bounded queue
	timeoutsTotal    atomic.Int64 // requests cut off by the per-request timeout
	inFlight         atomic.Int64 // repair/validate requests holding a worker slot
	inFlightRepair   atomic.Int64 // POST /v1/repair requests currently inside the handler
	inFlightValidate atomic.Int64 // POST /v1/validate requests currently inside the handler
	queueDepth       atomic.Int64 // repair/validate requests waiting for a slot
	repairsApplied   atomic.Int64 // cells changed by POST /v1/repair
	tuplesSeen       atomic.Int64 // tuples received across repair+validate
	indexBuilds      atomic.Int64 // master indexes built (cache misses) on the serving path
	ruleSwaps        atomic.Int64 // successful rule-set activations
	rulesStaged      atomic.Int64 // generations parked by POST /v1/rules/stage
	dataPatches      atomic.Int64 // deltas applied by PATCH /v1/data
	jobsDone         atomic.Int64
	jobsFailed       atomic.Int64
	jobsRecovered    atomic.Int64 // jobs resumed from checkpoints at startup

	latMu sync.Mutex
	lat   [latencyWindow]float64 // guarded by latMu; milliseconds
	latN  int64                  // guarded by latMu; total observations (ring write cursor = latN % window)
}

func newMetrics() *metrics {
	return &metrics{start: time.Now()}
}

func (m *metrics) observeLatency(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	m.latMu.Lock()
	m.lat[m.latN%latencyWindow] = ms
	m.latN++
	m.latMu.Unlock()
}

// percentiles returns p50 and p99 over the latency window, in
// milliseconds, plus the total number of observations ever made (the
// window only bounds what the percentiles are computed over). Zeroes
// when nothing has been observed yet.
func (m *metrics) percentiles() (p50, p99 float64, total int64) {
	m.latMu.Lock()
	total = m.latN
	n := m.latN
	if n > latencyWindow {
		n = latencyWindow
	}
	buf := make([]float64, n)
	copy(buf, m.lat[:n])
	m.latMu.Unlock()
	if n == 0 {
		return 0, 0, total
	}
	sort.Float64s(buf)
	rank := func(q float64) float64 {
		i := int(q*float64(n-1) + 0.5)
		return buf[i]
	}
	return rank(0.50), rank(0.99), total
}

// write renders the counters in a flat `name value` text format (one
// metric per line, Prometheus-parsable as untyped gauges).
func (m *metrics) write(w io.Writer, rulesActive int, rulesVersion int64, jobsQueued, jobsRunning int) {
	p50, p99, latCount := m.percentiles()
	fmt.Fprintf(w, "erminerd_uptime_seconds %.0f\n", time.Since(m.start).Seconds())
	fmt.Fprintf(w, "erminerd_requests_total %d\n", m.requestsTotal.Load())
	fmt.Fprintf(w, "erminerd_requests_in_flight %d\n", m.inFlight.Load())
	fmt.Fprintf(w, "erminerd_requests_in_flight_repair %d\n", m.inFlightRepair.Load())
	fmt.Fprintf(w, "erminerd_requests_in_flight_validate %d\n", m.inFlightValidate.Load())
	fmt.Fprintf(w, "erminerd_queue_depth %d\n", m.queueDepth.Load())
	fmt.Fprintf(w, "erminerd_rejected_total %d\n", m.rejectedTotal.Load())
	fmt.Fprintf(w, "erminerd_timeouts_total %d\n", m.timeoutsTotal.Load())
	fmt.Fprintf(w, "erminerd_tuples_total %d\n", m.tuplesSeen.Load())
	fmt.Fprintf(w, "erminerd_repairs_applied_total %d\n", m.repairsApplied.Load())
	fmt.Fprintf(w, "erminerd_index_builds_total %d\n", m.indexBuilds.Load())
	fmt.Fprintf(w, "erminerd_rules_active %d\n", rulesActive)
	fmt.Fprintf(w, "erminerd_rules_version %d\n", rulesVersion)
	fmt.Fprintf(w, "erminerd_rule_swaps_total %d\n", m.ruleSwaps.Load())
	fmt.Fprintf(w, "erminerd_rules_staged_total %d\n", m.rulesStaged.Load())
	fmt.Fprintf(w, "erminerd_data_patches_total %d\n", m.dataPatches.Load())
	fmt.Fprintf(w, "erminerd_jobs_queued %d\n", jobsQueued)
	fmt.Fprintf(w, "erminerd_jobs_running %d\n", jobsRunning)
	fmt.Fprintf(w, "erminerd_jobs_done_total %d\n", m.jobsDone.Load())
	fmt.Fprintf(w, "erminerd_jobs_failed_total %d\n", m.jobsFailed.Load())
	fmt.Fprintf(w, "erminerd_jobs_recovered_total %d\n", m.jobsRecovered.Load())
	// latency_count tallies every repair/validate outcome — 4xx, 429s
	// and timeouts included — so the percentile lines above can be read
	// against the real request population, not just the successes.
	fmt.Fprintf(w, "erminerd_repair_latency_count %d\n", latCount)
	fmt.Fprintf(w, "erminerd_repair_latency_p50_ms %.3f\n", p50)
	fmt.Fprintf(w, "erminerd_repair_latency_p99_ms %.3f\n", p99)
}
