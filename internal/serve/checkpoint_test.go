package serve

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"erminer/internal/core"
	"erminer/internal/rlminer"
)

// TestJobWorkerSurvivesPanic pins the worker-pool bugfix at the manager
// level: a run function that panics fails its job but leaves the worker
// alive for the next submission (before the fix the panic killed the
// goroutine, silently shrinking the pool to zero).
func TestJobWorkerSurvivesPanic(t *testing.T) {
	ran := make(chan string, 2)
	m := newJobManager(1, 4, func(j *job) {
		if j.spec.Method == "boom" {
			panic("miner exploded")
		}
		j.setDone(0, 0, nil, 0)
		ran <- j.id
	})
	bad, err := m.submit(JobSpec{Method: "boom"})
	if err != nil {
		t.Fatal(err)
	}
	good, err := m.submit(JobSpec{Method: "ok"})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case id := <-ran:
		if id != good.id {
			t.Fatalf("unexpected job ran: %s", id)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker died on the panic: second job never ran")
	}
	st := bad.snapshot()
	if st.State != JobFailed || !strings.Contains(st.Error, "panicked") {
		t.Errorf("panicked job = %+v", st)
	}
	if err := m.shutdown(nil); err != nil {
		t.Error(err)
	}
}

// TestPanickingJobLeavesDaemonServing is the end-to-end regression
// test: a panic inside a running job marks that job failed while the
// daemon keeps answering health checks and repairs and keeps executing
// later jobs. check.sh runs this under -race.
func TestPanickingJobLeavesDaemonServing(t *testing.T) {
	s := newTestServer(t, []core.MinedRule{districtRule()}, Config{JobWorkers: 1})
	s.holdJob = func(id string) {
		if id == "job-1" {
			panic("injected miner panic")
		}
	}
	if w := do(s, "POST", "/v1/jobs", `{"method": "enuminer"}`); w.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", w.Code, w.Body)
	}
	var st JobStatus
	waitFor(t, "panicking job to fail", func() bool {
		decode(t, do(s, "GET", "/v1/jobs/job-1", ""), &st)
		return st.State == JobFailed
	})
	if !strings.Contains(st.Error, "panicked") {
		t.Errorf("failed job error = %q, want a panic attribution", st.Error)
	}
	if w := do(s, "GET", "/healthz", ""); w.Code != http.StatusOK {
		t.Errorf("healthz after job panic: status %d", w.Code)
	}
	if w := do(s, "POST", "/v1/repair", `{"tuples": [{"district": "hz", "area": "010", "postcode": "9"}]}`); w.Code != http.StatusOK {
		t.Errorf("repair after job panic: status %d: %s", w.Code, w.Body)
	}
	if w := do(s, "POST", "/v1/jobs", `{"method": "enuminer"}`); w.Code != http.StatusAccepted {
		t.Fatalf("second submit: status %d: %s", w.Code, w.Body)
	}
	waitFor(t, "second job to finish", func() bool {
		var cur JobStatus
		decode(t, do(s, "GET", "/v1/jobs/job-2", ""), &cur)
		return cur.State == JobDone
	})
	if got := s.metrics.jobsFailed.Load(); got != 1 {
		t.Errorf("jobsFailed = %d, want 1", got)
	}
}

// TestRLMinerJobCheckpointLifecycle: with CheckpointDir set an rlminer
// job reports training progress through its status, and its recovery
// files (manifest + checkpoint) are retired once it completes.
func TestRLMinerJobCheckpointLifecycle(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, nil, Config{CheckpointDir: dir})
	if w := do(s, "POST", "/v1/jobs", `{"method": "rlminer", "steps": 60, "seed": 7}`); w.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", w.Code, w.Body)
	}
	var st JobStatus
	waitFor(t, "rlminer job to finish", func() bool {
		decode(t, do(s, "GET", "/v1/jobs/job-1", ""), &st)
		return st.State == JobDone || st.State == JobFailed
	})
	if st.State != JobDone {
		t.Fatalf("job = %+v", st)
	}
	if st.Step != 60 || st.TotalSteps != 60 {
		t.Errorf("final progress = %d/%d, want 60/60", st.Step, st.TotalSteps)
	}
	left, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("recovery files left behind: %v", left)
	}
}

// TestServerRecoversInterruptedRLMinerJob simulates a daemon killed
// mid-training: a spec manifest and a mid-run checkpoint sit in the
// checkpoint directory, and a new Server over the same directory
// resumes the job to completion, reserves its ID, sweeps corrupt
// manifests, and retires the files.
func TestServerRecoversInterruptedRLMinerJob(t *testing.T) {
	dir := t.TempDir()

	// Produce a genuine mid-run checkpoint the way a killed daemon would
	// have left one: the step trigger fires at 40 of 80, and the process
	// "dies" before completion simply by us not using this miner further.
	ckPath := filepath.Join(dir, "job-3.ckpt")
	pre := rlminer.New(rlminer.Config{TrainSteps: 80, Seed: 7,
		CheckpointPath: ckPath, CheckpointEverySteps: 40})
	if _, err := pre.Mine(testProblem(t)); err != nil {
		t.Fatal(err)
	}
	man, err := json.Marshal(jobManifest{ID: "job-3", Spec: JobSpec{Method: "rlminer", Steps: 80, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "job-3.spec.json"), man, 0o644); err != nil {
		t.Fatal(err)
	}
	// A corrupt manifest must be swept, not recovered and not fatal.
	if err := os.WriteFile(filepath.Join(dir, "job-0.spec.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, nil, Config{CheckpointDir: dir})
	var st JobStatus
	waitFor(t, "recovered job to finish", func() bool {
		decode(t, do(s, "GET", "/v1/jobs/job-3", ""), &st)
		return st.State == JobDone || st.State == JobFailed
	})
	if st.State != JobDone || !st.Resumed {
		t.Fatalf("recovered job = %+v", st)
	}
	if got := s.metrics.jobsRecovered.Load(); got != 1 {
		t.Errorf("jobsRecovered = %d, want 1", got)
	}

	// Recovered IDs are reserved: a fresh submission continues past them.
	w := do(s, "POST", "/v1/jobs", `{"method": "enuminer"}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("fresh submit: status %d: %s", w.Code, w.Body)
	}
	var fresh JobStatus
	decode(t, w, &fresh)
	if fresh.ID != "job-4" {
		t.Errorf("fresh job id = %s, want job-4", fresh.ID)
	}

	left, err := filepath.Glob(filepath.Join(dir, "*.spec.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("manifests left behind: %v", left)
	}
	if _, err := os.Stat(ckPath); !os.IsNotExist(err) {
		t.Errorf("checkpoint file not retired (err=%v)", err)
	}
}
