package serve

// The suite exercises the daemon through its HTTP surface (Go 1.22
// ServeMux with method patterns) against a handcrafted district/area →
// postcode problem small enough that the asynchronous mining jobs run
// in milliseconds. The concurrency tests (queue saturation, shared
// index cache, shutdown drain) rely on the in-package holdRepair and
// holdJob hooks to park requests at deterministic points; check.sh
// runs everything under -race.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"erminer/internal/core"
	"erminer/internal/measure"
	"erminer/internal/relation"
	"erminer/internal/rule"
	"erminer/internal/rulesio"
	"erminer/internal/schema"
)

// testProblem builds a problem whose master data holds the clean
// functional dependency district → postcode (hz→31200, bd→45000,
// cz→52000) over three areas each; the input corpus mirrors it with one
// missing postcode, so every miner discovers the dependency quickly.
func testProblem(t *testing.T) *core.Problem {
	t.Helper()
	pool := relation.NewPool()
	attrs := []relation.Attribute{
		{Name: "district", Domain: "d"},
		{Name: "area", Domain: "a"},
		{Name: "postcode", Domain: "p"},
	}
	in := relation.NewSchema(attrs...)
	ms := relation.NewSchema(attrs...)
	input := relation.New(in, pool)
	master := relation.New(ms, pool)
	postcode := map[string]string{"hz": "31200", "bd": "45000", "cz": "52000"}
	for _, d := range []string{"hz", "bd", "cz"} {
		for _, a := range []string{"010", "020", "030"} {
			master.AppendRow([]string{d, a, postcode[d]})
			input.AppendRow([]string{d, a, postcode[d]})
		}
	}
	input.AppendRow([]string{"hz", "020", ""})
	match, err := schema.FromNames(in, ms, map[string]string{"district": "district", "area": "area"})
	if err != nil {
		t.Fatal(err)
	}
	return &core.Problem{
		Input: input, Master: master, Match: match,
		Y: 2, Ym: 2, SupportThreshold: 2, TopK: 10,
	}
}

// districtRule is the handwritten district → postcode editing rule the
// fixture master certifies with certainty 1.
func districtRule() core.MinedRule {
	return core.MinedRule{
		Rule:     rule.New([]rule.AttrPair{{Input: 0, Master: 0}}, 2, 2, nil),
		Measures: measure.Measures{Support: 9, Certainty: 1, Quality: 1, Utility: 9.65},
	}
}

func newTestServer(t *testing.T, rules []core.MinedRule, cfg Config) *Server {
	t.Helper()
	s, err := New(testProblem(t), rules, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		done := make(chan struct{})
		time.AfterFunc(10*time.Second, func() { close(done) })
		if err := s.Shutdown(done); err != nil {
			t.Errorf("cleanup shutdown: %v", err)
		}
	})
	return s
}

func do(s *Server, method, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func decode(t *testing.T, w *httptest.ResponseRecorder, v any) {
	t.Helper()
	if err := json.Unmarshal(w.Body.Bytes(), v); err != nil {
		t.Fatalf("decoding response %q: %v", w.Body.String(), err)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestRepairHappyPath(t *testing.T) {
	s := newTestServer(t, []core.MinedRule{districtRule()}, Config{})
	w := do(s, "POST", "/v1/repair", `{"explain": true, "tuples": [
		{"district": "hz", "area": "010", "postcode": "99999"},
		{"district": "bd", "area": "020"},
		{"district": "zz", "area": "010", "postcode": "1"},
		{"district": "cz", "area": "030", "postcode": "52000"}
	]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp RepairResponse
	decode(t, w, &resp)

	if resp.RulesVersion != 1 {
		t.Errorf("rules_version = %d, want 1", resp.RulesVersion)
	}
	if resp.Covered != 3 {
		t.Errorf("covered = %d, want 3 (zz joins no master tuple)", resp.Covered)
	}
	if resp.Changed != 2 || len(resp.Fixes) != 2 {
		t.Fatalf("changed = %d, fixes = %d, want 2 each", resp.Changed, len(resp.Fixes))
	}
	dirty, missing := resp.Fixes[0], resp.Fixes[1]
	if dirty.Row != 0 || dirty.Old != "99999" || dirty.New != "31200" || dirty.Attr != "postcode" {
		t.Errorf("dirty-cell fix = %+v", dirty)
	}
	if missing.Row != 1 || missing.Old != "" || missing.New != "45000" {
		t.Errorf("missing-cell fix = %+v", missing)
	}
	if dirty.Score <= 0 {
		t.Errorf("fix score = %g, want > 0", dirty.Score)
	}
	if len(dirty.Rules) == 0 || !strings.Contains(dirty.Rules[0], "district") {
		t.Errorf("fix carries no rule explanation: %+v", dirty.Rules)
	}
	if len(dirty.Evidence) == 0 || len(dirty.Evidence[0].Candidates) == 0 {
		t.Errorf("explain=true but no candidate evidence: %+v", dirty.Evidence)
	}
	if dirty.Evidence[0].Candidates[0].Value != "31200" {
		t.Errorf("top candidate = %+v, want 31200", dirty.Evidence[0].Candidates[0])
	}
	// The echoed tuples carry the repaired values in place.
	if got := resp.Tuples[0]["postcode"]; got != "31200" {
		t.Errorf("tuple 0 echoes postcode %q, want 31200", got)
	}
	if got := resp.Tuples[1]["postcode"]; got != "45000" {
		t.Errorf("tuple 1 echoes postcode %q, want 45000", got)
	}
	if got := resp.Tuples[2]["postcode"]; got != "1" {
		t.Errorf("uncovered tuple 2 was rewritten to %q", got)
	}
}

func TestRepairOnlyMissing(t *testing.T) {
	s := newTestServer(t, []core.MinedRule{districtRule()}, Config{})
	w := do(s, "POST", "/v1/repair", `{"only_missing": true, "tuples": [
		{"district": "hz", "area": "010", "postcode": "99999"},
		{"district": "bd", "area": "020"}
	]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp RepairResponse
	decode(t, w, &resp)
	if resp.Covered != 2 {
		t.Errorf("covered = %d, want 2", resp.Covered)
	}
	if resp.Changed != 1 || len(resp.Fixes) != 1 {
		t.Fatalf("imputation mode changed %d cells (%d fixes), want 1", resp.Changed, len(resp.Fixes))
	}
	if resp.Fixes[0].Row != 1 || resp.Fixes[0].New != "45000" {
		t.Errorf("fix = %+v, want row 1 → 45000", resp.Fixes[0])
	}
	if got := resp.Tuples[0]["postcode"]; got != "99999" {
		t.Errorf("only_missing rewrote a populated cell to %q", got)
	}
}

func TestRepairBadRequests(t *testing.T) {
	s := newTestServer(t, []core.MinedRule{districtRule()}, Config{MaxBatch: 2})
	cases := []struct {
		name, body string
	}{
		{"malformed JSON", `{"tuples": [`},
		{"unknown field", `{"tuples": [{"district": "hz"}], "bogus": 1}`},
		{"trailing data", `{"tuples": [{"district": "hz"}]} {"again": true}`},
		{"unknown column", `{"tuples": [{"street": "main", "district": "hz"}]}`},
		{"empty batch", `{"tuples": []}`},
		{"over max batch", `{"tuples": [{}, {}, {}]}`},
	}
	for _, tc := range cases {
		if w := do(s, "POST", "/v1/repair", tc.body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, w.Code, w.Body)
		}
	}
}

func TestValidateStatuses(t *testing.T) {
	s := newTestServer(t, []core.MinedRule{districtRule()}, Config{})
	w := do(s, "POST", "/v1/validate", `{"tuples": [
		{"district": "hz", "area": "010", "postcode": "31200"},
		{"district": "hz", "area": "010", "postcode": "99999"},
		{"district": "bd", "area": "010"},
		{"district": "zz", "area": "010", "postcode": "1"}
	]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp ValidateResponse
	decode(t, w, &resp)
	want := []struct {
		status, expected string
	}{
		{"consistent", ""},
		{"violation", "31200"},
		{"missing", "45000"},
		{"uncovered", ""},
	}
	for i, wv := range want {
		got := resp.Results[i]
		if got.Status != wv.status || got.Expected != wv.expected {
			t.Errorf("row %d: got %s/%q, want %s/%q", i, got.Status, got.Expected, wv.status, wv.expected)
		}
	}
	if resp.Violations != 1 || resp.Missing != 1 || resp.Uncovered != 1 {
		t.Errorf("counts = %d/%d/%d, want 1/1/1", resp.Violations, resp.Missing, resp.Uncovered)
	}
}

// TestHotSwap starts with no rules, uploads a rule set over PUT
// /v1/rules, and checks the very next repair uses it; GET /v1/rules
// round-trips the active set in the wire format.
func TestHotSwap(t *testing.T) {
	s := newTestServer(t, nil, Config{})
	repairBody := `{"tuples": [{"district": "hz", "area": "010", "postcode": "99999"}]}`

	w := do(s, "POST", "/v1/repair", repairBody)
	var before RepairResponse
	decode(t, w, &before)
	if before.RulesVersion != 1 || before.Covered != 0 || len(before.Fixes) != 0 {
		t.Fatalf("empty rule set proposed fixes: %+v", before)
	}

	data, err := rulesio.Export(s.p, []core.MinedRule{districtRule()})
	if err != nil {
		t.Fatal(err)
	}
	w = do(s, "PUT", "/v1/rules", string(data))
	if w.Code != http.StatusOK {
		t.Fatalf("PUT /v1/rules: status %d: %s", w.Code, w.Body)
	}
	var put struct {
		Version int64 `json:"version"`
		Count   int   `json:"count"`
	}
	decode(t, w, &put)
	if put.Version != 2 || put.Count != 1 {
		t.Fatalf("swap = %+v, want version 2 count 1", put)
	}

	w = do(s, "POST", "/v1/repair", repairBody)
	var after RepairResponse
	decode(t, w, &after)
	if after.RulesVersion != 2 {
		t.Errorf("post-swap rules_version = %d, want 2", after.RulesVersion)
	}
	if len(after.Fixes) != 1 || after.Fixes[0].New != "31200" {
		t.Errorf("post-swap repair did not use the new rules: %+v", after.Fixes)
	}

	w = do(s, "GET", "/v1/rules", "")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /v1/rules: status %d", w.Code)
	}
	if got := w.Header().Get("X-Rules-Version"); got != "2" {
		t.Errorf("X-Rules-Version = %q, want 2", got)
	}
	var wire []rulesio.RuleJSON
	decode(t, w, &wire)
	if len(wire) != 1 || wire[0].Y != "postcode" {
		t.Errorf("exported active set = %+v", wire)
	}
	if w = do(s, "PUT", "/v1/rules", `[{"lhs": [["nosuch", "nosuch"]], "y": "postcode", "ym": "postcode"}]`); w.Code != http.StatusBadRequest {
		t.Errorf("bad rule upload: status %d, want 400", w.Code)
	}
	if v := s.rules().version; v != 2 {
		t.Errorf("failed swap advanced the active version to %d", v)
	}
}

// TestQueueSaturation pins one request inside the single worker slot and
// one in the single queue slot; the third must be rejected with 429
// immediately, and the held requests must still complete.
func TestQueueSaturation(t *testing.T) {
	s := newTestServer(t, []core.MinedRule{districtRule()}, Config{RepairWorkers: 1, QueueDepth: 1})
	gate := make(chan struct{})
	s.holdRepair = func() { <-gate }
	body := `{"tuples": [{"district": "hz", "area": "010"}]}`

	var wg sync.WaitGroup
	codes := make([]int, 2)
	launch := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			codes[i] = do(s, "POST", "/v1/repair", body).Code
		}()
	}
	// First request holds the single worker slot at the gate.
	launch(0)
	waitFor(t, "first request to hold the worker slot", func() bool {
		return s.metrics.inFlight.Load() == 1
	})
	// Second request occupies the one queue slot.
	launch(1)
	waitFor(t, "second request to queue", func() bool { return s.waiters.Load() == 1 })

	// Third request: queue full → 429, no waiting.
	if w := do(s, "POST", "/v1/repair", body); w.Code != http.StatusTooManyRequests {
		t.Errorf("saturated queue: status %d, want 429 (%s)", w.Code, w.Body)
	}
	if got := s.metrics.rejectedTotal.Load(); got != 1 {
		t.Errorf("rejected_total = %d, want 1", got)
	}

	close(gate)
	wg.Wait()
	if codes[0] != http.StatusOK || codes[1] != http.StatusOK {
		t.Errorf("held requests finished %v, want both 200", codes)
	}
}

// TestSharedIndexBuiltOnce is the acceptance check for cache sharing:
// eight concurrent repair batches over the same rule must build the
// rule's master index exactly once.
func TestSharedIndexBuiltOnce(t *testing.T) {
	s := newTestServer(t, []core.MinedRule{districtRule()}, Config{RepairWorkers: 8})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"tuples": [{"district": "hz", "area": "0%d0"}, {"district": "cz", "area": "010", "postcode": "bad%d"}]}`, i%3+1, i)
			if w := do(s, "POST", "/v1/repair", body); w.Code != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, w.Code, w.Body)
			}
		}(i)
	}
	wg.Wait()
	if got := s.metrics.indexBuilds.Load(); got != 1 {
		t.Errorf("index builds across 8 parallel requests = %d, want 1", got)
	}
	if got := s.p.IndexCache.Len(); got != 1 {
		t.Errorf("shared cache holds %d indexes, want 1", got)
	}
}

// TestJobLifecycle drives the full cycle: submit an asynchronous mining
// job with activation, watch it through queued/running to done, then
// repair with the rule set it installed.
func TestJobLifecycle(t *testing.T) {
	s := newTestServer(t, nil, Config{})
	w := do(s, "POST", "/v1/jobs", `{"method": "enuminerh3", "k": 5, "activate": true}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: status %d: %s", w.Code, w.Body)
	}
	var st JobStatus
	decode(t, w, &st)
	if st.ID == "" || (st.State != JobQueued && st.State != JobRunning) {
		t.Fatalf("submitted job = %+v", st)
	}

	waitFor(t, "mining job to finish", func() bool {
		var cur JobStatus
		decode(t, do(s, "GET", "/v1/jobs/"+st.ID, ""), &cur)
		st = cur
		return cur.State == JobDone || cur.State == JobFailed
	})
	if st.State != JobDone {
		t.Fatalf("job = %+v", st)
	}
	if st.Rules == 0 || st.Explored == 0 {
		t.Errorf("done job mined %d rules exploring %d candidates", st.Rules, st.Explored)
	}
	if st.ActivatedVersion != 2 {
		t.Errorf("activated_version = %d, want 2", st.ActivatedVersion)
	}

	w = do(s, "POST", "/v1/repair", `{"tuples": [{"district": "hz", "area": "010", "postcode": "99999"}]}`)
	var resp RepairResponse
	decode(t, w, &resp)
	if resp.RulesVersion != 2 {
		t.Errorf("repair after job ran on version %d, want 2", resp.RulesVersion)
	}
	if len(resp.Fixes) != 1 || resp.Fixes[0].New != "31200" {
		t.Fatalf("mined rules did not repair the dirty tuple: %+v", resp.Fixes)
	}

	var listing struct {
		Jobs []JobStatus `json:"jobs"`
	}
	decode(t, do(s, "GET", "/v1/jobs", ""), &listing)
	if len(listing.Jobs) != 1 || listing.Jobs[0].ID != st.ID {
		t.Errorf("job listing = %+v", listing.Jobs)
	}
}

func TestJobQueueFullAndUnknownJob(t *testing.T) {
	s := newTestServer(t, nil, Config{JobWorkers: 1, JobQueue: 1})
	gate := make(chan struct{})
	s.holdJob = func(string) { <-gate }

	if w := do(s, "POST", "/v1/jobs", `{"method": "notaminer"}`); w.Code != http.StatusBadRequest {
		t.Errorf("unknown method: status %d, want 400", w.Code)
	}
	if w := do(s, "POST", "/v1/jobs", `{"method": "enuminer"}`); w.Code != http.StatusAccepted {
		t.Fatalf("job 1: status %d: %s", w.Code, w.Body)
	}
	waitFor(t, "job 1 to start running", func() bool {
		_, running := s.jobs.depths()
		return running == 1
	})
	if w := do(s, "POST", "/v1/jobs", `{"method": "enuminer"}`); w.Code != http.StatusAccepted {
		t.Fatalf("job 2: status %d: %s", w.Code, w.Body)
	}
	if w := do(s, "POST", "/v1/jobs", `{"method": "enuminer"}`); w.Code != http.StatusTooManyRequests {
		t.Errorf("job 3 with a full queue: status %d, want 429 (%s)", w.Code, w.Body)
	}
	if w := do(s, "GET", "/v1/jobs/job-99", ""); w.Code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", w.Code)
	}

	close(gate)
	waitFor(t, "both jobs to finish", func() bool {
		queued, running := s.jobs.depths()
		return queued == 0 && running == 0
	})
	for _, id := range []string{"job-1", "job-2"} {
		var st JobStatus
		decode(t, do(s, "GET", "/v1/jobs/"+id, ""), &st)
		if st.State != JobDone {
			t.Errorf("%s = %+v, want done", id, st)
		}
	}
}

// TestGracefulShutdownDrain checks the drain contract: the running job
// finishes, the still-queued job is cancelled, and new requests are
// refused with 503 while draining.
func TestGracefulShutdownDrain(t *testing.T) {
	s, err := New(testProblem(t), []core.MinedRule{districtRule()}, Config{JobWorkers: 1, JobQueue: 4})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	s.holdJob = func(string) { <-gate }
	if w := do(s, "POST", "/v1/jobs", `{"method": "enuminer"}`); w.Code != http.StatusAccepted {
		t.Fatalf("job 1: status %d", w.Code)
	}
	waitFor(t, "job 1 to start running", func() bool {
		_, running := s.jobs.depths()
		return running == 1
	})
	if w := do(s, "POST", "/v1/jobs", `{"method": "enuminer"}`); w.Code != http.StatusAccepted {
		t.Fatalf("job 2: status %d", w.Code)
	}

	shutdownErr := make(chan error, 1)
	limit := make(chan struct{})
	time.AfterFunc(10*time.Second, func() { close(limit) })
	go func() { shutdownErr <- s.Shutdown(limit) }()
	waitFor(t, "server to enter drain mode", func() bool { return s.closed.Load() })

	// While draining: repairs and new jobs get 503, healthz reports it.
	if w := do(s, "POST", "/v1/repair", `{"tuples": [{"district": "hz"}]}`); w.Code != http.StatusServiceUnavailable {
		t.Errorf("repair while draining: status %d, want 503", w.Code)
	}
	if w := do(s, "POST", "/v1/jobs", `{"method": "enuminer"}`); w.Code != http.StatusServiceUnavailable {
		t.Errorf("job submit while draining: status %d, want 503", w.Code)
	}
	w := do(s, "GET", "/healthz", "")
	if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "shutting_down") {
		t.Errorf("healthz while draining: %d %s", w.Code, w.Body)
	}

	close(gate)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	var st1, st2 JobStatus
	decode(t, do(s, "GET", "/v1/jobs/job-1", ""), &st1)
	decode(t, do(s, "GET", "/v1/jobs/job-2", ""), &st2)
	if st1.State != JobDone {
		t.Errorf("running job drained to %q, want done", st1.State)
	}
	if st2.State != JobCancelled {
		t.Errorf("queued job drained to %q, want cancelled", st2.State)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s := newTestServer(t, []core.MinedRule{districtRule()}, Config{})
	do(s, "POST", "/v1/repair", `{"tuples": [{"district": "bd", "area": "010"}]}`)

	w := do(s, "GET", "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", w.Code)
	}
	var health struct {
		Status       string `json:"status"`
		RulesActive  int    `json:"rules_active"`
		RulesVersion int64  `json:"rules_version"`
	}
	decode(t, w, &health)
	if health.Status != "ok" || health.RulesActive != 1 || health.RulesVersion != 1 {
		t.Errorf("healthz = %+v", health)
	}

	w = do(s, "GET", "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", w.Code)
	}
	body := w.Body.String()
	for _, line := range []string{
		// 3 = the repair, the healthz probe and this scrape itself.
		"erminerd_requests_total 3",
		"erminerd_repairs_applied_total 1",
		"erminerd_tuples_total 1",
		"erminerd_rules_active 1",
		"erminerd_rules_version 1",
		"erminerd_index_builds_total 1",
		"erminerd_repair_latency_p50_ms",
		"erminerd_repair_latency_p99_ms",
	} {
		if !strings.Contains(body, line) {
			t.Errorf("metrics output missing %q:\n%s", line, body)
		}
	}
}

// TestCloneProblemIsolation checks the mining-job contract: a clone
// shares no mutable state with the serving problem — interning into the
// clone must not leak into the serving dictionaries, and the clone gets
// a private index cache.
func TestCloneProblemIsolation(t *testing.T) {
	s := newTestServer(t, []core.MinedRule{districtRule()}, Config{})
	clone := s.cloneProblem()

	if clone.IndexCache == s.p.IndexCache {
		t.Fatal("clone shares the serving index cache")
	}
	if clone.Input.Pool() == s.p.Input.Pool() {
		t.Fatal("clone shares the serving dictionary pool")
	}
	if clone.Input.NumRows() != s.p.Input.NumRows() || clone.Master.NumRows() != s.p.Master.NumRows() {
		t.Fatalf("clone shape %d/%d, want %d/%d",
			clone.Input.NumRows(), clone.Master.NumRows(),
			s.p.Input.NumRows(), s.p.Master.NumRows())
	}
	for row := 0; row < clone.Input.NumRows(); row++ {
		want := strings.Join(s.p.Input.RowStrings(row), "|")
		if got := strings.Join(clone.Input.RowStrings(row), "|"); got != want {
			t.Fatalf("clone row %d = %q, want %q", row, got, want)
		}
	}

	clone.Input.Dict(2).Code("00000")
	if _, ok := s.p.Input.Dict(2).Lookup("00000"); ok {
		t.Error("interning into the clone leaked into the serving dictionaries")
	}
}

// TestRulesStageActivate drives the worker side of the cluster's
// two-phase rule push: staging parks a generation without touching the
// active set, activation must name the staged etag exactly, and the
// etag equals the content hash GET /v1/rules advertises afterwards.
func TestRulesStageActivate(t *testing.T) {
	s := newTestServer(t, nil, Config{})
	data, err := rulesio.Export(s.p, []core.MinedRule{districtRule()})
	if err != nil {
		t.Fatal(err)
	}

	w := do(s, "POST", "/v1/rules/stage", string(data))
	if w.Code != http.StatusOK {
		t.Fatalf("stage: status %d: %s", w.Code, w.Body)
	}
	var staged struct {
		ETag  string `json:"etag"`
		Count int    `json:"count"`
	}
	decode(t, w, &staged)
	if staged.Count != 1 || !strings.HasPrefix(staged.ETag, "sha256:") {
		t.Fatalf("stage response = %+v", staged)
	}
	if got := rulesio.Hash(data); staged.ETag != got {
		t.Errorf("staged etag %s, want content hash %s", staged.ETag, got)
	}

	// Staging must not activate: repairs still run the empty set.
	var mid RepairResponse
	decode(t, do(s, "POST", "/v1/repair", `{"tuples": [{"district": "hz", "area": "010"}]}`), &mid)
	if mid.RulesVersion != 1 || mid.Covered != 0 {
		t.Fatalf("staging touched the active set: %+v", mid)
	}

	// Activation is exact-match on the generation id.
	if w := do(s, "POST", "/v1/rules/activate", `{"etag": "sha256:wrong"}`); w.Code != http.StatusConflict {
		t.Fatalf("wrong-etag activate: status %d, want 409", w.Code)
	}
	// The mismatch consumed the staged set; re-stage and activate.
	do(s, "POST", "/v1/rules/stage", string(data))
	w = do(s, "POST", "/v1/rules/activate", `{"etag": "`+staged.ETag+`"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("activate: status %d: %s", w.Code, w.Body)
	}
	var act struct {
		Version int64  `json:"version"`
		Count   int    `json:"count"`
		ETag    string `json:"etag"`
	}
	decode(t, w, &act)
	if act.Version != 2 || act.Count != 1 || act.ETag != staged.ETag {
		t.Fatalf("activate response = %+v", act)
	}
	if got := s.RulesETag(); got != staged.ETag {
		t.Errorf("RulesETag = %s, want %s", got, staged.ETag)
	}

	var after RepairResponse
	decode(t, do(s, "POST", "/v1/repair", `{"tuples": [{"district": "hz", "area": "010", "postcode": "9"}]}`), &after)
	if after.RulesVersion != 2 || len(after.Fixes) != 1 {
		t.Fatalf("activated rules not serving: %+v", after)
	}

	w = do(s, "GET", "/v1/rules", "")
	if got := w.Header().Get("ETag"); got != `"`+staged.ETag+`"` {
		t.Errorf("GET /v1/rules ETag = %s, want %q", got, staged.ETag)
	}
	if got := rulesio.Hash(w.Body.Bytes()); got != staged.ETag {
		t.Errorf("served body hashes to %s, want %s (export is not canonical)", got, staged.ETag)
	}
	var health struct {
		ETag string `json:"rules_etag"`
	}
	decode(t, do(s, "GET", "/healthz", ""), &health)
	if health.ETag != staged.ETag {
		t.Errorf("healthz rules_etag = %s, want %s", health.ETag, staged.ETag)
	}

	// Activating with nothing staged is a conflict, not a crash.
	if w := do(s, "POST", "/v1/rules/activate", `{"etag": "`+staged.ETag+`"}`); w.Code != http.StatusConflict {
		t.Errorf("activate with empty stage: status %d, want 409", w.Code)
	}
}

// TestStagedRejectedOnBadRules: a stage of an unimportable file must
// fail without parking anything.
func TestStagedRejectedOnBadRules(t *testing.T) {
	s := newTestServer(t, nil, Config{})
	w := do(s, "POST", "/v1/rules/stage", `[{"lhs": [["nosuch", "nosuch"]], "y": "postcode", "ym": "postcode"}]`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad stage: status %d, want 400", w.Code)
	}
	s.stagedMu.Lock()
	parked := s.staged
	s.stagedMu.Unlock()
	if parked != nil {
		t.Error("failed stage left a generation parked")
	}
}

// TestMetricsPerEndpointInFlight pins the per-endpoint gauges: a repair
// parked inside the handler shows up in the repair gauge only.
func TestMetricsPerEndpointInFlight(t *testing.T) {
	s := newTestServer(t, []core.MinedRule{districtRule()}, Config{})
	gate := make(chan struct{})
	s.holdRepair = func() { <-gate }

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		do(s, "POST", "/v1/repair", `{"tuples": [{"district": "hz", "area": "010"}]}`)
	}()
	waitFor(t, "repair to park in the handler", func() bool {
		return s.metrics.inFlightRepair.Load() == 1
	})
	body := do(s, "GET", "/metrics", "").Body.String()
	for _, line := range []string{
		"erminerd_requests_in_flight_repair 1",
		"erminerd_requests_in_flight_validate 0",
	} {
		if !strings.Contains(body, line) {
			t.Errorf("metrics output missing %q:\n%s", line, body)
		}
	}
	close(gate)
	wg.Wait()
	if got := s.metrics.inFlightRepair.Load(); got != 0 {
		t.Errorf("in-flight repair gauge = %d after completion, want 0", got)
	}
}

// TestLatencyObservedOnFailures pins the histogram fix: 4xx outcomes
// are counted in the latency window, not silently dropped.
func TestLatencyObservedOnFailures(t *testing.T) {
	s := newTestServer(t, []core.MinedRule{districtRule()}, Config{})
	if w := do(s, "POST", "/v1/repair", `{"tuples": []}`); w.Code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", w.Code)
	}
	if w := do(s, "POST", "/v1/validate", `{"bogus": 1}`); w.Code != http.StatusBadRequest {
		t.Fatalf("bad validate: status %d, want 400", w.Code)
	}
	if _, _, n := s.metrics.lat.Percentiles(); n != 2 {
		t.Errorf("latency observations after two 4xx requests = %d, want 2", n)
	}
	if !strings.Contains(do(s, "GET", "/metrics", "").Body.String(), "erminerd_repair_latency_count 2") {
		t.Error("metrics output missing erminerd_repair_latency_count 2")
	}
}
