package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"erminer/internal/core"
	"erminer/internal/rlminer"
)

// jobManifest is the on-disk record (<ckBase>.spec.json in
// Config.CheckpointDir) that lets a restarted daemon re-create an
// rlminer job interrupted by process death. It is written when the job
// starts and removed when the job reaches any terminal state, so a
// manifest found at startup always denotes interrupted work.
type jobManifest struct {
	ID   string  `json:"id"`
	Spec JobSpec `json:"spec"`
}

// runRLMinerJob runs an rlminer job, wiring training progress into the
// job's status. With Config.CheckpointDir set it also writes crash-safe
// checkpoints: the spec manifest plus periodic training snapshots,
// which recoverJobs turns back into a resumed job after a restart. Both
// files are removed once the job reaches a terminal state — only a
// process death leaves them behind.
func (s *Server) runRLMinerJob(j *job, p *core.Problem) (*core.ResultSet, error) {
	cfg := rlminer.Config{
		TrainSteps: j.spec.Steps,
		Seed:       j.spec.Seed,
		Progress:   j.setProgress,
	}
	dir := s.cfg.CheckpointDir
	if dir == "" {
		return rlminer.New(cfg).Mine(p)
	}

	specPath := filepath.Join(dir, j.ckBase+".spec.json")
	ckPath := filepath.Join(dir, j.ckBase+".ckpt")
	man, err := json.Marshal(jobManifest{ID: j.id, Spec: j.spec})
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(specPath, man, 0o644); err != nil {
		return nil, fmt.Errorf("serve: writing job manifest: %w", err)
	}
	// Any terminal state — success, failure, even a panic unwinding
	// through the worker — retires the recovery files; a kill leaves
	// them for the next startup.
	//ermvet:ignore errdrop best-effort retirement; a leftover file is re-scanned on next startup
	defer os.Remove(specPath)
	//ermvet:ignore errdrop best-effort retirement; a leftover file is re-scanned on next startup
	defer os.Remove(ckPath)

	cfg.CheckpointPath = ckPath
	cfg.CheckpointEvery = s.cfg.CheckpointEvery
	if j.resumed {
		if ck, rerr := rlminer.ReadCheckpointFile(ckPath); rerr == nil {
			m := rlminer.New(cfg)
			if res, rerr := m.ResumeMine(p, ck); rerr == nil {
				return res, nil
			}
			// A corrupt or mismatched checkpoint falls back to a fresh
			// run rather than failing the recovered job.
		}
	}
	return rlminer.New(cfg).Mine(p)
}

// recoverJobs scans Config.CheckpointDir for manifests of rlminer jobs
// a previous process left interrupted and resubmits them; each resumes
// from its last checkpoint. Corrupt manifests are removed. Jobs that no
// longer fit in the queue stay on disk for the next restart.
func (s *Server) recoverJobs() error {
	dir := s.cfg.CheckpointDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: creating checkpoint dir: %w", err)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.spec.json"))
	if err != nil {
		return err
	}
	type recovered struct {
		man  jobManifest
		base string
	}
	maxID := 0
	var recs []recovered
	for _, path := range paths {
		data, rerr := os.ReadFile(path)
		var man jobManifest
		if rerr != nil || json.Unmarshal(data, &man) != nil || man.ID == "" || man.Spec.Method != "rlminer" {
			//ermvet:ignore errdrop best-effort removal of a corrupt manifest; a fresh submit is the only path forward
			os.Remove(path)
			continue
		}
		if n, ok := jobIDNum(man.ID); ok && n > maxID {
			maxID = n
		}
		recs = append(recs, recovered{man: man, base: strings.TrimSuffix(filepath.Base(path), ".spec.json")})
	}
	// Reserve recovered IDs before any resubmission so fresh submissions
	// can never collide with them.
	s.jobs.reserveIDs(maxID)
	for _, r := range recs {
		if _, rerr := s.jobs.resubmit(r.man.ID, r.base, r.man.Spec); rerr != nil {
			continue
		}
		s.metrics.jobsRecovered.Add(1)
	}
	return nil
}

// jobIDNum extracts n from the manager's "job-n" IDs.
func jobIDNum(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}
