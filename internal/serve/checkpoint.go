package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"erminer/internal/core"
	"erminer/internal/rlminer"
)

// jobManifest is the on-disk record (<ckBase>.spec.json in
// Config.CheckpointDir) that lets a restarted daemon re-create an
// rlminer job interrupted by process death. It is written when the job
// starts and removed when the job reaches any terminal state, so a
// manifest found at startup always denotes interrupted work. The shape
// survives a daemon restart — possibly across a binary upgrade — so it
// is wire-versioned like the HTTP payloads.
//
//ermvet:wire
type jobManifest struct {
	ID   string  `json:"id"`
	Spec JobSpec `json:"spec"`
}

// jobManifestVersion pins the manifest layout; bump on any change to
// jobManifest or the shapes it embeds.
const jobManifestVersion = 1

// runRLMinerJob runs an rlminer job, wiring training progress into the
// job's status. With Config.CheckpointDir set it also writes crash-safe
// checkpoints: the spec manifest plus periodic training snapshots,
// which recoverJobs turns back into a resumed job after a restart. Both
// files are removed once the job reaches a terminal state — only a
// process death leaves them behind.
func (s *Server) runRLMinerJob(j *job, p *core.Problem) (*core.ResultSet, error) {
	if j.spec.Method == "rlminer-ft" {
		return s.runFineTuneJob(j, p)
	}
	cfg := rlminer.Config{
		TrainSteps: j.spec.Steps,
		Seed:       j.spec.Seed,
		Progress:   j.setProgress,
	}
	dir := s.cfg.CheckpointDir
	if dir == "" {
		m := rlminer.New(cfg)
		res, err := m.Mine(p)
		if err == nil {
			s.retainModel(m)
		}
		return res, err
	}

	specPath := filepath.Join(dir, j.ckBase+".spec.json")
	ckPath := filepath.Join(dir, j.ckBase+".ckpt")
	man, err := json.Marshal(jobManifest{ID: j.id, Spec: j.spec})
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(specPath, man, 0o644); err != nil {
		return nil, fmt.Errorf("serve: writing job manifest: %w", err)
	}
	// Any terminal state — success, failure, even a panic unwinding
	// through the worker — retires the recovery files; a kill leaves
	// them for the next startup.
	//ermvet:ignore errdrop best-effort retirement; a leftover file is re-scanned on next startup
	defer os.Remove(specPath)
	//ermvet:ignore errdrop best-effort retirement; a leftover file is re-scanned on next startup
	defer os.Remove(ckPath)

	cfg.CheckpointPath = ckPath
	cfg.CheckpointEvery = s.cfg.CheckpointEvery
	if j.resumed {
		if ck, rerr := rlminer.ReadCheckpointFile(ckPath); rerr == nil {
			m := rlminer.New(cfg)
			if res, rerr := m.ResumeMine(p, ck); rerr == nil {
				s.retainModel(m)
				return res, nil
			}
			// A corrupt or mismatched checkpoint falls back to a fresh
			// run rather than failing the recovered job.
		}
	}
	m := rlminer.New(cfg)
	res, err := m.Mine(p)
	if err == nil {
		s.retainModel(m)
	}
	return res, err
}

// runFineTuneJob is RLMiner-ft as a serving job: after a data patch
// enriched the corpus, fine-tune the retained value network for a
// reduced step budget instead of training from scratch. The job fails
// up front when no rlminer job has retained a model yet. Fine-tune
// budgets are small, so these jobs are not checkpointed.
func (s *Server) runFineTuneJob(j *job, p *core.Problem) (*core.ResultSet, error) {
	saved, err := s.retainedModel()
	if err != nil {
		return nil, err
	}
	cfg := rlminer.Config{
		FineTuneSteps: j.spec.Steps,
		Seed:          j.spec.Seed,
		Progress:      j.setProgress,
	}
	return rlminer.New(cfg).MineFineTunedFromSaved(p, saved)
}

// retainModel keeps the SaveModel bytes of a just-trained miner so a
// later rlminer-ft job can fine-tune it. Retention is best-effort: a
// model that cannot serialize leaves the previous one in place.
func (s *Server) retainModel(m *rlminer.Miner) {
	var buf bytes.Buffer
	if err := m.SaveModel(&buf); err != nil {
		return
	}
	s.modelMu.Lock()
	s.model = buf.Bytes()
	s.modelMu.Unlock()
}

// retainedModel reloads the retained network for fine-tuning.
func (s *Server) retainedModel() (*rlminer.SavedModel, error) {
	s.modelMu.Lock()
	data := s.model
	s.modelMu.Unlock()
	if data == nil {
		return nil, fmt.Errorf("serve: no retained rlminer model to fine-tune (run an rlminer job first)")
	}
	return rlminer.LoadModel(bytes.NewReader(data))
}

// remineClears is the activation gate of an RLMiner-ft job: every
// mined rule must still clear the thresholds (Support ≥ η_s, positive
// Utility) on the enriched data, and the set must be non-empty.
func remineClears(res *core.ResultSet, etaS int) bool {
	if len(res.Rules) == 0 {
		return false
	}
	for _, mr := range res.Rules {
		if mr.Measures.Support < etaS || mr.Measures.Utility <= 0 {
			return false
		}
	}
	return true
}

// recoverJobs scans Config.CheckpointDir for manifests of rlminer jobs
// a previous process left interrupted and resubmits them; each resumes
// from its last checkpoint. Corrupt manifests are removed. Jobs that no
// longer fit in the queue stay on disk for the next restart.
func (s *Server) recoverJobs() error {
	dir := s.cfg.CheckpointDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: creating checkpoint dir: %w", err)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.spec.json"))
	if err != nil {
		return err
	}
	type recovered struct {
		man  jobManifest
		base string
	}
	maxID := 0
	var recs []recovered
	for _, path := range paths {
		data, rerr := os.ReadFile(path)
		var man jobManifest
		if rerr != nil || json.Unmarshal(data, &man) != nil || man.ID == "" || man.Spec.Method != "rlminer" {
			//ermvet:ignore errdrop best-effort removal of a corrupt manifest; a fresh submit is the only path forward
			os.Remove(path)
			continue
		}
		if n, ok := jobIDNum(man.ID); ok && n > maxID {
			maxID = n
		}
		recs = append(recs, recovered{man: man, base: strings.TrimSuffix(filepath.Base(path), ".spec.json")})
	}
	// Reserve recovered IDs before any resubmission so fresh submissions
	// can never collide with them.
	s.jobs.reserveIDs(maxID)
	for _, r := range recs {
		if _, rerr := s.jobs.resubmit(r.man.ID, r.base, r.man.Spec); rerr != nil {
			continue
		}
		s.metrics.jobsRecovered.Add(1)
	}
	return nil
}

// jobIDNum extracts n from the manager's "job-n" IDs.
func jobIDNum(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}
