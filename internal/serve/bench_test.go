package serve

// BenchmarkRepairThroughput measures the sustained request rate of the
// serve repair path — the erminerd hot loop the columnar evaluation
// engine exists for. Each iteration is one full POST /v1/repair over a
// fixed batch, so ns/op is per-request latency; the benchmark
// additionally reports req/s and the observed p99 latency in
// milliseconds. scripts/bench.sh records these into BENCH_hotpath.json.

import (
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"erminer/internal/core"
	"erminer/internal/measure"
	"erminer/internal/relation"
	"erminer/internal/rule"
	"erminer/internal/schema"
)

// benchServeProblem scales the district/area → postcode fixture up to
// nd districts × na areas, so posting lists and master indexes have
// real substance.
func benchServeProblem(b *testing.B, nd, na int) *core.Problem {
	b.Helper()
	pool := relation.NewPool()
	attrs := []relation.Attribute{
		{Name: "district", Domain: "d"},
		{Name: "area", Domain: "a"},
		{Name: "postcode", Domain: "p"},
	}
	in := relation.NewSchema(attrs...)
	ms := relation.NewSchema(attrs...)
	input := relation.New(in, pool)
	master := relation.New(ms, pool)
	for d := 0; d < nd; d++ {
		for a := 0; a < na; a++ {
			row := []string{
				fmt.Sprintf("d%03d", d),
				fmt.Sprintf("a%03d", a),
				fmt.Sprintf("%05d", 10000+d),
			}
			master.AppendRow(row)
			input.AppendRow(row)
		}
	}
	match, err := schema.FromNames(in, ms, map[string]string{"district": "district", "area": "area"})
	if err != nil {
		b.Fatal(err)
	}
	return &core.Problem{
		Input: input, Master: master, Match: match,
		Y: 2, Ym: 2, SupportThreshold: 2, TopK: 10,
	}
}

func BenchmarkRepairThroughput(b *testing.B) {
	p := benchServeProblem(b, 60, 20)
	rules := []core.MinedRule{
		{
			Rule:     rule.New([]rule.AttrPair{{Input: 0, Master: 0}}, 2, 2, nil),
			Measures: measure.Measures{Support: 1200, Certainty: 1, Quality: 1, Utility: 10},
		},
		{
			Rule:     rule.New([]rule.AttrPair{{Input: 0, Master: 0}, {Input: 1, Master: 1}}, 2, 2, nil),
			Measures: measure.Measures{Support: 1200, Certainty: 1, Quality: 1, Utility: 9},
		},
	}
	s, err := New(p, rules, Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		done := make(chan struct{})
		time.AfterFunc(10*time.Second, func() { close(done) })
		if err := s.Shutdown(done); err != nil {
			b.Errorf("shutdown: %v", err)
		}
	}()

	// One fixed 64-tuple batch: half the tuples carry a wrong postcode,
	// a quarter a missing one.
	var sb strings.Builder
	sb.WriteString(`{"tuples": [`)
	for i := 0; i < 64; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		pc := fmt.Sprintf(`"%05d"`, 10000+(i%60))
		switch i % 4 {
		case 0, 1:
			pc = `"99999"`
		case 2:
			pc = `""`
		}
		fmt.Fprintf(&sb, `{"district": "d%03d", "area": "a%03d", "postcode": %s}`,
			i%60, i%20, pc)
	}
	sb.WriteString(`]}`)
	body := sb.String()

	lat := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		req := httptest.NewRequest("POST", "/v1/repair", strings.NewReader(body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		lat = append(lat, time.Since(start))
		if w.Code != 200 {
			b.Fatalf("status %d: %s", w.Code, w.Body)
		}
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[len(lat)*99/100%len(lat)]
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	b.ReportMetric(float64(p99.Microseconds())/1000, "p99_ms")
}
